// Serving quickstart: stand up the concurrent analytics serving layer,
// publish snapshot epochs while a stream of edge updates arrives, and
// issue typed queries — showing snapshot isolation, the result cache,
// model-driven admission control, and multi-source BFS batching.
#include <cstdio>
#include <future>
#include <utility>
#include <vector>

#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "server/server.hpp"
#include "streaming/trigger.hpp"
#include "streaming/update_stream.hpp"

using namespace ga;

int main() {
  // 1. A server with a small worker pool. Queries are admitted against
  //    the Fig. 3 architecture cost model: predicted cost beyond the
  //    deadline budget is rejected up front, not queued to time out.
  //    start_paused lets step 6 accumulate a fusable BFS batch; the
  //    synchronous execute_now path is unaffected.
  server::SchedulerOptions opts;
  opts.workers = 2;
  opts.start_paused = true;
  server::AnalyticsServer serving(opts);

  // 2. Publish an initial snapshot. Readers lease immutable epoch-
  //    versioned CSR snapshots; publishing never blocks readers, and an
  //    old epoch is reclaimed only when its last lease drains.
  const auto g0 = graph::make_rmat({.scale = 10, .edge_factor = 8, .seed = 3});
  serving.publish(graph::CSRGraph(g0));  // explicit copy: g0 is reused below
  std::printf("published epoch %llu: %u vertices, %llu arcs\n",
              static_cast<unsigned long long>(serving.snapshots().current_epoch()),
              g0.num_vertices(),
              static_cast<unsigned long long>(g0.num_edges()));

  // 3. Typed queries. execute_now() is the synchronous path; submit()
  //    returns a future and goes through the priority queues.
  server::QueryDesc bfs;
  bfs.kind = server::QueryKind::kBfs;
  bfs.seed = 0;
  const auto r1 = serving.execute_now(bfs);
  std::printf("bfs(0): %-4s reached %llu  exec %.3f ms (predicted %.3f)\n",
              server::query_status_name(r1.status),
              static_cast<unsigned long long>(r1.reached), r1.exec_ms,
              r1.predicted_ms);

  // Identical query at the same epoch: served from the sharded LRU
  // result cache, orders of magnitude cheaper.
  const auto r2 = serving.execute_now(bfs);
  std::printf("bfs(0) again: %s  exec %.4f ms\n",
              r2.cache_hit ? "cache HIT" : "miss", r2.exec_ms);

  // 4. An aggressive deadline is rejected by the cost model instead of
  //    wasting a worker on a query that cannot finish in budget.
  server::QueryDesc pr;
  pr.kind = server::QueryKind::kPageRankTopK;
  pr.k = 10;
  pr.deadline_ms = 1e-6;
  pr.use_cache = false;
  const auto r3 = serving.execute_now(pr);
  std::printf("pagerank with 1ns budget: %s (predicted %.3f ms)\n",
              server::query_status_name(r3.status), r3.predicted_ms);

  // 5. Live updates: a StreamProcessor publishes a fresh epoch into the
  //    server every N structural updates. Queries in flight keep their
  //    leased snapshot; new queries see the new epoch, and cache entries
  //    for stale epochs are invalidated.
  graph::DynamicGraph dyn(g0.num_vertices());
  for (vid_t u = 0; u < g0.num_vertices(); ++u)
    for (const vid_t v : g0.out_neighbors(u))
      if (u < v) dyn.insert_edge(u, v);
  streaming::TriggerPolicy topts;
  topts.triangle_delta_threshold = 0;  // fire on every closed triangle
  streaming::StreamProcessor proc(dyn, topts);
  proc.set_epoch_publisher(serving.publisher(), /*every_n_updates=*/256);
  proc.apply_all(streaming::generate_stream(
      dyn.num_vertices(), {.count = 2048, .seed = 17}));
  std::printf("after 2048 updates: epoch %llu (%llu publications)\n",
              static_cast<unsigned long long>(serving.snapshots().current_epoch()),
              static_cast<unsigned long long>(
                  proc.stats().epoch_publications));

  // The earlier cache entry is for a dead epoch — this re-runs cold.
  const auto r4 = serving.execute_now(bfs);
  std::printf("bfs(0) at new epoch: %s, reached %llu (epoch %llu)\n",
              r4.cache_hit ? "cache HIT" : "miss",
              static_cast<unsigned long long>(r4.reached),
              static_cast<unsigned long long>(r4.epoch));

  // 6. Batched BFS: the paused scheduler accumulates same-kernel
  //    queries; on resume, one multi-source engine pass answers all of
  //    them (QueryResult::batched marks fused answers).
  std::vector<std::future<server::QueryResult>> futs;
  for (vid_t s = 0; s < 8; ++s) {
    server::QueryDesc q;
    q.kind = server::QueryKind::kBfs;
    q.seed = s;
    q.use_cache = false;
    futs.push_back(serving.submit(q));
  }
  serving.resume();
  serving.drain();
  std::uint64_t reached = 0, fused = 0;
  for (auto& f : futs) {
    const auto r = f.get();
    reached += r.reached;
    fused += r.batched ? 1 : 0;
  }
  std::printf("8 BFS queries, %llu served by fused multi-source passes: "
              "avg reached %llu\n",
              static_cast<unsigned long long>(fused),
              static_cast<unsigned long long>(reached / 8));

  // 7. Serving health: snapshot/scheduler/cache counters plus the cost
  //    model's per-kind calibration — the same block
  //    bench/fig2_canonical_flow prints.
  std::printf("\n%s", serving.format_health().c_str());
  return 0;
}
