// Quickstart: generate a graph, run the bread-and-butter kernels, do a
// couple of streaming updates, and print what happened. Start here.
#include <cstdio>

#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "kernels/bfs.hpp"
#include "kernels/connected_components.hpp"
#include "kernels/jaccard.hpp"
#include "kernels/pagerank.hpp"
#include "kernels/triangles.hpp"
#include "streaming/incremental_triangles.hpp"

using namespace ga;

int main() {
  // 1. A synthetic power-law graph (Graph500-style RMAT).
  const auto g = graph::make_rmat({.scale = 12, .edge_factor = 16, .seed = 1});
  std::printf("graph: %u vertices, %llu edges\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  // 2. Batch kernels.
  const auto bfs = kernels::bfs(g, 0);
  std::printf("BFS from 0 reached %llu vertices (%llu edges traversed)\n",
              static_cast<unsigned long long>(bfs.reached),
              static_cast<unsigned long long>(bfs.edges_traversed));

  const auto cc = kernels::wcc_union_find(g);
  std::printf("components: %u (largest %u)\n", cc.num_components,
              cc.largest_size);

  const auto pr = kernels::pagerank(g);
  const auto top = kernels::pagerank_topk(pr, 3);
  std::printf("pagerank converged in %u iterations; top vertex %u (%.5f)\n",
              pr.iterations, top[0].second, top[0].first);

  std::printf("triangles: %llu\n",
              static_cast<unsigned long long>(
                  kernels::triangle_count_forward(g)));

  const auto sims = kernels::jaccard_query(g, top[0].second, 0.2);
  std::printf("vertices with Jaccard >= 0.2 to the top hub: %zu\n", sims.size());

  // 3. Streaming: dynamic graph with an incrementally maintained metric.
  graph::DynamicGraph dyn(8);
  streaming::IncrementalTriangles tris(dyn);
  const vid_t edges[][2] = {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 0}};
  for (const auto& e : edges) {
    tris.on_insert(e[0], e[1]);  // notify BEFORE applying
    dyn.insert_edge(e[0], e[1]);
    std::printf("insert (%u,%u): triangle count now %llu\n", e[0], e[1],
                static_cast<unsigned long long>(tris.global_count()));
  }
  tris.on_delete(0, 2);
  dyn.delete_edge(0, 2);
  std::printf("delete (0,2): triangle count now %llu\n",
              static_cast<unsigned long long>(tris.global_count()));
  return 0;
}
