// Incremental-epochs walkthrough: publish delta-summary-carrying epochs
// from the versioned store and watch the serving layer pick the cheapest
// tier per query — footprint-aware cache carry, warm refinement of the
// previous epoch's result, or batch recompute — plus the typed kernel-level
// update API underneath it all.
#include <cstdio>

#include "graph/builder.hpp"
#include "kernels/incremental.hpp"
#include "kernels/pagerank.hpp"
#include "server/server.hpp"
#include "store/versioned_store.hpp"

using namespace ga;

int main() {
  // 1. Two disjoint path components in a 14-vertex universe — small
  //    enough to reason about exactly which queries a delta can touch.
  std::vector<graph::Edge> es = {{0, 1}, {1, 2}, {2, 3},
                                 {10, 11}, {11, 12}, {12, 13}};
  store::VersionedGraphStore store(graph::build_undirected(std::move(es), 14));
  server::AnalyticsServer serving;
  serving.publish(store.view());  // store views carry their DeltaSummary

  // 2. Cache a BFS rooted in the first component. Its result footprint is
  //    the reached set {0,1,2,3}: the answer can only change if an epoch
  //    touches one of those vertices.
  server::QueryDesc bfs;
  bfs.kind = server::QueryKind::kBfs;
  bfs.seed = 0;
  const auto cold = serving.execute_now(bfs);
  std::printf("bfs(0) cold: reached %llu, footprint %zu vertices\n",
              static_cast<unsigned long long>(cold.reached),
              cold.footprint.verts.size());

  // A cold WCC seeds the scheduler's warm state for step 4.
  server::QueryDesc wcc;
  wcc.kind = server::QueryKind::kWcc;
  wcc.use_cache = false;
  serving.execute_now(wcc);

  // 3. An epoch that only touches the OTHER component. The publish hands
  //    the delta summary to the result cache, which carries the BFS entry
  //    across the epoch instead of wiping it.
  store::DeltaBatch far_away;
  far_away.insert_edge(10, 13);
  store.apply(far_away);
  serving.publish(store.view());
  const auto carried = serving.execute_now(bfs);
  std::printf("bfs(0) after disjoint epoch: %s\n",
              carried.cache_hit ? "cache HIT (carried)" : "miss");

  // 4. WCC across the same epoch: a global-footprint query cannot be
  //    carried past a structural change, but the scheduler refines the
  //    previous epoch's labels by union-find over the inserted arcs —
  //    O(n + delta) instead of a full label-propagation recompute.
  const auto warm = serving.execute_now(wcc);
  std::printf("wcc after insert epoch: %u components, served %s\n",
              warm.num_components,
              warm.incremental ? "INCREMENTALLY (warm refinement)" : "batch");

  // 5. A delete epoch: union-find cannot un-merge, so the refinement
  //    falls back to batch on its own — the answer is always exact.
  store::DeltaBatch del;
  del.delete_edge(1, 2);
  store.apply(del);
  serving.publish(store.view());
  const auto split = serving.execute_now(wcc);
  std::printf("wcc after delete epoch: %u components, served %s\n",
              split.num_components, split.incremental ? "warm" : "BATCH (fallback)");

  // 6. The typed kernel API the serving tier is built on: refine any
  //    previous result against a view's delta summary directly.
  const store::GraphView v = store.view();
  kernels::PageRankResult pr = kernels::pagerank(v.csr());
  store::DeltaBatch grow;
  grow.insert_edge(3, 10);
  store.apply(grow);
  const store::GraphView v2 = store.view();
  kernels::IncrementalOutcome out;
  kernels::IncrementalOptions inc;
  inc.max_warm_iters = 100;  // give the warm sweep the same budget as batch
  pr = kernels::update_pagerank(pr, *v2.delta_summary(), v2, {}, inc, &out);
  std::printf("update_pagerank: incremental=%s fallback=%s iterations=%u\n",
              out.incremental ? "yes" : "no",
              kernels::incremental_fallback_name(out.fallback), out.iterations);

  // 7. The ledger: how many queries each tier served.
  const auto st = serving.scheduler().stats();
  const auto cs = serving.scheduler().cache().stats();
  std::printf("tiers: carried=%llu incremental=%llu fallbacks=%llu\n",
              static_cast<unsigned long long>(cs.carried),
              static_cast<unsigned long long>(st.incremental_served),
              static_cast<unsigned long long>(st.incremental_fallbacks));
  return 0;
}
