// The paper's §III motivating application end-to-end: an insurance NORA
// (Non-Obvious Relationship Analysis) service. Builds the persistent
// person-address graph from messy public records, runs the weekly batch
// "boil", then serves real-time applicant queries and streaming record
// ingest — demonstrating the paper's argument that streaming removes the
// need for much of the precomputation.
#include <cstdio>

#include "core/timer.hpp"
#include "pipeline/flow.hpp"

using namespace ga;
using namespace ga::pipeline;

int main() {
  // Synthetic stand-in for the 40+ TB public-records corpus (DESIGN.md
  // substitution table): controlled duplicates, typos, and planted fraud
  // rings that share addresses.
  CorpusOptions copts;
  copts.num_people = 10000;
  copts.num_addresses = 4000;
  copts.duplicate_rate = 0.5;
  copts.typo_rate = 0.3;
  copts.num_rings = 40;
  copts.ring_size = 5;
  copts.seed = 2026;
  const Corpus corpus = generate_corpus(copts);
  std::printf("ingesting %zu raw records about %u people...\n",
              corpus.records.size(), copts.num_people);

  CanonicalFlow flow;
  BatchFlowOptions opts;
  opts.analytic = "pagerank";
  const auto batch = flow.run_batch(corpus, opts);

  std::printf("\nweekly batch boil complete:\n");
  for (const auto& t : batch.timings) {
    std::printf("  %-18s %7.1f ms  %s\n", t.stage.c_str(), t.seconds * 1e3,
                t.detail.c_str());
  }
  std::printf("dedup: precision %.3f / recall %.3f -> %zu entities\n",
              batch.dedup_quality.precision, batch.dedup_quality.recall,
              batch.num_entities);
  std::printf("NORA found %zu relationships; planted-ring recall %.2f\n",
              batch.num_relationships, batch.ring_recall);

  // An applicant requests a quote: the insurer pulls their relationships
  // in real time (the paper: "compute in real-time whatever relationships
  // are relevant").
  const vid_t applicant = batch.seeds.front();
  core::WallTimer t;
  const auto rels = flow.query(applicant);
  std::printf("\napplicant (person vertex %u) quote check took %.1f us:\n",
              applicant, t.micros());
  for (std::size_t i = 0; i < rels.size() && i < 5; ++i) {
    const auto& r = rels[i];
    std::printf("  related to person %u: %u shared addresses%s (score %.1f)\n",
                r.a == applicant ? r.b : r.a, r.shared_addresses,
                r.same_surname ? " + same surname" : "", r.score);
  }
  if (rels.empty()) std::printf("  no non-obvious relationships — clean.\n");

  // A new record arrives naming the applicant at a new address shared with
  // someone else: the threshold test fires and the stored relationship
  // properties update without a re-boil.
  const auto& surnames = flow.store().properties().strings("last_name");
  RawRecord rec;
  rec.record_id = 999999;
  rec.first_name = "Quote";
  rec.last_name = surnames[applicant];
  rec.birth_year = 1970;
  rec.ssn = "";
  // Move them into the first seed's known address to force a co-residency.
  const auto addrs = flow.store().addresses_of(applicant);
  rec.address_id = static_cast<std::uint32_t>(addrs.front() -
                                              flow.store().num_people());
  rec.ts = 5000000;
  const bool fired = flow.ingest_streaming(rec);
  std::printf("\nstreaming record ingested: threshold trigger %s\n",
              fired ? "FIRED (relationship property updated in place)"
                    : "absorbed (no new relationship)");
  std::printf("total streaming triggers so far: %llu\n",
              static_cast<unsigned long long>(flow.streaming_triggers()));
  return 0;
}
