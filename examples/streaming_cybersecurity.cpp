// Streaming cyber-security monitor: the Fig. 2 streaming path on a
// communication graph. Packets stream in as edge updates; Firehose-style
// anomaly kernels watch the key stream; densification triggers extract
// the suspect's neighborhood and run a batch analytic on it, emitting
// alerts — the paper's "local update, threshold test, then larger
// analytic" pattern.
#include <cstdio>

#include "graph/dynamic_graph.hpp"
#include "kernels/kcore.hpp"
#include "streaming/anomaly.hpp"
#include "streaming/trigger.hpp"
#include "streaming/update_stream.hpp"

using namespace ga;
using namespace ga::streaming;

int main() {
  constexpr vid_t kHosts = 4096;
  graph::DynamicGraph net(kHosts);

  // Trigger policy: a single flow that closes >= 6 new triangles means a
  // host suddenly embedded itself in a dense cluster (beaconing /
  // lateral-movement heuristic).
  TriggerPolicy policy;
  policy.triangle_delta_threshold = 6;
  policy.extraction_depth = 2;
  StreamProcessor proc(net, policy);
  // Batch analytic on the extracted neighborhood: its degeneracy (max
  // k-core) — how dense the suspicious cluster really is.
  proc.set_analytic([](const graph::CSRGraph& sub, vid_t) {
    return static_cast<double>(kernels::degeneracy(sub));
  });

  // Flow stream between hosts (power-law biased: servers are hubs).
  StreamOptions sopts;
  sopts.count = 60000;
  sopts.delete_fraction = 0.05;  // flows expiring
  sopts.seed = 7;
  const auto flows = generate_stream(kHosts, sopts);
  proc.apply_all(flows);

  std::printf("processed %llu flow inserts, %llu expiries\n",
              static_cast<unsigned long long>(proc.stats().inserts),
              static_cast<unsigned long long>(proc.stats().deletes));
  std::printf("graph now: %llu live edges, %u components\n",
              static_cast<unsigned long long>(net.num_edges()),
              proc.components().num_components());
  std::printf("triangle count (maintained incrementally): %llu\n",
              static_cast<unsigned long long>(proc.triangles().global_count()));

  std::printf("\n%zu densification alerts:\n", proc.alerts().size());
  for (std::size_t i = 0; i < proc.alerts().size() && i < 8; ++i) {
    const Alert& a = proc.alerts()[i];
    std::printf("  t=%-8lld host %-5u %-24s delta=%2.0f neighborhood=%u"
                " k-core=%0.f\n",
                static_cast<long long>(a.ts), a.seed, a.reason.c_str(),
                a.metric, a.subgraph_vertices, a.analytic_result);
  }

  // In parallel, the packet-header stream goes through the Firehose-style
  // anomaly kernels (fixed key space = host ids).
  PacketStreamOptions popts;
  popts.num_keys = kHosts;
  popts.count = 200000;
  popts.anomalous_key_fraction = 0.01;
  popts.seed = 11;
  const auto packets = generate_packet_stream(popts);
  FixedKeyAnomaly biased_hosts(kHosts);
  TwoLevelKeyAnomaly port_scanners(48);  // distinct-peer fanout threshold
  for (const auto& p : packets.packets) {
    biased_hosts.ingest(p);
    port_scanners.ingest(p);
  }
  const auto q = score_detection(biased_hosts.events(), packets.truth);
  std::printf("\npacket anomaly detection over %zu packets:\n",
              packets.packets.size());
  std::printf("  biased-traffic hosts flagged: %zu (precision %.2f, recall %.2f)\n",
              biased_hosts.events().size(), q.precision, q.recall);
  std::printf("  fanout (scan-like) hosts flagged: %zu\n",
              port_scanners.events().size());
  return 0;
}
