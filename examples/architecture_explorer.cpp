// Architecture explorer: use the §IV performance model interactively-ish —
// sweep a custom machine's resources over the NORA workload and print
// where the bounding resource moves, then compare your design against the
// paper's configurations. Demonstrates the archmodel public API.
#include <cstdio>

#include "archmodel/configs.hpp"
#include "archmodel/nora_model.hpp"

using namespace ga::archmodel;

int main() {
  const auto steps = nora_steps();
  const auto base = evaluate(baseline_2012(), steps);
  std::printf("reference: %s total %.0f s\n\n", base.machine.c_str(),
              base.total_seconds);

  // A hypothetical design: one rack of fat nodes; sweep its memory
  // bandwidth and watch the bottleneck migrate.
  std::printf("sweep: 1 rack x 32 nodes, 50 Gop/s/node, vary memory BW\n");
  std::printf("%10s %12s %10s %28s\n", "mem GB/s", "total s", "speedup",
              "steps bound by C/M/D/N");
  for (double mem : {50.0, 100.0, 200.0, 400.0, 800.0, 1600.0}) {
    MachineConfig m;
    m.name = "custom";
    m.racks = 1;
    m.nodes_per_rack = 32;
    m.giga_ops = 50;
    m.latency_tolerance = 0.3;
    m.mem_bw_gbs = mem;
    m.disk_bw_gbs = 8;
    m.net_bw_gbs = 25;
    m.irregular_penalty = 8;
    const auto r = evaluate(m, steps);
    std::printf("%10.0f %12.1f %9.2fx %16d/%d/%d/%d\n", mem, r.total_seconds,
                speedup(r, base), r.bound_counts[0], r.bound_counts[1],
                r.bound_counts[2], r.bound_counts[3]);
  }

  std::printf("\nper-step detail at 200 GB/s:\n");
  MachineConfig m;
  m.name = "custom-200";
  m.racks = 1;
  m.nodes_per_rack = 32;
  m.giga_ops = 50;
  m.latency_tolerance = 0.3;
  m.mem_bw_gbs = 200;
  m.disk_bw_gbs = 8;
  m.net_bw_gbs = 25;
  std::printf("%s\n", format_result(evaluate(m, steps)).c_str());

  std::printf("the paper's configurations for comparison:\n");
  for (const auto& cfg : fig6_configs()) {
    const auto r = evaluate(cfg, steps);
    std::printf("  %-20s %6.1f racks %10.1f s %8.2fx\n", cfg.name.c_str(),
                cfg.racks, r.total_seconds, speedup(r, base));
  }
  return 0;
}
