// Bench-regression gate: diffs a current BENCH_*.json artifact against a
// committed baseline and fails (exit 1) when any performance metric
// regressed by more than the threshold. Understands the flat
// one-field-per-line format bench_json.hpp writes, and classifies metric
// direction by key suffix:
//   lower-is-better:  *_ms, *_ms_mean, *_ms_p50, *_ms_p95
//   higher-is-better: *_mteps, *_harmonic_munits, *_speedup*
// Everything else (schema_version, graph, trials, counts, result echoes)
// is identity metadata, not gated. Keys present in only one file are
// reported but never fail the gate — benches may grow or retire rows —
// and improvements are printed so the perf trajectory stays visible in CI
// logs.
//
// Usage: bench_compare BASELINE.json CURRENT.json [--threshold PCT]
//        (default threshold 15, i.e. fail when >15% worse)
//        bench_compare --envelope OUT.json RUN1.json [RUN2.json ...]
//        (write a worst-of-K calibration envelope: per metric, the worst
//        value across the runs; identity fields from RUN1)
//
// Committed baselines should be envelopes, not single runs: shared boxes
// have minute-scale contention modes (observed: the same deterministic
// bench ±36% across quiet runs), so a single-run baseline plus a flat
// threshold is either flaky or insensitive. The envelope keeps the bar
// tight exactly where the box is stable.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

/// Flat bench_json document: "key" -> numeric value (non-numeric fields
/// are kept as strings for identity reporting only).
struct Doc {
  std::map<std::string, double> nums;
  std::map<std::string, std::string> strs;
};

bool parse_line(const std::string& line, Doc& doc) {
  const auto kq1 = line.find('"');
  if (kq1 == std::string::npos) return false;
  const auto kq2 = line.find('"', kq1 + 1);
  if (kq2 == std::string::npos) return false;
  const std::string key = line.substr(kq1 + 1, kq2 - kq1 - 1);
  auto colon = line.find(':', kq2);
  if (colon == std::string::npos) return false;
  std::size_t v = colon + 1;
  while (v < line.size() && line[v] == ' ') ++v;
  if (v >= line.size()) return false;
  std::string value = line.substr(v);
  while (!value.empty() &&
         (value.back() == ',' || value.back() == ' ' ||
          value.back() == '\n' || value.back() == '\r')) {
    value.pop_back();
  }
  if (!value.empty() && value.front() == '"') {
    doc.strs[key] = value;
    return true;
  }
  char* end = nullptr;
  const double num = std::strtod(value.c_str(), &end);
  if (end != value.c_str() && end != nullptr && *end == '\0') {
    doc.nums[key] = num;
    return true;
  }
  doc.strs[key] = value;  // arrays / nested objects: identity only
  return true;
}

bool load(const char* path, Doc& doc) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) parse_line(line, doc);
  return true;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

enum class MetricDir { kLowerBetter, kHigherBetter, kNotAMetric };

MetricDir classify(const std::string& key) {
  if (ends_with(key, "_ms") || ends_with(key, "_ms_mean") ||
      ends_with(key, "_ms_p50") || ends_with(key, "_ms_p95")) {
    return MetricDir::kLowerBetter;
  }
  if (ends_with(key, "_mteps") || ends_with(key, "_harmonic_munits") ||
      key.find("speedup") != std::string::npos) {
    return MetricDir::kHigherBetter;
  }
  return MetricDir::kNotAMetric;
}

/// Worst-of-K merge: rewrite the first run file with each metric key
/// replaced by the worst value observed across all runs, preserving the
/// first file's key order and identity fields verbatim.
int write_envelope(const char* out_path, int nruns, char** run_paths) {
  std::vector<Doc> runs(static_cast<std::size_t>(nruns));
  for (int i = 0; i < nruns; ++i) {
    if (!load(run_paths[i], runs[static_cast<std::size_t>(i)])) {
      std::fprintf(stderr, "bench_compare: cannot read run %s\n",
                   run_paths[i]);
      return 2;
    }
  }
  std::ifstream in(run_paths[0]);
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "bench_compare: cannot write %s\n", out_path);
    return 2;
  }
  int merged = 0;
  std::string line;
  while (std::getline(in, line)) {
    Doc one;
    if (parse_line(line, one) && one.nums.size() == 1) {
      const auto& [key, first] = *one.nums.begin();
      const MetricDir dir = classify(key);
      if (dir != MetricDir::kNotAMetric) {
        double worst = first;
        for (const auto& run : runs) {
          const auto it = run.nums.find(key);
          if (it == run.nums.end()) continue;
          worst = dir == MetricDir::kLowerBetter ? std::max(worst, it->second)
                                                 : std::min(worst, it->second);
        }
        if (worst != first) ++merged;
        const bool comma = !line.empty() && line.back() == ',';
        char buf[128];
        std::snprintf(buf, sizeof(buf), "  \"%s\": %g%s", key.c_str(), worst,
                      comma ? "," : "");
        out << buf << '\n';
        continue;
      }
    }
    out << line << '\n';
  }
  std::printf("bench_compare: wrote envelope %s over %d runs (%d metrics "
              "took a worse value than run 1)\n",
              out_path, nruns, merged);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 4 && std::strcmp(argv[1], "--envelope") == 0) {
    return write_envelope(argv[2], argc - 3, argv + 3);
  }
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: bench_compare BASELINE.json CURRENT.json "
                 "[--threshold PCT]\n"
                 "       bench_compare --envelope OUT.json RUN1.json "
                 "[RUN2.json ...]\n");
    return 2;
  }
  double threshold = 15.0;
  for (int i = 3; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0) {
      threshold = std::atof(argv[i + 1]);
    }
  }
  Doc base, cur;
  if (!load(argv[1], base)) {
    std::fprintf(stderr, "bench_compare: cannot read baseline %s\n", argv[1]);
    return 2;
  }
  if (!load(argv[2], cur)) {
    std::fprintf(stderr, "bench_compare: cannot read current %s\n", argv[2]);
    return 2;
  }

  int regressions = 0, improved = 0, compared = 0;
  for (const auto& [key, bv] : base.nums) {
    const MetricDir dir = classify(key);
    if (dir == MetricDir::kNotAMetric) continue;
    const auto it = cur.nums.find(key);
    if (it == cur.nums.end()) {
      std::printf("  [skip]    %-38s only in baseline\n", key.c_str());
      continue;
    }
    const double cv = it->second;
    if (bv <= 0) continue;  // degenerate baseline: nothing to gate
    ++compared;
    // Positive delta_pct = worse, in either metric direction.
    const double delta_pct = dir == MetricDir::kLowerBetter
                                 ? (cv - bv) / bv * 100.0
                                 : (bv - cv) / bv * 100.0;
    const char* tag = "  [ok]    ";
    if (delta_pct > threshold) {
      tag = "  [REGRESS]";
      ++regressions;
    } else if (delta_pct < -threshold) {
      tag = "  [faster]";
      ++improved;
    }
    std::printf("%s %-38s %12.3f -> %12.3f  (%+.1f%% %s)\n", tag,
                key.c_str(), bv, cv, delta_pct,
                dir == MetricDir::kLowerBetter ? "ms" : "rate-loss");
  }
  for (const auto& [key, cv] : cur.nums) {
    if (classify(key) != MetricDir::kNotAMetric &&
        base.nums.find(key) == base.nums.end()) {
      std::printf("  [new]     %-38s %32.3f\n", key.c_str(), cv);
    }
  }
  std::printf(
      "bench_compare: %d metrics compared, %d regressed (> %.0f%%), "
      "%d improved\n",
      compared, regressions, threshold, improved);
  return regressions > 0 ? 1 : 0;
}
