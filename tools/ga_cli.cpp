// ga_cli — command-line front end over the library: generate graphs,
// inspect them, and run the everyday kernels on edge-list files.
//
//   ga_cli generate <rmat|er|ba|ws|grid> [--scale N] [--n N] [--m M]
//          [--seed S] [--out FILE]
//   ga_cli stats FILE
//   ga_cli kernels                      — list the kernel registry
//   ga_cli run KERNEL FILE              — registry dispatch on an edge list
//   ga_cli metrics [FILE] [--json] [--trace]
//          — run a small instrumented workload and print the unified
//            metrics exposition (and, with --trace, the query span tree)
//   ga_cli store [FILE] [--scale N] [--epochs E] [--delta D] [--seed S]
//          [--depth K] [--no-compact]
//          — churn the versioned delta-chain store and print chain depth,
//            epoch count, bytes, and compaction stats
//   ga_cli store log-stat DIR
//          — offline inspection of a durable epoch-log directory: checkpoint
//            header, record/seq range, torn-tail and corruption counters
//   ga_cli store tiers [FILE] [--scale N] [--budget-pct P] [--budget B]
//          [--seed S] [--json]
//          — build the two-tier segment store over FILE (or an RMAT graph),
//            drive a BFS through it, and print the per-segment residency
//            table: hot/cold, pinned, bytes, accesses, faults, promotion
//   ga_cli store recover DIR
//          — run crash recovery against DIR and print the report (epochs
//            replayed/skipped, torn tail, content digest of the result)
//   ga_cli epochs [FILE] [--scale N] [--epochs E] [--delta D] [--seed S]
//          [--deletes PCT]
//          — replay a synthetic update stream through the serving layer:
//            per epoch, time the incremental serve vs a forced batch
//            recompute for WCC and PageRank, show the tier each query
//            landed on, and the delta-aware cache carry/invalidate counters
//   ga_cli dist plan FILE [--shards K] [--method hash|edge-cut] [--seed S]
//          [--json]
//          — shard-placement dry run: owner-map balance, cut fraction, and
//            per-shard domain stats for the sharded serving subsystem
//   ga_cli dist status DIR
//          — connect to a live coordinator's status socket
//            (DIR/coordinator.sock) and print its JSON report
//   ga_cli bfs FILE SOURCE
//   ga_cli pagerank FILE [--top K]
//   ga_cli components FILE
//   ga_cli triangles FILE
//   ga_cli jaccard FILE VERTEX [--threshold X]
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/timer.hpp"
#include "graph/builder.hpp"
#include "graph/degree_stats.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "kernels/bfs.hpp"
#include "kernels/connected_components.hpp"
#include "kernels/jaccard.hpp"
#include "kernels/pagerank.hpp"
#include "kernels/registry.hpp"
#include "kernels/triangles.hpp"
#include "core/prng.hpp"
#include "dist/coordinator.hpp"
#include "dist/partitioner.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "server/server.hpp"
#include "store/graph_view.hpp"
#include "store/recovery.hpp"
#include "store/tiered.hpp"
#include "store/versioned_store.hpp"

using namespace ga;

namespace {

struct Args {
  std::vector<std::string> positional;
  std::unordered_map<std::string, std::string> flags;

  std::uint64_t get(const std::string& key, std::uint64_t fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::stoull(it->second);
  }
  double getf(const std::string& key, double fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::stod(it->second);
  }
  std::string gets(const std::string& key, const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      const std::string key = argv[i] + 2;
      // Boolean flags (--json, --trace, --directed) take no value.
      if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
        a.flags[key] = "1";
      } else {
        a.flags[key] = argv[++i];
      }
    } else {
      a.positional.emplace_back(argv[i]);
    }
  }
  return a;
}

graph::CSRGraph load(const std::string& path) {
  return graph::build_undirected(graph::load_edge_list(path));
}

int usage() {
  std::fprintf(stderr,
               "usage: ga_cli <command> ...\n"
               "  generate <rmat|er|ba|ws|grid> [--scale N] [--n N] [--m M]"
               " [--seed S] [--out FILE]\n"
               "  stats FILE\n"
               "  kernels\n"
               "  run KERNEL FILE [--directed]\n"
               "  metrics [FILE] [--json] [--trace]\n"
               "  store [FILE] [--scale N] [--epochs E] [--delta D]"
               " [--seed S] [--depth K] [--no-compact]\n"
               "  store log-stat DIR\n"
               "  store tiers [FILE] [--scale N] [--budget-pct P]"
               " [--budget B] [--seed S] [--json]\n"
               "  store recover DIR\n"
               "  epochs [FILE] [--scale N] [--epochs E] [--delta D]"
               " [--seed S] [--deletes PCT]\n"
               "  dist plan FILE [--shards K] [--method hash|edge-cut]"
               " [--seed S] [--json]\n"
               "  dist status DIR      — query a live coordinator's status"
               " socket\n"
               "  bfs FILE SOURCE\n"
               "  pagerank FILE [--top K]\n"
               "  components FILE\n"
               "  triangles FILE\n"
               "  jaccard FILE VERTEX [--threshold X]\n");
  return 2;
}

int cmd_kernels(const Args&) {
  std::printf("%-18s %-34s %-22s %s\n", "name", "kernel", "class",
              "output class");
  for (const auto& k : kernels::registry()) {
    std::printf("%-18s %-34s %-22s %s%s\n", k.name.c_str(),
                k.display.c_str(), k.kclass.c_str(), k.output_class.c_str(),
                k.directed ? "  [directed]" : "");
  }
  return 0;
}

int cmd_run(const Args& a) {
  GA_CHECK(a.positional.size() >= 3, "run: need KERNEL FILE");
  const kernels::KernelInfo* info = kernels::find_kernel(a.positional[1]);
  if (info == nullptr) {
    std::fprintf(stderr, "unknown kernel: %s (see `ga_cli kernels`)\n",
                 a.positional[1].c_str());
    return 2;
  }
  const auto edges = graph::load_edge_list(a.positional[2]);
  const auto g = (info->directed || a.flags.count("directed"))
                     ? graph::build_directed(edges)
                     : graph::build_undirected(edges);
  const auto out = kernels::run_kernel(*info, kernels::KernelRunSpec::of(g));
  std::printf("%s: %s (%.2f ms)\n", info->display.c_str(),
              out.summary.c_str(), out.millis);
  return 0;
}

/// Run a small instrumented workload (BFS + PageRank through the registry)
/// and print the process-wide metrics exposition — the obs layer's
/// end-to-end smoke path.
int cmd_metrics(const Args& a) {
  const bool trace = a.flags.count("trace") != 0;
  auto& tracer = obs::Tracer::global();
  if (trace) tracer.set_active(true);

  const auto g =
      a.positional.size() >= 2
          ? load(a.positional[1])
          : graph::make_rmat({.scale = static_cast<unsigned>(
                                  a.get("scale", 10)),
                              .edge_factor = 16, .seed = 1});

  obs::ScopedSpan root("cli.metrics", {});
  for (const char* name : {"bfs", "pagerank", "wcc"}) {
    const auto* info = kernels::find_kernel(name);
    auto spec = kernels::KernelRunSpec::of(g);
    spec.trace = root.context();  // explicit parent, no ambient needed
    kernels::run_kernel(*info, spec);
  }
  const obs::TraceContext ctx = root.context();
  root.finish();

  auto& reg = obs::MetricsRegistry::global();
  if (a.flags.count("json")) {
    std::printf("%s\n", obs::expose_json(reg).c_str());
  } else {
    std::printf("%s", obs::expose_text(reg).c_str());
  }
  if (trace) {
    std::printf("\n# trace %llu\n%s",
                static_cast<unsigned long long>(ctx.trace_id),
                tracer.format_tree(ctx.trace_id).c_str());
  }
  return 0;
}

/// Offline epoch-log inspection: checkpoint header + a full log scan,
/// without rebuilding a store. Safe to run against a live directory.
int cmd_store_logstat(const Args& a) {
  GA_CHECK(a.positional.size() >= 3, "store log-stat: need DIR");
  const store::EpochLogInfo info =
      store::inspect_epoch_log(a.positional[2]);
  std::printf("dir:              %s\n", a.positional[2].c_str());
  if (info.has_checkpoint) {
    std::printf("checkpoint:       epoch %llu  (%llu bytes, %u vertices, "
                "%llu arcs)\n",
                static_cast<unsigned long long>(info.checkpoint_epoch),
                static_cast<unsigned long long>(info.checkpoint_bytes),
                info.checkpoint_vertices,
                static_cast<unsigned long long>(info.checkpoint_arcs));
  } else {
    std::printf("checkpoint:       none (directory not recoverable)\n");
  }
  std::printf("log records:      %llu (%llu bytes)\n",
              static_cast<unsigned long long>(info.log_records),
              static_cast<unsigned long long>(info.log_bytes));
  if (info.log_records > 0) {
    std::printf("epoch range:      %llu .. %llu\n",
                static_cast<unsigned long long>(info.first_seq),
                static_cast<unsigned long long>(info.last_seq));
  }
  std::printf("torn tail:        %s (%llu bytes)\n",
              info.torn_tail ? "yes" : "no",
              static_cast<unsigned long long>(info.torn_bytes));
  std::printf("corrupt records:  %llu\n",
              static_cast<unsigned long long>(info.corrupt_records));
  // A torn tail is the expected crash artifact; corruption is data loss.
  return info.corrupt_records == 0 ? 0 : 1;
}

/// Build the segmented two-tier store over an input graph, push a BFS
/// through the tiered view (a realistic frontier-ordered access pattern
/// that faults, evicts, and promotes), and print the per-segment
/// residency table plus the aggregate tier stats.
// VmHWM from /proc/self/status — the OS-observed peak RSS, printed next
// to the tier's own accounting so the two can be cross-checked.
std::size_t peak_rss_bytes() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0)
      return std::strtoull(line.c_str() + 6, nullptr, 10) * 1024;
  }
  return 0;
}

int cmd_store_tiers(const Args& a) {
  const auto g = a.positional.size() >= 3
                     ? load(a.positional[2])
                     : graph::make_rmat(
                           {.scale = static_cast<unsigned>(a.get("scale", 14)),
                            .edge_factor = 16,
                            .seed = a.get("seed", 1)});
  store::TierPolicy pol;
  const std::size_t flat =
      (static_cast<std::size_t>(g.num_vertices()) + 1) * sizeof(eid_t) +
      static_cast<std::size_t>(g.num_arcs()) * sizeof(vid_t) +
      (g.weighted() ? static_cast<std::size_t>(g.num_arcs()) * sizeof(float)
                    : 0);
  pol.budget_bytes = a.flags.count("budget")
                         ? a.get("budget", 0)
                         : static_cast<std::size_t>(
                               static_cast<double>(flat) *
                               a.getf("budget-pct", 25.0) / 100.0);
  const auto tiers = store::TieredGraph::build(g, pol);
  const store::GraphView view = store::GraphView::over_tiers(tiers);
  vid_t src = 0;
  while (src < g.num_vertices() && g.out_degree(src) == 0) ++src;
  if (src < g.num_vertices()) kernels::bfs(view, src);

  const store::TierStats st = tiers->stats();
  const auto rows = tiers->segment_table();
  if (a.flags.count("json")) {
    std::printf(
        "{\"segments\":%u,\"segment_bits\":%u,\"budget_bytes\":%zu,"
        "\"flat_bytes\":%zu,\"encoded_bytes\":%zu,\"resident_bytes\":%zu,"
        "\"peak_resident_bytes\":%zu,\"peak_rss_bytes\":%zu,"
        "\"pinned\":%u,\"resident\":%u,"
        "\"accesses\":%llu,\"faults\":%llu,\"evictions\":%llu,"
        "\"promotions\":%llu,\"rows\":[",
        st.segments, tiers->policy().segment_bits, st.budget_bytes, flat,
        st.encoded_bytes, st.resident_bytes, st.peak_resident_bytes,
        peak_rss_bytes(), st.pinned, st.resident,
        static_cast<unsigned long long>(st.accesses),
        static_cast<unsigned long long>(st.faults),
        static_cast<unsigned long long>(st.evictions),
        static_cast<unsigned long long>(st.promotions));
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const store::SegmentInfo& r = rows[i];
      std::printf(
          "%s{\"id\":%u,\"first\":%u,\"vertices\":%u,\"arcs\":%llu,"
          "\"state\":\"%s\",\"pinned\":%s,\"encoded_bytes\":%zu,"
          "\"decoded_bytes\":%zu,\"accesses\":%llu,\"faults\":%llu,"
          "\"promotion_tick\":%llu}",
          i ? "," : "", r.id, r.first_vertex, r.count,
          static_cast<unsigned long long>(r.arcs),
          r.resident ? "hot" : "cold", r.pinned ? "true" : "false",
          r.encoded_bytes, r.decoded_bytes,
          static_cast<unsigned long long>(r.accesses),
          static_cast<unsigned long long>(r.faults),
          static_cast<unsigned long long>(r.last_promotion_tick));
    }
    std::printf("]}\n");
    return 0;
  }
  std::printf("segments: %u (2^%u vertices each)  budget %.2f MB of %.2f MB "
              "flat (%.0f%%)  cold tier %.2f MB\n",
              st.segments, tiers->policy().segment_bits,
              st.budget_bytes / 1048576.0, flat / 1048576.0,
              flat ? 100.0 * st.budget_bytes / flat : 0.0,
              st.encoded_bytes / 1048576.0);
  std::printf("resident: %u segments, %.2f MB (peak %.2f MB, process peak "
              "RSS %.2f MB)  pinned %u  "
              "accesses %llu  faults %llu  evictions %llu  promotions %llu\n",
              st.resident, st.resident_bytes / 1048576.0,
              st.peak_resident_bytes / 1048576.0,
              peak_rss_bytes() / 1048576.0, st.pinned,
              static_cast<unsigned long long>(st.accesses),
              static_cast<unsigned long long>(st.faults),
              static_cast<unsigned long long>(st.evictions),
              static_cast<unsigned long long>(st.promotions));
  std::printf("%6s %10s %9s %10s %-5s %-6s %10s %10s %10s %8s %6s\n", "seg",
              "first", "vertices", "arcs", "state", "pinned", "enc B",
              "dec B", "accesses", "faults", "promo");
  for (const store::SegmentInfo& r : rows) {
    std::printf("%6u %10u %9u %10llu %-5s %-6s %10zu %10zu %10llu %8llu "
                "%6llu\n",
                r.id, r.first_vertex, r.count,
                static_cast<unsigned long long>(r.arcs),
                r.resident ? "hot" : "cold", r.pinned ? "yes" : "-",
                r.encoded_bytes, r.decoded_bytes,
                static_cast<unsigned long long>(r.accesses),
                static_cast<unsigned long long>(r.faults),
                static_cast<unsigned long long>(r.last_promotion_tick));
  }
  return 0;
}

/// Run crash recovery against a log directory and print the report plus the
/// content digest of the recovered view (compare across runs / replicas).
int cmd_store_recover(const Args& a) {
  GA_CHECK(a.positional.size() >= 3, "store recover: need DIR");
  store::RecoveryOptions opts;
  opts.dir = a.positional[2];
  const auto rec = store::recover(opts);
  const store::RecoveryReport& r = rec.report;
  const store::GraphView v = rec.store->view();
  std::printf("dir:              %s\n", opts.dir.c_str());
  std::printf("recovered epoch:  %llu (checkpoint %llu + %llu replayed, "
              "%llu skipped)\n",
              static_cast<unsigned long long>(r.recovered_epoch),
              static_cast<unsigned long long>(r.checkpoint_epoch),
              static_cast<unsigned long long>(r.replayed),
              static_cast<unsigned long long>(r.skipped));
  std::printf("vertices:         %u\n", v.num_vertices());
  std::printf("arcs:             %llu\n",
              static_cast<unsigned long long>(v.num_arcs()));
  std::printf("torn tail:        %s (%llu bytes cut)\n",
              r.torn_tail ? "yes" : "no",
              static_cast<unsigned long long>(r.torn_bytes));
  std::printf("summary checks:   %llu mismatch(es)\n",
              static_cast<unsigned long long>(r.summary_mismatches));
  std::printf("digest:           %016llx\n",
              static_cast<unsigned long long>(store::view_digest(v)));
  std::printf("recovery time:    %.2f ms\n", r.millis);
  const core::Status st = r.status();
  std::printf("status:           %s\n", st.ok() ? "ok" : st.message().c_str());
  return st.ok() && r.summary_mismatches == 0 ? 0 : 1;
}

/// Churn the versioned delta-chain store — apply --epochs delta batches of
/// --delta random edge inserts/deletes each — and print what the store did
/// with them: chain depth, epoch count, live bytes, compaction stats.
int cmd_store(const Args& a) {
  if (a.positional.size() >= 2 && a.positional[1] == "log-stat") {
    return cmd_store_logstat(a);
  }
  if (a.positional.size() >= 2 && a.positional[1] == "recover") {
    return cmd_store_recover(a);
  }
  if (a.positional.size() >= 2 && a.positional[1] == "tiers") {
    return cmd_store_tiers(a);
  }
  store::CompactionPolicy policy;
  policy.max_chain_depth = static_cast<std::size_t>(a.get("depth", 8));
  policy.auto_compact = a.flags.count("no-compact") == 0;
  auto g = a.positional.size() >= 2
               ? load(a.positional[1])
               : graph::make_rmat({.scale = static_cast<unsigned>(
                                       a.get("scale", 14)),
                                   .edge_factor = 16,
                                   .seed = a.get("seed", 1)});
  const vid_t n = g.num_vertices();
  store::VersionedGraphStore vstore(std::move(g), policy);

  const auto epochs = a.get("epochs", 32);
  const auto delta = a.get("delta", 256);
  core::Xoshiro256 rng(a.get("seed", 1));
  core::WallTimer t;
  for (std::uint64_t e = 0; e < epochs; ++e) {
    store::DeltaBatch batch(/*directed=*/false);
    for (std::uint64_t i = 0; i < delta; ++i) {
      const vid_t u = rng.next_vid(n);
      const vid_t v = rng.next_vid(n);
      if (u == v) continue;
      if (rng.next_below(10) == 0) {
        batch.delete_edge(u, v);
      } else {
        batch.insert_edge(u, v, 1.0f);
      }
    }
    vstore.apply(batch);
  }
  const double churn_ms = t.millis();

  const store::StoreStats s = vstore.stats();
  const store::GraphView v = vstore.view();
  std::printf("epoch:            %llu (%llu delta publishes in %.2f ms)\n",
              static_cast<unsigned long long>(s.epoch),
              static_cast<unsigned long long>(s.delta_publishes), churn_ms);
  std::printf("chain depth:      %zu (policy max %zu, auto-compact %s)\n",
              s.chain_depth, policy.max_chain_depth,
              policy.auto_compact ? "on" : "off");
  std::printf("vertices:         %u\n", v.num_vertices());
  std::printf("arcs:             %llu\n",
              static_cast<unsigned long long>(v.num_arcs()));
  std::printf("base bytes:       %zu\n", s.base_bytes);
  std::printf("delta bytes:      %zu (%.2f%% of base)\n", s.delta_bytes,
              100.0 * static_cast<double>(s.delta_bytes) /
                  static_cast<double>(s.base_bytes ? s.base_bytes : 1));
  std::printf("read amp:         %.3fx\n", s.read_amplification);
  std::printf("compactions:      %llu (%llu failed, last %.2f ms)\n",
              static_cast<unsigned long long>(s.compactions),
              static_cast<unsigned long long>(s.compaction_failures),
              s.last_compact_ms);
  std::printf("last publish:     %.1f us\n", s.last_publish_us);
  return 0;
}

/// Replay a synthetic update stream through the full serving path: each
/// epoch applies a random delta batch to the versioned store, publishes the
/// view (delta summary attached), then times the scheduler's chosen serving
/// tier against a forced batch recompute for WCC and PageRank. A cached BFS
/// query rides along to show the footprint-based carry/invalidate decision.
int cmd_epochs(const Args& a) {
  obs::set_enabled(true);
  auto g = a.positional.size() >= 2
               ? load(a.positional[1])
               : graph::make_rmat({.scale = static_cast<unsigned>(
                                       a.get("scale", 14)),
                                   .edge_factor = 8,
                                   .seed = a.get("seed", 1)});
  const vid_t n = g.num_vertices();
  store::VersionedGraphStore vstore(std::move(g));
  server::AnalyticsServer server;
  server.publish(vstore.view());

  const auto epochs = a.get("epochs", 12);
  const auto delta = a.get("delta", 512);
  const double deletes = a.getf("deletes", 10.0) / 100.0;
  std::printf("replaying %llu epochs of ~%llu ops (%.0f%% deletes) over "
              "n=%u\n\n",
              static_cast<unsigned long long>(epochs),
              static_cast<unsigned long long>(delta), deletes * 100.0, n);

  server::QueryDesc q_wcc;
  q_wcc.kind = server::QueryKind::kWcc;
  q_wcc.use_cache = false;
  server::QueryDesc q_pr;
  q_pr.kind = server::QueryKind::kPageRankTopK;
  q_pr.k = 10;
  q_pr.use_cache = false;
  server::QueryDesc q_wcc_batch = q_wcc;
  q_wcc_batch.allow_incremental = false;
  server::QueryDesc q_pr_batch = q_pr;
  q_pr_batch.allow_incremental = false;
  server::QueryDesc q_bfs;  // cached: shows footprint carry across epochs
  q_bfs.kind = server::QueryKind::kBfs;
  q_bfs.seed = 0;

  // Cold pass seeds the warm state and the BFS cache entry.
  server.execute_now(q_wcc);
  server.execute_now(q_pr);
  server.execute_now(q_bfs);

  core::Xoshiro256 rng(a.get("seed", 1));
  std::printf("%3s %6s | %9s %5s %9s | %9s %5s %9s | %4s | %7s %7s\n", "ep",
              "ops", "wcc-serve", "tier", "wcc-batch", "pr-serve", "tier",
              "pr-batch", "bfs", "carried", "inval");
  std::uint64_t carried_prev = 0, inval_prev = 0;
  for (std::uint64_t e = 1; e <= epochs; ++e) {
    store::DeltaBatch batch;
    for (std::uint64_t i = 0; i < delta; ++i) {
      const vid_t u = rng.next_vid(n);
      const vid_t v = rng.next_vid(n);
      if (u == v) continue;
      if (static_cast<double>(rng.next_below(1000)) < deletes * 1000.0) {
        batch.delete_edge(u, v);
      } else {
        batch.insert_edge(u, v, 1.0f);
      }
    }
    vstore.apply(batch);
    server.publish(vstore.view());

    core::WallTimer t;
    const auto rw = server.execute_now(q_wcc);
    const double wcc_ms = t.millis();
    t.restart();
    server.execute_now(q_wcc_batch);
    const double wccb_ms = t.millis();
    t.restart();
    const auto rp = server.execute_now(q_pr);
    const double pr_ms = t.millis();
    t.restart();
    server.execute_now(q_pr_batch);
    const double prb_ms = t.millis();
    const auto rb = server.execute_now(q_bfs);

    const server::CacheStats cs = server.scheduler().cache().stats();
    std::printf(
        "%3llu %6zu | %8.2fms %5s %8.2fms | %8.2fms %5s %8.2fms | %4s "
        "| %7llu %7llu\n",
        static_cast<unsigned long long>(e), batch.num_ops(), wcc_ms,
        rw.incremental ? "inc" : "batch", wccb_ms, pr_ms,
        rp.incremental ? "inc" : "batch", prb_ms,
        rb.cache_hit ? "hit" : "miss",
        static_cast<unsigned long long>(cs.carried - carried_prev),
        static_cast<unsigned long long>(cs.invalidations - inval_prev));
    carried_prev = cs.carried;
    inval_prev = cs.invalidations;
  }

  const server::SchedulerStats st = server.scheduler().stats();
  const server::CacheStats cs = server.scheduler().cache().stats();
  std::printf("\nscheduler: incremental_served=%llu fallbacks=%llu "
              "cache_hits=%llu\n",
              static_cast<unsigned long long>(st.incremental_served),
              static_cast<unsigned long long>(st.incremental_fallbacks),
              static_cast<unsigned long long>(st.cache_hits));
  std::printf("cache:     carried=%llu invalidations=%llu hit_rate=%.1f%%\n",
              static_cast<unsigned long long>(cs.carried),
              static_cast<unsigned long long>(cs.invalidations),
              100.0 * cs.hit_rate());
  auto& reg = obs::MetricsRegistry::global();
  std::printf("obs:       delta_carried_total=%llu "
              "delta_invalidations_total=%llu\n",
              static_cast<unsigned long long>(
                  reg.counter("serve.cache.delta_carried_total").value()),
              static_cast<unsigned long long>(
                  reg.counter("serve.cache.delta_invalidations_total")
                      .value()));
  return 0;
}

int cmd_generate(const Args& a) {
  GA_CHECK(a.positional.size() >= 2, "generate: missing family");
  const std::string& family = a.positional[1];
  const auto seed = a.get("seed", 1);
  std::vector<graph::Edge> edges;
  if (family == "rmat") {
    edges = graph::rmat_edges({.scale = static_cast<unsigned>(a.get("scale", 12)),
                               .edge_factor = static_cast<unsigned>(a.get("ef", 16)),
                               .seed = seed});
  } else if (family == "er") {
    const auto n = a.get("n", 4096);
    edges = graph::erdos_renyi_edges(static_cast<vid_t>(n),
                                     a.get("m", n * 8), seed);
  } else if (family == "ba") {
    edges = graph::barabasi_albert_edges(static_cast<vid_t>(a.get("n", 4096)),
                                         static_cast<unsigned>(a.get("attach", 4)),
                                         seed);
  } else if (family == "ws") {
    edges = graph::watts_strogatz_edges(static_cast<vid_t>(a.get("n", 4096)),
                                        static_cast<unsigned>(a.get("k", 8)),
                                        a.getf("beta", 0.1), seed);
  } else if (family == "grid") {
    edges = graph::grid_edges(static_cast<vid_t>(a.get("rows", 64)),
                              static_cast<vid_t>(a.get("cols", 64)));
  } else {
    throw Error("unknown family: " + family);
  }
  const std::string out = a.gets("out", "graph.edges");
  graph::save_edge_list(out, edges);
  std::printf("wrote %zu edges to %s\n", edges.size(), out.c_str());
  return 0;
}

int cmd_stats(const Args& a) {
  GA_CHECK(a.positional.size() >= 2, "stats: missing file");
  const auto g = load(a.positional[1]);
  const auto s = graph::compute_degree_stats(g);
  std::printf("vertices:    %u\n", g.num_vertices());
  std::printf("edges:       %llu\n",
              static_cast<unsigned long long>(g.num_edges()));
  std::printf("max degree:  %llu (vertex %u)\n",
              static_cast<unsigned long long>(s.max_degree), s.argmax);
  std::printf("mean degree: %.2f (stddev %.2f)\n", s.mean_degree,
              s.stddev_degree);
  std::printf("isolated:    %u\n", s.isolated_vertices);
  std::printf("degree gini: %.3f\n", graph::degree_gini(g));
  std::printf("approx diameter: %u\n", kernels::approx_diameter(g));
  std::printf("degree histogram (log2 buckets):\n%s", s.log2_histogram.c_str());
  return 0;
}

int cmd_bfs(const Args& a) {
  GA_CHECK(a.positional.size() >= 3, "bfs: need FILE SOURCE");
  const auto g = load(a.positional[1]);
  const auto source = static_cast<vid_t>(std::stoul(a.positional[2]));
  core::WallTimer t;
  const auto r = kernels::bfs(g, source);
  std::printf("reached %llu vertices in %.2f ms; tree valid: %s\n",
              static_cast<unsigned long long>(r.reached), t.millis(),
              kernels::validate_bfs_tree(g, source, r) ? "yes" : "NO");
  return 0;
}

int cmd_pagerank(const Args& a) {
  GA_CHECK(a.positional.size() >= 2, "pagerank: missing file");
  const auto g = load(a.positional[1]);
  core::WallTimer t;
  const auto r = kernels::pagerank(g);
  std::printf("converged=%s iterations=%u (%.2f ms)\n",
              r.converged ? "yes" : "no", r.iterations, t.millis());
  for (const auto& [score, v] : kernels::pagerank_topk(r, a.get("top", 10))) {
    std::printf("  %8u  %.6f\n", v, score);
  }
  return 0;
}

int cmd_components(const Args& a) {
  GA_CHECK(a.positional.size() >= 2, "components: missing file");
  const auto g = load(a.positional[1]);
  core::WallTimer t;
  const auto r = kernels::wcc_union_find(g);
  std::printf("components=%u largest=%u (%.2f ms)\n", r.num_components,
              r.largest_size, t.millis());
  return 0;
}

int cmd_triangles(const Args& a) {
  GA_CHECK(a.positional.size() >= 2, "triangles: missing file");
  const auto g = load(a.positional[1]);
  core::WallTimer t;
  const auto count = kernels::triangle_count_forward(g);
  std::printf("triangles=%llu (%.2f ms)\n",
              static_cast<unsigned long long>(count), t.millis());
  return 0;
}

int cmd_jaccard(const Args& a) {
  GA_CHECK(a.positional.size() >= 3, "jaccard: need FILE VERTEX");
  const auto g = load(a.positional[1]);
  const auto v = static_cast<vid_t>(std::stoul(a.positional[2]));
  core::WallTimer t;
  const auto matches = kernels::jaccard_query(g, v, a.getf("threshold", 0.0));
  std::printf("%zu matches (%.2f ms)\n", matches.size(), t.millis());
  for (std::size_t i = 0; i < matches.size() && i < 10; ++i) {
    std::printf("  %8u  J=%.4f\n", matches[i].v, matches[i].coefficient);
  }
  return 0;
}

/// `dist plan FILE` — dry-run shard placement; `dist status DIR` — query a
/// live coordinator over its AF_UNIX status socket.
int cmd_dist(const Args& a) {
  GA_CHECK(a.positional.size() >= 3,
           "dist: need `plan FILE` or `status DIR`");
  const std::string& sub = a.positional[1];

  if (sub == "plan") {
    const auto g = load(a.positional[2]);
    dist::PartitionPlanOptions opts;
    opts.shards = static_cast<std::uint32_t>(a.get("shards", 3));
    opts.seed = a.get("seed", 1);
    const std::string method = a.gets("method", "hash");
    GA_CHECK(method == "hash" || method == "edge-cut",
             "dist plan: --method must be hash or edge-cut");
    opts.method = method == "hash" ? dist::PartitionMethod::kHash
                                   : dist::PartitionMethod::kEdgeCut;
    core::WallTimer t;
    const auto plan = dist::make_plan(g, opts);
    const double ms = t.millis();
    if (a.flags.count("json")) {
      std::printf("{\"shards\": %u, \"method\": \"%s\", \"vertices\": %u, "
                  "\"arcs\": %llu, \"cut_arcs\": %llu, "
                  "\"cut_fraction\": %.6f, \"load_imbalance\": %.4f, "
                  "\"arc_imbalance\": %.4f}\n",
                  plan.shards, dist::partition_method_name(plan.method),
                  plan.n, static_cast<unsigned long long>(plan.total_arcs),
                  static_cast<unsigned long long>(plan.cut_arcs),
                  plan.cut_fraction(), plan.load_imbalance(),
                  plan.arc_imbalance());
      return 0;
    }
    std::printf("plan: %u shards, %s placement (%.2f ms)\n", plan.shards,
                dist::partition_method_name(plan.method), ms);
    std::printf("cut: %llu / %llu arcs (%.2f%%)  load imbalance %.3f  "
                "arc imbalance %.3f\n",
                static_cast<unsigned long long>(plan.cut_arcs),
                static_cast<unsigned long long>(plan.total_arcs),
                100.0 * plan.cut_fraction(), plan.load_imbalance(),
                plan.arc_imbalance());
    std::printf("%6s %10s %12s %12s %10s\n", "shard", "owned", "arcs",
                "cut arcs", "mirrors");
    for (std::uint32_t s = 0; s < plan.shards; ++s) {
      const auto& st = plan.stats[s];
      std::printf("%6u %10u %12llu %12llu %10u\n", s, st.owned,
                  static_cast<unsigned long long>(st.arcs),
                  static_cast<unsigned long long>(st.cut_arcs), st.mirrors);
    }
    return 0;
  }

  if (sub == "status") {
    const std::string path =
        dist::Coordinator::status_socket_path(a.positional[2]);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    GA_CHECK(fd >= 0, "dist status: socket failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    GA_CHECK(path.size() < sizeof(addr.sun_path),
             "dist status: socket path too long: " + path);
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      std::fprintf(stderr, "dist status: cannot connect to %s: %s\n",
                   path.c_str(), std::strerror(errno));
      ::close(fd);
      return 1;
    }
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n <= 0) break;
      std::fwrite(buf, 1, static_cast<std::size_t>(n), stdout);
    }
    std::printf("\n");
    ::close(fd);
    return 0;
  }

  std::fprintf(stderr, "dist: unknown subcommand %s\n", sub.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse(argc, argv);
    if (args.positional.empty()) return usage();
    const std::string& cmd = args.positional[0];
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "kernels") return cmd_kernels(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "metrics") return cmd_metrics(args);
    if (cmd == "store") return cmd_store(args);
    if (cmd == "dist") return cmd_dist(args);
    if (cmd == "epochs") return cmd_epochs(args);
    if (cmd == "bfs") return cmd_bfs(args);
    if (cmd == "pagerank") return cmd_pagerank(args);
    if (cmd == "components") return cmd_components(args);
    if (cmd == "triangles") return cmd_triangles(args);
    if (cmd == "jaccard") return cmd_jaccard(args);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
