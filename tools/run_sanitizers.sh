#!/usr/bin/env bash
# Sanitizer sweep for the traversal engine and tier-1 tests:
#   1. ASan+UBSan build running the full ctest suite.
#   2. TSan build running the BFS / connected-components / engine /
#      thread-pool tests (the code with parallel engine paths), plus the
#      serving, obs, versioned-store, incremental, and recovery suites
#      (snapshot churn, registry concurrency, concurrent
#      publish/lease/compact, warm-state handoff across epoch publishes,
#      standby log-tailing under live writer load), plus the dist suite's
#      in-process shard harness (coordinator op thread vs heartbeat
#      monitor vs shard server threads), plus the tiered suite's
#      concurrent fault/evict/corrupt churn (readers pinning slabs while
#      the clock evicts and a chaos thread flips cold-block bytes).
# Each sanitizer gets its own build tree under build-san/ so the regular
# build/ directory is never polluted. Exits nonzero on the first failure.
#
# chaos mode (`run_sanitizers.sh chaos`): the fault-tolerance suite only —
# WAL recovery sweeps + fault injection under ASan+UBSan (use-after-free /
# OOB on the torn-tail and corruption paths), and the backpressure queue +
# producer/consumer tests under TSan (the cross-thread boundary).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"
MODE="${1:-full}"

if [[ "$MODE" == "chaos" ]]; then
  echo "=== [chaos/asan-ubsan] configure + build resilience suite ==="
  ASAN_DIR="$ROOT/build-san/asan-ubsan"
  cmake -B "$ASAN_DIR" -S "$ROOT" -DGA_SANITIZE=address,undefined \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$ASAN_DIR" -j "$JOBS" \
        --target ga_resilience_tests ga_recovery_tests ga_dist_tests > /dev/null
  echo "=== [chaos/asan-ubsan] resilience suite (recovery + fault injection) ==="
  "$ASAN_DIR/tests/ga_resilience_tests"
  echo "=== [chaos/asan-ubsan] epoch-log suite (kill-anywhere + torn tails) ==="
  "$ASAN_DIR/tests/ga_recovery_tests"
  echo "=== [chaos/asan-ubsan] dist suite (in-process harness: protocol + fail-over) ==="
  "$ASAN_DIR/tests/ga_dist_tests" \
      --gtest_filter='DistMessage.*:DistPartitioner.*:DistCoordinator.Inproc*:DistCoordinator.Status*:DistFailover.Inproc*'

  echo "=== [chaos/tsan] configure + build resilience + serving + store suites ==="
  TSAN_DIR="$ROOT/build-san/tsan"
  cmake -B "$TSAN_DIR" -S "$ROOT" -DGA_SANITIZE=thread \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$TSAN_DIR" -j "$JOBS" \
        --target ga_resilience_tests ga_serving_tests ga_store_tests \
                 ga_incremental_tests ga_recovery_tests > /dev/null
  echo "=== [chaos/tsan] backpressure queue + streaming handoff tests ==="
  "$TSAN_DIR/tests/ga_resilience_tests" \
      --gtest_filter='IngestQueue*:Backpressure*:RunStream*:Wal.AsyncDrain*'
  echo "=== [chaos/tsan] serving suite (snapshot churn + concurrent clients) ==="
  "$TSAN_DIR/tests/ga_serving_tests"
  echo "=== [chaos/tsan] store suite (concurrent publish/lease/compact churn) ==="
  "$TSAN_DIR/tests/ga_store_tests" --gtest_filter='StoreConcurrency*:StreamPublication*'
  echo "=== [chaos/tsan] incremental suite (warm-state handoff across epoch publishes) ==="
  "$TSAN_DIR/tests/ga_incremental_tests"
  echo "=== [chaos/tsan] standby promotion under live writer load ==="
  "$TSAN_DIR/tests/ga_recovery_tests" --gtest_filter='Recovery.Standby*:Recovery.Promote*'
  echo "Chaos sanitizer suites passed."
  exit 0
fi

echo "=== [asan-ubsan] configure + build (-fsanitize=address,undefined) ==="
ASAN_DIR="$ROOT/build-san/asan-ubsan"
cmake -B "$ASAN_DIR" -S "$ROOT" -DGA_SANITIZE=address,undefined \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build "$ASAN_DIR" -j "$JOBS" > /dev/null
echo "=== [asan-ubsan] full ctest ==="
(cd "$ASAN_DIR" && ctest --output-on-failure -j "$JOBS")

echo "=== [tsan] configure + build (-fsanitize=thread) ==="
TSAN_DIR="$ROOT/build-san/tsan"
cmake -B "$TSAN_DIR" -S "$ROOT" -DGA_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build "$TSAN_DIR" -j "$JOBS" \
      --target ga_tests ga_serving_tests ga_obs_tests ga_store_tests \
               ga_incremental_tests ga_recovery_tests ga_dist_tests \
               ga_tiered_tests > /dev/null
echo "=== [tsan] parallel-path tests ==="
"$TSAN_DIR/tests/ga_tests" --gtest_filter='Bfs*:Wcc*:Engine*:ThreadPool*:Betweenness*'
echo "=== [tsan] serving suite (snapshot lifetime + scheduler concurrency) ==="
"$TSAN_DIR/tests/ga_serving_tests"
echo "=== [tsan] obs suite (registry/tracer concurrency) ==="
"$TSAN_DIR/tests/ga_obs_tests"
echo "=== [tsan] store suite (delta publish / lease / background compaction) ==="
"$TSAN_DIR/tests/ga_store_tests"
echo "=== [tsan] incremental suite (delta contract + warm-state handoff) ==="
"$TSAN_DIR/tests/ga_incremental_tests"
echo "=== [tsan] recovery suite (log append + standby tail/promotion races) ==="
"$TSAN_DIR/tests/ga_recovery_tests"
echo "=== [tsan] dist suite (in-process shards: coordinator/monitor/server races) ==="
"$TSAN_DIR/tests/ga_dist_tests" \
    --gtest_filter='DistCoordinator.Inproc*:DistCoordinator.Status*:DistFailover.Inproc*'
echo "=== [tsan] tiered suite (concurrent fault/evict/corrupt churn vs pinned readers) ==="
"$TSAN_DIR/tests/ga_tiered_tests" \
    --gtest_filter='TieredConcurrency.*:TieredGraph.Budget*'

echo "All sanitizer suites passed."
