// ga_shard: the shard-process entry point of the sharded serving
// subsystem. The coordinator posix_spawns one of these per shard with its
// end of a socketpair on a known fd; everything else (identity, subdomain,
// epoch-log directory) arrives over the wire via kInit / kInitRecover.
//
//   ga_shard --fd 3
//
// The process exits 0 when the coordinator shuts it down (kShutdown) or
// dies (socket EOF), and non-zero only on a malformed invocation.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>

#include "dist/message.hpp"
#include "dist/shard_server.hpp"

int main(int argc, char** argv) {
  int fd = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fd") == 0 && i + 1 < argc) {
      fd = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s --fd <n>\n", argv[0]);
      return 2;
    }
  }
  if (fd < 0) {
    std::fprintf(stderr, "%s: missing --fd <n>\n", argv[0]);
    return 2;
  }
  try {
    ga::dist::MsgChannel ch(fd);
    ga::dist::ShardServer server;
    server.serve(ch);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ga_shard: fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
