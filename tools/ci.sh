#!/usr/bin/env bash
# One-shot CI gate: configure + build everything, run the full ctest
# suite, then the sanitizer sweeps (ASan+UBSan full suite, TSan on the
# parallel paths including the serving layer, plus the resilience chaos
# mode). This is the exact sequence a PR must pass; run it locally
# before pushing.
#
# Usage:
#   tools/ci.sh           # full gate (build + tests + sanitizers)
#   tools/ci.sh fast      # build + tests only, skip sanitizer rebuilds
#
# Environment:
#   JOBS=N     parallelism (default: nproc)
#   BUILD_DIR  primary build tree (default: <repo>/build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
MODE="${1:-full}"

echo "=== [ci] configure (${BUILD_DIR}) ==="
cmake -B "$BUILD_DIR" -S "$ROOT" > /dev/null

echo "=== [ci] build (-j ${JOBS}) ==="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "=== [ci] ctest (full suite) ==="
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")

echo "=== [ci] ctest (serving label, repeated for flake detection) ==="
(cd "$BUILD_DIR" && ctest --output-on-failure -L serving --repeat until-fail:2)

if [[ "$MODE" == "fast" ]]; then
  echo "=== [ci] fast mode: skipping sanitizer sweeps ==="
  echo "CI gate (fast) passed."
  exit 0
fi

echo "=== [ci] sanitizer sweep (full) ==="
"$ROOT/tools/run_sanitizers.sh"

echo "=== [ci] sanitizer sweep (chaos: resilience + serving) ==="
"$ROOT/tools/run_sanitizers.sh" chaos

echo "CI gate passed."
