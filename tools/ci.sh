#!/usr/bin/env bash
# One-shot CI gate: configure + build everything, run the full ctest
# suite, then the sanitizer sweeps (ASan+UBSan full suite, TSan on the
# parallel paths including the serving layer, plus the resilience chaos
# mode). This is the exact sequence a PR must pass; run it locally
# before pushing.
#
# Usage:
#   tools/ci.sh           # full gate (build + tests + sanitizers)
#   tools/ci.sh fast      # build + tests only, skip sanitizer rebuilds
#
# Environment:
#   JOBS=N     parallelism (default: nproc)
#   BUILD_DIR  primary build tree (default: <repo>/build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
MODE="${1:-full}"

echo "=== [ci] configure (${BUILD_DIR}) ==="
cmake -B "$BUILD_DIR" -S "$ROOT" > /dev/null

echo "=== [ci] build (-j ${JOBS}) ==="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "=== [ci] ctest (full suite) ==="
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")

echo "=== [ci] ctest (serving label, repeated for flake detection) ==="
(cd "$BUILD_DIR" && ctest --output-on-failure -L serving --repeat until-fail:2)

echo "=== [ci] obs overhead gate (graph500_bfs scale 16, disabled obs vs compiled-out) ==="
# The observability layer promises <=2% overhead on hot traversal loops
# when runtime-disabled. Compare the regular build with obs disabled
# (--no-obs: the one relaxed load per super-step stays) against a
# GA_OBS_NOOP build (instrumentation compiled out entirely).
NOOP_DIR="$ROOT/build-noobs"
cmake -B "$NOOP_DIR" -S "$ROOT" -DGA_OBS_NOOP=ON > /dev/null
cmake --build "$NOOP_DIR" -j "$JOBS" --target graph500_bfs > /dev/null
gate_mteps() { # binary flags... -> best-of-3 harmonic-mean MTEPS (dirop row)
  for _ in 1 2 3; do
    "$@" --scale 16 | awk '/direction-opt .*MTEPS/ {print $(NF-4)}'
  done | sort -g | tail -1
}
BASE=$(gate_mteps "$NOOP_DIR/bench/graph500_bfs")
DISABLED=$(gate_mteps "$BUILD_DIR/bench/graph500_bfs" --no-obs)
python3 - "$BASE" "$DISABLED" <<'EOF'
import sys
base, disabled = float(sys.argv[1]), float(sys.argv[2])
overhead = (base - disabled) / base * 100.0
print(f"[ci] obs-disabled {disabled:.2f} MTEPS vs compiled-out {base:.2f} MTEPS "
      f"-> overhead {overhead:+.2f}%")
# Allow 2% plus measurement noise headroom on shared CI hosts.
sys.exit(0 if overhead <= 2.0 else 1)
EOF

echo "=== [ci] delta publish gate (serving_load --publish-bench, scale 20, 0.1% churn) ==="
# The versioned store promises O(Δ) epoch publication: a delta publish must
# be >=10x faster (p99) than a full-CSR rebuild at scale 20 with 0.1% edge
# churn, and compaction must bring read amplification back to <=1.5x.
(cd "$BUILD_DIR" && ./bench/serving_load --publish-bench --scale 20 --churn 0.001 --json)
python3 - "$BUILD_DIR/BENCH_serving_load.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
speedup = d["publish_speedup_p99"]
read_amp = d["read_amplification_after_compaction"]
print(f"[ci] delta publish p99 speedup {speedup:.1f}x (gate >=10x), "
      f"read amplification after compaction {read_amp:.3f}x (gate <=1.5x)")
sys.exit(0 if speedup >= 10.0 and read_amp <= 1.5 else 1)
EOF

echo "=== [ci] incremental serving gate (serving_load --incremental-bench, scale 18, 0.2% churn) ==="
# The incremental tier promises warm refinement beats batch recompute by
# >=10x (p50) for WCC under insert-only churn of <=1% per epoch, with the
# warm path actually serving every epoch (no silent fallback-to-batch).
(cd "$BUILD_DIR" && ./bench/serving_load --incremental-bench --scale 18 --churn 0.002 --json)
python3 - "$BUILD_DIR/BENCH_serving_load.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
speedup = d["wcc_warm_speedup_p50"]
served, epochs = d["wcc_warm_served"], d["epochs"]
print(f"[ci] warm incremental WCC p50 speedup {speedup:.1f}x (gate >=10x), "
      f"warm-served {served}/{epochs} epochs (gate all)")
sys.exit(0 if speedup >= 10.0 and served == epochs else 1)
EOF

echo "=== [ci] recovery gate (kill-anywhere sweep + scale-18 recovery < 2s) ==="
# The durable epoch log promises: acked => durable (the kill-anywhere ctest
# sweep), a 64-epoch scale-18 recovery under 2 s, and double-recovery
# idempotence (identical digests, no re-applied epochs).
(cd "$BUILD_DIR" && ctest --output-on-failure -L recovery -j "$JOBS")
(cd "$BUILD_DIR" && ./bench/recovery_bench --scale 18 --epochs 64 --json)
python3 - "$BUILD_DIR/BENCH_recovery.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
ms, replayed = d["recover_ms"], d["replayed"]
idem = d["digest_idempotent"] == 1 and d["digest_matches_primary"] == 1
promote = d["standby_digest_matches"] == 1
print(f"[ci] recovery {ms:.0f} ms for {replayed} epochs (gate < 2000 ms), "
      f"idempotent={idem}, standby-promote-match={promote}")
sys.exit(0 if ms < 2000.0 and replayed == 64 and idem and promote else 1)
EOF

echo "=== [ci] dist gate (3-shard scatter/gather digest match + kill -9 fail-over) ==="
# The sharded serving subsystem promises: distributed BFS/PageRank/WCC over
# real shard processes digest-identical to the single-process kernels at
# every shard count, and kill -9 fail-over (epoch-log recovery + catch-up)
# back to a correct answer in under 5 s with zero wrong answers meanwhile.
(cd "$BUILD_DIR" && ctest --output-on-failure -L dist -j "$JOBS")
(cd "$BUILD_DIR" && ./bench/dist_bench --scale 13 --queries 5 --json)
python3 - "$BUILD_DIR/BENCH_dist.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
blackout = d["failover_blackout_ms"]
ok = (d["digest_match"] == 1 and d["wrong_answers"] == 0
      and d["shards"] == 3 and d["failover_recovered"] == 1
      and 0.0 <= blackout < 5000.0)
print(f"[ci] dist digest_match={d['digest_match']} "
      f"wrong_answers={d['wrong_answers']} shards={d['shards']} "
      f"fail-over blackout {blackout:.0f} ms (gate < 5000 ms)")
sys.exit(0 if ok else 1)
EOF

echo "=== [ci] perf gate (scale-20 GAP protocol vs committed baselines) ==="
# Kernel-speed regression gate: run the GAP-protocol benches (untimed
# warmup, n timed trials, per-trial output verification outside the
# clock, harmonic-mean rates) at scale 20 and diff every timing metric
# against the committed repo-root baselines with tools/bench_compare,
# failing on >15% regression. Two noise defenses for shared CI hosts
# (observed contention modes swing deterministic benches by ±36%):
# the committed baseline is a worst-of-K calibration envelope
# (bench_compare --envelope over several quiet+noisy runs -- tight bars
# where the box is stable, slack only where it is not), and one failed
# comparison earns one re-run; a regression that reproduces on both
# attempts fails the gate.
perf_gate() { # perf_gate NAME BASELINE FRESH BENCH-CMD...
  local name="$1" baseline="$2" fresh="$3"
  shift 3
  local attempt
  for attempt in 1 2; do
    (cd "$BUILD_DIR" && "$@" > /dev/null)
    if "$BUILD_DIR/tools/bench_compare" "$baseline" "$fresh" --threshold 15; then
      return 0
    fi
    if [[ "$attempt" == 1 ]]; then
      echo "[ci] $name: regression on attempt 1; re-running to rule out box noise"
    fi
  done
  echo "[ci] $name: regression reproduced on both attempts -- perf gate failed"
  return 1
}
perf_gate graph500 "$ROOT/BENCH_graph500.json" \
  "$BUILD_DIR/BENCH_graph500_bfs.json" ./bench/graph500_bfs --scale 20 --json
perf_gate kernels "$ROOT/BENCH_kernels.json" \
  "$BUILD_DIR/BENCH_micro_kernels.json" ./bench/micro_kernels --graph kron20 --json
perf_gate tiered "$ROOT/BENCH_tiered.json" \
  "$BUILD_DIR/BENCH_tiered_bench.json" ./bench/tiered_bench --graph kron18 --json

echo "=== [ci] tiered gate (kron18 budget sweep: digests + enforced 25% budget + peak RSS) ==="
# The two-tier store promises: kernel outputs digest-identical to flat
# CSR at every budget point, and the 25%-budget run actually holding its
# byte budget (peak accounted resident bytes, transient serves included,
# within +5% slack). Peak RSS (VmHWM via bench::peak_rss_bytes) rides the
# artifact so the tier's own accounting can be checked against what the
# OS saw. Reuses the artifact the perf gate above just produced.
python3 - "$BUILD_DIR/BENCH_tiered_bench.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
digests_ok = all(d[f"{b}_digest_ok"] == 1 for b in ("b100", "b50", "b25", "b12"))
held = (d["b25_within_budget"] == 1
        and d["b25_peak_bytes"] <= d["b25_budget_bytes"] * 1.05)
print(f"[ci] tiered digests ok={digests_ok} (4 budget points), "
      f"25%-budget peak {d['b25_peak_bytes']}/{d['b25_budget_bytes']} B held={held}, "
      f"slowdown bfs {d['slowdown_bfs_b25']:.1f}x pagerank {d['slowdown_pagerank_b25']:.1f}x "
      f"wcc {d['slowdown_wcc_b25']:.1f}x, peak RSS {d['peak_rss_bytes'] / 1048576.0:.0f} MiB")
sys.exit(0 if digests_ok and held and d["verify_failures"] == 0 else 1)
EOF

echo "=== [ci] bench artifacts (repo root) ==="
# Machine-readable artifacts for sweep diffing at stable repo-root names:
# the gated incremental serving numbers plus the scale-20 graph500 and
# kernel-suite runs the perf gate just produced. Committing refreshed
# BENCH_graph500.json / BENCH_kernels.json is how the perf baseline
# ratchets forward -- deliberately manual, and new baselines should be
# envelopes over several runs (bench_compare --envelope), not single
# runs; see DESIGN.md section 15.
cp "$BUILD_DIR/BENCH_serving_load.json" "$ROOT/BENCH_serving.json"
cp "$BUILD_DIR/BENCH_graph500_bfs.json" "$ROOT/BENCH_graph500.json"
cp "$BUILD_DIR/BENCH_micro_kernels.json" "$ROOT/BENCH_kernels.json"
cp "$BUILD_DIR/BENCH_recovery.json" "$ROOT/BENCH_recovery.json"
cp "$BUILD_DIR/BENCH_dist.json" "$ROOT/BENCH_dist.json"
cp "$BUILD_DIR/BENCH_tiered_bench.json" "$ROOT/BENCH_tiered.json"
echo "[ci] wrote $ROOT/BENCH_serving.json, $ROOT/BENCH_graph500.json, $ROOT/BENCH_kernels.json, $ROOT/BENCH_recovery.json, $ROOT/BENCH_dist.json, and $ROOT/BENCH_tiered.json"

if [[ "$MODE" == "fast" ]]; then
  echo "=== [ci] fast mode: skipping sanitizer sweeps ==="
  echo "CI gate (fast) passed."
  exit 0
fi

echo "=== [ci] sanitizer sweep (full) ==="
"$ROOT/tools/run_sanitizers.sh"

echo "=== [ci] sanitizer sweep (chaos: resilience + serving) ==="
"$ROOT/tools/run_sanitizers.sh" chaos

echo "CI gate passed."
