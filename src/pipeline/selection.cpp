#include "pipeline/selection.hpp"

#include <algorithm>

#include "core/topk.hpp"

namespace ga::pipeline {

std::vector<vid_t> select_seeds(const GraphStore& store,
                                const SelectionCriteria& criteria) {
  if (!criteria.explicit_seeds.empty()) {
    auto seeds = criteria.explicit_seeds;
    for (vid_t s : seeds) {
      GA_CHECK(s < store.num_vertices(), "seed out of range");
    }
    std::sort(seeds.begin(), seeds.end());
    seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
    return seeds;
  }
  GA_CHECK(!criteria.topk_property.empty(),
           "selection needs explicit seeds or a top-k property");
  const auto& col = store.properties().doubles(criteria.topk_property);
  core::TopK<vid_t, double> top(criteria.k);
  for (vid_t v = 0; v < store.num_vertices(); ++v) {
    if (store.vertex_class(v) != criteria.vertex_class) continue;
    if (criteria.predicate && !criteria.predicate(v)) continue;
    top.offer(col[v], v);
  }
  std::vector<vid_t> seeds;
  for (const auto& [score, v] : top.sorted_desc()) seeds.push_back(v);
  std::sort(seeds.begin(), seeds.end());
  return seeds;
}

}  // namespace ga::pipeline
