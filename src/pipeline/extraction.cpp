#include "pipeline/extraction.hpp"

#include <algorithm>

#include "graph/builder.hpp"
#include "kernels/bfs.hpp"

namespace ga::pipeline {

ExtractedSubgraph::ExtractedSubgraph(graph::CSRGraph g,
                                     std::vector<vid_t> members,
                                     graph::PropertyTable props)
    : g_(std::move(g)), members_(std::move(members)), props_(std::move(props)) {
  GA_CHECK(g_.num_vertices() == members_.size(),
           "ExtractedSubgraph: member map mismatch");
}

vid_t ExtractedSubgraph::local_id(vid_t global) const {
  const auto it = std::lower_bound(members_.begin(), members_.end(), global);
  if (it == members_.end() || *it != global) return kInvalidVid;
  return static_cast<vid_t>(it - members_.begin());
}

void ExtractedSubgraph::write_back(GraphStore& store) const {
  store.properties().write_back(props_, members_);
}

ExtractedSubgraph extract(const GraphStore& store,
                          const std::vector<vid_t>& seeds,
                          const ExtractionOptions& opts) {
  GA_CHECK(!seeds.empty(), "extract: no seeds");
  // Read through the versioned store: an O(Δ) sync instead of an O(|E|)
  // snapshot per extraction. The k-hop walk and the edge collection both
  // run on the merged delta-chain view directly.
  const store::GraphView view = store.view();
  const std::vector<vid_t> members =
      kernels::khop_neighborhood(view, seeds, opts.depth);

  const auto local_of = [&](vid_t v) -> vid_t {
    const auto it = std::lower_bound(members.begin(), members.end(), v);
    return (it != members.end() && *it == v)
               ? static_cast<vid_t>(it - members.begin())
               : kInvalidVid;
  };

  std::vector<graph::Edge> edges;
  for (vid_t lu = 0; lu < members.size(); ++lu) {
    view.for_each_out(members[lu], [&](vid_t v, float w) {
      const vid_t lv = local_of(v);
      if (lv == kInvalidVid || lv <= lu) return;
      edges.push_back(graph::Edge{lu, lv, w, 0});
    });
  }
  graph::BuildOptions bopts;
  bopts.directed = false;
  bopts.keep_weights = true;
  auto sub = graph::build_csr(std::move(edges),
                              static_cast<vid_t>(members.size()), bopts);

  // Project the requested property columns (always include "class" so
  // downstream analytics can tell people from addresses).
  std::vector<std::string> keep = opts.projected_properties;
  if (std::find(keep.begin(), keep.end(), "class") == keep.end() &&
      store.properties().has_column("class")) {
    keep.push_back("class");
  }
  graph::PropertyTable projected = store.properties().project(members, keep);
  return ExtractedSubgraph(std::move(sub), members, std::move(projected));
}

}  // namespace ga::pipeline
