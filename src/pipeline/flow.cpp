#include "pipeline/flow.hpp"

#include <algorithm>

#include "core/timer.hpp"

namespace ga::pipeline {

GraphStore& CanonicalFlow::store() {
  GA_CHECK(store_ != nullptr, "run_batch first");
  return *store_;
}

BatchFlowResult CanonicalFlow::run_batch(const Corpus& corpus,
                                         const BatchFlowOptions& opts) {
  BatchFlowResult out;
  nora_opts_ = opts.nora;
  core::WallTimer timer;

  // Stage 1: batch dedup.
  timer.restart();
  DedupResult dedup = dedup_batch(corpus.records, opts.dedup);
  out.timings.push_back({"dedup", timer.seconds(),
                         std::to_string(dedup.entities.size()) + " entities from " +
                             std::to_string(corpus.records.size()) + " records"});
  out.dedup_quality = score_dedup(corpus.records, dedup.entity_of_record);
  out.num_entities = dedup.entities.size();

  // Stage 2: build the persistent graph store.
  timer.restart();
  store_ = std::make_unique<GraphStore>(dedup.entities, corpus.num_addresses);
  out.timings.push_back({"build_store", timer.seconds(),
                         std::to_string(store_->num_vertices()) + " vertices, " +
                             std::to_string(store_->graph().num_edges()) +
                             " edges"});

  // Stage 3: the weekly NORA "boil" (precompute + write-back).
  timer.restart();
  NoraBoilResult boil = nora_boil(*store_, opts.nora);
  out.timings.push_back({"nora_boil", timer.seconds(),
                         std::to_string(boil.relationships.size()) +
                             " relationships from " +
                             std::to_string(boil.candidate_pairs) +
                             " candidate pairs"});
  out.num_relationships = boil.relationships.size();
  // Map ground-truth people to deduped vertices for ring recall.
  std::vector<vid_t> vertex_of_true(corpus.num_people, kInvalidVid);
  for (std::size_t i = 0; i < corpus.records.size(); ++i) {
    const auto t = corpus.records[i].true_person;
    if (vertex_of_true[t] == kInvalidVid) {
      vertex_of_true[t] = static_cast<vid_t>(dedup.entity_of_record[i]);
    }
  }
  out.ring_recall =
      nora_ring_recall(boil.relationships, corpus.rings, vertex_of_true);

  // Stage 4: selection criteria -> seeds.
  timer.restart();
  SelectionCriteria criteria = opts.selection;
  if (criteria.explicit_seeds.empty() && criteria.topk_property.empty()) {
    criteria.topk_property = "nora_relationships";
  }
  out.seeds = select_seeds(*store_, criteria);
  out.timings.push_back(
      {"select", timer.seconds(), std::to_string(out.seeds.size()) + " seeds"});

  // Stage 5: subgraph extraction with property projection.
  timer.restart();
  ExtractionOptions ex = opts.extraction;
  if (ex.projected_properties.empty()) {
    ex.projected_properties = {"credit_score", "nora_relationships"};
  }
  ExtractedSubgraph sub = extract(*store_, out.seeds, ex);
  out.extracted_vertices = sub.num_vertices();
  out.timings.push_back({"extract", timer.seconds(),
                         std::to_string(sub.num_vertices()) + " vertices"});

  // Stage 6: batch analytic on the extracted subgraph.
  timer.restart();
  const AnalyticRegistry registry = AnalyticRegistry::with_builtins();
  AnalyticOutput an = registry.run(opts.analytic, sub);
  out.analytic_scalar = an.scalar;
  out.analytic_steps = std::move(an.steps);
  out.timings.push_back(
      {"analytic:" + opts.analytic, timer.seconds(),
       "scalar=" + std::to_string(an.scalar) + ", " +
           std::to_string(out.analytic_steps.size()) + " engine steps"});

  // Stage 7: property write-back into the persistent store.
  timer.restart();
  sub.write_back(*store_);
  out.timings.push_back({"write_back", timer.seconds(),
                         "column " + an.column_written});

  // Streaming state for subsequent ingests: seed the inline deduper with
  // the batch entities so streaming records resolve against them.
  inline_dedup_ = std::make_unique<InlineDeduper>(opts.dedup);
  inline_dedup_->preload(dedup.entities);
  entity_vertex_.resize(dedup.entities.size());
  for (std::size_t i = 0; i < dedup.entities.size(); ++i) {
    entity_vertex_[i] = store_->person_vertex(i);
  }
  return out;
}

bool CanonicalFlow::ingest_streaming(const RawRecord& rec) {
  GA_CHECK(store_ != nullptr && inline_dedup_ != nullptr, "run_batch first");
  core::WallTimer timer;
  const std::size_t before = inline_dedup_->entities().size();
  const std::uint64_t eid = inline_dedup_->ingest(rec);
  const Entity& e = inline_dedup_->entities()[eid];

  vid_t person;
  if (eid >= entity_vertex_.size()) {
    // Brand-new streaming entity: new person vertex.
    person = store_->add_person(e, rec.ts);
    entity_vertex_.push_back(person);
  } else {
    person = static_cast<vid_t>(entity_vertex_[eid]);
    store_->add_residency(person, rec.address_id, rec.ts);
  }
  (void)before;

  // Threshold test: does this update create a qualifying relationship?
  // Only the touched person needs rechecking (the paper's "simply adding
  // more validity to a pre-identified relationship needs no more
  // processing" guard is the count comparison against the stored column).
  const auto rels = nora_query(*store_, person, nora_opts_);
  auto& col = store_->properties().doubles("nora_relationships");
  const double prev = col[person];
  const double now = static_cast<double>(rels.size());
  bool triggered = false;
  if (now > prev) {
    col[person] = now;
    for (const Relationship& rel : rels) {
      const vid_t other = rel.a == person ? rel.b : rel.a;
      auto others = nora_query(*store_, other, nora_opts_);
      col[other] = static_cast<double>(others.size());
    }
    ++stream_triggers_;
    triggered = true;
  }
  stream_timings_.push_back({"ingest", timer.seconds(),
                             triggered ? "triggered" : "absorbed"});
  return triggered;
}

std::vector<Relationship> CanonicalFlow::query(vid_t person) const {
  GA_CHECK(store_ != nullptr, "run_batch first");
  return nora_query(*store_, person, nora_opts_);
}

}  // namespace ga::pipeline
