#include "pipeline/flow.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "core/timer.hpp"
#include "engine/telemetry.hpp"
#include "obs/trace.hpp"

namespace ga::pipeline {

namespace {

/// Observability sink for one finished flow stage: stage-latency histogram
/// plus — under an active trace — a retroactive child span carrying the
/// stage's detail line.
void obs_stage(const StageTiming& t) {
  if (!obs::enabled()) return;
  auto& reg = obs::MetricsRegistry::global();
  static obs::Counter& c_stages = reg.counter("flow.stages_total");
  static obs::Histogram& h_stage = reg.histogram("flow.stage_us");
  c_stages.add();
  h_stage.observe(t.seconds * 1e6);
  obs::Tracer& tracer = obs::Tracer::global();
  const obs::TraceContext parent = obs::ambient();
  if (!tracer.active() || !parent.valid()) return;
  const std::string name = "flow." + t.stage;
  const double ms = t.seconds * 1e3;
  tracer.emit_interval(parent, name, tracer.now_ms() - ms, ms,
                       obs::BoundResource::kNone, core::StatusCode::kOk,
                       t.detail);
}

obs::Counter& stream_counter(const char* name) {
  return obs::MetricsRegistry::global().counter(name);
}

}  // namespace

GraphStore& CanonicalFlow::store() {
  GA_CHECK(store_ != nullptr, "run_batch first");
  return *store_;
}

BatchFlowResult CanonicalFlow::run_batch(const Corpus& corpus,
                                         const BatchFlowOptions& opts) {
  BatchFlowResult out;
  nora_opts_ = opts.nora;
  obs::ScopedSpan flow_span("flow.run_batch", obs::ambient());
  obs::AmbientScope flow_ambient(flow_span.context());
  core::WallTimer timer;

  // Stage 1: batch dedup.
  timer.restart();
  DedupResult dedup = dedup_batch(corpus.records, opts.dedup);
  out.timings.push_back({"dedup", timer.seconds(),
                         std::to_string(dedup.entities.size()) + " entities from " +
                             std::to_string(corpus.records.size()) + " records"});
  obs_stage(out.timings.back());
  out.dedup_quality = score_dedup(corpus.records, dedup.entity_of_record);
  out.num_entities = dedup.entities.size();

  // Stage 2: build the persistent graph store.
  timer.restart();
  store_ = std::make_unique<GraphStore>(dedup.entities, corpus.num_addresses);
  out.timings.push_back({"build_store", timer.seconds(),
                         std::to_string(store_->num_vertices()) + " vertices, " +
                             std::to_string(store_->graph().num_edges()) +
                             " edges"});
  obs_stage(out.timings.back());

  // Stage 3: the weekly NORA "boil" (precompute + write-back).
  timer.restart();
  NoraBoilResult boil = nora_boil(*store_, opts.nora);
  out.timings.push_back({"nora_boil", timer.seconds(),
                         std::to_string(boil.relationships.size()) +
                             " relationships from " +
                             std::to_string(boil.candidate_pairs) +
                             " candidate pairs"});
  obs_stage(out.timings.back());
  out.num_relationships = boil.relationships.size();
  // Map ground-truth people to deduped vertices for ring recall.
  std::vector<vid_t> vertex_of_true(corpus.num_people, kInvalidVid);
  for (std::size_t i = 0; i < corpus.records.size(); ++i) {
    const auto t = corpus.records[i].true_person;
    if (vertex_of_true[t] == kInvalidVid) {
      vertex_of_true[t] = static_cast<vid_t>(dedup.entity_of_record[i]);
    }
  }
  out.ring_recall =
      nora_ring_recall(boil.relationships, corpus.rings, vertex_of_true);

  // Stage 4: selection criteria -> seeds.
  timer.restart();
  SelectionCriteria criteria = opts.selection;
  if (criteria.explicit_seeds.empty() && criteria.topk_property.empty()) {
    criteria.topk_property = "nora_relationships";
  }
  out.seeds = select_seeds(*store_, criteria);
  out.timings.push_back(
      {"select", timer.seconds(), std::to_string(out.seeds.size()) + " seeds"});
  obs_stage(out.timings.back());

  // Stage 5: subgraph extraction with property projection.
  timer.restart();
  ExtractionOptions ex = opts.extraction;
  if (ex.projected_properties.empty()) {
    ex.projected_properties = {"credit_score", "nora_relationships"};
  }
  ExtractedSubgraph sub = extract(*store_, out.seeds, ex);
  out.extracted_vertices = sub.num_vertices();
  out.timings.push_back({"extract", timer.seconds(),
                         std::to_string(sub.num_vertices()) + " vertices"});
  obs_stage(out.timings.back());

  // Stage 6: batch analytic on the extracted subgraph.
  timer.restart();
  const AnalyticRegistry registry = AnalyticRegistry::with_builtins();
  AnalyticOutput an = registry.run(opts.analytic, sub);
  out.analytic_scalar = an.scalar;
  out.analytic_steps = std::move(an.steps);
  out.timings.push_back(
      {"analytic:" + opts.analytic, timer.seconds(),
       "scalar=" + std::to_string(an.scalar) + ", " +
           std::to_string(out.analytic_steps.size()) + " engine steps"});
  obs_stage(out.timings.back());

  // Stage 7: property write-back into the persistent store.
  timer.restart();
  sub.write_back(*store_);
  out.timings.push_back({"write_back", timer.seconds(),
                         "column " + an.column_written});
  obs_stage(out.timings.back());

  // The boiled store is the freshest consistent state — publish it as a
  // serving epoch if a consumer is attached.
  if (snapshot_publisher_) {
    timer.restart();
    snapshot_publisher_(store_->view());
    ++snapshot_publications_;
    out.timings.push_back({"publish_snapshot", timer.seconds(),
                           "epoch publication " +
                               std::to_string(snapshot_publications_)});
    obs_stage(out.timings.back());
  }

  // Streaming state for subsequent ingests: seed the inline deduper with
  // the batch entities so streaming records resolve against them.
  inline_dedup_ = std::make_unique<InlineDeduper>(opts.dedup);
  inline_dedup_->preload(dedup.entities);
  entity_vertex_.resize(dedup.entities.size());
  for (std::size_t i = 0; i < dedup.entities.size(); ++i) {
    entity_vertex_[i] = store_->person_vertex(i);
  }
  return out;
}

bool CanonicalFlow::ingest_streaming(const RawRecord& rec) {
  GA_CHECK(store_ != nullptr && inline_dedup_ != nullptr, "run_batch first");
  core::WallTimer timer;

  // Validation gate (resilient path): malformed records are quarantined
  // with a reason instead of corrupting the store or crashing the loop.
  if (resilience_on_ && res_opts_.validate) {
    std::string reason = validate_record(rec, store_->num_addresses());
    if (!reason.empty()) {
      stream_timings_.push_back(
          {"ingest", timer.seconds(), "quarantined:" + reason});
      dead_letters_.quarantine(rec, std::move(reason), rec.ts);
      if (obs::enabled()) stream_counter("flow.stream.quarantined_total").add();
      return false;
    }
  }

  // Stage 1: inline dedup + store apply. Injected faults fire before any
  // mutation, so a retry replays cleanly.
  const auto apply_record = [&]() -> vid_t {
    const std::uint64_t eid = inline_dedup_->ingest(rec);
    const Entity& e = inline_dedup_->entities()[eid];
    if (eid >= entity_vertex_.size()) {
      // Brand-new streaming entity: new person vertex.
      const vid_t v = store_->add_person(e, rec.ts);
      entity_vertex_.push_back(v);
      return v;
    }
    const vid_t v = static_cast<vid_t>(entity_vertex_[eid]);
    store_->add_residency(v, rec.address_id, rec.ts);
    return v;
  };

  vid_t person;
  if (resilience_on_) {
    const auto ap = stream_exec_.run<vid_t>("ingest_apply", apply_record,
                                            res_opts_.stage);
    if (!ap.ok) {
      ++stream_dropped_;
      stream_timings_.push_back({"ingest", timer.seconds(), "dropped"});
      dead_letters_.quarantine(rec, "ingest-exhausted:" + ap.error, rec.ts);
      if (obs::enabled()) stream_counter("flow.stream.dropped_total").add();
      return false;
    }
    person = ap.value;
  } else {
    person = apply_record();
  }

  // Stage 2 — threshold test: does this update create a qualifying
  // relationship? Only the touched person needs rechecking (the paper's
  // "simply adding more validity to a pre-identified relationship needs no
  // more processing" guard is the count comparison against the stored
  // column). Under the executor the full NORA re-analytic may degrade to a
  // cheap co-resident estimate; degraded counts never write columns.
  struct TriggerEval {
    double count = 0.0;
    std::vector<Relationship> rels;
  };
  const auto full_eval = [&]() -> TriggerEval {
    auto rels = nora_query(*store_, person, nora_opts_);
    return TriggerEval{static_cast<double>(rels.size()), std::move(rels)};
  };

  auto& col = store_->properties().doubles("nora_relationships");
  const double prev = col[person];
  bool triggered = false;
  bool degraded = false;
  TriggerEval ev;

  if (resilience_on_) {
    const auto tr = stream_exec_.run<TriggerEval>(
        "trigger_nora", full_eval,
        [&]() -> TriggerEval {
          // Degraded approximation: distinct co-residents across the
          // person's addresses — an upper bound on qualifying NORA
          // relationships that needs no pairwise scoring.
          double co = 0.0;
          for (const vid_t av : store_->addresses_of(person)) {
            const auto d = store_->graph().degree(av);
            co += d > 0 ? static_cast<double>(d - 1) : 0.0;
          }
          return TriggerEval{co, {}};
        },
        res_opts_.stage);
    if (!tr.ok) {
      // Record is applied but the threshold test failed outright; the next
      // full boil reconciles. Count it so telemetry shows the gap.
      ++stream_dropped_;
      stream_timings_.push_back(
          {"ingest", timer.seconds(), "applied;threshold-failed"});
      if (obs::enabled()) stream_counter("flow.stream.dropped_total").add();
      return false;
    }
    ev = tr.value;
    degraded = tr.degraded;
  } else {
    ev = full_eval();
  }

  if (degraded) {
    // Approximate threshold test only — no column writes (the estimate
    // over-counts; writing it back would poison later exact comparisons).
    if (ev.count > prev) {
      ++stream_triggers_;
      ++stream_degraded_;
      triggered = true;
    }
  } else if (ev.count > prev) {
    col[person] = ev.count;
    for (const Relationship& rel : ev.rels) {
      const vid_t other = rel.a == person ? rel.b : rel.a;
      auto others = nora_query(*store_, other, nora_opts_);
      col[other] = static_cast<double>(others.size());
    }
    ++stream_triggers_;
    triggered = true;
  }
  stream_timings_.push_back(
      {"ingest", timer.seconds(),
       triggered ? (degraded ? "triggered-degraded" : "triggered")
                 : "absorbed"});
  // A trigger means new relationship structure exists — refresh the
  // serving epoch so queries see the post-trigger store.
  if (triggered && snapshot_publisher_) {
    snapshot_publisher_(store_->view());  // O(Δ) delta-chain publication
    ++snapshot_publications_;
  }
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    static obs::Counter& c_ingested =
        reg.counter("flow.stream.ingested_total");
    static obs::Histogram& h_ingest = reg.histogram("flow.stream.ingest_us");
    c_ingested.add();
    h_ingest.observe(timer.seconds() * 1e6);
    if (triggered) stream_counter("flow.stream.triggers_total").add();
    if (triggered && degraded) {
      stream_counter("flow.stream.degraded_triggers_total").add();
    }
  }
  return triggered;
}

void CanonicalFlow::set_snapshot_publisher(
    std::function<void(store::GraphView)> fn) {
  snapshot_publisher_ = std::move(fn);
}

void CanonicalFlow::set_epoch_log(store::EpochLog* log) {
  store().set_epoch_log(log);
}

void CanonicalFlow::set_stream_resilience(const StreamResilienceOptions& opts) {
  resilience_on_ = true;
  res_opts_ = opts;
  stream_exec_.set_fault_injector(opts.faults);
  dead_letters_ =
      resilience::DeadLetterQueue<RawRecord>(opts.dead_letter_capacity);
}

StreamIngestReport CanonicalFlow::run_stream(
    const std::vector<RawRecord>& records,
    const resilience::QueueOptions& qopts) {
  GA_CHECK(store_ != nullptr && inline_dedup_ != nullptr, "run_batch first");
  StreamIngestReport out;
  const std::uint64_t triggers0 = stream_triggers_;
  const std::uint64_t dropped0 = stream_dropped_;
  const std::uint64_t quarantined0 = dead_letters_.total_quarantined();
  resilience::IngestQueue<RawRecord> queue(qopts);
  core::WallTimer timer;
  std::thread producer([&] {
    for (const RawRecord& r : records) queue.push(r);
    queue.close();
  });
  while (auto rec = queue.pop()) {
    ingest_streaming(*rec);
    ++out.ingested;
  }
  producer.join();
  out.seconds = timer.seconds();
  out.queue = queue.stats();
  out.triggered = stream_triggers_ - triggers0;
  out.dropped = static_cast<std::size_t>(stream_dropped_ - dropped0);
  out.quarantined =
      static_cast<std::size_t>(dead_letters_.total_quarantined() - quarantined0);
  return out;
}

std::vector<StageTiming> CanonicalFlow::stream_health() const {
  std::vector<StageTiming> out;
  for (const resilience::StageHealth& h : stream_exec_.health()) {
    out.push_back({"health:" + h.stage, h.total_ms / 1000.0,
                   resilience::format_stage_health(h)});
  }
  std::string dl = std::to_string(dead_letters_.total_quarantined()) +
                   " quarantined";
  for (const auto& [reason, n] : dead_letters_.by_reason()) {
    dl += ", " + reason + "=" + std::to_string(n);
  }
  out.push_back({"health:dead_letter", 0.0, dl});
  return out;
}

void CanonicalFlow::publish_stream_metrics(obs::MetricsRegistry& reg) const {
  std::vector<engine::CounterGroup> groups;
  for (const resilience::StageHealth& h : stream_exec_.health()) {
    groups.push_back({"stream_" + h.stage,
                      {{"calls", h.calls},
                       {"attempts", h.attempts},
                       {"failures", h.failures},
                       {"retries", h.retries},
                       {"deadline_misses", h.deadline_misses},
                       {"degraded", h.degraded},
                       {"exhausted", h.exhausted}}});
  }
  groups.push_back({"stream",
                    {{"triggers", stream_triggers_},
                     {"degraded_threshold_tests", stream_degraded_},
                     {"dropped", stream_dropped_},
                     {"quarantined", dead_letters_.total_quarantined()}}});
  engine::publish_counter_groups(groups, "flow.", reg);
}

std::vector<Relationship> CanonicalFlow::query(vid_t person) const {
  GA_CHECK(store_ != nullptr, "run_batch first");
  return nora_query(*store_, person, nora_opts_);
}

}  // namespace ga::pipeline
