// Subgraph extraction (Fig. 2 center): from seed vertices, copy a
// depth-bounded neighborhood out of the persistent store into a compact
// CSR ("a smaller, but faster access rate, memory"), projecting only a
// subset of property columns. Results can be written back.
#pragma once

#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/property_table.hpp"
#include "pipeline/graph_store.hpp"

namespace ga::pipeline {

struct ExtractionOptions {
  std::uint32_t depth = 2;
  /// Property columns to project into the extracted subgraph.
  std::vector<std::string> projected_properties;
};

class ExtractedSubgraph {
 public:
  ExtractedSubgraph(graph::CSRGraph g, std::vector<vid_t> members,
                    graph::PropertyTable props);

  const graph::CSRGraph& graph() const { return g_; }
  graph::PropertyTable& properties() { return props_; }
  const graph::PropertyTable& properties() const { return props_; }

  vid_t num_vertices() const { return g_.num_vertices(); }
  /// Store vertex id of local vertex i.
  vid_t global_id(vid_t local) const { return members_[local]; }
  /// Local id of a store vertex (kInvalidVid if not a member).
  vid_t local_id(vid_t global) const;
  const std::vector<vid_t>& members() const { return members_; }

  /// Push this subgraph's property columns back into the store table —
  /// Fig. 2's "updates to properties in the larger graph".
  void write_back(GraphStore& store) const;

 private:
  graph::CSRGraph g_;
  std::vector<vid_t> members_;  // sorted store ids, index = local id
  graph::PropertyTable props_;
};

/// Extract the union of seed neighborhoods from the store.
ExtractedSubgraph extract(const GraphStore& store,
                          const std::vector<vid_t>& seeds,
                          const ExtractionOptions& opts = {});

}  // namespace ga::pipeline
