// Analytic registry (Fig. 2 "batch analytics"): named analytics run over
// an extracted subgraph. Each produces a per-vertex double column (written
// into the subgraph's property table, eligible for write-back) and a
// scalar summary. This models the paper's accretion loop: analysts define
// one-time analytics whose outputs become permanent vertex properties.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "engine/telemetry.hpp"
#include "pipeline/extraction.hpp"

namespace ga::pipeline {

struct AnalyticOutput {
  double scalar = 0.0;          // graph-level summary (Fig. 1 "global value")
  std::string column_written;   // property column created (empty if none)
  /// Engine super-step telemetry, for analytics that run on the traversal
  /// engine (pagerank, component_size, core_number); empty otherwise.
  std::vector<engine::StepStats> steps;
};

using Analytic = std::function<AnalyticOutput(ExtractedSubgraph&)>;

class AnalyticRegistry {
 public:
  /// Registers the built-in analytics: "degree", "pagerank",
  /// "clustering", "triangles", "component_size", "core_number".
  static AnalyticRegistry with_builtins();

  void register_analytic(const std::string& name, Analytic fn);
  bool has(const std::string& name) const { return fns_.count(name) != 0; }
  std::vector<std::string> names() const;

  /// Runs a named analytic (throws if unknown).
  AnalyticOutput run(const std::string& name, ExtractedSubgraph& sub) const;

 private:
  std::map<std::string, Analytic> fns_;
};

}  // namespace ga::pipeline
