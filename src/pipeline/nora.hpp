// NORA — Non-Obvious Relationship Analysis (§III, [23]): "who has shared
// an address with what other individuals 2 or more times, especially if
// they have shared a common last name". Close kin of the Jaccard kernel:
// candidate pairs are 2-hop neighbors through address vertices, scored by
// shared-address multiplicity with a surname bonus.
//
// Batch form = the weekly "boil": precompute relationships for every
// person. Streaming form = per-applicant real-time query (the paper's
// argument for why streaming removes the need for much of the
// precomputation).
#pragma once

#include <cstdint>
#include <vector>

#include "pipeline/graph_store.hpp"

namespace ga::pipeline {

struct NoraOptions {
  std::uint32_t min_shared_addresses = 2;  // threshold for a relationship
  double surname_bonus = 1.0;              // score bonus for shared surname
  /// A pair with exactly 1 shared address still counts if surnames match
  /// (the "especially if" clause softened into an alternate criterion).
  bool surname_relaxes_threshold = true;
};

struct Relationship {
  vid_t a = 0, b = 0;             // person vertices, a < b
  std::uint32_t shared_addresses = 0;
  bool same_surname = false;
  double score = 0.0;
};

/// Real-time query: relationships of one person (sorted by score desc).
std::vector<Relationship> nora_query(const GraphStore& store, vid_t person,
                                     const NoraOptions& opts = {});

struct NoraBoilResult {
  std::vector<Relationship> relationships;   // all qualifying pairs
  std::vector<double> relationship_count;    // per-vertex property column
  std::uint64_t candidate_pairs = 0;         // pairs scored (work metric)
};

/// The weekly batch precompute over every person. Writes the
/// "nora_relationships" property column into the store.
NoraBoilResult nora_boil(GraphStore& store, const NoraOptions& opts = {});

/// Recall of planted rings: fraction of within-ring pairs recovered.
/// `vertex_of_true_person` maps a ground-truth person id to its (deduped)
/// person vertex; pass an empty vector when entity ids == true ids.
double nora_ring_recall(
    const std::vector<Relationship>& found,
    const std::vector<std::vector<std::uint64_t>>& rings,
    const std::vector<vid_t>& vertex_of_true_person = {});

}  // namespace ga::pipeline
