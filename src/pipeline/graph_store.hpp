// The persistent, multi-class property graph at the center of Fig. 2.
// Vertex classes: Person and Address (the paper stresses real graphs have
// "many classes of vertices", unlike single-class academic kernels).
// Edges: person—address residency links with timestamps; weight = number
// of distinct sightings. Properties live in a columnar PropertyTable so
// analytics can write back new columns forever (the paper's "thousands of
// properties" accretion).
//
// The store models the paper's two-level memory: the big DynamicGraph is
// the "persistent" level, and ExtractedSubgraph (extraction.hpp) is the
// small fast level analytics run against.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/dynamic_graph.hpp"
#include "graph/property_table.hpp"
#include "pipeline/dedup.hpp"
#include "store/epoch_log.hpp"
#include "store/versioned_store.hpp"

namespace ga::pipeline {

enum class VertexClass : std::uint8_t { kPerson = 0, kAddress = 1 };

class GraphStore {
 public:
  /// Builds the bipartite person–address graph from deduped entities.
  /// Person vertex v in [0, num_people); address vertex = num_people + id.
  explicit GraphStore(const std::vector<Entity>& entities,
                      std::uint32_t num_addresses);

  vid_t num_vertices() const { return g_.num_vertices(); }
  vid_t num_people() const { return num_people_; }
  vid_t num_addresses() const { return num_addresses_; }
  /// Class of any vertex, including persons appended by the streaming path
  /// (read from the "class" property column, the source of truth).
  VertexClass vertex_class(vid_t v) const {
    return static_cast<VertexClass>(props_.ints("class")[v]);
  }
  vid_t person_vertex(std::uint64_t entity_id) const {
    GA_CHECK(entity_id < num_people_, "person id out of range");
    return static_cast<vid_t>(entity_id);
  }
  vid_t address_vertex(std::uint32_t address_id) const {
    GA_CHECK(address_id < num_addresses_, "address id out of range");
    return num_people_ + address_id;
  }

  graph::DynamicGraph& graph() { return g_; }
  const graph::DynamicGraph& graph() const { return g_; }
  graph::PropertyTable& properties() { return props_; }
  const graph::PropertyTable& properties() const { return props_; }

  /// Streaming path: add a new person entity (grows the vertex space) —
  /// returns its vertex id. Addresses are fixed at construction.
  vid_t add_person(const Entity& e, std::int64_t ts);

  /// Streaming path: record a (person, address) sighting; bumps the edge
  /// weight if already present.
  void add_residency(vid_t person, std::uint32_t address_id, std::int64_t ts);

  /// Distinct addresses of a person (sorted vertex ids of address class).
  std::vector<vid_t> addresses_of(vid_t person) const;

  /// Versioned read path over the persistent graph: the first call seeds
  /// an embedded delta-chain store from one O(|E|) snapshot; later calls
  /// seal whatever add_person/add_residency changed since and return an
  /// O(Δ) overlay view (the store's compactor folds when the chain gets
  /// deep). This is what the flow publishes to the serving layer.
  store::GraphView view() const;

  /// The embedded delta-chain store; nullptr until the first view() call.
  /// Exposed for chain-depth / compaction statistics.
  const store::VersionedGraphStore* versioned_store() const {
    return versioned_.get();
  }

  /// Make every published epoch durable: attached to the embedded
  /// delta-chain store when view() seeds it (immediately if it already
  /// exists). Not owned; must outlive the store.
  void set_epoch_log(store::EpochLog* log) {
    epoch_log_ = log;
    if (versioned_ && epoch_log_) epoch_log_->attach(*versioned_);
  }

  /// Content digest over vertex counts, adjacency (neighbor-sorted, so the
  /// physical edge-block layout doesn't matter), weights, timestamps, and
  /// all property columns. Two stores with equal digests hold identical
  /// logical state — the recovery invariant checked by the resilience
  /// layer (snapshot + WAL replay must reproduce this exactly).
  std::uint64_t content_digest() const;

  /// Binary persistence — the Fig. 2 store outlives any single analytic.
  void save(std::ostream& os) const;
  static GraphStore load(std::istream& is);
  void save_file(const std::string& path) const;
  static GraphStore load_file(const std::string& path);

 private:
  GraphStore(vid_t num_people, vid_t num_addresses,
             graph::PropertyTable props);
  graph::DynamicGraph g_;
  graph::PropertyTable props_;
  vid_t num_people_ = 0;
  vid_t num_addresses_ = 0;
  // Delta capture for the versioned read path (mutable: view() is a const
  // read that lazily seeds the store and folds pending mutations in).
  mutable std::unique_ptr<store::VersionedGraphStore> versioned_;
  mutable store::DeltaBatch pending_;
  store::EpochLog* epoch_log_ = nullptr;
};

}  // namespace ga::pipeline
