// Selection criteria (Fig. 2, right side): identify SEED vertices for
// subgraph extraction — "as simple as specifying some particular vertex,
// or more involved such as scanning for the 'top k' vertices with the
// highest values of some properties".
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "pipeline/graph_store.hpp"

namespace ga::pipeline {

struct SelectionCriteria {
  /// Explicit seed vertices (used as-is if non-empty).
  std::vector<vid_t> explicit_seeds;
  /// Otherwise: top-k by this double property column...
  std::string topk_property;
  std::size_t k = 10;
  /// ...restricted to this vertex class.
  VertexClass vertex_class = VertexClass::kPerson;
  /// Optional extra predicate on the vertex id.
  std::function<bool(vid_t)> predicate;
};

/// Evaluate the criteria against the store; returns sorted seed ids.
std::vector<vid_t> select_seeds(const GraphStore& store,
                                const SelectionCriteria& criteria);

}  // namespace ga::pipeline
