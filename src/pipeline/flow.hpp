// CanonicalFlow: end-to-end orchestration of Fig. 2 with per-stage timing.
// Batch path: raw records → batch dedup → persistent GraphStore →
// NORA boil (precompute + write-back) → selection criteria → subgraph
// extraction (+property projection) → batch analytics → property
// write-back.
// Streaming path: a record/query stream → in-line dedup → incremental
// store updates → threshold test → (on trigger) extraction + analytic →
// alerts; queries answered in real time by nora_query.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pipeline/analytics.hpp"
#include "pipeline/dedup.hpp"
#include "pipeline/extraction.hpp"
#include "pipeline/nora.hpp"
#include "pipeline/record.hpp"
#include "pipeline/selection.hpp"

namespace ga::pipeline {

struct StageTiming {
  std::string stage;
  double seconds = 0.0;
  std::string detail;
};

struct BatchFlowResult {
  std::vector<StageTiming> timings;
  DedupQuality dedup_quality;
  std::size_t num_entities = 0;
  std::size_t num_relationships = 0;
  double ring_recall = 0.0;
  std::vector<vid_t> seeds;
  vid_t extracted_vertices = 0;
  double analytic_scalar = 0.0;
  /// Engine super-step telemetry of the batch analytic (empty when the
  /// analytic does not run on the traversal engine).
  std::vector<engine::StepStats> analytic_steps;
};

struct BatchFlowOptions {
  DedupOptions dedup;
  NoraOptions nora;
  SelectionCriteria selection;     // topk_property defaults below if empty
  ExtractionOptions extraction;
  std::string analytic = "pagerank";
};

class CanonicalFlow {
 public:
  /// Runs the full batch path over a corpus; the store persists in the
  /// object for subsequent streaming or queries.
  BatchFlowResult run_batch(const Corpus& corpus,
                            const BatchFlowOptions& opts = {});

  /// Streaming path: ingest one new raw record (in-line dedup; may add a
  /// person or a residency). Returns true if the update triggered a NORA
  /// threshold crossing (new relationship appears for the touched person).
  bool ingest_streaming(const RawRecord& rec);

  /// Streaming query: real-time NORA relationships for a person vertex.
  std::vector<Relationship> query(vid_t person) const;

  GraphStore& store();
  const std::vector<StageTiming>& streaming_timings() const {
    return stream_timings_;
  }
  std::uint64_t streaming_triggers() const { return stream_triggers_; }

 private:
  std::unique_ptr<GraphStore> store_;
  std::unique_ptr<InlineDeduper> inline_dedup_;
  std::vector<std::uint64_t> entity_vertex_;  // inline entity id -> vertex
  NoraOptions nora_opts_;
  std::vector<StageTiming> stream_timings_;
  std::uint64_t stream_triggers_ = 0;
};

}  // namespace ga::pipeline
