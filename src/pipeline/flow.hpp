// CanonicalFlow: end-to-end orchestration of Fig. 2 with per-stage timing.
// Batch path: raw records → batch dedup → persistent GraphStore →
// NORA boil (precompute + write-back) → selection criteria → subgraph
// extraction (+property projection) → batch analytics → property
// write-back.
// Streaming path: a record/query stream → in-line dedup → incremental
// store updates → threshold test → (on trigger) extraction + analytic →
// alerts; queries answered in real time by nora_query.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "pipeline/analytics.hpp"
#include "pipeline/dedup.hpp"
#include "pipeline/extraction.hpp"
#include "pipeline/nora.hpp"
#include "pipeline/record.hpp"
#include "pipeline/selection.hpp"
#include "resilience/dead_letter.hpp"
#include "resilience/ingest_queue.hpp"
#include "resilience/retry.hpp"

namespace ga::pipeline {

struct StageTiming {
  std::string stage;
  double seconds = 0.0;
  std::string detail;
};

struct BatchFlowResult {
  std::vector<StageTiming> timings;
  DedupQuality dedup_quality;
  std::size_t num_entities = 0;
  std::size_t num_relationships = 0;
  double ring_recall = 0.0;
  std::vector<vid_t> seeds;
  vid_t extracted_vertices = 0;
  double analytic_scalar = 0.0;
  /// Engine super-step telemetry of the batch analytic (empty when the
  /// analytic does not run on the traversal engine).
  std::vector<engine::StepStats> analytic_steps;
};

struct BatchFlowOptions {
  DedupOptions dedup;
  NoraOptions nora;
  SelectionCriteria selection;     // topk_property defaults below if empty
  ExtractionOptions extraction;
  std::string analytic = "pagerank";
};

/// Resilience policy for the streaming ingest path. When enabled (via
/// CanonicalFlow::set_stream_resilience), malformed records are quarantined
/// instead of silently absorbed, and the per-record stages (inline dedup +
/// store apply, NORA threshold re-analytic) run under a StageExecutor's
/// retry + deadline policy, consulting an optional FaultInjector. When the
/// full NORA re-analytic exhausts its retries or misses its deadline, the
/// threshold test degrades to a cheap co-resident estimate that never
/// writes property columns (the next full pass reconciles).
struct StreamResilienceOptions {
  bool validate = true;
  resilience::StageOptions stage;
  /// Not owned; may be nullptr. Must outlive the flow's streaming use.
  resilience::FaultInjector* faults = nullptr;
  std::size_t dead_letter_capacity = 4096;
};

/// Outcome of a backpressured streaming run (run_stream).
struct StreamIngestReport {
  resilience::QueueStats queue;
  std::size_t ingested = 0;     // records popped and offered to the store
  std::size_t quarantined = 0;  // records parked in the dead-letter queue
  std::size_t dropped = 0;      // records whose ingest stage exhausted
  std::uint64_t triggered = 0;  // NORA threshold crossings in this run
  double seconds = 0.0;
};

class CanonicalFlow {
 public:
  /// Runs the full batch path over a corpus; the store persists in the
  /// object for subsequent streaming or queries.
  BatchFlowResult run_batch(const Corpus& corpus,
                            const BatchFlowOptions& opts = {});

  /// Streaming path: ingest one new raw record (in-line dedup; may add a
  /// person or a residency). Returns true if the update triggered a NORA
  /// threshold crossing (new relationship appears for the touched person).
  bool ingest_streaming(const RawRecord& rec);

  /// Streaming query: real-time NORA relationships for a person vertex.
  std::vector<Relationship> query(vid_t person) const;

  /// Enable the fault-tolerant streaming path (validation → quarantine,
  /// staged ingest with retry/deadline/degradation). Call before ingesting.
  void set_stream_resilience(const StreamResilienceOptions& opts);

  /// Route versioned views of the persistent store to a downstream
  /// consumer (typically server::AnalyticsServer::publisher()): once after
  /// each run_batch write-back, and after every streaming NORA trigger.
  /// The first publication seeds the store's delta chain (one O(|E|)
  /// snapshot); trigger-time publications ship O(Δ) overlay views. Keeps
  /// the serving layer's epoch current without this layer linking against
  /// the server.
  void set_snapshot_publisher(std::function<void(store::GraphView)> fn);

  /// Make every published epoch durable: forwards to the persistent
  /// GraphStore, which attaches the log to its embedded delta-chain store
  /// (see store/epoch_log.hpp). Not owned; must outlive the flow.
  void set_epoch_log(store::EpochLog* log);

  std::uint64_t snapshot_publications() const {
    return snapshot_publications_;
  }

  /// Backpressured streaming run: a producer thread offers `records` into a
  /// bounded IngestQueue under `qopts` while the calling thread pops and
  /// ingests — Fig. 2's record firehose decoupled from the apply loop.
  StreamIngestReport run_stream(const std::vector<RawRecord>& records,
                                const resilience::QueueOptions& qopts = {});

  GraphStore& store();
  const std::vector<StageTiming>& streaming_timings() const {
    return stream_timings_;
  }
  std::uint64_t streaming_triggers() const { return stream_triggers_; }
  std::uint64_t streaming_degraded() const { return stream_degraded_; }
  std::uint64_t streaming_dropped() const { return stream_dropped_; }

  /// StageTiming-style failure/degradation telemetry for the streaming
  /// path: one line per executor stage plus a dead-letter summary — the
  /// resilience counterpart of streaming_timings(), printed by the fig2
  /// bench alongside the batch stage table.
  std::vector<StageTiming> stream_health() const;

  /// Publish the streaming-health surface (stage executor health + dead
  /// letters + trigger/degrade/drop counters) into the metrics registry as
  /// flow.stream_* gauges — the registry view of stream_health().
  void publish_stream_metrics(
      obs::MetricsRegistry& reg = obs::MetricsRegistry::global()) const;

  resilience::DeadLetterQueue<RawRecord>& dead_letters() {
    return dead_letters_;
  }
  const resilience::DeadLetterQueue<RawRecord>& dead_letters() const {
    return dead_letters_;
  }

 private:
  std::unique_ptr<GraphStore> store_;
  std::unique_ptr<InlineDeduper> inline_dedup_;
  std::vector<std::uint64_t> entity_vertex_;  // inline entity id -> vertex
  NoraOptions nora_opts_;
  std::vector<StageTiming> stream_timings_;
  std::uint64_t stream_triggers_ = 0;
  std::uint64_t stream_degraded_ = 0;  // threshold tests served degraded
  std::uint64_t stream_dropped_ = 0;   // records lost to exhausted stages
  bool resilience_on_ = false;
  StreamResilienceOptions res_opts_;
  resilience::StageExecutor stream_exec_;
  resilience::DeadLetterQueue<RawRecord> dead_letters_;
  std::function<void(store::GraphView)> snapshot_publisher_;
  std::uint64_t snapshot_publications_ = 0;
};

}  // namespace ga::pipeline
