#include "pipeline/graph_store.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "core/hash.hpp"

namespace ga::pipeline {

GraphStore::GraphStore(const std::vector<Entity>& entities,
                       std::uint32_t num_addresses)
    : g_(static_cast<vid_t>(entities.size()) + num_addresses,
         /*directed=*/false),
      props_(entities.size() + num_addresses),
      num_people_(static_cast<vid_t>(entities.size())),
      num_addresses_(num_addresses) {
  auto& cls = props_.add_int_column("class");
  auto& credit = props_.add_double_column("credit_score");
  auto& birth = props_.add_int_column("birth_year");
  auto& surname = props_.add_string_column("last_name");
  for (vid_t v = 0; v < num_people_; ++v) {
    cls[v] = static_cast<std::int64_t>(VertexClass::kPerson);
    credit[v] = entities[v].credit_score;
    birth[v] = entities[v].birth_year;
    surname[v] = entities[v].last_name;
  }
  for (vid_t a = 0; a < num_addresses_; ++a) {
    cls[num_people_ + a] = static_cast<std::int64_t>(VertexClass::kAddress);
  }
  for (const Entity& e : entities) {
    const auto pv = person_vertex(e.entity_id);
    for (std::uint32_t addr : e.addresses) {
      GA_CHECK(addr < num_addresses_, "entity address out of range");
      add_residency(pv, addr, 0);
    }
  }
}

vid_t GraphStore::add_person(const Entity& e, std::int64_t ts) {
  // New person vertices append at the end of the person range is not
  // possible in a fixed layout; instead they append at the end of the
  // whole vertex space and the class column records them as persons.
  const vid_t v = g_.num_vertices();
  g_.add_vertices(1);
  if (versioned_) pending_.add_vertices(1);
  props_.resize_rows(props_.num_rows() + 1);
  props_.ints("class")[v] = static_cast<std::int64_t>(VertexClass::kPerson);
  props_.doubles("credit_score")[v] = e.credit_score;
  props_.ints("birth_year")[v] = e.birth_year;
  props_.strings("last_name")[v] = e.last_name;
  for (std::uint32_t addr : e.addresses) {
    add_residency(v, addr, ts);
  }
  return v;
}

void GraphStore::add_residency(vid_t person, std::uint32_t address_id,
                               std::int64_t ts) {
  GA_CHECK(vertex_class(person) == VertexClass::kPerson,
           "add_residency: not a person vertex");
  const vid_t av = address_vertex(address_id);
  const float prev = g_.edge_weight_or(person, av, 0.0f);
  // Weight counts sightings of this person at this address.
  g_.insert_edge(person, av, prev + 1.0f, ts);
  // Mutations before the first view() land in the seed snapshot instead.
  if (versioned_) pending_.insert_edge(person, av, prev + 1.0f);
}

store::GraphView GraphStore::view() const {
  if (!versioned_) {
    versioned_ = std::make_unique<store::VersionedGraphStore>(
        g_.snapshot(/*keep_weights=*/true));
    // Durability attaches before the first epoch seals, checkpointing the
    // seed base so epoch 1 has an image to replay onto.
    if (epoch_log_) epoch_log_->attach(*versioned_);
    pending_.clear();
  } else if (!pending_.empty()) {
    versioned_->apply(pending_);  // O(Δ) epoch publication
    pending_.clear();
  }
  return versioned_->view();
}

GraphStore::GraphStore(vid_t num_people, vid_t num_addresses,
                       graph::PropertyTable props)
    : g_(static_cast<vid_t>(props.num_rows()), /*directed=*/false),
      props_(std::move(props)),
      num_people_(num_people),
      num_addresses_(num_addresses) {}

namespace {
constexpr char kStoreMagic[8] = {'G', 'A', 'S', 'T', 'O', 'R', '0', '1'};
}

std::uint64_t GraphStore::content_digest() const {
  std::uint64_t h = core::fnv1a("gastore");
  h = core::hash_combine(h, num_people_);
  h = core::hash_combine(h, num_addresses_);
  h = core::hash_combine(h, g_.num_vertices());
  h = core::hash_combine(h, g_.num_edges());
  struct Arc {
    vid_t v;
    float w;
    std::int64_t ts;
  };
  std::vector<Arc> arcs;
  for (vid_t u = 0; u < g_.num_vertices(); ++u) {
    arcs.clear();
    g_.for_each_neighbor(u, [&](vid_t v, float w, std::int64_t ts) {
      arcs.push_back({v, w, ts});
    });
    // Sort by neighbor so the digest is independent of edge-block layout
    // (a recovered store replays inserts in a different physical order).
    std::sort(arcs.begin(), arcs.end(),
              [](const Arc& a, const Arc& b) { return a.v < b.v; });
    h = core::hash_combine(h, arcs.size());
    for (const Arc& a : arcs) {
      h = core::hash_combine(h, a.v);
      h = core::hash_combine(h, std::bit_cast<std::uint32_t>(a.w));
      h = core::hash_combine(h, static_cast<std::uint64_t>(a.ts));
    }
  }
  return core::hash_combine(h, props_.digest());
}

void GraphStore::save(std::ostream& os) const {
  os.write(kStoreMagic, sizeof(kStoreMagic));
  const std::uint64_t header[2] = {num_people_, num_addresses_};
  os.write(reinterpret_cast<const char*>(header), sizeof(header));
  props_.serialize(os);
  // Edges: (u, v, w, ts) once per undirected pair.
  std::vector<std::uint64_t> us, vs;
  std::vector<float> ws;
  std::vector<std::int64_t> tss;
  for (vid_t u = 0; u < g_.num_vertices(); ++u) {
    g_.for_each_neighbor(u, [&](vid_t v, float w, std::int64_t ts) {
      if (u < v) {
        us.push_back(u);
        vs.push_back(v);
        ws.push_back(w);
        tss.push_back(ts);
      }
    });
  }
  const std::uint64_t m = us.size();
  os.write(reinterpret_cast<const char*>(&m), sizeof(m));
  for (std::uint64_t i = 0; i < m; ++i) {
    os.write(reinterpret_cast<const char*>(&us[i]), sizeof(us[i]));
    os.write(reinterpret_cast<const char*>(&vs[i]), sizeof(vs[i]));
    os.write(reinterpret_cast<const char*>(&ws[i]), sizeof(ws[i]));
    os.write(reinterpret_cast<const char*>(&tss[i]), sizeof(tss[i]));
  }
  GA_CHECK(os.good(), "graph store: write failed");
}

GraphStore GraphStore::load(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof(magic));
  GA_CHECK(is.good() && std::memcmp(magic, kStoreMagic, sizeof(kStoreMagic)) == 0,
           "graph store: bad magic");
  std::uint64_t header[2];
  is.read(reinterpret_cast<char*>(header), sizeof(header));
  GA_CHECK(is.good(), "graph store: truncated header");
  graph::PropertyTable props = graph::PropertyTable::deserialize(is);
  GraphStore store(static_cast<vid_t>(header[0]), static_cast<vid_t>(header[1]),
                   std::move(props));
  std::uint64_t m = 0;
  is.read(reinterpret_cast<char*>(&m), sizeof(m));
  GA_CHECK(is.good(), "graph store: truncated edge count");
  for (std::uint64_t i = 0; i < m; ++i) {
    std::uint64_t u = 0, v = 0;
    float w = 0.0f;
    std::int64_t ts = 0;
    is.read(reinterpret_cast<char*>(&u), sizeof(u));
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    is.read(reinterpret_cast<char*>(&w), sizeof(w));
    is.read(reinterpret_cast<char*>(&ts), sizeof(ts));
    GA_CHECK(!is.fail(), "graph store: truncated edges");
    store.g_.insert_edge(static_cast<vid_t>(u), static_cast<vid_t>(v), w, ts);
  }
  return store;
}

void GraphStore::save_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  GA_CHECK(os.good(), "graph store: cannot open " + path);
  save(os);
}

GraphStore GraphStore::load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  GA_CHECK(is.good(), "graph store: cannot open " + path);
  return load(is);
}

std::vector<vid_t> GraphStore::addresses_of(vid_t person) const {
  std::vector<vid_t> out;
  g_.for_each_neighbor(person, [&](vid_t v, float, std::int64_t) {
    if (v >= num_people_ && v < num_people_ + num_addresses_) out.push_back(v);
  });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ga::pipeline
