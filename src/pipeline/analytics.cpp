#include "pipeline/analytics.hpp"

#include <algorithm>

#include "kernels/clustering.hpp"
#include "kernels/connected_components.hpp"
#include "kernels/kcore.hpp"
#include "kernels/pagerank.hpp"
#include "kernels/triangles.hpp"

namespace ga::pipeline {

namespace {

/// Writes `values` into (creating if needed) column `name` of the subgraph.
void put_column(ExtractedSubgraph& sub, const std::string& name,
                const std::vector<double>& values) {
  auto& props = sub.properties();
  if (!props.has_column(name)) props.add_double_column(name);
  auto& col = props.doubles(name);
  GA_CHECK(col.size() == values.size(), "analytic column size mismatch");
  std::copy(values.begin(), values.end(), col.begin());
}

}  // namespace

void AnalyticRegistry::register_analytic(const std::string& name, Analytic fn) {
  GA_CHECK(static_cast<bool>(fn), "register_analytic: empty analytic");
  fns_[name] = std::move(fn);
}

std::vector<std::string> AnalyticRegistry::names() const {
  std::vector<std::string> out;
  for (const auto& [name, fn] : fns_) out.push_back(name);
  return out;
}

AnalyticOutput AnalyticRegistry::run(const std::string& name,
                                     ExtractedSubgraph& sub) const {
  const auto it = fns_.find(name);
  GA_CHECK(it != fns_.end(), "unknown analytic: " + name);
  return it->second(sub);
}

AnalyticRegistry AnalyticRegistry::with_builtins() {
  AnalyticRegistry r;
  r.register_analytic("degree", [](ExtractedSubgraph& sub) {
    std::vector<double> deg(sub.num_vertices());
    double total = 0.0;
    for (vid_t v = 0; v < sub.num_vertices(); ++v) {
      deg[v] = static_cast<double>(sub.graph().out_degree(v));
      total += deg[v];
    }
    put_column(sub, "an_degree", deg);
    return AnalyticOutput{sub.num_vertices() ? total / sub.num_vertices() : 0.0,
                          "an_degree",
                          {}};
  });
  r.register_analytic("pagerank", [](ExtractedSubgraph& sub) {
    auto pr = kernels::pagerank(sub.graph());
    put_column(sub, "an_pagerank", pr.rank);
    const double mx =
        pr.rank.empty() ? 0.0 : *std::max_element(pr.rank.begin(), pr.rank.end());
    return AnalyticOutput{mx, "an_pagerank", std::move(pr.steps)};
  });
  r.register_analytic("clustering", [](ExtractedSubgraph& sub) {
    const auto cc = kernels::local_clustering(sub.graph());
    put_column(sub, "an_clustering", cc);
    double mean = 0.0;
    for (double c : cc) mean += c;
    if (!cc.empty()) mean /= static_cast<double>(cc.size());
    return AnalyticOutput{mean, "an_clustering", {}};
  });
  r.register_analytic("triangles", [](ExtractedSubgraph& sub) {
    const auto per = kernels::triangle_counts_per_vertex(sub.graph());
    std::vector<double> dper(per.begin(), per.end());
    put_column(sub, "an_triangles", dper);
    return AnalyticOutput{
        static_cast<double>(kernels::triangle_count_node_iterator(sub.graph())),
        "an_triangles",
        {}};
  });
  r.register_analytic("component_size", [](ExtractedSubgraph& sub) {
    auto comp = kernels::wcc_label_propagation(sub.graph());
    std::vector<vid_t> size_of(sub.num_vertices(), 0);
    for (vid_t v = 0; v < sub.num_vertices(); ++v) ++size_of[comp.label[v]];
    std::vector<double> out(sub.num_vertices());
    for (vid_t v = 0; v < sub.num_vertices(); ++v) {
      out[v] = static_cast<double>(size_of[comp.label[v]]);
    }
    put_column(sub, "an_component_size", out);
    return AnalyticOutput{static_cast<double>(comp.num_components),
                          "an_component_size", std::move(comp.steps)};
  });
  r.register_analytic("core_number", [](ExtractedSubgraph& sub) {
    engine::Telemetry telem;
    const auto core = kernels::core_numbers(sub.graph(), &telem);
    std::vector<double> out(core.begin(), core.end());
    put_column(sub, "an_core_number", out);
    double mx = 0.0;
    for (double c : out) mx = std::max(mx, c);
    return AnalyticOutput{mx, "an_core_number", telem.steps()};
  });
  return r;
}

}  // namespace ga::pipeline
