#include "pipeline/nora.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "core/hash.hpp"

namespace ga::pipeline {

namespace {

Relationship score_pair(const GraphStore& store, vid_t a, vid_t b,
                        std::uint32_t shared, const NoraOptions& opts) {
  Relationship rel;
  rel.a = std::min(a, b);
  rel.b = std::max(a, b);
  rel.shared_addresses = shared;
  const auto& surnames = store.properties().strings("last_name");
  rel.same_surname =
      !surnames[rel.a].empty() && surnames[rel.a] == surnames[rel.b];
  rel.score = static_cast<double>(shared) +
              (rel.same_surname ? opts.surname_bonus : 0.0);
  return rel;
}

bool qualifies(const Relationship& rel, const NoraOptions& opts) {
  if (rel.shared_addresses >= opts.min_shared_addresses) return true;
  return opts.surname_relaxes_threshold && rel.same_surname &&
         rel.shared_addresses >= 1;
}

}  // namespace

std::vector<Relationship> nora_query(const GraphStore& store, vid_t person,
                                     const NoraOptions& opts) {
  GA_CHECK(store.vertex_class(person) == VertexClass::kPerson,
           "nora_query: not a person vertex");
  // Count 2-hop co-residents: person -> addresses -> other persons.
  std::unordered_map<vid_t, std::uint32_t> shared;
  for (vid_t addr : store.addresses_of(person)) {
    store.graph().for_each_neighbor(addr, [&](vid_t other, float, std::int64_t) {
      if (other != person &&
          store.vertex_class(other) == VertexClass::kPerson) {
        ++shared[other];
      }
    });
  }
  std::vector<Relationship> out;
  for (const auto& [other, count] : shared) {
    Relationship rel = score_pair(store, person, other, count, opts);
    if (qualifies(rel, opts)) out.push_back(rel);
  }
  std::sort(out.begin(), out.end(), [](const Relationship& x, const Relationship& y) {
    return x.score != y.score ? x.score > y.score
                              : std::make_pair(x.a, x.b) < std::make_pair(y.a, y.b);
  });
  return out;
}

NoraBoilResult nora_boil(GraphStore& store, const NoraOptions& opts) {
  NoraBoilResult out;
  out.relationship_count.assign(store.num_vertices(), 0.0);
  // Enumerate pairs address-by-address, accumulating shared counts per
  // unordered pair; equivalent to a Jaccard-numerator sweep over the
  // bipartite person-address graph.
  std::unordered_map<std::uint64_t, std::uint32_t> pair_shared;
  for (vid_t v = 0; v < store.num_vertices(); ++v) {
    if (store.vertex_class(v) != VertexClass::kAddress) continue;
    std::vector<vid_t> residents;
    store.graph().for_each_neighbor(v, [&](vid_t p, float, std::int64_t) {
      if (store.vertex_class(p) == VertexClass::kPerson) residents.push_back(p);
    });
    std::sort(residents.begin(), residents.end());
    for (std::size_t i = 0; i < residents.size(); ++i) {
      for (std::size_t j = i + 1; j < residents.size(); ++j) {
        ++pair_shared[core::edge_key(residents[i], residents[j])];
      }
    }
  }
  out.candidate_pairs = pair_shared.size();
  for (const auto& [key, count] : pair_shared) {
    const auto a = static_cast<vid_t>(key & 0xffffffffu);
    const auto b = static_cast<vid_t>(key >> 32);
    Relationship rel = score_pair(store, a, b, count, opts);
    if (qualifies(rel, opts)) {
      out.relationship_count[rel.a] += 1.0;
      out.relationship_count[rel.b] += 1.0;
      out.relationships.push_back(rel);
    }
  }
  std::sort(out.relationships.begin(), out.relationships.end(),
            [](const Relationship& x, const Relationship& y) {
              return std::make_pair(x.a, x.b) < std::make_pair(y.a, y.b);
            });
  // Write-back: the precomputed answer becomes a persistent property.
  auto& props = store.properties();
  if (!props.has_column("nora_relationships")) {
    props.add_double_column("nora_relationships");
  }
  props.doubles("nora_relationships") = out.relationship_count;
  return out;
}

double nora_ring_recall(
    const std::vector<Relationship>& found,
    const std::vector<std::vector<std::uint64_t>>& rings,
    const std::vector<vid_t>& vertex_of_true_person) {
  if (rings.empty()) return 1.0;
  std::unordered_set<std::uint64_t> found_pairs;
  for (const Relationship& rel : found) {
    found_pairs.insert(core::edge_key(rel.a, rel.b));
  }
  const auto vertex_of = [&](std::uint64_t true_id) -> vid_t {
    if (vertex_of_true_person.empty()) return static_cast<vid_t>(true_id);
    GA_CHECK(true_id < vertex_of_true_person.size(),
             "ring person outside mapping");
    return vertex_of_true_person[true_id];
  };
  std::uint64_t total = 0, hit = 0;
  for (const auto& ring : rings) {
    for (std::size_t i = 0; i < ring.size(); ++i) {
      for (std::size_t j = i + 1; j < ring.size(); ++j) {
        const vid_t a = vertex_of(ring[i]);
        const vid_t b = vertex_of(ring[j]);
        if (a == kInvalidVid || b == kInvalidVid || a == b) continue;
        ++total;
        if (found_pairs.count(core::edge_key(a, b)) != 0) ++hit;
      }
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(hit) / static_cast<double>(total);
}

}  // namespace ga::pipeline
