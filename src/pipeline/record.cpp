#include "pipeline/record.hpp"

#include <algorithm>
#include <array>

#include "core/prng.hpp"

namespace ga::pipeline {

namespace {

constexpr std::array<const char*, 20> kSyllables = {
    "an", "bel", "cor", "dan", "el",  "fen", "gar", "hol", "il",  "jor",
    "kal", "lin", "mor", "nel", "or", "pet", "quin", "ros", "sam", "tor"};

std::string make_name(core::Xoshiro256& rng, unsigned syllables) {
  std::string s;
  for (unsigned i = 0; i < syllables; ++i) {
    s += kSyllables[rng.next_below(kSyllables.size())];
  }
  s[0] = static_cast<char>(s[0] - 'a' + 'A');
  return s;
}

std::string make_ssn(core::Xoshiro256& rng) {
  std::string s(9, '0');
  for (char& c : s) c = static_cast<char>('0' + rng.next_below(10));
  return s;
}

/// Corrupt a name with one random edit (substitute/delete/insert).
std::string corrupt(core::Xoshiro256& rng, std::string s) {
  if (s.empty()) return s;
  const auto pos = rng.next_below(s.size());
  switch (rng.next_below(3)) {
    case 0:
      s[pos] = static_cast<char>('a' + rng.next_below(26));
      break;
    case 1:
      s.erase(pos, 1);
      break;
    default:
      s.insert(pos, 1, static_cast<char>('a' + rng.next_below(26)));
      break;
  }
  return s;
}

}  // namespace

Corpus generate_corpus(const CorpusOptions& opts) {
  GA_CHECK(opts.num_people > 0 && opts.num_addresses > 0, "empty corpus");
  GA_CHECK(opts.num_rings * opts.ring_size <= opts.num_people,
           "rings exceed population");
  core::Xoshiro256 rng(opts.seed);
  Corpus corpus;
  corpus.num_people = opts.num_people;
  corpus.num_addresses = opts.num_addresses;

  struct Person {
    std::string first, last, ssn;
    std::uint32_t birth_year;
    std::vector<std::uint32_t> addresses;  // address history
    double credit;
  };
  std::vector<Person> people(opts.num_people);
  for (auto& p : people) {
    p.first = make_name(rng, 2);
    p.last = make_name(rng, 2 + rng.next_below(2));
    p.ssn = make_ssn(rng);
    p.birth_year = 1940 + static_cast<std::uint32_t>(rng.next_below(65));
    const auto naddr = 1 + rng.next_below(3);
    for (std::uint64_t i = 0; i < naddr; ++i) {
      p.addresses.push_back(
          static_cast<std::uint32_t>(rng.next_below(opts.num_addresses)));
    }
    p.credit = 350.0 + rng.next_double() * 500.0;
  }

  // Plant rings: consecutive people share `ring_shared_addresses` distinct
  // addresses (appended to each history) and optionally a surname.
  std::uint32_t next = 0;
  for (std::uint32_t r = 0; r < opts.num_rings; ++r) {
    std::vector<std::uint64_t> ring;
    std::vector<std::uint32_t> shared;
    for (std::uint32_t a = 0; a < opts.ring_shared_addresses; ++a) {
      shared.push_back(
          static_cast<std::uint32_t>(rng.next_below(opts.num_addresses)));
    }
    const std::string surname = make_name(rng, 3);
    for (std::uint32_t i = 0; i < opts.ring_size; ++i) {
      Person& p = people[next];
      for (std::uint32_t a : shared) p.addresses.push_back(a);
      if (opts.ring_shares_surname) p.last = surname;
      ring.push_back(next);
      ++next;
    }
    corpus.rings.push_back(std::move(ring));
  }

  // Emit one record per (person, address) plus duplicates with corruption.
  std::uint64_t rid = 0;
  for (std::uint64_t pid = 0; pid < people.size(); ++pid) {
    const Person& p = people[pid];
    for (std::uint32_t addr : p.addresses) {
      RawRecord rec;
      rec.record_id = rid++;
      rec.first_name = p.first;
      rec.last_name = p.last;
      rec.ssn = rng.next_bool(opts.missing_ssn_rate) ? std::string{} : p.ssn;
      rec.birth_year = p.birth_year;
      rec.address_id = addr;
      rec.credit_score = p.credit;
      rec.true_person = pid;
      corpus.records.push_back(rec);
      // Duplicate (same sighting, possibly corrupted) with some rate.
      if (rng.next_bool(opts.duplicate_rate)) {
        RawRecord dup = rec;
        dup.record_id = rid++;
        if (rng.next_bool(opts.typo_rate)) {
          dup.first_name = corrupt(rng, dup.first_name);
        }
        if (rng.next_bool(opts.typo_rate)) {
          dup.last_name = corrupt(rng, dup.last_name);
        }
        if (rng.next_bool(opts.missing_ssn_rate)) dup.ssn.clear();
        corpus.records.push_back(dup);
      }
    }
  }
  // Arrival order: shuffled, then stamped.
  std::shuffle(corpus.records.begin(), corpus.records.end(), rng);
  for (std::size_t i = 0; i < corpus.records.size(); ++i) {
    corpus.records[i].ts = static_cast<std::int64_t>(i);
  }
  return corpus;
}

std::size_t edit_distance(const std::string& a, const std::string& b) {
  const std::size_t n = a.size(), m = b.size();
  std::vector<std::size_t> prev(m + 1), cur(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double name_similarity(const std::string& a, const std::string& b) {
  if (a.empty() && b.empty()) return 1.0;
  const std::size_t d = edit_distance(a, b);
  const std::size_t len = std::max(a.size(), b.size());
  return 1.0 - static_cast<double>(d) / static_cast<double>(len);
}

std::string validate_record(const RawRecord& rec,
                            std::uint32_t num_addresses) {
  if (rec.last_name.empty()) return "empty-last-name";
  if (rec.address_id >= num_addresses) return "bad-address";
  if (rec.birth_year != 0 && (rec.birth_year < 1850 || rec.birth_year > 2100)) {
    return "bad-birth-year";
  }
  if (!rec.ssn.empty()) {
    if (rec.ssn.size() != 9) return "bad-ssn";
    for (const char c : rec.ssn) {
      if (c < '0' || c > '9') return "bad-ssn";
    }
  }
  if (rec.credit_score < 0.0 || rec.credit_score > 1000.0) {
    return "bad-credit-score";
  }
  return {};
}

std::string blocking_code(const std::string& name) {
  if (name.empty()) return "?";
  std::string code(1, static_cast<char>(std::tolower(name[0])));
  for (std::size_t i = 1; i < name.size() && code.size() < 4; ++i) {
    const char c = static_cast<char>(std::tolower(name[i]));
    switch (c) {
      case 'a': case 'e': case 'i': case 'o': case 'u': case 'y':
      case 'h': case 'w':
        break;  // skipped, Soundex-style
      default:
        if (code.back() != c) code.push_back(c);
    }
  }
  return code;
}

}  // namespace ga::pipeline
