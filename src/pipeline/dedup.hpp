// Deduplication — Fig. 2's entry stage in both its forms:
//  * post-process (batch) dedup: blocking on a phonetic surname code +
//    birth year, pairwise match inside blocks (exact SSN, or name
//    similarity), union-find merge into entities ([15], [17]);
//  * in-line (streaming) dedup: the same blocking index maintained
//    incrementally, each arriving record resolved against it.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernels/connected_components.hpp"
#include "pipeline/record.hpp"

namespace ga::pipeline {

struct Entity {
  std::uint64_t entity_id = 0;
  std::string first_name;   // representative (first-seen) values
  std::string last_name;
  std::string ssn;
  std::uint32_t birth_year = 0;
  double credit_score = 0.0;
  std::vector<std::uint32_t> addresses;      // distinct, sorted
  std::vector<std::uint64_t> record_ids;
  std::uint64_t true_person = 0;             // majority ground truth
};

struct DedupOptions {
  double name_match_threshold = 0.8;  // min combined name similarity
};

struct DedupResult {
  std::vector<Entity> entities;
  std::vector<std::uint64_t> entity_of_record;  // record index -> entity id
  std::uint64_t candidate_pairs = 0;   // pairs compared (work metric)
  std::uint64_t merges = 0;
};

/// Batch dedup over a full corpus.
DedupResult dedup_batch(const std::vector<RawRecord>& records,
                        const DedupOptions& opts = {});

/// Quality vs ground truth: pairwise precision/recall over records.
struct DedupQuality {
  double precision = 0.0;
  double recall = 0.0;
};
DedupQuality score_dedup(const std::vector<RawRecord>& records,
                         const std::vector<std::uint64_t>& entity_of_record);

/// In-line (streaming) dedup: resolves records one at a time.
class InlineDeduper {
 public:
  explicit InlineDeduper(const DedupOptions& opts = {});

  /// Pre-load existing entities (e.g. the batch-dedup output) so streaming
  /// records resolve against them instead of spawning duplicates.
  void preload(const std::vector<Entity>& entities);

  /// Resolve a record to an existing or fresh entity id; updates state.
  std::uint64_t ingest(const RawRecord& rec);

  const std::vector<Entity>& entities() const { return entities_; }
  std::uint64_t comparisons() const { return comparisons_; }

 private:
  bool matches(const Entity& e, const RawRecord& rec) const;

  DedupOptions opts_;
  std::vector<Entity> entities_;
  // Blocking index: code -> entity ids in the block.
  std::unordered_map<std::string, std::vector<std::uint64_t>> blocks_;
  std::unordered_map<std::string, std::uint64_t> ssn_index_;
  std::uint64_t comparisons_ = 0;
};

}  // namespace ga::pipeline
