#include "pipeline/dedup.hpp"

#include <algorithm>
#include <map>

namespace ga::pipeline {

namespace {

std::string block_key(const RawRecord& r) {
  return blocking_code(r.last_name) + ":" + std::to_string(r.birth_year);
}

bool records_match(const RawRecord& a, const RawRecord& b,
                   const DedupOptions& opts) {
  // Exact SSN match dominates.
  if (!a.ssn.empty() && a.ssn == b.ssn) return true;
  if (a.birth_year != b.birth_year) return false;
  const double sim = 0.5 * name_similarity(a.first_name, b.first_name) +
                     0.5 * name_similarity(a.last_name, b.last_name);
  return sim >= opts.name_match_threshold;
}

Entity make_entity(std::uint64_t id, const RawRecord& rec) {
  Entity e;
  e.entity_id = id;
  e.first_name = rec.first_name;
  e.last_name = rec.last_name;
  e.ssn = rec.ssn;
  e.birth_year = rec.birth_year;
  e.credit_score = rec.credit_score;
  e.addresses = {rec.address_id};
  e.record_ids = {rec.record_id};
  e.true_person = rec.true_person;
  return e;
}

void absorb(Entity& e, const RawRecord& rec) {
  if (e.ssn.empty()) e.ssn = rec.ssn;
  e.record_ids.push_back(rec.record_id);
  const auto it =
      std::lower_bound(e.addresses.begin(), e.addresses.end(), rec.address_id);
  if (it == e.addresses.end() || *it != rec.address_id) {
    e.addresses.insert(it, rec.address_id);
  }
}

}  // namespace

DedupResult dedup_batch(const std::vector<RawRecord>& records,
                        const DedupOptions& opts) {
  DedupResult out;
  const std::size_t n = records.size();
  // Block, then compare all pairs within each block, merging via
  // union-find over record indices.
  std::unordered_map<std::string, std::vector<std::uint32_t>> blocks;
  for (std::uint32_t i = 0; i < n; ++i) {
    blocks[block_key(records[i])].push_back(i);
  }
  // Also a direct SSN index: identical SSNs match across blocks (typos in
  // the surname change the blocking code).
  std::unordered_map<std::string, std::vector<std::uint32_t>> ssn_groups;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!records[i].ssn.empty()) ssn_groups[records[i].ssn].push_back(i);
  }

  kernels::UnionFind uf(static_cast<vid_t>(n));
  for (const auto& [key, members] : blocks) {
    for (std::size_t a = 0; a < members.size(); ++a) {
      for (std::size_t b = a + 1; b < members.size(); ++b) {
        ++out.candidate_pairs;
        if (records_match(records[members[a]], records[members[b]], opts)) {
          if (uf.unite(members[a], members[b])) ++out.merges;
        }
      }
    }
  }
  for (const auto& [ssn, members] : ssn_groups) {
    for (std::size_t i = 1; i < members.size(); ++i) {
      ++out.candidate_pairs;
      if (uf.unite(members[0], members[i])) ++out.merges;
    }
  }

  // Materialize entities in first-record order.
  out.entity_of_record.assign(n, 0);
  std::unordered_map<vid_t, std::uint64_t> entity_of_root;
  for (std::uint32_t i = 0; i < n; ++i) {
    const vid_t root = uf.find(i);
    auto [it, inserted] =
        entity_of_root.try_emplace(root, out.entities.size());
    if (inserted) {
      out.entities.push_back(make_entity(it->second, records[i]));
    } else {
      absorb(out.entities[it->second], records[i]);
    }
    out.entity_of_record[i] = it->second;
  }
  return out;
}

DedupQuality score_dedup(const std::vector<RawRecord>& records,
                         const std::vector<std::uint64_t>& entity_of_record) {
  GA_CHECK(records.size() == entity_of_record.size(),
           "score_dedup: size mismatch");
  // Pairwise measure over same-entity pairs, computed group-wise.
  // precision = |pairs grouped together AND truly same| / |pairs grouped|
  // recall    = ... / |pairs truly same|
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_entity,
      by_truth;
  for (std::size_t i = 0; i < records.size(); ++i) {
    by_entity[entity_of_record[i]].push_back(i);
    by_truth[records[i].true_person].push_back(i);
  }
  auto pairs = [](std::size_t k) {
    return static_cast<double>(k) * static_cast<double>(k - 1) / 2.0;
  };
  double grouped = 0.0, truly = 0.0, correct = 0.0;
  for (const auto& [e, members] : by_entity) grouped += pairs(members.size());
  for (const auto& [t, members] : by_truth) truly += pairs(members.size());
  // Correct pairs: within each entity, count pairs agreeing on truth.
  for (const auto& [e, members] : by_entity) {
    std::unordered_map<std::uint64_t, std::size_t> counts;
    for (std::size_t i : members) ++counts[records[i].true_person];
    for (const auto& [t, k] : counts) correct += pairs(k);
  }
  DedupQuality q;
  if (grouped > 0.0) q.precision = correct / grouped;
  if (truly > 0.0) q.recall = correct / truly;
  return q;
}

InlineDeduper::InlineDeduper(const DedupOptions& opts) : opts_(opts) {}

void InlineDeduper::preload(const std::vector<Entity>& entities) {
  GA_CHECK(entities_.empty(), "preload before any ingest");
  entities_ = entities;
  for (std::uint64_t eid = 0; eid < entities_.size(); ++eid) {
    Entity& e = entities_[eid];
    e.entity_id = eid;
    blocks_[blocking_code(e.last_name) + ":" + std::to_string(e.birth_year)]
        .push_back(eid);
    if (!e.ssn.empty()) ssn_index_.try_emplace(e.ssn, eid);
  }
}

bool InlineDeduper::matches(const Entity& e, const RawRecord& rec) const {
  if (!e.ssn.empty() && e.ssn == rec.ssn) return true;
  if (e.birth_year != rec.birth_year) return false;
  const double sim = 0.5 * name_similarity(e.first_name, rec.first_name) +
                     0.5 * name_similarity(e.last_name, rec.last_name);
  return sim >= opts_.name_match_threshold;
}

std::uint64_t InlineDeduper::ingest(const RawRecord& rec) {
  // SSN fast path.
  if (!rec.ssn.empty()) {
    const auto it = ssn_index_.find(rec.ssn);
    if (it != ssn_index_.end()) {
      absorb(entities_[it->second], rec);
      return it->second;
    }
  }
  const std::string key = block_key(rec);
  auto& block = blocks_[key];
  for (std::uint64_t eid : block) {
    ++comparisons_;
    if (matches(entities_[eid], rec)) {
      absorb(entities_[eid], rec);
      if (!rec.ssn.empty()) ssn_index_.try_emplace(rec.ssn, eid);
      return eid;
    }
  }
  const std::uint64_t eid = entities_.size();
  entities_.push_back(make_entity(eid, rec));
  block.push_back(eid);
  if (!rec.ssn.empty()) ssn_index_.try_emplace(rec.ssn, eid);
  return eid;
}

}  // namespace ga::pipeline
