// Synthetic people/address record corpus standing in for the paper's
// LexisNexis public-records data (§III, [23]): the NORA application's
// input. The generator controls exactly the phenomena NORA exploits —
// duplicate records with typos (dedup workload), shared addresses
// (relationship edges), and planted "rings" of identities that share
// addresses 2+ times, often with common surnames (the paper's example
// query). See DESIGN.md substitution table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/common.hpp"

namespace ga::pipeline {

struct RawRecord {
  std::uint64_t record_id = 0;
  std::string first_name;
  std::string last_name;
  std::string ssn;              // may be empty (missing value)
  std::uint32_t birth_year = 0;
  std::uint32_t address_id = 0; // current address at this observation
  double credit_score = 0.0;
  std::uint64_t true_person = 0;  // ground truth entity (for evaluation)
  std::int64_t ts = 0;
};

struct CorpusOptions {
  std::uint32_t num_people = 2000;
  std::uint32_t num_addresses = 800;
  double duplicate_rate = 0.5;   // extra (possibly corrupted) records/person
  double typo_rate = 0.3;        // P(duplicate has a name typo)
  double missing_ssn_rate = 0.1;
  std::uint32_t num_rings = 10;      // planted fraud rings
  std::uint32_t ring_size = 4;       // people per ring
  std::uint32_t ring_shared_addresses = 2;  // addresses each ring shares
  bool ring_shares_surname = true;
  std::uint64_t seed = 1;
};

struct Corpus {
  std::vector<RawRecord> records;
  /// Ground truth: people in planted rings (true_person ids).
  std::vector<std::vector<std::uint64_t>> rings;
  std::uint32_t num_people = 0;
  std::uint32_t num_addresses = 0;
};

/// Deterministic corpus generation. Records are shuffled (arrival order is
/// not grouped by person), as real bulk loads are.
Corpus generate_corpus(const CorpusOptions& opts);

/// Edit distance (Levenshtein) — dedup's similarity primitive.
std::size_t edit_distance(const std::string& a, const std::string& b);

/// Normalized name similarity in [0,1]: 1 - dist/max_len.
double name_similarity(const std::string& a, const std::string& b);

/// Phonetic-ish blocking code: first letter + consonant skeleton (a tiny
/// Soundex stand-in, stable and dependency-free).
std::string blocking_code(const std::string& name);

/// Ingest validation for the streaming path: returns an empty string when
/// the record is well-formed, else a short reason ("empty-last-name",
/// "bad-address", ...). Records that fail go to the dead-letter quarantine
/// instead of corrupting the store or crashing the apply loop.
std::string validate_record(const RawRecord& rec, std::uint32_t num_addresses);

}  // namespace ga::pipeline
