// Wall-clock timer for the bench harnesses.
#pragma once

#include <chrono>

namespace ga::core {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void restart() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ga::core
