// Minimal work-sharing thread pool with blocked parallel_for/parallel_reduce.
// The design follows the OpenMP "parallel for, static-ish chunking" idiom but
// stays pure std::thread so the library has no runtime dependency beyond
// pthreads. On a 1-core host everything degrades to the serial path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/common.hpp"

namespace ga::core {

/// Priority class for one-shot tasks submitted to a ThreadPool. Lower
/// enum value = drained first. The serving layer maps interactive queries
/// to kHigh and background/batch work to kLow.
enum class TaskPriority : std::uint8_t { kHigh = 0, kNormal = 1, kLow = 2 };
inline constexpr std::size_t kNumTaskPriorities = 3;

/// Fixed-size pool of worker threads executing blocked index ranges.
/// Threads are created once and parked on a condition variable between
/// parallel regions; a region hands out [begin,end) chunks via an atomic
/// cursor (dynamic self-scheduling, which tolerates the irregular per-vertex
/// costs typical of power-law graphs far better than static chunking).
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means std::thread::hardware_concurrency.
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs body(chunk_begin, chunk_end) across [begin, end) in chunks of
  /// roughly `grain` indices. The calling thread participates. Blocking:
  /// returns when every index has been processed. Safe to call from
  /// multiple threads concurrently (regions are serialized); do NOT call
  /// from inside a parallel_for body on the same pool.
  void parallel_for(std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
                    const std::function<void(std::uint64_t, std::uint64_t)>& body);

  /// Enqueues a one-shot task for asynchronous execution by a worker.
  /// Workers drain tasks strictly in priority order (kHigh before kNormal
  /// before kLow; FIFO within a class) whenever no parallel_for region is
  /// active. With zero workers (1-core host) the task runs inline before
  /// submit returns, preserving completion semantics. The default
  /// parallel_for path is untouched when no tasks are ever submitted: the
  /// only added cost is one relaxed atomic load on worker wake-up.
  ///
  /// Tasks must not call parallel_for or submit-and-wait on this same pool
  /// (a worker blocked in a task cannot drain the region it waits on).
  /// Tasks still queued when the pool is destroyed are discarded; owners
  /// that need completion must drain before tearing the pool down.
  void submit(std::function<void()> task,
              TaskPriority priority = TaskPriority::kNormal);

  /// Tasks enqueued but not yet started (diagnostic; racy by nature).
  std::size_t pending_tasks() const {
    return pending_tasks_.load(std::memory_order_relaxed);
  }

  /// Process-wide default pool (lazily constructed, sized to hardware).
  static ThreadPool& global();

 private:
  struct Region {
    std::atomic<std::uint64_t> cursor{0};
    std::uint64_t end = 0;
    std::uint64_t grain = 1;
    const std::function<void(std::uint64_t, std::uint64_t)>* body = nullptr;
    std::atomic<unsigned> remaining{0};  // workers still draining chunks
  };

  void worker_loop();
  void drain(Region& r);
  /// Pops the highest-priority pending task (mu_ must be held). Returns an
  /// empty function when no task is queued.
  std::function<void()> pop_task_locked();

  std::vector<std::thread> workers_;
  std::mutex region_mu_;  // serializes whole parallel_for regions
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  Region* active_ = nullptr;   // guarded by mu_ for pointer hand-off
  std::uint64_t epoch_ = 0;    // bumped per region so workers see new work
  bool stop_ = false;
  std::deque<std::function<void()>> tasks_[kNumTaskPriorities];  // guarded by mu_
  std::atomic<std::size_t> pending_tasks_{0};
};

/// Convenience: parallel_for over the global pool with per-index body.
template <typename Fn>
void parallel_for_each(std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
                       Fn&& fn) {
  std::function<void(std::uint64_t, std::uint64_t)> body =
      [&fn](std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t i = b; i < e; ++i) fn(i);
      };
  ThreadPool::global().parallel_for(begin, end, grain, body);
}

/// Parallel reduction: applies `map(i)` to each index and combines with
/// `combine`, starting from `init` per worker-chunk then across chunks.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
                  T init, Map&& map, Combine&& combine) {
  std::mutex mu;
  T total = init;
  std::function<void(std::uint64_t, std::uint64_t)> body =
      [&](std::uint64_t b, std::uint64_t e) {
        T local = init;
        for (std::uint64_t i = b; i < e; ++i) local = combine(local, map(i));
        std::lock_guard<std::mutex> lk(mu);
        total = combine(total, local);
      };
  ThreadPool::global().parallel_for(begin, end, grain, body);
  return total;
}

}  // namespace ga::core
