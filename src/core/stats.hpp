// Streaming summary statistics and fixed-bucket histograms.
// Used by degree-distribution reporting, anomaly detection baselines,
// and the bench harnesses' latency summaries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ga::core {

/// Welford single-pass mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);
  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile estimator over a retained sample (exact if all values kept).
class PercentileSketch {
 public:
  void add(double x) { values_.push_back(x); }
  /// q in [0,1]; nearest-rank on the sorted sample.
  double percentile(double q) const;
  std::size_t size() const { return values_.size(); }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

/// log2-bucketed histogram of nonnegative integer values (degree dists).
class Log2Histogram {
 public:
  void add(std::uint64_t v);
  /// One "bucket_lo..bucket_hi: count" line per occupied bucket.
  std::string to_string() const;
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<std::uint64_t> buckets_;
};

}  // namespace ga::core
