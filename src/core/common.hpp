// Common scalar types, error macros, and small utilities shared by every
// ga_* library. Kept intentionally tiny: this header is included everywhere.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

namespace ga {

/// Vertex identifier. 32 bits covers graphs to 4B vertices, which is far
/// beyond what this single-node reproduction materializes; edge counts use
/// 64 bits so CSR offsets never overflow.
using vid_t = std::uint32_t;
/// Edge identifier / CSR offset.
using eid_t = std::uint64_t;

/// Sentinel "no vertex" value.
inline constexpr vid_t kInvalidVid = std::numeric_limits<vid_t>::max();
/// Sentinel "unreachable" distance for integer-distance kernels.
inline constexpr std::uint32_t kInfDist = std::numeric_limits<std::uint32_t>::max();

/// Thrown on API misuse (bad arguments, inconsistent inputs). Internal
/// invariant violations use GA_ASSERT and abort instead.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Validate a user-facing precondition; throws ga::Error on failure.
#define GA_CHECK(cond, msg)                                        \
  do {                                                             \
    if (!(cond)) {                                                 \
      throw ::ga::Error(std::string("GA_CHECK failed: ") + (msg)); \
    }                                                              \
  } while (0)

/// Internal invariant; aborts (never throws) so it is usable in noexcept
/// hot paths. Compiled in all build types: the cost is negligible next to
/// the memory traffic of the kernels it guards.
#define GA_ASSERT(cond)                                                       \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "GA_ASSERT failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

/// Integer ceiling division.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

}  // namespace ga
