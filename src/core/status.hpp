// core::Status / StatusOr<T> — the one error vocabulary for fallible APIs.
// Replaces the mixed styles that grew across the subsystems (bool + error
// string in resilience, ga::Error exceptions in graph/io, ad-hoc enums in
// the server): a Status carries a machine-readable code plus a human
// message, and StatusOr<T> carries either a value or the Status explaining
// its absence. The observability layer records the codes uniformly, so a
// failed load, an exhausted retry stage, and a rejected query all expose
// the same taxonomy in traces and metrics.
//
// Legacy bridging: throwing APIs stay as thin wrappers — `or_throw()`
// converts a non-OK Status into the historical ga::Error, preserving the
// original message text.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "core/common.hpp"

namespace ga::core {

/// Failure taxonomy (a pragmatic subset of the canonical RPC codes).
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,     // caller-supplied input is malformed
  kNotFound,            // named thing (file, kernel, metric) absent
  kOutOfRange,          // index / id outside the valid domain
  kResourceExhausted,   // capacity limit hit (queue full, backlog)
  kDeadlineExceeded,    // budget expired before completion
  kUnavailable,         // transient: retry may succeed (no snapshot yet)
  kDataLoss,            // durable bytes are gone or corrupt (CRC, torn tail)
  kFailedPrecondition,  // call sequence violated (run_batch first)
  kInternal,            // invariant broke; bug, not bad input
};
inline constexpr std::size_t kNumStatusCodes = 10;

inline const char* status_code_name(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status NotFound(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  static Status OutOfRange(std::string m) {
    return {StatusCode::kOutOfRange, std::move(m)};
  }
  static Status ResourceExhausted(std::string m) {
    return {StatusCode::kResourceExhausted, std::move(m)};
  }
  static Status DeadlineExceeded(std::string m) {
    return {StatusCode::kDeadlineExceeded, std::move(m)};
  }
  static Status Unavailable(std::string m) {
    return {StatusCode::kUnavailable, std::move(m)};
  }
  static Status DataLoss(std::string m) {
    return {StatusCode::kDataLoss, std::move(m)};
  }
  static Status FailedPrecondition(std::string m) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  static Status Internal(std::string m) {
    return {StatusCode::kInternal, std::move(m)};
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    if (ok()) return "OK";
    return std::string(status_code_name(code_)) + ": " + message_;
  }

  /// Bridge to the legacy throwing API: raises ga::Error with the original
  /// message text (so existing EXPECT_THROW(…, ga::Error) tests hold).
  const Status& or_throw() const {
    if (!ok()) throw Error(message_);
    return *this;
  }

  bool operator==(const Status& o) const = default;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a T or the Status explaining why there is none.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    GA_ASSERT(!status_.ok());  // OK without a value is a contract violation
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    GA_ASSERT(ok());
    return *value_;
  }
  T& value() & {
    GA_ASSERT(ok());
    return *value_;
  }
  T&& value() && {
    GA_ASSERT(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Legacy bridge: the value, or ga::Error with the status message.
  T value_or_throw() && {
    status_.or_throw();
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ga::core
