// Bounded top-k tracker: keeps the k largest (score, item) pairs seen.
// Used by selection criteria ("top k vertices by property"), streaming
// top-k centrality tracking, and Jaccard top-k outputs — the paper's
// O(|V|^k) output class is always truncated to "some top k values".
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "core/common.hpp"

namespace ga::core {

template <typename Item, typename Score = double>
class TopK {
 public:
  explicit TopK(std::size_t k) : k_(k) { GA_CHECK(k > 0, "TopK requires k > 0"); }

  std::size_t k() const { return k_; }
  std::size_t size() const { return heap_.size(); }

  /// Current admission threshold: smallest retained score (or lowest
  /// possible if not yet full).
  Score threshold() const {
    if (heap_.size() < k_) return std::numeric_limits<Score>::lowest();
    return heap_.front().first;
  }

  /// Offers an item; returns true if it was admitted to the top-k.
  bool offer(Score score, Item item) {
    if (heap_.size() < k_) {
      heap_.emplace_back(score, std::move(item));
      std::push_heap(heap_.begin(), heap_.end(), MinCmp{});
      return true;
    }
    if (score <= heap_.front().first) return false;
    std::pop_heap(heap_.begin(), heap_.end(), MinCmp{});
    heap_.back() = {score, std::move(item)};
    std::push_heap(heap_.begin(), heap_.end(), MinCmp{});
    return true;
  }

  /// Extracts contents sorted by descending score (ties: stable by heap
  /// order, i.e. unspecified — callers needing total order sort items too).
  std::vector<std::pair<Score, Item>> sorted_desc() const {
    auto out = heap_;
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
      return a.first > b.first;
    });
    return out;
  }

 private:
  struct MinCmp {
    bool operator()(const std::pair<Score, Item>& a,
                    const std::pair<Score, Item>& b) const {
      return a.first > b.first;  // min-heap on score
    }
  };
  std::size_t k_;
  std::vector<std::pair<Score, Item>> heap_;
};

}  // namespace ga::core
