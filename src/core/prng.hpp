// Deterministic, seedable PRNGs for generators and randomized kernels.
// SplitMix64 seeds Xoshiro256**; both are tiny, fast, and reproducible
// across platforms (unlike std::mt19937 + std::uniform_*_distribution,
// whose outputs are implementation-defined for some distributions).
#pragma once

#include <cmath>
#include <cstdint>

#include "core/common.hpp"

namespace ga::core {

/// SplitMix64: used to expand a single 64-bit seed into state for other
/// generators, and as a standalone hash-quality PRNG.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: general-purpose PRNG with 256-bit state.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t next_below(std::uint64_t bound) {
    GA_ASSERT(bound > 0);
    // Debiased multiply: rejection only in the (rare) biased band.
    std::uint64_t x = next();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<unsigned __int128>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform vertex id in [0, n).
  vid_t next_vid(vid_t n) { return static_cast<vid_t>(next_below(n)); }

  /// Bernoulli trial with probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Exponential variate with given mean (for inter-arrival times in
  /// streaming workloads).
  double next_exponential(double mean) {
    // Clamp away 0 so log() is finite.
    double u = next_double();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace ga::core
