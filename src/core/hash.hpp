// Hashing helpers used by dedup blocking keys, anomaly-kernel key tables,
// and the edge-dedup hash sets.
#pragma once

#include <cstdint>
#include <string_view>

namespace ga::core {

/// 64-bit finalizer (Murmur3 fmix64): good avalanche for integer keys.
constexpr std::uint64_t mix64(std::uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// Order-dependent combine (Boost-style, 64-bit constants).
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) {
  return seed ^ (mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// FNV-1a over a byte string: stable across runs (unlike std::hash).
constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Canonical undirected-edge key: order-independent pair hash input.
constexpr std::uint64_t edge_key(std::uint32_t u, std::uint32_t v) {
  const std::uint64_t lo = u < v ? u : v;
  const std::uint64_t hi = u < v ? v : u;
  return (hi << 32) | lo;
}

}  // namespace ga::core
