// Hashing helpers used by dedup blocking keys, anomaly-kernel key tables,
// the edge-dedup hash sets, and the resilience layer's WAL record CRCs.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace ga::core {

/// 64-bit finalizer (Murmur3 fmix64): good avalanche for integer keys.
constexpr std::uint64_t mix64(std::uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// Order-dependent combine (Boost-style, 64-bit constants).
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) {
  return seed ^ (mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// FNV-1a over a byte string: stable across runs (unlike std::hash).
constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Canonical undirected-edge key: order-independent pair hash input.
constexpr std::uint64_t edge_key(std::uint32_t u, std::uint32_t v) {
  const std::uint64_t lo = u < v ? u : v;
  const std::uint64_t hi = u < v ? v : u;
  return (hi << 32) | lo;
}

namespace detail {
/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) slice-by-8 lookup
/// tables, built at compile time so the header stays dependency-free.
/// Table 0 is the classic byte-at-a-time table; tables 1..7 advance a byte
/// through 1..7 further zero bytes, letting the hot loop fold 8 input
/// bytes per iteration — the WAL append path CRCs every record, so this is
/// on the streaming ingest critical path.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_crc32_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    for (std::size_t j = 1; j < 8; ++j) {
      t[j][i] = t[0][t[j - 1][i] & 0xFFu] ^ (t[j - 1][i] >> 8);
    }
  }
  return t;
}
inline constexpr std::array<std::array<std::uint32_t, 256>, 8> kCrc32Tables =
    make_crc32_tables();
}  // namespace detail

/// CRC-32 over a byte range. `seed` lets callers chain ranges:
/// crc32(b, crc32(a)) == crc32(a ++ b). Matches zlib's crc32.
inline std::uint32_t crc32(const void* data, std::size_t len,
                           std::uint32_t seed = 0) {
  const auto& t = detail::kCrc32Tables;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  while (len >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);  // unaligned-safe 8-byte load
    c ^= static_cast<std::uint32_t>(w);
    const auto hi = static_cast<std::uint32_t>(w >> 32);
    c = t[7][c & 0xFFu] ^ t[6][(c >> 8) & 0xFFu] ^ t[5][(c >> 16) & 0xFFu] ^
        t[4][c >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
        t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    c = detail::kCrc32Tables[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

inline std::uint32_t crc32(std::string_view s, std::uint32_t seed = 0) {
  return crc32(s.data(), s.size(), seed);
}

}  // namespace ga::core
