#include "core/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/common.hpp"

namespace ga::core {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double PercentileSketch::percentile(double q) const {
  GA_CHECK(!values_.empty(), "percentile of empty sketch");
  GA_CHECK(q >= 0.0 && q <= 1.0, "quantile out of [0,1]");
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  const auto n = values_.size();
  auto rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank > 0) --rank;  // nearest-rank, 0-indexed
  if (rank >= n) rank = n - 1;
  return values_[rank];
}

void Log2Histogram::add(std::uint64_t v) {
  std::size_t bucket = 0;
  if (v > 0) bucket = static_cast<std::size_t>(64 - __builtin_clzll(v));
  if (bucket >= buckets_.size()) buckets_.resize(bucket + 1, 0);
  ++buckets_[bucket];
}

std::string Log2Histogram::to_string() const {
  std::ostringstream os;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    const std::uint64_t lo = b == 0 ? 0 : (1ULL << (b - 1));
    const std::uint64_t hi = b == 0 ? 0 : (1ULL << b) - 1;
    os << "[" << lo << "," << hi << "]: " << buckets_[b] << "\n";
  }
  return os.str();
}

}  // namespace ga::core
