// Fixed-size bitmap with optional atomic set, used for BFS frontiers and
// visited sets. Word-level layout so direction-optimizing BFS can scan
// 64 vertices per load.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/common.hpp"

namespace ga::core {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::uint64_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  std::uint64_t size() const { return size_; }

  void reset() { std::fill(words_.begin(), words_.end(), 0); }

  bool get(std::uint64_t i) const {
    GA_ASSERT(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::uint64_t i) {
    GA_ASSERT(i < size_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }

  void clear(std::uint64_t i) {
    GA_ASSERT(i < size_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  /// Hint the cache that word containing bit i is about to be probed.
  /// The pull-mode frontier probe loop issues these a few arcs ahead so
  /// the random bitmap reads overlap with the sequential adjacency scan.
  void prefetch(std::uint64_t i) const {
    __builtin_prefetch(&words_[i >> 6], /*rw=*/0, /*locality=*/3);
  }

  /// Atomically set bit i; returns true if this call flipped it 0->1.
  /// Safe for concurrent writers (BFS frontier insertion).
  bool set_atomic(std::uint64_t i) {
    GA_ASSERT(i < size_);
    auto* w = reinterpret_cast<std::atomic<std::uint64_t>*>(&words_[i >> 6]);
    const std::uint64_t mask = 1ULL << (i & 63);
    const std::uint64_t old = w->fetch_or(mask, std::memory_order_relaxed);
    return (old & mask) == 0;
  }

  std::uint64_t count() const {
    std::uint64_t c = 0;
    for (std::uint64_t w : words_) c += static_cast<std::uint64_t>(__builtin_popcountll(w));
    return c;
  }

  void swap(Bitmap& other) {
    std::swap(size_, other.size_);
    words_.swap(other.words_);
  }

 private:
  std::uint64_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ga::core
