#include "core/thread_pool.hpp"

#include <algorithm>

namespace ga::core {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // The caller is worker 0, so spawn one fewer thread.
  workers_.reserve(num_threads - 1);
  for (unsigned i = 1; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::drain(Region& r) {
  const std::uint64_t grain = r.grain;
  for (;;) {
    const std::uint64_t b = r.cursor.fetch_add(grain, std::memory_order_relaxed);
    if (b >= r.end) break;
    const std::uint64_t e = std::min(b + grain, r.end);
    (*r.body)(b, e);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Region* region = nullptr;
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_start_.wait(lk, [&] {
        return stop_ || epoch_ != seen_epoch ||
               pending_tasks_.load(std::memory_order_relaxed) > 0;
      });
      if (stop_) return;
      if (epoch_ != seen_epoch) {
        // Regions take precedence over tasks: a blocked parallel_for caller
        // waits on every worker, a queued task waits on just one.
        seen_epoch = epoch_;
        region = active_;
      } else {
        task = pop_task_locked();
      }
    }
    if (region != nullptr) {
      drain(*region);
      if (region->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last worker out wakes the caller.
        std::lock_guard<std::mutex> lk(mu_);
        cv_done_.notify_all();
      }
      continue;
    }
    if (task) task();
  }
}

std::function<void()> ThreadPool::pop_task_locked() {
  for (auto& q : tasks_) {
    if (!q.empty()) {
      std::function<void()> fn = std::move(q.front());
      q.pop_front();
      pending_tasks_.fetch_sub(1, std::memory_order_relaxed);
      return fn;
    }
  }
  return {};
}

void ThreadPool::submit(std::function<void()> task, TaskPriority priority) {
  GA_CHECK(static_cast<bool>(task), "submit: empty task");
  // Serial degradation: with no workers the task runs inline, so submit
  // still guarantees eventual execution (and FIFO order) on 1-core hosts.
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    tasks_[static_cast<std::size_t>(priority)].push_back(std::move(task));
    pending_tasks_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_start_.notify_one();
}

void ThreadPool::parallel_for(
    std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
    const std::function<void(std::uint64_t, std::uint64_t)>& body) {
  if (begin >= end) return;
  grain = std::max<std::uint64_t>(1, grain);
  const std::uint64_t n = end - begin;
  // Serial fast path: tiny ranges or no extra workers.
  if (workers_.empty() || n <= grain) {
    body(begin, end);
    return;
  }

  // One region at a time: concurrent top-level callers queue here.
  std::lock_guard<std::mutex> region_lock(region_mu_);

  // Shift the range so the cursor starts at `begin`.
  Region region;
  region.cursor.store(begin, std::memory_order_relaxed);
  region.end = end;
  region.grain = grain;
  region.body = &body;
  region.remaining.store(static_cast<unsigned>(workers_.size()),
                         std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(mu_);
    active_ = &region;
    ++epoch_;
  }
  cv_start_.notify_all();
  drain(region);  // caller participates
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] {
    return region.remaining.load(std::memory_order_acquire) == 0;
  });
  active_ = nullptr;
}

}  // namespace ga::core
