// Sparse matrix in CSR (and transposable to CSC) form — the storage format
// the paper's sparse accelerator (Fig. 4) hardwires. Column indices are
// sorted within each row.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/common.hpp"
#include "graph/csr_graph.hpp"

namespace ga::spla {

struct Triple {
  vid_t row = 0, col = 0;
  double val = 1.0;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(vid_t rows, vid_t cols, std::vector<eid_t> row_ptr,
            std::vector<vid_t> col_idx, std::vector<double> vals);

  /// Build from (possibly unsorted, duplicate-bearing) triples; duplicates
  /// are summed.
  static CsrMatrix from_triples(vid_t rows, vid_t cols,
                                std::vector<Triple> triples);

  /// Boolean adjacency matrix of a graph: A(i,j) = 1 iff arc j->i exists
  /// (the paper's footnote-3 convention: column = source, row = target).
  static CsrMatrix adjacency(const graph::CSRGraph& g);

  /// n x n identity.
  static CsrMatrix identity(vid_t n);

  vid_t rows() const { return rows_; }
  vid_t cols() const { return cols_; }
  eid_t nnz() const { return static_cast<eid_t>(col_idx_.size()); }

  std::span<const vid_t> row_cols(vid_t r) const {
    GA_ASSERT(r < rows_);
    return {col_idx_.data() + row_ptr_[r],
            static_cast<std::size_t>(row_ptr_[r + 1] - row_ptr_[r])};
  }
  std::span<const double> row_vals(vid_t r) const {
    GA_ASSERT(r < rows_);
    return {vals_.data() + row_ptr_[r],
            static_cast<std::size_t>(row_ptr_[r + 1] - row_ptr_[r])};
  }

  const std::vector<eid_t>& row_ptr() const { return row_ptr_; }
  const std::vector<vid_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& vals() const { return vals_; }

  double at(vid_t r, vid_t c) const;  // 0.0 if absent

  CsrMatrix transposed() const;  // CSC view materialized as CSR of A^T

  bool structurally_equal(const CsrMatrix& other) const;

 private:
  vid_t rows_ = 0, cols_ = 0;
  std::vector<eid_t> row_ptr_{0};
  std::vector<vid_t> col_idx_;
  std::vector<double> vals_;
};

}  // namespace ga::spla
