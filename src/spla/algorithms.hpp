// Graph kernels in the language of linear algebra (Kepner & Gilbert [19]),
// the execution model of the paper's §V.A accelerator. These mirror the
// direct kernels in src/kernels and are cross-checked against them in the
// tests and in the ablation bench (DESIGN.md E12: the paper's closing
// observation that the two emerging architectures embody "almost opposite"
// execution models).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "spla/csr_matrix.hpp"

namespace ga::spla {

/// BFS levels via masked OrAnd SpMSpV iteration: f <- A f .!visited.
/// Returns hop distance per vertex (kInfDist if unreached).
std::vector<std::uint32_t> bfs_levels_la(const graph::CSRGraph& g, vid_t source);

/// PageRank via PlusTimes SpMV power iteration on the column-normalized
/// adjacency.
std::vector<double> pagerank_la(const graph::CSRGraph& g, double damping = 0.85,
                                double tol = 1e-8, unsigned max_iters = 100);

/// Global triangle count via L .* (L * L) on the strict lower triangle
/// (Graph Challenge LA formulation).
std::uint64_t triangle_count_la(const graph::CSRGraph& g);

/// Single-source hop distances via MinPlus SpMV iteration (Bellman-Ford in
/// the tropical semiring); weights of 1 per arc.
std::vector<double> sssp_la(const graph::CSRGraph& g, vid_t source);

/// Connected components via min.second label propagation SpMV iterated to
/// a fixpoint. Labels are canonical minimum-vertex ids (matches
/// kernels::wcc_* output exactly). Undirected graphs only.
std::vector<vid_t> wcc_la(const graph::CSRGraph& g);

}  // namespace ga::spla
