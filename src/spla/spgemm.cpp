#include "spla/spgemm.hpp"

#include <algorithm>

namespace ga::spla {

template <typename SR>
CsrMatrix spgemm(const CsrMatrix& A, const CsrMatrix& B, SpgemmStats* stats) {
  GA_CHECK(A.cols() == B.rows(), "spgemm: dimension mismatch");
  const vid_t m = A.rows();
  const vid_t n = B.cols();

  std::vector<eid_t> row_ptr(static_cast<std::size_t>(m) + 1, 0);
  std::vector<vid_t> col_idx;
  std::vector<double> vals;

  // Gustavson: per output row, scatter-accumulate into a dense SPA.
  std::vector<double> spa(n, SR::zero());
  std::vector<bool> occupied(n, false);
  std::vector<vid_t> nz;
  std::uint64_t multiplies = 0, rows_touched = 0;

  for (vid_t i = 0; i < m; ++i) {
    nz.clear();
    const auto a_cols = A.row_cols(i);
    const auto a_vals = A.row_vals(i);
    for (std::size_t ak = 0; ak < a_cols.size(); ++ak) {
      const vid_t k = a_cols[ak];
      const double av = a_vals[ak];
      const auto b_cols = B.row_cols(k);
      const auto b_vals = B.row_vals(k);
      ++rows_touched;
      for (std::size_t bj = 0; bj < b_cols.size(); ++bj) {
        const vid_t j = b_cols[bj];
        ++multiplies;
        const double prod = SR::mul(av, b_vals[bj]);
        if (!occupied[j]) {
          occupied[j] = true;
          spa[j] = prod;
          nz.push_back(j);
        } else {
          spa[j] = SR::add(spa[j], prod);
        }
      }
    }
    std::sort(nz.begin(), nz.end());
    for (vid_t j : nz) {
      if (spa[j] != SR::zero()) {
        col_idx.push_back(j);
        vals.push_back(spa[j]);
      }
      spa[j] = SR::zero();
      occupied[j] = false;
    }
    row_ptr[i + 1] = static_cast<eid_t>(col_idx.size());
  }
  if (stats != nullptr) {
    stats->multiplies = multiplies;
    stats->rows_touched = rows_touched;
    stats->output_nnz = col_idx.size();
  }
  return CsrMatrix(m, n, std::move(row_ptr), std::move(col_idx),
                   std::move(vals));
}

template CsrMatrix spgemm<PlusTimes>(const CsrMatrix&, const CsrMatrix&,
                                     SpgemmStats*);
template CsrMatrix spgemm<MinPlus>(const CsrMatrix&, const CsrMatrix&,
                                   SpgemmStats*);
template CsrMatrix spgemm<OrAnd>(const CsrMatrix&, const CsrMatrix&,
                                 SpgemmStats*);

CsrMatrix multiply(const CsrMatrix& A, const CsrMatrix& B,
                   SpgemmStats* stats) {
  return spgemm<PlusTimes>(A, B, stats);
}

std::uint64_t spgemm_flops(const CsrMatrix& A, const CsrMatrix& B) {
  GA_CHECK(A.cols() == B.rows(), "spgemm_flops: dimension mismatch");
  std::uint64_t flops = 0;
  for (vid_t i = 0; i < A.rows(); ++i) {
    for (vid_t k : A.row_cols(i)) {
      flops += B.row_cols(k).size();
    }
  }
  return flops;
}

}  // namespace ga::spla
