#include "spla/algorithms.hpp"

#include <cmath>

#include "spla/ewise.hpp"
#include "spla/spgemm.hpp"
#include "spla/spmv.hpp"

namespace ga::spla {

std::vector<std::uint32_t> bfs_levels_la(const graph::CSRGraph& g,
                                         vid_t source) {
  GA_CHECK(source < g.num_vertices(), "bfs_levels_la: source out of range");
  const vid_t n = g.num_vertices();
  // Push direction: new_frontier = A * f, i.e. row i gets a 1 if some
  // in-neighbor (column) of i is in f. A = adjacency (row=target).
  // spmspv wants A^T rows = out-neighbor lists, which is exactly the
  // graph's out-CSR; build At directly from out-adjacency.
  std::vector<Triple> triples;
  triples.reserve(g.num_arcs());
  for (vid_t u = 0; u < n; ++u) {
    for (vid_t v : g.out_neighbors(u)) triples.push_back({u, v, 1.0});
  }
  const CsrMatrix At = CsrMatrix::from_triples(n, n, std::move(triples));

  std::vector<std::uint32_t> level(n, kInfDist);
  std::vector<double> visited(n, 0.0);  // mask complement
  level[source] = 0;
  visited[source] = 1.0;
  SparseVector frontier(n);
  frontier.push_back(source, 1.0);
  std::uint32_t depth = 1;
  while (frontier.nnz() > 0) {
    frontier = spmspv<OrAnd>(At, frontier, &visited);
    for (vid_t v : frontier.indices()) {
      level[v] = depth;
      visited[v] = 1.0;
    }
    ++depth;
  }
  return level;
}

std::vector<double> pagerank_la(const graph::CSRGraph& g, double damping,
                                double tol, unsigned max_iters) {
  const vid_t n = g.num_vertices();
  if (n == 0) return {};
  // M = A * D^-1 (column-normalized): M(i,j) = 1/outdeg(j) if arc j->i.
  std::vector<Triple> triples;
  triples.reserve(g.num_arcs());
  for (vid_t u = 0; u < n; ++u) {
    const double inv = 1.0 / static_cast<double>(g.out_degree(u));
    for (vid_t v : g.out_neighbors(u)) triples.push_back({v, u, inv});
  }
  const CsrMatrix M = CsrMatrix::from_triples(n, n, std::move(triples));

  std::vector<double> rank(n, 1.0 / n);
  for (unsigned iter = 0; iter < max_iters; ++iter) {
    double dangling = 0.0;
    for (vid_t u = 0; u < n; ++u) {
      if (g.out_degree(u) == 0) dangling += rank[u];
    }
    std::vector<double> next = spmv<PlusTimes>(M, rank);
    const double base = (1.0 - damping) / n + damping * dangling / n;
    double delta = 0.0;
    for (vid_t v = 0; v < n; ++v) {
      next[v] = base + damping * next[v];
      delta += std::abs(next[v] - rank[v]);
    }
    rank.swap(next);
    if (delta < tol) break;
  }
  return rank;
}

std::uint64_t triangle_count_la(const graph::CSRGraph& g) {
  GA_CHECK(!g.directed(), "triangle_count_la expects undirected graphs");
  const CsrMatrix A = CsrMatrix::adjacency(g);
  const CsrMatrix L = lower_triangle(A);
  // C = (L * L) .* L counts, for each edge (i,j) with j<i, the wedges
  // through any k<j — i.e. each triangle exactly once.
  const CsrMatrix LL = multiply(L, L);
  const CsrMatrix C = ewise_multiply(LL, L);
  return static_cast<std::uint64_t>(reduce_sum(C) + 0.5);
}

std::vector<double> sssp_la(const graph::CSRGraph& g, vid_t source) {
  GA_CHECK(source < g.num_vertices(), "sssp_la: source out of range");
  const vid_t n = g.num_vertices();
  // Tropical adjacency: M(i,j) = 1 (hop cost) if arc j->i, plus the
  // implicit diagonal handled by folding min with the previous distances.
  std::vector<Triple> triples;
  triples.reserve(g.num_arcs());
  for (vid_t u = 0; u < n; ++u) {
    for (vid_t v : g.out_neighbors(u)) triples.push_back({v, u, 1.0});
  }
  const CsrMatrix M = CsrMatrix::from_triples(n, n, std::move(triples));
  std::vector<double> dist(n, MinPlus::zero());
  dist[source] = 0.0;
  for (vid_t iter = 0; iter < n; ++iter) {
    std::vector<double> next = spmv<MinPlus>(M, dist);
    bool changed = false;
    for (vid_t v = 0; v < n; ++v) {
      next[v] = std::min(next[v], dist[v]);
      if (next[v] != dist[v]) changed = true;
    }
    dist.swap(next);
    if (!changed) break;
  }
  return dist;
}

std::vector<vid_t> wcc_la(const graph::CSRGraph& g) {
  GA_CHECK(!g.directed(), "wcc_la expects undirected graphs");
  const vid_t n = g.num_vertices();
  std::vector<Triple> triples;
  triples.reserve(g.num_arcs());
  for (vid_t u = 0; u < n; ++u) {
    for (vid_t v : g.out_neighbors(u)) triples.push_back({v, u, 1.0});
  }
  const CsrMatrix A = CsrMatrix::from_triples(n, n, std::move(triples));
  std::vector<double> label(n);
  for (vid_t v = 0; v < n; ++v) label[v] = v;
  for (vid_t iter = 0; iter < n; ++iter) {
    // next = min(label, A min.2nd label): adopt the smallest neighbor label.
    std::vector<double> next = spmv<MinSecond>(A, label);
    bool changed = false;
    for (vid_t v = 0; v < n; ++v) {
      next[v] = std::min(next[v], label[v]);
      if (next[v] != label[v]) changed = true;
    }
    label.swap(next);
    if (!changed) break;
  }
  std::vector<vid_t> out(n);
  for (vid_t v = 0; v < n; ++v) out[v] = static_cast<vid_t>(label[v]);
  return out;
}

}  // namespace ga::spla
