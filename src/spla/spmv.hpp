// Sparse matrix-vector products over semirings: dense-output SpMV and
// sparse-frontier SpMSpV (optionally masked), the two workhorse forms the
// paper's accelerator streams (Fig. 4 "address generation of multiple
// sparse vectors").
#pragma once

#include <vector>

#include "spla/csr_matrix.hpp"
#include "spla/semiring.hpp"
#include "spla/sparse_vector.hpp"

namespace ga::spla {

/// y = A ⊕.⊗ x (dense x, dense y). Row-parallel.
template <typename SR>
std::vector<double> spmv(const CsrMatrix& A, const std::vector<double>& x) {
  GA_CHECK(x.size() == A.cols(), "spmv: dimension mismatch");
  std::vector<double> y(A.rows(), SR::zero());
  for (vid_t r = 0; r < A.rows(); ++r) {
    auto acc = SR::zero();
    const auto cols = A.row_cols(r);
    const auto vals = A.row_vals(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      acc = SR::add(acc, SR::mul(vals[i], x[cols[i]]));
    }
    y[r] = acc;
  }
  return y;
}

/// y = A ⊕.⊗ x with sparse x: column-driven push along A^T rows. `At` must
/// be the transpose of the conceptual A (i.e. At.row r lists where column r
/// of A has entries... supplied explicitly so callers amortize the
/// transpose). Entries in `mask_complement` (if non-null, dense 0/1) are
/// suppressed when nonzero — the GraphBLAS "!mask" used by BFS to skip
/// visited vertices.
template <typename SR>
SparseVector spmspv(const CsrMatrix& At, const SparseVector& x,
                    const std::vector<double>* mask_complement = nullptr) {
  GA_CHECK(x.dim() == At.rows(), "spmspv: dimension mismatch");
  const vid_t out_dim = At.cols();
  // Gustavson-style sparse accumulator.
  std::vector<double> acc(out_dim, SR::zero());
  std::vector<bool> touched(out_dim, false);
  std::vector<vid_t> nz;
  for (std::size_t k = 0; k < x.nnz(); ++k) {
    const vid_t c = x.indices()[k];
    const double xv = x.values()[k];
    const auto cols = At.row_cols(c);
    const auto vals = At.row_vals(c);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      const vid_t r = cols[i];
      if (mask_complement != nullptr && (*mask_complement)[r] != 0.0) continue;
      acc[r] = SR::add(acc[r], SR::mul(vals[i], xv));
      if (!touched[r]) {
        touched[r] = true;
        nz.push_back(r);
      }
    }
  }
  std::sort(nz.begin(), nz.end());
  SparseVector y(out_dim);
  for (vid_t r : nz) {
    if (acc[r] != SR::zero()) y.push_back(r, acc[r]);
  }
  return y;
}

}  // namespace ga::spla
