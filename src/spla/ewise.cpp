#include "spla/ewise.hpp"

#include <algorithm>

namespace ga::spla {

namespace {

template <typename RowFn>
CsrMatrix build_rows(vid_t rows, vid_t cols, RowFn&& fn) {
  std::vector<eid_t> row_ptr(static_cast<std::size_t>(rows) + 1, 0);
  std::vector<vid_t> col_idx;
  std::vector<double> vals;
  for (vid_t r = 0; r < rows; ++r) {
    fn(r, col_idx, vals);
    row_ptr[r + 1] = static_cast<eid_t>(col_idx.size());
  }
  return CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                   std::move(vals));
}

}  // namespace

CsrMatrix ewise_multiply(const CsrMatrix& A, const CsrMatrix& B) {
  GA_CHECK(A.rows() == B.rows() && A.cols() == B.cols(),
           "ewise_multiply: shape mismatch");
  return build_rows(A.rows(), A.cols(),
                    [&](vid_t r, std::vector<vid_t>& ci, std::vector<double>& vv) {
                      const auto ac = A.row_cols(r);
                      const auto av = A.row_vals(r);
                      const auto bc = B.row_cols(r);
                      const auto bv = B.row_vals(r);
                      std::size_t i = 0, j = 0;
                      while (i < ac.size() && j < bc.size()) {
                        if (ac[i] < bc[j]) {
                          ++i;
                        } else if (bc[j] < ac[i]) {
                          ++j;
                        } else {
                          ci.push_back(ac[i]);
                          vv.push_back(av[i] * bv[j]);
                          ++i;
                          ++j;
                        }
                      }
                    });
}

CsrMatrix ewise_add(const CsrMatrix& A, const CsrMatrix& B) {
  GA_CHECK(A.rows() == B.rows() && A.cols() == B.cols(),
           "ewise_add: shape mismatch");
  return build_rows(A.rows(), A.cols(),
                    [&](vid_t r, std::vector<vid_t>& ci, std::vector<double>& vv) {
                      const auto ac = A.row_cols(r);
                      const auto av = A.row_vals(r);
                      const auto bc = B.row_cols(r);
                      const auto bv = B.row_vals(r);
                      std::size_t i = 0, j = 0;
                      while (i < ac.size() || j < bc.size()) {
                        if (j >= bc.size() || (i < ac.size() && ac[i] < bc[j])) {
                          ci.push_back(ac[i]);
                          vv.push_back(av[i]);
                          ++i;
                        } else if (i >= ac.size() || bc[j] < ac[i]) {
                          ci.push_back(bc[j]);
                          vv.push_back(bv[j]);
                          ++j;
                        } else {
                          ci.push_back(ac[i]);
                          vv.push_back(av[i] + bv[j]);
                          ++i;
                          ++j;
                        }
                      }
                    });
}

double reduce_sum(const CsrMatrix& A) {
  double total = 0.0;
  for (double v : A.vals()) total += v;
  return total;
}

std::vector<double> reduce_rows(const CsrMatrix& A) {
  std::vector<double> out(A.rows(), 0.0);
  for (vid_t r = 0; r < A.rows(); ++r) {
    for (double v : A.row_vals(r)) out[r] += v;
  }
  return out;
}

CsrMatrix select(const CsrMatrix& A,
                 const std::function<bool(vid_t, vid_t, double)>& pred) {
  return build_rows(A.rows(), A.cols(),
                    [&](vid_t r, std::vector<vid_t>& ci, std::vector<double>& vv) {
                      const auto cols = A.row_cols(r);
                      const auto vals = A.row_vals(r);
                      for (std::size_t i = 0; i < cols.size(); ++i) {
                        if (pred(r, cols[i], vals[i])) {
                          ci.push_back(cols[i]);
                          vv.push_back(vals[i]);
                        }
                      }
                    });
}

CsrMatrix lower_triangle(const CsrMatrix& A) {
  return select(A, [](vid_t r, vid_t c, double) { return c < r; });
}

CsrMatrix upper_triangle(const CsrMatrix& A) {
  return select(A, [](vid_t r, vid_t c, double) { return c > r; });
}

}  // namespace ga::spla
