#include "spla/sparse_vector.hpp"

#include <algorithm>

namespace ga::spla {

SparseVector::SparseVector(vid_t dim, std::vector<vid_t> idx,
                           std::vector<double> val)
    : dim_(dim), idx_(std::move(idx)), val_(std::move(val)) {
  GA_CHECK(idx_.size() == val_.size(), "SparseVector: size mismatch");
  for (std::size_t i = 0; i < idx_.size(); ++i) {
    GA_CHECK(idx_[i] < dim_, "SparseVector: index out of range");
    GA_CHECK(i == 0 || idx_[i - 1] < idx_[i],
             "SparseVector: indices must be strictly ascending");
  }
}

SparseVector SparseVector::from_dense(const std::vector<double>& dense,
                                      double zero) {
  SparseVector out(static_cast<vid_t>(dense.size()));
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (dense[i] != zero) out.push_back(static_cast<vid_t>(i), dense[i]);
  }
  return out;
}

void SparseVector::push_back(vid_t i, double v) {
  GA_CHECK(i < dim_, "SparseVector: index out of range");
  GA_CHECK(idx_.empty() || idx_.back() < i,
           "SparseVector: push_back out of order");
  idx_.push_back(i);
  val_.push_back(v);
}

double SparseVector::at(vid_t i) const {
  const auto it = std::lower_bound(idx_.begin(), idx_.end(), i);
  if (it == idx_.end() || *it != i) return 0.0;
  return val_[static_cast<std::size_t>(it - idx_.begin())];
}

std::vector<double> SparseVector::to_dense() const {
  std::vector<double> dense(dim_, 0.0);
  for (std::size_t i = 0; i < idx_.size(); ++i) dense[idx_[i]] = val_[i];
  return dense;
}

}  // namespace ga::spla
