// Element-wise sparse matrix operations: Hadamard (intersection) product,
// addition (union), scalar reduction, and masked variants. The Hadamard
// product against the adjacency mask is the heart of the linear-algebra
// triangle count (A^2 .* A).
#pragma once

#include <functional>

#include "spla/csr_matrix.hpp"

namespace ga::spla {

/// C(i,j) = A(i,j) * B(i,j) where both are present (structural intersect).
CsrMatrix ewise_multiply(const CsrMatrix& A, const CsrMatrix& B);

/// C(i,j) = A(i,j) + B(i,j) over the structural union.
CsrMatrix ewise_add(const CsrMatrix& A, const CsrMatrix& B);

/// Sum of every stored value.
double reduce_sum(const CsrMatrix& A);

/// Per-row sum of stored values (dense output).
std::vector<double> reduce_rows(const CsrMatrix& A);

/// Drop entries where pred(row, col, val) is false.
CsrMatrix select(const CsrMatrix& A,
                 const std::function<bool(vid_t, vid_t, double)>& pred);

/// Strict lower/upper triangle (tril/triu with k=-1/+1 in GraphBLAS terms).
CsrMatrix lower_triangle(const CsrMatrix& A);
CsrMatrix upper_triangle(const CsrMatrix& A);

}  // namespace ga::spla
