// Semirings for the GraphBLAS-lite layer (paper §V.A: "graph operations
// after translation into sparse matrix operations", per Kepner & Gilbert).
// Each semiring supplies (add, zero) forming a commutative monoid and a
// multiply; kernels pick the semiring that makes their recurrence a SpMV:
//   PlusTimes  — classic numeric (PageRank, counting walks)
//   MinPlus    — tropical (shortest paths / Bellman-Ford as iterated SpMV)
//   OrAnd      — boolean (reachability / BFS frontiers)
//   PlusSecond — accumulate the right operand (triangle counting masks)
#pragma once

#include <algorithm>
#include <limits>

namespace ga::spla {

struct PlusTimes {
  using value_type = double;
  static constexpr double zero() { return 0.0; }
  static constexpr double add(double a, double b) { return a + b; }
  static constexpr double mul(double a, double b) { return a * b; }
};

struct MinPlus {
  using value_type = double;
  static constexpr double zero() { return std::numeric_limits<double>::infinity(); }
  static constexpr double add(double a, double b) { return a < b ? a : b; }
  static constexpr double mul(double a, double b) { return a + b; }
};

struct OrAnd {
  using value_type = double;  // 0/1 encoded
  static constexpr double zero() { return 0.0; }
  static constexpr double add(double a, double b) { return (a != 0.0 || b != 0.0) ? 1.0 : 0.0; }
  static constexpr double mul(double a, double b) { return (a != 0.0 && b != 0.0) ? 1.0 : 0.0; }
};

struct PlusSecond {
  using value_type = double;
  static constexpr double zero() { return 0.0; }
  static constexpr double add(double a, double b) { return a + b; }
  static constexpr double mul(double /*a*/, double b) { return b; }
};

/// min.second: propagate the smallest incoming label (connected
/// components / hook steps in the language of linear algebra).
struct MinSecond {
  using value_type = double;
  static constexpr double zero() { return std::numeric_limits<double>::infinity(); }
  static constexpr double add(double a, double b) { return a < b ? a : b; }
  static constexpr double mul(double /*a*/, double b) { return b; }
};

}  // namespace ga::spla
