#include "spla/csr_matrix.hpp"

#include <algorithm>

namespace ga::spla {

CsrMatrix::CsrMatrix(vid_t rows, vid_t cols, std::vector<eid_t> row_ptr,
                     std::vector<vid_t> col_idx, std::vector<double> vals)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      vals_(std::move(vals)) {
  GA_CHECK(row_ptr_.size() == static_cast<std::size_t>(rows_) + 1,
           "CsrMatrix: row_ptr size mismatch");
  GA_CHECK(row_ptr_.back() == col_idx_.size(), "CsrMatrix: nnz mismatch");
  GA_CHECK(col_idx_.size() == vals_.size(), "CsrMatrix: vals mismatch");
}

CsrMatrix CsrMatrix::from_triples(vid_t rows, vid_t cols,
                                  std::vector<Triple> triples) {
  for (const Triple& t : triples) {
    GA_CHECK(t.row < rows && t.col < cols, "triple out of range");
  }
  std::sort(triples.begin(), triples.end(), [](const Triple& a, const Triple& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  // Sum duplicates in place.
  std::vector<Triple> merged;
  merged.reserve(triples.size());
  for (const Triple& t : triples) {
    if (!merged.empty() && merged.back().row == t.row &&
        merged.back().col == t.col) {
      merged.back().val += t.val;
    } else {
      merged.push_back(t);
    }
  }
  std::vector<eid_t> row_ptr(static_cast<std::size_t>(rows) + 1, 0);
  for (const Triple& t : merged) ++row_ptr[t.row + 1];
  for (vid_t r = 0; r < rows; ++r) row_ptr[r + 1] += row_ptr[r];
  std::vector<vid_t> col_idx(merged.size());
  std::vector<double> vals(merged.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    col_idx[i] = merged[i].col;
    vals[i] = merged[i].val;
  }
  return CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                   std::move(vals));
}

CsrMatrix CsrMatrix::adjacency(const graph::CSRGraph& g) {
  // A(i,j)=1 iff edge j->i: row i of A lists the in-neighbors of i, so we
  // build from arcs transposed. For undirected graphs the matrix is
  // symmetric and this equals the out-adjacency.
  std::vector<Triple> triples;
  triples.reserve(g.num_arcs());
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (vid_t v : g.out_neighbors(u)) {
      triples.push_back({v, u, 1.0});
    }
  }
  return from_triples(g.num_vertices(), g.num_vertices(), std::move(triples));
}

CsrMatrix CsrMatrix::identity(vid_t n) {
  std::vector<eid_t> row_ptr(static_cast<std::size_t>(n) + 1);
  std::vector<vid_t> col_idx(n);
  std::vector<double> vals(n, 1.0);
  for (vid_t i = 0; i < n; ++i) {
    row_ptr[i] = i;
    col_idx[i] = i;
  }
  row_ptr[n] = n;
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                   std::move(vals));
}

double CsrMatrix::at(vid_t r, vid_t c) const {
  GA_CHECK(r < rows_ && c < cols_, "CsrMatrix::at out of range");
  const auto cols = row_cols(r);
  const auto it = std::lower_bound(cols.begin(), cols.end(), c);
  if (it == cols.end() || *it != c) return 0.0;
  return vals_[row_ptr_[r] + static_cast<eid_t>(it - cols.begin())];
}

CsrMatrix CsrMatrix::transposed() const {
  std::vector<eid_t> row_ptr(static_cast<std::size_t>(cols_) + 1, 0);
  for (vid_t c : col_idx_) ++row_ptr[c + 1];
  for (vid_t c = 0; c < cols_; ++c) row_ptr[c + 1] += row_ptr[c];
  std::vector<vid_t> col_idx(col_idx_.size());
  std::vector<double> vals(vals_.size());
  std::vector<eid_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (vid_t r = 0; r < rows_; ++r) {
    for (eid_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      const eid_t slot = cursor[col_idx_[i]]++;
      col_idx[slot] = r;
      vals[slot] = vals_[i];
    }
  }
  // Row-major scan of a CSR matrix emits columns in ascending row order,
  // so each transposed row is already sorted.
  return CsrMatrix(cols_, rows_, std::move(row_ptr), std::move(col_idx),
                   std::move(vals));
}

bool CsrMatrix::structurally_equal(const CsrMatrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         row_ptr_ == other.row_ptr_ && col_idx_ == other.col_idx_;
}

}  // namespace ga::spla
