// Sparse vector (sorted index/value pairs) — the frontier representation
// for SpMSpV-style kernels, matching the accelerator's "pairs of sparse
// vectors" datapath in Fig. 4.
#pragma once

#include <cstdint>
#include <vector>

#include "core/common.hpp"

namespace ga::spla {

class SparseVector {
 public:
  SparseVector() = default;
  explicit SparseVector(vid_t dim) : dim_(dim) {}

  /// From parallel index/value arrays (indices must be strictly ascending).
  SparseVector(vid_t dim, std::vector<vid_t> idx, std::vector<double> val);

  static SparseVector from_dense(const std::vector<double>& dense,
                                 double zero = 0.0);

  vid_t dim() const { return dim_; }
  std::size_t nnz() const { return idx_.size(); }
  const std::vector<vid_t>& indices() const { return idx_; }
  const std::vector<double>& values() const { return val_; }

  /// Append an entry with index greater than all current indices.
  void push_back(vid_t i, double v);

  double at(vid_t i) const;  // 0.0 if absent
  std::vector<double> to_dense() const;

 private:
  vid_t dim_ = 0;
  std::vector<vid_t> idx_;
  std::vector<double> val_;
};

/// Merge-style dot product of two sparse vectors under a semiring — the
/// exact operation the Fig. 4 sorter/ALU pipeline streams.
template <typename SR>
typename SR::value_type dot(const SparseVector& a, const SparseVector& b) {
  GA_ASSERT(a.dim() == b.dim());
  auto acc = SR::zero();
  std::size_t i = 0, j = 0;
  const auto& ai = a.indices();
  const auto& bi = b.indices();
  while (i < ai.size() && j < bi.size()) {
    if (ai[i] < bi[j]) {
      ++i;
    } else if (bi[j] < ai[i]) {
      ++j;
    } else {
      acc = SR::add(acc, SR::mul(a.values()[i], b.values()[j]));
      ++i;
      ++j;
    }
  }
  return acc;
}

}  // namespace ga::spla
