// Sparse general matrix-matrix multiply (Gustavson row-wise algorithm)
// over a semiring, with an operation-count report. The op counts feed the
// archsim conventional-vs-accelerator comparison (§V.A): the accelerator's
// advantage comes from streaming exactly these multiply/merge events
// instead of issuing cache-line-granularity random loads.
#pragma once

#include <cstdint>

#include "spla/csr_matrix.hpp"
#include "spla/semiring.hpp"

namespace ga::spla {

struct SpgemmStats {
  std::uint64_t multiplies = 0;   // scalar semiring multiplies performed
  std::uint64_t output_nnz = 0;   // nonzeros in C
  std::uint64_t rows_touched = 0; // rows of B gathered
};

/// C = A ⊕.⊗ B. `stats` (optional) receives the work accounting.
template <typename SR>
CsrMatrix spgemm(const CsrMatrix& A, const CsrMatrix& B,
                 SpgemmStats* stats = nullptr);

/// Convenience: numeric (plus-times) product.
CsrMatrix multiply(const CsrMatrix& A, const CsrMatrix& B,
                   SpgemmStats* stats = nullptr);

/// Flop count of A*B without forming C (for sizing simulations):
/// sum over a(i,k) of nnz(B row k).
std::uint64_t spgemm_flops(const CsrMatrix& A, const CsrMatrix& B);

}  // namespace ga::spla
