#include "spla/spmv.hpp"

namespace ga::spla {

// Explicit instantiations for the semirings the library ships, keeping the
// template bodies out of every client TU that only needs these.
template std::vector<double> spmv<PlusTimes>(const CsrMatrix&,
                                             const std::vector<double>&);
template std::vector<double> spmv<MinPlus>(const CsrMatrix&,
                                           const std::vector<double>&);
template std::vector<double> spmv<OrAnd>(const CsrMatrix&,
                                         const std::vector<double>&);
template SparseVector spmspv<PlusTimes>(const CsrMatrix&, const SparseVector&,
                                        const std::vector<double>*);
template SparseVector spmspv<OrAnd>(const CsrMatrix&, const SparseVector&,
                                    const std::vector<double>*);
template SparseVector spmspv<MinPlus>(const CsrMatrix&, const SparseVector&,
                                      const std::vector<double>*);

}  // namespace ga::spla
