#include "kernels/subgraph_iso.hpp"

#include <algorithm>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace ga::kernels {

namespace {

struct Matcher {
  const CSRGraph& data;
  const CSRGraph& pattern;
  const std::function<void(const Embedding&)>* emit;
  const SubgraphIsoOptions& opts;
  std::vector<vid_t> order;       // pattern vertices in match order
  std::vector<vid_t> mapping;     // pattern -> data (kInvalidVid = unmapped)
  std::vector<bool> used;         // data vertex already mapped
  std::uint64_t found = 0;

  bool feasible(vid_t pv, vid_t dv) const {
    if (data.out_degree(dv) < pattern.out_degree(pv)) return false;
    // Every already-mapped pattern neighbor must be a data neighbor; for
    // induced matching, non-neighbors must be non-neighbors.
    for (vid_t q = 0; q < pattern.num_vertices(); ++q) {
      const vid_t dq = mapping[q];
      if (dq == kInvalidVid || q == pv) continue;
      const bool p_adj = pattern.has_edge(pv, q);
      const bool d_adj = data.has_edge(dv, dq);
      if (p_adj && !d_adj) return false;
      if (opts.induced && !p_adj && d_adj) return false;
    }
    return true;
  }

  bool backtrack(std::size_t depth) {
    if (depth == order.size()) {
      ++found;
      if (emit != nullptr && *emit) (*emit)(mapping);
      return opts.limit != 0 && found >= opts.limit;  // true = stop
    }
    const vid_t pv = order[depth];
    // Candidates: data-neighbors of an already-mapped pattern-neighbor
    // (order guarantees one exists past depth 0), else all vertices.
    vid_t anchor = kInvalidVid;
    for (vid_t q : pattern.out_neighbors(pv)) {
      if (mapping[q] != kInvalidVid) {
        anchor = mapping[q];
        break;
      }
    }
    if (anchor != kInvalidVid) {
      for (vid_t dv : data.out_neighbors(anchor)) {
        if (used[dv] || !feasible(pv, dv)) continue;
        mapping[pv] = dv;
        used[dv] = true;
        const bool stop = backtrack(depth + 1);
        used[dv] = false;
        mapping[pv] = kInvalidVid;
        if (stop) return true;
      }
    } else {
      for (vid_t dv = 0; dv < data.num_vertices(); ++dv) {
        if (used[dv] || !feasible(pv, dv)) continue;
        mapping[pv] = dv;
        used[dv] = true;
        const bool stop = backtrack(depth + 1);
        used[dv] = false;
        mapping[pv] = kInvalidVid;
        if (stop) return true;
      }
    }
    return false;
  }
};

/// Connectivity-first ordering: start at the max-degree pattern vertex,
/// then repeatedly add the unvisited vertex with most visited neighbors
/// (ties: higher degree).
std::vector<vid_t> match_order(const CSRGraph& pattern) {
  const vid_t k = pattern.num_vertices();
  std::vector<vid_t> order;
  std::vector<bool> picked(k, false);
  vid_t first = 0;
  for (vid_t v = 1; v < k; ++v) {
    if (pattern.out_degree(v) > pattern.out_degree(first)) first = v;
  }
  order.push_back(first);
  picked[first] = true;
  while (order.size() < k) {
    vid_t best = kInvalidVid;
    std::size_t best_conn = 0;
    for (vid_t v = 0; v < k; ++v) {
      if (picked[v]) continue;
      std::size_t conn = 0;
      for (vid_t u : pattern.out_neighbors(v)) {
        if (picked[u]) ++conn;
      }
      if (best == kInvalidVid || conn > best_conn ||
          (conn == best_conn &&
           pattern.out_degree(v) > pattern.out_degree(best))) {
        best = v;
        best_conn = conn;
      }
    }
    order.push_back(best);
    picked[best] = true;
  }
  return order;
}

}  // namespace

std::uint64_t subgraph_isomorphisms(
    const CSRGraph& data, const CSRGraph& pattern,
    const std::function<void(const Embedding&)>& emit,
    const SubgraphIsoOptions& opts) {
  GA_CHECK(pattern.num_vertices() > 0, "empty pattern");
  GA_CHECK(pattern.num_vertices() <= 16, "pattern too large for VF2-lite");
  Matcher m{data, pattern, &emit, opts, match_order(pattern),
            std::vector<vid_t>(pattern.num_vertices(), kInvalidVid),
            std::vector<bool>(data.num_vertices(), false), 0};
  m.backtrack(0);
  return m.found;
}

std::uint64_t count_cycles(const CSRGraph& data, vid_t k) {
  GA_CHECK(k >= 3, "cycles need k >= 3");
  std::vector<graph::Edge> edges;
  for (vid_t i = 0; i < k; ++i) {
    edges.push_back(graph::Edge{i, (i + 1) % k});
  }
  const CSRGraph cycle = graph::build_undirected(std::move(edges), k);
  // |Aut(C_k)| = 2k (dihedral group): each cycle is found 2k times.
  return subgraph_isomorphisms(data, cycle) / (2ULL * k);
}

SubgraphIsoResult run(const CSRGraph& g, const SubgraphIsoRunOptions& opts) {
  SubgraphIsoOptions iso;
  iso.limit = opts.limit;
  iso.induced = opts.induced;
  if (opts.pattern != nullptr) {
    return {subgraph_isomorphisms(g, *opts.pattern, nullptr, iso)};
  }
  GA_CHECK(opts.cycle_length >= 3, "cycles need k >= 3");
  std::vector<graph::Edge> edges;
  for (vid_t i = 0; i < opts.cycle_length; ++i) {
    edges.push_back(graph::Edge{i, (i + 1) % opts.cycle_length});
  }
  const CSRGraph cycle =
      graph::build_undirected(std::move(edges), opts.cycle_length);
  return {subgraph_isomorphisms(g, cycle, nullptr, iso)};
}

}  // namespace ga::kernels
