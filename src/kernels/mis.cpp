#include "kernels/mis.hpp"

#include <algorithm>

#include "core/hash.hpp"
#include "core/prng.hpp"

namespace ga::kernels {

std::vector<vid_t> mis_luby(const CSRGraph& g, std::uint64_t seed) {
  GA_CHECK(!g.directed(), "MIS expects undirected graphs");
  const vid_t n = g.num_vertices();
  enum class State : std::uint8_t { kUndecided, kIn, kOut };
  std::vector<State> state(n, State::kUndecided);
  std::vector<vid_t> result;

  std::uint64_t round = 0;
  vid_t undecided = n;
  while (undecided > 0) {
    // Stable per-round priority: hash(seed, round, v). A vertex joins if it
    // beats every undecided neighbor (ties by id).
    const auto priority = [&](vid_t v) {
      return core::hash_combine(core::hash_combine(seed, round), v);
    };
    std::vector<vid_t> joined;
    for (vid_t v = 0; v < n; ++v) {
      if (state[v] != State::kUndecided) continue;
      const std::uint64_t pv = priority(v);
      bool is_max = true;
      for (vid_t u : g.out_neighbors(v)) {
        if (state[u] != State::kUndecided) continue;
        const std::uint64_t pu = priority(u);
        if (pu > pv || (pu == pv && u > v)) {
          is_max = false;
          break;
        }
      }
      if (is_max) joined.push_back(v);
    }
    for (vid_t v : joined) {
      if (state[v] != State::kUndecided) continue;  // knocked out this round
      state[v] = State::kIn;
      result.push_back(v);
      --undecided;
      for (vid_t u : g.out_neighbors(v)) {
        if (state[u] == State::kUndecided) {
          state[u] = State::kOut;
          --undecided;
        }
      }
    }
    ++round;
    GA_ASSERT(round < 10'000);  // Luby terminates in O(log n) w.h.p.
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<vid_t> mis_greedy(const CSRGraph& g) {
  GA_CHECK(!g.directed(), "MIS expects undirected graphs");
  const vid_t n = g.num_vertices();
  std::vector<bool> blocked(n, false);
  std::vector<vid_t> result;
  for (vid_t v = 0; v < n; ++v) {
    if (blocked[v]) continue;
    result.push_back(v);
    for (vid_t u : g.out_neighbors(v)) blocked[u] = true;
  }
  return result;
}

bool is_maximal_independent_set(const CSRGraph& g,
                                const std::vector<vid_t>& set) {
  const vid_t n = g.num_vertices();
  std::vector<bool> in(n, false);
  for (vid_t v : set) {
    if (v >= n || in[v]) return false;
    in[v] = true;
  }
  // Independence: no edge inside the set.
  for (vid_t v : set) {
    for (vid_t u : g.out_neighbors(v)) {
      if (in[u]) return false;
    }
  }
  // Maximality: every outside vertex has a neighbor inside.
  for (vid_t v = 0; v < n; ++v) {
    if (in[v]) continue;
    bool covered = false;
    for (vid_t u : g.out_neighbors(v)) {
      if (in[u]) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

}  // namespace ga::kernels
