#include "kernels/weighted_jaccard.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace ga::kernels {

namespace {

double weight_at(const CSRGraph& g, vid_t u, std::size_t i) {
  return g.weighted() ? g.out_weights(u)[i] : 1.0;
}

/// min-sum and max-sum over the merged weighted neighborhoods.
double ruzicka(const CSRGraph& g, vid_t u, vid_t v) {
  const auto nu = g.out_neighbors(u);
  const auto nv = g.out_neighbors(v);
  double min_sum = 0.0, max_sum = 0.0;
  std::size_t i = 0, j = 0;
  while (i < nu.size() || j < nv.size()) {
    if (j >= nv.size() || (i < nu.size() && nu[i] < nv[j])) {
      max_sum += weight_at(g, u, i);
      ++i;
    } else if (i >= nu.size() || nv[j] < nu[i]) {
      max_sum += weight_at(g, v, j);
      ++j;
    } else {
      const double a = weight_at(g, u, i);
      const double b = weight_at(g, v, j);
      min_sum += std::min(a, b);
      max_sum += std::max(a, b);
      ++i;
      ++j;
    }
  }
  return max_sum == 0.0 ? 0.0 : min_sum / max_sum;
}

}  // namespace

double weighted_jaccard_coefficient(const CSRGraph& g, vid_t u, vid_t v) {
  GA_CHECK(u < g.num_vertices() && v < g.num_vertices(),
           "weighted_jaccard: vertex out of range");
  return ruzicka(g, u, v);
}

std::vector<JaccardPair> weighted_jaccard_query(const CSRGraph& g, vid_t u,
                                                double threshold) {
  GA_CHECK(u < g.num_vertices(), "weighted_jaccard_query: out of range");
  // Candidates: 2-hop neighbors (anything else has coefficient 0).
  std::unordered_set<vid_t> candidates;
  for (vid_t w : g.out_neighbors(u)) {
    for (vid_t v : g.out_neighbors(w)) {
      if (v != u) candidates.insert(v);
    }
  }
  std::vector<JaccardPair> out;
  for (vid_t v : candidates) {
    const double j = ruzicka(g, u, v);
    if (j > 0.0 && j >= threshold) out.push_back({u, v, j});
  }
  std::sort(out.begin(), out.end(), [](const JaccardPair& a, const JaccardPair& b) {
    return a.coefficient != b.coefficient ? a.coefficient > b.coefficient
                                          : a.v < b.v;
  });
  return out;
}

}  // namespace ga::kernels
