#include "kernels/bfs.hpp"

#include <algorithm>
#include <atomic>

#include "engine/traversal.hpp"

namespace ga::kernels {

namespace {

BfsResult make_result(vid_t n) {
  BfsResult r;
  r.dist.assign(n, kInfDist);
  r.parent.assign(n, kInvalidVid);
  return r;
}

/// Engine functor for one BFS level: claim unvisited targets at `level`.
/// Push claims with a CAS on parent (the tie-breaker among concurrent
/// discoverers); pull runs single-writer-per-target so plain stores are
/// enough, and the engine breaks off v's scan once cond flips false.
struct BfsStep {
  std::vector<std::uint32_t>& dist;
  std::vector<vid_t>& parent;
  std::uint32_t level;

  bool cond(vid_t v) const {
    return std::atomic_ref<std::uint32_t>(dist[v])
               .load(std::memory_order_relaxed) == kInfDist;
  }
  /// Push scans issue this a few arcs ahead of the cursor: the dist probe
  /// in cond() is the random access that otherwise stalls the stream.
  void prefetch_target(vid_t v) const { __builtin_prefetch(&dist[v], 0, 3); }
  bool update(vid_t u, vid_t v, float) {
    dist[v] = level;
    parent[v] = u;
    return true;
  }
  bool update_atomic(vid_t u, vid_t v, float) {
    vid_t expected = kInvalidVid;
    if (std::atomic_ref<vid_t>(parent[v]).compare_exchange_strong(
            expected, u, std::memory_order_relaxed)) {
      std::atomic_ref<std::uint32_t>(dist[v]).store(level,
                                                    std::memory_order_relaxed);
      return true;
    }
    return false;
  }
};

/// Distance-only claim (khop has no parent tree).
struct KhopStep {
  std::vector<std::uint32_t>& dist;
  std::uint32_t level;

  bool cond(vid_t v) const {
    return std::atomic_ref<std::uint32_t>(dist[v])
               .load(std::memory_order_relaxed) == kInfDist;
  }
  bool update(vid_t, vid_t v, float) {
    dist[v] = level;
    return true;
  }
  bool update_atomic(vid_t, vid_t v, float) {
    std::uint32_t expected = kInfDist;
    return std::atomic_ref<std::uint32_t>(dist[v]).compare_exchange_strong(
        expected, level, std::memory_order_relaxed);
  }
};

/// Shared across the flat CSR and the delta-backed GraphView: edge_map
/// overload resolution picks the matching engine.
template <typename G>
BfsResult bfs_impl(const G& g, vid_t source,
                   engine::TraversalOptions::Dir dir, bool parallel) {
  const vid_t n = g.num_vertices();
  BfsResult r = make_result(n);
  r.dist[source] = 0;
  r.parent[source] = source;
  r.reached = 1;

  engine::TraversalOptions opts;
  opts.direction = dir;
  opts.parallel = parallel;
  // Each vertex is claimed exactly once, so the direction heuristic can
  // weigh the scout count against the arcs not yet explored (GAP rule).
  opts.monotone = true;

  engine::Telemetry telem;
  engine::Frontier frontier(n), next(n);
  frontier.add(source);
  frontier.set_out_edges(g.out_degree(source));
  std::uint32_t level = 1;
  while (!frontier.empty()) {
    BfsStep step{r.dist, r.parent, level};
    engine::edge_map_into(g, frontier, next, step, opts, &telem);
    r.reached += next.size();
    frontier.swap(next);
    ++level;
  }
  r.edges_traversed = telem.total_edges();
  r.steps = telem.steps();
  return r;
}

template <typename G>
std::vector<vid_t> khop_impl(const G& g, const std::vector<vid_t>& seeds,
                             std::uint32_t depth) {
  const vid_t n = g.num_vertices();
  std::vector<std::uint32_t> dist(n, kInfDist);
  std::vector<vid_t> out;
  engine::Frontier frontier(n);
  for (vid_t s : seeds) {
    GA_CHECK(s < n, "khop: seed out of range");
    if (dist[s] == kInfDist) {
      dist[s] = 0;
      frontier.add(s);
      out.push_back(s);
    }
  }
  engine::TraversalOptions opts;
  opts.direction = engine::TraversalOptions::Dir::kPush;
  opts.parallel = false;
  for (std::uint32_t level = 1; level <= depth && !frontier.empty(); ++level) {
    KhopStep step{dist, level};
    engine::Frontier next = engine::edge_map(g, frontier, step, opts);
    next.for_each([&](vid_t v) { out.push_back(v); });
    frontier = std::move(next);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

BfsResult bfs(const CSRGraph& g, vid_t source, BfsMode mode) {
  GA_CHECK(source < g.num_vertices(), "bfs: source out of range");
  using Dir = engine::TraversalOptions::Dir;
  const Dir dir = mode == BfsMode::kTopDown    ? Dir::kPush
                  : mode == BfsMode::kBottomUp ? Dir::kPull
                                               : Dir::kAuto;
  return bfs_impl(g, source, dir, /*parallel=*/false);
}

BfsResult bfs(const store::GraphView& g, vid_t source, BfsMode mode) {
  GA_CHECK(source < g.num_vertices(), "bfs: source out of range");
  using Dir = engine::TraversalOptions::Dir;
  const Dir dir = mode == BfsMode::kTopDown    ? Dir::kPush
                  : mode == BfsMode::kBottomUp ? Dir::kPull
                                               : Dir::kAuto;
  return bfs_impl(g, source, dir, /*parallel=*/false);
}

BfsResult bfs_parallel(const CSRGraph& g, vid_t source) {
  GA_CHECK(source < g.num_vertices(), "bfs_parallel: source out of range");
  return bfs_impl(g, source, engine::TraversalOptions::Dir::kPush,
                  /*parallel=*/true);
}

BfsResult bfs_parallel(const store::GraphView& g, vid_t source) {
  GA_CHECK(source < g.num_vertices(), "bfs_parallel: source out of range");
  return bfs_impl(g, source, engine::TraversalOptions::Dir::kPush,
                  /*parallel=*/true);
}

std::uint32_t approx_diameter(const CSRGraph& g, vid_t start) {
  GA_CHECK(g.num_vertices() > 0, "approx_diameter: empty graph");
  GA_CHECK(start < g.num_vertices(), "approx_diameter: start out of range");
  auto far = [&](vid_t s) -> std::pair<vid_t, std::uint32_t> {
    const BfsResult r = bfs(g, s, BfsMode::kTopDown);
    vid_t best = s;
    std::uint32_t bestd = 0;
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      if (r.dist[v] != kInfDist && r.dist[v] > bestd) {
        bestd = r.dist[v];
        best = v;
      }
    }
    return {best, bestd};
  };
  const auto [far1, d1] = far(start);
  const auto [far2, d2] = far(far1);
  (void)far2;
  return std::max(d1, d2);
}

std::vector<vid_t> khop_neighborhood(const CSRGraph& g,
                                     const std::vector<vid_t>& seeds,
                                     std::uint32_t depth) {
  return khop_impl(g, seeds, depth);
}

std::vector<vid_t> khop_neighborhood(const store::GraphView& g,
                                     const std::vector<vid_t>& seeds,
                                     std::uint32_t depth) {
  return khop_impl(g, seeds, depth);
}

bool validate_bfs_tree(const CSRGraph& g, vid_t source, const BfsResult& r) {
  const vid_t n = g.num_vertices();
  if (r.dist.size() != n || r.parent.size() != n) return false;
  if (r.dist[source] != 0 || r.parent[source] != source) return false;
  std::uint64_t reached = 0;
  for (vid_t v = 0; v < n; ++v) {
    const bool has_dist = r.dist[v] != kInfDist;
    const bool has_parent = r.parent[v] != kInvalidVid;
    if (has_dist != has_parent) return false;
    if (!has_dist) continue;
    ++reached;
    if (v != source) {
      const vid_t p = r.parent[v];
      if (p >= n || r.dist[p] == kInfDist) return false;
      if (r.dist[v] != r.dist[p] + 1) return false;
      if (!g.has_edge(p, v)) return false;
    }
    // Every arc v->w drops at most one level: dist[w] <= dist[v] + 1.
    // (On undirected graphs the mirrored arc bounds the other direction;
    // on directed graphs an arc back up to a shallower vertex is legal.)
    for (vid_t w : g.out_neighbors(v)) {
      if (r.dist[w] == kInfDist) {
        // An unreached out-neighbor of a reached vertex is a contradiction.
        return false;
      }
      if (r.dist[w] > r.dist[v] + 1) return false;
    }
  }
  return reached == r.reached;
}

}  // namespace ga::kernels
