#include "kernels/bfs.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "core/bitmap.hpp"
#include "core/thread_pool.hpp"

namespace ga::kernels {

namespace {

BfsResult make_result(vid_t n) {
  BfsResult r;
  r.dist.assign(n, kInfDist);
  r.parent.assign(n, kInvalidVid);
  return r;
}

/// One top-down step: expand `frontier`, writing `next`.
void top_down_step(const CSRGraph& g, const std::vector<vid_t>& frontier,
                   std::vector<vid_t>& next, BfsResult& r,
                   std::uint32_t level) {
  for (vid_t u : frontier) {
    for (vid_t v : g.out_neighbors(u)) {
      ++r.edges_traversed;
      if (r.dist[v] == kInfDist) {
        r.dist[v] = level;
        r.parent[v] = u;
        next.push_back(v);
      }
    }
  }
}

/// One bottom-up step: every unvisited vertex scans its in-neighbors for a
/// frontier member. `in_frontier` is a bitmap of the current frontier.
void bottom_up_step(const CSRGraph& g, core::Bitmap& in_frontier,
                    core::Bitmap& next_frontier, BfsResult& r,
                    std::uint32_t level, std::uint64_t& next_count) {
  next_count = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (r.dist[v] != kInfDist) continue;
    for (vid_t u : g.in_neighbors(v)) {
      ++r.edges_traversed;
      if (in_frontier.get(u)) {
        r.dist[v] = level;
        r.parent[v] = u;
        next_frontier.set(v);
        ++next_count;
        break;
      }
    }
  }
  in_frontier.swap(next_frontier);
  next_frontier.reset();
}

}  // namespace

BfsResult bfs(const CSRGraph& g, vid_t source, BfsMode mode) {
  GA_CHECK(source < g.num_vertices(), "bfs: source out of range");
  const vid_t n = g.num_vertices();
  BfsResult r = make_result(n);
  r.dist[source] = 0;
  r.parent[source] = source;
  r.reached = 1;

  if (mode == BfsMode::kBottomUp || mode == BfsMode::kDirectionOptimizing) {
    // Bottom-up needs in-neighbors on directed graphs.
    const_cast<CSRGraph&>(g).ensure_transpose();
  }

  std::vector<vid_t> frontier{source}, next;
  core::Bitmap fbm(n), nbm(n);
  bool using_bitmap = false;
  std::uint64_t frontier_edges = g.out_degree(source);
  std::uint64_t frontier_count = 1;
  // Beamer heuristics: switch down when the frontier's out-edges exceed
  // (total arcs)/alpha; switch back up when the frontier shrinks below
  // n/beta vertices.
  constexpr std::uint64_t kAlpha = 14, kBeta = 24;

  std::uint32_t level = 1;
  while (frontier_count > 0) {
    const bool want_bottom_up =
        mode == BfsMode::kBottomUp ||
        (mode == BfsMode::kDirectionOptimizing &&
         frontier_edges * kAlpha > g.num_arcs() &&
         frontier_count > n / kBeta);

    if (want_bottom_up) {
      if (!using_bitmap) {
        fbm.reset();
        for (vid_t u : frontier) fbm.set(u);
        using_bitmap = true;
      }
      std::uint64_t next_count = 0;
      bottom_up_step(g, fbm, nbm, r, level, next_count);
      frontier_count = next_count;
      r.reached += next_count;
      frontier_edges = 0;  // unknown in bitmap form; forces re-evaluation
    } else {
      if (using_bitmap) {
        // Rebuild the queue from the bitmap to go back top-down.
        frontier.clear();
        for (vid_t v = 0; v < n; ++v) {
          if (fbm.get(v)) frontier.push_back(v);
        }
        using_bitmap = false;
      }
      next.clear();
      top_down_step(g, frontier, next, r, level);
      frontier.swap(next);
      frontier_count = frontier.size();
      r.reached += frontier_count;
      frontier_edges = 0;
      for (vid_t u : frontier) frontier_edges += g.out_degree(u);
    }
    ++level;
  }
  return r;
}

BfsResult bfs_parallel(const CSRGraph& g, vid_t source) {
  GA_CHECK(source < g.num_vertices(), "bfs_parallel: source out of range");
  const vid_t n = g.num_vertices();
  BfsResult r = make_result(n);
  std::vector<std::atomic<vid_t>> parent(n);
  for (vid_t v = 0; v < n; ++v) {
    parent[v].store(kInvalidVid, std::memory_order_relaxed);
  }
  parent[source].store(source, std::memory_order_relaxed);
  r.dist[source] = 0;

  std::vector<vid_t> frontier{source};
  std::atomic<std::uint64_t> traversed{0};
  std::uint32_t level = 1;
  while (!frontier.empty()) {
    // Per-chunk local buffers spliced under a mutex at chunk end.
    std::mutex splice_mu;
    std::vector<vid_t> next;
    std::function<void(std::uint64_t, std::uint64_t)> body =
        [&](std::uint64_t b, std::uint64_t e) {
          std::vector<vid_t> local;
          std::uint64_t edges = 0;
          for (std::uint64_t i = b; i < e; ++i) {
            const vid_t u = frontier[i];
            for (vid_t v : g.out_neighbors(u)) {
              ++edges;
              vid_t expected = kInvalidVid;
              if (parent[v].compare_exchange_strong(
                      expected, u, std::memory_order_relaxed)) {
                local.push_back(v);
              }
            }
          }
          traversed.fetch_add(edges, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lk(splice_mu);
          next.insert(next.end(), local.begin(), local.end());
        };
    core::ThreadPool::global().parallel_for(0, frontier.size(), 64, body);
    for (vid_t v : next) r.dist[v] = level;
    frontier.swap(next);
    ++level;
  }
  r.edges_traversed = traversed.load();
  r.reached = 0;
  for (vid_t v = 0; v < n; ++v) {
    r.parent[v] = parent[v].load(std::memory_order_relaxed);
    if (r.parent[v] != kInvalidVid) ++r.reached;
  }
  return r;
}

std::uint32_t approx_diameter(const CSRGraph& g, vid_t start) {
  GA_CHECK(g.num_vertices() > 0, "approx_diameter: empty graph");
  GA_CHECK(start < g.num_vertices(), "approx_diameter: start out of range");
  auto far = [&](vid_t s) -> std::pair<vid_t, std::uint32_t> {
    const BfsResult r = bfs(g, s, BfsMode::kTopDown);
    vid_t best = s;
    std::uint32_t bestd = 0;
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      if (r.dist[v] != kInfDist && r.dist[v] > bestd) {
        bestd = r.dist[v];
        best = v;
      }
    }
    return {best, bestd};
  };
  const auto [far1, d1] = far(start);
  const auto [far2, d2] = far(far1);
  (void)far2;
  return std::max(d1, d2);
}

std::vector<vid_t> khop_neighborhood(const CSRGraph& g,
                                     const std::vector<vid_t>& seeds,
                                     std::uint32_t depth) {
  const vid_t n = g.num_vertices();
  std::vector<std::uint32_t> dist(n, kInfDist);
  std::vector<vid_t> frontier, next, out;
  for (vid_t s : seeds) {
    GA_CHECK(s < n, "khop: seed out of range");
    if (dist[s] == kInfDist) {
      dist[s] = 0;
      frontier.push_back(s);
      out.push_back(s);
    }
  }
  for (std::uint32_t level = 1; level <= depth && !frontier.empty(); ++level) {
    next.clear();
    for (vid_t u : frontier) {
      for (vid_t v : g.out_neighbors(u)) {
        if (dist[v] == kInfDist) {
          dist[v] = level;
          next.push_back(v);
          out.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool validate_bfs_tree(const CSRGraph& g, vid_t source, const BfsResult& r) {
  const vid_t n = g.num_vertices();
  if (r.dist.size() != n || r.parent.size() != n) return false;
  if (r.dist[source] != 0 || r.parent[source] != source) return false;
  std::uint64_t reached = 0;
  for (vid_t v = 0; v < n; ++v) {
    const bool has_dist = r.dist[v] != kInfDist;
    const bool has_parent = r.parent[v] != kInvalidVid;
    if (has_dist != has_parent) return false;
    if (!has_dist) continue;
    ++reached;
    if (v != source) {
      const vid_t p = r.parent[v];
      if (p >= n || r.dist[p] == kInfDist) return false;
      if (r.dist[v] != r.dist[p] + 1) return false;
      if (!g.has_edge(p, v)) return false;
    }
    // Every edge spans at most one BFS level.
    for (vid_t w : g.out_neighbors(v)) {
      if (r.dist[w] == kInfDist) {
        // An unreached neighbor of a reached vertex is a contradiction on
        // undirected graphs.
        if (!g.directed()) return false;
      } else if (r.dist[w] + 1 < r.dist[v]) {
        return false;
      }
    }
  }
  return reached == r.reached;
}

}  // namespace ga::kernels
