#include "kernels/incremental.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <utility>

namespace ga::kernels {

const char* incremental_fallback_name(IncrementalFallback f) {
  switch (f) {
    case IncrementalFallback::kNone: return "none";
    case IncrementalFallback::kShapeMismatch: return "shape_mismatch";
    case IncrementalFallback::kChurn: return "churn";
    case IncrementalFallback::kDeletes: return "deletes";
    case IncrementalFallback::kNotConverged: return "not_converged";
    case IncrementalFallback::kFault: return "fault";
  }
  return "unknown";
}

namespace {

void report(IncrementalOutcome* out, const IncrementalOutcome& o) {
  if (out) *out = o;
}

bool churn_exceeded(const store::DeltaSummary& delta, vid_t n,
                    const IncrementalOptions& inc) {
  return static_cast<double>(delta.changed_vertices.size()) >
         inc.max_changed_fraction * static_cast<double>(std::max<vid_t>(n, 1));
}

}  // namespace

PageRankResult update_pagerank(const PageRankResult& prev,
                               const store::DeltaSummary& delta,
                               const store::GraphView& view,
                               const PageRankOptions& opts,
                               const IncrementalOptions& inc,
                               IncrementalOutcome* out) {
  const vid_t n = view.num_vertices();
  IncrementalOutcome o;
  const auto batch = [&](IncrementalFallback why) {
    o.incremental = false;
    o.fallback = why;
    PageRankResult r = pagerank(view.csr(), opts);
    o.iterations = r.iterations;
    report(out, o);
    return r;
  };

  if (n == 0 || prev.rank.size() != n || !prev.converged) {
    return batch(IncrementalFallback::kShapeMismatch);
  }
  if (!delta.structural() && delta.vertex_growth == 0) {
    // Property-only / heartbeat epoch: the stationary distribution is
    // untouched; carry the previous ranks verbatim.
    o.incremental = true;
    report(out, o);
    return prev;
  }
  if (churn_exceeded(delta, n, inc)) return batch(IncrementalFallback::kChurn);

  PageRankOptions warm_opts = opts;
  warm_opts.max_iters = std::min(opts.max_iters, inc.max_warm_iters);
  PageRankResult r;
  try {
    if (inc.fault_hook) inc.fault_hook("pagerank_warm");
    r = pagerank_warm(view.csr(), prev.rank, warm_opts);
  } catch (...) {
    return batch(IncrementalFallback::kFault);
  }
  if (!r.converged) return batch(IncrementalFallback::kNotConverged);
  o.incremental = true;
  o.iterations = r.iterations;
  report(out, o);
  return r;
}

ComponentsResult update_wcc(const ComponentsResult& prev,
                            const store::DeltaSummary& delta,
                            const store::GraphView& view,
                            const IncrementalOptions& inc,
                            IncrementalOutcome* out) {
  const vid_t n = view.num_vertices();
  IncrementalOutcome o;
  const auto batch = [&](IncrementalFallback why) {
    o.incremental = false;
    o.fallback = why;
    ComponentsResult r = wcc_label_propagation(view);
    report(out, o);
    return r;
  };

  // Vertex growth shows up as a label-vector size mismatch; new isolated
  // vertices could in principle be appended as singletons, but growth
  // epochs are rare enough that the batch path keeps the rule simple.
  if (n == 0 || prev.label.size() != n) {
    return batch(IncrementalFallback::kShapeMismatch);
  }
  if (!delta.deleted_arcs.empty()) {
    // Recompute-on-delete: a removed arc can split a component and
    // union-find cannot un-merge.
    return batch(IncrementalFallback::kDeletes);
  }

  ComponentsResult r;
  try {
    if (inc.fault_hook) inc.fault_hook("wcc_unite");
    r.label = prev.label;
    // Merge at the LABEL level: an insert-only delta can only fuse whole
    // components, and it touches O(|delta|) of them — so union those few
    // labels through a small map instead of rebuilding a vertex-level
    // union-find over all n. `root` holds only labels merged into another
    // label (absent == still its own root).
    std::unordered_map<vid_t, vid_t> root;
    auto resolve = [&root](vid_t l) {
      vid_t rep = l;
      for (auto it = root.find(rep); it != root.end(); it = root.find(rep)) {
        rep = it->second;
      }
      while (l != rep) {  // path compression
        auto& slot = root[l];
        const vid_t next = slot;
        slot = rep;
        l = next;
      }
      return rep;
    };
    vid_t merges = 0;
    for (const auto& [u, v] : delta.inserted_arcs) {
      const vid_t a = resolve(r.label[u]);
      const vid_t b = resolve(r.label[v]);
      if (a == b) continue;
      // Labels are canonical min vertex ids; merging into the smaller one
      // keeps them canonical, so no relabeling sweep is needed afterwards.
      root.emplace(std::max(a, b), std::min(a, b));
      ++merges;
    }
    if (!root.empty()) {
      std::vector<std::uint8_t> touched(n, 0);
      for (const auto& [l, p] : root) touched[l] = 1;
      for (vid_t v = 0; v < n; ++v) {
        if (touched[r.label[v]]) r.label[v] = resolve(r.label[v]);
      }
    }
    r.num_components = prev.num_components - merges;
    // Exact largest-component size by counting sort on the (vertex-id)
    // labels: two streaming O(n) passes over flat arrays.
    std::vector<vid_t> count(n, 0);
    for (vid_t v = 0; v < n; ++v) ++count[r.label[v]];
    r.largest_size = *std::max_element(count.begin(), count.end());
  } catch (...) {
    return batch(IncrementalFallback::kFault);
  }
  o.incremental = true;
  report(out, o);
  return r;
}

JaccardResult update_jaccard_query(const JaccardResult& prev, vid_t seed,
                                   double threshold,
                                   std::span<const vid_t> footprint,
                                   const store::DeltaSummary& delta,
                                   const store::GraphView& view,
                                   const IncrementalOptions& inc,
                                   IncrementalOutcome* out) {
  IncrementalOutcome o;
  const auto recompute = [&](IncrementalFallback why) {
    o.incremental = false;
    o.fallback = why;
    JaccardResult r{jaccard_query(view, seed, threshold)};
    report(out, o);
    return r;
  };

  try {
    if (inc.fault_hook) inc.fault_hook("jaccard_probe");
  } catch (...) {
    return recompute(IncrementalFallback::kFault);
  }
  // Vertex growth alone cannot create a 2-hop candidate (new vertices are
  // isolated until an arc — which would be in the changed set — arrives).
  if (!delta.structural()) {
    o.incremental = true;
    report(out, o);
    return prev;
  }
  if (footprint.empty() || delta.intersects(footprint)) {
    // The delta may touch the query's dependency set; the query is local
    // (one 2-hop sweep), so "fallback" here is just that sweep.
    return recompute(IncrementalFallback::kNone);
  }
  o.incremental = true;
  report(out, o);
  return prev;
}

// ---------------------------------------------------------------------------
// Type-erased runners for the registry interface.

namespace {

std::string fmt_double(const char* prefix, double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%.6f", prefix, x);
  return std::string(buf);
}

class IncPageRank final : public IncrementalKernel {
 public:
  explicit IncPageRank(PageRankOptions opts) : pr_opts_(opts) {}

  std::string init(const store::GraphView& view) override {
    res_ = pagerank(view.csr(), pr_opts_);
    return digest();
  }
  IncrementalOutcome update(const store::DeltaSummary& delta,
                            const store::GraphView& view) override {
    IncrementalOutcome o;
    res_ = update_pagerank(res_, delta, view, pr_opts_, opts_, &o);
    return o;
  }
  std::string digest() const override { return digest_of(res_); }
  std::string batch_digest(const store::GraphView& view) const override {
    return digest_of(pagerank(view.csr(), pr_opts_));
  }

 private:
  static std::string digest_of(const PageRankResult& r) {
    const auto top = pagerank_topk(r, 1);
    return "top vertex=" +
           std::to_string(top.empty() ? 0 : top[0].second) + " " +
           fmt_double("rank=", top.empty() ? 0.0 : top[0].first);
  }

  PageRankOptions pr_opts_;
  PageRankResult res_;
};

class IncWcc final : public IncrementalKernel {
 public:
  std::string init(const store::GraphView& view) override {
    res_ = wcc_label_propagation(view);
    return digest();
  }
  IncrementalOutcome update(const store::DeltaSummary& delta,
                            const store::GraphView& view) override {
    IncrementalOutcome o;
    res_ = update_wcc(res_, delta, view, opts_, &o);
    return o;
  }
  std::string digest() const override { return digest_of(res_); }
  std::string batch_digest(const store::GraphView& view) const override {
    return digest_of(wcc_label_propagation(view));
  }

 private:
  static std::string digest_of(const ComponentsResult& r) {
    return "components=" + std::to_string(r.num_components) +
           " largest=" + std::to_string(r.largest_size);
  }

  ComponentsResult res_;
};

class IncJaccard final : public IncrementalKernel {
 public:
  IncJaccard(vid_t seed, double threshold)
      : seed_(seed), threshold_(threshold) {}

  std::string init(const store::GraphView& view) override {
    res_ = JaccardResult{jaccard_query(view, seed_, threshold_)};
    return digest();
  }
  IncrementalOutcome update(const store::DeltaSummary& delta,
                            const store::GraphView& view) override {
    IncrementalOutcome o;
    const auto fp = jaccard_footprint(view, seed_, kFootprintCap);
    res_ = update_jaccard_query(res_, seed_, threshold_, fp, delta, view,
                                opts_, &o);
    return o;
  }
  std::string digest() const override { return digest_of(res_); }
  std::string batch_digest(const store::GraphView& view) const override {
    return digest_of(JaccardResult{jaccard_query(view, seed_, threshold_)});
  }

 private:
  static constexpr std::size_t kFootprintCap = 4096;

  static std::string digest_of(const JaccardResult& r) {
    if (r.pairs.empty()) return "matches=0";
    return "matches=" + std::to_string(r.pairs.size()) + " top=" +
           std::to_string(r.pairs[0].v) + " " +
           fmt_double("J=", r.pairs[0].coefficient);
  }

  vid_t seed_;
  double threshold_;
  JaccardResult res_;
};

}  // namespace

std::unique_ptr<IncrementalKernel> make_incremental_pagerank(
    PageRankOptions opts) {
  return std::make_unique<IncPageRank>(opts);
}
std::unique_ptr<IncrementalKernel> make_incremental_wcc() {
  return std::make_unique<IncWcc>();
}
std::unique_ptr<IncrementalKernel> make_incremental_jaccard(vid_t seed,
                                                            double threshold) {
  return std::make_unique<IncJaccard>(seed, threshold);
}

// ---------------------------------------------------------------------------
// StreamingComponents (DynamicGraph face of the WCC policy).

StreamingComponents::StreamingComponents(const graph::DynamicGraph& g)
    : g_(g), uf_(g.num_vertices()) {
  // Absorb any pre-existing edges.
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    g.for_each_neighbor(u, [&](vid_t v, float, std::int64_t) {
      if (u < v || g.directed()) uf_.unite(u, v);
    });
  }
}

bool StreamingComponents::on_insert(vid_t u, vid_t v) {
  if (dirty_) {
    // A rebuild is pending anyway; the snapshot will include this edge.
    return false;
  }
  return uf_.unite(u, v);
}

void StreamingComponents::on_delete(vid_t /*u*/, vid_t /*v*/) {
  dirty_ = true;
}

void StreamingComponents::on_add_vertices(vid_t /*new_total*/) {
  dirty_ = true;
}

void StreamingComponents::rebuild_if_dirty() {
  if (!dirty_) return;
  uf_.reset(g_.num_vertices());
  for (vid_t u = 0; u < g_.num_vertices(); ++u) {
    g_.for_each_neighbor(u, [&](vid_t v, float, std::int64_t) {
      if (u < v || g_.directed()) uf_.unite(u, v);
    });
  }
  dirty_ = false;
  ++rebuilds_;
}

vid_t StreamingComponents::num_components() {
  rebuild_if_dirty();
  return uf_.num_sets();
}

bool StreamingComponents::connected(vid_t u, vid_t v) {
  rebuild_if_dirty();
  return uf_.connected(u, v);
}

vid_t StreamingComponents::component_size(vid_t v) {
  rebuild_if_dirty();
  return uf_.size_of(v);
}

}  // namespace ga::kernels
