// Maximal Independent Set (Fig. 1 row "MIS"): Luby's randomized parallel
// algorithm plus a greedy sequential reference.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"

namespace ga::kernels {

using graph::CSRGraph;

/// Luby's algorithm: each round, vertices draw priorities; local maxima
/// join the set and knock out their neighbors. Deterministic in seed.
std::vector<vid_t> mis_luby(const CSRGraph& g, std::uint64_t seed = 1);

/// Greedy by ascending vertex id (reference / baseline).
std::vector<vid_t> mis_greedy(const CSRGraph& g);

/// Validation: true iff `set` is independent and maximal in g.
bool is_maximal_independent_set(const CSRGraph& g, const std::vector<vid_t>& set);

enum class MisAlgo { kLuby, kGreedy };

/// Uniform kernel entry point (see kernels/registry.hpp).
struct MisOptions {
  MisAlgo algo = MisAlgo::kLuby;
  std::uint64_t seed = 1;
};

struct MisResult {
  std::vector<vid_t> members;  // sorted independent set
};

inline MisResult run(const CSRGraph& g, const MisOptions& opts) {
  return {opts.algo == MisAlgo::kGreedy ? mis_greedy(g)
                                        : mis_luby(g, opts.seed)};
}

}  // namespace ga::kernels
