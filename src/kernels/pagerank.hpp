// PageRank (Fig. 1 row "PR"), the canonical "compute a vertex property"
// centrality kernel. Pull-style power iteration (deterministic, no atomics)
// with dangling-mass redistribution and L1 convergence test.
#pragma once

#include <vector>

#include "engine/telemetry.hpp"
#include "graph/csr_graph.hpp"
#include "store/graph_view.hpp"

namespace ga::kernels {

using graph::CSRGraph;

struct PageRankOptions {
  double damping = 0.85;
  double tolerance = 1e-8;   // L1 delta between iterations
  unsigned max_iters = 100;
  /// Non-empty = personalized PageRank with restart mass on these seeds
  /// (only honored by the uniform run() entry point below).
  std::vector<vid_t> seeds;
};

struct PageRankResult {
  std::vector<double> rank;  // sums to ~1
  unsigned iterations = 0;
  double final_delta = 0.0;
  bool converged = false;
  /// Per-iteration engine telemetry (one pull super-step each).
  std::vector<engine::StepStats> steps;
};

PageRankResult pagerank(const CSRGraph& g, const PageRankOptions& opts = {});

/// View-native PageRank: flat views delegate to the CSR path above;
/// undirected tier- or delta-backed views run a serial pull mirror over
/// the merged adjacency (in-adjacency aliases out-adjacency), visiting
/// (v ascending, in-neighbor ascending) — the exact floating-point
/// accumulation order of the flat serial pull, so the ranks are bitwise
/// identical without materializing a CSR. Directed non-flat views fold
/// via csr() (the chain keeps no transpose).
PageRankResult pagerank(const store::GraphView& view,
                        const PageRankOptions& opts = {});

/// Warm-started power iteration: seeds the solve from `rank` (a prior
/// epoch's result, renormalized here) instead of uniform 1/n, then refines
/// to opts.tolerance. After a small edge delta the spectrum barely moves,
/// so this typically converges in a handful of iterations — the core of
/// the delta-driven incremental PageRank path (kernels/incremental.hpp).
/// `rank.size()` must equal g.num_vertices().
PageRankResult pagerank_warm(const CSRGraph& g, std::vector<double> rank,
                             const PageRankOptions& opts = {});

/// Top-k vertices by rank (descending) — the "search for largest" pattern.
std::vector<std::pair<double, vid_t>> pagerank_topk(const PageRankResult& r,
                                                    std::size_t k);

/// Personalized PageRank: the restart mass returns to `seeds` (uniformly)
/// instead of to all vertices — the "explore the region around some number
/// of vertices" pattern behind recommendation and link-prediction uses the
/// paper's introduction motivates.
PageRankResult personalized_pagerank(const CSRGraph& g,
                                     const std::vector<vid_t>& seeds,
                                     const PageRankOptions& opts = {});

/// Uniform kernel entry point (see kernels/registry.hpp).
inline PageRankResult run(const CSRGraph& g, const PageRankOptions& opts) {
  return opts.seeds.empty() ? pagerank(g, opts)
                            : personalized_pagerank(g, opts.seeds, opts);
}

/// View-native entry point: budget-bounded on tiered views for the
/// common (non-personalized) case; personalization still folds.
inline PageRankResult run(const store::GraphView& v,
                          const PageRankOptions& opts) {
  return opts.seeds.empty()
             ? pagerank(v, opts)
             : personalized_pagerank(v.csr(), opts.seeds, opts);
}

}  // namespace ga::kernels
