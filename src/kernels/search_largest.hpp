// "Search for Largest" (Fig. 1 row) — scan a vertex property for the top-k
// extreme values, the seed-selection primitive of the canonical flow
// (Fig. 2 "selection criteria"). Also provides predicate scans.
#pragma once

#include <functional>
#include <vector>

#include "graph/csr_graph.hpp"

namespace ga::kernels {

using graph::CSRGraph;

struct ScoredVertex {
  double score = 0.0;
  vid_t v = 0;
};

/// Top-k vertices by `property` (descending score). Parallel scan.
std::vector<ScoredVertex> search_largest(const std::vector<double>& property,
                                         std::size_t k);

/// All vertices satisfying `pred` (sorted ascending).
std::vector<vid_t> search_where(vid_t num_vertices,
                                const std::function<bool(vid_t)>& pred);

/// Top-k by out-degree, the paper's canonical example property.
std::vector<ScoredVertex> largest_degree(const CSRGraph& g, std::size_t k);

/// Uniform kernel entry point (see kernels/registry.hpp): top-k by degree,
/// the paper's canonical "search for largest" property.
struct SearchLargestOptions {
  std::size_t k = 10;
};

struct SearchLargestResult {
  std::vector<ScoredVertex> top;  // descending score
};

inline SearchLargestResult run(const CSRGraph& g,
                               const SearchLargestOptions& opts) {
  return {largest_degree(g, opts.k)};
}

}  // namespace ga::kernels
