#include "kernels/sssp.hpp"

#include <algorithm>
#include <atomic>
#include <queue>

#include "engine/traversal.hpp"

namespace ga::kernels {

namespace {

SsspResult make_result(vid_t n) {
  SsspResult r;
  r.dist.assign(n, kInfWeight);
  r.parent.assign(n, kInvalidVid);
  return r;
}

float weight_of(const CSRGraph& g, vid_t u, std::size_t i) {
  return g.weighted() ? g.out_weights(u)[i] : 1.0f;
}

/// Engine functor: relax arc (u,v) and re-activate v on improvement.
/// Weight-dependent, so callers force push (a directed transpose carries
/// no weights).
struct RelaxStep {
  std::vector<float>& dist;
  std::vector<vid_t>& parent;

  bool cond(vid_t) const { return true; }
  bool update(vid_t u, vid_t v, float w) {
    const float nd = dist[u] + w;
    if (nd < dist[v]) {
      dist[v] = nd;
      parent[v] = u;
      return true;
    }
    return false;
  }
  bool update_atomic(vid_t u, vid_t v, float w) {
    const float nd =
        std::atomic_ref<float>(dist[u]).load(std::memory_order_relaxed) + w;
    std::atomic_ref<float> dv(dist[v]);
    float cur = dv.load(std::memory_order_relaxed);
    while (nd < cur) {
      if (dv.compare_exchange_weak(cur, nd, std::memory_order_relaxed)) {
        std::atomic_ref<vid_t>(parent[v]).store(u, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }
};

}  // namespace

SsspResult dijkstra(const CSRGraph& g, vid_t source) {
  GA_CHECK(source < g.num_vertices(), "dijkstra: source out of range");
  SsspResult r = make_result(g.num_vertices());
  r.dist[source] = 0.0f;
  r.parent[source] = source;
  using Entry = std::pair<float, vid_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  pq.emplace(0.0f, source);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > r.dist[u]) continue;  // stale entry
    const auto nbrs = g.out_neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vid_t v = nbrs[i];
      const float w = weight_of(g, u, i);
      GA_ASSERT(w >= 0.0f);
      ++r.relaxations;
      if (d + w < r.dist[v]) {
        r.dist[v] = d + w;
        r.parent[v] = u;
        pq.emplace(r.dist[v], v);
      }
    }
  }
  return r;
}

SsspResult delta_stepping(const CSRGraph& g, vid_t source, float delta) {
  GA_CHECK(source < g.num_vertices(), "delta_stepping: source out of range");
  if (delta <= 0.0f) {
    // Heuristic: mean edge weight (1.0 for unweighted graphs).
    if (g.weighted() && g.num_arcs() > 0) {
      double total = 0.0;
      for (float w : g.weights()) total += w;
      delta = static_cast<float>(total / static_cast<double>(g.num_arcs()));
      if (delta <= 0.0f) delta = 1.0f;
    } else {
      delta = 1.0f;
    }
  }
  const vid_t n = g.num_vertices();
  SsspResult r = make_result(n);
  r.dist[source] = 0.0f;
  r.parent[source] = source;

  // GAP-reference bucket structure. Two one-time layout passes split the
  // adjacency into flat light (w <= delta) and heavy (w > delta) CSR
  // arrays so the inner phase loop carries no per-arc weight-class branch
  // and streams contiguous memory; the bucket index is a multiply by
  // 1/delta instead of a divide; and the deferred heavy-relaxation list is
  // deduplicated with a per-bucket stamp rather than re-scanned.
  const eid_t* goff = g.offsets().data();
  const vid_t* gtgt = g.targets().data();
  const float* gw = g.weighted() ? g.weights().data() : nullptr;

  std::uint64_t heavy_total = 0;
  if (gw != nullptr) {
    for (eid_t a = 0; a < g.num_arcs(); ++a) heavy_total += gw[a] > delta;
  }

  std::vector<eid_t> loff_v, hoff_v;
  std::vector<vid_t> ltgt_v, htgt_v;
  std::vector<float> lw_v, hw_v;
  // With no heavy arcs (unweighted graphs, or delta >= max weight) the
  // split would just duplicate the whole CSR — alias the originals
  // instead and leave the heavy side empty.
  const eid_t* loff = goff;
  const vid_t* ltgt = gtgt;
  const float* lw = gw;
  const eid_t* hoff = nullptr;
  const vid_t* htgt = nullptr;
  const float* hw = nullptr;
  if (heavy_total > 0) {
    loff_v.assign(n + 1, 0);
    hoff_v.assign(n + 1, 0);
    for (vid_t u = 0; u < n; ++u) {
      for (eid_t a = goff[u]; a < goff[u + 1]; ++a) {
        if (gw[a] <= delta) {
          ++loff_v[u + 1];
        } else {
          ++hoff_v[u + 1];
        }
      }
    }
    for (vid_t u = 0; u < n; ++u) {
      loff_v[u + 1] += loff_v[u];
      hoff_v[u + 1] += hoff_v[u];
    }
    ltgt_v.resize(loff_v[n]);
    lw_v.resize(loff_v[n]);
    htgt_v.resize(hoff_v[n]);
    hw_v.resize(hoff_v[n]);
    std::vector<eid_t> lc(loff_v.begin(), loff_v.end() - 1);
    std::vector<eid_t> hc(hoff_v.begin(), hoff_v.end() - 1);
    for (vid_t u = 0; u < n; ++u) {
      for (eid_t a = goff[u]; a < goff[u + 1]; ++a) {
        if (gw[a] <= delta) {
          ltgt_v[lc[u]] = gtgt[a];
          lw_v[lc[u]++] = gw[a];
        } else {
          htgt_v[hc[u]] = gtgt[a];
          hw_v[hc[u]++] = gw[a];
        }
      }
    }
    loff = loff_v.data();
    ltgt = ltgt_v.data();
    lw = lw_v.data();
    hoff = hoff_v.data();
    htgt = htgt_v.data();
    hw = hw_v.data();
  }

  const float inv_delta = 1.0f / delta;
  const auto bucket_of = [&](float d) {
    return static_cast<std::size_t>(d * inv_delta);
  };
  std::vector<std::vector<vid_t>> buckets(1);
  buckets[0].push_back(source);
  const auto push = [&](vid_t v, float d) {
    const std::size_t b = bucket_of(d);
    if (b >= buckets.size()) buckets.resize(b + 1);
    buckets[b].push_back(v);
  };

  constexpr std::size_t kNoBucket = ~std::size_t{0};
  std::vector<std::size_t> deferred_stamp(n, kNoBucket);
  std::vector<vid_t> current, deferred;
  for (std::size_t bi = 0; bi < buckets.size(); ++bi) {
    // Phase loop: repeatedly settle light edges inside this bucket.
    deferred.clear();
    while (!buckets[bi].empty()) {
      current.swap(buckets[bi]);
      buckets[bi].clear();
      for (vid_t u : current) {
        if (bucket_of(r.dist[u]) != bi) continue;  // moved on
        if (deferred_stamp[u] != bi) {
          deferred_stamp[u] = bi;
          deferred.push_back(u);
        }
        const float du = r.dist[u];
        const eid_t ab = loff[u], ae = loff[u + 1];
        r.relaxations += ae - ab;
        for (eid_t a = ab; a < ae; ++a) {
          const vid_t v = ltgt[a];
          const float nd = du + (lw != nullptr ? lw[a] : 1.0f);
          if (nd < r.dist[v]) {
            r.dist[v] = nd;
            r.parent[v] = u;
            push(v, nd);
          }
        }
      }
    }
    // Heavy-edge relaxation once the bucket is settled.
    if (hoff == nullptr) continue;
    for (vid_t u : deferred) {
      const float du = r.dist[u];
      const eid_t ab = hoff[u], ae = hoff[u + 1];
      r.relaxations += ae - ab;
      for (eid_t a = ab; a < ae; ++a) {
        const vid_t v = htgt[a];
        const float nd = du + hw[a];
        if (nd < r.dist[v]) {
          r.dist[v] = nd;
          r.parent[v] = u;
          push(v, nd);
        }
      }
    }
  }
  return r;
}

template <typename G>
SsspResult bellman_ford_impl(const G& g, vid_t source) {
  GA_CHECK(source < g.num_vertices(), "bellman_ford: source out of range");
  const vid_t n = g.num_vertices();
  SsspResult r = make_result(n);
  r.dist[source] = 0.0f;
  r.parent[source] = source;

  // Frontier Bellman-Ford (SPFA): only vertices whose distance improved
  // last round relax their out-arcs. Level-synchronous, so it converges in
  // at most n-1 super-steps on nonnegative weights, same as the dense form.
  engine::TraversalOptions opts;
  opts.direction = engine::TraversalOptions::Dir::kPush;
  opts.parallel = false;
  engine::Telemetry telem;
  engine::Frontier frontier(n);
  frontier.add(source);
  for (vid_t round = 0; round < n && !frontier.empty(); ++round) {
    RelaxStep step{r.dist, r.parent};
    engine::Frontier next = engine::edge_map(g, frontier, step, opts, &telem);
    frontier = std::move(next);
  }
  r.relaxations = telem.total_edges();
  r.steps = telem.steps();
  return r;
}

SsspResult bellman_ford(const CSRGraph& g, vid_t source) {
  return bellman_ford_impl(g, source);
}

SsspResult bellman_ford(const store::GraphView& g, vid_t source) {
  return bellman_ford_impl(g, source);
}

}  // namespace ga::kernels
