// Weighted Jaccard (Ruzicka) similarity — the weighted extension the
// paper's Jaccard benchmark work [21] points toward, and what NORA
// actually needs (edge weight = number of shared sightings):
//   J_w(u,v) = sum_w min(A(u,w), A(v,w)) / sum_w max(A(u,w), A(v,w)).
// Reduces to plain Jaccard on 0/1 weights.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "kernels/jaccard.hpp"

namespace ga::kernels {

/// Ruzicka coefficient for a pair over weighted adjacency (unweighted
/// graphs use weight 1 per arc).
double weighted_jaccard_coefficient(const CSRGraph& g, vid_t u, vid_t v);

/// Query form: all vertices with weighted coefficient >= threshold (> 0),
/// sorted descending.
std::vector<JaccardPair> weighted_jaccard_query(const CSRGraph& g, vid_t u,
                                                double threshold = 0.0);

/// Uniform kernel entry point (see kernels/registry.hpp).
struct WeightedJaccardOptions {
  vid_t query = 0;
  double threshold = 0.0;
};

struct WeightedJaccardResult {
  std::vector<JaccardPair> pairs;  // descending coefficient
};

inline WeightedJaccardResult run(const CSRGraph& g,
                                 const WeightedJaccardOptions& opts) {
  return {weighted_jaccard_query(g, opts.query, opts.threshold)};
}

}  // namespace ga::kernels
