#include "kernels/apsp.hpp"

#include <algorithm>

#include "core/thread_pool.hpp"
#include "kernels/sssp.hpp"

namespace ga::kernels {

ApspResult apsp_dijkstra(const CSRGraph& g) {
  const vid_t n = g.num_vertices();
  ApspResult r;
  r.n = n;
  r.dist.assign(static_cast<std::size_t>(n) * n, kInfWeight);
  // Sources are independent: parallelize across them.
  core::parallel_for_each(0, n, 1, [&](std::uint64_t s) {
    const SsspResult sr = dijkstra(g, static_cast<vid_t>(s));
    std::copy(sr.dist.begin(), sr.dist.end(),
              r.dist.begin() + static_cast<std::ptrdiff_t>(s * n));
  });
  return r;
}

ApspResult apsp_floyd_warshall(const CSRGraph& g) {
  const vid_t n = g.num_vertices();
  GA_CHECK(n <= 4096, "floyd_warshall: n too large for dense APSP");
  ApspResult r;
  r.n = n;
  r.dist.assign(static_cast<std::size_t>(n) * n, kInfWeight);
  for (vid_t u = 0; u < n; ++u) {
    r.dist[static_cast<std::size_t>(u) * n + u] = 0.0f;
    const auto nbrs = g.out_neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const float w = g.weighted() ? g.out_weights(u)[i] : 1.0f;
      auto& cell = r.dist[static_cast<std::size_t>(u) * n + nbrs[i]];
      cell = std::min(cell, w);
    }
  }
  for (vid_t k = 0; k < n; ++k) {
    const float* dk = &r.dist[static_cast<std::size_t>(k) * n];
    for (vid_t i = 0; i < n; ++i) {
      float* di = &r.dist[static_cast<std::size_t>(i) * n];
      const float dik = di[k];
      if (dik == kInfWeight) continue;
      for (vid_t j = 0; j < n; ++j) {
        const float cand = dik + dk[j];
        if (cand < di[j]) di[j] = cand;
      }
    }
  }
  return r;
}

std::vector<float> eccentricities(const ApspResult& r) {
  std::vector<float> ecc(r.n, 0.0f);
  for (vid_t u = 0; u < r.n; ++u) {
    float m = 0.0f;
    for (vid_t v = 0; v < r.n; ++v) {
      const float d = r.at(u, v);
      if (d != kInfWeight) m = std::max(m, d);
    }
    ecc[u] = m;
  }
  return ecc;
}

float exact_diameter(const ApspResult& r) {
  float m = 0.0f;
  for (float e : eccentricities(r)) m = std::max(m, e);
  return m;
}

}  // namespace ga::kernels
