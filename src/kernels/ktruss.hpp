// k-truss decomposition — the Graph Challenge companion of triangle
// counting: the k-truss is the maximal subgraph where every edge is
// supported by at least k-2 triangles. Truss numbers generalize the
// paper's triangle kernels into a density hierarchy used for community
// cores and anomaly triage.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"

namespace ga::kernels {

using graph::CSRGraph;

/// Truss number per undirected edge (u<v), as a map aligned with the
/// edge enumeration order of jaccard_all_edges / edge iteration (u<v,
/// ascending). An edge in the k-truss but not the (k+1)-truss has truss
/// number k; edges in no triangle have truss number 2.
struct TrussResult {
  std::vector<std::pair<vid_t, vid_t>> edges;  // u<v, sorted
  std::vector<std::uint32_t> truss;            // parallel to edges
  std::uint32_t max_truss = 2;
};

TrussResult truss_decomposition(const CSRGraph& g);

/// Vertices of the k-truss subgraph (sorted).
std::vector<vid_t> ktruss_members(const CSRGraph& g, std::uint32_t k);

/// Uniform kernel entry point (see kernels/registry.hpp).
struct KTrussOptions {};
using KTrussResult = TrussResult;

inline KTrussResult run(const CSRGraph& g, const KTrussOptions&) {
  return truss_decomposition(g);
}

}  // namespace ga::kernels
