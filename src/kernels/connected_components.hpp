// Weakly Connected Components (Fig. 1 row "CCW"). Three engines:
// label propagation (Shiloach–Vishkin-style hooking + pointer jumping,
// the parallel-friendly form), BFS sweep (simple oracle), and a
// union-find API that the streaming layer reuses for incremental
// connectivity.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/telemetry.hpp"
#include "graph/csr_graph.hpp"
#include "store/graph_view.hpp"

namespace ga::kernels {

using graph::CSRGraph;

struct ComponentsResult {
  std::vector<vid_t> label;       // component id per vertex (min vertex id)
  vid_t num_components = 0;
  vid_t largest_size = 0;
  /// Per-super-step engine telemetry (wcc_label_propagation only).
  std::vector<engine::StepStats> steps;
};

/// Shiloach–Vishkin style hook + compress label propagation.
ComponentsResult wcc_label_propagation(const CSRGraph& g);
/// Delta-native on undirected views (push-only min-label rounds); directed
/// non-flat views fold once through view.csr() for the transposed sweep.
ComponentsResult wcc_label_propagation(const store::GraphView& g);

/// BFS from every unvisited vertex (test oracle).
ComponentsResult wcc_bfs(const CSRGraph& g);

/// Union-find with path halving + union by size; reused by streaming.
class UnionFind {
 public:
  explicit UnionFind(vid_t n);
  vid_t find(vid_t x);
  /// Returns true if the union merged two distinct sets.
  bool unite(vid_t a, vid_t b);
  bool connected(vid_t a, vid_t b) { return find(a) == find(b); }
  vid_t num_sets() const { return sets_; }
  vid_t size_of(vid_t x) { return size_[find(x)]; }
  void reset(vid_t n);

 private:
  std::vector<vid_t> parent_;
  std::vector<vid_t> size_;
  vid_t sets_ = 0;
};

ComponentsResult wcc_union_find(const CSRGraph& g);

/// Canonicalize labels to the minimum vertex id of each component so all
/// three engines produce byte-identical results.
void canonicalize_labels(std::vector<vid_t>& label);

enum class WccAlgo { kLabelPropagation, kBfs, kUnionFind };

/// Uniform kernel entry point (see kernels/registry.hpp).
struct ComponentsOptions {
  WccAlgo algo = WccAlgo::kLabelPropagation;
};

inline ComponentsResult run(const CSRGraph& g, const ComponentsOptions& opts) {
  switch (opts.algo) {
    case WccAlgo::kBfs: return wcc_bfs(g);
    case WccAlgo::kUnionFind: return wcc_union_find(g);
    default: return wcc_label_propagation(g);
  }
}

inline ComponentsResult run(const store::GraphView& g,
                            const ComponentsOptions& opts) {
  if (opts.algo == WccAlgo::kLabelPropagation) {
    return wcc_label_propagation(g);  // delta-native path
  }
  return run(g.csr(), opts);
}

}  // namespace ga::kernels
