// General Subgraph Isomorphism (Fig. 1 row "SI"): find embeddings of a
// small pattern graph in a data graph. VF2-style backtracking with
// degree-based candidate pruning and connectivity-ordered pattern
// traversal. Intended for patterns of <= ~8 vertices (triangles, paths,
// squares, stars — the shapes streaming benchmarks watch for).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/csr_graph.hpp"

namespace ga::kernels {

using graph::CSRGraph;

/// An embedding maps pattern vertex i -> mapping[i] in the data graph.
using Embedding = std::vector<vid_t>;

struct SubgraphIsoOptions {
  /// Stop after this many embeddings (0 = unbounded).
  std::uint64_t limit = 0;
  /// If true, count only injective embeddings up to pattern automorphism
  /// is NOT attempted — callers divide by |Aut(pattern)| themselves.
  bool induced = false;  // induced = non-edges of the pattern must be absent
};

/// Enumerate embeddings of `pattern` (undirected, connected) in `data`.
/// Returns the number found; `emit` may be null.
std::uint64_t subgraph_isomorphisms(
    const CSRGraph& data, const CSRGraph& pattern,
    const std::function<void(const Embedding&)>& emit = nullptr,
    const SubgraphIsoOptions& opts = {});

/// Convenience: count embeddings of a k-cycle (k>=3) in `data`.
std::uint64_t count_cycles(const CSRGraph& data, vid_t k);

/// Uniform kernel entry point (see kernels/registry.hpp). Matches
/// `pattern` when supplied, else a `cycle_length`-cycle pattern.
struct SubgraphIsoRunOptions {
  const CSRGraph* pattern = nullptr;  // borrowed; nullptr = cycle pattern
  vid_t cycle_length = 4;
  std::uint64_t limit = 0;  // stop after this many embeddings (0 = all)
  bool induced = false;
};

struct SubgraphIsoResult {
  std::uint64_t embeddings = 0;  // raw count (not automorphism-reduced)
};

SubgraphIsoResult run(const CSRGraph& g, const SubgraphIsoRunOptions& opts);

}  // namespace ga::kernels
