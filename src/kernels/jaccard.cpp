#include "kernels/jaccard.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/dynamic_graph.hpp"
#include "kernels/triangles.hpp"
#include "store/graph_view.hpp"

namespace ga::kernels {

double jaccard_coefficient(const CSRGraph& g, vid_t u, vid_t v) {
  GA_CHECK(u < g.num_vertices() && v < g.num_vertices(),
           "jaccard: vertex out of range");
  const auto nu = g.out_neighbors(u);
  const auto nv = g.out_neighbors(v);
  const std::size_t inter = intersect_count(nu, nv);
  const std::size_t uni = nu.size() + nv.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

std::vector<JaccardPair> jaccard_all_edges(const CSRGraph& g) {
  GA_CHECK(!g.directed(), "jaccard expects undirected graphs");
  std::vector<JaccardPair> out;
  out.reserve(g.num_edges());
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (vid_t v : g.out_neighbors(u)) {
      if (v <= u) continue;
      out.push_back({u, v, jaccard_coefficient(g, u, v)});
    }
  }
  return out;
}

namespace {

/// Visit every 2-hop candidate v of u (v != u, >= 1 shared neighbor) with
/// the intersection size |N(u) ∩ N(v)|, graph representation abstracted
/// behind `nbrs(x, cb)` (must call cb(vid_t) per neighbor of x). One sweep:
/// for each neighbor w of u, each neighbor v of w gains one shared count.
template <typename NbrFn, typename Fn>
void two_hop_sweep(vid_t u, NbrFn&& nbrs, Fn&& fn) {
  std::unordered_map<vid_t, std::size_t> shared;
  nbrs(u, [&](vid_t w) {
    nbrs(w, [&](vid_t v) {
      if (v != u) ++shared[v];
    });
  });
  for (const auto& [v, inter] : shared) fn(v, inter);
}

template <typename Fn>
void for_each_two_hop_pair(const CSRGraph& g, vid_t u, Fn&& fn) {
  two_hop_sweep(
      u,
      [&](vid_t x, auto&& cb) {
        for (const vid_t v : g.out_neighbors(x)) cb(v);
      },
      std::forward<Fn>(fn));
}

/// Shared query body for all three graph representations.
template <typename DegFn, typename NbrFn>
std::vector<JaccardPair> query_impl(vid_t u, double threshold, DegFn&& deg,
                                    NbrFn&& nbrs) {
  std::vector<JaccardPair> out;
  const double du = static_cast<double>(deg(u));
  two_hop_sweep(u, nbrs, [&](vid_t v, std::size_t inter) {
    const double uni =
        du + static_cast<double>(deg(v)) - static_cast<double>(inter);
    const double j = uni == 0.0 ? 0.0 : static_cast<double>(inter) / uni;
    if (j >= threshold && j > 0.0) out.push_back({u, v, j});
  });
  std::sort(out.begin(), out.end(),
            [](const JaccardPair& a, const JaccardPair& b) {
              return a.coefficient != b.coefficient
                         ? a.coefficient > b.coefficient
                         : a.v < b.v;
            });
  return out;
}

}  // namespace

std::vector<JaccardPair> jaccard_topk(const CSRGraph& g, std::size_t k) {
  GA_CHECK(!g.directed(), "jaccard expects undirected graphs");
  core::TopK<std::pair<vid_t, vid_t>, double> top(k);
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    const double du = static_cast<double>(g.out_degree(u));
    for_each_two_hop_pair(g, u, [&](vid_t v, std::size_t inter) {
      if (v <= u) return;  // each unordered pair once
      const double uni =
          du + static_cast<double>(g.out_degree(v)) - static_cast<double>(inter);
      const double j = uni == 0.0 ? 0.0 : static_cast<double>(inter) / uni;
      top.offer(j, {u, v});
    });
  }
  std::vector<JaccardPair> out;
  for (const auto& [score, pair] : top.sorted_desc()) {
    out.push_back({pair.first, pair.second, score});
  }
  return out;
}

std::vector<JaccardPair> jaccard_query(const CSRGraph& g, vid_t u,
                                       double threshold) {
  GA_CHECK(u < g.num_vertices(), "jaccard_query: vertex out of range");
  return query_impl(
      u, threshold, [&](vid_t x) { return g.out_degree(x); },
      [&](vid_t x, auto&& cb) {
        for (const vid_t v : g.out_neighbors(x)) cb(v);
      });
}

std::vector<JaccardPair> jaccard_query(const graph::DynamicGraph& g, vid_t u,
                                       double threshold) {
  GA_CHECK(u < g.num_vertices(), "jaccard_query: vertex out of range");
  return query_impl(
      u, threshold, [&](vid_t x) { return g.degree(x); },
      [&](vid_t x, auto&& cb) {
        g.for_each_neighbor(x,
                            [&](vid_t v, float, std::int64_t) { cb(v); });
      });
}

std::vector<JaccardPair> jaccard_query(const store::GraphView& g, vid_t u,
                                       double threshold) {
  GA_CHECK(u < g.num_vertices(), "jaccard_query: vertex out of range");
  return query_impl(
      u, threshold, [&](vid_t x) { return g.out_degree(x); },
      [&](vid_t x, auto&& cb) {
        g.for_each_out(x, [&](vid_t v, float) { cb(v); });
      });
}

JaccardPair jaccard_max_partner(const graph::DynamicGraph& g, vid_t u) {
  const auto matches = jaccard_query(g, u, 0.0);
  return matches.empty() ? JaccardPair{u, kInvalidVid, 0.0} : matches.front();
}

bool jaccard_insert_crosses_threshold(const graph::DynamicGraph& g, vid_t u,
                                      vid_t v, double threshold) {
  return jaccard_max_partner(g, u).coefficient >= threshold ||
         jaccard_max_partner(g, v).coefficient >= threshold;
}

std::vector<vid_t> jaccard_footprint(const store::GraphView& g, vid_t u,
                                     std::size_t cap) {
  GA_CHECK(u < g.num_vertices(), "jaccard_footprint: vertex out of range");
  std::vector<vid_t> out;
  out.push_back(u);
  g.for_each_out(u, [&](vid_t w, float) {
    out.push_back(w);
    g.for_each_out(w, [&](vid_t v, float) {
      if (v != u) out.push_back(v);
    });
  });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (out.size() > cap) return {};
  return out;
}

}  // namespace ga::kernels
