#include "kernels/jaccard.hpp"

#include <algorithm>
#include <unordered_map>

#include "kernels/triangles.hpp"

namespace ga::kernels {

double jaccard_coefficient(const CSRGraph& g, vid_t u, vid_t v) {
  GA_CHECK(u < g.num_vertices() && v < g.num_vertices(),
           "jaccard: vertex out of range");
  const auto nu = g.out_neighbors(u);
  const auto nv = g.out_neighbors(v);
  const std::size_t inter = intersect_count(nu, nv);
  const std::size_t uni = nu.size() + nv.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

std::vector<JaccardPair> jaccard_all_edges(const CSRGraph& g) {
  GA_CHECK(!g.directed(), "jaccard expects undirected graphs");
  std::vector<JaccardPair> out;
  out.reserve(g.num_edges());
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (vid_t v : g.out_neighbors(u)) {
      if (v <= u) continue;
      out.push_back({u, v, jaccard_coefficient(g, u, v)});
    }
  }
  return out;
}

namespace {

/// Visit each 2-hop candidate pair (u, v) with u < v and a shared neighbor,
/// computing the intersection size along the way. Calls fn(u, v, inter).
/// Deduplicates candidates per source vertex with a scratch map.
template <typename Fn>
void for_each_two_hop_pair(const CSRGraph& g, vid_t u, Fn&& fn) {
  // Count shared neighbors of u with every 2-hop vertex v > u in one sweep:
  // for each neighbor w of u, each neighbor v of w gains one shared count.
  std::unordered_map<vid_t, std::size_t> shared;
  for (vid_t w : g.out_neighbors(u)) {
    for (vid_t v : g.out_neighbors(w)) {
      if (v == u) continue;
      ++shared[v];
    }
  }
  for (const auto& [v, inter] : shared) fn(v, inter);
}

}  // namespace

std::vector<JaccardPair> jaccard_topk(const CSRGraph& g, std::size_t k) {
  GA_CHECK(!g.directed(), "jaccard expects undirected graphs");
  core::TopK<std::pair<vid_t, vid_t>, double> top(k);
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    const double du = static_cast<double>(g.out_degree(u));
    for_each_two_hop_pair(g, u, [&](vid_t v, std::size_t inter) {
      if (v <= u) return;  // each unordered pair once
      const double uni =
          du + static_cast<double>(g.out_degree(v)) - static_cast<double>(inter);
      const double j = uni == 0.0 ? 0.0 : static_cast<double>(inter) / uni;
      top.offer(j, {u, v});
    });
  }
  std::vector<JaccardPair> out;
  for (const auto& [score, pair] : top.sorted_desc()) {
    out.push_back({pair.first, pair.second, score});
  }
  return out;
}

std::vector<JaccardPair> jaccard_query(const CSRGraph& g, vid_t u,
                                       double threshold) {
  GA_CHECK(u < g.num_vertices(), "jaccard_query: vertex out of range");
  std::vector<JaccardPair> out;
  const double du = static_cast<double>(g.out_degree(u));
  for_each_two_hop_pair(g, u, [&](vid_t v, std::size_t inter) {
    const double uni =
        du + static_cast<double>(g.out_degree(v)) - static_cast<double>(inter);
    const double j = uni == 0.0 ? 0.0 : static_cast<double>(inter) / uni;
    if (j >= threshold && j > 0.0) out.push_back({u, v, j});
  });
  std::sort(out.begin(), out.end(), [](const JaccardPair& a, const JaccardPair& b) {
    return a.coefficient != b.coefficient ? a.coefficient > b.coefficient
                                          : a.v < b.v;
  });
  return out;
}

}  // namespace ga::kernels
