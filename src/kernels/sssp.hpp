// Single-Source Shortest Path (Fig. 1 row "SSSP") over float edge weights.
// Dijkstra (binary heap) for exact reference, delta-stepping (the scalable
// bucket formulation used by Graph Challenge / GAP), and Bellman-Ford
// (handles the full generality, used as the property-test oracle).
#pragma once

#include <vector>

#include "engine/telemetry.hpp"
#include "graph/csr_graph.hpp"
#include "store/graph_view.hpp"

namespace ga::kernels {

using graph::CSRGraph;

inline constexpr float kInfWeight = std::numeric_limits<float>::infinity();

struct SsspResult {
  std::vector<float> dist;    // kInfWeight if unreached
  std::vector<vid_t> parent;  // kInvalidVid if none
  std::uint64_t relaxations = 0;
  /// Per-super-step engine telemetry (bellman_ford only; the PQ/bucket
  /// engines are not level-synchronous and record nothing).
  std::vector<engine::StepStats> steps;
};

/// Exact Dijkstra; requires nonnegative weights (unweighted graphs use 1).
SsspResult dijkstra(const CSRGraph& g, vid_t source);

/// Delta-stepping with bucket width `delta` (<=0 picks mean-weight
/// heuristic). Nonnegative weights.
SsspResult delta_stepping(const CSRGraph& g, vid_t source, float delta = 0.0f);

/// Bellman-Ford; tolerates any nonnegative weights, O(nm) worst case.
SsspResult bellman_ford(const CSRGraph& g, vid_t source);
/// Delta-native frontier Bellman-Ford over the versioned store's read
/// path (push-only; weights flow through the merged iteration).
SsspResult bellman_ford(const store::GraphView& g, vid_t source);

enum class SsspAlgo { kDeltaStepping, kDijkstra, kBellmanFord };

/// Uniform kernel entry point (see kernels/registry.hpp).
struct SsspOptions {
  vid_t source = 0;
  SsspAlgo algo = SsspAlgo::kDeltaStepping;
  float delta = 0.0f;  // delta-stepping bucket width (<=0 = heuristic)
};

inline SsspResult run(const CSRGraph& g, const SsspOptions& opts) {
  switch (opts.algo) {
    case SsspAlgo::kDijkstra: return dijkstra(g, opts.source);
    case SsspAlgo::kBellmanFord: return bellman_ford(g, opts.source);
    default: return delta_stepping(g, opts.source, opts.delta);
  }
}

inline SsspResult run(const store::GraphView& g, const SsspOptions& opts) {
  if (opts.algo == SsspAlgo::kBellmanFord) {
    return bellman_ford(g, opts.source);  // delta-native path
  }
  return run(g.csr(), opts);
}

}  // namespace ga::kernels
