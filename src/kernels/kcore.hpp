// k-core decomposition: peel vertices of degree < k repeatedly. The core
// number is a cheap "importance" property used by the pipeline's selection
// stage and by anomaly triage (densely embedded vertices).
#pragma once

#include <algorithm>
#include <vector>

#include "engine/telemetry.hpp"
#include "graph/csr_graph.hpp"

namespace ga::kernels {

using graph::CSRGraph;

/// Core number per vertex via Batagelj–Zaveršnik bucket peeling (counting
/// sort by degree + O(1) bucket demotions; O(n + m) total). `telem`
/// (optional) receives one summary StepStats for the whole peel.
std::vector<std::uint32_t> core_numbers(const CSRGraph& g,
                                        engine::Telemetry* telem = nullptr);

/// Reference formulation on the traversal engine (Julienne-style: one
/// edge_map per wave of vertices sinking to the current level; `telem`
/// collects per-wave StepStats). Identical output to core_numbers; scans
/// all live vertices once per level, so it is slower on graphs with large
/// degeneracy — kept for equivalence testing and per-wave telemetry
/// studies.
std::vector<std::uint32_t> core_numbers_waves(
    const CSRGraph& g, engine::Telemetry* telem = nullptr);

/// Vertices in the k-core (sorted).
std::vector<vid_t> kcore_members(const CSRGraph& g, std::uint32_t k);

/// Degeneracy = max core number.
std::uint32_t degeneracy(const CSRGraph& g);

/// Uniform kernel entry point (see kernels/registry.hpp).
struct KCoreOptions {
  std::uint32_t k = 0;  // >0 also materializes the k-core member list
};

struct KCoreResult {
  std::vector<std::uint32_t> core;  // core number per vertex
  std::uint32_t degeneracy = 0;     // max core number
  std::vector<vid_t> members;       // k-core vertices (empty unless k > 0)
};

inline KCoreResult run(const CSRGraph& g, const KCoreOptions& opts) {
  KCoreResult r;
  r.core = core_numbers(g);
  for (std::uint32_t c : r.core) r.degeneracy = std::max(r.degeneracy, c);
  if (opts.k > 0) {
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      if (r.core[v] >= opts.k) r.members.push_back(v);
    }
  }
  return r;
}

}  // namespace ga::kernels
