// k-core decomposition: peel vertices of degree < k repeatedly. The core
// number is a cheap "importance" property used by the pipeline's selection
// stage and by anomaly triage (densely embedded vertices).
#pragma once

#include <vector>

#include "engine/telemetry.hpp"
#include "graph/csr_graph.hpp"

namespace ga::kernels {

using graph::CSRGraph;

/// Core number per vertex via engine peel waves (Julienne-style: one
/// edge_map per wave of vertices sinking to the current level). `telem`
/// (optional) collects per-wave StepStats.
std::vector<std::uint32_t> core_numbers(const CSRGraph& g,
                                        engine::Telemetry* telem = nullptr);

/// Vertices in the k-core (sorted).
std::vector<vid_t> kcore_members(const CSRGraph& g, std::uint32_t k);

/// Degeneracy = max core number.
std::uint32_t degeneracy(const CSRGraph& g);

}  // namespace ga::kernels
