#include "kernels/contraction.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "graph/builder.hpp"
#include "kernels/community.hpp"

namespace ga::kernels {

ContractionResult contract(const CSRGraph& g, const std::vector<vid_t>& group) {
  GA_CHECK(group.size() == g.num_vertices(), "contract: group size mismatch");
  ContractionResult r;

  // Densify group ids by first appearance.
  std::unordered_map<vid_t, vid_t> remap;
  r.group_of.resize(group.size());
  for (std::size_t v = 0; v < group.size(); ++v) {
    auto [it, inserted] = remap.try_emplace(group[v], r.num_groups);
    if (inserted) ++r.num_groups;
    r.group_of[v] = it->second;
  }
  r.group_size.assign(r.num_groups, 0);
  for (vid_t sg : r.group_of) ++r.group_size[sg];
  r.self_weight.assign(r.num_groups, 0.0);

  // Accumulate super-edge weights (each undirected edge seen once, u<v).
  std::map<std::pair<vid_t, vid_t>, float> super_edges;
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.out_neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vid_t v = nbrs[i];
      if (!g.directed() && v < u) continue;  // one direction only
      const float w = g.weighted() ? g.out_weights(u)[i] : 1.0f;
      const vid_t a = r.group_of[u], b = r.group_of[v];
      if (a == b) {
        r.self_weight[a] += w;
      } else {
        super_edges[{std::min(a, b), std::max(a, b)}] += w;
      }
    }
  }

  std::vector<graph::Edge> edges;
  edges.reserve(super_edges.size());
  for (const auto& [key, w] : super_edges) {
    edges.push_back(graph::Edge{key.first, key.second, w, 0});
  }
  graph::BuildOptions opts;
  opts.directed = g.directed();
  opts.keep_weights = true;
  opts.dedup_parallel_edges = false;  // already aggregated
  r.contracted = graph::build_csr(std::move(edges), r.num_groups, opts);
  return r;
}

ContractionResult run(const CSRGraph& g, const ContractionOptions& opts) {
  if (!opts.group.empty()) return contract(g, opts.group);
  const CommunityResult comm =
      community_label_propagation(g, /*max_rounds=*/32, opts.seed);
  return contract(g, comm.community);
}

}  // namespace ga::kernels
