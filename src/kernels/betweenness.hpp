// Betweenness Centrality (Fig. 1 row "BC") via Brandes' algorithm:
// per-source BFS + dependency back-propagation. Exact over all sources, or
// sampled over k pivots (the HPC Graph Analysis / Graph500-style
// approximation for large graphs).
#pragma once

#include <vector>

#include "engine/telemetry.hpp"
#include "graph/csr_graph.hpp"

namespace ga::kernels {

using graph::CSRGraph;

/// Exact BC on unweighted graphs. Scores are unnormalized pair-dependency
/// sums; for undirected graphs each pair is counted twice (divide by 2 to
/// match textbook values). `telem` (optional) collects the forward-sweep
/// StepStats of every source.
std::vector<double> betweenness_exact(const CSRGraph& g,
                                      engine::Telemetry* telem = nullptr);

/// Sampled BC from `num_pivots` sources chosen deterministically from
/// `seed`; scores scaled by n/num_pivots to estimate the exact values.
std::vector<double> betweenness_sampled(const CSRGraph& g, vid_t num_pivots,
                                        std::uint64_t seed = 1,
                                        engine::Telemetry* telem = nullptr);

/// Parallel exact BC: pivots are independent Brandes passes, accumulated
/// into per-chunk partial score vectors and merged. Deterministic (sum
/// order fixed by chunk merge order within a tolerance).
std::vector<double> betweenness_exact_parallel(const CSRGraph& g);

/// Uniform kernel entry point (see kernels/registry.hpp).
struct BetweennessOptions {
  vid_t num_pivots = 0;  // 0 = exact (all sources); >0 = sampled
  std::uint64_t seed = 1;
  bool parallel = false;  // exact only
};

struct BetweennessResult {
  std::vector<double> centrality;  // unnormalized pair-dependency sums
};

inline BetweennessResult run(const CSRGraph& g,
                             const BetweennessOptions& opts) {
  if (opts.num_pivots > 0) {
    return {betweenness_sampled(g, opts.num_pivots, opts.seed)};
  }
  return {opts.parallel ? betweenness_exact_parallel(g)
                        : betweenness_exact(g)};
}

}  // namespace ga::kernels
