#include "kernels/partition.hpp"

#include <algorithm>
#include <deque>

#include "core/prng.hpp"

namespace ga::kernels {

eid_t edge_cut(const CSRGraph& g, const std::vector<std::uint32_t>& part) {
  GA_CHECK(part.size() == g.num_vertices(), "partition size mismatch");
  eid_t cut = 0;
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (vid_t v : g.out_neighbors(u)) {
      if (u < v && part[u] != part[v]) ++cut;
    }
  }
  return cut;
}

namespace {

double compute_imbalance(const std::vector<std::uint32_t>& part,
                         std::uint32_t k, vid_t n) {
  std::vector<vid_t> sizes(k, 0);
  for (std::uint32_t p : part) ++sizes[p];
  const double ideal = static_cast<double>(n) / k;
  double worst = 0.0;
  for (vid_t s : sizes) {
    worst = std::max(worst, static_cast<double>(s) / ideal);
  }
  return worst - 1.0;
}

}  // namespace

PartitionResult partition_bfs_grow(const CSRGraph& g, std::uint32_t k,
                                   std::uint64_t seed) {
  GA_CHECK(k >= 1, "partition: k >= 1");
  const vid_t n = g.num_vertices();
  GA_CHECK(k <= n, "partition: k exceeds vertex count");
  PartitionResult r;
  r.k = k;
  r.part.assign(n, k);  // k = unassigned
  const vid_t capacity = static_cast<vid_t>(ceil_div(n, k));

  core::Xoshiro256 rng(seed);
  std::vector<std::deque<vid_t>> frontiers(k);
  std::vector<vid_t> sizes(k, 0);
  // Distinct random seeds.
  for (std::uint32_t p = 0; p < k; ++p) {
    vid_t s;
    do {
      s = rng.next_vid(n);
    } while (r.part[s] != k);
    r.part[s] = p;
    ++sizes[p];
    frontiers[p].push_back(s);
  }
  // Round-robin frontier growth under capacity.
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::uint32_t p = 0; p < k; ++p) {
      if (sizes[p] >= capacity) continue;
      while (!frontiers[p].empty() && sizes[p] < capacity) {
        const vid_t u = frontiers[p].front();
        frontiers[p].pop_front();
        bool grabbed = false;
        for (vid_t v : g.out_neighbors(u)) {
          if (r.part[v] == k) {
            r.part[v] = p;
            ++sizes[p];
            frontiers[p].push_back(v);
            progress = true;
            grabbed = true;
            if (sizes[p] >= capacity) break;
          }
        }
        if (grabbed) break;  // round-robin fairness: one grab per turn
      }
    }
  }
  // Disconnected leftovers: assign to the smallest part.
  for (vid_t v = 0; v < n; ++v) {
    if (r.part[v] == k) {
      const auto p = static_cast<std::uint32_t>(
          std::min_element(sizes.begin(), sizes.end()) - sizes.begin());
      r.part[v] = p;
      ++sizes[p];
    }
  }
  r.cut_edges = edge_cut(g, r.part);
  r.imbalance = compute_imbalance(r.part, k, n);
  return r;
}

PartitionResult refine_partition(const CSRGraph& g, PartitionResult init,
                                 double balance_factor, unsigned max_passes) {
  const vid_t n = g.num_vertices();
  const std::uint32_t k = init.k;
  std::vector<vid_t> sizes(k, 0);
  for (std::uint32_t p : init.part) ++sizes[p];
  const auto max_size = static_cast<vid_t>(
      balance_factor * static_cast<double>(n) / k + 1.0);

  std::vector<eid_t> links(k);
  for (unsigned pass = 0; pass < max_passes; ++pass) {
    bool moved = false;
    for (vid_t u = 0; u < n; ++u) {
      std::fill(links.begin(), links.end(), 0);
      for (vid_t v : g.out_neighbors(u)) ++links[init.part[v]];
      const std::uint32_t cur = init.part[u];
      std::uint32_t best = cur;
      // Gain = links to target - links to current part.
      eid_t best_links = links[cur];
      for (std::uint32_t p = 0; p < k; ++p) {
        if (p == cur || sizes[p] + 1 > max_size) continue;
        if (links[p] > best_links) {
          best = p;
          best_links = links[p];
        }
      }
      if (best != cur && sizes[cur] > 1) {
        init.part[u] = best;
        --sizes[cur];
        ++sizes[best];
        moved = true;
      }
    }
    if (!moved) break;
  }
  init.cut_edges = edge_cut(g, init.part);
  init.imbalance = compute_imbalance(init.part, k, n);
  return init;
}

PartitionResult partition(const CSRGraph& g, std::uint32_t k,
                          std::uint64_t seed) {
  return refine_partition(g, partition_bfs_grow(g, k, seed));
}

}  // namespace ga::kernels
