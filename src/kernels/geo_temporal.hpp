// Geo & Temporal Correlation (Fig. 1 row, from the Kepler & Gilbert
// benchmark set): events carry coordinates and timestamps; the kernel
// finds pairs/clusters of events that are close in BOTH space and time.
// Batch form: enumerate correlated pairs / connected correlation clusters.
// Streaming form: ingest events one at a time and emit an O(1) event
// whenever a neighborhood's density crosses a threshold (the Fig. 1
// "Output O(1) Events" class).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/common.hpp"

namespace ga::graph {
class CSRGraph;
}

namespace ga::kernels {

struct GeoEvent {
  double x = 0.0;
  double y = 0.0;
  std::int64_t t = 0;
  std::uint64_t id = 0;
};

struct CorrelationParams {
  double radius = 1.0;        // spatial threshold (Euclidean)
  std::int64_t window = 10;   // temporal threshold |t1-t2| <= window
};

/// All correlated pairs (i < j by index). O(n) expected with spatial
/// hashing, O(n^2) worst case on degenerate data.
std::vector<std::pair<std::uint32_t, std::uint32_t>> correlated_pairs(
    const std::vector<GeoEvent>& events, const CorrelationParams& p);

/// Correlation clusters: connected components of the correlated-pair
/// graph. Returns cluster id per event (dense, by first appearance).
struct CorrelationClusters {
  std::vector<std::uint32_t> cluster;
  std::uint32_t num_clusters = 0;
  std::uint32_t largest = 0;
};
CorrelationClusters correlation_clusters(const std::vector<GeoEvent>& events,
                                         const CorrelationParams& p);

/// Streaming detector: emits an alert when an arriving event has at least
/// `density_threshold` correlated predecessors still inside the time
/// window (hotspot forming). Old events age out of the index.
class StreamingGeoCorrelator {
 public:
  StreamingGeoCorrelator(const CorrelationParams& p,
                         std::size_t density_threshold);

  struct HotspotAlert {
    GeoEvent trigger;
    std::size_t neighbors = 0;
  };

  /// Ingest one event (timestamps must be non-decreasing). Returns true if
  /// it triggered a hotspot alert.
  bool ingest(const GeoEvent& e);

  const std::vector<HotspotAlert>& alerts() const { return alerts_; }
  std::size_t live_events() const { return live_; }

 private:
  struct Cell {
    std::vector<GeoEvent> events;
  };
  std::int64_t cell_of(double x, double y) const;
  void expire(std::int64_t now);

  CorrelationParams p_;
  std::size_t threshold_;
  std::int64_t last_ts_ = std::numeric_limits<std::int64_t>::min();
  std::size_t live_ = 0;
  std::unordered_map<std::int64_t, Cell> grid_;
  std::vector<HotspotAlert> alerts_;
};

/// Deterministic synthetic event stream: background noise over a square
/// arena plus planted spatio-temporal bursts.
struct GeoStreamOptions {
  std::size_t count = 10000;
  double arena = 100.0;          // events in [0,arena)^2
  std::size_t num_bursts = 5;    // planted hotspots
  std::size_t burst_size = 30;   // events per burst
  double burst_radius = 0.5;
  std::int64_t burst_span = 5;   // burst duration in time units
  std::uint64_t seed = 1;
};
std::vector<GeoEvent> generate_geo_stream(const GeoStreamOptions& opts);

/// Uniform kernel entry point (see kernels/registry.hpp). This kernel is
/// stream-native: the graph argument only sizes the synthetic stream when
/// `stream.count` is 0 (one event per vertex); correlation then runs over
/// the generated events in both batch and streaming form.
struct GeoTemporalOptions {
  GeoStreamOptions stream;
  CorrelationParams params;
  std::size_t alert_threshold = 8;  // streaming density threshold
};

struct GeoTemporalResult {
  std::size_t events = 0;
  std::uint32_t clusters = 0;       // batch correlation clusters
  std::uint32_t largest_cluster = 0;
  std::size_t alerts = 0;           // streaming hotspot alerts
};

GeoTemporalResult run(const graph::CSRGraph& g, const GeoTemporalOptions& opts);

}  // namespace ga::kernels
