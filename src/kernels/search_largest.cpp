#include "kernels/search_largest.hpp"

#include <mutex>

#include "core/thread_pool.hpp"
#include "core/topk.hpp"

namespace ga::kernels {

std::vector<ScoredVertex> search_largest(const std::vector<double>& property,
                                         std::size_t k) {
  // Parallel partial top-k per chunk, merged under a lock.
  core::TopK<vid_t, double> merged(k);
  std::mutex mu;
  std::function<void(std::uint64_t, std::uint64_t)> body =
      [&](std::uint64_t b, std::uint64_t e) {
        core::TopK<vid_t, double> local(k);
        for (std::uint64_t i = b; i < e; ++i) {
          local.offer(property[i], static_cast<vid_t>(i));
        }
        std::lock_guard<std::mutex> lk(mu);
        for (const auto& [score, v] : local.sorted_desc()) {
          merged.offer(score, v);
        }
      };
  core::ThreadPool::global().parallel_for(0, property.size(), 4096, body);
  std::vector<ScoredVertex> out;
  for (const auto& [score, v] : merged.sorted_desc()) out.push_back({score, v});
  return out;
}

std::vector<vid_t> search_where(vid_t num_vertices,
                                const std::function<bool(vid_t)>& pred) {
  std::vector<vid_t> out;
  for (vid_t v = 0; v < num_vertices; ++v) {
    if (pred(v)) out.push_back(v);
  }
  return out;
}

std::vector<ScoredVertex> largest_degree(const CSRGraph& g, std::size_t k) {
  std::vector<double> deg(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    deg[v] = static_cast<double>(g.out_degree(v));
  }
  return search_largest(deg, k);
}

}  // namespace ga::kernels
