#include "kernels/kcore.hpp"

#include <algorithm>

namespace ga::kernels {

std::vector<std::uint32_t> core_numbers(const CSRGraph& g) {
  GA_CHECK(!g.directed(), "k-core expects undirected graphs");
  const vid_t n = g.num_vertices();
  std::vector<std::uint32_t> degree(n), core(n, 0);
  std::uint32_t max_deg = 0;
  for (vid_t v = 0; v < n; ++v) {
    degree[v] = static_cast<std::uint32_t>(g.out_degree(v));
    max_deg = std::max(max_deg, degree[v]);
  }
  // Bucket sort vertices by degree (Batagelj–Zaveršnik).
  std::vector<vid_t> bin(max_deg + 2, 0), pos(n), vert(n);
  for (vid_t v = 0; v < n; ++v) ++bin[degree[v] + 1];
  for (std::uint32_t d = 1; d <= max_deg + 1; ++d) bin[d] += bin[d - 1];
  for (vid_t v = 0; v < n; ++v) {
    pos[v] = bin[degree[v]]++;
    vert[pos[v]] = v;
  }
  // Restore bin starts.
  for (std::uint32_t d = max_deg + 1; d >= 1; --d) bin[d] = bin[d - 1];
  bin[0] = 0;

  for (vid_t i = 0; i < n; ++i) {
    const vid_t v = vert[i];
    core[v] = degree[v];
    for (vid_t u : g.out_neighbors(v)) {
      if (degree[u] > degree[v]) {
        // Move u one bucket down: swap with the first vertex of its bucket.
        const vid_t du = degree[u];
        const vid_t pu = pos[u];
        const vid_t pw = bin[du];
        const vid_t w = vert[pw];
        if (u != w) {
          std::swap(vert[pu], vert[pw]);
          pos[u] = pw;
          pos[w] = pu;
        }
        ++bin[du];
        --degree[u];
      }
    }
  }
  return core;
}

std::vector<vid_t> kcore_members(const CSRGraph& g, std::uint32_t k) {
  const auto core = core_numbers(g);
  std::vector<vid_t> out;
  for (vid_t v = 0; v < core.size(); ++v) {
    if (core[v] >= k) out.push_back(v);
  }
  return out;
}

std::uint32_t degeneracy(const CSRGraph& g) {
  const auto core = core_numbers(g);
  std::uint32_t m = 0;
  for (std::uint32_t c : core) m = std::max(m, c);
  return m;
}

}  // namespace ga::kernels
