#include "kernels/kcore.hpp"

#include <algorithm>

#include "core/timer.hpp"
#include "engine/traversal.hpp"

namespace ga::kernels {

namespace {

/// Engine functor for one peel wave: removing u costs each live neighbor v
/// one degree; v joins the wave the moment it sinks to the threshold.
struct PeelStep {
  std::vector<std::uint32_t>& degree;
  const std::vector<char>& removed;
  std::uint32_t k;

  bool cond(vid_t v) const { return !removed[v]; }
  bool update(vid_t, vid_t v, float) {
    if (degree[v] > 0) --degree[v];
    return degree[v] <= k;
  }
  // Peeling is run serial (wave order is part of the invariant that
  // degrees never sink below the current level before their wave).
  bool update_atomic(vid_t u, vid_t v, float w) { return update(u, v, w); }
};

}  // namespace

std::vector<std::uint32_t> core_numbers(const CSRGraph& g,
                                        engine::Telemetry* telem) {
  GA_CHECK(!g.directed(), "k-core expects undirected graphs");
  const vid_t n = g.num_vertices();
  core::WallTimer timer;

  // Batagelj–Zaveršnik bucket peeling, O(n + m): vertices live in an array
  // `vert` sorted by current degree via counting sort; `bin[d]` marks where
  // degree-d vertices start, `pos[v]` tracks each vertex's slot. Peeling
  // the minimum-degree vertex decrements each unpeeled neighbor's degree
  // by swapping it down into the bucket below — every arc is handled once,
  // so the whole decomposition is one counting sort plus one graph scan.
  // (The wave-based engine formulation, kept as core_numbers_waves, scans
  // all live vertices once per level and is quadratic-ish on graphs with
  // large degeneracy.)
  std::vector<std::uint32_t> deg(n);
  std::uint32_t max_deg = 0;
  for (vid_t v = 0; v < n; ++v) {
    deg[v] = static_cast<std::uint32_t>(g.out_degree(v));
    max_deg = std::max(max_deg, deg[v]);
  }

  std::vector<eid_t> bin(max_deg + 2, 0);
  for (vid_t v = 0; v < n; ++v) ++bin[deg[v] + 1];
  for (std::uint32_t d = 1; d <= max_deg + 1; ++d) bin[d] += bin[d - 1];

  std::vector<vid_t> vert(n), pos(n);
  {
    std::vector<eid_t> cursor(bin.begin(), bin.end() - 1);
    for (vid_t v = 0; v < n; ++v) {
      pos[v] = static_cast<vid_t>(cursor[deg[v]]);
      vert[pos[v]] = v;
      ++cursor[deg[v]];
    }
  }

  const eid_t* offsets = g.offsets().data();
  const vid_t* targets = g.targets().data();
  std::uint64_t arcs_scanned = 0;
  for (eid_t i = 0; i < n; ++i) {
    const vid_t v = vert[i];
    // deg[v] is final here: v's core number.
    const eid_t ab = offsets[v], ae = offsets[v + 1];
    arcs_scanned += ae - ab;
    for (eid_t a = ab; a < ae; ++a) {
      const vid_t u = targets[a];
      if (deg[u] <= deg[v]) continue;  // already peeled or peeling this level
      // Swap u with the first vertex of its bucket, then shrink the bucket
      // start past it — u lands in bucket deg[u]-1 in O(1).
      const vid_t du = deg[u];
      const vid_t pu = pos[u];
      const vid_t pw = static_cast<vid_t>(bin[du]);
      const vid_t w = vert[pw];
      if (u != w) {
        vert[pu] = w;
        pos[w] = pu;
        vert[pw] = u;
        pos[u] = pw;
      }
      ++bin[du];
      --deg[u];
    }
  }

  if (telem != nullptr) {
    engine::StepStats st;
    st.direction = engine::Direction::kPush;
    st.frontier_size = n;
    st.vertices_touched = n;
    st.edges_traversed = arcs_scanned;
    st.bytes_moved = engine::detail::model_bytes(n, arcs_scanned, false);
    st.seconds = timer.seconds();
    telem->record(st);
  }
  return deg;  // final degrees ARE the core numbers
}

std::vector<std::uint32_t> core_numbers_waves(const CSRGraph& g,
                                              engine::Telemetry* telem) {
  GA_CHECK(!g.directed(), "k-core expects undirected graphs");
  const vid_t n = g.num_vertices();
  std::vector<std::uint32_t> degree(n), core(n, 0);
  for (vid_t v = 0; v < n; ++v) {
    degree[v] = static_cast<std::uint32_t>(g.out_degree(v));
  }

  // Julienne-style peeling on the engine: at level k, repeatedly peel the
  // frontier of live vertices with degree <= k (each peel wave is one
  // edge_map decrementing neighbor degrees) until none remain, then raise
  // k. A vertex's core number is the level at which it was peeled.
  std::vector<char> removed(n, 0);
  engine::TraversalOptions opts;
  opts.direction = engine::TraversalOptions::Dir::kPush;
  opts.parallel = false;
  std::uint64_t remaining = n;
  for (std::uint32_t k = 0; remaining > 0; ++k) {
    engine::Frontier frontier = engine::vertex_filter(
        n, [&](vid_t v) { return !removed[v] && degree[v] <= k; });
    while (!frontier.empty()) {
      frontier.for_each([&](vid_t v) {
        core[v] = k;
        removed[v] = 1;
      });
      remaining -= frontier.size();
      PeelStep step{degree, removed, k};
      frontier = engine::edge_map(g, frontier, step, opts, telem);
    }
  }
  return core;
}

std::vector<vid_t> kcore_members(const CSRGraph& g, std::uint32_t k) {
  const auto core = core_numbers(g);
  std::vector<vid_t> out;
  for (vid_t v = 0; v < core.size(); ++v) {
    if (core[v] >= k) out.push_back(v);
  }
  return out;
}

std::uint32_t degeneracy(const CSRGraph& g) {
  const auto core = core_numbers(g);
  std::uint32_t m = 0;
  for (std::uint32_t c : core) m = std::max(m, c);
  return m;
}

}  // namespace ga::kernels
