#include "kernels/kcore.hpp"

#include <algorithm>

#include "engine/traversal.hpp"

namespace ga::kernels {

namespace {

/// Engine functor for one peel wave: removing u costs each live neighbor v
/// one degree; v joins the wave the moment it sinks to the threshold.
struct PeelStep {
  std::vector<std::uint32_t>& degree;
  const std::vector<char>& removed;
  std::uint32_t k;

  bool cond(vid_t v) const { return !removed[v]; }
  bool update(vid_t, vid_t v, float) {
    if (degree[v] > 0) --degree[v];
    return degree[v] <= k;
  }
  // Peeling is run serial (wave order is part of the invariant that
  // degrees never sink below the current level before their wave).
  bool update_atomic(vid_t u, vid_t v, float w) { return update(u, v, w); }
};

}  // namespace

std::vector<std::uint32_t> core_numbers(const CSRGraph& g,
                                        engine::Telemetry* telem) {
  GA_CHECK(!g.directed(), "k-core expects undirected graphs");
  const vid_t n = g.num_vertices();
  std::vector<std::uint32_t> degree(n), core(n, 0);
  for (vid_t v = 0; v < n; ++v) {
    degree[v] = static_cast<std::uint32_t>(g.out_degree(v));
  }

  // Julienne-style peeling on the engine: at level k, repeatedly peel the
  // frontier of live vertices with degree <= k (each peel wave is one
  // edge_map decrementing neighbor degrees) until none remain, then raise
  // k. A vertex's core number is the level at which it was peeled.
  std::vector<char> removed(n, 0);
  engine::TraversalOptions opts;
  opts.direction = engine::TraversalOptions::Dir::kPush;
  opts.parallel = false;
  std::uint64_t remaining = n;
  for (std::uint32_t k = 0; remaining > 0; ++k) {
    engine::Frontier frontier = engine::vertex_filter(
        n, [&](vid_t v) { return !removed[v] && degree[v] <= k; });
    while (!frontier.empty()) {
      frontier.for_each([&](vid_t v) {
        core[v] = k;
        removed[v] = 1;
      });
      remaining -= frontier.size();
      PeelStep step{degree, removed, k};
      frontier = engine::edge_map(g, frontier, step, opts, telem);
    }
  }
  return core;
}

std::vector<vid_t> kcore_members(const CSRGraph& g, std::uint32_t k) {
  const auto core = core_numbers(g);
  std::vector<vid_t> out;
  for (vid_t v = 0; v < core.size(); ++v) {
    if (core[v] >= k) out.push_back(v);
  }
  return out;
}

std::uint32_t degeneracy(const CSRGraph& g) {
  const auto core = core_numbers(g);
  std::uint32_t m = 0;
  for (std::uint32_t c : core) m = std::max(m, c);
  return m;
}

}  // namespace ga::kernels
