#include "kernels/clustering.hpp"

#include "core/thread_pool.hpp"
#include "kernels/triangles.hpp"

namespace ga::kernels {

std::vector<double> local_clustering(const CSRGraph& g) {
  GA_CHECK(!g.directed(), "clustering expects undirected graphs");
  const vid_t n = g.num_vertices();
  std::vector<double> cc(n, 0.0);
  core::parallel_for_each(0, n, 64, [&](std::uint64_t vi) {
    const auto v = static_cast<vid_t>(vi);
    const auto nv = g.out_neighbors(v);
    const auto d = static_cast<std::uint64_t>(nv.size());
    if (d < 2) return;
    std::uint64_t links = 0;  // edges among neighbors, each counted once
    for (vid_t u : nv) {
      // Count neighbors of u that are also neighbors of v and > u: each
      // neighbor-neighbor edge {x,y} (x<y) is found exactly once, at u==x.
      const auto nu = g.out_neighbors(u);
      auto iu = std::upper_bound(nu.begin(), nu.end(), u);
      links += intersect_count({&*iu, static_cast<std::size_t>(nu.end() - iu)}, nv);
    }
    // Each neighbor-neighbor edge (x,y) with x<y was found once when u==x.
    cc[v] = 2.0 * static_cast<double>(links) /
            (static_cast<double>(d) * static_cast<double>(d - 1));
  });
  return cc;
}

double average_clustering(const CSRGraph& g) {
  const auto cc = local_clustering(g);
  if (cc.empty()) return 0.0;
  double sum = 0.0;
  for (double c : cc) sum += c;
  return sum / static_cast<double>(cc.size());
}

double global_clustering(const CSRGraph& g) {
  GA_CHECK(!g.directed(), "clustering expects undirected graphs");
  const std::uint64_t tris = triangle_count_node_iterator(g);
  std::uint64_t wedges = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const std::uint64_t d = g.out_degree(v);
    wedges += d * (d - 1) / 2;
  }
  return wedges == 0 ? 0.0
                     : 3.0 * static_cast<double>(tris) / static_cast<double>(wedges);
}

ClusteringResult run(const CSRGraph& g, const ClusteringOptions& opts) {
  ClusteringResult r;
  auto cc = local_clustering(g);
  if (!cc.empty()) {
    double sum = 0.0;
    for (double c : cc) sum += c;
    r.average = sum / static_cast<double>(cc.size());
  }
  if (opts.per_vertex) r.local = std::move(cc);
  r.global = global_clustering(g);
  return r;
}

}  // namespace ga::kernels
