// Clustering coefficients (Fig. 1 row "CCO"): local per-vertex coefficient
// (triangles through v / wedges at v), the graph-average coefficient, and
// the global (transitivity) coefficient 3*triangles/wedges.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"

namespace ga::kernels {

using graph::CSRGraph;

/// Per-vertex local clustering coefficient in [0,1] (0 for degree < 2).
std::vector<double> local_clustering(const CSRGraph& g);

/// Mean of the local coefficients (Watts–Strogatz average).
double average_clustering(const CSRGraph& g);

/// Transitivity: 3 * triangles / wedges.
double global_clustering(const CSRGraph& g);

/// Uniform kernel entry point (see kernels/registry.hpp).
struct ClusteringOptions {
  bool per_vertex = true;  // also materialize the per-vertex coefficients
};

struct ClusteringResult {
  std::vector<double> local;  // empty unless per_vertex
  double average = 0.0;       // Watts–Strogatz mean of local coefficients
  double global = 0.0;        // transitivity
};

ClusteringResult run(const CSRGraph& g, const ClusteringOptions& opts);

}  // namespace ga::kernels
