// Clustering coefficients (Fig. 1 row "CCO"): local per-vertex coefficient
// (triangles through v / wedges at v), the graph-average coefficient, and
// the global (transitivity) coefficient 3*triangles/wedges.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"

namespace ga::kernels {

using graph::CSRGraph;

/// Per-vertex local clustering coefficient in [0,1] (0 for degree < 2).
std::vector<double> local_clustering(const CSRGraph& g);

/// Mean of the local coefficients (Watts–Strogatz average).
double average_clustering(const CSRGraph& g);

/// Transitivity: 3 * triangles / wedges.
double global_clustering(const CSRGraph& g);

}  // namespace ga::kernels
