// Graph Partitioning (Fig. 1 row "GP"): split the vertex set into k
// balanced parts minimizing cut edges. BFS-grow seeding plus a
// Kernighan–Lin-style boundary refinement pass — the classic multilevel
// building blocks without the multilevel coarsening (graphs here fit RAM).
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"

namespace ga::kernels {

using graph::CSRGraph;

struct PartitionResult {
  std::vector<std::uint32_t> part;  // part id per vertex, 0..k-1
  std::uint32_t k = 0;
  eid_t cut_edges = 0;              // undirected edges crossing parts
  double imbalance = 0.0;           // max part size / ideal size - 1
};

/// Number of undirected edges crossing parts under `part`.
eid_t edge_cut(const CSRGraph& g, const std::vector<std::uint32_t>& part);

/// BFS-grow: k seeds spread by frontier growth with capacity limits.
PartitionResult partition_bfs_grow(const CSRGraph& g, std::uint32_t k,
                                   std::uint64_t seed = 1);

/// Greedy boundary refinement: move vertices to the neighboring part with
/// max gain while respecting a balance factor. Improves an existing split.
PartitionResult refine_partition(const CSRGraph& g, PartitionResult init,
                                 double balance_factor = 1.05,
                                 unsigned max_passes = 8);

/// Convenience: BFS-grow then refine.
PartitionResult partition(const CSRGraph& g, std::uint32_t k,
                          std::uint64_t seed = 1);

/// Uniform kernel entry point (see kernels/registry.hpp).
struct PartitionOptions {
  std::uint32_t k = 8;
  std::uint64_t seed = 1;
  bool refine = true;
  double balance_factor = 1.05;
  unsigned max_passes = 8;
};

inline PartitionResult run(const CSRGraph& g, const PartitionOptions& opts) {
  PartitionResult r = partition_bfs_grow(g, opts.k, opts.seed);
  if (opts.refine) {
    r = refine_partition(g, std::move(r), opts.balance_factor,
                         opts.max_passes);
  }
  return r;
}

}  // namespace ga::kernels
