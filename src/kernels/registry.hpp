// Kernel registry: one row per Fig. 1 batch kernel, carrying the paper's
// taxonomy metadata (kernel class, benchmark suites, output class) plus a
// type-erased runner over the uniform run(graph, <Kernel>Options) API every
// kernel header now exposes. ga_cli, the bench harness, and the serving
// layer's registry-backed paths all dispatch through the same typed entry
// point: run_kernel(info, KernelRunSpec). The spec carries everything a
// dispatch site varies — the input view, the seed for seeded kernels, the
// trace context to nest under, and whether delta-incremental execution is
// allowed — so a new kernel (or a new harness) plugs in by touching one
// table and zero signatures.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/csr_graph.hpp"
#include "obs/trace.hpp"
#include "store/graph_view.hpp"

namespace ga::kernels {

class IncrementalKernel;

/// Everything one kernel dispatch needs, in one value type. Views are
/// cheap (a few shared_ptrs), so specs are built per call and passed by
/// const reference; a spec over a borrowed view must not outlive the
/// graph it borrows.
struct KernelRunSpec {
  /// Input snapshot. Flat views run the batch path; delta-backed views
  /// let delta-native kernels traverse the merged chain (the rest fold
  /// once through view.csr()).
  store::GraphView view;
  /// Source / sample seed for kernels that take one (BFS, SSSP roots).
  /// Runners clamp it into [0, n) themselves.
  vid_t seed = 0;
  /// Parent span for the "kernel.<name>" trace; when invalid (default)
  /// the thread's ambient context is used.
  obs::TraceContext trace{};
  /// Permit a kernel with warm incremental state to answer via its
  /// delta-update path instead of a batch recompute (serving sets this
  /// from the query's allow_incremental; batch harnesses leave it true
  /// but run stateless registry runners, which recompute regardless).
  bool allow_incremental = true;

  static KernelRunSpec of(store::GraphView v) {
    KernelRunSpec s;
    s.view = std::move(v);
    return s;
  }
  /// Borrowed flat wrap for harnesses that own a CSR on the stack; the
  /// graph must outlive the spec and the run.
  static KernelRunSpec of(const graph::CSRGraph& g) {
    return of(store::GraphView::borrowed(g));
  }
};

struct KernelInfo {
  std::string name;          // short id for CLI dispatch, e.g. "bfs"
  std::string display;       // Fig. 1 row label
  std::string kclass;        // taxonomy class (Fig. 1 first column group)
  std::string suites;        // benchmark efforts containing it (B/S)
  std::string output_class;  // output class (Fig. 1 last column group)
  bool directed = false;     // runner wants a directed CSR input
  /// RMAT scale the default run is sized for (heavier kernels get smaller
  /// default inputs; harnesses may build one graph per distinct scale).
  unsigned preferred_scale = 13;
  /// Run with registry-default options; returns a one-line result summary.
  std::function<std::string(const KernelRunSpec&)> run;
  /// Non-null for kernels with a delta-incremental update path: creates a
  /// fresh epoch-folding runner (kernels/incremental.hpp) with registry
  /// default options. Harnesses seed it with init() on one epoch and fold
  /// later epochs' DeltaSummaries forward with update().
  std::function<std::unique_ptr<IncrementalKernel>()> make_incremental;
};

/// All registered kernels, in Fig. 1 row order.
const std::vector<KernelInfo>& registry();

/// Lookup by short name; nullptr if unknown.
const KernelInfo* find_kernel(std::string_view name);

struct KernelRunOutcome {
  std::string summary;
  double millis = 0.0;
};

/// The one timed dispatch through the registry: wraps the runner in a
/// "kernel.<name>" trace span (under spec.trace, or the ambient context
/// when the spec carries none) and records kernel.runs_total /
/// kernel.run_us. Build the spec with KernelRunSpec::of(view) or
/// ::of(graph).
KernelRunOutcome run_kernel(const KernelInfo& info, const KernelRunSpec& spec);

}  // namespace ga::kernels
