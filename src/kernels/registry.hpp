// Kernel registry: one row per Fig. 1 batch kernel, carrying the paper's
// taxonomy metadata (kernel class, benchmark suites, output class) plus a
// type-erased runner over the uniform run(graph, <Kernel>Options) API every
// kernel header now exposes. ga_cli and bench/fig1_kernel_spectrum dispatch
// through this table instead of hand-rolled per-kernel call sites, so a new
// kernel shows up in both by adding one entry here.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/csr_graph.hpp"
#include "store/graph_view.hpp"

namespace ga::kernels {

class IncrementalKernel;

struct KernelInfo {
  std::string name;          // short id for CLI dispatch, e.g. "bfs"
  std::string display;       // Fig. 1 row label
  std::string kclass;        // taxonomy class (Fig. 1 first column group)
  std::string suites;        // benchmark efforts containing it (B/S)
  std::string output_class;  // output class (Fig. 1 last column group)
  bool directed = false;     // runner wants a directed CSR input
  /// RMAT scale the default run is sized for (heavier kernels get smaller
  /// default inputs; harnesses may build one graph per distinct scale).
  unsigned preferred_scale = 13;
  /// Run with registry-default options; returns a one-line result summary.
  /// Every runner consumes the store's GraphView read path: kernels with a
  /// delta-native engine traverse the merged chain directly, the rest fold
  /// once through view.csr() (cached per version).
  std::function<std::string(const store::GraphView&)> run;
  /// Non-null for kernels with a delta-incremental update path: creates a
  /// fresh epoch-folding runner (kernels/incremental.hpp) with registry
  /// default options. Harnesses seed it with init() on one epoch and fold
  /// later epochs' DeltaSummaries forward with update().
  std::function<std::unique_ptr<IncrementalKernel>()> make_incremental;
};

/// All registered kernels, in Fig. 1 row order.
const std::vector<KernelInfo>& registry();

/// Lookup by short name; nullptr if unknown.
const KernelInfo* find_kernel(std::string_view name);

struct KernelRunOutcome {
  std::string summary;
  double millis = 0.0;
};

/// Timed dispatch through the registry: wraps the runner in a
/// "kernel.<name>" trace span (under the ambient trace context, when the
/// tracer is active) and records kernel.runs_total / kernel.run_us.
KernelRunOutcome run_kernel(const KernelInfo& info, const store::GraphView& v);

/// Convenience for harnesses that own a flat CSR on the stack: wraps it in
/// a borrowed (non-owning) flat view for the duration of the call.
inline KernelRunOutcome run_kernel(const KernelInfo& info,
                                   const graph::CSRGraph& g) {
  return run_kernel(info, store::GraphView::borrowed(g));
}

}  // namespace ga::kernels
