#include "kernels/connected_components.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "engine/traversal.hpp"
#include "kernels/bfs.hpp"

namespace ga::kernels {

namespace {

/// Engine functor: v adopts u's label when smaller (min-label propagation).
struct MinLabelStep {
  std::vector<vid_t>& label;

  bool cond(vid_t) const { return true; }
  bool update(vid_t u, vid_t v, float) {
    if (label[u] < label[v]) {
      label[v] = label[u];
      return true;
    }
    return false;
  }
  bool update_atomic(vid_t u, vid_t v, float) {
    const vid_t lu =
        std::atomic_ref<vid_t>(label[u]).load(std::memory_order_relaxed);
    std::atomic_ref<vid_t> lv(label[v]);
    vid_t cur = lv.load(std::memory_order_relaxed);
    while (lu < cur) {
      if (lv.compare_exchange_weak(cur, lu, std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }
};

ComponentsResult finalize(std::vector<vid_t> label) {
  canonicalize_labels(label);
  ComponentsResult r;
  r.label = std::move(label);
  std::unordered_map<vid_t, vid_t> sizes;
  for (vid_t l : r.label) ++sizes[l];
  r.num_components = static_cast<vid_t>(sizes.size());
  for (const auto& [l, s] : sizes) r.largest_size = std::max(r.largest_size, s);
  return r;
}

}  // namespace

void canonicalize_labels(std::vector<vid_t>& label) {
  // Map each raw label to the minimum vertex id bearing it.
  std::unordered_map<vid_t, vid_t> min_of;
  for (vid_t v = 0; v < label.size(); ++v) {
    auto [it, inserted] = min_of.try_emplace(label[v], v);
    if (!inserted) it->second = std::min(it->second, v);
  }
  for (auto& l : label) l = min_of[l];
}

ComponentsResult wcc_label_propagation(const CSRGraph& g) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> label(n);
  for (vid_t v = 0; v < n; ++v) label[v] = v;

  // Min-label propagation on the engine: each round the frontier of
  // vertices whose label just dropped pushes it to neighbors. Weak
  // connectivity on a directed graph must flow labels both ways, so those
  // rounds also run the transposed edge_map and union the output frontiers.
  engine::Telemetry telem;
  engine::TraversalOptions fwd;
  engine::TraversalOptions rev;
  rev.transpose = true;

  engine::Frontier frontier = engine::Frontier::all(n);
  while (!frontier.empty()) {
    MinLabelStep step{label};
    engine::Frontier next = engine::edge_map(g, frontier, step, fwd, &telem);
    if (g.directed()) {
      engine::Frontier back = engine::edge_map(g, frontier, step, rev, &telem);
      next.merge(back);
    }
    frontier = std::move(next);
  }
  ComponentsResult r = finalize(std::move(label));
  r.steps = telem.steps();
  return r;
}

ComponentsResult wcc_label_propagation(const store::GraphView& g) {
  if (g.flat()) return wcc_label_propagation(g.base());
  if (g.directed()) {
    // Weak connectivity on a directed graph needs the transposed sweep,
    // which a delta chain cannot serve; fold once (cached) and recurse.
    return wcc_label_propagation(g.csr());
  }
  const vid_t n = g.num_vertices();
  std::vector<vid_t> label(n);
  for (vid_t v = 0; v < n; ++v) label[v] = v;
  engine::Telemetry telem;
  engine::TraversalOptions fwd;
  engine::Frontier frontier = engine::Frontier::all(n);
  while (!frontier.empty()) {
    MinLabelStep step{label};
    frontier = engine::edge_map(g, frontier, step, fwd, &telem);
  }
  ComponentsResult r = finalize(std::move(label));
  r.steps = telem.steps();
  return r;
}

ComponentsResult wcc_bfs(const CSRGraph& g) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> label(n, kInvalidVid);
  std::vector<vid_t> stack;
  for (vid_t s = 0; s < n; ++s) {
    if (label[s] != kInvalidVid) continue;
    label[s] = s;
    stack.push_back(s);
    while (!stack.empty()) {
      const vid_t u = stack.back();
      stack.pop_back();
      for (vid_t v : g.out_neighbors(u)) {
        if (label[v] == kInvalidVid) {
          label[v] = s;
          stack.push_back(v);
        }
      }
    }
  }
  return finalize(std::move(label));
}

UnionFind::UnionFind(vid_t n) { reset(n); }

void UnionFind::reset(vid_t n) {
  parent_.resize(n);
  size_.assign(n, 1);
  for (vid_t i = 0; i < n; ++i) parent_[i] = i;
  sets_ = n;
}

vid_t UnionFind::find(vid_t x) {
  GA_ASSERT(x < parent_.size());
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(vid_t a, vid_t b) {
  vid_t ra = find(a), rb = find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --sets_;
  return true;
}

ComponentsResult wcc_union_find(const CSRGraph& g) {
  const vid_t n = g.num_vertices();
  UnionFind uf(n);
  for (vid_t u = 0; u < n; ++u) {
    for (vid_t v : g.out_neighbors(u)) {
      if (u < v) uf.unite(u, v);
    }
  }
  std::vector<vid_t> label(n);
  for (vid_t v = 0; v < n; ++v) label[v] = uf.find(v);
  return finalize(std::move(label));
}

}  // namespace ga::kernels
