#include "kernels/connected_components.hpp"

#include <algorithm>
#include <unordered_map>

#include "kernels/bfs.hpp"

namespace ga::kernels {

namespace {

ComponentsResult finalize(std::vector<vid_t> label) {
  canonicalize_labels(label);
  ComponentsResult r;
  r.label = std::move(label);
  std::unordered_map<vid_t, vid_t> sizes;
  for (vid_t l : r.label) ++sizes[l];
  r.num_components = static_cast<vid_t>(sizes.size());
  for (const auto& [l, s] : sizes) r.largest_size = std::max(r.largest_size, s);
  return r;
}

}  // namespace

void canonicalize_labels(std::vector<vid_t>& label) {
  // Map each raw label to the minimum vertex id bearing it.
  std::unordered_map<vid_t, vid_t> min_of;
  for (vid_t v = 0; v < label.size(); ++v) {
    auto [it, inserted] = min_of.try_emplace(label[v], v);
    if (!inserted) it->second = std::min(it->second, v);
  }
  for (auto& l : label) l = min_of[l];
}

ComponentsResult wcc_label_propagation(const CSRGraph& g) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> label(n);
  for (vid_t v = 0; v < n; ++v) label[v] = v;
  bool changed = true;
  while (changed) {
    changed = false;
    // Hook: adopt the smaller neighbor label.
    for (vid_t u = 0; u < n; ++u) {
      for (vid_t v : g.out_neighbors(u)) {
        if (label[v] < label[u]) {
          label[u] = label[v];
          changed = true;
        } else if (label[u] < label[v]) {
          label[v] = label[u];
          changed = true;
        }
      }
    }
    // Compress: pointer jumping until labels are fixpoints.
    for (vid_t v = 0; v < n; ++v) {
      while (label[label[v]] != label[v]) label[v] = label[label[v]];
    }
  }
  return finalize(std::move(label));
}

ComponentsResult wcc_bfs(const CSRGraph& g) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> label(n, kInvalidVid);
  std::vector<vid_t> stack;
  for (vid_t s = 0; s < n; ++s) {
    if (label[s] != kInvalidVid) continue;
    label[s] = s;
    stack.push_back(s);
    while (!stack.empty()) {
      const vid_t u = stack.back();
      stack.pop_back();
      for (vid_t v : g.out_neighbors(u)) {
        if (label[v] == kInvalidVid) {
          label[v] = s;
          stack.push_back(v);
        }
      }
    }
  }
  return finalize(std::move(label));
}

UnionFind::UnionFind(vid_t n) { reset(n); }

void UnionFind::reset(vid_t n) {
  parent_.resize(n);
  size_.assign(n, 1);
  for (vid_t i = 0; i < n; ++i) parent_[i] = i;
  sets_ = n;
}

vid_t UnionFind::find(vid_t x) {
  GA_ASSERT(x < parent_.size());
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(vid_t a, vid_t b) {
  vid_t ra = find(a), rb = find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --sets_;
  return true;
}

ComponentsResult wcc_union_find(const CSRGraph& g) {
  const vid_t n = g.num_vertices();
  UnionFind uf(n);
  for (vid_t u = 0; u < n; ++u) {
    for (vid_t v : g.out_neighbors(u)) {
      if (u < v) uf.unite(u, v);
    }
  }
  std::vector<vid_t> label(n);
  for (vid_t v = 0; v < n; ++v) label[v] = uf.find(v);
  return finalize(std::move(label));
}

}  // namespace ga::kernels
