// Graph Contraction (Fig. 1 row "GC"): collapse each vertex group (a
// community, component, or partition part) into a super-vertex, producing
// the "higher level view" the paper describes. Edge multiplicities become
// super-edge weights; intra-group edges become self-mass (dropped from the
// CSR but reported).
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"

namespace ga::kernels {

using graph::CSRGraph;

struct ContractionResult {
  CSRGraph contracted;                 // weighted super-graph
  std::vector<vid_t> group_of;         // input vertex -> super vertex
  std::vector<vid_t> group_size;       // super vertex -> member count
  std::vector<double> self_weight;     // super vertex -> intra-group arc weight
  vid_t num_groups = 0;
};

/// `group` maps each vertex to an arbitrary group id (need not be dense).
ContractionResult contract(const CSRGraph& g, const std::vector<vid_t>& group);

/// Uniform kernel entry point (see kernels/registry.hpp). An empty group
/// map contracts by community_label_propagation — the paper's canonical
/// "detect communities, then contract" pipeline.
struct ContractionOptions {
  std::vector<vid_t> group;  // vertex -> group id; empty = auto-detect
  std::uint64_t seed = 1;    // community detection seed when auto-detecting
};

ContractionResult run(const CSRGraph& g, const ContractionOptions& opts);

}  // namespace ga::kernels
