#include "kernels/verify.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace ga::kernels {

namespace {

std::string at_vertex(const char* what, vid_t v) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s (vertex %u)", what, v);
  return buf;
}

}  // namespace

VerifyOutcome verify_bfs(const graph::CSRGraph& g, vid_t source,
                         const BfsResult& r) {
  const vid_t n = g.num_vertices();
  if (r.dist.size() != n || r.parent.size() != n) {
    return VerifyOutcome::fail("bfs: result arrays sized != n");
  }
  if (r.dist[source] != 0 || r.parent[source] != source) {
    return VerifyOutcome::fail("bfs: source not its own root at dist 0");
  }
  std::uint64_t reached = 0;
  for (vid_t v = 0; v < n; ++v) {
    const bool has_dist = r.dist[v] != kInfDist;
    if (has_dist != (r.parent[v] != kInvalidVid)) {
      return VerifyOutcome::fail(
          at_vertex("bfs: dist/parent reachability disagree", v));
    }
    if (!has_dist) continue;
    ++reached;
    if (v != source) {
      const vid_t p = r.parent[v];
      if (p >= n || r.dist[p] == kInfDist) {
        return VerifyOutcome::fail(at_vertex("bfs: unreached parent", v));
      }
      if (r.dist[v] != r.dist[p] + 1) {
        return VerifyOutcome::fail(
            at_vertex("bfs: tree arc does not drop one level", v));
      }
      if (!g.has_edge(p, v)) {
        return VerifyOutcome::fail(
            at_vertex("bfs: parent arc not in graph", v));
      }
    }
    // No arc may skip a level: dist[w] <= dist[v] + 1 for every arc v->w,
    // and a reached vertex cannot have an unreached out-neighbor on an
    // undirected graph (the mirrored arc would have discovered it).
    for (vid_t w : g.out_neighbors(v)) {
      if (r.dist[w] == kInfDist) {
        if (!g.directed()) {
          return VerifyOutcome::fail(
              at_vertex("bfs: unreached neighbor of reached vertex", v));
        }
        continue;
      }
      if (r.dist[w] > r.dist[v] + 1) {
        return VerifyOutcome::fail(at_vertex("bfs: arc skips a level", v));
      }
    }
  }
  if (reached != r.reached) {
    return VerifyOutcome::fail("bfs: reached count mismatch");
  }
  return VerifyOutcome::pass();
}

VerifyOutcome verify_components(const graph::CSRGraph& g,
                                const ComponentsResult& r) {
  const vid_t n = g.num_vertices();
  if (r.label.size() != n) {
    return VerifyOutcome::fail("cc: label array sized != n");
  }
  // 1. No arc may cross labels (no under-merging).
  for (vid_t u = 0; u < n; ++u) {
    for (vid_t v : g.out_neighbors(u)) {
      if (r.label[u] != r.label[v]) {
        return VerifyOutcome::fail(at_vertex("cc: arc crosses labels", u));
      }
    }
  }
  // 2. The partition matches a reference union-find (the path-halving one
  // connected_components.hpp exports) exactly — no over-merging: same
  // label <=> same union-find root.
  UnionFind uf(n);
  for (vid_t u = 0; u < n; ++u) {
    for (vid_t v : g.out_neighbors(u)) uf.unite(u, v);
  }
  // Map each union-find root to the label of its first-seen member; every
  // later member must agree, and distinct roots must carry distinct
  // labels (checked via the label of the root's representative).
  std::vector<vid_t> root_label(n, kInvalidVid), label_root(n, kInvalidVid);
  vid_t distinct = 0;
  for (vid_t v = 0; v < n; ++v) {
    const vid_t root = uf.find(v);
    const vid_t lbl = r.label[v];
    if (lbl >= n) {
      return VerifyOutcome::fail(at_vertex("cc: label out of range", v));
    }
    if (root_label[root] == kInvalidVid) {
      root_label[root] = lbl;
      if (label_root[lbl] != kInvalidVid) {
        // A second component reusing this label would alias two
        // disconnected vertex sets under one id.
        return VerifyOutcome::fail(
            at_vertex("cc: label shared across components", v));
      }
      label_root[lbl] = root;
      ++distinct;
    } else if (root_label[root] != lbl) {
      return VerifyOutcome::fail(
          at_vertex("cc: connected vertices labeled apart", v));
    }
  }
  if (distinct != r.num_components) {
    return VerifyOutcome::fail("cc: component count mismatch");
  }
  return VerifyOutcome::pass();
}

VerifyOutcome verify_pagerank(const graph::CSRGraph& g,
                              const PageRankResult& r, double tolerance) {
  if (r.rank.size() != g.num_vertices()) {
    return VerifyOutcome::fail("pagerank: rank array sized != n");
  }
  double sum = 0.0;
  for (vid_t v = 0; v < r.rank.size(); ++v) {
    const double x = r.rank[v];
    if (!std::isfinite(x) || x < 0.0) {
      return VerifyOutcome::fail(
          at_vertex("pagerank: non-finite or negative rank", v));
    }
    sum += x;
  }
  if (std::abs(sum - 1.0) > tolerance) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "pagerank: mass sums to %.8f", sum);
    return VerifyOutcome::fail(buf);
  }
  return VerifyOutcome::pass();
}

VerifyOutcome verify_sssp(const graph::CSRGraph& g, vid_t source,
                          const SsspResult& r) {
  const vid_t n = g.num_vertices();
  if (r.dist.size() != n || r.parent.size() != n) {
    return VerifyOutcome::fail("sssp: result arrays sized != n");
  }
  if (r.dist[source] != 0.0f || r.parent[source] != source) {
    return VerifyOutcome::fail("sssp: source not its own root at dist 0");
  }
  for (vid_t u = 0; u < n; ++u) {
    const bool has_dist = r.dist[u] != kInfWeight;
    if (has_dist != (r.parent[u] != kInvalidVid)) {
      return VerifyOutcome::fail(
          at_vertex("sssp: dist/parent reachability disagree", u));
    }
    if (!has_dist) continue;
    // Triangle inequality on every out-arc. A small relative epsilon
    // absorbs float summation-order differences between the kernel under
    // test and this re-derivation.
    const auto nbrs = g.out_neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vid_t v = nbrs[i];
      const float w = g.weighted() ? g.out_weights(u)[i] : 1.0f;
      const float bound = r.dist[u] + w;
      if (r.dist[v] > bound + 1e-4f * std::max(1.0f, bound)) {
        return VerifyOutcome::fail(
            at_vertex("sssp: arc violates triangle inequality", u));
      }
    }
    if (u != source) {
      const vid_t p = r.parent[u];
      if (p >= n || r.dist[p] == kInfWeight) {
        return VerifyOutcome::fail(at_vertex("sssp: unreached parent", u));
      }
      if (!g.has_edge(p, u)) {
        return VerifyOutcome::fail(
            at_vertex("sssp: parent arc not in graph", u));
      }
      const float along = r.dist[p] + g.edge_weight(p, u);
      if (std::abs(r.dist[u] - along) >
          1e-4f * std::max(1.0f, std::abs(along))) {
        return VerifyOutcome::fail(
            at_vertex("sssp: distance does not reproduce along parent", u));
      }
    }
  }
  return VerifyOutcome::pass();
}

}  // namespace ga::kernels
