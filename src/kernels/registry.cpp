#include "kernels/registry.hpp"

#include <algorithm>
#include <cstdio>

#include "core/timer.hpp"
#include "kernels/apsp.hpp"
#include "kernels/betweenness.hpp"
#include "kernels/bfs.hpp"
#include "kernels/clustering.hpp"
#include "kernels/community.hpp"
#include "kernels/connected_components.hpp"
#include "kernels/contraction.hpp"
#include "kernels/geo_temporal.hpp"
#include "kernels/incremental.hpp"
#include "kernels/jaccard.hpp"
#include "kernels/kcore.hpp"
#include "kernels/ktruss.hpp"
#include "kernels/mis.hpp"
#include "kernels/pagerank.hpp"
#include "kernels/partition.hpp"
#include "kernels/scc.hpp"
#include "kernels/search_largest.hpp"
#include "kernels/sssp.hpp"
#include "kernels/subgraph_iso.hpp"
#include "kernels/triangles.hpp"
#include "kernels/weighted_jaccard.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ga::kernels {

namespace {

std::string u64(std::uint64_t v) { return std::to_string(v); }

std::vector<KernelInfo> make_registry() {
  std::vector<KernelInfo> r;
  r.push_back({"bfs", "BFS: Breadth First Search", "connectedness",
               "Graph500,GraphBLAS,GC,GAP,HPC-GA(B)", "vertex property",
               false, 13, [](const KernelRunSpec& spec) {
                 const store::GraphView& v = spec.view;
                 const vid_t src =
                     v.num_vertices() ? spec.seed % v.num_vertices() : 0;
                 return "reached=" +
                        u64(run(v, BfsOptions{.source = src}).reached);
               }});
  r.push_back({"sssp", "SSSP: Single Source Shortest Path", "connectedness",
               "Firehose(B),GC(B/S),GAP(B)", "vertex property + events",
               false, 13, [](const KernelRunSpec& spec) {
                 const store::GraphView& v = spec.view;
                 const vid_t src =
                     v.num_vertices() ? spec.seed % v.num_vertices() : 0;
                 const auto res = run(
                     v, SsspOptions{.source = src,
                                    .algo = SsspAlgo::kBellmanFord});
                 std::uint64_t reached = 0;
                 for (float d : res.dist) reached += d != kInfWeight;
                 return "reached=" + u64(reached);
               }});
  r.push_back({"apsp", "APSP: All Pairs Shortest Path", "connectedness",
               "GAP(B)", "O(|V|) list per source", false, 9,
               [](const KernelRunSpec& spec) {
                 const store::GraphView& v = spec.view;
                 const CSRGraph& g = v.csr();
                 const auto res = run(g, ApspOptions{});
                 return "diameter=" +
                        std::to_string(
                            static_cast<long long>(exact_diameter(res)));
               }});
  r.push_back({"wcc", "CCW: Weakly Connected Components", "connectedness",
               "GAP(B),HPC-GA(B),K&G(S)", "vertex property + O(|V|) list",
               false, 13, [](const KernelRunSpec& spec) {
                 const store::GraphView& v = spec.view;
                 return "components=" +
                        u64(run(v, ComponentsOptions{}).num_components);
               }});
  r.push_back({"scc", "CCS: Strongly Connected Components", "connectedness",
               "GAP(B),HPC-GA(B)", "O(|V|) list", true, 12,
               [](const KernelRunSpec& spec) {
                 const store::GraphView& v = spec.view;
                 const CSRGraph& g = v.csr();
                 return "components=" + u64(run(g, SccOptions{}).num_components);
               }});
  r.push_back({"pagerank", "PR: PageRank", "centrality", "GC(B)",
               "vertex property", false, 13, [](const KernelRunSpec& spec) {
                 const store::GraphView& v = spec.view;
                 const auto res = run(v, PageRankOptions{});
                 const auto top = pagerank_topk(res, 1);
                 return "top vertex=" + u64(top.empty() ? 0 : top[0].second);
               }});
  r.push_back({"betweenness", "BC: Betweenness Centrality", "centrality",
               "Graph500(B),GC(B),HPC-GA(B),K&G(S)", "vertex property",
               false, 13, [](const KernelRunSpec& spec) {
                 const store::GraphView& v = spec.view;
                 const CSRGraph& g = v.csr();
                 const auto res = run(g, BetweennessOptions{.num_pivots = 32});
                 double mx = 0;
                 for (double x : res.centrality) mx = std::max(mx, x);
                 return "max(sampled)=" +
                        std::to_string(static_cast<long long>(mx));
               }});
  r.push_back({"clustering", "CCO: Clustering Coefficients", "clustering",
               "HPC-GA(B),K&G(S)", "vertex property", false, 13,
               [](const KernelRunSpec& spec) {
                 const store::GraphView& v = spec.view;
                 const CSRGraph& g = v.csr();
                 char buf[48];
                 std::snprintf(buf, sizeof(buf), "avg=%.6f",
                               run(g, ClusteringOptions{.per_vertex = false})
                                   .average);
                 return std::string(buf);
               }});
  r.push_back({"community", "CD: Community Detection",
               "contraction/centrality", "HPC-GA(S)",
               "vertex property + O(|V|) list", false, 13,
               [](const KernelRunSpec& spec) {
                 const store::GraphView& v = spec.view;
                 const CSRGraph& g = v.csr();
                 return "communities=" +
                        u64(run(g, CommunityOptions{}).num_communities);
               }});
  r.push_back({"contraction", "GC: Graph Contraction", "contraction",
               "GC(B),GAP(B)", "global value (super-graph)", false, 13,
               [](const KernelRunSpec& spec) {
                 const store::GraphView& v = spec.view;
                 const CSRGraph& g = v.csr();
                 return "super-vertices=" +
                        u64(run(g, ContractionOptions{}).num_groups);
               }});
  r.push_back({"partition", "GP: Graph Partitioning", "contraction",
               "GraphBLAS(B/S),GAP(B)", "global value", false, 13,
               [](const KernelRunSpec& spec) {
                 const store::GraphView& v = spec.view;
                 const CSRGraph& g = v.csr();
                 return "cut=" + u64(run(g, PartitionOptions{}).cut_edges);
               }});
  r.push_back({"triangles", "GTC: Global Triangle Counting",
               "subgraph isomorphism", "GC(B)", "global value", false, 13,
               [](const KernelRunSpec& spec) {
                 const store::GraphView& v = spec.view;
                 const CSRGraph& g = v.csr();
                 return "triangles=" + u64(run(g, TrianglesOptions{}).total);
               }});
  r.push_back({"subgraph_iso", "SI: General Subgraph Isomorphism",
               "subgraph isomorphism", "Graph500(B/S)",
               "O(|V|^k) list (top-k)", false, 10, [](const KernelRunSpec& spec) {
                 const store::GraphView& v = spec.view;
                 const CSRGraph& g = v.csr();
                 return "4-cycle embeddings=" +
                        u64(run(g, SubgraphIsoRunOptions{.limit = 100000})
                                .embeddings);
               }});
  r.push_back({"jaccard", "Jaccard (batch top-k)", "clustering",
               "standalone(B/S)", "O(|V|^k) list (top-k)", false, 13,
               [](const KernelRunSpec& spec) {
                 const store::GraphView& v = spec.view;
                 const CSRGraph& g = v.csr();
                 const auto res = run(g, JaccardOptions{});
                 char buf[48];
                 std::snprintf(buf, sizeof(buf), "max J=%.6f",
                               res.pairs.empty() ? 0.0
                                                 : res.pairs[0].coefficient);
                 return std::string(buf);
               }});
  r.push_back({"weighted_jaccard", "Jaccard (weighted/Ruzicka query)",
               "clustering", "standalone(B/S)", "O(|V|) list per query",
               false, 13, [](const KernelRunSpec& spec) {
                 const store::GraphView& v = spec.view;
                 const CSRGraph& g = v.csr();
                 const auto res =
                     run(g, WeightedJaccardOptions{.query = 0,
                                                   .threshold = 0.1});
                 return u64(res.pairs.size()) + " matches";
               }});
  r.push_back({"kcore", "k-core decomposition", "subgraph isomorphism",
               "GAP(B)", "vertex property", false, 13,
               [](const KernelRunSpec& spec) {
                 const store::GraphView& v = spec.view;
                 const CSRGraph& g = v.csr();
                 return "degeneracy=" +
                        std::to_string(run(g, KCoreOptions{}).degeneracy);
               }});
  r.push_back({"ktruss", "k-truss decomposition", "subgraph isomorphism",
               "GC(B)", "per-edge property", false, 11,
               [](const KernelRunSpec& spec) {
                 const store::GraphView& v = spec.view;
                 const CSRGraph& g = v.csr();
                 return "max truss=" +
                        std::to_string(run(g, KTrussOptions{}).max_truss);
               }});
  r.push_back({"geo_temporal", "Geo & Temporal Correlation", "clustering",
               "K&G(B/S)", "O(1) events", false, 13, [](const KernelRunSpec& spec) {
                 const store::GraphView& v = spec.view;
                 const CSRGraph& g = v.csr();
                 const auto res = run(
                     g, GeoTemporalOptions{
                            .stream = {.count = 50000,
                                       .arena = 300.0,
                                       .num_bursts = 10,
                                       .seed = 4},
                            .params = {.radius = 1.0, .window = 5}});
                 return u64(res.alerts) + " hotspot alerts";
               }});
  r.push_back({"mis", "MIS: Maximally Independent Set", "other",
               "Firehose(B),GC(B)", "O(|V|) list", false, 13,
               [](const KernelRunSpec& spec) {
                 const store::GraphView& v = spec.view;
                 const CSRGraph& g = v.csr();
                 return "|set|=" + u64(run(g, MisOptions{}).members.size());
               }});
  r.push_back({"search_largest", "Search for Largest", "other", "GC(B)",
               "O(1) events", false, 13, [](const KernelRunSpec& spec) {
                 const store::GraphView& v = spec.view;
                 const CSRGraph& g = v.csr();
                 const auto res = run(g, SearchLargestOptions{});
                 return "max degree=" +
                        std::to_string(static_cast<long long>(
                            res.top.empty() ? 0.0 : res.top[0].score));
               }});

  // Kernels with a delta-incremental update path (kernels/incremental.hpp).
  for (KernelInfo& k : r) {
    if (k.name == "pagerank") {
      k.make_incremental = [] { return make_incremental_pagerank(); };
    } else if (k.name == "wcc") {
      k.make_incremental = [] { return make_incremental_wcc(); };
    } else if (k.name == "jaccard") {
      // Point-query form anchored at vertex 0 with a low threshold — the
      // same shape the serving layer's kJaccardNeighbors queries use.
      k.make_incremental = [] { return make_incremental_jaccard(0, 0.1); };
    }
  }
  return r;
}

}  // namespace

const std::vector<KernelInfo>& registry() {
  static const std::vector<KernelInfo> kRegistry = make_registry();
  return kRegistry;
}

const KernelInfo* find_kernel(std::string_view name) {
  for (const KernelInfo& k : registry()) {
    if (k.name == name) return &k;
  }
  return nullptr;
}

KernelRunOutcome run_kernel(const KernelInfo& info,
                            const KernelRunSpec& spec) {
  obs::ScopedSpan span("kernel." + info.name,
                       spec.trace.valid() ? spec.trace : obs::ambient());
  obs::AmbientScope ambient(span.context());  // engine steps nest under us
  core::WallTimer t;
  KernelRunOutcome out;
  out.summary = info.run(spec);
  out.millis = t.millis();
  span.set_detail(out.summary);
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("kernel.runs_total").add();
    reg.histogram("kernel.run_us").observe(out.millis * 1000.0);
  }
  return out;
}

}  // namespace ga::kernels
