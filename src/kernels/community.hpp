// Community Detection (Fig. 1 row "CD"): asynchronous label propagation
// (fast, used in streaming triggers) and a single-level Louvain-style
// modularity optimizer with greedy vertex moves (quality reference).
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"

namespace ga::kernels {

using graph::CSRGraph;

struct CommunityResult {
  std::vector<vid_t> community;  // community id per vertex (densely labeled)
  vid_t num_communities = 0;
  double modularity = 0.0;
  unsigned iterations = 0;
};

/// Newman modularity of a given partition.
double modularity(const CSRGraph& g, const std::vector<vid_t>& community);

/// Asynchronous label propagation; deterministic given the seed (vertex
/// visit order is shuffled per round).
CommunityResult community_label_propagation(const CSRGraph& g,
                                            unsigned max_rounds = 32,
                                            std::uint64_t seed = 1);

/// Greedy modularity vertex-move pass (Louvain phase 1), iterated to a
/// local optimum.
CommunityResult community_louvain_phase1(const CSRGraph& g,
                                         unsigned max_rounds = 32);

/// Full multilevel Louvain: phase-1 moves, contract communities into a
/// weighted super-graph (tracking intra-community self-mass), repeat until
/// modularity stops improving; labels are mapped back to the input graph.
CommunityResult community_louvain(const CSRGraph& g, unsigned max_levels = 10,
                                  unsigned max_rounds = 32);

enum class CommunityAlgo { kLabelPropagation, kLouvain, kLouvainPhase1 };

/// Uniform kernel entry point (see kernels/registry.hpp).
struct CommunityOptions {
  CommunityAlgo algo = CommunityAlgo::kLabelPropagation;
  unsigned max_rounds = 32;
  unsigned max_levels = 10;  // Louvain only
  std::uint64_t seed = 1;    // label propagation only
};

inline CommunityResult run(const CSRGraph& g, const CommunityOptions& opts) {
  switch (opts.algo) {
    case CommunityAlgo::kLouvain:
      return community_louvain(g, opts.max_levels, opts.max_rounds);
    case CommunityAlgo::kLouvainPhase1:
      return community_louvain_phase1(g, opts.max_rounds);
    default:
      return community_label_propagation(g, opts.max_rounds, opts.seed);
  }
}

}  // namespace ga::kernels
