// GAP-style per-trial output verification. The GAP benchmark protocol
// runs a verifier over every trial's output — not against a golden file,
// but against graph-local invariants strong enough that any wrong answer
// fails: BFS parent trees are walked edge by edge, component labels are
// checked for exact agreement with a reference union-find, PageRank mass
// must sum to 1, SSSP distances must satisfy the triangle inequality on
// every arc and reproduce along the parent tree. The bench harness calls
// these after each trial; tests/test_verify.cpp runs them (ctest label
// `verify`) against the optimized kernels on Kron and uniform-random
// inputs, plus corrupted outputs to prove the verifiers actually reject.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "kernels/bfs.hpp"
#include "kernels/connected_components.hpp"
#include "kernels/pagerank.hpp"
#include "kernels/sssp.hpp"

namespace ga::kernels {

/// Outcome of one verification: ok plus a diagnostic for the first
/// violated invariant (empty when ok).
struct VerifyOutcome {
  bool ok = true;
  std::string error;

  static VerifyOutcome pass() { return {}; }
  static VerifyOutcome fail(std::string msg) {
    return {false, std::move(msg)};
  }
};

/// BFS parent-tree check (GAP BFSVerifier shape): dist/parent agree on
/// reachability, the source is its own root at distance 0, every tree arc
/// exists in the graph and drops exactly one level, no graph arc skips a
/// level, and the reached count matches.
VerifyOutcome verify_bfs(const graph::CSRGraph& g, vid_t source,
                         const BfsResult& r);

/// Component-label check (GAP CCVerifier shape): every arc joins two
/// vertices of the same label, the label partition exactly matches a
/// reference union-find over all arcs (no under- or over-merging), and
/// num_components matches the number of distinct labels.
VerifyOutcome verify_components(const graph::CSRGraph& g,
                                const ComponentsResult& r);

/// PageRank mass conservation (GAP PRVerifier shape): ranks are finite,
/// non-negative, and sum to 1 within `tolerance`.
VerifyOutcome verify_pagerank(const graph::CSRGraph& g,
                              const PageRankResult& r,
                              double tolerance = 1e-4);

/// SSSP distance check: dist[source] == 0, dist[v] <= dist[u] + w on
/// every arc (triangle inequality), each reached vertex's distance
/// reproduces along its parent arc within float tolerance, and
/// reachability agrees between dist and parent.
VerifyOutcome verify_sssp(const graph::CSRGraph& g, vid_t source,
                          const SsspResult& r);

}  // namespace ga::kernels
