#include "kernels/geo_temporal.hpp"

#include <algorithm>
#include <cmath>

#include "core/prng.hpp"
#include "kernels/connected_components.hpp"

namespace ga::kernels {

namespace {

bool correlated(const GeoEvent& a, const GeoEvent& b,
                const CorrelationParams& p) {
  if (std::llabs(a.t - b.t) > p.window) return false;
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy <= p.radius * p.radius;
}

/// Spatial hash: cell key from integer cell coordinates.
std::int64_t cell_key(std::int64_t cx, std::int64_t cy) {
  return (cx << 32) ^ (cy & 0xffffffffLL);
}

}  // namespace

std::vector<std::pair<std::uint32_t, std::uint32_t>> correlated_pairs(
    const std::vector<GeoEvent>& events, const CorrelationParams& p) {
  GA_CHECK(p.radius > 0.0 && p.window >= 0, "bad correlation params");
  // Bucket events into radius-sized cells; a pair can only correlate if
  // their cells are <= 1 apart in each dimension.
  std::unordered_map<std::int64_t, std::vector<std::uint32_t>> grid;
  const auto cell = [&](const GeoEvent& e) {
    return std::make_pair(
        static_cast<std::int64_t>(std::floor(e.x / p.radius)),
        static_cast<std::int64_t>(std::floor(e.y / p.radius)));
  };
  for (std::uint32_t i = 0; i < events.size(); ++i) {
    const auto [cx, cy] = cell(events[i]);
    grid[cell_key(cx, cy)].push_back(i);
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  for (std::uint32_t i = 0; i < events.size(); ++i) {
    const auto [cx, cy] = cell(events[i]);
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        const auto it = grid.find(cell_key(cx + dx, cy + dy));
        if (it == grid.end()) continue;
        for (std::uint32_t j : it->second) {
          if (j <= i) continue;  // each unordered pair once
          if (correlated(events[i], events[j], p)) out.emplace_back(i, j);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

CorrelationClusters correlation_clusters(const std::vector<GeoEvent>& events,
                                         const CorrelationParams& p) {
  const auto pairs = correlated_pairs(events, p);
  UnionFind uf(static_cast<vid_t>(events.size()));
  for (const auto& [i, j] : pairs) uf.unite(i, j);
  CorrelationClusters out;
  out.cluster.resize(events.size());
  std::unordered_map<vid_t, std::uint32_t> remap;
  std::unordered_map<std::uint32_t, std::uint32_t> sizes;
  for (std::uint32_t i = 0; i < events.size(); ++i) {
    const vid_t root = uf.find(i);
    auto [it, inserted] = remap.try_emplace(root, out.num_clusters);
    if (inserted) ++out.num_clusters;
    out.cluster[i] = it->second;
    out.largest = std::max(out.largest, ++sizes[it->second]);
  }
  return out;
}

StreamingGeoCorrelator::StreamingGeoCorrelator(const CorrelationParams& p,
                                               std::size_t density_threshold)
    : p_(p), threshold_(density_threshold) {
  GA_CHECK(p.radius > 0.0 && p.window >= 0, "bad correlation params");
  GA_CHECK(density_threshold > 0, "density threshold > 0");
}

std::int64_t StreamingGeoCorrelator::cell_of(double x, double y) const {
  return cell_key(static_cast<std::int64_t>(std::floor(x / p_.radius)),
                  static_cast<std::int64_t>(std::floor(y / p_.radius)));
}

void StreamingGeoCorrelator::expire(std::int64_t now) {
  // Lazy expiry: drop events older than the window from every touched
  // cell; full sweep amortized by only scanning on ingest into a cell.
  for (auto it = grid_.begin(); it != grid_.end();) {
    auto& evs = it->second.events;
    const auto before = evs.size();
    std::erase_if(evs, [&](const GeoEvent& e) { return now - e.t > p_.window; });
    live_ -= before - evs.size();
    if (evs.empty()) {
      it = grid_.erase(it);
    } else {
      ++it;
    }
  }
}

bool StreamingGeoCorrelator::ingest(const GeoEvent& e) {
  GA_CHECK(e.t >= last_ts_ || last_ts_ == std::numeric_limits<std::int64_t>::min(),
           "events must arrive in time order");
  last_ts_ = e.t;
  expire(e.t);

  // Count correlated live predecessors in the 3x3 cell neighborhood.
  const auto cx = static_cast<std::int64_t>(std::floor(e.x / p_.radius));
  const auto cy = static_cast<std::int64_t>(std::floor(e.y / p_.radius));
  std::size_t neighbors = 0;
  for (std::int64_t dx = -1; dx <= 1; ++dx) {
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      const auto it = grid_.find(cell_key(cx + dx, cy + dy));
      if (it == grid_.end()) continue;
      for (const GeoEvent& other : it->second.events) {
        if (correlated(e, other, p_)) ++neighbors;
      }
    }
  }
  grid_[cell_key(cx, cy)].events.push_back(e);
  ++live_;
  if (neighbors >= threshold_) {
    alerts_.push_back({e, neighbors});
    return true;
  }
  return false;
}

std::vector<GeoEvent> generate_geo_stream(const GeoStreamOptions& opts) {
  core::Xoshiro256 rng(opts.seed);
  std::vector<GeoEvent> events;
  events.reserve(opts.count + opts.num_bursts * opts.burst_size);
  std::int64_t t = 0;
  // Background noise.
  for (std::size_t i = 0; i < opts.count; ++i) {
    t += 1;
    events.push_back({rng.next_double() * opts.arena,
                      rng.next_double() * opts.arena, t, i});
  }
  // Planted bursts at random times/places.
  std::uint64_t id = opts.count;
  for (std::size_t b = 0; b < opts.num_bursts; ++b) {
    const double bx = rng.next_double() * opts.arena;
    const double by = rng.next_double() * opts.arena;
    const auto bt = static_cast<std::int64_t>(rng.next_below(
        static_cast<std::uint64_t>(t > 0 ? t : 1)));
    for (std::size_t i = 0; i < opts.burst_size; ++i) {
      events.push_back(
          {bx + (rng.next_double() - 0.5) * opts.burst_radius,
           by + (rng.next_double() - 0.5) * opts.burst_radius,
           bt + static_cast<std::int64_t>(rng.next_below(
               static_cast<std::uint64_t>(opts.burst_span))),
           id++});
    }
  }
  // Deliver in time order (streaming contract).
  std::stable_sort(events.begin(), events.end(),
                   [](const GeoEvent& a, const GeoEvent& b) { return a.t < b.t; });
  return events;
}

GeoTemporalResult run(const graph::CSRGraph& g,
                      const GeoTemporalOptions& opts) {
  GeoStreamOptions stream = opts.stream;
  if (stream.count == 0) stream.count = g.num_vertices();
  const auto events = generate_geo_stream(stream);
  GeoTemporalResult r;
  r.events = events.size();
  const auto clusters = correlation_clusters(events, opts.params);
  r.clusters = clusters.num_clusters;
  r.largest_cluster = clusters.largest;
  StreamingGeoCorrelator det(opts.params, opts.alert_threshold);
  for (const auto& e : events) det.ingest(e);
  r.alerts = det.alerts().size();
  return r;
}

}  // namespace ga::kernels
