// Triangle counting and listing (Fig. 1 rows "GTC" and "TL") — the
// best-known subgraph-isomorphism kernels. Engines: node-iterator
// (merge-intersection over sorted adjacency) and forward/edge-iterator
// over a degree-ordered orientation, which bounds work by arboricity and
// is the Graph Challenge standard.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/csr_graph.hpp"

namespace ga::kernels {

using graph::CSRGraph;

struct Triangle {
  vid_t a, b, c;  // a < b < c
};

/// Global triangle count, node-iterator algorithm. Undirected graphs only.
std::uint64_t triangle_count_node_iterator(const CSRGraph& g);

/// Global triangle count, degree-ordered forward algorithm (faster on
/// power-law graphs).
std::uint64_t triangle_count_forward(const CSRGraph& g);

/// Per-vertex triangle counts (each triangle adds 1 to all three corners).
std::vector<std::uint64_t> triangle_counts_per_vertex(const CSRGraph& g);

/// Enumerate every triangle once (a<b<c) through the callback.
void triangle_list(const CSRGraph& g,
                   const std::function<void(const Triangle&)>& emit);

/// Size of sorted-range intersection (shared helper for Jaccard/clustering).
std::size_t intersect_count(std::span<const vid_t> a, std::span<const vid_t> b);

enum class TriangleAlgo { kForward, kNodeIterator };

/// Uniform kernel entry point (see kernels/registry.hpp).
struct TrianglesOptions {
  TriangleAlgo algo = TriangleAlgo::kForward;
  bool per_vertex = false;  // also materialize per-vertex counts
};

struct TrianglesResult {
  std::uint64_t total = 0;
  std::vector<std::uint64_t> per_vertex;  // empty unless requested
};

inline TrianglesResult run(const CSRGraph& g, const TrianglesOptions& opts) {
  TrianglesResult r;
  r.total = opts.algo == TriangleAlgo::kNodeIterator
                ? triangle_count_node_iterator(g)
                : triangle_count_forward(g);
  if (opts.per_vertex) r.per_vertex = triangle_counts_per_vertex(g);
  return r;
}

}  // namespace ga::kernels
