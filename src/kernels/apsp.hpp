// All-Pairs Shortest Path (Fig. 1 row "APSP", output class O(|V|) list per
// source → O(|V|^2) total, so callers usually take eccentricities or a
// top-k). Two engines: repeated Dijkstra (sparse-friendly) and
// Floyd–Warshall (dense reference for small n, also the test oracle).
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"

namespace ga::kernels {

using graph::CSRGraph;

struct ApspResult {
  vid_t n = 0;
  /// Row-major n*n distance matrix (infinity = unreachable).
  std::vector<float> dist;
  float at(vid_t u, vid_t v) const { return dist[static_cast<std::size_t>(u) * n + v]; }
};

/// Repeated Dijkstra from every source. O(n (m log n)).
ApspResult apsp_dijkstra(const CSRGraph& g);

/// Floyd–Warshall. O(n^3); intended for n <~ 2048.
ApspResult apsp_floyd_warshall(const CSRGraph& g);

/// Per-vertex eccentricity (max finite distance) from an APSP result.
std::vector<float> eccentricities(const ApspResult& r);

/// Exact diameter (max finite eccentricity).
float exact_diameter(const ApspResult& r);

enum class ApspAlgo { kDijkstra, kFloydWarshall };

/// Uniform kernel entry point (see kernels/registry.hpp).
struct ApspOptions {
  ApspAlgo algo = ApspAlgo::kDijkstra;
};

inline ApspResult run(const CSRGraph& g, const ApspOptions& opts) {
  return opts.algo == ApspAlgo::kFloydWarshall ? apsp_floyd_warshall(g)
                                               : apsp_dijkstra(g);
}

}  // namespace ga::kernels
