#include "kernels/community.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/prng.hpp"
#include "kernels/contraction.hpp"

namespace ga::kernels {

namespace {

/// Relabel communities to dense 0..k-1 ids and fill counts.
void densify(CommunityResult& r) {
  std::unordered_map<vid_t, vid_t> remap;
  vid_t next = 0;
  for (auto& c : r.community) {
    auto [it, inserted] = remap.try_emplace(c, next);
    if (inserted) ++next;
    c = it->second;
  }
  r.num_communities = next;
}

}  // namespace

double modularity(const CSRGraph& g, const std::vector<vid_t>& community) {
  GA_CHECK(!g.directed(), "modularity expects undirected graphs");
  GA_CHECK(community.size() == g.num_vertices(), "partition size mismatch");
  const double two_m = static_cast<double>(g.num_arcs());
  if (two_m == 0.0) return 0.0;
  // Q = (1/2m) * sum_{uv in same community} (A_uv - d_u d_v / 2m)
  //   = sum_c [ m_c/m - (D_c/2m)^2 ]  with m_c intra-edges, D_c total degree.
  std::unordered_map<vid_t, double> intra, deg;
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    deg[community[u]] += static_cast<double>(g.out_degree(u));
    for (vid_t v : g.out_neighbors(u)) {
      if (community[u] == community[v]) intra[community[u]] += 1.0;  // arcs
    }
  }
  double q = 0.0;
  for (const auto& [c, d] : deg) {
    const double mc = intra.count(c) ? intra.at(c) : 0.0;  // 2*m_c in arcs
    q += mc / two_m - (d / two_m) * (d / two_m);
  }
  return q;
}

CommunityResult community_label_propagation(const CSRGraph& g,
                                            unsigned max_rounds,
                                            std::uint64_t seed) {
  GA_CHECK(!g.directed(), "label propagation expects undirected graphs");
  const vid_t n = g.num_vertices();
  CommunityResult r;
  r.community.resize(n);
  for (vid_t v = 0; v < n; ++v) r.community[v] = v;

  core::Xoshiro256 rng(seed);
  std::vector<vid_t> order(n);
  for (vid_t i = 0; i < n; ++i) order[i] = i;
  std::unordered_map<vid_t, std::size_t> freq;

  for (unsigned round = 0; round < max_rounds; ++round) {
    std::shuffle(order.begin(), order.end(), rng);
    bool changed = false;
    for (vid_t u : order) {
      const auto nbrs = g.out_neighbors(u);
      if (nbrs.empty()) continue;
      freq.clear();
      for (vid_t v : nbrs) ++freq[r.community[v]];
      // Most frequent neighbor label; ties broken toward the smallest label
      // for determinism.
      vid_t best = r.community[u];
      std::size_t best_count = 0;
      for (const auto& [label, count] : freq) {
        if (count > best_count || (count == best_count && label < best)) {
          best = label;
          best_count = count;
        }
      }
      if (best != r.community[u]) {
        r.community[u] = best;
        changed = true;
      }
    }
    r.iterations = round + 1;
    if (!changed) break;
  }
  densify(r);
  r.modularity = modularity(g, r.community);
  return r;
}

namespace {

/// Weighted Louvain phase 1 over a graph with optional per-vertex
/// self-mass (intra-community weight accumulated by earlier levels).
/// Returns the local-optimum partition of this level's vertices.
std::vector<vid_t> weighted_phase1(const CSRGraph& g,
                                   const std::vector<double>& self_weight,
                                   double two_m, unsigned max_rounds) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> community(n);
  for (vid_t v = 0; v < n; ++v) community[v] = v;
  if (two_m <= 0.0) return community;

  // Weighted degree including self mass (counted twice, as a loop).
  std::vector<double> wdeg(n, 0.0);
  for (vid_t v = 0; v < n; ++v) {
    if (g.weighted()) {
      for (float w : g.out_weights(v)) wdeg[v] += w;
    } else {
      wdeg[v] = static_cast<double>(g.out_degree(v));
    }
    wdeg[v] += 2.0 * self_weight[v];
  }
  std::vector<double> ctot = wdeg;  // community total degree

  std::unordered_map<vid_t, double> links;
  for (unsigned round = 0; round < max_rounds; ++round) {
    bool moved = false;
    for (vid_t u = 0; u < n; ++u) {
      if (wdeg[u] == 0.0) continue;
      links.clear();
      const auto nbrs = g.out_neighbors(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const double w = g.weighted() ? g.out_weights(u)[i] : 1.0;
        links[community[nbrs[i]]] += w;
      }
      const vid_t cu = community[u];
      ctot[cu] -= wdeg[u];
      const double base_links = links.count(cu) ? links.at(cu) : 0.0;
      double best_gain = base_links - ctot[cu] * wdeg[u] / two_m;
      vid_t best = cu;
      for (const auto& [c, l] : links) {
        if (c == cu) continue;
        const double gain = l - ctot[c] * wdeg[u] / two_m;
        if (gain > best_gain + 1e-12) {
          best = c;
          best_gain = gain;
        }
      }
      ctot[best] += wdeg[u];
      if (best != cu) {
        community[u] = best;
        moved = true;
      }
    }
    if (!moved) break;
  }
  return community;
}

}  // namespace

CommunityResult community_louvain(const CSRGraph& g, unsigned max_levels,
                                  unsigned max_rounds) {
  GA_CHECK(!g.directed(), "louvain expects undirected graphs");
  const vid_t n = g.num_vertices();
  CommunityResult r;
  r.community.resize(n);
  for (vid_t v = 0; v < n; ++v) r.community[v] = v;
  if (g.num_arcs() == 0) {
    densify(r);
    return r;
  }
  // Total edge mass is invariant across levels: arcs + 2*self at level 0.
  const double two_m = static_cast<double>(
      g.weighted() ? [&] {
        double s = 0.0;
        for (float w : g.weights()) s += w;
        return s;
      }() : static_cast<double>(g.num_arcs()));

  CSRGraph level = g;  // copy; subsequent levels are contracted graphs
  std::vector<double> self(level.num_vertices(), 0.0);
  // map[v] = current community (in level-graph vertex ids) of input v.
  std::vector<vid_t> map(n);
  for (vid_t v = 0; v < n; ++v) map[v] = v;

  for (unsigned lev = 0; lev < max_levels; ++lev) {
    const auto part = weighted_phase1(level, self, two_m, max_rounds);
    // Count distinct communities; stop when no coarsening happened.
    const ContractionResult con = contract(level, part);
    if (con.num_groups == level.num_vertices()) break;
    // Fold the partition into the input-level mapping: input vertex v sits
    // at level vertex map[v], which lands in super-vertex group_of[map[v]].
    for (vid_t v = 0; v < n; ++v) map[v] = con.group_of[map[v]];
    level = con.contracted;
    // New self mass: old self masses aggregated per group + intra edges.
    std::vector<double> new_self(con.num_groups, 0.0);
    for (vid_t v = 0; v < self.size(); ++v) {
      new_self[con.group_of[v]] += self[v];
    }
    for (vid_t gId = 0; gId < con.num_groups; ++gId) {
      new_self[gId] += con.self_weight[gId];
    }
    self = std::move(new_self);
    if (level.num_vertices() <= 1) break;
  }
  r.community = map;
  densify(r);
  r.modularity = modularity(g, r.community);
  r.iterations = 0;
  return r;
}

CommunityResult community_louvain_phase1(const CSRGraph& g,
                                         unsigned max_rounds) {
  GA_CHECK(!g.directed(), "louvain expects undirected graphs");
  const vid_t n = g.num_vertices();
  CommunityResult r;
  r.community.resize(n);
  for (vid_t v = 0; v < n; ++v) r.community[v] = v;
  const double two_m = static_cast<double>(g.num_arcs());
  if (two_m == 0.0) {
    densify(r);
    return r;
  }

  // Community total degree.
  std::vector<double> ctot(n, 0.0);
  for (vid_t v = 0; v < n; ++v) ctot[v] = static_cast<double>(g.out_degree(v));

  std::unordered_map<vid_t, double> links;  // arcs from u into community c
  for (unsigned round = 0; round < max_rounds; ++round) {
    bool moved = false;
    for (vid_t u = 0; u < n; ++u) {
      const double du = static_cast<double>(g.out_degree(u));
      if (du == 0.0) continue;
      links.clear();
      for (vid_t v : g.out_neighbors(u)) links[r.community[v]] += 1.0;
      const vid_t cu = r.community[u];
      // Remove u from its community for the gain comparison.
      ctot[cu] -= du;
      const double base_links = links.count(cu) ? links.at(cu) : 0.0;
      const double base_gain = base_links - ctot[cu] * du / two_m;
      vid_t best = cu;
      double best_gain = base_gain;
      for (const auto& [c, l] : links) {
        if (c == cu) continue;
        const double gain = l - ctot[c] * du / two_m;
        if (gain > best_gain + 1e-12) {
          best = c;
          best_gain = gain;
        }
      }
      ctot[best] += du;
      if (best != cu) {
        r.community[u] = best;
        moved = true;
      }
    }
    r.iterations = round + 1;
    if (!moved) break;
  }
  densify(r);
  r.modularity = modularity(g, r.community);
  return r;
}

}  // namespace ga::kernels
