// Jaccard similarity coefficients (Fig. 1 row "Jaccard") — the paper's
// flagship "growing" kernel ([21]) and the core of the NORA application.
// J(u,v) = |N(u) ∩ N(v)| / |N(u) ∪ N(v)|.
//
// Three forms, matching the paper's discussion:
//  * all-pairs over edges (batch; near-quadratic storage if over all pairs,
//    so the standard restriction is to adjacent pairs),
//  * top-k per graph (batch; the O(|V|^k) output class truncated to top-k),
//  * single-vertex query (the second streaming form: for a queried vertex,
//    return all vertices with nonzero — or above-threshold — coefficient).
#pragma once

#include <vector>

#include "core/topk.hpp"
#include "graph/csr_graph.hpp"

namespace ga::kernels {

using graph::CSRGraph;

struct JaccardPair {
  vid_t u = 0, v = 0;
  double coefficient = 0.0;
};

/// Coefficient for one pair (0 if both neighborhoods empty).
double jaccard_coefficient(const CSRGraph& g, vid_t u, vid_t v);

/// J(u,v) for every edge (u<v). Output parallel to the edge enumeration.
std::vector<JaccardPair> jaccard_all_edges(const CSRGraph& g);

/// Top-k most similar pairs among 2-hop pairs (pairs sharing >= 1 neighbor,
/// the only pairs with nonzero coefficient).
std::vector<JaccardPair> jaccard_topk(const CSRGraph& g, std::size_t k);

/// Query form: all vertices v != u with J(u,v) >= threshold, sorted by
/// descending coefficient. Only 2-hop candidates are examined.
std::vector<JaccardPair> jaccard_query(const CSRGraph& g, vid_t u,
                                       double threshold = 0.0);

/// Uniform kernel entry point (see kernels/registry.hpp). With a query
/// vertex set, runs the per-vertex query form; otherwise batch top-k.
struct JaccardOptions {
  std::size_t topk = 10;
  vid_t query = kInvalidVid;  // != kInvalidVid selects the query form
  double threshold = 0.0;
};

struct JaccardResult {
  std::vector<JaccardPair> pairs;  // descending coefficient
};

inline JaccardResult run(const CSRGraph& g, const JaccardOptions& opts) {
  if (opts.query != kInvalidVid) {
    return {jaccard_query(g, opts.query, opts.threshold)};
  }
  return {jaccard_topk(g, opts.topk)};
}

}  // namespace ga::kernels
