// Jaccard similarity coefficients (Fig. 1 row "Jaccard") — the paper's
// flagship "growing" kernel ([21]) and the core of the NORA application.
// J(u,v) = |N(u) ∩ N(v)| / |N(u) ∪ N(v)|.
//
// Three forms, matching the paper's discussion:
//  * all-pairs over edges (batch; near-quadratic storage if over all pairs,
//    so the standard restriction is to adjacent pairs),
//  * top-k per graph (batch; the O(|V|^k) output class truncated to top-k),
//  * single-vertex query (the second streaming form: for a queried vertex,
//    return all vertices with nonzero — or above-threshold — coefficient).
#pragma once

#include <vector>

#include "core/topk.hpp"
#include "graph/csr_graph.hpp"

namespace ga::graph {
class DynamicGraph;
}
namespace ga::store {
class GraphView;
}

namespace ga::kernels {

using graph::CSRGraph;

struct JaccardPair {
  vid_t u = 0, v = 0;
  double coefficient = 0.0;
};

/// Coefficient for one pair (0 if both neighborhoods empty).
double jaccard_coefficient(const CSRGraph& g, vid_t u, vid_t v);

/// J(u,v) for every edge (u<v). Output parallel to the edge enumeration.
std::vector<JaccardPair> jaccard_all_edges(const CSRGraph& g);

/// Top-k most similar pairs among 2-hop pairs (pairs sharing >= 1 neighbor,
/// the only pairs with nonzero coefficient).
std::vector<JaccardPair> jaccard_topk(const CSRGraph& g, std::size_t k);

/// Query form: all vertices v != u with J(u,v) >= threshold, sorted by
/// descending coefficient. Only 2-hop candidates are examined.
std::vector<JaccardPair> jaccard_query(const CSRGraph& g, vid_t u,
                                       double threshold = 0.0);

/// Query form over a live dynamic graph (the paper's streaming form 2:
/// answer relationship queries as the graph mutates). Same candidate
/// sweep, coefficients, and ordering as the CSR overload.
std::vector<JaccardPair> jaccard_query(const graph::DynamicGraph& g, vid_t u,
                                       double threshold = 0.0);

/// Query form over a versioned store view, delta-native (merged adjacency
/// iteration; never folds the chain).
std::vector<JaccardPair> jaccard_query(const store::GraphView& g, vid_t u,
                                       double threshold = 0.0);

/// Max-coefficient partner of u (streaming form 1 building block);
/// v == kInvalidVid with coefficient 0 when u has no 2-hop candidate.
JaccardPair jaccard_max_partner(const graph::DynamicGraph& g, vid_t u);

/// Streaming form 1 trigger: after an applied insert (u, v), does either
/// endpoint's maximum coefficient now reach `threshold`?
bool jaccard_insert_crosses_threshold(const graph::DynamicGraph& g, vid_t u,
                                      vid_t v, double threshold);

/// Sorted dependency set of jaccard_query(g, u, ·): {u} ∪ N(u) ∪ the 2-hop
/// candidate set. Any epoch whose changed-vertex set is disjoint from this
/// footprint cannot alter the query answer (every effective arc change
/// lists both endpoints, and a relevant arc always has an endpoint in the
/// footprint). Returns an empty vector when the set exceeds `cap` —
/// callers must then treat the query as depending on the whole graph.
std::vector<vid_t> jaccard_footprint(const store::GraphView& g, vid_t u,
                                     std::size_t cap);

/// Uniform kernel entry point (see kernels/registry.hpp). With a query
/// vertex set, runs the per-vertex query form; otherwise batch top-k.
struct JaccardOptions {
  std::size_t topk = 10;
  vid_t query = kInvalidVid;  // != kInvalidVid selects the query form
  double threshold = 0.0;
};

struct JaccardResult {
  std::vector<JaccardPair> pairs;  // descending coefficient
};

inline JaccardResult run(const CSRGraph& g, const JaccardOptions& opts) {
  if (opts.query != kInvalidVid) {
    return {jaccard_query(g, opts.query, opts.threshold)};
  }
  return {jaccard_topk(g, opts.topk)};
}

}  // namespace ga::kernels
