// Delta-driven incremental kernel updates: fold one epoch's DeltaSummary
// into a previous result instead of recomputing over the whole graph.
//
// Each kernel with an incremental path exposes a typed
//   update(prev_result, delta, view) -> result
// entry that either refines the previous answer from the delta (the warm
// path) or detects that the delta defeats its update rule and falls back
// to a batch recompute — the IncrementalOutcome reports which happened and
// why. Per-kernel policies:
//
//  * PageRank — delta-seeded power refinement: the previous ranks seed a
//    warm power iteration (pagerank_warm) with a bounded iteration budget;
//    falls back to batch on vertex growth, oversized churn, or a warm run
//    that exhausts the budget without reaching tolerance.
//  * WCC — union-find over the inserted arcs, O(Δ α(n)) on top of the
//    previous labels; any *effective* delete falls back to a batch
//    recompute (the classic streaming-connectivity recompute-on-delete
//    policy, shared with StreamingComponents below).
//  * Jaccard point query — the answer depends only on the query's 2-hop
//    footprint; an epoch disjoint from it carries the previous answer
//    unchanged, otherwise the (already local) query recomputes.
//
// A type-erased IncrementalKernel runner wraps the typed entries for
// registry-driven harnesses (ga_cli epochs, equivalence sweeps); the
// serving scheduler uses the typed entries directly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "graph/dynamic_graph.hpp"
#include "kernels/connected_components.hpp"
#include "kernels/jaccard.hpp"
#include "kernels/pagerank.hpp"
#include "store/delta_summary.hpp"
#include "store/graph_view.hpp"

namespace ga::kernels {

enum class IncrementalFallback : std::uint8_t {
  kNone = 0,       // warm path taken (or no fallback reason recorded)
  kShapeMismatch,  // previous result unusable (size mismatch, growth)
  kChurn,          // delta too large for a warm update to pay off
  kDeletes,        // kernel has no delete rule (WCC recompute-on-delete)
  kNotConverged,   // warm refinement exhausted its iteration budget
  kFault,          // the warm path threw (injected or real failure)
};
const char* incremental_fallback_name(IncrementalFallback f);

struct IncrementalOptions {
  /// Batch fallback when the changed-vertex set exceeds this fraction of
  /// |V| — past that point a warm update no longer beats a fresh solve.
  double max_changed_fraction = 0.25;
  /// Iteration budget for warm PageRank refinement before falling back.
  unsigned max_warm_iters = 12;
  /// Test-only fault injection: invoked at the named warm-path stages
  /// ("pagerank_warm", "wcc_unite", "jaccard_probe"); a throw lands on the
  /// kFault batch fallback instead of propagating.
  std::function<void(const char*)> fault_hook;
};

struct IncrementalOutcome {
  bool incremental = false;  // true iff the warm path produced the result
  IncrementalFallback fallback = IncrementalFallback::kNone;
  unsigned iterations = 0;  // power iterations actually run (PageRank)
};

/// PageRank over `view` seeded from `prev` (see policy above). `opts` are
/// the batch options; tolerance/damping apply to warm and fallback alike.
PageRankResult update_pagerank(const PageRankResult& prev,
                               const store::DeltaSummary& delta,
                               const store::GraphView& view,
                               const PageRankOptions& opts = {},
                               const IncrementalOptions& inc = {},
                               IncrementalOutcome* out = nullptr);

/// WCC over `view` from `prev` labels + the delta's inserted arcs; falls
/// back to a batch recompute on any effective delete or shape change.
/// Labels come out canonicalized (min vertex id) on both paths.
ComponentsResult update_wcc(const ComponentsResult& prev,
                            const store::DeltaSummary& delta,
                            const store::GraphView& view,
                            const IncrementalOptions& inc = {},
                            IncrementalOutcome* out = nullptr);

/// Jaccard point query for `seed`: carries `prev` unchanged when the delta
/// cannot intersect the query's dependency set, else recomputes (locally).
/// `footprint` is jaccard_footprint(view, seed, cap) — pass empty when the
/// footprint exceeded the cap (forces the recompute path on any
/// structural delta).
JaccardResult update_jaccard_query(const JaccardResult& prev, vid_t seed,
                                   double threshold,
                                   std::span<const vid_t> footprint,
                                   const store::DeltaSummary& delta,
                                   const store::GraphView& view,
                                   const IncrementalOptions& inc = {},
                                   IncrementalOutcome* out = nullptr);

/// Type-erased epoch-folding runner behind KernelInfo::make_incremental:
/// seed once with init(), then fold each published epoch forward with
/// update(). Digests are one-line result summaries in the registry style.
class IncrementalKernel {
 public:
  virtual ~IncrementalKernel() = default;
  /// Seeds the warm state with a batch run; returns its digest.
  virtual std::string init(const store::GraphView& view) = 0;
  /// Folds one epoch into the warm state (batch fallback per policy).
  virtual IncrementalOutcome update(const store::DeltaSummary& delta,
                                    const store::GraphView& view) = 0;
  /// Digest of the current warm state.
  virtual std::string digest() const = 0;
  /// Digest of a fresh batch run over `view` (equivalence harnesses).
  virtual std::string batch_digest(const store::GraphView& view) const = 0;

  void set_options(IncrementalOptions o) { opts_ = std::move(o); }

 protected:
  IncrementalOptions opts_;
};

std::unique_ptr<IncrementalKernel> make_incremental_pagerank(
    PageRankOptions opts = {});
std::unique_ptr<IncrementalKernel> make_incremental_wcc();
std::unique_ptr<IncrementalKernel> make_incremental_jaccard(
    vid_t seed, double threshold = 0.0);

/// Live connectivity tracker over a DynamicGraph — the streaming-layer
/// face of the same policy update_wcc applies to store epochs: inserts are
/// O(α(n)) unions, deletes and vertex growth invalidate the forest and
/// rebuild lazily on the next query. (Replaces the old standalone
/// streaming::IncrementalCC.)
class StreamingComponents {
 public:
  explicit StreamingComponents(const graph::DynamicGraph& g);

  /// Notify an applied edge insert. Returns true if two components merged.
  bool on_insert(vid_t u, vid_t v);
  /// Notify an applied edge delete (marks dirty; rebuild deferred).
  void on_delete(vid_t u, vid_t v);
  /// Notify that vertices were added to the backing graph.
  void on_add_vertices(vid_t new_total);

  vid_t num_components();
  bool connected(vid_t u, vid_t v);
  /// Size of the component containing v.
  vid_t component_size(vid_t v);

  bool dirty() const { return dirty_; }
  std::uint64_t rebuilds() const { return rebuilds_; }

 private:
  void rebuild_if_dirty();

  const graph::DynamicGraph& g_;
  UnionFind uf_;
  bool dirty_ = false;
  std::uint64_t rebuilds_ = 0;
};

}  // namespace ga::kernels
