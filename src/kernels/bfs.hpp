// Breadth-First Search — the Graph500 kernel (paper Fig. 1 row "BFS").
// Three engines: top-down (classic frontier push), bottom-up (unvisited
// vertices pull from the frontier; wins on the fat middle frontiers of
// power-law graphs), and direction-optimizing (Beamer-style switching),
// which is the Graph500-winning formulation and one of the paper's §IV
// "published results" subjects.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/telemetry.hpp"
#include "graph/csr_graph.hpp"
#include "store/graph_view.hpp"

namespace ga::kernels {

using graph::CSRGraph;

struct BfsResult {
  std::vector<std::uint32_t> dist;   // hop count; kInfDist if unreached
  std::vector<vid_t> parent;         // BFS tree parent; kInvalidVid if none
  std::uint64_t reached = 0;         // vertices reached (incl. source)
  std::uint64_t edges_traversed = 0; // arcs inspected (TEPS accounting)
  /// Per-super-step engine telemetry (direction, edges, bytes, time).
  std::vector<engine::StepStats> steps;
};

enum class BfsMode { kTopDown, kBottomUp, kDirectionOptimizing };

/// Uniform kernel entry point (see kernels/registry.hpp): every kernel
/// exposes run(graph, <Kernel>Options) -> <Kernel>Result.
struct BfsOptions {
  vid_t source = 0;
  BfsMode mode = BfsMode::kDirectionOptimizing;
  bool parallel = false;  // parallel top-down engine (ignores `mode`)
};

BfsResult bfs(const CSRGraph& g, vid_t source,
              BfsMode mode = BfsMode::kDirectionOptimizing);
/// Delta-native BFS over the versioned store's read path; non-flat views
/// run push-only (the chain keeps no in-adjacency), flat views get full
/// direction optimization.
BfsResult bfs(const store::GraphView& g, vid_t source,
              BfsMode mode = BfsMode::kDirectionOptimizing);

/// Parallel frontier-based top-down BFS (atomic parent claims).
BfsResult bfs_parallel(const CSRGraph& g, vid_t source);
BfsResult bfs_parallel(const store::GraphView& g, vid_t source);

inline BfsResult run(const CSRGraph& g, const BfsOptions& opts) {
  return opts.parallel ? bfs_parallel(g, opts.source)
                       : bfs(g, opts.source, opts.mode);
}

inline BfsResult run(const store::GraphView& g, const BfsOptions& opts) {
  return opts.parallel ? bfs_parallel(g, opts.source)
                       : bfs(g, opts.source, opts.mode);
}

/// Eccentricity lower bound by a double BFS sweep (approximate diameter).
std::uint32_t approx_diameter(const CSRGraph& g, vid_t start = 0);

/// Vertices within `depth` hops of any seed (the Fig. 2 "subgraph
/// extraction" primitive; returned sorted ascending).
std::vector<vid_t> khop_neighborhood(const CSRGraph& g,
                                     const std::vector<vid_t>& seeds,
                                     std::uint32_t depth);
std::vector<vid_t> khop_neighborhood(const store::GraphView& g,
                                     const std::vector<vid_t>& seeds,
                                     std::uint32_t depth);

/// Graph500-style result validation: the parent tree is rooted at source,
/// tree edges exist in g, levels differ by exactly one along tree edges,
/// and every graph edge spans at most one level. Returns true iff valid.
bool validate_bfs_tree(const CSRGraph& g, vid_t source, const BfsResult& r);

}  // namespace ga::kernels
