// Strongly Connected Components (Fig. 1 row "CCS") for directed graphs.
// Tarjan (single pass, iterative to survive deep graphs) and Kosaraju
// (two-pass, used as the cross-check oracle).
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"

namespace ga::kernels {

using graph::CSRGraph;

struct SccResult {
  std::vector<vid_t> component;  // SCC id per vertex (0..num_components-1)
  vid_t num_components = 0;
  vid_t largest_size = 0;
};

SccResult scc_tarjan(const CSRGraph& g);
SccResult scc_kosaraju(const CSRGraph& g);

enum class SccAlgo { kTarjan, kKosaraju };

/// Uniform kernel entry point (see kernels/registry.hpp). Directed input.
struct SccOptions {
  SccAlgo algo = SccAlgo::kTarjan;
};

inline SccResult run(const CSRGraph& g, const SccOptions& opts) {
  return opts.algo == SccAlgo::kKosaraju ? scc_kosaraju(g) : scc_tarjan(g);
}

/// Normalize both results to compare: same partition iff equal after
/// relabeling by first occurrence.
std::vector<vid_t> normalize_partition(const std::vector<vid_t>& comp);

}  // namespace ga::kernels
