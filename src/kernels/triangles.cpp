#include "kernels/triangles.hpp"

#include <algorithm>

#include "core/thread_pool.hpp"

namespace ga::kernels {

std::size_t intersect_count(std::span<const vid_t> a, std::span<const vid_t> b) {
  std::size_t count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

std::uint64_t triangle_count_node_iterator(const CSRGraph& g) {
  GA_CHECK(!g.directed(), "triangle kernels expect undirected graphs");
  const vid_t n = g.num_vertices();
  // Each triangle is seen at all 3 corners via intersect(u,v) per edge, and
  // each undirected edge appears twice — total count / 6... but restricting
  // to u<v halves the edge scan, giving /3 instead.
  return core::parallel_reduce<std::uint64_t>(
      0, n, 64, 0,
      [&](std::uint64_t ui) {
        const auto u = static_cast<vid_t>(ui);
        std::uint64_t local = 0;
        const auto nu = g.out_neighbors(u);
        for (vid_t v : nu) {
          if (v <= u) continue;
          local += intersect_count(nu, g.out_neighbors(v));
        }
        return local;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; }) /
         3;
}

std::uint64_t triangle_count_forward(const CSRGraph& g) {
  GA_CHECK(!g.directed(), "triangle kernels expect undirected graphs");
  const vid_t n = g.num_vertices();
  const eid_t* goff = g.offsets().data();
  const vid_t* gtgt = g.targets().data();

  // GAP-reference shape: relabel vertices by descending degree (counting
  // sort; ties by id) and keep only arcs pointing "up" the order — toward
  // the smaller new id / higher degree endpoint. Hubs then hold the
  // shortest forward lists (only other hubs), which bounds each merge at
  // O(sqrt(m)) and packs the hot lists together at the front of one flat
  // relabeled CSR. Each triangle survives exactly once: w' < v' < u'.
  std::uint32_t max_deg = 0;
  for (vid_t v = 0; v < n; ++v) {
    max_deg = std::max(max_deg, static_cast<std::uint32_t>(goff[v + 1] - goff[v]));
  }
  std::vector<vid_t> new_id(n);
  {
    // Counting sort by degree descending, ids ascending within a bucket.
    std::vector<eid_t> bucket(max_deg + 2, 0);
    for (vid_t v = 0; v < n; ++v) ++bucket[max_deg - (goff[v + 1] - goff[v]) + 1];
    for (std::uint32_t d = 1; d <= max_deg + 1; ++d) bucket[d] += bucket[d - 1];
    for (vid_t v = 0; v < n; ++v) {
      new_id[v] = static_cast<vid_t>(bucket[max_deg - (goff[v + 1] - goff[v])]++);
    }
  }

  // Forward CSR in the new id space: one counting pass, one fill pass,
  // then an insertion-style sort per (short) segment.
  std::vector<eid_t> foff(n + 1, 0);
  for (vid_t u = 0; u < n; ++u) {
    const vid_t nu = new_id[u];
    for (eid_t a = goff[u]; a < goff[u + 1]; ++a) {
      if (new_id[gtgt[a]] < nu) ++foff[nu + 1];
    }
  }
  for (vid_t v = 0; v < n; ++v) foff[v + 1] += foff[v];
  std::vector<vid_t> ftgt(foff[n]);
  {
    std::vector<eid_t> cursor(foff.begin(), foff.end() - 1);
    for (vid_t u = 0; u < n; ++u) {
      const vid_t nu = new_id[u];
      for (eid_t a = goff[u]; a < goff[u + 1]; ++a) {
        const vid_t nv = new_id[gtgt[a]];
        if (nv < nu) ftgt[cursor[nu]++] = nv;
      }
    }
  }
  for (vid_t u = 0; u < n; ++u) {
    std::sort(ftgt.begin() + static_cast<std::ptrdiff_t>(foff[u]),
              ftgt.begin() + static_cast<std::ptrdiff_t>(foff[u + 1]));
  }

  // Count: merge-intersect forward(u) with forward(v) for each forward
  // arc u->v. Raw-pointer merge; both lists are sorted ascending.
  const eid_t* off = foff.data();
  const vid_t* tgt = ftgt.data();
  return core::parallel_reduce<std::uint64_t>(
      0, n, 64, 0,
      [&](std::uint64_t ui) {
        const auto u = static_cast<vid_t>(ui);
        std::uint64_t local = 0;
        const vid_t* ub = tgt + off[u];
        const vid_t* ue = tgt + off[u + 1];
        for (const vid_t* p = ub; p < ue; ++p) {
          const vid_t v = *p;
          const vid_t* ia = ub;
          const vid_t* ib = tgt + off[v];
          const vid_t* be = tgt + off[v + 1];
          while (ia < ue && ib < be) {
            if (*ia < *ib) {
              ++ia;
            } else if (*ib < *ia) {
              ++ib;
            } else {
              ++local;
              ++ia;
              ++ib;
            }
          }
        }
        return local;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

std::vector<std::uint64_t> triangle_counts_per_vertex(const CSRGraph& g) {
  GA_CHECK(!g.directed(), "triangle kernels expect undirected graphs");
  std::vector<std::uint64_t> counts(g.num_vertices(), 0);
  triangle_list(g, [&](const Triangle& t) {
    ++counts[t.a];
    ++counts[t.b];
    ++counts[t.c];
  });
  return counts;
}

void triangle_list(const CSRGraph& g,
                   const std::function<void(const Triangle&)>& emit) {
  GA_CHECK(!g.directed(), "triangle kernels expect undirected graphs");
  const vid_t n = g.num_vertices();
  // Enumerate with a<b<c: for each a, each neighbor b>a, intersect the
  // tails of both adjacency lists above b.
  for (vid_t a = 0; a < n; ++a) {
    const auto na = g.out_neighbors(a);
    for (vid_t b : na) {
      if (b <= a) continue;
      const auto nb = g.out_neighbors(b);
      // March both sorted lists restricted to ids > b.
      auto ia = std::upper_bound(na.begin(), na.end(), b);
      auto ib = std::upper_bound(nb.begin(), nb.end(), b);
      while (ia != na.end() && ib != nb.end()) {
        if (*ia < *ib) {
          ++ia;
        } else if (*ib < *ia) {
          ++ib;
        } else {
          emit(Triangle{a, b, *ia});
          ++ia;
          ++ib;
        }
      }
    }
  }
}

}  // namespace ga::kernels
