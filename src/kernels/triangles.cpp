#include "kernels/triangles.hpp"

#include <algorithm>

#include "core/thread_pool.hpp"

namespace ga::kernels {

std::size_t intersect_count(std::span<const vid_t> a, std::span<const vid_t> b) {
  std::size_t count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

std::uint64_t triangle_count_node_iterator(const CSRGraph& g) {
  GA_CHECK(!g.directed(), "triangle kernels expect undirected graphs");
  const vid_t n = g.num_vertices();
  // Each triangle is seen at all 3 corners via intersect(u,v) per edge, and
  // each undirected edge appears twice — total count / 6... but restricting
  // to u<v halves the edge scan, giving /3 instead.
  return core::parallel_reduce<std::uint64_t>(
      0, n, 64, 0,
      [&](std::uint64_t ui) {
        const auto u = static_cast<vid_t>(ui);
        std::uint64_t local = 0;
        const auto nu = g.out_neighbors(u);
        for (vid_t v : nu) {
          if (v <= u) continue;
          local += intersect_count(nu, g.out_neighbors(v));
        }
        return local;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; }) /
         3;
}

namespace {

/// Degree-ordered orientation: arcs point from lower rank to higher rank,
/// where rank orders by (degree, id). Returns per-vertex sorted out-lists.
std::vector<std::vector<vid_t>> forward_orientation(const CSRGraph& g) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> rank(n);
  {
    std::vector<vid_t> order(n);
    for (vid_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](vid_t a, vid_t b) {
      const eid_t da = g.out_degree(a), db = g.out_degree(b);
      return da != db ? da < db : a < b;
    });
    for (vid_t i = 0; i < n; ++i) rank[order[i]] = i;
  }
  std::vector<std::vector<vid_t>> out(n);
  for (vid_t u = 0; u < n; ++u) {
    for (vid_t v : g.out_neighbors(u)) {
      if (rank[u] < rank[v]) out[u].push_back(v);
    }
    std::sort(out[u].begin(), out[u].end());
  }
  return out;
}

}  // namespace

std::uint64_t triangle_count_forward(const CSRGraph& g) {
  GA_CHECK(!g.directed(), "triangle kernels expect undirected graphs");
  const auto fwd = forward_orientation(g);
  std::uint64_t total = 0;
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (vid_t v : fwd[u]) {
      total += intersect_count(std::span<const vid_t>(fwd[u]),
                               std::span<const vid_t>(fwd[v]));
    }
  }
  return total;
}

std::vector<std::uint64_t> triangle_counts_per_vertex(const CSRGraph& g) {
  GA_CHECK(!g.directed(), "triangle kernels expect undirected graphs");
  std::vector<std::uint64_t> counts(g.num_vertices(), 0);
  triangle_list(g, [&](const Triangle& t) {
    ++counts[t.a];
    ++counts[t.b];
    ++counts[t.c];
  });
  return counts;
}

void triangle_list(const CSRGraph& g,
                   const std::function<void(const Triangle&)>& emit) {
  GA_CHECK(!g.directed(), "triangle kernels expect undirected graphs");
  const vid_t n = g.num_vertices();
  // Enumerate with a<b<c: for each a, each neighbor b>a, intersect the
  // tails of both adjacency lists above b.
  for (vid_t a = 0; a < n; ++a) {
    const auto na = g.out_neighbors(a);
    for (vid_t b : na) {
      if (b <= a) continue;
      const auto nb = g.out_neighbors(b);
      // March both sorted lists restricted to ids > b.
      auto ia = std::upper_bound(na.begin(), na.end(), b);
      auto ib = std::upper_bound(nb.begin(), nb.end(), b);
      while (ia != na.end() && ib != nb.end()) {
        if (*ia < *ib) {
          ++ia;
        } else if (*ib < *ia) {
          ++ib;
        } else {
          emit(Triangle{a, b, *ia});
          ++ia;
          ++ib;
        }
      }
    }
  }
}

}  // namespace ga::kernels
