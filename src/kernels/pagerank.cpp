#include "kernels/pagerank.hpp"

#include <cmath>

#include "core/thread_pool.hpp"
#include "core/topk.hpp"

namespace ga::kernels {

PageRankResult pagerank(const CSRGraph& g, const PageRankOptions& opts) {
  const vid_t n = g.num_vertices();
  PageRankResult r;
  if (n == 0) return r;
  const_cast<CSRGraph&>(g).ensure_transpose();

  const double init = 1.0 / n;
  std::vector<double> rank(n, init), next(n, 0.0);
  std::vector<double> contrib(n, 0.0);  // rank[u]/outdeg[u], 0 for dangling

  for (unsigned iter = 1; iter <= opts.max_iters; ++iter) {
    // Dangling vertices spread their mass uniformly.
    double dangling = 0.0;
    for (vid_t u = 0; u < n; ++u) {
      const eid_t d = g.out_degree(u);
      if (d == 0) {
        dangling += rank[u];
        contrib[u] = 0.0;
      } else {
        contrib[u] = rank[u] / static_cast<double>(d);
      }
    }
    const double base = (1.0 - opts.damping) / n + opts.damping * dangling / n;

    core::parallel_for_each(0, n, 256, [&](std::uint64_t v) {
      double sum = 0.0;
      for (vid_t u : g.in_neighbors(static_cast<vid_t>(v))) sum += contrib[u];
      next[v] = base + opts.damping * sum;
    });

    double delta = 0.0;
    for (vid_t v = 0; v < n; ++v) delta += std::abs(next[v] - rank[v]);
    rank.swap(next);
    r.iterations = iter;
    r.final_delta = delta;
    if (delta < opts.tolerance) {
      r.converged = true;
      break;
    }
  }
  r.rank = std::move(rank);
  return r;
}

PageRankResult personalized_pagerank(const CSRGraph& g,
                                     const std::vector<vid_t>& seeds,
                                     const PageRankOptions& opts) {
  GA_CHECK(!seeds.empty(), "personalized_pagerank: need >= 1 seed");
  const vid_t n = g.num_vertices();
  PageRankResult r;
  if (n == 0) return r;
  const_cast<CSRGraph&>(g).ensure_transpose();

  std::vector<double> restart(n, 0.0);
  for (vid_t s : seeds) {
    GA_CHECK(s < n, "personalized_pagerank: seed out of range");
    restart[s] += 1.0 / static_cast<double>(seeds.size());
  }

  std::vector<double> rank = restart, next(n, 0.0), contrib(n, 0.0);
  for (unsigned iter = 1; iter <= opts.max_iters; ++iter) {
    double dangling = 0.0;
    for (vid_t u = 0; u < n; ++u) {
      const eid_t d = g.out_degree(u);
      if (d == 0) {
        dangling += rank[u];
        contrib[u] = 0.0;
      } else {
        contrib[u] = rank[u] / static_cast<double>(d);
      }
    }
    core::parallel_for_each(0, n, 256, [&](std::uint64_t v) {
      double sum = 0.0;
      for (vid_t u : g.in_neighbors(static_cast<vid_t>(v))) sum += contrib[u];
      // Dangling mass and teleportation both return to the seed set.
      next[v] = (1.0 - opts.damping + opts.damping * dangling) * restart[v] +
                opts.damping * sum;
    });
    double delta = 0.0;
    for (vid_t v = 0; v < n; ++v) delta += std::abs(next[v] - rank[v]);
    rank.swap(next);
    r.iterations = iter;
    r.final_delta = delta;
    if (delta < opts.tolerance) {
      r.converged = true;
      break;
    }
  }
  r.rank = std::move(rank);
  return r;
}

std::vector<std::pair<double, vid_t>> pagerank_topk(const PageRankResult& r,
                                                    std::size_t k) {
  core::TopK<vid_t, double> top(k);
  for (vid_t v = 0; v < r.rank.size(); ++v) top.offer(r.rank[v], v);
  return top.sorted_desc();
}

}  // namespace ga::kernels
