#include "kernels/pagerank.hpp"

#include <atomic>
#include <cmath>

#include "core/topk.hpp"
#include "engine/traversal.hpp"

namespace ga::kernels {

namespace {

/// Engine functor for one power-iteration pull: fold rank/outdeg
/// contributions into the per-vertex accumulator. Produces no frontier
/// (update returns false; callers run with produce_output off) — the
/// recurrence is dense, every vertex recomputes every iteration.
struct PullContrib {
  const std::vector<double>& contrib;
  std::vector<double>& acc;

  bool cond(vid_t) const { return true; }
  // Note: a prefetch_source hook on contrib[] measured ~25% slower here —
  // the dense pull already saturates the load ports, so the extra
  // arc-stream read for the lookahead index costs more than the contrib
  // miss it hides. BFS-style probes (bitmap + early break) are where the
  // engine's lookahead pays.
  bool update(vid_t u, vid_t v, float) {
    acc[v] += contrib[u];
    return false;
  }
  bool update_atomic(vid_t u, vid_t v, float) {
    std::atomic_ref<double>(acc[v]).fetch_add(contrib[u],
                                              std::memory_order_relaxed);
    return false;
  }
};

/// Shared power-iteration driver: `restart_mass(v)` is the teleport +
/// dangling mass landing on v given the dangling total of the iteration.
template <typename RestartFn>
void power_iterate(const CSRGraph& g, const PageRankOptions& opts,
                   std::vector<double>& rank, RestartFn&& restart_mass,
                   PageRankResult& r) {
  const vid_t n = g.num_vertices();
  std::vector<double> next(n, 0.0);
  std::vector<double> contrib(n, 0.0);  // rank[u]/outdeg[u], 0 for dangling

  engine::Telemetry telem;
  engine::TraversalOptions pull;
  pull.direction = engine::TraversalOptions::Dir::kPull;
  pull.produce_output = false;
  engine::Frontier all = engine::Frontier::all(n);

  for (unsigned iter = 1; iter <= opts.max_iters; ++iter) {
    // Dangling vertices spread their mass via the restart distribution.
    double dangling = 0.0;
    for (vid_t u = 0; u < n; ++u) {
      const eid_t d = g.out_degree(u);
      if (d == 0) {
        dangling += rank[u];
        contrib[u] = 0.0;
      } else {
        contrib[u] = rank[u] / static_cast<double>(d);
      }
    }

    std::fill(next.begin(), next.end(), 0.0);
    PullContrib step{contrib, next};
    engine::edge_map(g, all, step, pull, &telem);

    double delta = 0.0;
    for (vid_t v = 0; v < n; ++v) {
      next[v] = restart_mass(v, dangling) + opts.damping * next[v];
      delta += std::abs(next[v] - rank[v]);
    }
    rank.swap(next);
    r.iterations = iter;
    r.final_delta = delta;
    if (delta < opts.tolerance) {
      r.converged = true;
      break;
    }
  }
  r.steps = telem.steps();
}

}  // namespace

PageRankResult pagerank(const store::GraphView& view,
                        const PageRankOptions& opts) {
  if (view.flat()) return pagerank(view.base(), opts);
  if (view.directed()) return pagerank(view.csr(), opts);
  const vid_t n = view.num_vertices();
  PageRankResult r;
  if (n == 0) return r;

  // On an undirected view the merged out-adjacency IS the in-adjacency,
  // so one (v ascending, neighbor ascending) sweep reproduces the flat
  // serial pull's accumulation order bit for bit. A Reader cursor keeps
  // the pure-tiered sweep at one segment pin per crossing.
  const bool pure_tiered = view.tiered() && view.chain_depth() == 0;
  const store::TieredGraph* tg = pure_tiered ? view.tiers().get() : nullptr;
  const auto sweep = [&](auto&& per_arc) {
    if (tg) {
      store::TieredGraph::Reader rd;
      for (vid_t v = 0; v < n; ++v) {
        tg->for_each_out(v, rd, [&](vid_t u, float) { per_arc(v, u); });
      }
    } else {
      for (vid_t v = 0; v < n; ++v) {
        view.for_each_out(v, [&](vid_t u, float) { per_arc(v, u); });
      }
    }
  };

  // Degrees are iteration-invariant; one merged pass replaces the flat
  // path's O(1) per-iteration out_degree() lookups.
  std::vector<eid_t> deg(n, 0);
  sweep([&](vid_t v, vid_t) { ++deg[v]; });

  std::vector<double> rank(n, 1.0 / n);
  std::vector<double> next(n, 0.0);
  std::vector<double> contrib(n, 0.0);
  for (unsigned iter = 1; iter <= opts.max_iters; ++iter) {
    double dangling = 0.0;
    for (vid_t u = 0; u < n; ++u) {
      if (deg[u] == 0) {
        dangling += rank[u];
        contrib[u] = 0.0;
      } else {
        contrib[u] = rank[u] / static_cast<double>(deg[u]);
      }
    }
    std::fill(next.begin(), next.end(), 0.0);
    sweep([&](vid_t v, vid_t u) { next[v] += contrib[u]; });
    double delta = 0.0;
    for (vid_t v = 0; v < n; ++v) {
      next[v] = (1.0 - opts.damping) / n + opts.damping * dangling / n +
                opts.damping * next[v];
      delta += std::abs(next[v] - rank[v]);
    }
    rank.swap(next);
    r.iterations = iter;
    r.final_delta = delta;
    if (delta < opts.tolerance) {
      r.converged = true;
      break;
    }
  }
  r.rank = std::move(rank);
  return r;
}

PageRankResult pagerank(const CSRGraph& g, const PageRankOptions& opts) {
  const vid_t n = g.num_vertices();
  PageRankResult r;
  if (n == 0) return r;

  std::vector<double> rank(n, 1.0 / n);
  power_iterate(g, opts, rank,
                [&](vid_t, double dangling) {
                  return (1.0 - opts.damping) / n +
                         opts.damping * dangling / n;
                },
                r);
  r.rank = std::move(rank);
  return r;
}

PageRankResult pagerank_warm(const CSRGraph& g, std::vector<double> rank,
                             const PageRankOptions& opts) {
  const vid_t n = g.num_vertices();
  PageRankResult r;
  if (n == 0) return r;
  GA_CHECK(rank.size() == n, "pagerank_warm: seed size mismatch");

  // Renormalize the seed: the caller's ranks may come from a slightly
  // different mass distribution (or accumulated float drift).
  double total = 0.0;
  for (const double x : rank) total += x;
  if (total > 0.0) {
    for (double& x : rank) x /= total;
  } else {
    std::fill(rank.begin(), rank.end(), 1.0 / n);
  }

  power_iterate(g, opts, rank,
                [&](vid_t, double dangling) {
                  return (1.0 - opts.damping) / n +
                         opts.damping * dangling / n;
                },
                r);
  r.rank = std::move(rank);
  return r;
}

PageRankResult personalized_pagerank(const CSRGraph& g,
                                     const std::vector<vid_t>& seeds,
                                     const PageRankOptions& opts) {
  GA_CHECK(!seeds.empty(), "personalized_pagerank: need >= 1 seed");
  const vid_t n = g.num_vertices();
  PageRankResult r;
  if (n == 0) return r;

  std::vector<double> restart(n, 0.0);
  for (vid_t s : seeds) {
    GA_CHECK(s < n, "personalized_pagerank: seed out of range");
    restart[s] += 1.0 / static_cast<double>(seeds.size());
  }

  std::vector<double> rank = restart;
  power_iterate(g, opts, rank,
                [&](vid_t v, double dangling) {
                  // Dangling mass and teleportation both return to the seeds.
                  return (1.0 - opts.damping + opts.damping * dangling) *
                         restart[v];
                },
                r);
  r.rank = std::move(rank);
  return r;
}

std::vector<std::pair<double, vid_t>> pagerank_topk(const PageRankResult& r,
                                                    std::size_t k) {
  core::TopK<vid_t, double> top(k);
  for (vid_t v = 0; v < r.rank.size(); ++v) top.offer(r.rank[v], v);
  return top.sorted_desc();
}

}  // namespace ga::kernels
