#include "kernels/scc.hpp"

#include <algorithm>
#include <unordered_map>

namespace ga::kernels {

namespace {

void fill_sizes(SccResult& r) {
  std::unordered_map<vid_t, vid_t> sizes;
  for (vid_t c : r.component) ++sizes[c];
  for (const auto& [c, s] : sizes) r.largest_size = std::max(r.largest_size, s);
}

}  // namespace

SccResult scc_tarjan(const CSRGraph& g) {
  const vid_t n = g.num_vertices();
  SccResult r;
  r.component.assign(n, kInvalidVid);

  constexpr vid_t kUnvisited = kInvalidVid;
  std::vector<vid_t> index(n, kUnvisited), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<vid_t> stack;          // Tarjan's SCC stack
  vid_t next_index = 0;

  // Explicit DFS frame: vertex + position within its adjacency list.
  struct Frame {
    vid_t v;
    std::size_t child;
  };
  std::vector<Frame> dfs;

  for (vid_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!dfs.empty()) {
      Frame& f = dfs.back();
      const auto nbrs = g.out_neighbors(f.v);
      if (f.child < nbrs.size()) {
        const vid_t w = nbrs[f.child++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          dfs.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        // Post-order: pop, propagate lowlink, emit SCC at roots.
        const vid_t v = f.v;
        dfs.pop_back();
        if (!dfs.empty()) {
          lowlink[dfs.back().v] = std::min(lowlink[dfs.back().v], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          for (;;) {
            const vid_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            r.component[w] = r.num_components;
            if (w == v) break;
          }
          ++r.num_components;
        }
      }
    }
  }
  fill_sizes(r);
  return r;
}

SccResult scc_kosaraju(const CSRGraph& g) {
  const vid_t n = g.num_vertices();
  SccResult r;
  r.component.assign(n, kInvalidVid);
  const CSRGraph gt = g.transposed();

  // Pass 1: iterative DFS finish order on g.
  std::vector<vid_t> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  struct Frame {
    vid_t v;
    std::size_t child;
  };
  std::vector<Frame> dfs;
  for (vid_t root = 0; root < n; ++root) {
    if (visited[root]) continue;
    visited[root] = true;
    dfs.push_back({root, 0});
    while (!dfs.empty()) {
      Frame& f = dfs.back();
      const auto nbrs = g.out_neighbors(f.v);
      if (f.child < nbrs.size()) {
        const vid_t w = nbrs[f.child++];
        if (!visited[w]) {
          visited[w] = true;
          dfs.push_back({w, 0});
        }
      } else {
        order.push_back(f.v);
        dfs.pop_back();
      }
    }
  }

  // Pass 2: DFS on transpose in reverse finish order.
  std::vector<vid_t> stack;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (r.component[*it] != kInvalidVid) continue;
    stack.push_back(*it);
    r.component[*it] = r.num_components;
    while (!stack.empty()) {
      const vid_t u = stack.back();
      stack.pop_back();
      for (vid_t v : gt.out_neighbors(u)) {
        if (r.component[v] == kInvalidVid) {
          r.component[v] = r.num_components;
          stack.push_back(v);
        }
      }
    }
    ++r.num_components;
  }
  fill_sizes(r);
  return r;
}

std::vector<vid_t> normalize_partition(const std::vector<vid_t>& comp) {
  std::vector<vid_t> out(comp.size());
  std::unordered_map<vid_t, vid_t> remap;
  vid_t next = 0;
  for (std::size_t i = 0; i < comp.size(); ++i) {
    auto [it, inserted] = remap.try_emplace(comp[i], next);
    if (inserted) ++next;
    out[i] = it->second;
  }
  return out;
}

}  // namespace ga::kernels
