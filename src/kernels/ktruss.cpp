#include "kernels/ktruss.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "core/hash.hpp"
#include "kernels/triangles.hpp"

namespace ga::kernels {

TrussResult truss_decomposition(const CSRGraph& g) {
  GA_CHECK(!g.directed(), "truss expects undirected graphs");
  TrussResult r;
  // Collect edges (u<v) and per-edge support = #triangles containing it.
  std::unordered_map<std::uint64_t, std::uint32_t> index;
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (vid_t v : g.out_neighbors(u)) {
      if (u < v) {
        index[core::edge_key(u, v)] = static_cast<std::uint32_t>(r.edges.size());
        r.edges.emplace_back(u, v);
      }
    }
  }
  std::vector<std::uint32_t> support(r.edges.size(), 0);
  triangle_list(g, [&](const Triangle& t) {
    ++support[index[core::edge_key(t.a, t.b)]];
    ++support[index[core::edge_key(t.b, t.c)]];
    ++support[index[core::edge_key(t.a, t.c)]];
  });

  // Peeling: repeatedly remove the edge with the lowest support; its
  // removal decrements the support of edges sharing its triangles.
  // Live adjacency sets for triangle re-discovery during peeling.
  std::vector<std::vector<vid_t>> adj(g.num_vertices());
  for (const auto& [u, v] : r.edges) {
    adj[u].push_back(v);
    adj[v].push_back(u);
  }
  for (auto& a : adj) std::sort(a.begin(), a.end());

  const auto remove_from = [&](vid_t u, vid_t v) {
    auto& a = adj[u];
    a.erase(std::lower_bound(a.begin(), a.end(), v));
  };

  // Bucket queue on support.
  std::map<std::uint32_t, std::vector<std::uint32_t>> buckets;
  for (std::uint32_t e = 0; e < r.edges.size(); ++e) {
    buckets[support[e]].push_back(e);
  }
  std::vector<bool> removed(r.edges.size(), false);
  r.truss.assign(r.edges.size(), 2);
  std::uint32_t current = 2;

  while (!buckets.empty()) {
    auto it = buckets.begin();
    if (it->second.empty()) {
      buckets.erase(it);
      continue;
    }
    const std::uint32_t e = it->second.back();
    it->second.pop_back();
    if (removed[e] || support[e] != it->first) continue;  // stale entry
    // Truss number of e: its support + 2 at removal time, monotonic.
    current = std::max(current, support[e] + 2);
    r.truss[e] = current;
    r.max_truss = std::max(r.max_truss, current);
    removed[e] = true;

    const auto [u, v] = r.edges[e];
    // Each common live neighbor w forms a triangle whose other two edges
    // lose one support.
    std::vector<vid_t> common;
    std::set_intersection(adj[u].begin(), adj[u].end(), adj[v].begin(),
                          adj[v].end(), std::back_inserter(common));
    remove_from(u, v);
    remove_from(v, u);
    for (vid_t w : common) {
      for (const auto& [a, b] : {std::pair{u, w}, std::pair{v, w}}) {
        const std::uint32_t oe = index[core::edge_key(a, b)];
        if (removed[oe] || support[oe] == 0) continue;
        --support[oe];
        buckets[support[oe]].push_back(oe);
      }
    }
  }
  return r;
}

std::vector<vid_t> ktruss_members(const CSRGraph& g, std::uint32_t k) {
  const auto r = truss_decomposition(g);
  std::vector<bool> in(g.num_vertices(), false);
  for (std::size_t e = 0; e < r.edges.size(); ++e) {
    if (r.truss[e] >= k) {
      in[r.edges[e].first] = true;
      in[r.edges[e].second] = true;
    }
  }
  std::vector<vid_t> out;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (in[v]) out.push_back(v);
  }
  return out;
}

}  // namespace ga::kernels
