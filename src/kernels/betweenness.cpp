#include "kernels/betweenness.hpp"

#include <algorithm>
#include <mutex>

#include "core/prng.hpp"
#include "core/thread_pool.hpp"
#include "engine/traversal.hpp"

namespace ga::kernels {

namespace {

/// Engine functor for the Brandes forward sweep: discover vertices at
/// `level` and accumulate shortest-path counts. A target stays active
/// while it sits on the current level so every frontier predecessor
/// contributes its sigma. Serial-only (sigma sums are order-sensitive);
/// update_atomic delegates for the template's sake but is never invoked
/// because call sites pin opts.parallel = false.
struct BrandesStep {
  std::vector<std::uint32_t>& dist;
  std::vector<double>& sigma;
  std::uint32_t level;

  bool cond(vid_t v) const {
    return dist[v] == kInfDist || dist[v] == level;
  }
  bool update(vid_t u, vid_t v, float) {
    const bool fresh = dist[v] == kInfDist;
    if (fresh) dist[v] = level;
    sigma[v] += sigma[u];
    return fresh;
  }
  bool update_atomic(vid_t u, vid_t v, float w) { return update(u, v, w); }
};

/// Brandes accumulation from one source into `bc`.
void brandes_from(const CSRGraph& g, vid_t s, std::vector<double>& bc,
                  std::vector<std::uint32_t>& dist,
                  std::vector<double>& sigma, std::vector<double>& delta,
                  std::vector<vid_t>& order,
                  engine::Telemetry* telem = nullptr) {
  const vid_t n = g.num_vertices();
  std::fill(dist.begin(), dist.end(), kInfDist);
  std::fill(sigma.begin(), sigma.end(), 0.0);
  std::fill(delta.begin(), delta.end(), 0.0);
  order.clear();

  dist[s] = 0;
  sigma[s] = 1.0;
  // Engine BFS recording visitation order and path counts. Forced push:
  // sigma accumulation needs every (frontier, level) arc applied exactly
  // once, which the serial push path guarantees in discovery order.
  engine::TraversalOptions opts;
  opts.direction = engine::TraversalOptions::Dir::kPush;
  opts.parallel = false;
  engine::Frontier frontier(n);
  frontier.add(s);
  std::uint32_t level = 1;
  while (!frontier.empty()) {
    frontier.for_each([&](vid_t v) { order.push_back(v); });
    BrandesStep step{dist, sigma, level};
    engine::Frontier next = engine::edge_map(g, frontier, step, opts, telem);
    frontier = std::move(next);
    ++level;
  }
  // Dependency back-propagation in reverse BFS order.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const vid_t u = *it;
    for (vid_t v : g.out_neighbors(u)) {
      if (dist[v] == dist[u] + 1) {
        delta[u] += sigma[u] / sigma[v] * (1.0 + delta[v]);
      }
    }
    if (u != s) bc[u] += delta[u];
  }
}

}  // namespace

std::vector<double> betweenness_exact(const CSRGraph& g,
                                      engine::Telemetry* telem) {
  const vid_t n = g.num_vertices();
  std::vector<double> bc(n, 0.0);
  std::vector<std::uint32_t> dist(n);
  std::vector<double> sigma(n), delta(n);
  std::vector<vid_t> order;
  order.reserve(n);
  for (vid_t s = 0; s < n; ++s) {
    brandes_from(g, s, bc, dist, sigma, delta, order, telem);
  }
  return bc;
}

std::vector<double> betweenness_exact_parallel(const CSRGraph& g) {
  const vid_t n = g.num_vertices();
  std::vector<double> bc(n, 0.0);
  std::mutex merge_mu;
  std::function<void(std::uint64_t, std::uint64_t)> body =
      [&](std::uint64_t b, std::uint64_t e) {
        std::vector<double> local(n, 0.0);
        std::vector<std::uint32_t> dist(n);
        std::vector<double> sigma(n), delta(n);
        std::vector<vid_t> order;
        order.reserve(n);
        for (std::uint64_t s = b; s < e; ++s) {
          brandes_from(g, static_cast<vid_t>(s), local, dist, sigma, delta,
                       order);
        }
        std::lock_guard<std::mutex> lk(merge_mu);
        for (vid_t v = 0; v < n; ++v) bc[v] += local[v];
      };
  core::ThreadPool::global().parallel_for(0, n, 16, body);
  return bc;
}

std::vector<double> betweenness_sampled(const CSRGraph& g, vid_t num_pivots,
                                        std::uint64_t seed,
                                        engine::Telemetry* telem) {
  const vid_t n = g.num_vertices();
  GA_CHECK(num_pivots > 0, "betweenness_sampled: need >= 1 pivot");
  if (num_pivots >= n) return betweenness_exact(g, telem);
  std::vector<double> bc(n, 0.0);
  std::vector<std::uint32_t> dist(n);
  std::vector<double> sigma(n), delta(n);
  std::vector<vid_t> order;
  core::Xoshiro256 rng(seed);
  // Sample pivots without replacement via partial Fisher–Yates.
  std::vector<vid_t> ids(n);
  for (vid_t i = 0; i < n; ++i) ids[i] = i;
  for (vid_t i = 0; i < num_pivots; ++i) {
    const auto j = i + rng.next_below(n - i);
    std::swap(ids[i], ids[j]);
    brandes_from(g, ids[i], bc, dist, sigma, delta, order, telem);
  }
  const double scale = static_cast<double>(n) / num_pivots;
  for (double& x : bc) x *= scale;
  return bc;
}

}  // namespace ga::kernels
