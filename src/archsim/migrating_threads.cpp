#include "archsim/migrating_threads.hpp"

#include <algorithm>

namespace ga::archsim {

MigratingThreadConfig MigratingThreadConfig::chick() { return {}; }

MigratingThreadConfig MigratingThreadConfig::rack_asic() {
  MigratingThreadConfig c;
  c.name = "emu-rack-asic";
  c.nodes = 64;
  c.clock_ghz = 1.4;
  c.migration_cycles = 350.0;  // same ~250 ns wire time at the faster clock
  c.watts = 64 * 80.0;
  return c;
}

namespace {

/// Average link traversals for a message in a small system (fixed small
/// hop count keeps the model simple; both machines use the same value so
/// it cancels in the comparison except for the request+reply doubling).
constexpr double kAvgHops = 2.0;

}  // namespace

MtReport run_migrating(const MigratingThreadConfig& cfg,
                       const std::vector<Trace>& threads,
                       std::uint64_t words) {
  GA_CHECK(words > 0, "run_migrating: empty address space");
  const unsigned n_nodelets = cfg.total_nodelets();
  const std::uint64_t words_per_nodelet = ceil_div(words, n_nodelets);

  // Busy cycles accumulated at each nodelet, network cycles on links.
  std::vector<double> nodelet_cycles(n_nodelets, 0.0);
  double total_latency_cycles = 0.0;
  std::uint64_t touches = 0;
  MtReport r;
  r.machine = cfg.name;

  for (std::size_t t = 0; t < threads.size(); ++t) {
    // Threads start at the nodelet owning their first touch.
    unsigned here = threads[t].empty()
                        ? static_cast<unsigned>(t % n_nodelets)
                        : static_cast<unsigned>((threads[t][0].addr % words) /
                                                words_per_nodelet);
    for (const Touch& touch : threads[t]) {
      const auto owner =
          static_cast<unsigned>((touch.addr % words) / words_per_nodelet);
      double lat = 0.0;
      if (owner != here && touch.fire_and_forget) {
        // Launch a single-function remote thread: tiny one-way packet,
        // issuing thread stays put; the work lands at the owner.
        ++r.migrations_or_remote_ops;
        r.network_byte_hops += static_cast<std::uint64_t>(
            cfg.spawn_packet_bytes * kAvgHops);
        nodelet_cycles[here] += cfg.spawn_issue_cycles;
        nodelet_cycles[owner] +=
            cfg.local_access_cycles * touch.words + touch.ops;
        total_latency_cycles += cfg.spawn_issue_cycles;  // fire and forget
        r.local_accesses += touch.words;
        ++touches;
        continue;
      }
      if (owner != here) {
        // Migrate: one one-way ship of the thread state.
        ++r.migrations_or_remote_ops;
        r.network_byte_hops += static_cast<std::uint64_t>(
            cfg.thread_state_bytes * kAvgHops);
        lat += cfg.migration_cycles;
        here = owner;
      }
      r.local_accesses += touch.words;
      const double work =
          cfg.local_access_cycles * touch.words + touch.ops;
      lat += work;
      nodelet_cycles[here] += work;
      total_latency_cycles += lat;
      ++touches;
    }
  }
  // Concurrency model: nodelet work overlaps across the GC thread pool;
  // migrations pipeline behind it. Makespan = max nodelet occupancy plus
  // the migration cycles that cannot hide behind fewer-than-needed threads
  // (with 64 threads/GC they effectively all hide; charge a 2% residue).
  const double makespan_cycles =
      *std::max_element(nodelet_cycles.begin(), nodelet_cycles.end()) +
      0.02 * static_cast<double>(r.migrations_or_remote_ops) *
          cfg.migration_cycles / n_nodelets;
  r.seconds = makespan_cycles / (cfg.clock_ghz * 1e9);
  if (touches > 0) {
    r.avg_op_latency_us =
        total_latency_cycles / touches / (cfg.clock_ghz * 1e9) * 1e6;
  }
  if (r.seconds > 0.0) {
    r.throughput_mops = static_cast<double>(touches) / r.seconds / 1e6;
  }
  return r;
}

MtReport run_conventional(const ConventionalClusterConfig& cfg,
                          const std::vector<Trace>& threads,
                          std::uint64_t words) {
  GA_CHECK(words > 0, "run_conventional: empty address space");
  const std::uint64_t words_per_node = ceil_div(words, cfg.nodes);
  std::vector<double> node_cycles(cfg.nodes, 0.0);
  double total_latency_cycles = 0.0;
  std::uint64_t touches = 0;
  MtReport r;
  r.machine = cfg.name;

  for (std::size_t t = 0; t < threads.size(); ++t) {
    // A conventional thread is pinned to a home node.
    const auto home = static_cast<unsigned>(t % cfg.nodes);
    for (const Touch& touch : threads[t]) {
      const auto owner =
          static_cast<unsigned>((touch.addr % words) / words_per_node);
      double lat = touch.ops;
      if (owner != home) {
        // One request+reply round trip per dependent word (they serialize:
        // the next access depends on the previous reply).
        r.migrations_or_remote_ops += touch.words;
        r.network_byte_hops += static_cast<std::uint64_t>(
            (cfg.request_bytes + cfg.reply_bytes) * kAvgHops * touch.words);
        lat += cfg.remote_latency_cycles * touch.words;
        // The round trips occupy the issuing core except what the
        // async-runtime concurrency hides.
        node_cycles[home] += touch.ops + cfg.remote_latency_cycles *
                                             touch.words /
                                             static_cast<double>(cfg.concurrency);
      } else {
        r.local_accesses += touch.words;
        lat += cfg.local_access_cycles * touch.words;
        node_cycles[home] += touch.ops + cfg.local_access_cycles * touch.words;
      }
      total_latency_cycles += lat;
      ++touches;
    }
  }
  const double makespan_cycles =
      *std::max_element(node_cycles.begin(), node_cycles.end());
  r.seconds = makespan_cycles / (cfg.clock_ghz * 1e9);
  if (touches > 0) {
    r.avg_op_latency_us =
        total_latency_cycles / touches / (cfg.clock_ghz * 1e9) * 1e6;
  }
  if (r.seconds > 0.0) {
    r.throughput_mops = static_cast<double>(touches) / r.seconds / 1e6;
  }
  return r;
}

}  // namespace ga::archsim
