// Behavioral model of the Fig. 4 sparse linear-algebra accelerator
// ([27],[28]): address generators stream pairs of sparse vectors out of a
// memory built for irregular access, a hardware merge sorter aligns
// matching indices, and a MAC ALU retires one useful multiply-accumulate
// per lane per cycle. CSR/CSC are hardwired, so there is no pointer
// chasing and no cache-line waste: cycles are proportional to the useful
// nonzero work, not to the random-access pattern.
//
// The simulator is event-count based: it is driven by the exact SpGEMM
// instance (via ga::spla::SpgemmStats) that the conventional-node model
// also runs, so the comparison isolates the architectural effect.
#pragma once

#include <cstdint>
#include <string>

#include "spla/spgemm.hpp"

namespace ga::archsim {

struct SparseAccelConfig {
  std::string name = "accel-fpga";
  unsigned nodes = 8;            // prototype: 8 FPGA nodes
  double clock_ghz = 0.2;        // FPGA fabric clock
  unsigned mac_lanes = 8;        // parallel sorter/MAC pipelines per node
  /// Pipeline overhead cycles to launch one (A-row, B-row) vector pair
  /// through the address generator / sorter.
  double row_setup_cycles = 4.0;
  /// Cycles per output nonzero to write back through the sparse formatter.
  double writeback_cycles = 0.25;
  double watts_per_node = 25.0;

  static SparseAccelConfig fpga_prototype() { return {}; }
  static SparseAccelConfig asic();  // projected ASIC (§V.A: another ~10x)
};

struct SimReport {
  std::string machine;
  double seconds = 0.0;
  double gflops = 0.0;           // useful multiplies / second / 1e9
  double watts = 0.0;
  double gflops_per_watt = 0.0;
  std::uint64_t useful_ops = 0;
};

/// Simulate C = A*B on the accelerator. `stats` must come from running the
/// same instance through ga::spla::spgemm.
SimReport simulate_accel_spgemm(const SparseAccelConfig& cfg,
                                const spla::CsrMatrix& A,
                                const spla::CsrMatrix& B,
                                const spla::SpgemmStats& stats);

}  // namespace ga::archsim
