// Cache-hierarchy node model (Cray XT4-class and XK7-class) for the same
// SpGEMM instances the sparse accelerator runs (§V.A comparison). On very
// sparse operands the inner Gustavson loop is dominated by random accesses
// into B's rows and the scattered accumulator: most loads miss, and each
// miss drags a full cache line for one useful word.
#pragma once

#include <cstdint>
#include <string>

#include "spla/spgemm.hpp"

namespace ga::archsim {

struct ConventionalNodeConfig {
  std::string name = "xt4-node";
  double clock_ghz = 2.3;        // Opteron-class
  unsigned superscalar = 2;      // sustained ops/cycle on streaming code
  double miss_penalty_cycles = 180.0;  // DRAM round trip
  double line_bytes = 64.0;
  double word_bytes = 8.0;
  /// Peak miss probability once the working set spills the cache
  /// (very sparse matrices have no reuse to save them).
  double max_miss_rate = 0.6;
  /// Last-level cache capacity; the achieved miss rate scales with the
  /// matrix footprint relative to this.
  double cache_bytes = 1.0 * 1024 * 1024;
  /// Overlap factor: fraction of miss latency hidden by the OoO window.
  double mlp_overlap = 0.55;
  double watts_per_node = 250.0;

  static ConventionalNodeConfig xt4();   // the paper's node comparison
  static ConventionalNodeConfig xk7();   // Titan-class rack comparison
};

struct SimReport;  // from sparse_accel.hpp

/// Simulate C = A*B on a conventional node (same stats object).
struct ConvReport {
  std::string machine;
  double seconds = 0.0;
  double gflops = 0.0;
  double watts = 0.0;
  double gflops_per_watt = 0.0;
  std::uint64_t cache_misses = 0;
};

ConvReport simulate_conventional_spgemm(const ConventionalNodeConfig& cfg,
                                        const spla::CsrMatrix& A,
                                        const spla::CsrMatrix& B,
                                        const spla::SpgemmStats& stats);

}  // namespace ga::archsim
