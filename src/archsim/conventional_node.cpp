#include "archsim/conventional_node.hpp"

#include <algorithm>

#include "core/common.hpp"

namespace ga::archsim {

ConventionalNodeConfig ConventionalNodeConfig::xt4() { return {}; }

ConventionalNodeConfig ConventionalNodeConfig::xk7() {
  ConventionalNodeConfig c;
  c.name = "xk7-node";
  c.clock_ghz = 2.2;
  c.superscalar = 4;          // Interlagos module, wider core
  c.miss_penalty_cycles = 160.0;
  c.cache_bytes = 2.0 * 1024 * 1024;
  c.mlp_overlap = 0.60;
  c.watts_per_node = 300.0;   // includes the (idle, for SpGEMM) GPU share
  return c;
}

ConvReport simulate_conventional_spgemm(const ConventionalNodeConfig& cfg,
                                        const spla::CsrMatrix& A,
                                        const spla::CsrMatrix& B,
                                        const spla::SpgemmStats& stats) {
  GA_CHECK(A.cols() == B.rows(), "simulate_conventional_spgemm: shape mismatch");
  // Per multiply: a load of the B element, a load/store on the scattered
  // accumulator, plus loop/index arithmetic (~6 ops).
  const double accesses_per_mul = 2.0;
  const double work_ops_per_mul = 6.0;
  const double total_accesses =
      static_cast<double>(stats.multiplies) * accesses_per_mul +
      static_cast<double>(stats.rows_touched) * 4.0;  // row-pointer derefs
  // Miss rate scales with how badly B + the accumulator spill the cache
  // (12 bytes per stored nonzero: 4-byte index + 8-byte value).
  const double footprint = static_cast<double>(B.nnz()) * 12.0;
  const double miss_rate =
      cfg.max_miss_rate * std::min(1.0, footprint / cfg.cache_bytes);
  const double misses = total_accesses * miss_rate;
  const double stall_cycles =
      misses * cfg.miss_penalty_cycles * (1.0 - cfg.mlp_overlap);
  const double work_cycles =
      static_cast<double>(stats.multiplies) * work_ops_per_mul /
      cfg.superscalar;
  const double cycles = work_cycles + stall_cycles;
  ConvReport r;
  r.machine = cfg.name;
  r.cache_misses = static_cast<std::uint64_t>(misses);
  r.seconds = cycles / (cfg.clock_ghz * 1e9);
  r.watts = cfg.watts_per_node;
  if (r.seconds > 0.0) {
    r.gflops = static_cast<double>(stats.multiplies) / r.seconds / 1e9;
    r.gflops_per_watt = r.gflops / r.watts;
  }
  return r;
}

}  // namespace ga::archsim
