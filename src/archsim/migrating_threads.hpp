// Behavioral simulator of the Fig. 5 migrating-thread (Emu) architecture
// [16], and of a conventional remote-memory cluster executing the SAME
// memory-access traces. The modeled contrast is the paper's §V.B claim:
// pointer-chasing with migrating threads consumes "half or less the
// bandwidth and latency" of remote reads, because a migration is ONE
// one-way network traversal carrying the thread state, while a remote
// read is a request AND a reply.
//
// The machine: nodes × nodelets, each nodelet owning a memory channel and
// a set of heavily multithreaded Gossamer Cores. Data is block-distributed
// across nodelets. A thread executes instructions at its current nodelet;
// touching an address owned elsewhere suspends and ships it. Concurrency
// is modeled by accumulating busy cycles per nodelet (threads hide each
// other's latency); makespan = max nodelet occupancy + network serialization.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/common.hpp"

namespace ga::archsim {

/// A thread's behavior is a trace of object touches. A touch names the
/// object's address, how many DEPENDENT words must be accessed there
/// (e.g. read a pointer, then atomically update a field = 2), and the
/// instructions executed afterwards. A conventional thread pays one
/// request+reply round trip per dependent word when the object is remote;
/// a migrating thread ships once and does every access locally.
struct Touch {
  std::uint64_t addr = 0;   // word address in the global shared space
  std::uint32_t words = 1;  // dependent word accesses at this object
  std::uint32_t ops = 1;    // instructions executed after the access
  /// Fire-and-forget: the result is not needed (e.g. a random table
  /// update). The migrating-thread machine services these with a tiny
  /// single-function remote thread ("instructions may be invoked that
  /// launch tiny single-function threads", §V.B) — one small one-way
  /// packet, and the issuing thread does NOT move. The conventional
  /// machine can likewise use a one-way remote write (no reply), but
  /// still pays full message headers per word.
  bool fire_and_forget = false;
};
using Trace = std::vector<Touch>;

struct MigratingThreadConfig {
  std::string name = "emu-chick";
  unsigned nodes = 8;
  unsigned nodelets_per_node = 8;
  unsigned gcs_per_nodelet = 4;
  unsigned threads_per_gc = 64;
  double clock_ghz = 0.175;          // FPGA Gossamer clock
  double local_access_cycles = 6.0;  // nodelet-local DRAM via channel
  double migration_cycles = 90.0;    // suspend+package+ship+resume (one way)
  std::uint32_t thread_state_bytes = 96;  // registers + PC + header
  /// Payload of a spawned single-function remote thread (opcode+addr+operand).
  std::uint32_t spawn_packet_bytes = 32;
  double spawn_issue_cycles = 2.0;   // one instruction + launch overhead
  double watts = 250.0;

  unsigned total_nodelets() const { return nodes * nodelets_per_node; }
  static MigratingThreadConfig chick();       // 8-node deskside (current)
  static MigratingThreadConfig rack_asic();   // Emu2-class
};

struct ConventionalClusterConfig {
  std::string name = "mpi-cluster";
  unsigned nodes = 8;
  double clock_ghz = 2.4;
  double local_access_cycles = 4.0;
  double remote_latency_cycles = 2400.0;  // ~1 us request+reply round trip
  std::uint32_t request_bytes = 40;   // header + address
  std::uint32_t reply_bytes = 72;     // header + data word(s)
  /// Outstanding remote ops per node (software pipelining / async runtime).
  unsigned concurrency = 16;
  double watts = 8 * 350.0;
};

struct MtReport {
  std::string machine;
  double seconds = 0.0;
  std::uint64_t local_accesses = 0;
  std::uint64_t migrations_or_remote_ops = 0;
  /// Total bytes × link-traversals injected into the network (the §V.B
  /// bandwidth comparison: one-way state ship vs request+reply).
  std::uint64_t network_byte_hops = 0;
  double avg_op_latency_us = 0.0;   // mean completion latency per touch
  double throughput_mops = 0.0;     // touches per second / 1e6
};

/// Run traces on the migrating-thread machine. Addresses are interpreted
/// modulo the nodelet-distributed space of `words` words.
MtReport run_migrating(const MigratingThreadConfig& cfg,
                       const std::vector<Trace>& threads,
                       std::uint64_t words);

/// Run the SAME traces on a conventional cluster with remote reads.
MtReport run_conventional(const ConventionalClusterConfig& cfg,
                          const std::vector<Trace>& threads,
                          std::uint64_t words);

}  // namespace ga::archsim
