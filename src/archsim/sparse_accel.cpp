#include "archsim/sparse_accel.hpp"

#include "core/common.hpp"

namespace ga::archsim {

SparseAccelConfig SparseAccelConfig::asic() {
  SparseAccelConfig c;
  c.name = "accel-asic";
  c.clock_ghz = 1.0;        // ASIC clock
  c.mac_lanes = 16;         // denser datapath: ~10x the FPGA lane-rate
  c.row_setup_cycles = 1.0; // deeper pipelining hides vector launch
  c.writeback_cycles = 0.1;
  c.watts_per_node = 15.0;  // better perf AND better power
  return c;
}

SimReport simulate_accel_spgemm(const SparseAccelConfig& cfg,
                                const spla::CsrMatrix& A,
                                const spla::CsrMatrix& B,
                                const spla::SpgemmStats& stats) {
  GA_CHECK(A.cols() == B.rows(), "simulate_accel_spgemm: shape mismatch");
  // Work decomposition: row pairs launched through the pipeline, useful
  // multiplies streamed at one per lane-cycle, output nonzeros formatted.
  const double pair_launches = static_cast<double>(stats.rows_touched);
  const double mac_cycles =
      static_cast<double>(stats.multiplies) / cfg.mac_lanes;
  const double setup_cycles = pair_launches * cfg.row_setup_cycles;
  const double wb_cycles =
      static_cast<double>(stats.output_nnz) * cfg.writeback_cycles;
  // Rows distribute across nodes; assume balanced (RMAT skew is handled by
  // the 3D-torus work distribution in the real machine).
  const double node_cycles =
      (mac_cycles + setup_cycles + wb_cycles) / cfg.nodes;
  SimReport r;
  r.machine = cfg.name;
  r.useful_ops = stats.multiplies;
  r.seconds = node_cycles / (cfg.clock_ghz * 1e9);
  r.watts = cfg.watts_per_node * cfg.nodes;
  if (r.seconds > 0.0) {
    r.gflops = static_cast<double>(stats.multiplies) / r.seconds / 1e9;
    r.gflops_per_watt = r.gflops / r.watts;
  }
  return r;
}

}  // namespace ga::archsim
