// Trace generators driving the migrating-thread vs conventional-cluster
// comparison (§V.B): pointer chasing with atomic updates, GUPS-style
// random table updates, BFS edge streaming, and the streaming-Jaccard
// query service whose "10s of microseconds" response time the paper
// projects. Addresses are graph vertex ids (one word per vertex stands in
// for the vertex's adjacency header — the thing a traversal must touch).
#pragma once

#include <cstdint>
#include <vector>

#include "archsim/migrating_threads.hpp"
#include "graph/csr_graph.hpp"

namespace ga::archsim {

/// Dependent random chains: each thread follows `chain_len` pointers
/// through a `words`-word table ("pointer-chasing with atomic updates").
std::vector<Trace> pointer_chase_traces(unsigned num_threads,
                                        unsigned chain_len,
                                        std::uint64_t words,
                                        std::uint64_t seed = 1);

/// Independent random updates into a large table (GUPS-like; the paper's
/// "random updates into a very large table" single-function threads).
/// `fire_and_forget=true` marks the touches so the migrating machine uses
/// spawned single-function remote threads instead of migrating.
std::vector<Trace> random_update_traces(unsigned num_threads,
                                        unsigned updates_per_thread,
                                        std::uint64_t words,
                                        std::uint64_t seed = 1,
                                        bool fire_and_forget = false);

/// Edge-following traces from a BFS over g: one thread per frontier chunk,
/// touching each discovered neighbor.
std::vector<Trace> bfs_traces(const graph::CSRGraph& g, vid_t source,
                              unsigned num_threads);

/// Streaming Jaccard query service: one trace per query vertex — touch the
/// query vertex, each neighbor, and each 2-hop neighbor, with the merge
/// ops accounted. Returns one Trace per query so per-query latency can be
/// reported.
std::vector<Trace> jaccard_query_traces(const graph::CSRGraph& g,
                                        const std::vector<vid_t>& queries);

}  // namespace ga::archsim
