#include "archsim/workloads.hpp"

#include <algorithm>

#include "core/hash.hpp"
#include "core/prng.hpp"
#include "kernels/bfs.hpp"

namespace ga::archsim {

std::vector<Trace> pointer_chase_traces(unsigned num_threads,
                                        unsigned chain_len,
                                        std::uint64_t words,
                                        std::uint64_t seed) {
  GA_CHECK(words > 1, "pointer_chase: table too small");
  core::Xoshiro256 rng(seed);
  std::vector<Trace> traces(num_threads);
  for (auto& tr : traces) {
    tr.reserve(chain_len);
    std::uint64_t cur = rng.next_below(words);
    for (unsigned i = 0; i < chain_len; ++i) {
      // Next pointer is a hash of the current cell (dependent chain).
      // Each hop reads the next-pointer then atomically updates a field:
      // two dependent words at the object.
      tr.push_back({cur, 2, 2});
      cur = core::mix64(cur ^ seed) % words;
    }
  }
  return traces;
}

std::vector<Trace> random_update_traces(unsigned num_threads,
                                        unsigned updates_per_thread,
                                        std::uint64_t words,
                                        std::uint64_t seed,
                                        bool fire_and_forget) {
  core::Xoshiro256 rng(seed);
  std::vector<Trace> traces(num_threads);
  for (auto& tr : traces) {
    tr.reserve(updates_per_thread);
    for (unsigned i = 0; i < updates_per_thread; ++i) {
      tr.push_back({rng.next_below(words), 1, 1, fire_and_forget});
    }
  }
  return traces;
}

std::vector<Trace> bfs_traces(const graph::CSRGraph& g, vid_t source,
                              unsigned num_threads) {
  GA_CHECK(num_threads > 0, "bfs_traces: need >= 1 thread");
  const auto result = kernels::bfs(g, source, kernels::BfsMode::kTopDown);
  // Reconstruct the visit order by level, then deal edges round-robin.
  std::vector<vid_t> order;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (result.dist[v] != kInfDist) order.push_back(v);
  }
  std::sort(order.begin(), order.end(), [&](vid_t a, vid_t b) {
    return result.dist[a] != result.dist[b] ? result.dist[a] < result.dist[b]
                                            : a < b;
  });
  std::vector<Trace> traces(num_threads);
  std::size_t t = 0;
  for (vid_t u : order) {
    traces[t % num_threads].push_back({u, 1, 1});
    for (vid_t v : g.out_neighbors(u)) {
      traces[t % num_threads].push_back({v, 1, 2});  // check + label
    }
    ++t;
  }
  return traces;
}

std::vector<Trace> jaccard_query_traces(const graph::CSRGraph& g,
                                        const std::vector<vid_t>& queries) {
  std::vector<Trace> traces;
  traces.reserve(queries.size());
  for (vid_t q : queries) {
    GA_CHECK(q < g.num_vertices(), "jaccard query out of range");
    Trace tr;
    tr.push_back({q, 1, 2});
    for (vid_t w : g.out_neighbors(q)) {
      tr.push_back({w, 1, 2});  // fetch neighbor list header
      for (vid_t v : g.out_neighbors(w)) {
        tr.push_back({v, 1, 3});  // accumulate shared-count (hash update)
      }
    }
    traces.push_back(std::move(tr));
  }
  return traces;
}

}  // namespace ga::archsim
