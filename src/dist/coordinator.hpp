// Coordinator: the scatter/gather front of the sharded serving subsystem.
//
// One coordinator owns a fleet of shard processes (or in-process shard
// threads — see launcher.hpp), a Partitioner mapping vertices to shards,
// and the replication history that keeps the fleet recoverable:
//
//  * apply() splits a global DeltaBatch into per-shard sub-batches and
//    replicates them as one epoch to every shard; each shard appends the
//    epoch to its own durable EpochLog before acking, so the cluster-wide
//    invariant is the single-store one — acked ⇒ durable on every shard.
//  * bfs()/wcc()/pagerank() run the registry kernels as distributed
//    scatter/gather sessions: per-shard frontier super-steps plus
//    boundary-exchange rounds for BFS/WCC, exact ghost-contribution
//    power iterations for PageRank. Results are merged from per-shard
//    partials and are digest-identical to the single-process kernels.
//  * Fail-over: a heartbeat monitor pings every idle shard; a missed
//    deadline (or any mid-operation send/recv failure) marks the shard
//    dead, and the monitor respawns it — the replacement recovers from its
//    own epoch log (kInitRecover), receives a catch-up resend of epochs
//    past its recovered point, and rejoins. Operations that hit a dead
//    shard retry transparently until `query_wait_ms`, then degrade to
//    kUnavailable; they never return a partial or wrong answer.
//
// Thread safety: public operations serialize on an internal op mutex; the
// monitor thread shares shard channels via per-shard mutexes (it skips
// shards an operation currently holds). status_json() is safe from any
// thread, including the status-socket server.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/status.hpp"
#include "dist/launcher.hpp"
#include "dist/message.hpp"
#include "dist/partitioner.hpp"
#include "store/graph_view.hpp"

namespace ga::dist {

struct CoordinatorOptions {
  std::uint32_t shards = 3;
  PartitionMethod method = PartitionMethod::kHash;
  std::uint64_t seed = 1;
  /// Root directory; shard i's epoch log lives in <root>/shard-<i>.
  std::string root_dir;
  std::uint64_t checkpoint_every = 16;
  bool sync_each_append = true;
  /// true: real child processes (needs shard_binary); false: in-process
  /// shard threads (the ASan/CI harness mode).
  bool process_isolation = true;
  std::string shard_binary;
  int heartbeat_interval_ms = 100;
  int heartbeat_timeout_ms = 1000;
  bool auto_respawn = true;
  /// Operations retry over fail-over for this long before degrading to
  /// kUnavailable (the admission policy's "queue, then shed" behaviour).
  int query_wait_ms = 8000;
  /// Per-message deadline on healthy channels.
  int io_timeout_ms = 20000;
  /// Serve status_json() on an AF_UNIX socket at <root>/coordinator.sock
  /// (what `ga_cli dist status` queries).
  bool start_status_server = false;
};

struct DistBfsResult {
  std::vector<std::uint32_t> dist;  // kInfDist if unreached
  std::uint64_t reached = 0;
  std::uint32_t rounds = 0;         // boundary-exchange rounds
  std::uint64_t epoch = 0;
};

struct DistWccResult {
  std::vector<vid_t> label;  // canonical min-vertex-id labels
  vid_t num_components = 0;
  vid_t largest_size = 0;
  std::uint32_t rounds = 0;
  std::uint64_t epoch = 0;
};

struct DistPrResult {
  std::vector<double> rank;  // bit-identical to kernels::pagerank
  unsigned iterations = 0;
  double final_delta = 0.0;  // sum of per-shard partials (reporting only)
  std::uint64_t epoch = 0;
};

struct CoordinatorStats {
  std::uint64_t epochs_applied = 0;
  std::uint64_t queries = 0;
  std::uint64_t unavailable = 0;   // operations shed after query_wait_ms
  std::uint64_t deaths = 0;        // shard failures detected
  std::uint64_t respawns = 0;      // successful recover-and-rejoin cycles
  std::uint64_t op_retries = 0;    // operation attempts abandoned mid-flight
};

class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions opts);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Partition `base` (must be undirected — the subdomain contract is that
  /// a vertex's owner holds its complete neighborhood), spawn the fleet,
  /// seed every shard, and start the heartbeat monitor.
  core::Status start(const graph::CSRGraph& base);

  /// Replicate one global delta batch as the next epoch on every shard.
  /// Returns the new epoch once every shard has acknowledged (= durably
  /// logged) it.
  core::StatusOr<std::uint64_t> apply(const store::DeltaBatch& batch);

  core::StatusOr<DistBfsResult> bfs(vid_t source);
  core::StatusOr<DistWccResult> wcc();
  core::StatusOr<DistPrResult> pagerank(double damping = 0.85,
                                        unsigned iterations = 20);

  /// Reassemble the global graph from every shard's current sub-CSR plus
  /// folded properties — the digest cross-check surface (compare
  /// store::view_digest of this against the single-process store).
  core::StatusOr<store::GraphView> fetch_view();

  /// Chaos hook: SIGKILL (process mode) / socket-sever (in-proc mode)
  /// shard `idx` without telling the monitor — detection and respawn must
  /// come from the heartbeat path, which is what fail-over tests exercise.
  void kill_shard(std::uint32_t idx);

  /// Block until every shard is alive again (tests bound recovery time).
  bool wait_all_alive(int timeout_ms);

  /// Real child pid in process mode, -1 in-proc mode — fail-over tests
  /// assert the respawned shard is a genuinely new process.
  pid_t shard_pid(std::uint32_t idx) const;

  std::string status_json() const;
  std::uint64_t epoch() const { return epoch_.load(); }
  std::uint32_t shards() const { return opts_.shards; }
  bool shard_alive(std::uint32_t idx) const;
  CoordinatorStats stats() const;
  const CoordinatorOptions& options() const { return opts_; }
  /// Owner-map access for tests/CLI; only meaningful between operations.
  const Partitioner& partitioner() const;

  /// Graceful teardown: stop the monitor and status server, shut every
  /// shard down, reap. Idempotent; the destructor calls it.
  void stop();

  static std::string shard_dir(const std::string& root, std::uint32_t idx);
  static std::string status_socket_path(const std::string& root);

 private:
  struct Shard {
    std::mutex mu;  // serializes channel use (operations vs monitor)
    MsgChannel ch;
    std::atomic<bool> alive{false};
    std::atomic<std::uint64_t> respawns{0};
    std::atomic<std::uint64_t> epoch{0};  // last acked epoch
  };

  /// Thrown inside an operation when a shard exchange fails; the op-level
  /// retry loop catches it, waits for recovery, and reruns the operation.
  struct ShardFailure {
    std::uint32_t shard;
    core::Status status;
  };

  // One locked request/reply exchange; marks the shard dead and throws
  // ShardFailure on any channel error or kError reply.
  Message roundtrip(std::uint32_t idx, MsgType send, const ByteWriter& w,
                    MsgType want);
  void mark_dead(std::uint32_t idx);
  bool wait_healthy(std::chrono::steady_clock::time_point deadline);
  /// Retry `fn` over fail-over (wait healthy → attempt → on ShardFailure
  /// wait for the monitor's respawn and rerun) until query_wait_ms, then
  /// kUnavailable. Caller holds op_mu_.
  core::Status retry_op(const char* what, const std::function<void()>& fn);

  // Single attempts, run under retry_op; throw ShardFailure on a dead
  // shard and ga::Error on contract violations (not retried).
  std::uint64_t apply_once(std::uint64_t target);
  DistBfsResult bfs_once(vid_t source);
  DistWccResult wcc_once();
  DistPrResult pagerank_once(double damping, unsigned iterations);
  store::GraphView fetch_once();

  void init_shard(std::uint32_t idx, const PartitionPlan& plan,
                  const graph::CSRGraph& base);
  // Monitor-side recovery: kill/reap/launch, kInitRecover with the current
  // owner map, catch-up resend of history epochs past the recovered one.
  bool respawn_shard(std::uint32_t idx);
  void monitor_main();
  void status_server_main();

  ByteWriter identity_message(std::uint32_t idx) const;

  CoordinatorOptions opts_;
  std::unique_ptr<ShardLauncher> launcher_;
  std::unique_ptr<Partitioner> partitioner_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::mutex op_mu_;  // serializes apply/queries/fetch
  std::atomic<std::uint64_t> epoch_{0};

  /// Replication history for catch-up resends: encoded per-shard
  /// sub-batches per epoch, plus the owner-map snapshot after the newest
  /// epoch. Guarded by history_mu_ (appended under op_mu_ during apply,
  /// read by the monitor during respawn). Production would truncate this
  /// at the fleet-wide minimum checkpoint epoch; the growth here is
  /// bounded by test/bench workloads.
  mutable std::mutex history_mu_;
  std::vector<std::vector<std::vector<char>>> history_;  // [epoch-1][shard]
  std::vector<std::uint8_t> owner_snapshot_;

  mutable std::mutex health_mu_;
  std::condition_variable health_cv_;

  std::thread monitor_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  std::thread status_thread_;
  int status_listen_fd_ = -1;

  mutable std::mutex stats_mu_;
  CoordinatorStats stats_;
};

}  // namespace ga::dist
