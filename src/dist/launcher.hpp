// Shard lifecycle backends for the dist coordinator.
//
// ProcessLauncher is the real deployment shape: each shard is a child
// process (posix_spawn of the ga_shard binary) holding its endpoint of an
// AF_UNIX socketpair on fd 3, killed with SIGKILL and reaped with waitpid.
// InprocLauncher runs the identical ShardServer loop on a thread inside
// the coordinator process — the same protocol, store, and epoch log, with
// "kill -9" emulated by shutting down the shard's socket (the server loop
// sees EOF exactly as it would a dead peer). The in-process mode exists so
// the whole distributed stack — including fail-over and epoch-log
// recovery — runs under a single ASan/TSan-instrumented binary and in
// environments where spawning children is awkward.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include <sys/types.h>

#include "dist/message.hpp"
#include "dist/shard_server.hpp"

namespace ga::dist {

class ShardLauncher {
 public:
  virtual ~ShardLauncher() = default;

  /// Start (or restart) shard `idx`; returns the coordinator-side channel.
  /// A previous incarnation of the same index must be reaped first.
  virtual MsgChannel launch(std::uint32_t idx) = 0;

  /// Forcibly terminate shard `idx` mid-whatever (SIGKILL / socket
  /// shutdown). Idempotent; no-op for unknown or already-dead shards.
  virtual void kill(std::uint32_t idx) = 0;

  /// Release the dead shard's resources (waitpid / thread join) so the
  /// index can be launched again. Idempotent.
  virtual void reap(std::uint32_t idx) = 0;
};

/// Real child processes speaking the protocol over inherited fd 3.
class ProcessLauncher : public ShardLauncher {
 public:
  /// `shard_binary` is the ga_shard executable path.
  explicit ProcessLauncher(std::string shard_binary);
  ~ProcessLauncher() override;

  MsgChannel launch(std::uint32_t idx) override;
  void kill(std::uint32_t idx) override;
  void reap(std::uint32_t idx) override;

  /// pid of the running incarnation (-1 if none) — tests assert the
  /// respawned shard is a genuinely new process.
  pid_t pid(std::uint32_t idx) const;

 private:
  std::string binary_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint32_t, pid_t> pids_;
};

/// ShardServer threads inside the coordinator process.
class InprocLauncher : public ShardLauncher {
 public:
  InprocLauncher() = default;
  ~InprocLauncher() override;

  MsgChannel launch(std::uint32_t idx) override;
  void kill(std::uint32_t idx) override;
  void reap(std::uint32_t idx) override;

 private:
  struct Worker {
    std::thread thread;
    /// The shard-side channel, shared with the serving thread so kill()
    /// can shut the socket down underneath a blocked recv.
    std::shared_ptr<MsgChannel> channel;
    std::shared_ptr<ShardServer> server;
  };
  mutable std::mutex mu_;
  std::unordered_map<std::uint32_t, Worker> workers_;
};

}  // namespace ga::dist
