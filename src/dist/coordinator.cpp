#include "dist/coordinator.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "store/delta.hpp"

namespace ga::dist {

namespace fs = std::filesystem;
using steady = std::chrono::steady_clock;

std::string Coordinator::shard_dir(const std::string& root,
                                   std::uint32_t idx) {
  return root + "/shard-" + std::to_string(idx);
}

std::string Coordinator::status_socket_path(const std::string& root) {
  return root + "/coordinator.sock";
}

Coordinator::Coordinator(CoordinatorOptions opts) : opts_(std::move(opts)) {
  GA_CHECK(opts_.shards >= 1, "dist: coordinator needs >= 1 shard");
  GA_CHECK(!opts_.root_dir.empty(), "dist: coordinator needs a root dir");
  GA_CHECK(!opts_.process_isolation || !opts_.shard_binary.empty(),
           "dist: process isolation needs a shard binary path");
}

Coordinator::~Coordinator() { stop(); }

// ---------------------------------------------------------------------------
// Startup

ByteWriter Coordinator::identity_message(std::uint32_t idx) const {
  ByteWriter w;
  w.put<std::uint32_t>(idx);
  w.put<std::uint32_t>(opts_.shards);
  w.put<std::uint64_t>(opts_.checkpoint_every);
  w.put<std::uint8_t>(opts_.sync_each_append ? 1 : 0);
  w.put_str(shard_dir(opts_.root_dir, idx));
  {
    std::lock_guard<std::mutex> lk(history_mu_);
    w.put_vec(owner_snapshot_);
  }
  return w;
}

void Coordinator::init_shard(std::uint32_t idx, const PartitionPlan& plan,
                             const graph::CSRGraph& base) {
  const graph::CSRGraph sub = extract_shard(base, plan, idx);
  ByteWriter w = identity_message(idx);
  w.put_vec(sub.offsets());
  w.put_vec(sub.targets());
  w.put_vec(sub.weights());
  Shard& s = *shards_[idx];
  s.ch.send(MsgType::kInit, w).or_throw();
  core::StatusOr<Message> m =
      s.ch.expect(MsgType::kInitAck, opts_.io_timeout_ms);
  m.status().or_throw();
  ByteReader r(m.value().body);
  const auto epoch = r.get<std::uint64_t>();
  GA_CHECK(epoch == 0, "dist: fresh shard reported epoch " +
                           std::to_string(epoch));
  s.epoch.store(0);
  s.alive.store(true);
}

core::Status Coordinator::start(const graph::CSRGraph& base) {
  std::lock_guard<std::mutex> op(op_mu_);
  if (started_) {
    return core::Status::FailedPrecondition("dist: coordinator already started");
  }
  if (base.directed()) {
    // The subdomain contract — owner holds the complete neighborhood,
    // which the scatter/gather kernels rely on — needs symmetric arcs.
    return core::Status::InvalidArgument(
        "dist: sharded serving requires an undirected base graph");
  }
  try {
    PartitionPlanOptions popts;
    popts.shards = opts_.shards;
    popts.method = opts_.method;
    popts.seed = opts_.seed;
    PartitionPlan plan = make_plan(base, popts);
    partitioner_ = std::make_unique<Partitioner>(plan);
    {
      std::lock_guard<std::mutex> lk(history_mu_);
      owner_snapshot_ = partitioner_->owner_map();
      history_.clear();
    }
    fs::create_directories(opts_.root_dir);
    for (std::uint32_t i = 0; i < opts_.shards; ++i) {
      fs::create_directories(shard_dir(opts_.root_dir, i));
    }
    if (opts_.process_isolation) {
      launcher_ = std::make_unique<ProcessLauncher>(opts_.shard_binary);
    } else {
      launcher_ = std::make_unique<InprocLauncher>();
    }
    shards_.clear();
    for (std::uint32_t i = 0; i < opts_.shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
    for (std::uint32_t i = 0; i < opts_.shards; ++i) {
      shards_[i]->ch = launcher_->launch(i);
      init_shard(i, plan, base);
    }
    epoch_.store(0);
    stop_.store(false);
    started_ = true;
    monitor_ = std::thread([this] { monitor_main(); });
    if (opts_.start_status_server) {
      const std::string path = status_socket_path(opts_.root_dir);
      ::unlink(path.c_str());
      status_listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
      GA_CHECK(status_listen_fd_ >= 0, "dist: status socket failed");
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      GA_CHECK(path.size() < sizeof(addr.sun_path),
               "dist: status socket path too long: " + path);
      std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
      GA_CHECK(::bind(status_listen_fd_,
                      reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) == 0,
               "dist: cannot bind " + path + ": " + std::strerror(errno));
      GA_CHECK(::listen(status_listen_fd_, 4) == 0, "dist: listen failed");
      status_thread_ = std::thread([this] { status_server_main(); });
    }
    return core::Status::Ok();
  } catch (const std::exception& e) {
    return core::Status::Internal(std::string("dist: start failed: ") +
                                  e.what());
  }
}

// ---------------------------------------------------------------------------
// Health plumbing

void Coordinator::mark_dead(std::uint32_t idx) {
  Shard& s = *shards_[idx];
  if (s.alive.exchange(false)) {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.deaths;
  }
  health_cv_.notify_all();
}

bool Coordinator::wait_healthy(steady::time_point deadline) {
  std::unique_lock<std::mutex> lk(health_mu_);
  return health_cv_.wait_until(lk, deadline, [&] {
    for (const auto& s : shards_) {
      if (!s->alive.load()) return false;
    }
    return true;
  });
}

bool Coordinator::wait_all_alive(int timeout_ms) {
  return wait_healthy(steady::now() + std::chrono::milliseconds(timeout_ms));
}

bool Coordinator::shard_alive(std::uint32_t idx) const {
  return idx < shards_.size() && shards_[idx]->alive.load();
}

Message Coordinator::roundtrip(std::uint32_t idx, MsgType send,
                               const ByteWriter& w, MsgType want) {
  Shard& s = *shards_[idx];
  std::lock_guard<std::mutex> lk(s.mu);
  if (!s.alive.load()) {
    throw ShardFailure{idx, core::Status::Unavailable(
                                "shard " + std::to_string(idx) + " is down")};
  }
  core::Status st = s.ch.send(send, w);
  if (st.ok()) {
    core::StatusOr<Message> m = s.ch.expect(want, opts_.io_timeout_ms);
    if (m.ok()) return std::move(m).value();
    st = m.status();
  }
  // Any channel-level failure — EOF, torn frame, timeout, CRC, or a
  // shard-side kError — retires this incarnation; the monitor respawns it
  // and the caller's retry loop reruns the operation from scratch.
  mark_dead(idx);
  throw ShardFailure{idx, st};
}

core::Status Coordinator::retry_op(const char* what,
                                   const std::function<void()>& fn) {
  if (!started_) {
    return core::Status::FailedPrecondition("dist: coordinator not started");
  }
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.queries;
  }
  const auto deadline =
      steady::now() + std::chrono::milliseconds(opts_.query_wait_ms);
  core::Status last = core::Status::Unavailable("shard fleet unhealthy");
  for (;;) {
    if (!wait_healthy(deadline)) break;
    try {
      fn();
      return core::Status::Ok();
    } catch (const ShardFailure& f) {
      last = f.status;
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.op_retries;
    }
    if (steady::now() >= deadline) break;
  }
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.unavailable;
  }
  return core::Status::Unavailable(
      std::string(what) + ": degraded — fleet did not recover within " +
      std::to_string(opts_.query_wait_ms) + " ms (" +
      std::string(last.message()) + ")");
}

// ---------------------------------------------------------------------------
// Epoch replication

std::uint64_t Coordinator::apply_once(std::uint64_t target) {
  for (std::uint32_t i = 0; i < opts_.shards; ++i) {
    ByteWriter w;
    w.put<std::uint64_t>(target);
    {
      std::lock_guard<std::mutex> lk(history_mu_);
      const std::vector<char>& enc = history_[target - 1][i];
      w.put_bytes(enc.data(), enc.size());
    }
    Message m = roundtrip(i, MsgType::kApplyEpoch, w, MsgType::kApplyAck);
    ByteReader r(m.body);
    const auto acked = r.get<std::uint64_t>();
    GA_CHECK(acked >= target, "dist: shard acked stale epoch");
    shards_[i]->epoch.store(acked);
  }
  return target;
}

core::StatusOr<std::uint64_t> Coordinator::apply(
    const store::DeltaBatch& batch) {
  std::lock_guard<std::mutex> op(op_mu_);
  if (!started_) {
    return core::Status::FailedPrecondition("dist: coordinator not started");
  }
  const std::uint64_t target = epoch_.load() + 1;
  // Split and record the epoch once, outside the retry loop: split() grows
  // the owner map for vertex-growth batches and must run exactly once, and
  // the recorded history is what respawn catch-up resends.
  try {
    std::vector<store::DeltaBatch> parts = partitioner_->split(batch);
    std::vector<std::vector<char>> enc(parts.size());
    for (std::size_t i = 0; i < parts.size(); ++i) {
      parts[i].encode(&enc[i]);
    }
    std::lock_guard<std::mutex> lk(history_mu_);
    GA_CHECK(history_.size() == target - 1, "dist: replication history gap");
    history_.push_back(std::move(enc));
    owner_snapshot_ = partitioner_->owner_map();
  } catch (const std::exception& e) {
    return core::Status::InvalidArgument(std::string("dist: bad batch: ") +
                                         e.what());
  }
  std::uint64_t applied = 0;
  core::Status st = retry_op("apply", [&] { applied = apply_once(target); });
  if (!st.ok()) return st;
  epoch_.store(applied);
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.epochs_applied;
  }
  return applied;
}

// ---------------------------------------------------------------------------
// Distributed BFS / WCC: boundary-exchange rounds

namespace {

struct RoutedInbox {
  std::vector<std::vector<vid_t>> ids;
  std::vector<std::vector<std::uint32_t>> vals;
  explicit RoutedInbox(std::uint32_t shards) : ids(shards), vals(shards) {}
};

}  // namespace

DistBfsResult Coordinator::bfs_once(vid_t source) {
  const std::uint64_t ep = epoch_.load();
  const vid_t n = partitioner_->universe();
  const std::uint32_t k = opts_.shards;
  for (std::uint32_t i = 0; i < k; ++i) {
    ByteWriter w;
    w.put<std::uint64_t>(ep);
    w.put<std::uint32_t>(source);
    roundtrip(i, MsgType::kBfsInit, w, MsgType::kStepReply);
  }

  RoutedInbox inbox(k);
  DistBfsResult res;
  for (;;) {
    ++res.rounds;
    GA_CHECK(res.rounds <= n + 2, "dist bfs: round overflow");
    std::uint64_t active = 0, boundary = 0;
    RoutedInbox next(k);
    for (std::uint32_t i = 0; i < k; ++i) {
      ByteWriter w;
      w.put_vec(inbox.ids[i]);
      w.put_vec(inbox.vals[i]);
      Message m = roundtrip(i, MsgType::kStep, w, MsgType::kStepReply);
      ByteReader r(m.body);
      active += r.get<std::uint64_t>();
      const auto out_v = r.get_vec<vid_t>();
      const auto out_val = r.get_vec<std::uint32_t>();
      GA_CHECK(out_v.size() == out_val.size(), "dist bfs: ragged outbox");
      for (std::size_t j = 0; j < out_v.size(); ++j) {
        const std::uint32_t dest = partitioner_->owner(out_v[j]);
        next.ids[dest].push_back(out_v[j]);
        next.vals[dest].push_back(out_val[j]);
      }
      boundary += out_v.size();
    }
    inbox = std::move(next);
    if (active == 0 && boundary == 0) break;
  }

  res.epoch = ep;
  res.dist.assign(n, kInfDist);
  ByteWriter empty;
  for (std::uint32_t i = 0; i < k; ++i) {
    Message m = roundtrip(i, MsgType::kGatherDist, empty, MsgType::kGatherReply);
    ByteReader r(m.body);
    const auto ids = r.get_vec<vid_t>();
    const auto vals = r.get_vec<std::uint32_t>();
    GA_CHECK(ids.size() == vals.size(), "dist bfs: ragged gather");
    for (std::size_t j = 0; j < ids.size(); ++j) res.dist[ids[j]] = vals[j];
  }
  for (const std::uint32_t d : res.dist) {
    if (d != kInfDist) ++res.reached;
  }
  return res;
}

core::StatusOr<DistBfsResult> Coordinator::bfs(vid_t source) {
  std::lock_guard<std::mutex> op(op_mu_);
  if (started_ && source >= partitioner_->universe()) {
    return core::Status::OutOfRange("dist bfs: source out of range");
  }
  DistBfsResult out;
  core::Status st = retry_op("bfs", [&] { out = bfs_once(source); });
  if (!st.ok()) return st;
  return out;
}

DistWccResult Coordinator::wcc_once() {
  const std::uint64_t ep = epoch_.load();
  const vid_t n = partitioner_->universe();
  const std::uint32_t k = opts_.shards;
  for (std::uint32_t i = 0; i < k; ++i) {
    ByteWriter w;
    w.put<std::uint64_t>(ep);
    roundtrip(i, MsgType::kWccInit, w, MsgType::kStepReply);
  }

  RoutedInbox inbox(k);
  DistWccResult res;
  for (;;) {
    ++res.rounds;
    GA_CHECK(res.rounds <= n + 2, "dist wcc: round overflow");
    std::uint64_t active = 0, boundary = 0;
    RoutedInbox next(k);
    for (std::uint32_t i = 0; i < k; ++i) {
      ByteWriter w;
      w.put_vec(inbox.ids[i]);
      w.put_vec(inbox.vals[i]);
      Message m = roundtrip(i, MsgType::kStep, w, MsgType::kStepReply);
      ByteReader r(m.body);
      active += r.get<std::uint64_t>();
      const auto out_v = r.get_vec<vid_t>();
      const auto out_val = r.get_vec<std::uint32_t>();
      GA_CHECK(out_v.size() == out_val.size(), "dist wcc: ragged outbox");
      for (std::size_t j = 0; j < out_v.size(); ++j) {
        const std::uint32_t dest = partitioner_->owner(out_v[j]);
        next.ids[dest].push_back(out_v[j]);
        next.vals[dest].push_back(out_val[j]);
      }
      boundary += out_v.size();
    }
    inbox = std::move(next);
    if (active == 0 && boundary == 0) break;
  }

  res.epoch = ep;
  res.label.assign(n, kInvalidVid);
  ByteWriter empty;
  for (std::uint32_t i = 0; i < k; ++i) {
    Message m =
        roundtrip(i, MsgType::kGatherLabels, empty, MsgType::kGatherReply);
    ByteReader r(m.body);
    const auto ids = r.get_vec<vid_t>();
    const auto vals = r.get_vec<std::uint32_t>();
    GA_CHECK(ids.size() == vals.size(), "dist wcc: ragged gather");
    for (std::size_t j = 0; j < ids.size(); ++j) res.label[ids[j]] = vals[j];
  }
  std::vector<vid_t> size(n, 0);
  for (vid_t v = 0; v < n; ++v) {
    GA_CHECK(res.label[v] < n, "dist wcc: unlabeled vertex");
    ++size[res.label[v]];
  }
  for (vid_t c = 0; c < n; ++c) {
    if (size[c] == 0) continue;
    ++res.num_components;
    res.largest_size = std::max(res.largest_size, size[c]);
  }
  return res;
}

core::StatusOr<DistWccResult> Coordinator::wcc() {
  std::lock_guard<std::mutex> op(op_mu_);
  DistWccResult out;
  core::Status st = retry_op("wcc", [&] { out = wcc_once(); });
  if (!st.ok()) return st;
  return out;
}

// ---------------------------------------------------------------------------
// Distributed PageRank: exact ghost-contribution power iteration

DistPrResult Coordinator::pagerank_once(double damping, unsigned iterations) {
  const std::uint64_t ep = epoch_.load();
  const vid_t n = partitioner_->universe();
  const std::uint32_t k = opts_.shards;
  GA_CHECK(n > 0, "dist pagerank: empty graph");

  std::vector<std::vector<vid_t>> ghosts(k);
  std::uint64_t n_dangling = 0;
  for (std::uint32_t i = 0; i < k; ++i) {
    ByteWriter w;
    w.put<std::uint64_t>(ep);
    w.put<double>(damping);
    Message m = roundtrip(i, MsgType::kPrInit, w, MsgType::kPrInitReply);
    ByteReader r(m.body);
    n_dangling += r.get<std::uint64_t>();
    ghosts[i] = r.get_vec<vid_t>();
  }

  // Export list of shard s = every vertex some other shard ghosts that s
  // owns; scatter replies come back aligned with it.
  std::vector<std::vector<vid_t>> exports(k);
  for (std::uint32_t t = 0; t < k; ++t) {
    for (const vid_t g : ghosts[t]) {
      exports[partitioner_->owner(g)].push_back(g);
    }
  }
  for (std::uint32_t i = 0; i < k; ++i) {
    std::sort(exports[i].begin(), exports[i].end());
    exports[i].erase(std::unique(exports[i].begin(), exports[i].end()),
                     exports[i].end());
    ByteWriter w;
    w.put_vec(exports[i]);
    roundtrip(i, MsgType::kPrExports, w, MsgType::kPrInitReply);
  }

  // Scalar dangling-mass bookkeeping. All dangling vertices of an
  // undirected graph are isolated, so they share one rank value r_d; the
  // reference loop's dangling sum is n_d sequential additions of that
  // value, reproduced here term for term, and r_d's own recurrence is the
  // restart expression (its accumulator is exactly zero).
  const double dn = static_cast<double>(n);
  double r_d = 1.0 / dn;
  std::vector<double> contrib(n, 0.0);
  DistPrResult res;
  for (unsigned iter = 1; iter <= iterations; ++iter) {
    ByteWriter empty;
    for (std::uint32_t i = 0; i < k; ++i) {
      Message m =
          roundtrip(i, MsgType::kPrScatter, empty, MsgType::kPrScatterReply);
      ByteReader r(m.body);
      const auto vals = r.get_vec<double>();
      GA_CHECK(vals.size() == exports[i].size(),
               "dist pagerank: scatter reply misaligned");
      for (std::size_t j = 0; j < vals.size(); ++j) {
        contrib[exports[i][j]] = vals[j];
      }
    }
    double dangling = 0.0;
    for (std::uint64_t j = 0; j < n_dangling; ++j) dangling += r_d;

    double delta = 0.0;
    for (std::uint32_t i = 0; i < k; ++i) {
      ByteWriter w;
      w.put<double>(dangling);
      std::vector<double> gv;
      gv.reserve(ghosts[i].size());
      for (const vid_t g : ghosts[i]) gv.push_back(contrib[g]);
      w.put_vec(gv);
      Message m = roundtrip(i, MsgType::kPrApply, w, MsgType::kPrApplyReply);
      ByteReader r(m.body);
      delta += r.get<double>();
    }
    r_d = (1.0 - damping) / dn + damping * dangling / dn;
    res.iterations = iter;
    res.final_delta = delta;
  }

  res.epoch = ep;
  res.rank.assign(n, 0.0);
  ByteWriter empty;
  for (std::uint32_t i = 0; i < k; ++i) {
    Message m =
        roundtrip(i, MsgType::kGatherRanks, empty, MsgType::kGatherReply);
    ByteReader r(m.body);
    const auto ids = r.get_vec<vid_t>();
    const auto vals = r.get_vec<double>();
    GA_CHECK(ids.size() == vals.size(), "dist pagerank: ragged gather");
    for (std::size_t j = 0; j < ids.size(); ++j) res.rank[ids[j]] = vals[j];
  }
  return res;
}

core::StatusOr<DistPrResult> Coordinator::pagerank(double damping,
                                                   unsigned iterations) {
  std::lock_guard<std::mutex> op(op_mu_);
  DistPrResult out;
  core::Status st = retry_op(
      "pagerank", [&] { out = pagerank_once(damping, iterations); });
  if (!st.ok()) return st;
  return out;
}

// ---------------------------------------------------------------------------
// Graph reassembly (digest cross-check surface)

store::GraphView Coordinator::fetch_once() {
  const std::uint64_t ep = epoch_.load();
  const std::uint32_t k = opts_.shards;
  std::vector<graph::CSRGraph> subs;
  subs.reserve(k);
  std::vector<std::pair<vid_t, float>> props;
  ByteWriter empty;
  for (std::uint32_t i = 0; i < k; ++i) {
    Message m = roundtrip(i, MsgType::kFetchArcs, empty, MsgType::kArcsReply);
    ByteReader r(m.body);
    const auto shard_ep = r.get<std::uint64_t>();
    GA_CHECK(shard_ep == ep, "dist fetch: shard at epoch " +
                                 std::to_string(shard_ep) + ", expected " +
                                 std::to_string(ep));
    auto offsets = r.get_vec<eid_t>();
    auto targets = r.get_vec<vid_t>();
    auto weights = r.get_vec<float>();
    const auto prop_ids = r.get_vec<vid_t>();
    const auto prop_vals = r.get_vec<float>();
    GA_CHECK(prop_ids.size() == prop_vals.size(), "dist fetch: ragged props");
    for (std::size_t j = 0; j < prop_ids.size(); ++j) {
      props.emplace_back(prop_ids[j], prop_vals[j]);
    }
    subs.emplace_back(std::move(offsets), std::move(targets),
                      std::move(weights), /*directed=*/true);
  }
  std::vector<const graph::CSRGraph*> ptrs;
  ptrs.reserve(subs.size());
  for (const auto& g : subs) ptrs.push_back(&g);
  auto base = std::make_shared<const graph::CSRGraph>(
      reassemble(ptrs, partitioner_->plan().directed));
  // Per-shard prop tables are disjoint (patches route to the owner), so
  // the union sorted by id is the global folded table.
  std::sort(props.begin(), props.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::shared_ptr<const std::vector<std::pair<vid_t, float>>> props_ptr;
  if (!props.empty()) {
    props_ptr = std::make_shared<const std::vector<std::pair<vid_t, float>>>(
        std::move(props));
  }
  const eid_t arcs = base->num_arcs();
  return store::GraphView(std::move(base), {}, std::move(props_ptr), ep, arcs);
}

core::StatusOr<store::GraphView> Coordinator::fetch_view() {
  std::lock_guard<std::mutex> op(op_mu_);
  store::GraphView out;
  core::Status st = retry_op("fetch", [&] { out = fetch_once(); });
  if (!st.ok()) return st;
  return out;
}

// ---------------------------------------------------------------------------
// Fail-over: heartbeat monitor + respawn

pid_t Coordinator::shard_pid(std::uint32_t idx) const {
  const auto* pl = dynamic_cast<const ProcessLauncher*>(launcher_.get());
  return pl == nullptr ? -1 : pl->pid(idx);
}

void Coordinator::kill_shard(std::uint32_t idx) {
  GA_CHECK(idx < shards_.size(), "dist: kill_shard out of range");
  launcher_->kill(idx);
}

bool Coordinator::respawn_shard(std::uint32_t idx) {
  Shard& s = *shards_[idx];
  std::lock_guard<std::mutex> lk(s.mu);
  if (s.alive.load()) return true;
  try {
    launcher_->kill(idx);  // make sure the old incarnation is really gone
    launcher_->reap(idx);
    s.ch = launcher_->launch(idx);
    ByteWriter w = identity_message(idx);
    s.ch.send(MsgType::kInitRecover, w).or_throw();
    core::StatusOr<Message> m =
        s.ch.expect(MsgType::kInitAck, opts_.io_timeout_ms);
    m.status().or_throw();
    ByteReader r(m.value().body);
    const auto recovered = r.get<std::uint64_t>();

    // Catch-up: the shard's own log made every acked epoch durable, so
    // only epochs past its recovery point (un-acked at crash time, or
    // applied fleet-wide while it was down) need a resend.
    std::uint64_t target = 0;
    {
      std::lock_guard<std::mutex> hlk(history_mu_);
      target = history_.size();
    }
    GA_CHECK(recovered <= target, "dist: shard recovered past the history");
    for (std::uint64_t e = recovered + 1; e <= target; ++e) {
      ByteWriter aw;
      aw.put<std::uint64_t>(e);
      {
        std::lock_guard<std::mutex> hlk(history_mu_);
        const std::vector<char>& enc = history_[e - 1][idx];
        aw.put_bytes(enc.data(), enc.size());
      }
      s.ch.send(MsgType::kApplyEpoch, aw).or_throw();
      core::StatusOr<Message> am =
          s.ch.expect(MsgType::kApplyAck, opts_.io_timeout_ms);
      am.status().or_throw();
    }
    s.epoch.store(target);
    s.respawns.fetch_add(1);
    s.alive.store(true);
    {
      std::lock_guard<std::mutex> slk(stats_mu_);
      ++stats_.respawns;
    }
    health_cv_.notify_all();
    return true;
  } catch (const std::exception&) {
    // Stay dead; the next monitor tick tries again.
    return false;
  }
}

void Coordinator::monitor_main() {
  const auto interval = std::chrono::milliseconds(opts_.heartbeat_interval_ms);
  while (!stop_.load()) {
    std::this_thread::sleep_for(interval);
    if (stop_.load()) break;
    for (std::uint32_t i = 0; i < shards_.size(); ++i) {
      if (stop_.load()) break;
      Shard& s = *shards_[i];
      if (!s.alive.load()) {
        if (opts_.auto_respawn) respawn_shard(i);
        continue;
      }
      std::unique_lock<std::mutex> lk(s.mu, std::try_to_lock);
      // An operation holds the channel: it detects failures on its own,
      // and its traffic doubles as liveness.
      if (!lk.owns_lock()) continue;
      ByteWriter w;
      core::Status st = s.ch.send(MsgType::kHeartbeat, w);
      if (st.ok()) {
        core::StatusOr<Message> m =
            s.ch.expect(MsgType::kHeartbeatReply, opts_.heartbeat_timeout_ms);
        st = m.ok() ? core::Status::Ok() : m.status();
      }
      if (!st.ok()) {
        lk.unlock();
        mark_dead(i);
        if (opts_.auto_respawn) respawn_shard(i);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Status / teardown

std::string Coordinator::status_json() const {
  std::string j = "{";
  j += "\"shards\":" + std::to_string(opts_.shards);
  j += ",\"epoch\":" + std::to_string(epoch_.load());
  j += ",\"method\":\"";
  j += partition_method_name(opts_.method);
  j += "\",\"process_isolation\":";
  j += opts_.process_isolation ? "true" : "false";
  j += ",\"alive\":[";
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (i) j += ",";
    j += shards_[i]->alive.load() ? "true" : "false";
  }
  j += "],\"shard_epochs\":[";
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (i) j += ",";
    j += std::to_string(shards_[i]->epoch.load());
  }
  j += "],\"shard_respawns\":[";
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (i) j += ",";
    j += std::to_string(shards_[i]->respawns.load());
  }
  CoordinatorStats st = stats();
  j += "],\"epochs_applied\":" + std::to_string(st.epochs_applied);
  j += ",\"queries\":" + std::to_string(st.queries);
  j += ",\"unavailable\":" + std::to_string(st.unavailable);
  j += ",\"deaths\":" + std::to_string(st.deaths);
  j += ",\"respawns\":" + std::to_string(st.respawns);
  j += ",\"op_retries\":" + std::to_string(st.op_retries);
  j += "}";
  return j;
}

CoordinatorStats Coordinator::stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return stats_;
}

const Partitioner& Coordinator::partitioner() const {
  GA_CHECK(partitioner_ != nullptr, "dist: coordinator not started");
  return *partitioner_;
}

void Coordinator::status_server_main() {
  while (!stop_.load()) {
    pollfd p{status_listen_fd_, POLLIN, 0};
    const int rc = ::poll(&p, 1, 200);
    if (rc <= 0) continue;
    const int cfd = ::accept(status_listen_fd_, nullptr, nullptr);
    if (cfd < 0) continue;
    const std::string j = status_json();
    std::size_t off = 0;
    while (off < j.size()) {
      const ssize_t n = ::send(cfd, j.data() + off, j.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    ::close(cfd);
  }
}

void Coordinator::stop() {
  {
    std::lock_guard<std::mutex> op(op_mu_);
    if (!started_) return;
    started_ = false;
  }
  stop_.store(true);
  if (monitor_.joinable()) monitor_.join();
  if (status_thread_.joinable()) status_thread_.join();
  if (status_listen_fd_ >= 0) {
    ::close(status_listen_fd_);
    status_listen_fd_ = -1;
    ::unlink(status_socket_path(opts_.root_dir).c_str());
  }
  for (std::uint32_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    std::lock_guard<std::mutex> lk(s.mu);
    if (s.alive.load()) {
      ByteWriter w;
      if (s.ch.send(MsgType::kShutdown, w).ok()) {
        (void)s.ch.expect(MsgType::kShutdownAck, 2000);
      }
      s.alive.store(false);
    }
    s.ch.close();
    launcher_->kill(i);
    launcher_->reap(i);
  }
}

}  // namespace ga::dist
