// Graph partitioning for the sharded serving subsystem: split a global
// graph into per-shard subdomains under a vertex → shard owner map.
//
// The placement is a 1-D vertex partition: shard s owns a subset of the
// vertex ids and stores the COMPLETE out-adjacency of every vertex it
// owns, as a directed sub-CSR over the full global id space (non-owned
// vertices simply have degree zero). Because the serving stack's graphs
// are undirected (both arcs stored), the owner of v therefore holds v's
// entire neighborhood — the property the scatter/gather kernels rely on —
// and the union of all shard sub-CSRs is exactly the global arc set, which
// is what makes the reassembly digest round-trip exact.
//
// Two placement methods:
//  * kHash — deterministic multiplicative hash of the vertex id. No
//    locality, near-perfect vertex balance, and the same rule extends
//    ownership to vertices created later (add_vertices growth), so the
//    coordinator and every shard agree on new ids without re-sharding.
//  * kEdgeCut — the existing kernels/partition.hpp machinery (BFS-grow
//    seeding + boundary refinement) minimizing cut arcs at a small
//    balance cost. Grown vertices still place by the hash rule.
#pragma once

#include <cstdint>
#include <vector>

#include "core/hash.hpp"
#include "graph/csr_graph.hpp"
#include "store/delta.hpp"

namespace ga::dist {

enum class PartitionMethod : std::uint8_t { kHash = 0, kEdgeCut = 1 };
const char* partition_method_name(PartitionMethod m);

/// Deterministic placement for vertex v among k shards. Also the growth
/// rule: every party extends its owner map with this when add_vertices
/// raises the universe, so ownership of new ids needs no coordination.
inline std::uint32_t hash_owner(vid_t v, std::uint32_t shards) {
  return static_cast<std::uint32_t>(
      core::mix64(static_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ULL) %
      shards);
}

struct PartitionPlanOptions {
  std::uint32_t shards = 3;
  PartitionMethod method = PartitionMethod::kHash;
  std::uint64_t seed = 1;  // edge-cut BFS-grow seed
};

struct ShardDomainStats {
  vid_t owned = 0;     // vertices this shard owns
  eid_t arcs = 0;      // stored arcs (out-arcs of owned vertices)
  eid_t cut_arcs = 0;  // stored arcs whose target lives on another shard
  vid_t mirrors = 0;   // distinct remote vertices referenced (|mirror list|)
};

struct PartitionPlan {
  std::uint32_t shards = 0;
  PartitionMethod method = PartitionMethod::kHash;
  vid_t n = 0;
  bool directed = false;
  eid_t total_arcs = 0;
  eid_t cut_arcs = 0;                      // sum over shards
  std::vector<std::uint8_t> owner;         // size n
  std::vector<ShardDomainStats> stats;     // size shards
  /// Per shard: sorted distinct remote vertices its arcs reference — the
  /// ghost ids a PageRank exchange must import.
  std::vector<std::vector<vid_t>> mirror;

  /// Fraction of stored arcs whose endpoint pair spans two shards.
  double cut_fraction() const {
    return total_arcs == 0 ? 0.0
                           : static_cast<double>(cut_arcs) /
                                 static_cast<double>(total_arcs);
  }
  /// Max owned-vertex count over the ideal n/shards (1.0 = perfect).
  double load_imbalance() const;
  /// Max stored-arc count over the mean (edge balance; 1.0 = perfect).
  double arc_imbalance() const;
};

/// Compute the owner map + per-shard domain stats and mirror lists.
/// Throws ga::Error when shards is 0, exceeds 255 (the owner map is u8),
/// or exceeds the vertex count.
PartitionPlan make_plan(const graph::CSRGraph& g,
                        const PartitionPlanOptions& opts);

/// Shard s's subdomain: a directed CSR over the full global id space in
/// which owned vertices keep their complete out-adjacency (weights
/// preserved) and every other vertex is empty.
graph::CSRGraph extract_shard(const graph::CSRGraph& g,
                              const PartitionPlan& plan, std::uint32_t s);

/// Union of per-shard subdomains back into one CSR with the original
/// directedness — the inverse of extract_shard over all s. Each vertex's
/// adjacency comes from exactly one shard (its owner), so this is a
/// straight per-vertex merge.
graph::CSRGraph reassemble(
    const std::vector<const graph::CSRGraph*>& shards, bool directed);

/// Owner-map state machine + delta router. Owns the evolving owner map
/// (the plan's assignment extended by the hash rule as batches grow the
/// universe) and splits global DeltaBatches into per-shard sub-batches.
class Partitioner {
 public:
  explicit Partitioner(PartitionPlan plan);

  const PartitionPlan& plan() const { return plan_; }
  std::uint32_t shards() const { return plan_.shards; }
  /// Current universe (plan.n plus growth routed through split()).
  vid_t universe() const { return static_cast<vid_t>(owner_.size()); }
  std::uint32_t owner(vid_t v) const {
    GA_ASSERT(v < owner_.size());
    return owner_[v];
  }
  /// Snapshot of the evolving owner map (kInitRecover replays this to a
  /// respawned shard so growth epochs need not be re-derived).
  const std::vector<std::uint8_t>& owner_map() const { return owner_; }

  /// Split one global batch into one DIRECTED sub-batch per shard: each
  /// arc op routes to its source's owner (an undirected edge's two arcs
  /// thus land on both endpoint owners), property patches go to the vertex
  /// owner, and vertex growth replicates to every shard so the universes
  /// stay aligned. Grown vertices are assigned by hash_owner. Arrival
  /// order is preserved per shard, so per-arc last-write-wins semantics
  /// survive the split.
  std::vector<store::DeltaBatch> split(const store::DeltaBatch& batch);

 private:
  PartitionPlan plan_;
  std::vector<std::uint8_t> owner_;
};

}  // namespace ga::dist
