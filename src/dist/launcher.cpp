#include "dist/launcher.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

extern char** environ;

namespace ga::dist {

// ---------------------------------------------------------------------------
// ProcessLauncher

ProcessLauncher::ProcessLauncher(std::string shard_binary)
    : binary_(std::move(shard_binary)) {
  GA_CHECK(!binary_.empty(), "dist: empty shard binary path");
}

ProcessLauncher::~ProcessLauncher() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [idx, pid] : pids_) {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
  }
}

MsgChannel ProcessLauncher::launch(std::uint32_t idx) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = pids_.find(idx);
    GA_CHECK(it == pids_.end() || it->second < 0,
             "dist: shard " + std::to_string(idx) + " not reaped");
  }
  auto [coord, shard] = MsgChannel::make_pair();
  // The coordinator end must not leak into this child or siblings spawned
  // later — a leaked duplicate would keep a "dead" shard's socket open and
  // mask EOF-based death detection.
  GA_CHECK(::fcntl(coord.fd(), F_SETFD, FD_CLOEXEC) == 0,
           "dist: cannot set CLOEXEC on coordinator fd");

  posix_spawn_file_actions_t fa;
  posix_spawn_file_actions_init(&fa);
  posix_spawn_file_actions_adddup2(&fa, shard.fd(), 3);
  if (shard.fd() != 3) posix_spawn_file_actions_addclose(&fa, shard.fd());

  const std::string fd_arg = "3";
  char* argv[] = {const_cast<char*>(binary_.c_str()),
                  const_cast<char*>("--fd"), const_cast<char*>(fd_arg.c_str()),
                  nullptr};
  pid_t pid = -1;
  const int rc =
      ::posix_spawn(&pid, binary_.c_str(), &fa, nullptr, argv, environ);
  posix_spawn_file_actions_destroy(&fa);
  GA_CHECK(rc == 0, "dist: posix_spawn(" + binary_ +
                        ") failed: " + std::strerror(rc));
  // Parent's copy of the shard end closes with `shard` going out of scope,
  // leaving the child as sole owner — its death is the socket's EOF.
  std::lock_guard<std::mutex> lk(mu_);
  pids_[idx] = pid;
  return std::move(coord);
}

void ProcessLauncher::kill(std::uint32_t idx) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = pids_.find(idx);
  if (it == pids_.end() || it->second < 0) return;
  ::kill(it->second, SIGKILL);
}

void ProcessLauncher::reap(std::uint32_t idx) {
  pid_t pid = -1;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = pids_.find(idx);
    if (it == pids_.end() || it->second < 0) return;
    pid = it->second;
    it->second = -1;
  }
  ::waitpid(pid, nullptr, 0);
}

pid_t ProcessLauncher::pid(std::uint32_t idx) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = pids_.find(idx);
  return it == pids_.end() ? -1 : it->second;
}

// ---------------------------------------------------------------------------
// InprocLauncher

InprocLauncher::~InprocLauncher() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [idx, w] : workers_) {
    if (w.channel) w.channel->shutdown_both();
    if (w.thread.joinable()) w.thread.join();
  }
}

MsgChannel InprocLauncher::launch(std::uint32_t idx) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = workers_.find(idx);
  GA_CHECK(it == workers_.end() || !it->second.thread.joinable(),
           "dist: in-proc shard " + std::to_string(idx) + " not reaped");
  auto [coord, shard] = MsgChannel::make_pair();
  Worker w;
  w.channel = std::make_shared<MsgChannel>(std::move(shard));
  w.server = std::make_shared<ShardServer>();
  w.thread = std::thread([ch = w.channel, srv = w.server] { srv->serve(*ch); });
  workers_[idx] = std::move(w);
  return std::move(coord);
}

void InprocLauncher::kill(std::uint32_t idx) {
  std::shared_ptr<MsgChannel> ch;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = workers_.find(idx);
    if (it == workers_.end()) return;
    ch = it->second.channel;
  }
  // The in-process "kill -9": both socket directions die under the server
  // loop, which wakes from recv with EOF and exits, abandoning whatever it
  // was mid-way through — including a half-written reply frame.
  if (ch) ch->shutdown_both();
}

void InprocLauncher::reap(std::uint32_t idx) {
  Worker w;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = workers_.find(idx);
    if (it == workers_.end()) return;
    w = std::move(it->second);
    workers_.erase(it);
  }
  if (w.channel) w.channel->shutdown_both();
  if (w.thread.joinable()) w.thread.join();
}

}  // namespace ga::dist
