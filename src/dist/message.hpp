// Length-prefixed, CRC-framed message protocol between the dist
// coordinator and its shard processes.
//
// A message on the wire is one record in the shared record_io framing —
//   [u32 payload_len][u32 crc][u64 seq][u16 type][body bytes]
// — the same discipline the ingest WAL and the epoch log write to disk,
// carried over an AF_UNIX stream socket instead of a file. The CRC-32
// covers [seq][type][body]; seq is a per-direction message counter, so a
// dropped or duplicated frame surfaces as a sequence gap even when its CRC
// is intact. A peer killed mid-send leaves a torn frame, which the reader
// reports as kUnavailable (the crash artifact fail-over reacts to), while
// a CRC mismatch on a complete frame is kDataLoss — exactly the durable
// logs' torn-tail / corruption split.
//
// MsgChannel is strictly request/reply per direction and not thread-safe;
// the coordinator serializes access per shard (queries vs heartbeats take
// a per-shard mutex).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/common.hpp"
#include "core/status.hpp"

namespace ga::dist {

enum class MsgType : std::uint16_t {
  kError = 0,        // body: string (shard-side exception text)
  // -- lifecycle --
  kInit,             // cold start: identity + owner map + base sub-CSR
  kInitRecover,      // respawn: identity + owner map; rebuild from epoch log
  kInitAck,          // body: u64 epoch, u32 n, u64 arcs
  kApplyEpoch,       // body: u64 epoch, encoded DeltaBatch
  kApplyAck,         // body: u64 epoch (shard's epoch after apply)
  // -- scatter/gather kernel rounds --
  kBfsInit,          // body: u64 epoch, u32 source
  kWccInit,          // body: u64 epoch
  kStep,             // body: inbox pairs (u32 vertex, u32 value)
  kStepReply,        // body: outbox pairs + u64 active_next
  kPrInit,           // body: u64 epoch, f64 damping
  kPrInitReply,      // body: u64 dangling_owned, ghost id vec
  kPrExports,        // body: export id vec (owned ids other shards ghost)
  kPrScatter,        // body: empty
  kPrScatterReply,   // body: f64 vec aligned with the export list
  kPrApply,          // body: f64 dangling, f64 vec aligned with ghost list
  kPrApplyReply,     // body: f64 local L1 delta
  kGatherDist,       // body: empty — reply owned (vertex, dist) pairs
  kGatherLabels,     // body: empty — reply owned (vertex, label) pairs
  kGatherRanks,      // body: empty — reply owned (vertex, rank) pairs
  kGatherReply,
  kFetchArcs,        // body: empty — reply the shard's sub-CSR + props
  kArcsReply,
  // -- health --
  kHeartbeat,        // body: empty
  kHeartbeatReply,   // body: u64 epoch
  kStatus,           // body: empty
  kStatusReply,      // body: shard counters (see ShardServer)
  kShutdown,         // body: empty
  kShutdownAck,
};

const char* msg_type_name(MsgType t);

struct Message {
  MsgType type = MsgType::kError;
  std::uint64_t seq = 0;
  std::vector<char> body;
};

/// Append-only POD serializer for message bodies. Same single-architecture
/// contract as the DeltaBatch codec: coordinator and shards always run on
/// one host.
class ByteWriter {
 public:
  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const char*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }
  template <typename T>
  void put_vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put(static_cast<std::uint64_t>(v.size()));
    const auto* p = reinterpret_cast<const char*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
  }
  void put_str(const std::string& s) {
    put(static_cast<std::uint64_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void put_bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const char*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }

  std::span<const char> bytes() const { return buf_; }
  std::vector<char> take() { return std::move(buf_); }

 private:
  std::vector<char> buf_;
};

/// Bounds-checked reader over a received body; throws ga::Error on a
/// truncated or oversized field (the sender is in-tree, so that is a bug
/// or corruption, not bad user input — callers reply kError).
class ByteReader {
 public:
  ByteReader(const char* data, std::size_t len) : data_(data), len_(len) {}
  explicit ByteReader(const std::vector<char>& v)
      : ByteReader(v.data(), v.size()) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    GA_CHECK(at_ + sizeof(T) <= len_, "dist message: truncated field");
    T v;
    std::memcpy(&v, data_ + at_, sizeof(T));
    at_ += sizeof(T);
    return v;
  }
  template <typename T>
  std::vector<T> get_vec() {
    const auto count = get<std::uint64_t>();
    GA_CHECK(count <= (len_ - at_) / sizeof(T),
             "dist message: vector length past payload");
    std::vector<T> v(count);
    std::memcpy(v.data(), data_ + at_, count * sizeof(T));
    at_ += count * sizeof(T);
    return v;
  }
  std::string get_str() {
    const auto count = get<std::uint64_t>();
    GA_CHECK(count <= len_ - at_, "dist message: string length past payload");
    std::string s(data_ + at_, count);
    at_ += count;
    return s;
  }

  std::size_t remaining() const { return len_ - at_; }
  bool done() const { return at_ == len_; }

 private:
  const char* data_;
  std::size_t len_;
  std::size_t at_ = 0;
};

/// One endpoint of a coordinator<->shard stream. Owns the fd; move-only.
class MsgChannel {
 public:
  MsgChannel() = default;
  explicit MsgChannel(int fd) : fd_(fd) {}
  ~MsgChannel() { close(); }
  MsgChannel(const MsgChannel&) = delete;
  MsgChannel& operator=(const MsgChannel&) = delete;
  MsgChannel(MsgChannel&& o) noexcept { *this = std::move(o); }
  MsgChannel& operator=(MsgChannel&& o) noexcept {
    if (this != &o) {
      close();
      fd_ = o.fd_;
      send_seq_ = o.send_seq_;
      recv_seq_ = o.recv_seq_;
      stats_ = o.stats_;
      o.fd_ = -1;
    }
    return *this;
  }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();
  /// Shut down both directions without releasing the fd: a blocked peer
  /// sharing the socket wakes with EOF. The in-process "kill -9".
  void shutdown_both();

  /// Frame and write one message; blocks until fully written. kUnavailable
  /// on a broken pipe / reset (peer died).
  core::Status send(MsgType type, std::span<const char> body = {});
  core::Status send(MsgType type, const ByteWriter& w) {
    return send(type, w.bytes());
  }

  /// Read one message. timeout_ms < 0 waits forever. kDeadlineExceeded on
  /// timeout, kUnavailable on EOF/reset (incl. a torn frame — the peer
  /// died mid-send), kDataLoss on CRC mismatch, kInternal on a seq gap.
  core::Status recv(Message* out, int timeout_ms);

  /// recv + type check: a kError reply surfaces as kInternal carrying the
  /// shard's exception text; any other unexpected type is kInternal too.
  core::StatusOr<Message> expect(MsgType want, int timeout_ms);

  /// Connected AF_UNIX stream pair: (coordinator end, shard end).
  static std::pair<MsgChannel, MsgChannel> make_pair();

  struct IoStats {
    std::uint64_t msgs_sent = 0, msgs_recv = 0;
    std::uint64_t bytes_sent = 0, bytes_recv = 0;
  };
  const IoStats& io_stats() const { return stats_; }

 private:
  core::Status read_exact(char* dst, std::size_t len, int timeout_ms);

  int fd_ = -1;
  std::uint64_t send_seq_ = 0;  // last sent; wire seq starts at 1
  std::uint64_t recv_seq_ = 0;  // last received
  IoStats stats_;
  std::vector<char> scratch_;   // framed send buffer, reused across calls
};

}  // namespace ga::dist
