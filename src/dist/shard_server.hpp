// ShardServer: the request loop a shard process runs. One shard hosts its
// own VersionedGraphStore over its partition subdomain (a directed sub-CSR
// of the global graph covering the full id space — owned vertices carry
// their complete adjacency, everything else is empty), its own durable
// EpochLog, and the kernel registry, and answers the coordinator's message
// protocol on a single MsgChannel:
//
//  * lifecycle — kInit seeds the store from a shipped sub-CSR and attaches
//    a fresh epoch log; kInitRecover rebuilds the store from the shard's
//    OWN epoch log directory (store/recovery.hpp) and reattaches, which is
//    the respawn-after-kill path; kApplyEpoch replicates one global epoch
//    (the shard's sub-batch of it) idempotently by epoch id, so the
//    coordinator's catch-up resend after fail-over is safe.
//  * scatter/gather kernel sessions — BFS and WCC run as level-synchronous
//    value-propagation rounds over the engine's Frontier/edge_map (push,
//    serial, deterministic): each kStep merges the coordinator-routed inbox
//    into the carried frontier, expands one super-step, and returns the
//    boundary outbox (deduplicated monotonically) plus the surviving local
//    frontier size. PageRank runs the exact pull-iteration arithmetic of
//    kernels/pagerank.cpp on owned vertices with ghost contributions
//    imported per iteration, so the distributed ranks are bit-identical to
//    the single-process kernel.
//  * health — heartbeats echo the current epoch; kStatus returns counters.
//
// The loop is single-threaded: the coordinator serializes requests per
// shard, so no locking is needed here. Any ga::Error inside a handler is
// reported as a kError reply; the loop exits on kShutdown or a dead peer.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dist/message.hpp"
#include "engine/frontier.hpp"
#include "store/epoch_log.hpp"
#include "store/versioned_store.hpp"

namespace ga::dist {

struct ShardCounters {
  std::uint32_t shard = 0;
  std::uint64_t epoch = 0;
  std::uint64_t inits = 0;       // kInit + kInitRecover handled
  std::uint64_t recoveries = 0;  // kInitRecover handled
  std::uint64_t applies = 0;     // epochs applied (idempotent hits excluded)
  std::uint64_t sessions = 0;    // kernel sessions opened
  std::uint64_t steps = 0;       // kStep / kPrScatter / kPrApply rounds
  std::uint64_t heartbeats = 0;
};

class ShardServer {
 public:
  ShardServer() = default;

  /// Blocking request loop over `ch`. Returns normally on kShutdown or
  /// when the peer closes the channel (coordinator death — the child just
  /// exits). Handler errors become kError replies, not loop exits.
  void serve(MsgChannel& ch);

  /// Counters snapshot (test harness runs the server in-process).
  const ShardCounters& counters() const { return counters_; }

 private:
  // -- lifecycle --
  void handle_init(const Message& m, MsgChannel& ch);
  void handle_init_recover(const Message& m, MsgChannel& ch);
  void handle_apply(const Message& m, MsgChannel& ch);
  void send_init_ack(MsgChannel& ch);
  void attach_log(const std::string& dir, std::uint64_t checkpoint_every,
                  bool sync_each_append);
  void grow_owner(vid_t universe);

  // -- BFS/WCC propagation session --
  void handle_prop_init(const Message& m, MsgChannel& ch, bool is_bfs);
  void handle_step(const Message& m, MsgChannel& ch);

  // -- PageRank session --
  void handle_pr_init(const Message& m, MsgChannel& ch);
  void handle_pr_exports(const Message& m, MsgChannel& ch);
  void handle_pr_scatter(MsgChannel& ch);
  void handle_pr_apply(const Message& m, MsgChannel& ch);

  // -- gathers / health --
  void handle_gather(MsgType t, MsgChannel& ch);
  void handle_fetch_arcs(MsgChannel& ch);
  void handle_status(MsgChannel& ch);

  std::uint64_t require_epoch(ByteReader& r) const;

  std::uint32_t self_ = 0;
  std::uint32_t shards_ = 0;
  std::vector<std::uint8_t> owner_;
  std::unique_ptr<store::VersionedGraphStore> store_;
  std::unique_ptr<store::EpochLog> log_;
  ShardCounters counters_;

  /// Level-synchronous BFS/WCC state, carried across kStep rounds. Both
  /// kernels are "propagate a u32 value, smaller wins": BFS propagates
  /// dist[u] + 1, WCC propagates label[u]. best_out_ is the smallest value
  /// ever sent per remote vertex — values only shrink (WCC) or first-send
  /// wins (BFS levels only grow), so suppressing non-improvements is exact.
  struct PropSession {
    bool active = false;
    bool is_bfs = false;
    store::GraphView view;
    std::vector<std::uint32_t> value;     // dist or label; kInfDist unset
    std::vector<std::uint32_t> best_out;  // per remote vertex
    engine::Frontier frontier;            // owned vertices to expand
  };
  PropSession prop_;

  /// PageRank session: owned vertices iterate in ascending order with the
  /// exact accumulation/update expressions of kernels/pagerank.cpp.
  struct PrSession {
    bool active = false;
    double damping = 0.85;
    store::GraphView view;
    std::vector<vid_t> owned;    // ascending
    std::vector<vid_t> ghosts;   // ascending distinct remote neighbors
    std::vector<vid_t> exports;  // owned ids other shards import
    std::vector<double> rank;    // full-n; owned entries live
    std::vector<double> contrib; // full-n; owned + ghost entries live
  };
  PrSession pr_;
};

}  // namespace ga::dist
