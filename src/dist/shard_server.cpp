#include "dist/shard_server.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "dist/partitioner.hpp"
#include "engine/traversal.hpp"
#include "kernels/registry.hpp"
#include "store/recovery.hpp"

namespace ga::dist {

namespace {

/// Deterministic expansion: serial push over the merged view, exactly the
/// delta-native edge_map path (and the serial CSR path on flat views).
engine::TraversalOptions shard_step_opts() {
  engine::TraversalOptions opts;
  opts.direction = engine::TraversalOptions::Dir::kPush;
  opts.parallel = false;
  return opts;
}

}  // namespace

void ShardServer::serve(MsgChannel& ch) {
  Message m;
  for (;;) {
    const core::Status st = ch.recv(&m, /*timeout_ms=*/-1);
    if (!st.ok()) return;  // peer closed / died: the shard just exits
    try {
      switch (m.type) {
        case MsgType::kInit: handle_init(m, ch); break;
        case MsgType::kInitRecover: handle_init_recover(m, ch); break;
        case MsgType::kApplyEpoch: handle_apply(m, ch); break;
        case MsgType::kBfsInit: handle_prop_init(m, ch, /*is_bfs=*/true); break;
        case MsgType::kWccInit: handle_prop_init(m, ch, /*is_bfs=*/false); break;
        case MsgType::kStep: handle_step(m, ch); break;
        case MsgType::kPrInit: handle_pr_init(m, ch); break;
        case MsgType::kPrExports: handle_pr_exports(m, ch); break;
        case MsgType::kPrScatter: handle_pr_scatter(ch); break;
        case MsgType::kPrApply: handle_pr_apply(m, ch); break;
        case MsgType::kGatherDist:
        case MsgType::kGatherLabels:
        case MsgType::kGatherRanks: handle_gather(m.type, ch); break;
        case MsgType::kFetchArcs: handle_fetch_arcs(ch); break;
        case MsgType::kHeartbeat: {
          ++counters_.heartbeats;
          ByteWriter w;
          w.put<std::uint64_t>(store_ ? store_->epoch() : 0);
          if (!ch.send(MsgType::kHeartbeatReply, w).ok()) return;
          break;
        }
        case MsgType::kStatus: handle_status(ch); break;
        case MsgType::kShutdown: {
          (void)ch.send(MsgType::kShutdownAck);
          return;
        }
        default: {
          ByteWriter w;
          w.put_str(std::string("shard: unexpected message ") +
                    msg_type_name(m.type));
          if (!ch.send(MsgType::kError, w).ok()) return;
        }
      }
    } catch (const std::exception& e) {
      ByteWriter w;
      w.put_str(e.what());
      if (!ch.send(MsgType::kError, w).ok()) return;
    }
  }
}

// ---------------------------------------------------------------------------
// Lifecycle

void ShardServer::attach_log(const std::string& dir,
                             std::uint64_t checkpoint_every,
                             bool sync_each_append) {
  store::EpochLogOptions lopts;
  lopts.dir = dir;
  lopts.checkpoint_every = checkpoint_every;
  lopts.sync_each_append = sync_each_append;
  log_ = std::make_unique<store::EpochLog>(std::move(lopts));
  log_->attach(*store_);
}

void ShardServer::grow_owner(vid_t universe) {
  // Extend to `universe` under the shared hash rule. No-op when the
  // coordinator already shipped a map covering these ids (a recovered
  // shard replays growth epochs it was initialized past).
  for (vid_t v = static_cast<vid_t>(owner_.size()); v < universe; ++v) {
    owner_.push_back(static_cast<std::uint8_t>(
        shards_ == 1 ? 0 : hash_owner(v, shards_)));
  }
}

void ShardServer::send_init_ack(MsgChannel& ch) {
  const store::GraphView v = store_->view();
  ByteWriter w;
  w.put<std::uint64_t>(v.epoch());
  w.put<std::uint32_t>(v.num_vertices());
  w.put<std::uint64_t>(v.num_arcs());
  (void)ch.send(MsgType::kInitAck, w);
}

void ShardServer::handle_init(const Message& m, MsgChannel& ch) {
  ByteReader r(m.body);
  self_ = r.get<std::uint32_t>();
  shards_ = r.get<std::uint32_t>();
  const auto checkpoint_every = r.get<std::uint64_t>();
  const bool sync_each = r.get<std::uint8_t>() != 0;
  const std::string dir = r.get_str();
  owner_ = r.get_vec<std::uint8_t>();
  auto offsets = r.get_vec<eid_t>();
  auto targets = r.get_vec<vid_t>();
  auto weights = r.get_vec<float>();
  GA_CHECK(r.done(), "shard init: trailing bytes");
  GA_CHECK(shards_ > 0 && self_ < shards_, "shard init: bad identity");
  GA_CHECK(offsets.size() == owner_.size() + 1,
           "shard init: owner map / CSR mismatch");

  graph::CSRGraph sub(std::move(offsets), std::move(targets),
                      std::move(weights), /*directed=*/true);
  prop_.active = false;
  pr_.active = false;
  log_.reset();  // release any previous log fd before reopening the dir
  store_ = std::make_unique<store::VersionedGraphStore>(std::move(sub));
  attach_log(dir, checkpoint_every, sync_each);
  ++counters_.inits;
  counters_.shard = self_;
  counters_.epoch = store_->epoch();
  send_init_ack(ch);
}

void ShardServer::handle_init_recover(const Message& m, MsgChannel& ch) {
  ByteReader r(m.body);
  self_ = r.get<std::uint32_t>();
  shards_ = r.get<std::uint32_t>();
  const auto checkpoint_every = r.get<std::uint64_t>();
  const bool sync_each = r.get<std::uint8_t>() != 0;
  const std::string dir = r.get_str();
  owner_ = r.get_vec<std::uint8_t>();
  GA_CHECK(r.done(), "shard recover: trailing bytes");
  GA_CHECK(shards_ > 0 && self_ < shards_, "shard recover: bad identity");

  // Rebuild from this shard's own durable history: checkpoint + replay.
  // acked ⇒ durable, so everything the coordinator saw acknowledged is
  // here; the coordinator resends only epochs past the recovered one.
  store::RecoveryOptions ropts;
  ropts.dir = dir;
  store::RecoveredStore rec = store::recover(ropts);
  GA_CHECK(rec.report.status().ok(),
           "shard recover: " + std::string(rec.report.status().message()));
  prop_.active = false;
  pr_.active = false;
  log_.reset();
  store_ = std::move(rec.store);
  attach_log(dir, checkpoint_every, sync_each);
  // The recovered universe may trail the owner map (growth epochs past the
  // last ack are resent by the coordinator afterwards) but never leads it.
  GA_CHECK(store_->view().num_vertices() <= owner_.size(),
           "shard recover: store universe exceeds owner map");
  ++counters_.inits;
  ++counters_.recoveries;
  counters_.shard = self_;
  counters_.epoch = store_->epoch();
  send_init_ack(ch);
}

void ShardServer::handle_apply(const Message& m, MsgChannel& ch) {
  GA_CHECK(store_ != nullptr, "shard: apply before init");
  ByteReader r(m.body);
  const auto epoch = r.get<std::uint64_t>();
  const std::uint64_t at = store_->epoch();
  ByteWriter w;
  if (epoch <= at) {
    // Catch-up resend of an epoch this shard already acked (it was durable
    // before the crash, so recovery replayed it). Idempotent by epoch id.
    w.put<std::uint64_t>(at);
    (void)ch.send(MsgType::kApplyAck, w);
    return;
  }
  GA_CHECK(epoch == at + 1, "shard: epoch gap (have " + std::to_string(at) +
                                ", got " + std::to_string(epoch) + ")");
  const std::size_t off = m.body.size() - r.remaining();
  store::DeltaBatch batch =
      store::DeltaBatch::decode(m.body.data() + off, r.remaining());
  const std::uint64_t applied = store_->apply(batch);
  GA_CHECK(applied == epoch, "shard: store epoch diverged");
  grow_owner(store_->view().num_vertices());
  ++counters_.applies;
  counters_.epoch = applied;
  w.put<std::uint64_t>(applied);
  (void)ch.send(MsgType::kApplyAck, w);
}

// ---------------------------------------------------------------------------
// BFS / WCC: level-synchronous min-value propagation

std::uint64_t ShardServer::require_epoch(ByteReader& r) const {
  GA_CHECK(store_ != nullptr, "shard: query before init");
  const auto epoch = r.get<std::uint64_t>();
  GA_CHECK(epoch == store_->epoch(),
           "shard: query epoch " + std::to_string(epoch) + " != store epoch " +
               std::to_string(store_->epoch()));
  return epoch;
}

void ShardServer::handle_prop_init(const Message& m, MsgChannel& ch,
                                   bool is_bfs) {
  ByteReader r(m.body);
  require_epoch(r);
  const vid_t source = is_bfs ? r.get<std::uint32_t>() : 0;
  GA_CHECK(r.done(), "shard: trailing bytes in kernel init");

  prop_.active = true;
  prop_.is_bfs = is_bfs;
  prop_.view = store_->view();
  const vid_t n = prop_.view.num_vertices();
  GA_CHECK(owner_.size() == n, "shard: owner map / universe mismatch");
  prop_.value.assign(n, kInfDist);
  prop_.best_out.assign(n, kInfDist);
  prop_.frontier = engine::Frontier(n);
  if (is_bfs) {
    GA_CHECK(source < n, "shard: BFS source out of range");
    if (owner_[source] == self_) {
      prop_.value[source] = 0;
      prop_.frontier.add(source);
    }
  } else {
    for (vid_t v = 0; v < n; ++v) {
      if (owner_[v] == self_) {
        prop_.value[v] = v;
        prop_.frontier.add(v);
      }
    }
    prop_.frontier.auto_switch();
  }
  ++counters_.sessions;
  ByteWriter w;
  w.put<std::uint64_t>(prop_.frontier.size());
  (void)ch.send(MsgType::kStepReply, w);
}

void ShardServer::handle_step(const Message& m, MsgChannel& ch) {
  GA_CHECK(prop_.active, "shard: step without an open BFS/WCC session");
  ByteReader r(m.body);
  const auto inbox_v = r.get_vec<vid_t>();
  const auto inbox_val = r.get_vec<std::uint32_t>();
  GA_CHECK(inbox_v.size() == inbox_val.size() && r.done(),
           "shard: malformed step inbox");

  // Merge remotely-discovered improvements into the carried frontier.
  for (std::size_t i = 0; i < inbox_v.size(); ++i) {
    const vid_t v = inbox_v[i];
    GA_CHECK(v < prop_.value.size() && owner_[v] == self_,
             "shard: inbox vertex not owned here");
    if (inbox_val[i] < prop_.value[v]) {
      prop_.value[v] = inbox_val[i];
      prop_.frontier.add(v);
    }
  }

  // One super-step. Owned targets improve in place and enter the next
  // frontier; boundary targets go to the outbox, deduplicated by the
  // best-value-ever-sent array (values are monotone per vertex).
  struct Propagate {
    ShardServer::PropSession& s;
    const std::vector<std::uint8_t>& owner;
    std::uint32_t self;
    std::vector<vid_t>& out_v;
    std::vector<std::uint32_t>& out_val;

    bool cond(vid_t) const { return true; }
    bool update(vid_t u, vid_t v, float) {
      const std::uint32_t val = s.is_bfs ? s.value[u] + 1 : s.value[u];
      if (owner[v] == self) {
        if (val < s.value[v]) {
          s.value[v] = val;
          return true;
        }
        return false;
      }
      if (val < s.best_out[v]) {
        s.best_out[v] = val;
        out_v.push_back(v);
        out_val.push_back(val);
      }
      return false;
    }
    bool update_atomic(vid_t u, vid_t v, float w) { return update(u, v, w); }
  };
  std::vector<vid_t> out_v;
  std::vector<std::uint32_t> out_val;
  Propagate step{prop_, owner_, self_, out_v, out_val};
  prop_.frontier =
      engine::edge_map(prop_.view, prop_.frontier, step, shard_step_opts());
  ++counters_.steps;

  // A vertex improved twice within the round appears twice in out_v; only
  // the last (smallest) value should ship. Compact newest-wins.
  if (!out_v.empty()) {
    std::vector<vid_t> cv;
    std::vector<std::uint32_t> cval;
    cv.reserve(out_v.size());
    cval.reserve(out_v.size());
    for (std::size_t i = 0; i < out_v.size(); ++i) {
      if (prop_.best_out[out_v[i]] == out_val[i]) {
        cv.push_back(out_v[i]);
        cval.push_back(out_val[i]);
      }
    }
    out_v.swap(cv);
    out_val.swap(cval);
  }

  ByteWriter w;
  w.put<std::uint64_t>(prop_.frontier.size());
  w.put_vec(out_v);
  w.put_vec(out_val);
  (void)ch.send(MsgType::kStepReply, w);
}

// ---------------------------------------------------------------------------
// PageRank: exact pull-iteration arithmetic with ghost contributions

void ShardServer::handle_pr_init(const Message& m, MsgChannel& ch) {
  ByteReader r(m.body);
  require_epoch(r);
  pr_.damping = r.get<double>();
  GA_CHECK(r.done(), "shard: trailing bytes in pr init");

  pr_.active = true;
  pr_.view = store_->view();
  const vid_t n = pr_.view.num_vertices();
  GA_CHECK(owner_.size() == n, "shard: owner map / universe mismatch");
  pr_.owned.clear();
  pr_.ghosts.clear();
  pr_.exports.clear();
  pr_.rank.assign(n, 0.0);
  pr_.contrib.assign(n, 0.0);

  std::uint64_t dangling_owned = 0;
  const double init = 1.0 / static_cast<double>(n);
  std::vector<std::uint8_t> is_ghost(n, 0);
  for (vid_t v = 0; v < n; ++v) {
    if (owner_[v] != self_) continue;
    pr_.owned.push_back(v);
    pr_.rank[v] = init;
    if (pr_.view.out_degree(v) == 0) ++dangling_owned;
    pr_.view.for_each_out(v, [&](vid_t u, float) {
      if (owner_[u] != self_) is_ghost[u] = 1;
    });
  }
  for (vid_t v = 0; v < n; ++v) {
    if (is_ghost[v]) pr_.ghosts.push_back(v);
  }
  ++counters_.sessions;
  ByteWriter w;
  w.put<std::uint64_t>(dangling_owned);
  w.put_vec(pr_.ghosts);
  (void)ch.send(MsgType::kPrInitReply, w);
}

void ShardServer::handle_pr_exports(const Message& m, MsgChannel& ch) {
  GA_CHECK(pr_.active, "shard: pr exports without an open session");
  ByteReader r(m.body);
  pr_.exports = r.get_vec<vid_t>();
  GA_CHECK(r.done(), "shard: malformed pr exports");
  for (vid_t v : pr_.exports) {
    GA_CHECK(v < owner_.size() && owner_[v] == self_,
             "shard: export vertex not owned here");
  }
  ByteWriter w;
  w.put<std::uint64_t>(pr_.exports.size());
  (void)ch.send(MsgType::kPrInitReply, w);
}

void ShardServer::handle_pr_scatter(MsgChannel& ch) {
  GA_CHECK(pr_.active, "shard: pr scatter without an open session");
  // contrib[u] = rank[u] / outdeg(u), 0 for dangling — the same division
  // the reference iteration performs (kernels/pagerank.cpp power_iterate).
  for (vid_t u : pr_.owned) {
    const eid_t d = pr_.view.out_degree(u);
    pr_.contrib[u] = d == 0 ? 0.0 : pr_.rank[u] / static_cast<double>(d);
  }
  std::vector<double> vals;
  vals.reserve(pr_.exports.size());
  for (vid_t v : pr_.exports) vals.push_back(pr_.contrib[v]);
  ++counters_.steps;
  ByteWriter w;
  w.put_vec(vals);
  (void)ch.send(MsgType::kPrScatterReply, w);
}

void ShardServer::handle_pr_apply(const Message& m, MsgChannel& ch) {
  GA_CHECK(pr_.active, "shard: pr apply without an open session");
  ByteReader r(m.body);
  const auto dangling = r.get<double>();
  const auto ghost_vals = r.get_vec<double>();
  GA_CHECK(ghost_vals.size() == pr_.ghosts.size() && r.done(),
           "shard: pr apply ghost vector mismatch");
  for (std::size_t i = 0; i < pr_.ghosts.size(); ++i) {
    pr_.contrib[pr_.ghosts[i]] = ghost_vals[i];
  }

  // Owned vertices update with the reference expressions verbatim: the
  // ascending-neighbor accumulation matches the serial pull order, and the
  // single-expression update keeps any compiler fma contraction identical
  // to the single-process kernel, so ranks stay bit-exact.
  const double n = static_cast<double>(pr_.view.num_vertices());
  const double restart =
      (1.0 - pr_.damping) / n + pr_.damping * dangling / n;
  double delta = 0.0;
  for (vid_t v : pr_.owned) {
    double acc = 0.0;
    pr_.view.for_each_out(v, [&](vid_t u, float) { acc += pr_.contrib[u]; });
    const double next = restart + pr_.damping * acc;
    delta += std::abs(next - pr_.rank[v]);
    pr_.rank[v] = next;
  }
  ++counters_.steps;
  ByteWriter w;
  w.put<double>(delta);
  (void)ch.send(MsgType::kPrApplyReply, w);
}

// ---------------------------------------------------------------------------
// Gathers / health

void ShardServer::handle_gather(MsgType t, MsgChannel& ch) {
  ByteWriter w;
  if (t == MsgType::kGatherRanks) {
    GA_CHECK(pr_.active, "shard: rank gather without an open session");
    std::vector<double> vals;
    vals.reserve(pr_.owned.size());
    for (vid_t v : pr_.owned) vals.push_back(pr_.rank[v]);
    w.put_vec(pr_.owned);
    w.put_vec(vals);
  } else {
    GA_CHECK(prop_.active, "shard: gather without an open session");
    GA_CHECK(prop_.is_bfs == (t == MsgType::kGatherDist),
             "shard: gather kind does not match the open session");
    std::vector<vid_t> ids;
    std::vector<std::uint32_t> vals;
    for (vid_t v = 0; v < prop_.value.size(); ++v) {
      if (owner_[v] != self_) continue;
      ids.push_back(v);
      vals.push_back(prop_.value[v]);
    }
    w.put_vec(ids);
    w.put_vec(vals);
  }
  (void)ch.send(MsgType::kGatherReply, w);
}

void ShardServer::handle_fetch_arcs(MsgChannel& ch) {
  GA_CHECK(store_ != nullptr, "shard: fetch before init");
  const store::GraphView v = store_->view();
  const graph::CSRGraph& flat = v.csr();
  auto props = v.flatten_props();
  ByteWriter w;
  w.put<std::uint64_t>(v.epoch());
  w.put_vec(flat.offsets());
  w.put_vec(flat.targets());
  w.put_vec(flat.weights());
  std::vector<vid_t> prop_ids;
  std::vector<float> prop_vals;
  if (props) {
    for (const auto& [id, val] : *props) {
      if (id < owner_.size() && owner_[id] == self_) {
        prop_ids.push_back(id);
        prop_vals.push_back(val);
      }
    }
  }
  w.put_vec(prop_ids);
  w.put_vec(prop_vals);
  (void)ch.send(MsgType::kArcsReply, w);
}

void ShardServer::handle_status(MsgChannel& ch) {
  ByteWriter w;
  const store::GraphView v =
      store_ ? store_->view() : store::GraphView();
  w.put<std::uint32_t>(self_);
  w.put<std::uint64_t>(store_ ? store_->epoch() : 0);
  w.put<std::uint32_t>(v.valid() ? v.num_vertices() : 0);
  w.put<std::uint64_t>(v.valid() ? v.num_arcs() : 0);
  w.put<std::uint64_t>(counters_.applies);
  w.put<std::uint64_t>(counters_.sessions);
  w.put<std::uint64_t>(counters_.steps);
  w.put<std::uint64_t>(counters_.heartbeats);
  w.put<std::uint64_t>(counters_.recoveries);
  w.put<std::uint64_t>(
      static_cast<std::uint64_t>(kernels::registry().size()));
  (void)ch.send(MsgType::kStatusReply, w);
}

}  // namespace ga::dist
