#include "dist/partitioner.hpp"

#include <algorithm>

#include "kernels/partition.hpp"

namespace ga::dist {

const char* partition_method_name(PartitionMethod m) {
  switch (m) {
    case PartitionMethod::kHash: return "hash";
    case PartitionMethod::kEdgeCut: return "edge_cut";
  }
  return "unknown";
}

double PartitionPlan::load_imbalance() const {
  if (shards == 0 || n == 0) return 1.0;
  vid_t max_owned = 0;
  for (const ShardDomainStats& s : stats) max_owned = std::max(max_owned, s.owned);
  const double ideal = static_cast<double>(n) / static_cast<double>(shards);
  return ideal == 0.0 ? 1.0 : static_cast<double>(max_owned) / ideal;
}

double PartitionPlan::arc_imbalance() const {
  if (shards == 0 || total_arcs == 0) return 1.0;
  eid_t max_arcs = 0;
  for (const ShardDomainStats& s : stats) max_arcs = std::max(max_arcs, s.arcs);
  const double mean =
      static_cast<double>(total_arcs) / static_cast<double>(shards);
  return static_cast<double>(max_arcs) / mean;
}

PartitionPlan make_plan(const graph::CSRGraph& g,
                        const PartitionPlanOptions& opts) {
  GA_CHECK(opts.shards >= 1, "dist: shard count must be >= 1");
  GA_CHECK(opts.shards <= 255, "dist: owner map is u8; max 255 shards");
  GA_CHECK(opts.shards <= g.num_vertices() || g.num_vertices() == 0,
           "dist: more shards than vertices");

  PartitionPlan plan;
  plan.shards = opts.shards;
  plan.method = opts.method;
  plan.n = g.num_vertices();
  plan.directed = g.directed();
  plan.total_arcs = g.num_arcs();
  plan.owner.resize(plan.n);
  plan.stats.assign(plan.shards, ShardDomainStats{});
  plan.mirror.assign(plan.shards, {});

  if (opts.method == PartitionMethod::kHash || plan.shards == 1) {
    for (vid_t v = 0; v < plan.n; ++v) {
      plan.owner[v] = static_cast<std::uint8_t>(
          plan.shards == 1 ? 0 : hash_owner(v, plan.shards));
    }
  } else {
    kernels::PartitionResult pr = kernels::partition(g, plan.shards, opts.seed);
    for (vid_t v = 0; v < plan.n; ++v) {
      plan.owner[v] = static_cast<std::uint8_t>(pr.part[v]);
    }
  }

  // Per-shard domain stats + mirror (ghost) lists in one adjacency sweep.
  std::vector<std::vector<vid_t>> remote(plan.shards);
  for (vid_t u = 0; u < plan.n; ++u) {
    const std::uint32_t s = plan.owner[u];
    ShardDomainStats& st = plan.stats[s];
    ++st.owned;
    for (vid_t v : g.out_neighbors(u)) {
      ++st.arcs;
      if (plan.owner[v] != s) {
        ++st.cut_arcs;
        remote[s].push_back(v);
      }
    }
  }
  for (std::uint32_t s = 0; s < plan.shards; ++s) {
    std::vector<vid_t>& m = remote[s];
    std::sort(m.begin(), m.end());
    m.erase(std::unique(m.begin(), m.end()), m.end());
    plan.stats[s].mirrors = static_cast<vid_t>(m.size());
    plan.cut_arcs += plan.stats[s].cut_arcs;
    plan.mirror[s] = std::move(m);
  }
  return plan;
}

graph::CSRGraph extract_shard(const graph::CSRGraph& g,
                              const PartitionPlan& plan, std::uint32_t s) {
  GA_CHECK(s < plan.shards, "dist: shard id out of range");
  GA_CHECK(plan.n == g.num_vertices(), "dist: plan does not match graph");
  const bool weighted = g.weighted();
  std::vector<eid_t> offsets(plan.n + 1, 0);
  std::vector<vid_t> targets;
  std::vector<float> weights;
  targets.reserve(plan.stats[s].arcs);
  if (weighted) weights.reserve(plan.stats[s].arcs);
  for (vid_t u = 0; u < plan.n; ++u) {
    offsets[u] = static_cast<eid_t>(targets.size());
    if (plan.owner[u] != s) continue;
    const auto nbrs = g.out_neighbors(u);
    targets.insert(targets.end(), nbrs.begin(), nbrs.end());
    if (weighted) {
      const auto ws = g.out_weights(u);
      weights.insert(weights.end(), ws.begin(), ws.end());
    }
  }
  offsets[plan.n] = static_cast<eid_t>(targets.size());
  // Directed: owned vertices carry out-arcs only; the matching reverse arc
  // of an undirected edge lives on the other endpoint's shard.
  return graph::CSRGraph(std::move(offsets), std::move(targets),
                         std::move(weights), /*directed=*/true);
}

graph::CSRGraph reassemble(const std::vector<const graph::CSRGraph*>& shards,
                           bool directed) {
  GA_CHECK(!shards.empty(), "dist: reassemble of zero shards");
  vid_t n = 0;
  bool weighted = false;
  for (const graph::CSRGraph* g : shards) {
    GA_CHECK(g != nullptr, "dist: reassemble with null shard");
    n = std::max(n, g->num_vertices());
    weighted = weighted || g->weighted();
  }
  std::vector<eid_t> offsets(n + 1, 0);
  std::vector<vid_t> targets;
  std::vector<float> weights;
  for (vid_t u = 0; u < n; ++u) {
    offsets[u] = static_cast<eid_t>(targets.size());
    for (const graph::CSRGraph* g : shards) {
      if (u >= g->num_vertices() || g->out_degree(u) == 0) continue;
      // Each vertex's adjacency lives on exactly one shard (its owner);
      // concatenation is the merge.
      const auto nbrs = g->out_neighbors(u);
      targets.insert(targets.end(), nbrs.begin(), nbrs.end());
      if (g->weighted()) {
        const auto ws = g->out_weights(u);
        weights.insert(weights.end(), ws.begin(), ws.end());
      } else if (weighted) {
        weights.insert(weights.end(), nbrs.size(), 1.0f);
      }
    }
  }
  offsets[n] = static_cast<eid_t>(targets.size());
  return graph::CSRGraph(std::move(offsets), std::move(targets),
                         std::move(weights), directed);
}

Partitioner::Partitioner(PartitionPlan plan)
    : plan_(std::move(plan)), owner_(plan_.owner) {}

std::vector<store::DeltaBatch> Partitioner::split(
    const store::DeltaBatch& batch) {
  const std::uint32_t k = plan_.shards;
  // Shard stores hold directed sub-CSRs: the global batch already carries
  // both arcs of an undirected edge, so each sub-batch records single arcs.
  std::vector<store::DeltaBatch> out(k, store::DeltaBatch(/*directed=*/true));

  const vid_t growth = batch.vertex_growth();
  if (growth > 0) {
    const vid_t base = universe();
    owner_.reserve(base + growth);
    for (vid_t v = base; v < base + growth; ++v) {
      owner_.push_back(static_cast<std::uint8_t>(
          k == 1 ? 0 : hash_owner(v, k)));
    }
    for (auto& b : out) b.add_vertices(growth);
  }

  batch.for_each_edge_op([&](vid_t u, vid_t v, float w, bool is_delete) {
    GA_CHECK(u < owner_.size() && v < owner_.size(),
             "dist: edge op outside the vertex universe");
    store::DeltaBatch& b = out[owner_[u]];
    if (is_delete) {
      b.delete_edge(u, v);
    } else {
      b.insert_edge(u, v, w);
    }
  });
  for (const auto& [v, value] : batch.property_ops()) {
    GA_CHECK(v < owner_.size(), "dist: property op outside the universe");
    out[owner_[v]].set_vertex_property(v, value);
  }
  return out;
}

}  // namespace ga::dist
