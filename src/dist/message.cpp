#include "dist/message.hpp"

#include <cerrno>
#include <chrono>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "resilience/record_io.hpp"

namespace ga::dist {

namespace recio = resilience::recio;

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kError: return "error";
    case MsgType::kInit: return "init";
    case MsgType::kInitRecover: return "init_recover";
    case MsgType::kInitAck: return "init_ack";
    case MsgType::kApplyEpoch: return "apply_epoch";
    case MsgType::kApplyAck: return "apply_ack";
    case MsgType::kBfsInit: return "bfs_init";
    case MsgType::kWccInit: return "wcc_init";
    case MsgType::kStep: return "step";
    case MsgType::kStepReply: return "step_reply";
    case MsgType::kPrInit: return "pr_init";
    case MsgType::kPrInitReply: return "pr_init_reply";
    case MsgType::kPrExports: return "pr_exports";
    case MsgType::kPrScatter: return "pr_scatter";
    case MsgType::kPrScatterReply: return "pr_scatter_reply";
    case MsgType::kPrApply: return "pr_apply";
    case MsgType::kPrApplyReply: return "pr_apply_reply";
    case MsgType::kGatherDist: return "gather_dist";
    case MsgType::kGatherLabels: return "gather_labels";
    case MsgType::kGatherRanks: return "gather_ranks";
    case MsgType::kGatherReply: return "gather_reply";
    case MsgType::kFetchArcs: return "fetch_arcs";
    case MsgType::kArcsReply: return "arcs_reply";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kHeartbeatReply: return "heartbeat_reply";
    case MsgType::kStatus: return "status";
    case MsgType::kStatusReply: return "status_reply";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kShutdownAck: return "shutdown_ack";
  }
  return "unknown";
}

void MsgChannel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void MsgChannel::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

core::Status MsgChannel::send(MsgType type, std::span<const char> body) {
  if (fd_ < 0) return core::Status::FailedPrecondition("channel closed");
  const std::size_t payload_len = sizeof(std::uint16_t) + body.size();
  if (payload_len > recio::kMaxPayload) {
    return core::Status::InvalidArgument("dist message exceeds frame limit");
  }
  // Assemble the frame in place — [len][crc][seq][type][body] — using the
  // shared framing constants so the wire bytes match what frame_record
  // would produce for the same payload.
  scratch_.resize(recio::frame_size(payload_len));
  const std::uint64_t seq = send_seq_ + 1;
  std::memcpy(scratch_.data() + recio::kFrameHeader, &seq, recio::kSeqBytes);
  char* payload = scratch_.data() + recio::kFrameHeader + recio::kSeqBytes;
  const auto t16 = static_cast<std::uint16_t>(type);
  std::memcpy(payload, &t16, sizeof(t16));
  if (!body.empty()) {
    std::memcpy(payload + sizeof(t16), body.data(), body.size());
  }
  const std::uint32_t crc = recio::frame_crc(seq, payload, payload_len);
  const auto len32 = static_cast<std::uint32_t>(payload_len);
  std::memcpy(scratch_.data(), &len32, sizeof(len32));
  std::memcpy(scratch_.data() + sizeof(len32), &crc, sizeof(crc));

  std::size_t off = 0;
  while (off < scratch_.size()) {
    const ssize_t k = ::send(fd_, scratch_.data() + off, scratch_.size() - off,
                             MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      return core::Status::Unavailable(
          std::string("dist send(") + msg_type_name(type) +
          "): " + std::strerror(errno));
    }
    off += static_cast<std::size_t>(k);
  }
  send_seq_ = seq;
  ++stats_.msgs_sent;
  stats_.bytes_sent += scratch_.size();
  return core::Status::Ok();
}

core::Status MsgChannel::read_exact(char* dst, std::size_t len,
                                    int timeout_ms) {
  using clock = std::chrono::steady_clock;
  const auto deadline = clock::now() + std::chrono::milliseconds(
                                           timeout_ms < 0 ? 0 : timeout_ms);
  std::size_t got = 0;
  while (got < len) {
    int wait_ms = -1;
    if (timeout_ms >= 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - clock::now())
                            .count();
      if (left <= 0) {
        return core::Status::DeadlineExceeded("dist recv: timed out");
      }
      wait_ms = static_cast<int>(left);
    }
    struct pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return core::Status::Unavailable(std::string("dist recv poll: ") +
                                       std::strerror(errno));
    }
    if (rc == 0) return core::Status::DeadlineExceeded("dist recv: timed out");
    const ssize_t k = ::recv(fd_, dst + got, len - got, 0);
    if (k == 0) {
      // EOF: a clean close at a frame boundary and a torn frame both mean
      // the peer is gone — fail-over treats them identically.
      return core::Status::Unavailable("dist recv: peer closed");
    }
    if (k < 0) {
      if (errno == EINTR) continue;
      return core::Status::Unavailable(std::string("dist recv: ") +
                                       std::strerror(errno));
    }
    got += static_cast<std::size_t>(k);
  }
  return core::Status::Ok();
}

core::Status MsgChannel::recv(Message* out, int timeout_ms) {
  if (fd_ < 0) return core::Status::FailedPrecondition("channel closed");
  char hdr[recio::kFrameHeader + recio::kSeqBytes];
  core::Status st = read_exact(hdr, sizeof(hdr), timeout_ms);
  if (!st.ok()) return st;
  const recio::FrameHeader h = recio::parse_frame_header(hdr);
  if (h.len < sizeof(std::uint16_t) || h.len > recio::kMaxPayload) {
    return core::Status::DataLoss("dist recv: bad frame length " +
                                  std::to_string(h.len));
  }
  std::uint64_t seq = 0;
  std::memcpy(&seq, hdr + recio::kFrameHeader, recio::kSeqBytes);
  std::vector<char> payload(h.len);
  st = read_exact(payload.data(), payload.size(), timeout_ms);
  if (!st.ok()) return st;
  if (recio::frame_crc(seq, payload.data(), payload.size()) != h.crc) {
    return core::Status::DataLoss("dist recv: CRC mismatch on frame " +
                                  std::to_string(seq));
  }
  if (seq != recv_seq_ + 1) {
    return core::Status::Internal("dist recv: sequence gap (expected " +
                                  std::to_string(recv_seq_ + 1) + ", got " +
                                  std::to_string(seq) + ")");
  }
  recv_seq_ = seq;
  ++stats_.msgs_recv;
  stats_.bytes_recv += recio::frame_size(h.len);
  std::uint16_t t16 = 0;
  std::memcpy(&t16, payload.data(), sizeof(t16));
  out->type = static_cast<MsgType>(t16);
  out->seq = seq;
  out->body.assign(payload.begin() + sizeof(t16), payload.end());
  return core::Status::Ok();
}

core::StatusOr<Message> MsgChannel::expect(MsgType want, int timeout_ms) {
  Message m;
  core::Status st = recv(&m, timeout_ms);
  if (!st.ok()) return st;
  if (m.type == MsgType::kError) {
    ByteReader r(m.body);
    return core::Status::Internal("shard error: " + r.get_str());
  }
  if (m.type != want) {
    return core::Status::Internal(std::string("dist: expected ") +
                                  msg_type_name(want) + ", got " +
                                  msg_type_name(m.type));
  }
  return m;
}

std::pair<MsgChannel, MsgChannel> MsgChannel::make_pair() {
  int fds[2];
  GA_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0,
           std::string("socketpair: ") + std::strerror(errno));
  return {MsgChannel(fds[0]), MsgChannel(fds[1])};
}

}  // namespace ga::dist
