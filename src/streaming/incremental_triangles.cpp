#include "streaming/incremental_triangles.hpp"

#include <algorithm>

#include "kernels/triangles.hpp"

namespace ga::streaming {

IncrementalTriangles::IncrementalTriangles(const graph::DynamicGraph& g)
    : g_(g), local_(g.num_vertices(), 0) {
  // Batch initialization from a snapshot.
  const graph::CSRGraph snap = g.snapshot();
  const auto counts = kernels::triangle_counts_per_vertex(snap);
  for (vid_t v = 0; v < counts.size(); ++v) local_[v] = counts[v];
  global_ = kernels::triangle_count_node_iterator(snap);
}

std::vector<vid_t> IncrementalTriangles::common_neighbors(vid_t u,
                                                          vid_t v) const {
  const auto nu = g_.neighbors_sorted(u);
  const auto nv = g_.neighbors_sorted(v);
  std::vector<vid_t> common;
  std::set_intersection(nu.begin(), nu.end(), nv.begin(), nv.end(),
                        std::back_inserter(common));
  return common;
}

std::uint64_t IncrementalTriangles::on_insert(vid_t u, vid_t v) {
  if (g_.has_edge(u, v)) return 0;  // weight refresh, no structural change
  if (local_.size() < g_.num_vertices()) local_.resize(g_.num_vertices(), 0);
  const auto common = common_neighbors(u, v);
  for (vid_t w : common) ++local_[w];
  local_[u] += common.size();
  local_[v] += common.size();
  global_ += common.size();
  return common.size();
}

std::uint64_t IncrementalTriangles::on_delete(vid_t u, vid_t v) {
  if (!g_.has_edge(u, v)) return 0;
  const auto common = common_neighbors(u, v);
  for (vid_t w : common) --local_[w];
  local_[u] -= common.size();
  local_[v] -= common.size();
  global_ -= common.size();
  return common.size();
}

}  // namespace ga::streaming
