#include "streaming/update_stream.hpp"

#include <unordered_set>

#include "core/hash.hpp"
#include "core/prng.hpp"

namespace ga::streaming {

namespace {

/// Power-law-biased vertex pick: repeatedly halve the id range with an
/// RMAT-style skewed coin, producing hub-heavy selections.
vid_t skewed_vertex(core::Xoshiro256& rng, vid_t n) {
  vid_t lo = 0, hi = n;
  while (hi - lo > 1) {
    const vid_t mid = lo + (hi - lo) / 2;
    if (rng.next_bool(0.6)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return lo;
}

}  // namespace

std::vector<Update> generate_stream(vid_t num_vertices,
                                    const StreamOptions& opts) {
  GA_CHECK(num_vertices >= 2, "generate_stream: need >= 2 vertices");
  GA_CHECK(opts.delete_fraction + opts.property_fraction + opts.query_fraction
               <= 1.0,
           "generate_stream: fractions exceed 1");
  core::Xoshiro256 rng(opts.seed);
  std::vector<Update> stream;
  stream.reserve(opts.count);
  std::vector<std::pair<vid_t, vid_t>> inserted;  // live-edge delete candidates
  std::unordered_set<std::uint64_t> live;         // dedup: re-inserts are updates
  std::int64_t ts = 0;
  for (std::size_t i = 0; i < opts.count; ++i) {
    ts += 1 + static_cast<std::int64_t>(rng.next_exponential(3.0));
    const double roll = rng.next_double();
    Update u;
    u.ts = ts;
    if (roll < opts.delete_fraction && !inserted.empty()) {
      const auto k = rng.next_below(inserted.size());
      u.kind = UpdateKind::kEdgeDelete;
      u.u = inserted[k].first;
      u.v = inserted[k].second;
      inserted[k] = inserted.back();
      inserted.pop_back();
      live.erase(core::edge_key(u.u, u.v));
    } else if (roll < opts.delete_fraction + opts.property_fraction) {
      u.kind = UpdateKind::kPropertyUpdate;
      u.u = skewed_vertex(rng, num_vertices);
      u.value = static_cast<float>(rng.next_double());
    } else if (roll < opts.delete_fraction + opts.property_fraction +
                          opts.query_fraction) {
      u.kind = UpdateKind::kVertexQuery;
      u.u = skewed_vertex(rng, num_vertices);
    } else {
      u.kind = UpdateKind::kEdgeInsert;
      do {
        u.u = skewed_vertex(rng, num_vertices);
        u.v = skewed_vertex(rng, num_vertices);
      } while (u.u == u.v);
      u.value = static_cast<float>(rng.next_double());
      // Only first insertions become delete candidates; re-inserting a
      // live edge is a weight/timestamp update, not a new edge.
      if (live.insert(core::edge_key(u.u, u.v)).second) {
        inserted.emplace_back(u.u, u.v);
      }
    }
    stream.push_back(u);
  }
  return stream;
}

std::vector<Update> generate_query_stream(vid_t num_vertices,
                                          std::size_t count,
                                          std::uint64_t seed) {
  core::Xoshiro256 rng(seed);
  std::vector<Update> stream;
  stream.reserve(count);
  std::int64_t ts = 0;
  for (std::size_t i = 0; i < count; ++i) {
    ts += 1 + static_cast<std::int64_t>(rng.next_exponential(2.0));
    Update u;
    u.kind = UpdateKind::kVertexQuery;
    u.u = skewed_vertex(rng, num_vertices);
    u.ts = ts;
    stream.push_back(u);
  }
  return stream;
}

}  // namespace ga::streaming
