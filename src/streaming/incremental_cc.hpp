// Incremental connected components (streaming form of Fig. 1 row "CCW").
// Inserts are O(α(n)) via union-find; deletions (rare in the paper's
// streams) invalidate the forest, so the tracker marks itself dirty and
// rebuilds from the backing DynamicGraph on the next query — the standard
// "deletions are expensive, amortize them" policy for streaming
// connectivity.
#pragma once

#include "graph/dynamic_graph.hpp"
#include "kernels/connected_components.hpp"

namespace ga::streaming {

class IncrementalCC {
 public:
  explicit IncrementalCC(const graph::DynamicGraph& g);

  /// Notify an applied edge insert. Returns true if two components merged.
  bool on_insert(vid_t u, vid_t v);

  /// Notify an applied edge delete (marks dirty; rebuild deferred).
  void on_delete(vid_t u, vid_t v);

  /// Notify that vertices were added to the backing graph.
  void on_add_vertices(vid_t new_total);

  vid_t num_components();
  bool connected(vid_t u, vid_t v);
  /// Size of the component containing v.
  vid_t component_size(vid_t v);

  bool dirty() const { return dirty_; }
  std::uint64_t rebuilds() const { return rebuilds_; }

 private:
  void rebuild_if_dirty();

  const graph::DynamicGraph& g_;
  kernels::UnionFind uf_;
  bool dirty_ = false;
  std::uint64_t rebuilds_ = 0;
};

}  // namespace ga::streaming
