#include "streaming/topk_tracker.hpp"

#include <algorithm>

namespace ga::streaming {

TopKTracker::TopKTracker(vid_t num_vertices, std::size_t k)
    : k_(k), score_(num_vertices, 0.0) {
  GA_CHECK(k > 0, "TopKTracker: k > 0");
  // Seed: all vertices at score 0; the first k ids form the initial top-k.
  for (vid_t v = 0; v < num_vertices; ++v) {
    if (top_.size() < k_) {
      top_.insert({0.0, v});
    } else {
      rest_.insert({0.0, v});
    }
  }
}

bool TopKTracker::update(vid_t v, double score) {
  GA_CHECK(v < score_.size(), "TopKTracker: vertex out of range");
  const std::pair<double, vid_t> old_key{score_[v], v};
  const std::pair<double, vid_t> new_key{score, v};
  const bool was_top = top_.erase(old_key) > 0;
  if (!was_top) rest_.erase(old_key);
  score_[v] = score;

  bool membership_changed = false;
  if (was_top) {
    // Still beats the best of the rest?
    if (!rest_.empty() && new_key < *rest_.rbegin()) {
      // Demote v, promote the best outsider.
      auto best = std::prev(rest_.end());
      top_.insert(*best);
      rest_.erase(best);
      rest_.insert(new_key);
      membership_changed = true;
    } else {
      top_.insert(new_key);
    }
  } else {
    // Does v displace the weakest top member?
    if (!top_.empty() && new_key > *top_.begin()) {
      auto weakest = top_.begin();
      rest_.insert(*weakest);
      top_.erase(weakest);
      top_.insert(new_key);
      membership_changed = true;
    } else if (top_.size() < k_) {
      top_.insert(new_key);
      membership_changed = true;
    } else {
      rest_.insert(new_key);
    }
  }
  if (membership_changed) ++changes_;
  return membership_changed;
}

std::vector<std::pair<double, vid_t>> TopKTracker::topk() const {
  std::vector<std::pair<double, vid_t>> out(top_.rbegin(), top_.rend());
  return out;
}

}  // namespace ga::streaming
