// Streaming Jaccard coefficients — both forms the paper distinguishes:
//
//  Form 1 (update-triggered): "on addition of an edge, what does the graph
//  modification do to the maximum Jaccard coefficient the two vertices may
//  have with any other"; report a threshold crossing as an event.
//
//  Form 2 (query stream): "a sequence of vertices, where for each provided
//  vertex the kernel should return what other vertices have a non-zero
//  Jaccard coefficient (perhaps greater than some threshold)" — the
//  NORA-style real-time relationship query (§III, §V.B).
#pragma once

#include <vector>

#include "graph/dynamic_graph.hpp"

namespace ga::streaming {

struct JaccardMatch {
  vid_t other = 0;
  double coefficient = 0.0;
};

class StreamingJaccard {
 public:
  explicit StreamingJaccard(const graph::DynamicGraph& g, double threshold = 0.5)
      : g_(g), threshold_(threshold) {}

  /// Form 2: all vertices with J(u, v) >= min_coeff (> 0), sorted by
  /// descending coefficient. Examines only 2-hop candidates.
  std::vector<JaccardMatch> query(vid_t u, double min_coeff = 0.0) const;

  /// Max-coefficient partner of u (coefficient 0 if none).
  JaccardMatch max_partner(vid_t u) const;

  /// Form 1: evaluate an applied edge insert (u,v). Returns true if either
  /// endpoint's maximum coefficient now crosses the trigger threshold.
  bool on_insert_crosses_threshold(vid_t u, vid_t v) const;

  double threshold() const { return threshold_; }

 private:
  const graph::DynamicGraph& g_;
  double threshold_;
};

}  // namespace ga::streaming
