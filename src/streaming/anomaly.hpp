// Firehose-style streaming anomaly kernels — the three "Anomaly" rows of
// Fig. 1, modeled on Sandia's Firehose benchmark [1] (biased-key packet
// streams):
//
//  * FixedKeyAnomaly ("anomaly1/power-law"): bounded key space, exact
//    per-key state; after N observations of a key, flag it anomalous if
//    the fraction of "biased" samples exceeds a threshold. Output class:
//    per-key (vertex-property-like) events.
//  * UnboundedKeyAnomaly ("anomaly2/active-set"): unbounded key domain
//    under a fixed memory budget with LRU eviction — detection is
//    approximate; evictions lose state (measured as potential misses).
//  * TwoLevelKeyAnomaly ("anomaly3/two-level"): keys carry subkeys; a key
//    fires when its distinct-subkey count crosses a threshold (an
//    O(1)-event, global-value output).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/common.hpp"

namespace ga::streaming {

struct AnomalyEvent {
  std::uint64_t key = 0;
  std::uint64_t at_sample = 0;  // stream position when flagged
  double biased_fraction = 0.0;
};

struct Packet {
  std::uint64_t key = 0;
  bool biased = false;          // "anomalous" value bit
  std::uint64_t subkey = 0;     // two-level kernels only
};

/// Deterministic Firehose-like packet stream: keys ~ power-law; a chosen
/// subset of keys emits biased values with probability `bias`, the rest
/// with probability `base`.
struct PacketStreamOptions {
  std::uint64_t num_keys = 1 << 16;
  std::size_t count = 100000;
  double anomalous_key_fraction = 0.01;
  double bias = 0.9;   // P(biased sample | anomalous key)
  double base = 0.05;  // P(biased sample | normal key)
  std::uint64_t seed = 1;
};

struct GeneratedStream {
  std::vector<Packet> packets;
  std::unordered_set<std::uint64_t> truth;  // truly anomalous keys
};

GeneratedStream generate_packet_stream(const PacketStreamOptions& opts);

class FixedKeyAnomaly {
 public:
  FixedKeyAnomaly(std::uint64_t num_keys, std::uint32_t observation_window = 24,
                  double flag_threshold = 0.5);

  /// Feed one packet; appends to events() when a key is flagged.
  void ingest(const Packet& p);

  const std::vector<AnomalyEvent>& events() const { return events_; }
  std::uint64_t samples_seen() const { return samples_; }

 private:
  struct KeyState {
    std::uint32_t seen = 0;
    std::uint32_t biased = 0;
    bool flagged = false;
  };
  std::vector<KeyState> state_;
  std::uint32_t window_;
  double threshold_;
  std::uint64_t samples_ = 0;
  std::vector<AnomalyEvent> events_;
};

class UnboundedKeyAnomaly {
 public:
  UnboundedKeyAnomaly(std::size_t capacity, std::uint32_t observation_window = 24,
                      double flag_threshold = 0.5);

  void ingest(const Packet& p);

  const std::vector<AnomalyEvent>& events() const { return events_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  struct KeyState {
    std::uint32_t seen = 0;
    std::uint32_t biased = 0;
    bool flagged = false;
    std::list<std::uint64_t>::iterator lru_pos;
  };
  std::size_t capacity_;
  std::uint32_t window_;
  double threshold_;
  std::uint64_t samples_ = 0;
  std::uint64_t evictions_ = 0;
  std::list<std::uint64_t> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, KeyState> state_;
  std::vector<AnomalyEvent> events_;
};

class TwoLevelKeyAnomaly {
 public:
  explicit TwoLevelKeyAnomaly(std::size_t distinct_subkey_threshold = 16);

  void ingest(const Packet& p);

  const std::vector<AnomalyEvent>& events() const { return events_; }
  /// Distinct subkeys observed for `key` so far.
  std::size_t distinct_subkeys(std::uint64_t key) const;

 private:
  std::size_t threshold_;
  std::uint64_t samples_ = 0;
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>> subkeys_;
  std::unordered_set<std::uint64_t> flagged_;
  std::vector<AnomalyEvent> events_;
};

/// Precision/recall of flagged keys vs ground truth.
struct DetectionQuality {
  double precision = 0.0;
  double recall = 0.0;
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
};

DetectionQuality score_detection(const std::vector<AnomalyEvent>& events,
                                 const std::unordered_set<std::uint64_t>& truth);

}  // namespace ga::streaming
