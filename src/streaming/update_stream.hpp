// Update streams: the paper's two streaming forms (§II) are
//  (1) incremental targeted graph updates — edge/vertex inserts, deletes,
//      property updates — and
//  (2) a stream of independent local queries naming a vertex to search for
//      and an operation on its properties.
// This header defines the update record and deterministic synthetic stream
// generators for both forms.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge.hpp"

namespace ga::streaming {

enum class UpdateKind : std::uint8_t {
  kEdgeInsert,
  kEdgeDelete,
  kPropertyUpdate,  // set property `value` on vertex u
  kVertexQuery,     // query form: look up vertex u
};

struct Update {
  UpdateKind kind = UpdateKind::kEdgeInsert;
  vid_t u = 0;
  vid_t v = 0;        // unused for property updates / queries
  float value = 1.0f; // edge weight or property value
  std::int64_t ts = 0;
};

struct StreamOptions {
  std::size_t count = 10000;   // number of updates to generate
  double delete_fraction = 0.1;  // fraction of edge ops that are deletes
  double property_fraction = 0.0;
  double query_fraction = 0.0;
  std::uint64_t seed = 1;
};

/// Mixed update stream over an RMAT-like key distribution so inserts hit
/// hubs with power-law bias (matching the locality profile of Graph500
/// streams). Deletes replay earlier inserts from this same stream.
std::vector<Update> generate_stream(vid_t num_vertices,
                                    const StreamOptions& opts);

/// Query-only stream (the paper's second streaming form): vertices chosen
/// with power-law bias.
std::vector<Update> generate_query_stream(vid_t num_vertices,
                                          std::size_t count,
                                          std::uint64_t seed);

}  // namespace ga::streaming
