#include "streaming/streaming_jaccard.hpp"

#include <algorithm>
#include <unordered_map>

namespace ga::streaming {

std::vector<JaccardMatch> StreamingJaccard::query(vid_t u,
                                                  double min_coeff) const {
  GA_CHECK(u < g_.num_vertices(), "jaccard query: vertex out of range");
  const auto nu = g_.neighbors_sorted(u);
  // Count shared neighbors with every 2-hop vertex in one sweep.
  std::unordered_map<vid_t, std::size_t> shared;
  for (vid_t w : nu) {
    g_.for_each_neighbor(w, [&](vid_t v, float, std::int64_t) {
      if (v != u) ++shared[v];
    });
  }
  std::vector<JaccardMatch> out;
  const double du = static_cast<double>(nu.size());
  for (const auto& [v, inter] : shared) {
    const double uni =
        du + static_cast<double>(g_.degree(v)) - static_cast<double>(inter);
    const double j = uni == 0.0 ? 0.0 : static_cast<double>(inter) / uni;
    if (j > 0.0 && j >= min_coeff) out.push_back({v, j});
  }
  std::sort(out.begin(), out.end(), [](const JaccardMatch& a, const JaccardMatch& b) {
    return a.coefficient != b.coefficient ? a.coefficient > b.coefficient
                                          : a.other < b.other;
  });
  return out;
}

JaccardMatch StreamingJaccard::max_partner(vid_t u) const {
  const auto matches = query(u, 0.0);
  return matches.empty() ? JaccardMatch{kInvalidVid, 0.0} : matches.front();
}

bool StreamingJaccard::on_insert_crosses_threshold(vid_t u, vid_t v) const {
  return max_partner(u).coefficient >= threshold_ ||
         max_partner(v).coefficient >= threshold_;
}

}  // namespace ga::streaming
