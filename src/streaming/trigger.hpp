// The Fig. 2 streaming→batch coupling: a StreamProcessor applies updates
// to a dynamic graph, keeps incremental metrics hot, and when a local
// metric change crosses a trigger threshold, uses the modified vertices as
// SEEDS into a subgraph extraction and runs a batch analytic over the
// extracted subgraph — producing alerts and/or property write-backs
// exactly as the paper's canonical flow describes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/dynamic_graph.hpp"
#include "kernels/incremental.hpp"
#include "resilience/ingest_queue.hpp"
#include "resilience/retry.hpp"
#include "store/epoch_log.hpp"
#include "store/versioned_store.hpp"
#include "streaming/incremental_triangles.hpp"
#include "streaming/topk_tracker.hpp"
#include "streaming/update_stream.hpp"

namespace ga::streaming {

struct Alert {
  std::int64_t ts = 0;
  vid_t seed = 0;
  std::string reason;
  double metric = 0.0;
  vid_t subgraph_vertices = 0;   // size of the extracted neighborhood
  double analytic_result = 0.0;  // batch analytic output on the subgraph
  /// True when the full re-analytic missed its deadline or kept failing and
  /// analytic_result came from the incremental approximation instead.
  bool degraded = false;
};

struct TriggerPolicy {
  /// Fire when one edge insert closes at least this many new triangles
  /// (sudden local densification).
  std::uint64_t triangle_delta_threshold = 8;
  /// Fire when a component merge creates a component at least this large.
  vid_t component_size_threshold = 0;  // 0 = disabled
  /// Fire when the degree top-k membership changes.
  bool fire_on_topk_change = false;
  /// Depth of the seed neighborhood extracted on fire.
  std::uint32_t extraction_depth = 2;
};

/// Batch analytic run on each extracted subgraph: receives the subgraph
/// and the seed's local id within it, returns a scalar result.
using SubgraphAnalytic =
    std::function<double(const graph::CSRGraph&, vid_t seed_local)>;

struct StreamStats {
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t property_updates = 0;
  std::uint64_t queries = 0;
  std::uint64_t triggers = 0;
  std::uint64_t epoch_publications = 0;  // snapshots pushed to the publisher
  // Resilience counters for the trigger path (extraction + re-analytic).
  std::uint64_t retries = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t degraded = 0;        // alerts served by the fallback metric
  std::uint64_t dropped_alerts = 0;  // extraction/analytic failed outright
};

class StreamProcessor {
 public:
  StreamProcessor(graph::DynamicGraph& g, TriggerPolicy policy,
                  std::size_t topk = 10);

  /// Set the batch analytic run on trigger (default: average degree).
  void set_analytic(SubgraphAnalytic analytic);

  /// Route the trigger path (extraction + analytic) through a deadline +
  /// retry stage executor (stages "trigger_extract" / "trigger_analytic").
  /// When the full analytic exhausts its retries or misses its deadline,
  /// the alert degrades to the incremental approximation already kept hot
  /// (the seed's component size from StreamingComponents by default; override
  /// with set_degraded_analytic, e.g. an incremental_pagerank rank).
  void set_stage_executor(resilience::StageExecutor* executor,
                          resilience::StageOptions stage_opts = {});

  /// Fallback metric for degraded alerts: fn(seed) -> approximate result.
  void set_degraded_analytic(std::function<double(vid_t)> fn);

  /// Route versioned graph views to a downstream consumer (typically
  /// server::AnalyticsServer::publisher()) every `every_n_updates`
  /// structural updates and after every trigger fire. The first publish
  /// seeds an embedded VersionedGraphStore from the dynamic graph (one
  /// O(|E|) snapshot); every later publish seals the accumulated delta
  /// batch and ships an O(Δ) overlay view — the store's compactor decides
  /// when a full fold is worth it. Keeps the serving layer's epoch fresh
  /// without this layer depending on the server.
  void set_epoch_publisher(std::function<void(store::GraphView)> fn,
                           std::uint64_t every_n_updates = 1024);

  /// Push the current graph state to the publisher immediately.
  void publish_epoch();

  /// Make every published epoch durable: the log is attached to the
  /// embedded store (appending each sealed epoch pre-publish, driving the
  /// checkpoint cadence post-publish) as soon as the store exists. Not
  /// owned; must outlive the processor. Call before the first publish.
  void set_epoch_log(store::EpochLog* log);

  /// The embedded delta-chain store backing epoch publication; nullptr
  /// until the first publish seeds it. Exposed so harnesses can start the
  /// background compactor or read chain-depth / compaction stats.
  store::VersionedGraphStore* versioned_store() { return versioned_.get(); }
  const store::VersionedGraphStore* versioned_store() const {
    return versioned_.get();
  }

  /// Apply one update; may append to alerts().
  void apply(const Update& u);

  /// Apply a whole stream.
  void apply_all(const std::vector<Update>& stream);

  const std::vector<Alert>& alerts() const { return alerts_; }
  const StreamStats& stats() const { return stats_; }
  IncrementalTriangles& triangles() { return tris_; }
  kernels::StreamingComponents& components() { return cc_; }
  TopKTracker& degree_topk() { return topk_; }

 private:
  void fire(vid_t seed, const std::string& reason, double metric,
            std::int64_t ts);
  /// Folds pending_ into the versioned store (seeding it on first call).
  void sync_store();

  graph::DynamicGraph& g_;
  TriggerPolicy policy_;
  kernels::StreamingComponents cc_;
  IncrementalTriangles tris_;
  TopKTracker topk_;
  SubgraphAnalytic analytic_;
  std::vector<Alert> alerts_;
  StreamStats stats_;
  resilience::StageExecutor* executor_ = nullptr;
  resilience::StageOptions stage_opts_;
  std::function<double(vid_t)> degraded_analytic_;
  std::function<void(store::GraphView)> epoch_publisher_;
  store::EpochLog* epoch_log_ = nullptr;
  std::uint64_t publish_every_n_ = 1024;
  std::uint64_t updates_since_publish_ = 0;
  // Delta capture for O(Δ) epoch publication: pending_ mirrors the exact
  // mutations applied to g_ since the last publish (populated only once a
  // publisher is set); versioned_ is seeded lazily on the first publish.
  std::unique_ptr<store::VersionedGraphStore> versioned_;
  store::DeltaBatch pending_;
};

/// Producer/consumer streaming run with backpressure: a producer thread
/// offers `stream` into a bounded IngestQueue under `qopts` while the
/// calling thread pops and applies — Fig. 2's update stream decoupled from
/// the apply loop so overload sheds or blocks at the queue instead of
/// corrupting the processor.
struct BackpressureReport {
  resilience::QueueStats queue;
  std::size_t applied = 0;
  double seconds = 0.0;
};
BackpressureReport run_with_backpressure(StreamProcessor& proc,
                                         const std::vector<Update>& stream,
                                         const resilience::QueueOptions& qopts);

}  // namespace ga::streaming
