// Incremental triangle counting (streaming GTC, Fig. 1): on insert/delete
// of edge (u,v) the global count changes by exactly |N(u) ∩ N(v)|, and
// each common neighbor's local count changes by 1 — the paper's "change in
// either/both the associated vertices' triangle count or the overall
// number of triangles".
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dynamic_graph.hpp"

namespace ga::streaming {

class IncrementalTriangles {
 public:
  /// Initializes counts from the current graph contents.
  explicit IncrementalTriangles(const graph::DynamicGraph& g);

  /// Call BEFORE applying the insert to the graph. Returns the triangle
  /// delta (new triangles closed by (u,v)).
  std::uint64_t on_insert(vid_t u, vid_t v);

  /// Call BEFORE applying the delete. Returns the (positive) count removed.
  std::uint64_t on_delete(vid_t u, vid_t v);

  std::uint64_t global_count() const { return global_; }
  std::uint64_t local_count(vid_t v) const { return local_[v]; }
  const std::vector<std::uint64_t>& local_counts() const { return local_; }

 private:
  /// Common neighbors of u and v in the current graph.
  std::vector<vid_t> common_neighbors(vid_t u, vid_t v) const;

  const graph::DynamicGraph& g_;
  std::uint64_t global_ = 0;
  std::vector<std::uint64_t> local_;
};

}  // namespace ga::streaming
