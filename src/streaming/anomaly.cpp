#include "streaming/anomaly.hpp"

#include "core/hash.hpp"
#include "core/prng.hpp"

namespace ga::streaming {

GeneratedStream generate_packet_stream(const PacketStreamOptions& opts) {
  GA_CHECK(opts.num_keys > 0, "packet stream: num_keys > 0");
  core::Xoshiro256 rng(opts.seed);
  GeneratedStream out;
  out.packets.reserve(opts.count);
  // Anomalous keys: deterministic hash-based selection.
  const auto is_anomalous = [&](std::uint64_t key) {
    const double u =
        static_cast<double>(core::mix64(key ^ opts.seed) >> 11) * 0x1.0p-53;
    return u < opts.anomalous_key_fraction;
  };
  for (std::size_t i = 0; i < opts.count; ++i) {
    Packet p;
    // Power-law key pick: bit-folded geometric bias toward low keys.
    std::uint64_t k = rng.next_below(opts.num_keys);
    while (k > 0 && rng.next_bool(0.5)) k /= 2;
    p.key = k;
    const bool anomalous = is_anomalous(p.key);
    if (anomalous) out.truth.insert(p.key);
    p.biased = rng.next_bool(anomalous ? opts.bias : opts.base);
    p.subkey = rng.next_below(anomalous ? 4096 : 8);
    out.packets.push_back(p);
  }
  return out;
}

FixedKeyAnomaly::FixedKeyAnomaly(std::uint64_t num_keys,
                                 std::uint32_t observation_window,
                                 double flag_threshold)
    : state_(num_keys), window_(observation_window), threshold_(flag_threshold) {
  GA_CHECK(observation_window > 0, "anomaly window > 0");
}

void FixedKeyAnomaly::ingest(const Packet& p) {
  GA_CHECK(p.key < state_.size(), "fixed-key anomaly: key out of range");
  ++samples_;
  KeyState& s = state_[p.key];
  if (s.flagged) return;
  ++s.seen;
  if (p.biased) ++s.biased;
  if (s.seen >= window_) {
    const double frac = static_cast<double>(s.biased) / s.seen;
    if (frac >= threshold_) {
      s.flagged = true;
      events_.push_back({p.key, samples_, frac});
    } else {
      // Sliding restart: decay by halving so persistent drift still fires.
      s.seen /= 2;
      s.biased /= 2;
    }
  }
}

UnboundedKeyAnomaly::UnboundedKeyAnomaly(std::size_t capacity,
                                         std::uint32_t observation_window,
                                         double flag_threshold)
    : capacity_(capacity), window_(observation_window),
      threshold_(flag_threshold) {
  GA_CHECK(capacity > 0, "unbounded-key anomaly: capacity > 0");
}

void UnboundedKeyAnomaly::ingest(const Packet& p) {
  ++samples_;
  auto it = state_.find(p.key);
  if (it == state_.end()) {
    if (state_.size() >= capacity_) {
      // Evict least-recently-used key (state loss = approximation).
      const std::uint64_t victim = lru_.back();
      lru_.pop_back();
      state_.erase(victim);
      ++evictions_;
    }
    lru_.push_front(p.key);
    it = state_.emplace(p.key, KeyState{}).first;
    it->second.lru_pos = lru_.begin();
  } else {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  }
  KeyState& s = it->second;
  if (s.flagged) return;
  ++s.seen;
  if (p.biased) ++s.biased;
  if (s.seen >= window_) {
    const double frac = static_cast<double>(s.biased) / s.seen;
    if (frac >= threshold_) {
      s.flagged = true;
      events_.push_back({p.key, samples_, frac});
    } else {
      s.seen /= 2;
      s.biased /= 2;
    }
  }
}

TwoLevelKeyAnomaly::TwoLevelKeyAnomaly(std::size_t distinct_subkey_threshold)
    : threshold_(distinct_subkey_threshold) {
  GA_CHECK(threshold_ > 0, "two-level anomaly: threshold > 0");
}

void TwoLevelKeyAnomaly::ingest(const Packet& p) {
  ++samples_;
  if (flagged_.count(p.key) != 0) return;
  auto& subs = subkeys_[p.key];
  subs.insert(p.subkey);
  if (subs.size() >= threshold_) {
    flagged_.insert(p.key);
    events_.push_back(
        {p.key, samples_, static_cast<double>(subs.size())});
    subkeys_.erase(p.key);  // second level state released once fired
  }
}

std::size_t TwoLevelKeyAnomaly::distinct_subkeys(std::uint64_t key) const {
  if (flagged_.count(key) != 0) return threshold_;
  const auto it = subkeys_.find(key);
  return it == subkeys_.end() ? 0 : it->second.size();
}

DetectionQuality score_detection(
    const std::vector<AnomalyEvent>& events,
    const std::unordered_set<std::uint64_t>& truth) {
  DetectionQuality q;
  std::unordered_set<std::uint64_t> flagged;
  for (const auto& e : events) flagged.insert(e.key);
  for (std::uint64_t k : flagged) {
    if (truth.count(k) != 0) {
      ++q.true_positives;
    } else {
      ++q.false_positives;
    }
  }
  if (!flagged.empty()) {
    q.precision = static_cast<double>(q.true_positives) /
                  static_cast<double>(flagged.size());
  }
  if (!truth.empty()) {
    q.recall = static_cast<double>(q.true_positives) /
               static_cast<double>(truth.size());
  }
  return q;
}

}  // namespace ga::streaming
