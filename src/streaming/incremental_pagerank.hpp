// Incremental PageRank: warm-started power iteration. After a batch of
// edge updates the previous rank vector is a near-fixpoint, so restarting
// the iteration from it converges in a handful of sweeps instead of ~50
// from uniform — the streaming-centrality pattern the paper describes
// ("if edge e is added, how does it change its associated vertex
// centrality metrics").
#pragma once

#include <vector>

#include "graph/dynamic_graph.hpp"

namespace ga::streaming {

class IncrementalPageRank {
 public:
  IncrementalPageRank(const graph::DynamicGraph& g, double damping = 0.85,
                      double tolerance = 1e-8);

  /// Recompute after updates, warm-starting from the previous ranks.
  /// Returns iterations used.
  unsigned refresh();

  const std::vector<double>& ranks() const { return rank_; }
  double rank(vid_t v) const { return rank_[v]; }
  unsigned last_iterations() const { return last_iters_; }

 private:
  const graph::DynamicGraph& g_;
  double damping_;
  double tolerance_;
  std::vector<double> rank_;
  unsigned last_iters_ = 0;
};

}  // namespace ga::streaming
