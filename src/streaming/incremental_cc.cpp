#include "streaming/incremental_cc.hpp"

namespace ga::streaming {

IncrementalCC::IncrementalCC(const graph::DynamicGraph& g)
    : g_(g), uf_(g.num_vertices()) {
  // Absorb any pre-existing edges.
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    g.for_each_neighbor(u, [&](vid_t v, float, std::int64_t) {
      if (u < v || g.directed()) uf_.unite(u, v);
    });
  }
}

bool IncrementalCC::on_insert(vid_t u, vid_t v) {
  if (dirty_) {
    // A rebuild is pending anyway; the snapshot will include this edge.
    return false;
  }
  return uf_.unite(u, v);
}

void IncrementalCC::on_delete(vid_t /*u*/, vid_t /*v*/) { dirty_ = true; }

void IncrementalCC::on_add_vertices(vid_t /*new_total*/) { dirty_ = true; }

void IncrementalCC::rebuild_if_dirty() {
  if (!dirty_) return;
  uf_.reset(g_.num_vertices());
  for (vid_t u = 0; u < g_.num_vertices(); ++u) {
    g_.for_each_neighbor(u, [&](vid_t v, float, std::int64_t) {
      if (u < v || g_.directed()) uf_.unite(u, v);
    });
  }
  dirty_ = false;
  ++rebuilds_;
}

vid_t IncrementalCC::num_components() {
  rebuild_if_dirty();
  return uf_.num_sets();
}

bool IncrementalCC::connected(vid_t u, vid_t v) {
  rebuild_if_dirty();
  return uf_.connected(u, v);
}

vid_t IncrementalCC::component_size(vid_t v) {
  rebuild_if_dirty();
  return uf_.size_of(v);
}

}  // namespace ga::streaming
