#include "streaming/incremental_pagerank.hpp"

#include <cmath>

namespace ga::streaming {

IncrementalPageRank::IncrementalPageRank(const graph::DynamicGraph& g,
                                         double damping, double tolerance)
    : g_(g), damping_(damping), tolerance_(tolerance) {
  rank_.assign(g.num_vertices(), g.num_vertices() ? 1.0 / g.num_vertices() : 0.0);
  refresh();
}

unsigned IncrementalPageRank::refresh() {
  const vid_t n = g_.num_vertices();
  if (n == 0) return 0;
  if (rank_.size() != n) {
    // New vertices start at the uniform share; renormalize below.
    rank_.resize(n, 1.0 / n);
  }
  // Renormalize the warm start (mass drifts when edges/vertices change).
  double mass = 0.0;
  for (double r : rank_) mass += r;
  if (mass > 0.0) {
    for (double& r : rank_) r /= mass;
  }

  std::vector<double> contrib(n, 0.0), next(n, 0.0);
  unsigned iters = 0;
  for (; iters < 100; ++iters) {
    double dangling = 0.0;
    for (vid_t u = 0; u < n; ++u) {
      const eid_t d = g_.degree(u);
      if (d == 0) {
        dangling += rank_[u];
        contrib[u] = 0.0;
      } else {
        contrib[u] = rank_[u] / static_cast<double>(d);
      }
    }
    const double base = (1.0 - damping_) / n + damping_ * dangling / n;
    std::fill(next.begin(), next.end(), base);
    // Push along arcs: undirected DynamicGraph stores both directions, so
    // iterating out-neighbors covers the symmetric contribution.
    for (vid_t u = 0; u < n; ++u) {
      if (contrib[u] == 0.0) continue;
      const double c = damping_ * contrib[u];
      g_.for_each_neighbor(u, [&](vid_t v, float, std::int64_t) {
        next[v] += c;
      });
    }
    double delta = 0.0;
    for (vid_t v = 0; v < n; ++v) delta += std::abs(next[v] - rank_[v]);
    rank_.swap(next);
    if (delta < tolerance_) {
      ++iters;
      break;
    }
  }
  last_iters_ = iters;
  return iters;
}

}  // namespace ga::streaming
