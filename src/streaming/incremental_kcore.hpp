// Incremental k-core membership tracking: a streaming "compute vertex
// property" kernel (Fig. 1 output class) with O(1) threshold events when
// vertices enter or leave the k-core. Inserts can only grow the core and
// deletes only shrink it, so the tracker keeps cheap degree bounds hot and
// recomputes lazily (the StreamingComponents amortization policy) only when a
// query arrives after the bounds say membership may have changed.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dynamic_graph.hpp"

namespace ga::streaming {

class IncrementalKCore {
 public:
  IncrementalKCore(const graph::DynamicGraph& g, std::uint32_t k);

  /// Notify AFTER the insert/delete has been applied to the graph.
  /// Returns true if the k-core membership of some vertex MAY have
  /// changed (conservative: exact status available from is_member()).
  bool on_insert(vid_t u, vid_t v);
  bool on_delete(vid_t u, vid_t v);

  std::uint32_t k() const { return k_; }
  bool is_member(vid_t v);
  vid_t core_size();
  std::uint64_t recomputes() const { return recomputes_; }

 private:
  void recompute_if_dirty();

  const graph::DynamicGraph& g_;
  std::uint32_t k_;
  bool dirty_ = true;
  std::uint64_t recomputes_ = 0;
  std::vector<bool> member_;
  vid_t size_ = 0;
};

}  // namespace ga::streaming
