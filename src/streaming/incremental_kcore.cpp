#include "streaming/incremental_kcore.hpp"

#include <deque>

namespace ga::streaming {

IncrementalKCore::IncrementalKCore(const graph::DynamicGraph& g,
                                   std::uint32_t k)
    : g_(g), k_(k) {
  GA_CHECK(k >= 1, "k-core tracker: k >= 1");
}

void IncrementalKCore::recompute_if_dirty() {
  if (!dirty_) return;
  const vid_t n = g_.num_vertices();
  // Peel: repeatedly drop vertices with fewer than k live neighbors.
  std::vector<std::uint32_t> deg(n, 0);
  member_.assign(n, true);
  std::deque<vid_t> queue;
  for (vid_t v = 0; v < n; ++v) {
    deg[v] = static_cast<std::uint32_t>(g_.degree(v));
    if (deg[v] < k_) {
      member_[v] = false;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    const vid_t v = queue.front();
    queue.pop_front();
    g_.for_each_neighbor(v, [&](vid_t u, float, std::int64_t) {
      if (member_[u] && --deg[u] < k_) {
        member_[u] = false;
        queue.push_back(u);
      }
    });
  }
  size_ = 0;
  for (vid_t v = 0; v < n; ++v) size_ += member_[v] ? 1 : 0;
  dirty_ = false;
  ++recomputes_;
}

bool IncrementalKCore::on_insert(vid_t u, vid_t v) {
  if (dirty_) return true;
  // An insert can only add members, and only if an endpoint just reached
  // degree k (its neighbors' effective degrees may cascade).
  if (g_.degree(u) >= k_ && !member_[u]) {
    dirty_ = true;
  } else if (g_.degree(v) >= k_ && !member_[v]) {
    dirty_ = true;
  }
  return dirty_;
}

bool IncrementalKCore::on_delete(vid_t u, vid_t v) {
  if (dirty_) return true;
  // A delete can only remove members, and only if it touched the core.
  if ((u < member_.size() && member_[u]) ||
      (v < member_.size() && member_[v])) {
    dirty_ = true;
  }
  return dirty_;
}

bool IncrementalKCore::is_member(vid_t v) {
  GA_CHECK(v < g_.num_vertices(), "k-core tracker: vertex out of range");
  recompute_if_dirty();
  return member_[v];
}

vid_t IncrementalKCore::core_size() {
  recompute_if_dirty();
  return size_;
}

}  // namespace ga::streaming
