#include "streaming/trigger.hpp"

#include <algorithm>
#include <thread>

#include "core/timer.hpp"
#include "graph/builder.hpp"
#include "kernels/bfs.hpp"

namespace ga::streaming {

namespace {

/// Extract the depth-bounded neighborhood of `seed` from a snapshot as a
/// standalone CSR with remapped vertex ids. Returns the subgraph and the
/// seed's local id.
std::pair<graph::CSRGraph, vid_t> extract_neighborhood(
    const graph::DynamicGraph& g, vid_t seed, std::uint32_t depth) {
  const graph::CSRGraph snap = g.snapshot();
  const std::vector<vid_t> members =
      kernels::khop_neighborhood(snap, {seed}, depth);
  // Remap to local ids (members is sorted).
  std::vector<graph::Edge> edges;
  const auto local_of = [&](vid_t v) -> vid_t {
    const auto it = std::lower_bound(members.begin(), members.end(), v);
    return (it != members.end() && *it == v)
               ? static_cast<vid_t>(it - members.begin())
               : kInvalidVid;
  };
  for (vid_t lu = 0; lu < members.size(); ++lu) {
    for (vid_t v : snap.out_neighbors(members[lu])) {
      const vid_t lv = local_of(v);
      if (lv != kInvalidVid && lu < lv) {
        edges.push_back(graph::Edge{lu, lv});
      }
    }
  }
  auto sub = graph::build_undirected(std::move(edges),
                                     static_cast<vid_t>(members.size()));
  return {std::move(sub), local_of(seed)};
}

double default_analytic(const graph::CSRGraph& sub, vid_t /*seed_local*/) {
  return sub.num_vertices() == 0
             ? 0.0
             : static_cast<double>(sub.num_arcs()) / sub.num_vertices();
}

}  // namespace

StreamProcessor::StreamProcessor(graph::DynamicGraph& g, TriggerPolicy policy,
                                 std::size_t topk)
    : g_(g), policy_(policy), cc_(g), tris_(g),
      topk_(g.num_vertices(), topk), analytic_(default_analytic),
      pending_(g.directed()) {
  // Seed the degree tracker from current state.
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    topk_.update(v, static_cast<double>(g.degree(v)));
  }
}

void StreamProcessor::set_analytic(SubgraphAnalytic analytic) {
  GA_CHECK(static_cast<bool>(analytic), "set_analytic: empty analytic");
  analytic_ = std::move(analytic);
}

void StreamProcessor::set_stage_executor(resilience::StageExecutor* executor,
                                         resilience::StageOptions stage_opts) {
  executor_ = executor;
  stage_opts_ = stage_opts;
}

void StreamProcessor::set_degraded_analytic(std::function<double(vid_t)> fn) {
  degraded_analytic_ = std::move(fn);
}

void StreamProcessor::set_epoch_publisher(
    std::function<void(store::GraphView)> fn, std::uint64_t every_n_updates) {
  GA_CHECK(every_n_updates > 0, "set_epoch_publisher: every_n must be > 0");
  epoch_publisher_ = std::move(fn);
  publish_every_n_ = every_n_updates;
  updates_since_publish_ = 0;
}

void StreamProcessor::set_epoch_log(store::EpochLog* log) {
  epoch_log_ = log;
  if (versioned_ && epoch_log_) epoch_log_->attach(*versioned_);
}

void StreamProcessor::sync_store() {
  if (!versioned_) {
    // First publish: one O(|E|) snapshot seeds the base CSR. Mutations
    // recorded so far are already inside that snapshot — discard them.
    versioned_ = std::make_unique<store::VersionedGraphStore>(
        g_.snapshot(/*keep_weights=*/true));
    // Durability attaches before the first epoch: the attach checkpoints
    // the seed base, so even epoch 1 has an image to replay onto.
    if (epoch_log_) epoch_log_->attach(*versioned_);
    pending_.clear();
    return;
  }
  // Later publishes are O(Δ): seal exactly what changed since last time.
  // Empty batches still advance the epoch (heartbeat publish).
  versioned_->apply(pending_);
  pending_.clear();
}

void StreamProcessor::publish_epoch() {
  if (!epoch_publisher_) return;
  sync_store();
  epoch_publisher_(versioned_->view());
  ++stats_.epoch_publications;
  updates_since_publish_ = 0;
}

void StreamProcessor::fire(vid_t seed, const std::string& reason,
                           double metric, std::int64_t ts) {
  ++stats_.triggers;
  Alert a;
  a.ts = ts;
  a.seed = seed;
  a.reason = reason;
  a.metric = metric;

  if (executor_ == nullptr) {
    auto [sub, seed_local] =
        extract_neighborhood(g_, seed, policy_.extraction_depth);
    a.subgraph_vertices = sub.num_vertices();
    a.analytic_result = analytic_(sub, seed_local);
    alerts_.push_back(std::move(a));
    // A trigger marks a meaningful local change — refresh the serving epoch
    // so queries land on the post-anomaly graph.
    publish_epoch();
    return;
  }

  // Resilient trigger path: extraction then analytic, each under the stage
  // executor's retry + deadline policy. The analytic degrades to the
  // incremental approximation; a failed extraction drops the alert (there
  // is no subgraph to analyze) and is counted.
  const auto ex = executor_->run<std::pair<graph::CSRGraph, vid_t>>(
      "trigger_extract",
      [&] { return extract_neighborhood(g_, seed, policy_.extraction_depth); },
      stage_opts_);
  stats_.retries += ex.attempts > 1 ? ex.attempts - 1 : 0;
  if (ex.deadline_missed) ++stats_.deadline_misses;
  if (!ex.ok) {
    ++stats_.dropped_alerts;
    return;
  }
  const auto& [sub, seed_local] = ex.value;
  a.subgraph_vertices = sub.num_vertices();

  const auto an = executor_->run<double>(
      "trigger_analytic", [&] { return analytic_(sub, seed_local); },
      [&] {
        // Incremental approximation kept hot by the stream trackers
        // (component size by default — a StreamingComponents answer).
        return degraded_analytic_
                   ? degraded_analytic_(seed)
                   : static_cast<double>(cc_.component_size(seed));
      },
      stage_opts_);
  stats_.retries += an.attempts > 1 ? an.attempts - 1 : 0;
  if (an.deadline_missed) ++stats_.deadline_misses;
  if (!an.ok) {
    ++stats_.dropped_alerts;
    return;
  }
  if (an.degraded) {
    ++stats_.degraded;
    a.degraded = true;
  }
  a.analytic_result = an.value;
  alerts_.push_back(std::move(a));
  publish_epoch();
}

void StreamProcessor::apply(const Update& u) {
  const bool structural =
      u.kind == UpdateKind::kEdgeInsert || u.kind == UpdateKind::kEdgeDelete;
  switch (u.kind) {
    case UpdateKind::kEdgeInsert: {
      ++stats_.inserts;
      const std::uint64_t delta = tris_.on_insert(u.u, u.v);
      g_.insert_edge(u.u, u.v, u.value, u.ts);
      // Delta capture mirrors DynamicGraph semantics exactly: an insert of
      // an existing edge becomes a weight upsert in the sealed layer.
      if (epoch_publisher_) pending_.insert_edge(u.u, u.v, u.value);
      const bool merged = cc_.on_insert(u.u, u.v);
      bool topk_changed = false;
      topk_changed |= topk_.update(u.u, static_cast<double>(g_.degree(u.u)));
      topk_changed |= topk_.update(u.v, static_cast<double>(g_.degree(u.v)));

      if (policy_.triangle_delta_threshold > 0 &&
          delta >= policy_.triangle_delta_threshold) {
        fire(u.u, "triangle-densification", static_cast<double>(delta), u.ts);
      }
      if (merged && policy_.component_size_threshold > 0 &&
          cc_.component_size(u.u) >= policy_.component_size_threshold) {
        fire(u.u, "component-merge",
             static_cast<double>(cc_.component_size(u.u)), u.ts);
      }
      if (policy_.fire_on_topk_change && topk_changed) {
        fire(u.u, "topk-degree-change", static_cast<double>(g_.degree(u.u)),
             u.ts);
      }
      break;
    }
    case UpdateKind::kEdgeDelete: {
      ++stats_.deletes;
      tris_.on_delete(u.u, u.v);
      if (g_.delete_edge(u.u, u.v)) {
        if (epoch_publisher_) pending_.delete_edge(u.u, u.v);
        cc_.on_delete(u.u, u.v);
        topk_.update(u.u, static_cast<double>(g_.degree(u.u)));
        topk_.update(u.v, static_cast<double>(g_.degree(u.v)));
      }
      break;
    }
    case UpdateKind::kPropertyUpdate:
      ++stats_.property_updates;
      // Property stores live in the pipeline layer; counted here.
      break;
    case UpdateKind::kVertexQuery:
      ++stats_.queries;
      break;
  }
  if (structural && epoch_publisher_ &&
      ++updates_since_publish_ >= publish_every_n_) {
    publish_epoch();
  }
}

void StreamProcessor::apply_all(const std::vector<Update>& stream) {
  for (const Update& u : stream) apply(u);
}

BackpressureReport run_with_backpressure(
    StreamProcessor& proc, const std::vector<Update>& stream,
    const resilience::QueueOptions& qopts) {
  BackpressureReport out;
  resilience::IngestQueue<Update> queue(qopts);
  core::WallTimer timer;
  std::thread producer([&] {
    for (const Update& u : stream) queue.push(u);
    queue.close();
  });
  while (auto u = queue.pop()) {
    proc.apply(*u);
    ++out.applied;
  }
  producer.join();
  out.seconds = timer.seconds();
  out.queue = queue.stats();
  return out;
}

}  // namespace ga::streaming
