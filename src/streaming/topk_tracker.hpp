// Streaming top-k tracker over a mutable per-vertex score (degree,
// triangle count, rank …). Answers the paper's streaming-centrality
// question: "does that [update] cause a change in the 'top n' vertices in
// terms of the metric" — an O(1)-events output class in Fig. 1.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "core/common.hpp"

namespace ga::streaming {

class TopKTracker {
 public:
  TopKTracker(vid_t num_vertices, std::size_t k);

  /// Update v's score. Returns true iff the top-k MEMBERSHIP changed
  /// (entries entering/leaving, not mere reordering).
  bool update(vid_t v, double score);

  double score(vid_t v) const { return score_[v]; }
  std::size_t k() const { return k_; }

  /// Current top-k as (score, vertex), descending.
  std::vector<std::pair<double, vid_t>> topk() const;

  /// Number of membership changes observed so far.
  std::uint64_t membership_changes() const { return changes_; }

 private:
  bool in_top(vid_t v) const { return top_.count({score_[v], v}) != 0; }

  std::size_t k_;
  std::vector<double> score_;
  // Ordered set of (score, vertex): top_ holds exactly the current top-k.
  std::set<std::pair<double, vid_t>> top_;
  std::set<std::pair<double, vid_t>> rest_;
  std::uint64_t changes_ = 0;
};

}  // namespace ga::streaming
