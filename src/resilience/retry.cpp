#include "resilience/retry.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace ga::resilience {

double StageExecutor::backoff_ms(const RetryPolicy& p,
                                 unsigned failed_attempts) {
  double delay = p.base_delay_ms;
  for (unsigned i = 1; i < failed_attempts; ++i) delay *= p.backoff_multiplier;
  return std::min(delay, p.max_delay_ms);
}

void StageExecutor::sleep_ms(double ms) {
  if (ms <= 0.0) return;
  if (sleep_fn_) {
    sleep_fn_(ms);
    return;
  }
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

StageHealth& StageExecutor::health_for(const std::string& stage) {
  for (auto& h : health_) {
    if (h.stage == stage) return h;
  }
  health_.push_back(StageHealth{});
  health_.back().stage = stage;
  return health_.back();
}

const StageHealth* StageExecutor::health_for_stage(
    const std::string& stage) const {
  for (const auto& h : health_) {
    if (h.stage == stage) return &h;
  }
  return nullptr;
}

std::string format_stage_health(const StageHealth& h) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "calls=%llu attempts=%llu failures=%llu retries=%llu "
                "deadline_misses=%llu degraded=%llu exhausted=%llu",
                static_cast<unsigned long long>(h.calls),
                static_cast<unsigned long long>(h.attempts),
                static_cast<unsigned long long>(h.failures),
                static_cast<unsigned long long>(h.retries),
                static_cast<unsigned long long>(h.deadline_misses),
                static_cast<unsigned long long>(h.degraded),
                static_cast<unsigned long long>(h.exhausted));
  return buf;
}

}  // namespace ga::resilience
