#include "resilience/wal.hpp"

#include <cstring>
#include <filesystem>

#include "core/hash.hpp"

namespace ga::resilience {

namespace {
constexpr std::size_t kFrameHeader = detail::kWalFrameHeader;
constexpr std::size_t kSeqBytes = detail::kWalSeqBytes;
}  // namespace

WalWriter::WalWriter(const std::string& path, bool truncate,
                     std::size_t group_commit_bytes, bool async_drain)
    : path_(path),
      os_(path, std::ios::binary | (truncate ? std::ios::trunc : std::ios::app)),
      buf_cap_(group_commit_bytes + 4096),
      group_commit_bytes_(group_commit_bytes),
      async_(async_drain) {
  GA_CHECK(os_.good(), "wal: cannot open " + path);
  buf_ = std::make_unique<char[]>(buf_cap_);
  if (async_) {
    spare_ = std::make_unique<char[]>(buf_cap_);
    writer_ = std::thread([this] { writer_loop(); });
  }
}

WalWriter::~WalWriter() {
  try {
    flush();
  } catch (...) {
    // Destructor flush is best-effort; a crash here is the torn-tail case
    // recovery is built to handle.
  }
  if (async_) {
    {
      std::lock_guard<std::mutex> lk(wmu_);
      stop_writer_ = true;
    }
    wcv_.notify_all();
    writer_.join();
  }
}

void WalWriter::writer_loop() {
  std::unique_lock<std::mutex> lk(wmu_);
  for (;;) {
    wcv_.wait(lk, [&] { return pending_size_ > 0 || stop_writer_; });
    if (pending_size_ == 0) return;  // stop requested, nothing left to write
    const std::size_t nbytes = pending_size_;
    std::unique_ptr<char[]> block = std::move(pending_);
    lk.unlock();
    os_.write(block.get(), static_cast<std::streamsize>(nbytes));
    const bool ok = os_.good();
    lk.lock();
    spare_ = std::move(block);
    pending_size_ = 0;
    if (!ok) writer_failed_ = true;
    wcv_.notify_all();
  }
}

void WalWriter::wait_writer_idle() {
  std::unique_lock<std::mutex> lk(wmu_);
  wcv_.wait(lk, [&] { return pending_size_ == 0; });
  GA_CHECK(!writer_failed_, "wal: write failed: " + path_);
}

void WalWriter::append_slow(std::uint64_t seq, const void* payload,
                            std::size_t len) {
  GA_CHECK(len <= 0x7fffffffu, "wal: oversized record");
  const auto len32 = static_cast<std::uint32_t>(len);
  const std::size_t frame = kFrameHeader + kSeqBytes + len;

  drain_buffer();
  if (frame > buf_cap_) {
    // Record larger than the group-commit buffer: frame it through the
    // stream directly (header from a stack scratch, then the payload).
    if (async_) wait_writer_idle();  // writer parked => os_ is ours
    char head[kFrameHeader + kSeqBytes];
    std::memcpy(head + kFrameHeader, &seq, kSeqBytes);
    std::uint32_t crc = core::crc32(&seq, kSeqBytes);
    crc = core::crc32(payload, len, crc);
    std::memcpy(head, &len32, sizeof(len32));
    std::memcpy(head + sizeof(len32), &crc, sizeof(crc));
    os_.write(head, sizeof(head));
    os_.write(static_cast<const char*>(payload),
              static_cast<std::streamsize>(len));
    GA_CHECK(os_.good(), "wal: write failed: " + path_);
    ++stats_.records_appended;
    stats_.bytes_appended += frame;
    ++stats_.flushes;
    return;
  }
  append(seq, payload, len);  // buffer now has room; take the fast path
}

// Group-commit handoff: push the buffer into the stream but skip the
// per-boundary pubsync — forcing a sync syscall every 64 KB is what group
// commit exists to avoid. Explicit flush() below still syncs. In async
// mode the full buffer is swapped to the writer thread instead, so the
// file write overlaps with further appends.
void WalWriter::drain_buffer() {
  if (buf_size_ == 0) return;
  if (!async_) {
    os_.write(buf_.get(), static_cast<std::streamsize>(buf_size_));
    buf_size_ = 0;
    ++stats_.flushes;
    GA_CHECK(os_.good(), "wal: write failed: " + path_);
    return;
  }
  {
    std::unique_lock<std::mutex> lk(wmu_);
    wcv_.wait(lk, [&] { return pending_size_ == 0; });
    GA_CHECK(!writer_failed_, "wal: write failed: " + path_);
    pending_ = std::move(buf_);
    pending_size_ = buf_size_;
    buf_ = std::move(spare_);
    buf_size_ = 0;
    ++stats_.flushes;
  }
  wcv_.notify_all();
}

void WalWriter::flush() {
  drain_buffer();
  if (async_) wait_writer_idle();  // writer parked => os_ is ours
  os_.flush();
  GA_CHECK(os_.good(), "wal: write failed: " + path_);
}

}  // namespace ga::resilience
