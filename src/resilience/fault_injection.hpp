// Deterministic fault-injection harness. A FaultPlan is a seeded list of
// fault specs (throw on the Nth call of a stage, inject latency every Kth
// call); a FaultInjector threads the plan through instrumented points in
// the pipeline (the StageExecutor consults it before every stage attempt).
// File-level WAL faults (torn tail, CRC corruption) are applied between
// runs with the helpers in wal.hpp. Everything is a pure function of the
// plan and the call order, so chaos tests replay bit-identically.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/common.hpp"

namespace ga::resilience {

/// Thrown by FaultInjector::on_call when a kThrow spec matches. A subclass
/// of ga::Error so uninstrumented code treats it as any other stage failure.
class InjectedFault : public Error {
 public:
  explicit InjectedFault(const std::string& what) : Error(what) {}
};

struct FaultSpec {
  enum class Kind : std::uint8_t { kThrow, kLatency };
  Kind kind = Kind::kThrow;
  /// Stage name to match; empty matches every stage.
  std::string stage;
  /// Fire on this 1-based per-stage call index (0 = disabled).
  std::uint64_t nth = 0;
  /// Fire whenever the per-stage call index is a multiple (0 = disabled).
  std::uint64_t every_n = 0;
  /// kLatency: virtual milliseconds added to the stage's deadline clock.
  double latency_ms = 0.0;
  std::string message = "injected fault";
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultSpec> specs;

  /// Deterministically scatter `count` kThrow faults over the first
  /// `calls` calls of `stage` (distinct 1-based indices, seeded).
  static FaultPlan scattered_throws(std::uint64_t seed,
                                    const std::string& stage,
                                    std::uint64_t calls, std::uint64_t count);

  /// One-shot kill: throw on the `nth` call of `stage`. The chaos tests
  /// model a process crash as this throw — in-memory state is abandoned
  /// and recovery starts from disk.
  static FaultPlan kill_at(const std::string& stage, std::uint64_t nth = 1);
};

/// Canonical kill-point stage names instrumented across the durable epoch
/// path: the store's apply/compaction stages plus every EpochLog
/// append/checkpoint/truncate step. The kill-anywhere recovery sweep
/// (tests/test_recovery.cpp) crashes at each of these in turn.
std::span<const char* const> store_kill_points();

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  /// Consulted at stage entry. Returns the injected virtual latency (ms)
  /// for this call; throws InjectedFault when a throw spec matches. Call
  /// indices are per stage name and 1-based.
  double on_call(std::string_view stage);

  std::uint64_t calls(std::string_view stage) const;
  std::uint64_t injected_throws() const { return injected_throws_; }
  std::uint64_t injected_latency_events() const {
    return injected_latency_events_;
  }

  /// Reset call counters (not the plan) so a rerun replays identically.
  void reset();

  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  std::unordered_map<std::string, std::uint64_t> calls_;
  std::uint64_t injected_throws_ = 0;
  std::uint64_t injected_latency_events_ = 0;
};

}  // namespace ga::resilience
