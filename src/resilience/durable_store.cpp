#include "resilience/durable_store.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/hash.hpp"

namespace ga::resilience {

namespace {

constexpr char kSnapshotMagic[8] = {'G', 'A', 'R', 'S', 'N', 'A', 'P', '1'};

// --- bounds-checked byte codec for StoreOp payloads -------------------------

class ByteWriter {
 public:
  void u8(std::uint8_t v) { raw(&v, sizeof(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  std::vector<char> take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* c = static_cast<const char*>(p);
    buf_.insert(buf_.end(), c, c + n);
  }
  std::vector<char> buf_;
};

class ByteReader {
 public:
  ByteReader(const char* data, std::size_t len) : p_(data), end_(data + len) {}
  std::uint8_t u8() { return get<std::uint8_t>(); }
  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::uint64_t u64() { return get<std::uint64_t>(); }
  std::int64_t i64() { return get<std::int64_t>(); }
  double f64() { return get<double>(); }
  std::string str() {
    const std::uint32_t n = u32();
    GA_CHECK(static_cast<std::size_t>(end_ - p_) >= n,
             "store op: truncated string");
    std::string s(p_, p_ + n);
    p_ += n;
    return s;
  }
  bool done() const { return p_ == end_; }

 private:
  template <typename T>
  T get() {
    GA_CHECK(static_cast<std::size_t>(end_ - p_) >= sizeof(T),
             "store op: truncated payload");
    T v;
    std::memcpy(&v, p_, sizeof(T));
    p_ += sizeof(T);
    return v;
  }
  const char* p_;
  const char* end_;
};

}  // namespace

StoreOp StoreOp::add_person(pipeline::Entity e, std::int64_t ts) {
  StoreOp op;
  op.kind = Kind::kAddPerson;
  op.entity = std::move(e);
  op.ts = ts;
  return op;
}

StoreOp StoreOp::add_residency(vid_t person, std::uint32_t address_id,
                               std::int64_t ts) {
  StoreOp op;
  op.kind = Kind::kAddResidency;
  op.person = person;
  op.address_id = address_id;
  op.ts = ts;
  return op;
}

StoreOp StoreOp::set_double(vid_t row, std::string column, double value) {
  StoreOp op;
  op.kind = Kind::kSetDouble;
  op.person = row;
  op.column = std::move(column);
  op.value = value;
  return op;
}

std::vector<char> encode_op(const StoreOp& op) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(op.kind));
  switch (op.kind) {
    case StoreOp::Kind::kAddPerson: {
      const pipeline::Entity& e = op.entity;
      w.u64(e.entity_id);
      w.str(e.first_name);
      w.str(e.last_name);
      w.str(e.ssn);
      w.u32(e.birth_year);
      w.f64(e.credit_score);
      w.u32(static_cast<std::uint32_t>(e.addresses.size()));
      for (const std::uint32_t a : e.addresses) w.u32(a);
      w.u32(static_cast<std::uint32_t>(e.record_ids.size()));
      for (const std::uint64_t r : e.record_ids) w.u64(r);
      w.u64(e.true_person);
      w.i64(op.ts);
      break;
    }
    case StoreOp::Kind::kAddResidency:
      w.u32(op.person);
      w.u32(op.address_id);
      w.i64(op.ts);
      break;
    case StoreOp::Kind::kSetDouble:
      w.u32(op.person);
      w.str(op.column);
      w.f64(op.value);
      break;
  }
  return w.take();
}

StoreOp decode_op(const char* data, std::size_t len) {
  ByteReader r(data, len);
  StoreOp op;
  const std::uint8_t kind = r.u8();
  GA_CHECK(kind <= static_cast<std::uint8_t>(StoreOp::Kind::kSetDouble),
           "store op: unknown kind");
  op.kind = static_cast<StoreOp::Kind>(kind);
  switch (op.kind) {
    case StoreOp::Kind::kAddPerson: {
      pipeline::Entity& e = op.entity;
      e.entity_id = r.u64();
      e.first_name = r.str();
      e.last_name = r.str();
      e.ssn = r.str();
      e.birth_year = r.u32();
      e.credit_score = r.f64();
      const std::uint32_t na = r.u32();
      GA_CHECK(na <= len, "store op: implausible address count");
      e.addresses.resize(na);
      for (auto& a : e.addresses) a = r.u32();
      const std::uint32_t nr = r.u32();
      GA_CHECK(nr <= len, "store op: implausible record count");
      e.record_ids.resize(nr);
      for (auto& rid : e.record_ids) rid = r.u64();
      e.true_person = r.u64();
      op.ts = r.i64();
      break;
    }
    case StoreOp::Kind::kAddResidency:
      op.person = r.u32();
      op.address_id = r.u32();
      op.ts = r.i64();
      break;
    case StoreOp::Kind::kSetDouble:
      op.person = r.u32();
      op.column = r.str();
      op.value = r.f64();
      break;
  }
  GA_CHECK(r.done(), "store op: trailing bytes");
  return op;
}

void apply_op(pipeline::GraphStore& store, const StoreOp& op) {
  switch (op.kind) {
    case StoreOp::Kind::kAddPerson:
      store.add_person(op.entity, op.ts);
      break;
    case StoreOp::Kind::kAddResidency:
      store.add_residency(op.person, op.address_id, op.ts);
      break;
    case StoreOp::Kind::kSetDouble: {
      auto& props = store.properties();
      if (!props.has_column(op.column)) props.add_double_column(op.column);
      auto& col = props.doubles(op.column);
      GA_CHECK(op.person < col.size(), "store op: row out of range");
      col[op.person] = op.value;
      break;
    }
  }
}

std::string DurableGraphStore::snapshot_path(const std::string& dir) {
  return dir + "/snapshot.gas";
}

std::string DurableGraphStore::wal_path(const std::string& dir) {
  return dir + "/wal.log";
}

DurableGraphStore::DurableGraphStore(pipeline::GraphStore store,
                                     DurabilityOptions opts)
    : DurableGraphStore(std::move(store), std::move(opts), /*seq=*/0,
                        /*fresh=*/true) {}

DurableGraphStore::DurableGraphStore(pipeline::GraphStore store,
                                     DurabilityOptions opts, std::uint64_t seq,
                                     bool fresh)
    : store_(std::move(store)), opts_(std::move(opts)), seq_(seq) {
  GA_CHECK(!opts_.dir.empty(), "durable store: empty directory");
  std::filesystem::create_directories(opts_.dir);
  stats_.last_seq = seq_;
  if (fresh) {
    write_snapshot();
    open_wal(/*truncate=*/true);
  } else {
    open_wal(/*truncate=*/false);
  }
}

void DurableGraphStore::write_snapshot() {
  // Stage to a tmp file, then atomically rename over the live snapshot so
  // a crash mid-write never loses the previous checkpoint.
  std::ostringstream body(std::ios::binary);
  store_.save(body);
  const std::string bytes = body.str();
  const std::uint32_t crc = core::crc32(bytes.data(), bytes.size());

  const std::string tmp = snapshot_path(opts_.dir) + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    GA_CHECK(os.good(), "durable store: cannot open " + tmp);
    os.write(kSnapshotMagic, sizeof(kSnapshotMagic));
    const std::uint64_t seq = seq_;
    const std::uint64_t nbytes = bytes.size();
    os.write(reinterpret_cast<const char*>(&seq), sizeof(seq));
    os.write(reinterpret_cast<const char*>(&nbytes), sizeof(nbytes));
    os.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.flush();
    GA_CHECK(os.good(), "durable store: snapshot write failed");
  }
  // flush() only reached the page cache: fsync the staged bytes, rename
  // into place, then fsync the parent directory so the new directory entry
  // survives power loss — otherwise the checkpoint itself can vanish and
  // recovery replays against the previous one.
  fsync_file(tmp);
  std::filesystem::rename(tmp, snapshot_path(opts_.dir));
  fsync_dir(opts_.dir);
}

void DurableGraphStore::open_wal(bool truncate) {
  wal_ = std::make_unique<WalWriter>(wal_path(opts_.dir), truncate,
                                     opts_.group_commit_bytes);
}

void DurableGraphStore::apply(const StoreOp& op) {
  const std::vector<char> payload = encode_op(op);
  wal_->append(++seq_, payload.data(), payload.size());
  if (opts_.flush_each_append) wal_->flush();
  apply_op(store_, op);
  ++stats_.ops_applied;
  stats_.last_seq = seq_;
  stats_.wal_records = wal_->stats().records_appended;
  stats_.wal_bytes = wal_->stats().bytes_appended;
  if (opts_.checkpoint_every > 0 &&
      ++ops_since_checkpoint_ >= opts_.checkpoint_every) {
    checkpoint();
  }
}

void DurableGraphStore::flush() { wal_->flush(); }

void DurableGraphStore::checkpoint() {
  wal_->flush();
  write_snapshot();
  // Truncating the WAL only after the snapshot rename is durable; a crash
  // between the two leaves already-snapshotted records in the log, which
  // recovery skips by sequence number.
  open_wal(/*truncate=*/true);
  ++stats_.checkpoints;
  ops_since_checkpoint_ = 0;
}

DurableGraphStore DurableGraphStore::recover(DurabilityOptions opts,
                                             RecoverReport* report,
                                             CorruptionPolicy policy) {
  RecoverReport local;
  RecoverReport& rep = report != nullptr ? *report : local;
  rep = RecoverReport{};

  const std::string snap_path = snapshot_path(opts.dir);
  std::ifstream is(snap_path, std::ios::binary);
  GA_CHECK(is.good(), "durable store: no snapshot at " + snap_path);
  char magic[8];
  is.read(magic, sizeof(magic));
  GA_CHECK(is.good() && std::memcmp(magic, kSnapshotMagic, sizeof(magic)) == 0,
           "durable store: bad snapshot magic");
  std::uint64_t seq = 0, nbytes = 0;
  std::uint32_t crc = 0;
  is.read(reinterpret_cast<char*>(&seq), sizeof(seq));
  is.read(reinterpret_cast<char*>(&nbytes), sizeof(nbytes));
  is.read(reinterpret_cast<char*>(&crc), sizeof(crc));
  GA_CHECK(is.good(), "durable store: truncated snapshot header");
  GA_CHECK(nbytes <= (1ULL << 34), "durable store: implausible snapshot size");
  std::string bytes(nbytes, '\0');
  is.read(bytes.data(), static_cast<std::streamsize>(nbytes));
  GA_CHECK(is.good() || (is.eof() && is.gcount() ==
                                         static_cast<std::streamsize>(nbytes)),
           "durable store: truncated snapshot body");
  GA_CHECK(core::crc32(bytes.data(), bytes.size()) == crc,
           "durable store: snapshot CRC mismatch");
  std::istringstream body(bytes, std::ios::binary);
  pipeline::GraphStore store = pipeline::GraphStore::load(body);
  rep.snapshot_seq = seq;

  // Replay the WAL suffix, skipping records already in the snapshot.
  const std::string wp = wal_path(opts.dir);
  WalScanResult scan = scan_wal(wp, policy);
  rep.torn_tail = scan.torn_tail;
  rep.torn_bytes = scan.torn_bytes;
  rep.corrupt_records = scan.corrupt_records;
  std::uint64_t max_seq = seq;
  for (const WalRecord& rec : scan.records) {
    if (rec.seq <= seq) {
      ++rep.skipped_pre_snapshot;
      continue;
    }
    apply_op(store, decode_op(rec.payload.data(), rec.payload.size()));
    ++rep.replayed;
    max_seq = rec.seq;
  }
  // Cut the torn/untrusted tail so post-recovery appends extend a clean log.
  if (scan.torn_bytes > 0 && std::filesystem::exists(wp)) {
    std::filesystem::resize_file(wp, scan.bytes_valid);
  }

  DurableGraphStore out(std::move(store), std::move(opts), max_seq,
                        /*fresh=*/false);
  out.stats_.ops_applied = rep.replayed;
  return out;
}

}  // namespace ga::resilience
