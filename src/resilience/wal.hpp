// Write-ahead log for the streaming ingest path. Each record is framed as
//   [u32 payload_len][u32 crc][u64 seq][payload bytes]
// where the CRC-32 (core/hash.hpp) covers the sequence number and payload.
// Appends are group-committed through an in-memory buffer (flushed when it
// crosses a threshold, on flush(), or on destruction) so per-record
// durability cost amortizes — the classic group-commit trade measured by
// bench/firehose_anomaly --faults.
//
// Recovery semantics (scan_wal):
//  * A record whose frame extends past end-of-file is a TORN TAIL — the
//    expected artifact of a crash mid-append. The valid prefix is returned
//    and the torn bytes are reported so the caller can truncate them.
//  * A complete record whose CRC mismatches is CORRUPTION (bit rot or a
//    fault-injection test). Policy kStop ends the scan there and reports
//    it; kThrow raises ga::Error.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/common.hpp"
#include "core/hash.hpp"
#include "core/status.hpp"

namespace ga::resilience {

namespace detail {
inline constexpr std::size_t kWalFrameHeader =
    sizeof(std::uint32_t) * 2;  // len + crc
inline constexpr std::size_t kWalSeqBytes = sizeof(std::uint64_t);
}  // namespace detail

struct WalStats {
  std::uint64_t records_appended = 0;
  std::uint64_t bytes_appended = 0;  // framed bytes, including headers
  std::uint64_t flushes = 0;         // buffer handoffs to the stream
};

class WalWriter {
 public:
  /// `truncate` starts a fresh log; otherwise appends to an existing one
  /// (the recovery path, after the torn tail has been cut off).
  /// `async_drain` overlaps the group-commit file writes with ingest on a
  /// background writer thread (double-buffered) — append() then costs only
  /// the CRC + memcpy on the caller's critical path. The API stays
  /// single-producer either way; flush() still waits for everything to
  /// reach the OS.
  WalWriter(const std::string& path, bool truncate,
            std::size_t group_commit_bytes = 64 * 1024,
            bool async_drain = false);
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Frame and buffer one record; flushes when the group-commit buffer is
  /// full. The record is not durable until the next flush(). Inline so the
  /// CRC loop unrolls for compile-time record sizes — this is the
  /// per-packet cost on the firehose ingest path.
  void append(std::uint64_t seq, const void* payload, std::size_t len) {
    const std::size_t frame = detail::kWalFrameHeader + detail::kWalSeqBytes + len;
    if (len > 0x7fffffffu || frame > buf_cap_ - buf_size_) {
      append_slow(seq, payload, len);
      return;
    }
    // Frame in place, then CRC the contiguous [seq][payload] span in one
    // pass — chaining two crc32 calls gives the same value but pays the
    // call/finalize cost twice.
    char* p = buf_.get() + buf_size_;
    std::memcpy(p + detail::kWalFrameHeader, &seq, detail::kWalSeqBytes);
    if (len > 0) {
      std::memcpy(p + detail::kWalFrameHeader + detail::kWalSeqBytes, payload,
                  len);
    }
    const std::uint32_t crc =
        core::crc32(p + detail::kWalFrameHeader, detail::kWalSeqBytes + len);
    const auto len32 = static_cast<std::uint32_t>(len);
    std::memcpy(p, &len32, sizeof(len32));
    std::memcpy(p + sizeof(len32), &crc, sizeof(crc));
    buf_size_ += frame;
    ++stats_.records_appended;
    stats_.bytes_appended += frame;
    if (buf_size_ >= group_commit_bytes_) drain_buffer();
  }

  /// Push the buffer to the stream and flush it to the OS.
  void flush();

  const WalStats& stats() const { return stats_; }
  const std::string& path() const { return path_; }

 private:
  // Group-commit handoff: stream write without the pubsync syscall
  // (sync mode), or buffer swap to the writer thread (async mode).
  void drain_buffer();
  // Oversized-record / buffer-full path, kept out of the inline fast path.
  void append_slow(std::uint64_t seq, const void* payload, std::size_t len);
  void writer_loop();
  // Async mode: block until the writer thread has retired the pending
  // buffer (after which os_ is safe to touch from the producer).
  void wait_writer_idle();

  std::string path_;
  std::ofstream os_;
  // Raw group-commit buffer instead of std::vector: resize() would
  // zero-initialize every frame before the memcpy overwrites it, which is
  // measurable at firehose append rates.
  std::unique_ptr<char[]> buf_;
  std::size_t buf_size_ = 0;
  std::size_t buf_cap_;
  std::size_t group_commit_bytes_;
  WalStats stats_;

  // Async drain state. buf_ belongs to the producer, pending_ to the
  // writer thread; spare_ is whichever of the two buffers is free. All
  // handoffs go through wmu_.
  bool async_ = false;
  std::unique_ptr<char[]> spare_;
  std::unique_ptr<char[]> pending_;
  std::size_t pending_size_ = 0;
  bool stop_writer_ = false;
  bool writer_failed_ = false;
  std::mutex wmu_;
  std::condition_variable wcv_;
  std::thread writer_;
};

struct WalRecord {
  std::uint64_t seq = 0;
  std::vector<char> payload;
};

struct WalScanResult {
  std::vector<WalRecord> records;    // valid prefix, in append order
  std::uint64_t bytes_valid = 0;     // length of the clean prefix
  bool torn_tail = false;            // incomplete frame at end of file
  std::uint64_t torn_bytes = 0;      // bytes past the clean prefix
  std::uint64_t corrupt_records = 0; // CRC mismatches (kStop: 1, then stop)

  /// Unified-status view of the scan. A torn tail is OK (the expected
  /// crash artifact — the prefix is intact); a CRC mismatch is data loss.
  core::Status status() const {
    if (corrupt_records > 0) {
      return core::Status::DataLoss(
          std::to_string(corrupt_records) + " corrupt WAL record(s)");
    }
    return core::Status::Ok();
  }
};

enum class CorruptionPolicy : std::uint8_t {
  kStop,   // report and stop the scan at the first bad CRC
  kThrow,  // raise ga::Error
};

/// Scan a WAL file into records. A missing file yields an empty result.
WalScanResult scan_wal(const std::string& path,
                       CorruptionPolicy policy = CorruptionPolicy::kStop);

// --- deterministic file-fault helpers (chaos harness) -----------------------

/// Remove the last `bytes` bytes of a file (simulates a crash mid-append).
void tear_tail(const std::string& path, std::uint64_t bytes);

/// XOR one byte at `offset` (simulates bit rot; CRC must catch it).
void corrupt_byte(const std::string& path, std::uint64_t offset,
                  unsigned char xor_mask = 0x40);

std::uint64_t file_size(const std::string& path);

}  // namespace ga::resilience
