// Write-ahead log for the streaming ingest path. Each record is framed as
//   [u32 payload_len][u32 crc][u64 seq][payload bytes]
// where the CRC-32 (core/hash.hpp) covers the sequence number and payload.
// Appends are group-committed through an in-memory buffer (flushed when it
// crosses a threshold, on flush(), or on destruction) so per-record
// durability cost amortizes — the classic group-commit trade measured by
// bench/firehose_anomaly --faults.
//
// Recovery semantics (scan_wal): see record_io.hpp — the WAL and the
// store's epoch log share one framing + torn-tail/corruption contract.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/common.hpp"
#include "core/hash.hpp"
#include "core/status.hpp"
#include "resilience/record_io.hpp"

namespace ga::resilience {

namespace detail {
inline constexpr std::size_t kWalFrameHeader = recio::kFrameHeader;
inline constexpr std::size_t kWalSeqBytes = recio::kSeqBytes;
}  // namespace detail

struct WalStats {
  std::uint64_t records_appended = 0;
  std::uint64_t bytes_appended = 0;  // framed bytes, including headers
  std::uint64_t flushes = 0;         // buffer handoffs to the stream
};

class WalWriter {
 public:
  /// `truncate` starts a fresh log; otherwise appends to an existing one
  /// (the recovery path, after the torn tail has been cut off).
  /// `async_drain` overlaps the group-commit file writes with ingest on a
  /// background writer thread (double-buffered) — append() then costs only
  /// the CRC + memcpy on the caller's critical path. The API stays
  /// single-producer either way; flush() still waits for everything to
  /// reach the OS.
  WalWriter(const std::string& path, bool truncate,
            std::size_t group_commit_bytes = 64 * 1024,
            bool async_drain = false);
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Frame and buffer one record; flushes when the group-commit buffer is
  /// full. The record is not durable until the next flush(). Inline so the
  /// CRC loop unrolls for compile-time record sizes — this is the
  /// per-packet cost on the firehose ingest path.
  void append(std::uint64_t seq, const void* payload, std::size_t len) {
    const std::size_t frame = recio::frame_size(len);
    if (len > recio::kMaxPayload || frame > buf_cap_ - buf_size_) {
      append_slow(seq, payload, len);
      return;
    }
    buf_size_ += recio::frame_record(buf_.get() + buf_size_, seq, payload, len);
    ++stats_.records_appended;
    stats_.bytes_appended += frame;
    if (buf_size_ >= group_commit_bytes_) drain_buffer();
  }

  /// Push the buffer to the stream and flush it to the OS.
  void flush();

  const WalStats& stats() const { return stats_; }
  const std::string& path() const { return path_; }

 private:
  // Group-commit handoff: stream write without the pubsync syscall
  // (sync mode), or buffer swap to the writer thread (async mode).
  void drain_buffer();
  // Oversized-record / buffer-full path, kept out of the inline fast path.
  void append_slow(std::uint64_t seq, const void* payload, std::size_t len);
  void writer_loop();
  // Async mode: block until the writer thread has retired the pending
  // buffer (after which os_ is safe to touch from the producer).
  void wait_writer_idle();

  std::string path_;
  std::ofstream os_;
  // Raw group-commit buffer instead of std::vector: resize() would
  // zero-initialize every frame before the memcpy overwrites it, which is
  // measurable at firehose append rates.
  std::unique_ptr<char[]> buf_;
  std::size_t buf_size_ = 0;
  std::size_t buf_cap_;
  std::size_t group_commit_bytes_;
  WalStats stats_;

  // Async drain state. buf_ belongs to the producer, pending_ to the
  // writer thread; spare_ is whichever of the two buffers is free. All
  // handoffs go through wmu_.
  bool async_ = false;
  std::unique_ptr<char[]> spare_;
  std::unique_ptr<char[]> pending_;
  std::size_t pending_size_ = 0;
  bool stop_writer_ = false;
  bool writer_failed_ = false;
  std::mutex wmu_;
  std::condition_variable wcv_;
  std::thread writer_;
};

// Framed records, scan results, the corruption policy, and the file-fault
// helpers (tear_tail / corrupt_byte / file_size) live in record_io.hpp and
// are shared with the epoch log; the Wal* names are the ingest-path aliases.
using WalRecord = FramedRecord;
using WalScanResult = RecordScanResult;

/// Scan a WAL file into records. A missing file yields an empty result.
inline WalScanResult scan_wal(const std::string& path,
                              CorruptionPolicy policy = CorruptionPolicy::kStop) {
  return scan_records(path, policy);
}

}  // namespace ga::resilience
