// Bounded ingest queue with backpressure — the buffer between update-stream
// producers and the streaming apply loop (Fig. 2's left-hand path). Three
// overflow policies:
//  * kBlock:  producers wait for space (lossless backpressure),
//  * kShed:   offers beyond capacity are dropped and counted (load shedding),
//  * kSample: above the high watermark only a deterministic, seeded fraction
//             of offers is kept (graceful degradation under overload; the
//             kept subset is reproducible for a fixed seed + offer order).
// Watermark crossings (rising past high, falling to low) invoke an optional
// callback outside the lock so consumers can throttle sources or emit
// telemetry without deadlocking.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>

#include "core/common.hpp"
#include "core/hash.hpp"

namespace ga::resilience {

enum class OverflowPolicy : std::uint8_t { kBlock, kShed, kSample };

struct QueueOptions {
  std::size_t capacity = 1024;
  OverflowPolicy policy = OverflowPolicy::kBlock;
  /// kSample: probability of keeping an offer while above the high
  /// watermark. Deterministic per (seed, offer index).
  double sample_keep = 0.5;
  std::uint64_t seed = 1;
  /// 0 = default to 3/4 (high) and 1/4 (low) of capacity.
  std::size_t high_watermark = 0;
  std::size_t low_watermark = 0;
};

struct QueueStats {
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t popped = 0;
  std::uint64_t shed = 0;          // kShed drops (queue full)
  std::uint64_t sampled_out = 0;   // kSample drops (above high watermark)
  std::uint64_t blocked_pushes = 0;  // kBlock pushes that had to wait
  std::uint64_t high_events = 0;   // rising crossings of the high watermark
  std::uint64_t low_events = 0;    // falling returns to the low watermark
  std::size_t max_depth = 0;
};

/// `fn(true)` on rising high-watermark crossing, `fn(false)` on the fall
/// back to the low watermark.
using WatermarkCallback = std::function<void(bool high)>;

template <typename T>
class IngestQueue {
 public:
  explicit IngestQueue(QueueOptions opts = {}) : opts_(opts) {
    GA_CHECK(opts_.capacity > 0, "ingest queue: zero capacity");
    if (opts_.high_watermark == 0 || opts_.high_watermark > opts_.capacity) {
      opts_.high_watermark = std::max<std::size_t>(1, opts_.capacity * 3 / 4);
    }
    if (opts_.low_watermark == 0 || opts_.low_watermark >= opts_.high_watermark) {
      opts_.low_watermark = opts_.capacity / 4;
    }
  }

  void set_watermark_callback(WatermarkCallback fn) {
    std::lock_guard<std::mutex> lk(mu_);
    watermark_cb_ = std::move(fn);
  }

  /// Offer one item. Returns false if the item was shed or sampled out.
  /// kBlock never returns false (it waits); pushing to a closed queue is a
  /// caller bug.
  bool push(T item) {
    bool fire_high = false;
    {
      std::unique_lock<std::mutex> lk(mu_);
      GA_CHECK(!closed_, "ingest queue: push after close");
      const std::uint64_t offer = ++stats_.offered;
      switch (opts_.policy) {
        case OverflowPolicy::kBlock:
          if (q_.size() >= opts_.capacity) {
            ++stats_.blocked_pushes;
            not_full_.wait(lk, [&] { return q_.size() < opts_.capacity; });
          }
          break;
        case OverflowPolicy::kShed:
          if (q_.size() >= opts_.capacity) {
            ++stats_.shed;
            return false;
          }
          break;
        case OverflowPolicy::kSample:
          if (q_.size() >= opts_.high_watermark) {
            // Deterministic coin: same seed + offer order => same kept set.
            const double coin =
                static_cast<double>(core::mix64(opts_.seed ^ offer) >> 11) *
                0x1.0p-53;
            if (q_.size() >= opts_.capacity || coin >= opts_.sample_keep) {
              ++stats_.sampled_out;
              return false;
            }
          }
          break;
      }
      q_.push_back(std::move(item));
      ++stats_.accepted;
      stats_.max_depth = std::max(stats_.max_depth, q_.size());
      if (!above_high_ && q_.size() >= opts_.high_watermark) {
        above_high_ = true;
        ++stats_.high_events;
        fire_high = true;
      }
    }
    not_empty_.notify_one();
    if (fire_high) fire_watermark(true);
    return true;
  }

  /// Pop the next item; blocks until one is available or the queue is
  /// closed and drained (then returns nullopt).
  std::optional<T> pop() {
    bool fire_low = false;
    std::optional<T> out;
    {
      std::unique_lock<std::mutex> lk(mu_);
      not_empty_.wait(lk, [&] { return !q_.empty() || closed_; });
      if (q_.empty()) return std::nullopt;
      out.emplace(std::move(q_.front()));
      q_.pop_front();
      ++stats_.popped;
      if (above_high_ && q_.size() <= opts_.low_watermark) {
        above_high_ = false;
        ++stats_.low_events;
        fire_low = true;
      }
    }
    not_full_.notify_one();
    if (fire_low) fire_watermark(false);
    return out;
  }

  /// Producers are done: pop() drains the remainder then returns nullopt.
  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lk(mu_);
    return q_.size();
  }

  QueueStats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
  }

  const QueueOptions& options() const { return opts_; }

 private:
  void fire_watermark(bool high) {
    WatermarkCallback cb;
    {
      std::lock_guard<std::mutex> lk(mu_);
      cb = watermark_cb_;
    }
    if (cb) cb(high);
  }

  QueueOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_, not_full_;
  std::deque<T> q_;
  QueueStats stats_;
  WatermarkCallback watermark_cb_;
  bool above_high_ = false;
  bool closed_ = false;
};

}  // namespace ga::resilience
