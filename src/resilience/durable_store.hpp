// WAL + snapshot checkpointing for the persistent GraphStore (Fig. 2's
// center). Every applied StoreOp is framed into the WAL before it mutates
// the store; periodic snapshots compact the log. Recovery loads the newest
// snapshot and replays the WAL suffix — sequence numbers embedded in both
// make replay idempotent across the checkpoint crash window (snapshot
// renamed but WAL not yet truncated → records with seq <= snapshot seq are
// skipped, never double-applied).
//
// Directory layout (all under DurabilityOptions::dir):
//   snapshot.gas      [magic][u64 last_seq][u64 nbytes][u32 crc][store bytes]
//   snapshot.gas.tmp  staging file; atomically renamed over snapshot.gas
//   wal.log           framed StoreOps (see wal.hpp)
//
// Recovery invariant (tested by the crash sweep in test_resilience.cpp):
// for any prefix of the op stream that reached flush(), recover() yields a
// store whose content_digest() equals a store that applied the same prefix
// uninterrupted; continuing the remaining ops yields the digest of the
// uninterrupted full run.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pipeline/graph_store.hpp"
#include "resilience/wal.hpp"

namespace ga::resilience {

/// Logical store mutation — the WAL record payload. Mirrors the streaming
/// path's post-dedup effects on GraphStore (so replay is deterministic and
/// independent of dedup state).
struct StoreOp {
  enum class Kind : std::uint8_t {
    kAddPerson = 0,    // entity, ts
    kAddResidency = 1, // person, address_id, ts
    kSetDouble = 2,    // column, person (row), value
  };
  Kind kind = Kind::kAddResidency;
  pipeline::Entity entity;
  vid_t person = 0;
  std::uint32_t address_id = 0;
  std::int64_t ts = 0;
  std::string column;
  double value = 0.0;

  static StoreOp add_person(pipeline::Entity e, std::int64_t ts);
  static StoreOp add_residency(vid_t person, std::uint32_t address_id,
                               std::int64_t ts);
  static StoreOp set_double(vid_t row, std::string column, double value);
};

/// Byte (de)serialization of one op. decode throws ga::Error on malformed
/// payloads (defense against WAL corruption that passes CRC — e.g. a
/// truncated record accepted by a buggy writer).
std::vector<char> encode_op(const StoreOp& op);
StoreOp decode_op(const char* data, std::size_t len);

/// Apply one op to a store (creates missing double columns for kSetDouble).
void apply_op(pipeline::GraphStore& store, const StoreOp& op);

struct DurabilityOptions {
  std::string dir;
  /// Automatic checkpoint after this many ops (0 = manual checkpoints only).
  std::uint64_t checkpoint_every = 0;
  /// Flush the group-commit buffer after every append (maximum durability,
  /// maximum cost; benches measure the difference).
  bool flush_each_append = false;
  std::size_t group_commit_bytes = 64 * 1024;
};

struct DurabilityStats {
  std::uint64_t ops_applied = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t last_seq = 0;
  std::uint64_t wal_records = 0;
  std::uint64_t wal_bytes = 0;
};

struct RecoverReport {
  std::uint64_t snapshot_seq = 0;
  std::uint64_t replayed = 0;             // WAL records applied
  std::uint64_t skipped_pre_snapshot = 0; // seq <= snapshot seq (idempotence)
  std::uint64_t corrupt_records = 0;
  bool torn_tail = false;
  std::uint64_t torn_bytes = 0;           // bytes truncated off the WAL

  /// Unified-status view of recovery: CRC corruption is data loss; a torn
  /// tail alone is the normal crash artifact and recovers clean.
  core::Status status() const {
    if (corrupt_records > 0) {
      return core::Status::DataLoss(
          std::to_string(corrupt_records) +
          " corrupt WAL record(s) dropped during recovery");
    }
    return core::Status::Ok();
  }
};

class DurableGraphStore {
 public:
  /// Start a fresh durable store in `opts.dir` (created if missing): writes
  /// the initial snapshot and an empty WAL.
  DurableGraphStore(pipeline::GraphStore store, DurabilityOptions opts);

  DurableGraphStore(DurableGraphStore&&) = default;

  /// Rebuild from `opts.dir`: newest snapshot + WAL suffix replay. Torn
  /// tails are truncated; corrupt records end the replay (kStop) or throw
  /// (kThrow). The returned store is ready for further apply() calls.
  static DurableGraphStore recover(
      DurabilityOptions opts, RecoverReport* report = nullptr,
      CorruptionPolicy policy = CorruptionPolicy::kStop);

  /// Log-then-apply one op; may auto-checkpoint (see options).
  void apply(const StoreOp& op);

  /// Make everything appended so far durable (group-commit flush).
  void flush();

  /// Snapshot the store and truncate the WAL.
  void checkpoint();

  pipeline::GraphStore& store() { return store_; }
  const pipeline::GraphStore& store() const { return store_; }
  std::uint64_t content_digest() const { return store_.content_digest(); }
  const DurabilityStats& stats() const { return stats_; }
  const DurabilityOptions& options() const { return opts_; }

  static std::string snapshot_path(const std::string& dir);
  static std::string wal_path(const std::string& dir);

 private:
  DurableGraphStore(pipeline::GraphStore store, DurabilityOptions opts,
                    std::uint64_t seq, bool fresh);
  void write_snapshot();
  void open_wal(bool truncate);

  pipeline::GraphStore store_;
  DurabilityOptions opts_;
  DurabilityStats stats_;
  std::unique_ptr<WalWriter> wal_;
  std::uint64_t seq_ = 0;             // last applied (and logged) sequence
  std::uint64_t ops_since_checkpoint_ = 0;
};

}  // namespace ga::resilience
