#include "resilience/fault_injection.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/prng.hpp"

namespace ga::resilience {

FaultPlan FaultPlan::scattered_throws(std::uint64_t seed,
                                      const std::string& stage,
                                      std::uint64_t calls,
                                      std::uint64_t count) {
  GA_CHECK(count <= calls, "scattered_throws: more faults than calls");
  core::Xoshiro256 rng(seed);
  std::unordered_set<std::uint64_t> picked;
  while (picked.size() < count) picked.insert(1 + rng.next_below(calls));
  std::vector<std::uint64_t> sorted(picked.begin(), picked.end());
  std::sort(sorted.begin(), sorted.end());
  FaultPlan plan;
  plan.seed = seed;
  for (const std::uint64_t n : sorted) {
    FaultSpec s;
    s.kind = FaultSpec::Kind::kThrow;
    s.stage = stage;
    s.nth = n;
    s.message = "injected fault (seed " + std::to_string(seed) + ", call " +
                std::to_string(n) + ")";
    plan.specs.push_back(std::move(s));
  }
  return plan;
}

FaultPlan FaultPlan::kill_at(const std::string& stage, std::uint64_t nth) {
  FaultPlan plan;
  FaultSpec s;
  s.kind = FaultSpec::Kind::kThrow;
  s.stage = stage;
  s.nth = nth;
  s.message = "kill at " + stage + " #" + std::to_string(nth);
  plan.specs.push_back(std::move(s));
  return plan;
}

std::span<const char* const> store_kill_points() {
  static constexpr const char* kPoints[] = {
      // VersionedGraphStore::apply
      "apply_seal", "apply_publish",
      // VersionedGraphStore compaction (fold_once)
      "compact_begin", "compact_fold", "compact_swap",
      // EpochLog::append
      "log_append_begin", "log_append_write", "log_append_sync",
      // EpochLog::checkpoint
      "ckpt_begin", "ckpt_write", "ckpt_sync", "ckpt_rename", "ckpt_dirsync",
      // EpochLog log truncation past a durable checkpoint
      "truncate_begin", "truncate_swap", "truncate_done",
  };
  return {kPoints, sizeof(kPoints) / sizeof(kPoints[0])};
}

double FaultInjector::on_call(std::string_view stage) {
  const std::uint64_t index = ++calls_[std::string(stage)];
  double latency = 0.0;
  for (const FaultSpec& s : plan_.specs) {
    if (!s.stage.empty() && s.stage != stage) continue;
    const bool hit = (s.nth != 0 && index == s.nth) ||
                     (s.every_n != 0 && index % s.every_n == 0);
    if (!hit) continue;
    if (s.kind == FaultSpec::Kind::kThrow) {
      ++injected_throws_;
      throw InjectedFault(s.message + " [stage " + std::string(stage) +
                          " call " + std::to_string(index) + "]");
    }
    ++injected_latency_events_;
    latency += s.latency_ms;
  }
  return latency;
}

std::uint64_t FaultInjector::calls(std::string_view stage) const {
  const auto it = calls_.find(std::string(stage));
  return it == calls_.end() ? 0 : it->second;
}

void FaultInjector::reset() {
  calls_.clear();
  injected_throws_ = 0;
  injected_latency_events_ = 0;
}

}  // namespace ga::resilience
