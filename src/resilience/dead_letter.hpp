// Dead-letter quarantine: records that fail validation or dedup are parked
// here with a reason instead of today's silent acceptance or crash. Bounded
// (oldest entries drop when full, counted), drainable for reprocessing, and
// it keeps a per-reason histogram so the fig2 bench can print *why* records
// were rejected. Single-consumer by design — the streaming apply loop owns
// it (the bounded IngestQueue is the cross-thread boundary).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace ga::resilience {

template <typename T>
class DeadLetterQueue {
 public:
  struct Entry {
    T item;
    std::string reason;
    std::int64_t ts = 0;
  };

  explicit DeadLetterQueue(std::size_t capacity = 4096)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void quarantine(T item, std::string reason, std::int64_t ts) {
    ++total_;
    ++by_reason_[reason];
    entries_.push_back(Entry{std::move(item), std::move(reason), ts});
    if (entries_.size() > capacity_) {
      entries_.pop_front();
      ++dropped_oldest_;
    }
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::deque<Entry>& entries() const { return entries_; }

  /// Remove and return everything (reprocessing after a fix).
  std::vector<Entry> drain() {
    std::vector<Entry> out(std::make_move_iterator(entries_.begin()),
                           std::make_move_iterator(entries_.end()));
    entries_.clear();
    return out;
  }

  /// Total ever quarantined (including entries since dropped or drained).
  std::uint64_t total_quarantined() const { return total_; }
  std::uint64_t dropped_oldest() const { return dropped_oldest_; }
  const std::map<std::string, std::uint64_t>& by_reason() const {
    return by_reason_;
  }

 private:
  std::size_t capacity_;
  std::deque<Entry> entries_;
  std::map<std::string, std::uint64_t> by_reason_;
  std::uint64_t total_ = 0;
  std::uint64_t dropped_oldest_ = 0;
};

}  // namespace ga::resilience
