// Per-stage deadline + retry-with-exponential-backoff wrappers for the
// triggered extraction→analytic path. A StageExecutor runs a named stage
// through a retry policy, consults a FaultInjector at each attempt, and on
// persistent failure or a missed deadline degrades to a caller-supplied
// fallback (typically the incremental approximation of the full analytic).
// Injected latency is VIRTUAL: it advances the deadline clock without
// sleeping, so deadline-degradation behavior is deterministic under a
// fixed fault plan regardless of host timing.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/status.hpp"
#include "core/timer.hpp"
#include "resilience/fault_injection.hpp"

namespace ga::resilience {

struct RetryPolicy {
  unsigned max_attempts = 3;
  double base_delay_ms = 1.0;      // backoff before attempt 2
  double backoff_multiplier = 2.0;
  double max_delay_ms = 100.0;
};

struct StageOptions {
  RetryPolicy retry;
  /// Wall-clock + injected-latency budget per attempt; 0 = no deadline.
  double deadline_ms = 0.0;
};

/// Cumulative per-stage health counters — the failure/degradation
/// counterpart of engine::StepStats, surfaced by CanonicalFlow telemetry.
struct StageHealth {
  std::string stage;
  std::uint64_t calls = 0;            // run() invocations
  std::uint64_t attempts = 0;         // primary executions (incl. retries)
  std::uint64_t failures = 0;         // attempts that threw
  std::uint64_t retries = 0;          // failures that were retried
  std::uint64_t deadline_misses = 0;  // attempts over budget
  std::uint64_t degraded = 0;         // calls resolved by the fallback
  std::uint64_t exhausted = 0;        // calls that failed with no fallback
  double total_ms = 0.0;              // wall time across attempts
};

template <typename R>
struct StageResult {
  bool ok = false;
  bool degraded = false;        // value came from the fallback
  bool deadline_missed = false;
  unsigned attempts = 0;
  R value{};
  std::string error;            // last failure, when !ok or degraded

  /// Outcome in the unified core::Status taxonomy. Degraded-but-resolved
  /// is still OK (the caller got a value); traces/metrics record the
  /// degradation separately.
  core::Status status() const {
    if (ok) return core::Status::Ok();
    if (deadline_missed) return core::Status::DeadlineExceeded(error);
    return core::Status::ResourceExhausted(error);
  }
};

class StageExecutor {
 public:
  explicit StageExecutor(FaultInjector* faults = nullptr) : faults_(faults) {}

  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }
  FaultInjector* fault_injector() const { return faults_; }

  /// Override the backoff sleeper (tests pass a no-op or a virtual clock).
  void set_sleep_fn(std::function<void(double ms)> fn) {
    sleep_fn_ = std::move(fn);
  }

  /// Run `primary` under retry + deadline; on exhaustion or deadline miss
  /// fall back to `fallback` (degraded result). `fallback` may be a
  /// nullptr-like std::function to signal "no fallback".
  template <typename R>
  StageResult<R> run(const std::string& stage, const std::function<R()>& primary,
                     const std::function<R()>& fallback,
                     const StageOptions& opts = {}) {
    StageHealth& h = health_for(stage);
    ++h.calls;
    StageResult<R> out;
    core::WallTimer stage_timer;
    for (unsigned attempt = 1; attempt <= opts.retry.max_attempts; ++attempt) {
      out.attempts = attempt;
      ++h.attempts;
      double injected_ms = 0.0;
      try {
        if (faults_ != nullptr) injected_ms = faults_->on_call(stage);
        core::WallTimer t;
        R value = primary();
        const double elapsed_ms = t.millis() + injected_ms;
        if (opts.deadline_ms > 0.0 && elapsed_ms > opts.deadline_ms) {
          ++h.deadline_misses;
          out.deadline_missed = true;
          out.error = "deadline missed: " + std::to_string(elapsed_ms) +
                      "ms > " + std::to_string(opts.deadline_ms) + "ms";
          break;  // straight to degradation — retrying won't get faster
        }
        out.ok = true;
        out.value = std::move(value);
        h.total_ms += stage_timer.millis();
        return out;
      } catch (const std::exception& e) {
        ++h.failures;
        out.error = e.what();
        if (attempt < opts.retry.max_attempts) {
          ++h.retries;
          sleep_ms(backoff_ms(opts.retry, attempt));
        }
      }
    }
    // Primary exhausted (or over deadline): degrade if we can.
    if (fallback) {
      try {
        out.value = fallback();
        out.ok = true;
        out.degraded = true;
        ++h.degraded;
        h.total_ms += stage_timer.millis();
        return out;
      } catch (const std::exception& e) {
        out.error = std::string("fallback failed: ") + e.what();
      }
    }
    ++h.exhausted;
    h.total_ms += stage_timer.millis();
    return out;
  }

  /// No-fallback convenience.
  template <typename R>
  StageResult<R> run(const std::string& stage, const std::function<R()>& primary,
                     const StageOptions& opts = {}) {
    return run<R>(stage, primary, std::function<R()>(), opts);
  }

  /// Per-stage health in first-use order.
  const std::vector<StageHealth>& health() const { return health_; }
  const StageHealth* health_for_stage(const std::string& stage) const;
  void reset_health() { health_.clear(); }

  static double backoff_ms(const RetryPolicy& p, unsigned failed_attempts);

 private:
  StageHealth& health_for(const std::string& stage);
  void sleep_ms(double ms);

  FaultInjector* faults_ = nullptr;
  std::function<void(double)> sleep_fn_;
  std::vector<StageHealth> health_;
};

/// One StageTiming-style line per stage: "calls=.. retries=.. ...".
std::string format_stage_health(const StageHealth& h);

}  // namespace ga::resilience
