// Shared CRC-framed record I/O: the one framing discipline every durable
// log in the system speaks. A record on disk is
//   [u32 payload_len][u32 crc][u64 seq][payload bytes]
// where the CRC-32 (core/hash.hpp) covers the sequence number and the
// payload. Both the ingest WAL (wal.hpp) and the store's epoch log
// (store/epoch_log.hpp) frame with these helpers, so their recovery scans
// share one torn-tail / corruption contract:
//
//  * A frame that extends past end-of-file is a TORN TAIL — the expected
//    artifact of a crash mid-append. The valid prefix is returned and the
//    torn byte count reported so the caller can truncate it.
//  * A complete frame whose CRC mismatches is CORRUPTION (bit rot or a
//    fault-injection test). Policy kStop ends the scan there and reports
//    it; kThrow raises ga::Error.
//
// Also home to the POSIX durability helpers (fsync_file / fsync_dir) and
// the deterministic file-fault helpers the chaos harnesses use.
#pragma once

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/common.hpp"
#include "core/hash.hpp"
#include "core/status.hpp"

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace ga::resilience {

namespace recio {
inline constexpr std::size_t kFrameHeader =
    sizeof(std::uint32_t) * 2;  // len + crc
inline constexpr std::size_t kSeqBytes = sizeof(std::uint64_t);
inline constexpr std::size_t kMaxPayload = 0x7fffffffu;

/// Total on-disk bytes of one framed record.
inline constexpr std::size_t frame_size(std::size_t payload_len) {
  return kFrameHeader + kSeqBytes + payload_len;
}

/// Frame one record into `dst` (which must hold frame_size(len) bytes):
/// memcpy the [seq][payload] span, CRC it in one pass, then prepend the
/// header. Returns the framed byte count. Inline so the CRC loop unrolls
/// for compile-time record sizes — this is the per-record cost on both the
/// firehose ingest path and the epoch-log append path.
inline std::size_t frame_record(char* dst, std::uint64_t seq,
                                const void* payload, std::size_t len) {
  GA_ASSERT(len <= kMaxPayload);
  std::memcpy(dst + kFrameHeader, &seq, kSeqBytes);
  if (len > 0) std::memcpy(dst + kFrameHeader + kSeqBytes, payload, len);
  const std::uint32_t crc = core::crc32(dst + kFrameHeader, kSeqBytes + len);
  const auto len32 = static_cast<std::uint32_t>(len);
  std::memcpy(dst, &len32, sizeof(len32));
  std::memcpy(dst + sizeof(len32), &crc, sizeof(crc));
  return frame_size(len);
}

/// CRC over [seq][payload] exactly as frame_record stores it. For callers
/// that assemble the payload in place (the dist message channel builds
/// frames directly in its send buffer) or verify a frame read off a socket
/// rather than a file.
inline std::uint32_t frame_crc(std::uint64_t seq, const void* payload,
                               std::size_t len) {
  std::uint32_t crc = core::crc32(&seq, kSeqBytes);
  return core::crc32(payload, len, crc);
}

/// Parsed [u32 len][u32 crc] prefix of one frame. `hdr` must point at
/// kFrameHeader readable bytes.
struct FrameHeader {
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
};
inline FrameHeader parse_frame_header(const char* hdr) {
  FrameHeader h;
  std::memcpy(&h.len, hdr, sizeof(h.len));
  std::memcpy(&h.crc, hdr + sizeof(h.len), sizeof(h.crc));
  return h;
}
}  // namespace recio

/// One recovered record: sequence number plus raw payload bytes.
struct FramedRecord {
  std::uint64_t seq = 0;
  std::vector<char> payload;
};

enum class CorruptionPolicy : std::uint8_t {
  kStop,   // report and stop the scan at the first bad CRC
  kThrow,  // raise ga::Error
};

struct RecordScanResult {
  std::vector<FramedRecord> records;  // valid prefix, in append order
  std::uint64_t bytes_valid = 0;      // absolute end offset of the clean prefix
  bool torn_tail = false;             // incomplete frame at end of file
  std::uint64_t torn_bytes = 0;       // bytes past the clean prefix
  std::uint64_t corrupt_records = 0;  // CRC mismatches (kStop: 1, then stop)

  /// Unified-status view of the scan. A torn tail is OK (the expected
  /// crash artifact — the prefix is intact); a CRC mismatch is data loss.
  core::Status status() const {
    if (corrupt_records > 0) {
      return core::Status::DataLoss(std::to_string(corrupt_records) +
                                    " corrupt WAL record(s)");
    }
    return core::Status::Ok();
  }
};

/// Scan framed records starting at byte `offset` (a frame boundary — 0 or
/// the bytes_valid of a previous scan). A missing file yields an empty
/// result; bytes_valid comes back absolute, so tailers can feed it straight
/// back in as the next offset.
inline RecordScanResult scan_records_from(
    const std::string& path, std::uint64_t offset,
    CorruptionPolicy policy = CorruptionPolicy::kStop) {
  RecordScanResult out;
  out.bytes_valid = offset;
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) {
    out.bytes_valid = 0;
    return out;  // no log yet: empty history
  }
  is.seekg(0, std::ios::end);
  const auto end = static_cast<std::uint64_t>(is.tellg());
  GA_CHECK(offset <= end, "scan_records: offset past end of " + path);
  is.seekg(static_cast<std::streamoff>(offset));

  std::uint64_t at = offset;
  while (at < end) {
    if (end - at < recio::kFrameHeader + recio::kSeqBytes) {
      out.torn_tail = true;
      break;
    }
    std::uint32_t len = 0, crc = 0;
    std::uint64_t seq = 0;
    is.read(reinterpret_cast<char*>(&len), sizeof(len));
    is.read(reinterpret_cast<char*>(&crc), sizeof(crc));
    is.read(reinterpret_cast<char*>(&seq), sizeof(seq));
    if (!is.good() || end - at - recio::kFrameHeader - recio::kSeqBytes < len) {
      out.torn_tail = true;
      break;
    }
    std::vector<char> payload(len);
    if (len > 0) {
      is.read(payload.data(), static_cast<std::streamsize>(len));
      if (!is.good()) {
        out.torn_tail = true;
        break;
      }
    }
    std::uint32_t actual = core::crc32(&seq, recio::kSeqBytes);
    actual = core::crc32(payload.data(), payload.size(), actual);
    if (actual != crc) {
      ++out.corrupt_records;
      if (policy == CorruptionPolicy::kThrow) {
        throw Error("record_io: CRC mismatch at offset " + std::to_string(at) +
                    " in " + path);
      }
      break;  // kStop: everything from here on is untrusted
    }
    at += recio::frame_size(len);
    out.records.push_back(FramedRecord{seq, std::move(payload)});
  }
  out.bytes_valid = at;
  out.torn_bytes = end - at;
  return out;
}

/// Scan a whole log file into records.
inline RecordScanResult scan_records(
    const std::string& path, CorruptionPolicy policy = CorruptionPolicy::kStop) {
  return scan_records_from(path, 0, policy);
}

// --- POSIX durability helpers ----------------------------------------------
// An ofstream flush only reaches the OS page cache; surviving power loss
// needs fsync on the file AND — after a rename-into-place — on the parent
// directory, or the new directory entry itself can vanish.

/// fsync an existing file by path. Throws ga::Error on failure.
inline void fsync_file(const std::string& path) {
#ifndef _WIN32
  const int fd = ::open(path.c_str(), O_RDONLY);
  GA_CHECK(fd >= 0, "fsync_file: cannot open " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  GA_CHECK(rc == 0, "fsync_file: fsync failed for " + path);
#else
  (void)path;  // no-op stub off POSIX; tests only run on Linux
#endif
}

/// fsync a directory so renames/creates inside it are durable.
inline void fsync_dir(const std::string& dir) {
#ifndef _WIN32
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  GA_CHECK(fd >= 0, "fsync_dir: cannot open " + dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  GA_CHECK(rc == 0, "fsync_dir: fsync failed for " + dir);
#else
  (void)dir;
#endif
}

// --- deterministic file-fault helpers (chaos harness) -----------------------

/// Remove the last `bytes` bytes of a file (simulates a crash mid-append).
inline void tear_tail(const std::string& path, std::uint64_t bytes) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  GA_CHECK(!ec, "tear_tail: cannot stat " + path);
  GA_CHECK(bytes <= size, "tear_tail: larger than file");
  std::filesystem::resize_file(path, size - bytes);
}

/// XOR one byte at `offset` (simulates bit rot; CRC must catch it).
inline void corrupt_byte(const std::string& path, std::uint64_t offset,
                         unsigned char xor_mask = 0x40) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  GA_CHECK(f.good(), "corrupt_byte: cannot open " + path);
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  GA_CHECK(f.good(), "corrupt_byte: offset past end of " + path);
  c = static_cast<char>(static_cast<unsigned char>(c) ^ xor_mask);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
  GA_CHECK(f.good(), "corrupt_byte: write failed: " + path);
}

inline std::uint64_t file_size(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  GA_CHECK(!ec, "file_size: cannot stat " + path);
  return size;
}

}  // namespace ga::resilience
