// Multi-source frontier entry points: fuse up to 64 concurrent BFS roots
// into ONE level-synchronous pass using bit-parallel frontiers (one
// std::uint64_t seed-mask per vertex, MS-BFS style). The serving layer's
// scheduler batches same-kernel queries through this path so k concurrent
// BFS requests cost one graph sweep instead of k — the same arcs are
// inspected once and every seed's wavefront rides the same cache lines.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/telemetry.hpp"
#include "graph/csr_graph.hpp"

namespace ga::engine {

/// Hard cap on fused roots: one bit per seed in the per-vertex mask word.
inline constexpr std::size_t kMaxMultiSourceSeeds = 64;

struct MultiSourceBfsResult {
  /// Hop counts, seed-major lookup: dist_of(v, s) == dist[v * num_seeds + s]
  /// (kInfDist when seed s does not reach v).
  std::vector<std::uint32_t> dist;
  std::size_t num_seeds = 0;
  /// Vertices reached per seed (including the seed itself).
  std::vector<std::uint64_t> reached;
  /// One StepStats per level (edges counted once per level, not per seed).
  std::vector<StepStats> steps;

  std::uint32_t dist_of(vid_t v, std::size_t seed_idx) const {
    return dist[static_cast<std::size_t>(v) * num_seeds + seed_idx];
  }
};

/// Level-synchronous bit-parallel BFS from every seed at once (1..64 seeds;
/// duplicate seeds are allowed and produce identical rows). Deterministic
/// and single-threaded: the serving layer runs many batches concurrently on
/// immutable snapshots, so intra-batch parallelism would only fight the
/// scheduler's worker threads for the one memory system.
MultiSourceBfsResult multi_source_bfs(const graph::CSRGraph& g,
                                      const std::vector<vid_t>& seeds,
                                      Telemetry* telem = nullptr);

}  // namespace ga::engine
