#include "engine/telemetry.hpp"

#include <cstdio>

namespace ga::engine {

const char* direction_name(Direction d) {
  return d == Direction::kPush ? "push" : "pull";
}

std::uint64_t Telemetry::total_edges() const {
  std::uint64_t s = 0;
  for (const StepStats& st : steps_) s += st.edges_traversed;
  return s;
}

std::uint64_t Telemetry::total_vertices() const {
  std::uint64_t s = 0;
  for (const StepStats& st : steps_) s += st.vertices_touched;
  return s;
}

std::uint64_t Telemetry::total_bytes() const {
  std::uint64_t s = 0;
  for (const StepStats& st : steps_) s += st.bytes_moved;
  return s;
}

double Telemetry::total_seconds() const {
  double s = 0.0;
  for (const StepStats& st : steps_) s += st.seconds;
  return s;
}

std::size_t Telemetry::push_steps() const {
  std::size_t c = 0;
  for (const StepStats& st : steps_) c += st.direction == Direction::kPush;
  return c;
}

std::size_t Telemetry::pull_steps() const {
  return steps_.size() - push_steps();
}

std::string format_telemetry(const Telemetry& t) {
  std::string out =
      "  step  dir   frontier    vertices       edges       bytes      ms\n";
  char buf[160];
  for (const StepStats& s : t.steps()) {
    std::snprintf(buf, sizeof(buf),
                  "  %4u  %-4s %9llu %11llu %11llu %11llu %7.2f\n", s.step,
                  direction_name(s.direction),
                  static_cast<unsigned long long>(s.frontier_size),
                  static_cast<unsigned long long>(s.vertices_touched),
                  static_cast<unsigned long long>(s.edges_traversed),
                  static_cast<unsigned long long>(s.bytes_moved),
                  s.seconds * 1e3);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  total %zu steps (%zu push, %zu pull): %llu edges, "
                "%llu bytes, %.2f ms\n",
                t.num_steps(), t.push_steps(), t.pull_steps(),
                static_cast<unsigned long long>(t.total_edges()),
                static_cast<unsigned long long>(t.total_bytes()),
                t.total_seconds() * 1e3);
  out += buf;
  return out;
}

std::string format_counter_groups(const std::vector<CounterGroup>& groups) {
  std::string out;
  char buf[160];
  for (const CounterGroup& g : groups) {
    std::snprintf(buf, sizeof(buf), "  [%s]\n", g.name.c_str());
    out += buf;
    for (const Counter& c : g.counters) {
      std::snprintf(buf, sizeof(buf), "    %-28s %12llu\n", c.name.c_str(),
                    static_cast<unsigned long long>(c.value));
      out += buf;
    }
  }
  return out;
}

void publish_counter_groups(const std::vector<CounterGroup>& groups,
                            const std::string& prefix,
                            obs::MetricsRegistry& reg) {
  auto sanitize = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == ' ') {
        out += '_';
      } else if (c >= 'A' && c <= 'Z') {
        out += static_cast<char>(c - 'A' + 'a');
      } else {
        out += c;
      }
    }
    return out;
  };
  for (const CounterGroup& g : groups) {
    const std::string base = prefix + sanitize(g.name) + ".";
    for (const Counter& c : g.counters) {
      reg.gauge(base + sanitize(c.name))
          .set(static_cast<double>(c.value));
    }
  }
}

}  // namespace ga::engine
