// Frontier: the engine's vertex-subset abstraction. A frontier always
// maintains a membership bitmap (O(1) contains + dedup), and additionally
// keeps a sparse id list while it is small. The representation switches
// automatically at |frontier| = n / kDensifyFraction (Ligra's threshold):
// sparse lists make push steps cheap (iterate only the frontier), the
// bitmap makes pull steps cheap (probe membership per in-arc).
#pragma once

#include <vector>

#include "core/bitmap.hpp"
#include "core/common.hpp"

namespace ga::engine {

class Frontier {
 public:
  /// Sparse frontiers denser than universe/kDensifyFraction switch to the
  /// dense (bitmap-only) representation in auto_switch().
  static constexpr std::uint64_t kDensifyFraction = 20;

  Frontier() = default;
  explicit Frontier(vid_t n) : n_(n), bits_(n) {}

  /// Dense frontier containing every vertex of [0, n).
  static Frontier all(vid_t n);

  vid_t universe() const { return n_; }
  std::uint64_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  bool dense() const { return dense_; }
  bool complete() const { return count_ == n_; }

  bool contains(vid_t v) const { return bits_.get(v); }

  /// Deduplicated insert; returns true if v was newly added. Sparse
  /// frontiers also append to the id list. Single-writer only.
  bool add(vid_t v) {
    if (bits_.get(v)) return false;
    bits_.set(v);
    if (!dense_) items_.push_back(v);
    ++count_;
    return true;
  }

  /// Concurrent test-and-set on the membership bitmap; returns true if this
  /// caller flipped the bit. Does NOT update the id list or count — callers
  /// (the engine's parallel paths) buffer claimed vertices thread-locally
  /// and merge them via append_batch / bump_count.
  bool claim_atomic(vid_t v) { return bits_.set_atomic(v); }

  /// Splice a batch of already-claimed vertices into the sparse list.
  /// Caller serializes (the engine merges per-thread buffers under a mutex).
  void append_batch(const std::vector<vid_t>& vs) {
    GA_ASSERT(!dense_);
    items_.insert(items_.end(), vs.begin(), vs.end());
    count_ += vs.size();
  }

  /// Account for vertices claimed directly into the bitmap (dense output).
  void bump_count(std::uint64_t k) { count_ += k; }

  /// Drop the id list; the bitmap becomes the only representation.
  void make_dense() {
    dense_ = true;
    items_.clear();
    items_.shrink_to_fit();
  }

  /// Materialize the sparse id list (ascending scan of the bitmap when the
  /// frontier is dense; no-op otherwise).
  void ensure_sparse();

  /// The sparse id list (insertion order; ascending after densify round
  /// trips). Requires a sparse representation — call ensure_sparse() first.
  const std::vector<vid_t>& items() const {
    GA_ASSERT(!dense_);
    return items_;
  }

  const core::Bitmap& bits() const { return bits_; }

  /// Pick the representation matching the current density.
  void auto_switch();

  /// Union `other` into this frontier (deduplicated).
  void merge(Frontier& other);

  void clear();

  /// Apply fn(v) to every member (sparse: list order; dense: ascending).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (!dense_) {
      for (vid_t v : items_) fn(v);
    } else {
      for (vid_t v = 0; v < n_; ++v) {
        if (bits_.get(v)) fn(v);
      }
    }
  }

 private:
  vid_t n_ = 0;
  std::uint64_t count_ = 0;
  bool dense_ = false;
  std::vector<vid_t> items_;
  core::Bitmap bits_;
};

}  // namespace ga::engine
