// Frontier: the engine's vertex-subset abstraction. A frontier always
// maintains a membership bitmap (O(1) contains + dedup), and additionally
// keeps a sparse id list while it is small. The representation switches
// automatically at the GAP/Ligra frontier-density heuristic: a frontier is
// "dense" when the work it fans out — its member count plus the out-arcs
// leaving it — is a sizable fraction of the graph, not merely when it has
// many vertices. Sparse lists make push steps cheap (iterate only the
// frontier), the bitmap makes pull steps cheap (probe membership per
// in-arc).
//
// The engine reuses frontiers in place across super-steps (reset() keeps
// the bitmap and list allocations), and tracks the out-arc count of the
// vertices it inserts so the next step's direction heuristic needs no
// extra degree-summing pass.
#pragma once

#include <vector>

#include "core/bitmap.hpp"
#include "core/common.hpp"

namespace ga::engine {

class Frontier {
 public:
  /// Sparse frontiers denser than universe/kDensifyFraction switch to the
  /// dense (bitmap-only) representation in auto_switch().
  static constexpr std::uint64_t kDensifyFraction = 20;
  /// Edge-aware form (auto_switch with a total-arc count): densify when
  /// members + out-arcs exceed arcs/kDensifyFraction — Ligra's
  /// |V_f| + |E_f| > m/20 rule, which GAP's bitmap frontiers follow.
  static constexpr std::uint64_t kUnknownEdges = ~0ULL;

  Frontier() = default;
  explicit Frontier(vid_t n) : n_(n), bits_(n) {}

  /// Dense frontier containing every vertex of [0, n).
  static Frontier all(vid_t n);

  vid_t universe() const { return n_; }
  std::uint64_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  bool dense() const { return dense_; }
  bool complete() const { return count_ == n_; }

  bool contains(vid_t v) const { return bits_.get(v); }

  /// Prefetch the bitmap word backing contains(v) (pull-probe lookahead).
  void prefetch_contains(vid_t v) const { bits_.prefetch(v); }

  /// Deduplicated insert; returns true if v was newly added. Sparse
  /// frontiers also append to the id list. Single-writer only.
  bool add(vid_t v) {
    if (bits_.get(v)) return false;
    bits_.set(v);
    if (!dense_) items_.push_back(v);
    ++count_;
    out_edges_ = kUnknownEdges;  // producer re-stamps via set_out_edges
    return true;
  }

  /// Concurrent test-and-set on the membership bitmap; returns true if this
  /// caller flipped the bit. Does NOT update the id list or count — callers
  /// (the engine's parallel paths) buffer claimed vertices thread-locally
  /// and merge them via append_batch / bump_count.
  bool claim_atomic(vid_t v) { return bits_.set_atomic(v); }

  /// Splice a batch of already-claimed vertices into the sparse list.
  /// Caller serializes (the engine merges per-thread buffers under a mutex).
  void append_batch(const std::vector<vid_t>& vs) {
    GA_ASSERT(!dense_);
    items_.insert(items_.end(), vs.begin(), vs.end());
    count_ += vs.size();
  }

  /// Account for vertices claimed directly into the bitmap (dense output).
  void bump_count(std::uint64_t k) { count_ += k; }

  /// Out-arc count of the members (the GAP "scout count"), recorded by the
  /// edge_map that produced this frontier so the next step's direction
  /// choice needs no extra pass over the frontier. kUnknownEdges when the
  /// producer did not track it (hand-built frontiers).
  bool has_out_edges() const { return out_edges_ != kUnknownEdges; }
  std::uint64_t out_edges() const { return out_edges_; }
  void set_out_edges(std::uint64_t e) { out_edges_ = e; }
  void invalidate_out_edges() { out_edges_ = kUnknownEdges; }

  /// Drop the id list; the bitmap becomes the only representation.
  void make_dense() {
    dense_ = true;
    items_.clear();
    items_.shrink_to_fit();
  }

  /// Materialize the sparse id list (ascending scan of the bitmap when the
  /// frontier is dense; no-op otherwise).
  void ensure_sparse();

  /// The sparse id list (insertion order; ascending after densify round
  /// trips). Requires a sparse representation — call ensure_sparse() first.
  const std::vector<vid_t>& items() const {
    GA_ASSERT(!dense_);
    return items_;
  }

  const core::Bitmap& bits() const { return bits_; }

  /// Pick the representation matching the current density (vertex-count
  /// form: the caller knows nothing about out-arcs).
  void auto_switch();

  /// GAP/Ligra edge-aware representation switch: densify when
  /// |frontier| + out_edges() > total_arcs / kDensifyFraction. Falls back
  /// to the vertex-count form when the out-arc count is untracked.
  void auto_switch(std::uint64_t total_arcs);

  /// Union `other` into this frontier (deduplicated).
  void merge(Frontier& other);

  void clear();

  /// Allocation-reusing clear: keeps the bitmap and id-list storage so a
  /// frontier can be recycled as the next super-step's output without a
  /// per-level allocate/zero cycle. Sparse frontiers clear only the bits
  /// they set; dense ones pay one memset of the word array.
  void reset();

  /// reset(), additionally re-sizing to universe n when it differs.
  void reinit(vid_t n);

  void swap(Frontier& other) {
    std::swap(n_, other.n_);
    std::swap(count_, other.count_);
    std::swap(dense_, other.dense_);
    std::swap(out_edges_, other.out_edges_);
    items_.swap(other.items_);
    bits_.swap(other.bits_);
  }

  /// Apply fn(v) to every member (sparse: list order; dense: ascending).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (!dense_) {
      for (vid_t v : items_) fn(v);
    } else {
      for (vid_t v = 0; v < n_; ++v) {
        if (bits_.get(v)) fn(v);
      }
    }
  }

 private:
  vid_t n_ = 0;
  std::uint64_t count_ = 0;
  bool dense_ = false;
  std::uint64_t out_edges_ = kUnknownEdges;
  std::vector<vid_t> items_;
  core::Bitmap bits_;
};

}  // namespace ga::engine
