// The shared frontier-centric traversal engine (Ligra-style vertex_map /
// edge_map with Beamer direction optimization). Every level-synchronous
// kernel (BFS, frontier SSSP, label-propagation CC, Brandes BC, k-core
// peeling, PageRank's dense pull) is one functor plus a loop over
// edge_map; the engine owns the hot path: direction choice, sparse/dense
// frontier representation, in-place frontier recycling, software prefetch
// of the random-access state the scan is about to touch, thread-local
// next-frontier buffers merged per step, and per-super-step StepStats
// telemetry.
//
// Functor concept F:
//   bool cond(vid_t v)                       — is target v still active?
//   bool update(vid_t u, vid_t v, float w)   — apply arc (u,v); return true
//                                              to add v to the next frontier.
//                                              Serial paths and pull (where
//                                              one thread owns v) use this.
//   bool update_atomic(vid_t u, vid_t v, float w)
//                                            — as update, but safe for
//                                              concurrent callers (parallel
//                                              push). Use atomics on shared
//                                              per-vertex state.
// Optional prefetch hooks (the engine calls them a few arcs ahead of the
// scan cursor so the kernel's random state reads overlap the sequential
// adjacency stream — the GAP pull-loop prefetch discipline):
//   void prefetch_target(vid_t v)  — push is about to call cond/update on
//                                    target v (e.g. prefetch &dist[v]).
//   void prefetch_source(vid_t u)  — pull is about to fold source u's
//                                    state (e.g. prefetch &contrib[u]).
// The engine deduplicates next-frontier insertion; update may return true
// for the same v more than once per step.
//
// Direction semantics: push iterates the frontier's out-arcs (u ranges over
// the frontier); pull scans every vertex v with cond(v) and probes its
// in-arcs for frontier members, breaking early once cond(v) turns false.
// On directed graphs the transpose is built on demand (thread-safe, const).
// Pull on a *directed weighted* graph cannot recover arc weights from the
// transpose and passes w = 1.0f — weight-dependent kernels force push.
//
// Direction choice (Dir::kAuto) follows the GAP/Beamer heuristic: pull
// when the frontier's out-arc count ("scout count", tracked incrementally
// by the step that built the frontier) times alpha exceeds the arcs still
// unexplored AND the frontier holds more than n/beta vertices. Kernels
// whose functors visit each vertex at most once (BFS-like monotone
// traversals) set opts.monotone so "unexplored" shrinks as the run
// proceeds; non-monotone kernels compare against the full arc count.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "core/thread_pool.hpp"
#include "core/timer.hpp"
#include "engine/archbridge.hpp"
#include "engine/frontier.hpp"
#include "engine/telemetry.hpp"
#include "graph/csr_graph.hpp"
#include "store/graph_view.hpp"

namespace ga::engine {

struct TraversalOptions {
  enum class Dir : std::uint8_t { kAuto, kPush, kPull };

  Dir direction = Dir::kAuto;
  /// Use worker threads when the global pool has more than one. Serial
  /// traversals are exactly deterministic (insertion order reproducible).
  bool parallel = true;
  /// Traverse the transposed graph: push follows in-arcs, pull probes
  /// out-arcs. Used e.g. for the reverse sweep of directed WCC.
  bool transpose = false;
  /// Build and return the next frontier. Dense recurrences that only fold
  /// state (PageRank) switch this off to skip claim/merge work.
  bool produce_output = true;
  /// The functor claims each vertex at most once across the whole
  /// traversal (BFS-style). Lets the kAuto heuristic measure the scout
  /// count against the arcs not yet traversed (telemetry-tracked) instead
  /// of the full graph — the GAP direction-optimizing BFS rule.
  bool monotone = false;
  std::uint64_t grain = 64;
  /// Beamer switch thresholds (same form as the classic direction-
  /// optimizing BFS): choose pull when the frontier's out-arc count times
  /// alpha exceeds the (remaining) arc total AND the frontier holds more
  /// than n/beta vertices; otherwise push.
  std::uint64_t alpha = 14;
  std::uint64_t beta = 24;
};

namespace detail {

/// How many arcs ahead of the scan cursor prefetches are issued. Far
/// enough to cover DRAM latency at ~2 arcs/ns, near enough to stay in the
/// load queue.
inline constexpr std::size_t kPrefetchDistance = 8;

template <typename F>
concept HasPrefetchTarget =
    requires(F& f, vid_t v) { f.prefetch_target(v); };
template <typename F>
concept HasPrefetchSource =
    requires(F& f, vid_t u) { f.prefetch_source(u); };

/// Adjacency view over raw CSR arrays: forward (out) or reverse (in)
/// arcs, with weight access where the representation has them. The
/// per-arc hot loops index these pointers directly — no span
/// construction, bounds assert, or use_in branch per arc. in-lists alias
/// out-lists on undirected graphs, so weights stay index-aligned there; a
/// directed transpose has no weight array and reports 1.0f.
struct Adj {
  const eid_t* offsets;
  const vid_t* targets;
  const float* weights;  // nullptr when the view carries no weights

  /// Requires ensure_transpose() first when use_in on a directed graph.
  static Adj make(const graph::CSRGraph& g, bool use_in) {
    Adj a;
    if (use_in && g.directed()) {
      a.offsets = g.in_offsets().data();
      a.targets = g.in_targets().data();
      a.weights = nullptr;  // transpose carries no weight array
    } else {
      a.offsets = g.offsets().data();
      a.targets = g.targets().data();
      a.weights = g.weighted() ? g.weights().data() : nullptr;
    }
    return a;
  }

  eid_t degree(vid_t u) const { return offsets[u + 1] - offsets[u]; }
  /// Weight by absolute arc index (offsets[u] + i).
  float weight(eid_t arc) const {
    return weights != nullptr ? weights[arc] : 1.0f;
  }
};

/// Modeled memory traffic of a step, at word granularity (the paper's
/// Fig. 3 memory-resource axis): per examined vertex an offset pair, per
/// inspected arc a target id, its optional weight, and one word of kernel
/// state read or written at the far endpoint.
inline std::uint64_t model_bytes(std::uint64_t vertices, std::uint64_t edges,
                                 bool weighted) {
  constexpr std::uint64_t kVertexOverhead = 2 * sizeof(eid_t);  // offsets
  constexpr std::uint64_t kStateBytes = 8;                      // dist/label/rank word
  const std::uint64_t per_edge =
      sizeof(vid_t) + (weighted ? sizeof(float) : 0) + kStateBytes;
  return vertices * kVertexOverhead + edges * per_edge;
}

inline std::uint64_t degree_sum(const Adj& adj, const Frontier& f) {
  std::uint64_t sum = 0;
  f.for_each([&](vid_t v) { sum += adj.degree(v); });
  return sum;
}

/// Cut [0, n) into at most `chunks` ranges holding roughly equal arc
/// counts (binary search on the offset array), so parallel pull divides
/// work by edges instead of vertices — power-law degree skew otherwise
/// leaves most threads idle behind the hub-owning one.
inline std::vector<vid_t> edge_balanced_bounds(const eid_t* offsets, vid_t n,
                                               unsigned chunks) {
  std::vector<vid_t> bounds;
  bounds.reserve(chunks + 1);
  bounds.push_back(0);
  const eid_t total = offsets[n];
  for (unsigned c = 1; c < chunks; ++c) {
    const eid_t want = total / chunks * c;
    const eid_t* it = std::upper_bound(offsets, offsets + n + 1, want);
    vid_t v = static_cast<vid_t>(it - offsets);
    v = v > 0 ? v - 1 : 0;
    if (v < bounds.back()) v = bounds.back();
    bounds.push_back(v);
  }
  bounds.push_back(n);
  return bounds;
}

}  // namespace detail

/// One traversal super-step: apply `f` over the arcs leaving `frontier`
/// (push) or entering still-active vertices (pull), filling `next` with
/// the next frontier. `next` is recycled in place (allocations kept from
/// the previous level); it must not alias `frontier`. Direction,
/// representation switching, parallel merging, prefetch, and telemetry
/// are handled here — kernels supply only the functor.
template <typename F>
void edge_map_into(const graph::CSRGraph& g, Frontier& frontier,
                   Frontier& next, F&& f, const TraversalOptions& opts = {},
                   Telemetry* telem = nullptr) {
  using Fn = std::remove_reference_t<F>;
  const vid_t n = g.num_vertices();
  GA_CHECK(frontier.universe() == n, "edge_map: frontier/graph mismatch");
  GA_CHECK(&frontier != &next, "edge_map: frontier and next must differ");
  next.reinit(n);
  core::WallTimer timer;

  if (g.directed() && opts.transpose) g.ensure_transpose();
  detail::Adj fwd = detail::Adj::make(g, opts.transpose);

  Direction dir;
  if (opts.direction == TraversalOptions::Dir::kPush) {
    dir = Direction::kPush;
  } else if (opts.direction == TraversalOptions::Dir::kPull) {
    dir = Direction::kPull;
  } else {
    // Pull cannot recover arc weights from a directed transpose, so the
    // heuristic never selects it there (callers may still force it for
    // weight-oblivious functors like PageRank's).
    const bool pull_usable = !(g.directed() && g.weighted());
    const std::uint64_t fedges = frontier.has_out_edges()
                                     ? frontier.out_edges()
                                     : detail::degree_sum(fwd, frontier);
    if (opts.monotone && telem != nullptr) {
      // GAP direction-optimizing rule, asymmetric like the original: enter
      // bottom-up as soon as the scout count beats the arcs still
      // unexplored / alpha — a hub-heavy frontier with few vertices still
      // qualifies — and once in it (a dense frontier marks the previous
      // step as pull), stay until the frontier shrinks below n / beta.
      const std::uint64_t seen = telem->total_edges();
      const std::uint64_t arcs = g.num_arcs();
      // Floor the horizon at n: when nearly everything is explored a tiny
      // tail frontier must not "win" against ~0 remaining arcs and trigger
      // an all-vertex pull scan per level (quadratic on high-diameter
      // graphs).
      const std::uint64_t horizon =
          std::max<std::uint64_t>(seen < arcs ? arcs - seen : 0, n);
      const bool enter_pull = fedges * opts.alpha > horizon;
      const bool stay_pull =
          frontier.dense() && frontier.size() > n / opts.beta;
      dir = (pull_usable && (enter_pull || stay_pull)) ? Direction::kPull
                                                       : Direction::kPush;
    } else {
      dir = (pull_usable && fedges * opts.alpha > g.num_arcs() &&
             frontier.size() > n / opts.beta)
                ? Direction::kPull
                : Direction::kPush;
    }
  }
  // Push on the transpose and pull on the forward graph both read in-arcs.
  if (g.directed() && ((dir == Direction::kPush) == opts.transpose)) {
    g.ensure_transpose();
  }

  const bool run_parallel =
      opts.parallel && core::ThreadPool::global().num_threads() > 1;
  const bool track_scout =
      opts.produce_output && opts.direction == TraversalOptions::Dir::kAuto;
  StepStats st;
  st.direction = dir;
  st.frontier_size = frontier.size();
  constexpr std::size_t kPD = detail::kPrefetchDistance;

  if (dir == Direction::kPush) {
    frontier.ensure_sparse();
    const auto& items = frontier.items();
    st.vertices_touched = items.size();
    if (!run_parallel) {
      std::uint64_t edges = 0, scout = 0;
      for (vid_t u : items) {
        const eid_t ab = fwd.offsets[u], ae = fwd.offsets[u + 1];
        edges += ae - ab;
        for (eid_t i = ab; i < ae; ++i) {
          const vid_t v = fwd.targets[i];
          if constexpr (detail::HasPrefetchTarget<Fn>) {
            if (i + kPD < ae) f.prefetch_target(fwd.targets[i + kPD]);
          }
          if (!f.cond(v)) continue;
          if (f.update(u, v, fwd.weight(i)) && opts.produce_output &&
              next.add(v) && track_scout) {
            scout += fwd.degree(v);
          }
        }
      }
      st.edges_traversed = edges;
      if (track_scout) next.set_out_edges(scout);
    } else {
      // Parallel push: per-chunk thread-local buffers of claimed vertices
      // spliced under a mutex, per-thread edge/scout counters merged once
      // per chunk (no shared ++ on hot paths).
      std::mutex splice_mu;
      std::atomic<std::uint64_t> edges{0}, scout{0};
      std::function<void(std::uint64_t, std::uint64_t)> body =
          [&](std::uint64_t b, std::uint64_t e) {
            std::vector<vid_t> local;
            std::uint64_t local_edges = 0, local_scout = 0;
            for (std::uint64_t idx = b; idx < e; ++idx) {
              const vid_t u = items[idx];
              const eid_t ab = fwd.offsets[u], ae = fwd.offsets[u + 1];
              local_edges += ae - ab;
              for (eid_t i = ab; i < ae; ++i) {
                const vid_t v = fwd.targets[i];
                if constexpr (detail::HasPrefetchTarget<Fn>) {
                  if (i + kPD < ae) f.prefetch_target(fwd.targets[i + kPD]);
                }
                if (!f.cond(v)) continue;
                if (f.update_atomic(u, v, fwd.weight(i)) &&
                    opts.produce_output && next.claim_atomic(v)) {
                  local.push_back(v);
                  if (track_scout) local_scout += fwd.degree(v);
                }
              }
            }
            edges.fetch_add(local_edges, std::memory_order_relaxed);
            scout.fetch_add(local_scout, std::memory_order_relaxed);
            if (!local.empty()) {
              std::lock_guard<std::mutex> lk(splice_mu);
              next.append_batch(local);
            }
          };
      core::ThreadPool::global().parallel_for(0, items.size(), opts.grain,
                                              body);
      st.edges_traversed = edges.load();
      if (track_scout) next.set_out_edges(scout.load());
    }
  } else {
    // Pull: scan every still-active vertex and probe its reverse arcs for
    // frontier members; break as soon as cond(v) is satisfied-away. The
    // frontier-bitmap probes are the random access here — prefetch them a
    // few arcs ahead of the cursor.
    next.make_dense();
    detail::Adj rev = detail::Adj::make(g, !opts.transpose);
    const bool whole = frontier.complete();
    if (!run_parallel) {
      std::uint64_t edges = 0, touched = 0, scout = 0;
      for (vid_t v = 0; v < n; ++v) {
        if (!f.cond(v)) continue;
        ++touched;
        const eid_t ab = rev.offsets[v], ae = rev.offsets[v + 1];
        for (eid_t i = ab; i < ae; ++i) {
          const vid_t u = rev.targets[i];
          if (i + kPD < ae) {
            const vid_t pu = rev.targets[i + kPD];
            if (!whole) frontier.prefetch_contains(pu);
            if constexpr (detail::HasPrefetchSource<Fn>) {
              f.prefetch_source(pu);
            }
          }
          ++edges;
          if (!whole && !frontier.contains(u)) continue;
          if (f.update(u, v, rev.weight(i)) && opts.produce_output &&
              next.add(v) && track_scout) {
            scout += fwd.degree(v);
          }
          if (!f.cond(v)) break;
        }
      }
      st.edges_traversed = edges;
      st.vertices_touched = touched;
      if (track_scout) next.set_out_edges(scout);
    } else {
      // Edge-balanced chunks: power-law in-degree skew makes equal vertex
      // ranges wildly unequal work, so cut by arc count instead.
      const unsigned nchunks =
          std::max(1u, core::ThreadPool::global().num_threads() * 8);
      const std::vector<vid_t> bounds =
          detail::edge_balanced_bounds(rev.offsets, n, nchunks);
      std::atomic<std::uint64_t> edges{0}, touched{0}, added{0}, scout{0};
      std::function<void(std::uint64_t, std::uint64_t)> body =
          [&](std::uint64_t cb, std::uint64_t ce) {
            std::uint64_t local_edges = 0, local_touched = 0;
            std::uint64_t local_added = 0, local_scout = 0;
            for (std::uint64_t c = cb; c < ce; ++c) {
              for (vid_t v = bounds[c]; v < bounds[c + 1]; ++v) {
                if (!f.cond(v)) continue;
                ++local_touched;
                const eid_t ab = rev.offsets[v], ae = rev.offsets[v + 1];
                for (eid_t i = ab; i < ae; ++i) {
                  const vid_t u = rev.targets[i];
                  if (i + kPD < ae) {
                    const vid_t pu = rev.targets[i + kPD];
                    if (!whole) frontier.prefetch_contains(pu);
                    if constexpr (detail::HasPrefetchSource<Fn>) {
                      f.prefetch_source(pu);
                    }
                  }
                  ++local_edges;
                  if (!whole && !frontier.contains(u)) continue;
                  if (f.update(u, v, rev.weight(i)) && opts.produce_output &&
                      next.claim_atomic(v)) {
                    ++local_added;
                    if (track_scout) local_scout += fwd.degree(v);
                  }
                  if (!f.cond(v)) break;
                }
              }
            }
            edges.fetch_add(local_edges, std::memory_order_relaxed);
            touched.fetch_add(local_touched, std::memory_order_relaxed);
            added.fetch_add(local_added, std::memory_order_relaxed);
            scout.fetch_add(local_scout, std::memory_order_relaxed);
          };
      core::ThreadPool::global().parallel_for(
          0, bounds.size() - 1, /*grain=*/1, body);
      st.edges_traversed = edges.load();
      st.vertices_touched = touched.load();
      next.bump_count(added.load());
      if (track_scout) next.set_out_edges(scout.load());
    }
  }

  // Representation switching and scout counts only pay off when the next
  // step's direction heuristic reads them; under a forced direction the
  // dense/sparse round-trip (O(n) bitmap rescan on ensure_sparse) and the
  // per-discovery degree lookups are pure overhead.
  if (opts.produce_output && opts.direction == TraversalOptions::Dir::kAuto) {
    next.auto_switch(g.num_arcs());
  }
  st.bytes_moved =
      detail::model_bytes(st.vertices_touched, st.edges_traversed,
                          g.weighted());
  st.seconds = timer.seconds();
  if (telem) telem->record(st);
  obs_record_step(st);  // one relaxed load per super-step when disabled
}

/// Value-returning convenience over edge_map_into (allocates a fresh next
/// frontier each call; level-synchronous kernel loops should keep two
/// frontiers and swap instead).
template <typename F>
Frontier edge_map(const graph::CSRGraph& g, Frontier& frontier, F&& f,
                  const TraversalOptions& opts = {},
                  Telemetry* telem = nullptr) {
  Frontier next(g.num_vertices());
  edge_map_into(g, frontier, next, std::forward<F>(f), opts, telem);
  return next;
}

/// edge_map over the versioned store's GraphView — the engine's unified
/// read path. A flat view delegates to the CSR overload above (identical
/// hot path, full direction optimization). A delta-backed or tier-backed
/// view traverses the merged adjacency push-style: neither keeps an
/// in-adjacency, so pull (and transpose) are unavailable until the
/// compactor flattens — opts.direction/transpose are ignored rather than
/// an error, because the same kernel code must run on every view kind.
/// Pure tiered views (no chain) get a segment-resolution seam: a
/// TieredGraph::Reader cursor per worker re-pins only on segment cross,
/// so the per-vertex cost stays one bounds check, not one mutex.
template <typename F>
void edge_map_into(const store::GraphView& view, Frontier& frontier,
                   Frontier& next, F&& f, const TraversalOptions& opts = {},
                   Telemetry* telem = nullptr) {
  if (view.flat()) {
    edge_map_into(view.base(), frontier, next, std::forward<F>(f), opts,
                  telem);
    return;
  }
  GA_CHECK(!opts.transpose,
           "edge_map(GraphView): transpose traversal needs a flat view "
           "(compact first or use view.csr())");
  const vid_t n = view.num_vertices();
  GA_CHECK(frontier.universe() == n, "edge_map: frontier/view mismatch");
  GA_CHECK(&frontier != &next, "edge_map: frontier and next must differ");
  next.reinit(n);
  core::WallTimer timer;

  const bool run_parallel =
      opts.parallel && core::ThreadPool::global().num_threads() > 1;
  StepStats st;
  st.direction = Direction::kPush;
  st.frontier_size = frontier.size();

  frontier.ensure_sparse();
  const auto& items = frontier.items();
  st.vertices_touched = items.size();
  const bool pure_tiered = view.tiered() && view.chain_depth() == 0;
  if (!run_parallel) {
    std::uint64_t edges = 0;
    if (pure_tiered) {
      const store::TieredGraph& tg = *view.tiers();
      store::TieredGraph::Reader reader;
      for (vid_t u : items) {
        tg.for_each_out(u, reader, [&](vid_t v, float w) {
          ++edges;
          if (!f.cond(v)) return;
          if (f.update(u, v, w) && opts.produce_output) next.add(v);
        });
      }
    } else {
      for (vid_t u : items) {
        view.for_each_out(u, [&](vid_t v, float w) {
          ++edges;
          if (!f.cond(v)) return;
          if (f.update(u, v, w) && opts.produce_output) next.add(v);
        });
      }
    }
    st.edges_traversed = edges;
  } else {
    std::mutex splice_mu;
    std::atomic<std::uint64_t> edges{0};
    std::function<void(std::uint64_t, std::uint64_t)> body =
        [&](std::uint64_t b, std::uint64_t e) {
          std::vector<vid_t> local;
          std::uint64_t local_edges = 0;
          store::TieredGraph::Reader reader;  // per-chunk = per-worker pin
          for (std::uint64_t idx = b; idx < e; ++idx) {
            const vid_t u = items[idx];
            const auto visit = [&](vid_t v, float w) {
              ++local_edges;
              if (!f.cond(v)) return;
              if (f.update_atomic(u, v, w) && opts.produce_output &&
                  next.claim_atomic(v)) {
                local.push_back(v);
              }
            };
            if (pure_tiered) {
              view.tiers()->for_each_out(u, reader, visit);
            } else {
              view.for_each_out(u, visit);
            }
          }
          edges.fetch_add(local_edges, std::memory_order_relaxed);
          if (!local.empty()) {
            std::lock_guard<std::mutex> lk(splice_mu);
            next.append_batch(local);
          }
        };
    core::ThreadPool::global().parallel_for(0, items.size(), opts.grain, body);
    st.edges_traversed = edges.load();
  }

  if (opts.produce_output) next.auto_switch();
  st.bytes_moved = detail::model_bytes(st.vertices_touched,
                                       st.edges_traversed, view.weighted());
  st.seconds = timer.seconds();
  if (telem) telem->record(st);
  obs_record_step(st);
}

template <typename F>
Frontier edge_map(const store::GraphView& view, Frontier& frontier, F&& f,
                  const TraversalOptions& opts = {},
                  Telemetry* telem = nullptr) {
  Frontier next(view.num_vertices());
  edge_map_into(view, frontier, next, std::forward<F>(f), opts, telem);
  return next;
}

/// Apply fn(v) to every frontier member. Parallel over the sparse list
/// when requested and worker threads exist; fn must then be safe for
/// concurrent calls on distinct vertices.
template <typename Fn>
void vertex_map(Frontier& frontier, Fn&& fn, bool parallel = false,
                Telemetry* telem = nullptr) {
  core::WallTimer timer;
  const bool run_parallel =
      parallel && core::ThreadPool::global().num_threads() > 1;
  if (!run_parallel) {
    frontier.for_each(fn);
  } else {
    frontier.ensure_sparse();
    const auto& items = frontier.items();
    std::function<void(std::uint64_t, std::uint64_t)> body =
        [&](std::uint64_t b, std::uint64_t e) {
          for (std::uint64_t i = b; i < e; ++i) fn(items[i]);
        };
    core::ThreadPool::global().parallel_for(0, items.size(), 256, body);
  }
  if (telem || obs::enabled()) {
    StepStats st;
    st.direction = Direction::kPush;
    st.frontier_size = frontier.size();
    st.vertices_touched = frontier.size();
    st.bytes_moved = detail::model_bytes(frontier.size(), 0, false);
    st.seconds = timer.seconds();
    if (telem) telem->record(st);
    obs_record_step(st);
  }
}

/// Build a frontier of every vertex in [0, n) satisfying pred.
template <typename Pred>
Frontier vertex_filter(vid_t n, Pred&& pred) {
  Frontier out(n);
  for (vid_t v = 0; v < n; ++v) {
    if (pred(v)) out.add(v);
  }
  out.auto_switch();
  return out;
}

}  // namespace ga::engine
