// The shared frontier-centric traversal engine (Ligra-style vertex_map /
// edge_map with Beamer direction optimization). Every level-synchronous
// kernel (BFS, frontier SSSP, label-propagation CC, Brandes BC, k-core
// peeling, PageRank's dense pull) is one functor plus a loop over
// edge_map; the engine owns the hot path: direction choice, sparse/dense
// frontier representation, thread-local next-frontier buffers merged per
// step, and per-super-step StepStats telemetry.
//
// Functor concept F:
//   bool cond(vid_t v)                       — is target v still active?
//   bool update(vid_t u, vid_t v, float w)   — apply arc (u,v); return true
//                                              to add v to the next frontier.
//                                              Serial paths and pull (where
//                                              one thread owns v) use this.
//   bool update_atomic(vid_t u, vid_t v, float w)
//                                            — as update, but safe for
//                                              concurrent callers (parallel
//                                              push). Use atomics on shared
//                                              per-vertex state.
// The engine deduplicates next-frontier insertion; update may return true
// for the same v more than once per step.
//
// Direction semantics: push iterates the frontier's out-arcs (u ranges over
// the frontier); pull scans every vertex v with cond(v) and probes its
// in-arcs for frontier members, breaking early once cond(v) turns false.
// On directed graphs the transpose is built on demand (thread-safe, const).
// Pull on a *directed weighted* graph cannot recover arc weights from the
// transpose and passes w = 1.0f — weight-dependent kernels force push.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "core/thread_pool.hpp"
#include "core/timer.hpp"
#include "engine/archbridge.hpp"
#include "engine/frontier.hpp"
#include "engine/telemetry.hpp"
#include "graph/csr_graph.hpp"
#include "store/graph_view.hpp"

namespace ga::engine {

struct TraversalOptions {
  enum class Dir : std::uint8_t { kAuto, kPush, kPull };

  Dir direction = Dir::kAuto;
  /// Use worker threads when the global pool has more than one. Serial
  /// traversals are exactly deterministic (insertion order reproducible).
  bool parallel = true;
  /// Traverse the transposed graph: push follows in-arcs, pull probes
  /// out-arcs. Used e.g. for the reverse sweep of directed WCC.
  bool transpose = false;
  /// Build and return the next frontier. Dense recurrences that only fold
  /// state (PageRank) switch this off to skip claim/merge work.
  bool produce_output = true;
  std::uint64_t grain = 64;
  /// Beamer switch thresholds (same form as the classic direction-
  /// optimizing BFS): choose pull when the frontier's out-arc count times
  /// alpha exceeds the arc total AND the frontier holds more than n/beta
  /// vertices; otherwise push.
  std::uint64_t alpha = 14;
  std::uint64_t beta = 24;
};

namespace detail {

/// Adjacency view: forward (out) or reverse (in) arcs, with weight access
/// where the representation has them. in-lists alias out-lists on
/// undirected graphs, so weights stay index-aligned there; a directed
/// transpose has no weight array and reports 1.0f.
struct Adj {
  const graph::CSRGraph* g;
  bool use_in;
  bool has_weights;

  static Adj make(const graph::CSRGraph& g, bool use_in) {
    return {&g, use_in, g.weighted() && (!use_in || !g.directed())};
  }

  std::span<const vid_t> neighbors(vid_t u) const {
    return use_in ? g->in_neighbors(u) : g->out_neighbors(u);
  }
  eid_t degree(vid_t u) const {
    return use_in ? g->in_degree(u) : g->out_degree(u);
  }
  float weight(vid_t u, std::size_t i) const {
    // use_in implies undirected here (see has_weights), where in-lists
    // alias out-lists, so out_weights is index-aligned for both views.
    return has_weights ? g->out_weights(u)[i] : 1.0f;
  }
};

/// Modeled memory traffic of a step, at word granularity (the paper's
/// Fig. 3 memory-resource axis): per examined vertex an offset pair, per
/// inspected arc a target id, its optional weight, and one word of kernel
/// state read or written at the far endpoint.
inline std::uint64_t model_bytes(std::uint64_t vertices, std::uint64_t edges,
                                 bool weighted) {
  constexpr std::uint64_t kVertexOverhead = 2 * sizeof(eid_t);  // offsets
  constexpr std::uint64_t kStateBytes = 8;                      // dist/label/rank word
  const std::uint64_t per_edge =
      sizeof(vid_t) + (weighted ? sizeof(float) : 0) + kStateBytes;
  return vertices * kVertexOverhead + edges * per_edge;
}

inline std::uint64_t degree_sum(const Adj& adj, const Frontier& f) {
  std::uint64_t sum = 0;
  f.for_each([&](vid_t v) { sum += adj.degree(v); });
  return sum;
}

}  // namespace detail

/// One traversal super-step: apply `f` over the arcs leaving `frontier`
/// (push) or entering still-active vertices (pull), returning the next
/// frontier. Direction, representation switching, parallel merging, and
/// telemetry are handled here — kernels supply only the functor.
template <typename F>
Frontier edge_map(const graph::CSRGraph& g, Frontier& frontier, F&& f,
                  const TraversalOptions& opts = {},
                  Telemetry* telem = nullptr) {
  const vid_t n = g.num_vertices();
  GA_CHECK(frontier.universe() == n, "edge_map: frontier/graph mismatch");
  core::WallTimer timer;

  detail::Adj fwd = detail::Adj::make(g, opts.transpose);

  Direction dir;
  if (opts.direction == TraversalOptions::Dir::kPush) {
    dir = Direction::kPush;
  } else if (opts.direction == TraversalOptions::Dir::kPull) {
    dir = Direction::kPull;
  } else {
    // Pull cannot recover arc weights from a directed transpose, so the
    // heuristic never selects it there (callers may still force it for
    // weight-oblivious functors like PageRank's).
    const bool pull_usable = !(g.directed() && g.weighted());
    const std::uint64_t fedges = detail::degree_sum(fwd, frontier);
    dir = (pull_usable && fedges * opts.alpha > g.num_arcs() &&
           frontier.size() > n / opts.beta)
              ? Direction::kPull
              : Direction::kPush;
  }
  // Push on the transpose and pull on the forward graph both read in-arcs.
  if (g.directed() && ((dir == Direction::kPush) == opts.transpose)) {
    g.ensure_transpose();
  }

  const bool run_parallel =
      opts.parallel && core::ThreadPool::global().num_threads() > 1;
  StepStats st;
  st.direction = dir;
  st.frontier_size = frontier.size();
  Frontier next(n);

  if (dir == Direction::kPush) {
    frontier.ensure_sparse();
    const auto& items = frontier.items();
    st.vertices_touched = items.size();
    if (!run_parallel) {
      std::uint64_t edges = 0;
      for (vid_t u : items) {
        const auto nbrs = fwd.neighbors(u);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          const vid_t v = nbrs[i];
          ++edges;
          if (!f.cond(v)) continue;
          if (f.update(u, v, fwd.weight(u, i)) && opts.produce_output) {
            next.add(v);
          }
        }
      }
      st.edges_traversed = edges;
    } else {
      // Parallel push: per-chunk thread-local buffers of claimed vertices
      // spliced under a mutex, per-thread edge counters merged once per
      // chunk (no shared ++ on hot paths).
      std::mutex splice_mu;
      std::atomic<std::uint64_t> edges{0};
      std::function<void(std::uint64_t, std::uint64_t)> body =
          [&](std::uint64_t b, std::uint64_t e) {
            std::vector<vid_t> local;
            std::uint64_t local_edges = 0;
            for (std::uint64_t idx = b; idx < e; ++idx) {
              const vid_t u = items[idx];
              const auto nbrs = fwd.neighbors(u);
              for (std::size_t i = 0; i < nbrs.size(); ++i) {
                const vid_t v = nbrs[i];
                ++local_edges;
                if (!f.cond(v)) continue;
                if (f.update_atomic(u, v, fwd.weight(u, i)) &&
                    opts.produce_output && next.claim_atomic(v)) {
                  local.push_back(v);
                }
              }
            }
            edges.fetch_add(local_edges, std::memory_order_relaxed);
            if (!local.empty()) {
              std::lock_guard<std::mutex> lk(splice_mu);
              next.append_batch(local);
            }
          };
      core::ThreadPool::global().parallel_for(0, items.size(), opts.grain,
                                              body);
      st.edges_traversed = edges.load();
    }
  } else {
    // Pull: scan every still-active vertex and probe its reverse arcs for
    // frontier members; break as soon as cond(v) is satisfied-away.
    next.make_dense();
    detail::Adj rev = detail::Adj::make(g, !opts.transpose);
    const bool whole = frontier.complete();
    if (!run_parallel) {
      std::uint64_t edges = 0, touched = 0;
      for (vid_t v = 0; v < n; ++v) {
        if (!f.cond(v)) continue;
        ++touched;
        const auto nbrs = rev.neighbors(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          const vid_t u = nbrs[i];
          ++edges;
          if (!whole && !frontier.contains(u)) continue;
          if (f.update(u, v, rev.weight(v, i)) && opts.produce_output) {
            next.add(v);
          }
          if (!f.cond(v)) break;
        }
      }
      st.edges_traversed = edges;
      st.vertices_touched = touched;
    } else {
      std::atomic<std::uint64_t> edges{0}, touched{0}, added{0};
      std::function<void(std::uint64_t, std::uint64_t)> body =
          [&](std::uint64_t b, std::uint64_t e) {
            std::uint64_t local_edges = 0, local_touched = 0, local_added = 0;
            for (std::uint64_t vv = b; vv < e; ++vv) {
              const vid_t v = static_cast<vid_t>(vv);
              if (!f.cond(v)) continue;
              ++local_touched;
              const auto nbrs = rev.neighbors(v);
              for (std::size_t i = 0; i < nbrs.size(); ++i) {
                const vid_t u = nbrs[i];
                ++local_edges;
                if (!whole && !frontier.contains(u)) continue;
                if (f.update(u, v, rev.weight(v, i)) && opts.produce_output &&
                    next.claim_atomic(v)) {
                  ++local_added;
                }
                if (!f.cond(v)) break;
              }
            }
            edges.fetch_add(local_edges, std::memory_order_relaxed);
            touched.fetch_add(local_touched, std::memory_order_relaxed);
            added.fetch_add(local_added, std::memory_order_relaxed);
          };
      core::ThreadPool::global().parallel_for(0, n, opts.grain, body);
      st.edges_traversed = edges.load();
      st.vertices_touched = touched.load();
      next.bump_count(added.load());
    }
  }

  if (opts.produce_output) next.auto_switch();
  st.bytes_moved =
      detail::model_bytes(st.vertices_touched, st.edges_traversed,
                          g.weighted());
  st.seconds = timer.seconds();
  if (telem) telem->record(st);
  obs_record_step(st);  // one relaxed load per super-step when disabled
  return next;
}

/// edge_map over the versioned store's GraphView — the engine's unified
/// read path. A flat view delegates to the CSR overload above (identical
/// hot path, full direction optimization). A delta-backed view traverses
/// the merged adjacency push-style: the chain keeps no in-adjacency, so
/// pull (and transpose) are unavailable until the compactor flattens —
/// opts.direction/transpose are ignored rather than an error, because the
/// same kernel code must run on both view kinds.
template <typename F>
Frontier edge_map(const store::GraphView& view, Frontier& frontier, F&& f,
                  const TraversalOptions& opts = {},
                  Telemetry* telem = nullptr) {
  if (view.flat()) return edge_map(view.base(), frontier, f, opts, telem);
  GA_CHECK(!opts.transpose,
           "edge_map(GraphView): transpose traversal needs a flat view "
           "(compact first or use view.csr())");
  const vid_t n = view.num_vertices();
  GA_CHECK(frontier.universe() == n, "edge_map: frontier/view mismatch");
  core::WallTimer timer;

  const bool run_parallel =
      opts.parallel && core::ThreadPool::global().num_threads() > 1;
  StepStats st;
  st.direction = Direction::kPush;
  st.frontier_size = frontier.size();
  Frontier next(n);

  frontier.ensure_sparse();
  const auto& items = frontier.items();
  st.vertices_touched = items.size();
  if (!run_parallel) {
    std::uint64_t edges = 0;
    for (vid_t u : items) {
      view.for_each_out(u, [&](vid_t v, float w) {
        ++edges;
        if (!f.cond(v)) return;
        if (f.update(u, v, w) && opts.produce_output) next.add(v);
      });
    }
    st.edges_traversed = edges;
  } else {
    std::mutex splice_mu;
    std::atomic<std::uint64_t> edges{0};
    std::function<void(std::uint64_t, std::uint64_t)> body =
        [&](std::uint64_t b, std::uint64_t e) {
          std::vector<vid_t> local;
          std::uint64_t local_edges = 0;
          for (std::uint64_t idx = b; idx < e; ++idx) {
            const vid_t u = items[idx];
            view.for_each_out(u, [&](vid_t v, float w) {
              ++local_edges;
              if (!f.cond(v)) return;
              if (f.update_atomic(u, v, w) && opts.produce_output &&
                  next.claim_atomic(v)) {
                local.push_back(v);
              }
            });
          }
          edges.fetch_add(local_edges, std::memory_order_relaxed);
          if (!local.empty()) {
            std::lock_guard<std::mutex> lk(splice_mu);
            next.append_batch(local);
          }
        };
    core::ThreadPool::global().parallel_for(0, items.size(), opts.grain, body);
    st.edges_traversed = edges.load();
  }

  if (opts.produce_output) next.auto_switch();
  st.bytes_moved = detail::model_bytes(st.vertices_touched,
                                       st.edges_traversed, view.weighted());
  st.seconds = timer.seconds();
  if (telem) telem->record(st);
  obs_record_step(st);
  return next;
}

/// Apply fn(v) to every frontier member. Parallel over the sparse list
/// when requested and worker threads exist; fn must then be safe for
/// concurrent calls on distinct vertices.
template <typename Fn>
void vertex_map(Frontier& frontier, Fn&& fn, bool parallel = false,
                Telemetry* telem = nullptr) {
  core::WallTimer timer;
  const bool run_parallel =
      parallel && core::ThreadPool::global().num_threads() > 1;
  if (!run_parallel) {
    frontier.for_each(fn);
  } else {
    frontier.ensure_sparse();
    const auto& items = frontier.items();
    std::function<void(std::uint64_t, std::uint64_t)> body =
        [&](std::uint64_t b, std::uint64_t e) {
          for (std::uint64_t i = b; i < e; ++i) fn(items[i]);
        };
    core::ThreadPool::global().parallel_for(0, items.size(), 256, body);
  }
  if (telem || obs::enabled()) {
    StepStats st;
    st.direction = Direction::kPush;
    st.frontier_size = frontier.size();
    st.vertices_touched = frontier.size();
    st.bytes_moved = detail::model_bytes(frontier.size(), 0, false);
    st.seconds = timer.seconds();
    if (telem) telem->record(st);
    obs_record_step(st);
  }
}

/// Build a frontier of every vertex in [0, n) satisfying pred.
template <typename Pred>
Frontier vertex_filter(vid_t n, Pred&& pred) {
  Frontier out(n);
  for (vid_t v = 0; v < n; ++v) {
    if (pred(v)) out.add(v);
  }
  out.auto_switch();
  return out;
}

}  // namespace ga::engine
