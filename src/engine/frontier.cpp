#include "engine/frontier.hpp"

namespace ga::engine {

Frontier Frontier::all(vid_t n) {
  Frontier f(n);
  f.make_dense();
  for (vid_t v = 0; v < n; ++v) f.bits_.set(v);
  f.count_ = n;
  return f;
}

void Frontier::ensure_sparse() {
  if (!dense_) return;
  items_.clear();
  items_.reserve(count_);
  for (vid_t v = 0; v < n_; ++v) {
    if (bits_.get(v)) items_.push_back(v);
  }
  dense_ = false;
}

void Frontier::auto_switch() {
  const std::uint64_t threshold = n_ / kDensifyFraction;
  if (!dense_ && count_ > threshold) {
    make_dense();
  } else if (dense_ && count_ <= threshold) {
    ensure_sparse();
  }
}

void Frontier::auto_switch(std::uint64_t total_arcs) {
  if (!has_out_edges()) {
    auto_switch();
    return;
  }
  // Ligra/GAP density: the step's fan-out (members + their out-arcs)
  // decides the representation, so a few hub vertices with huge adjacency
  // correctly count as "dense" while many leaves stay sparse.
  const bool want_dense =
      count_ + out_edges_ > total_arcs / kDensifyFraction;
  if (!dense_ && want_dense) {
    make_dense();
  } else if (dense_ && !want_dense) {
    ensure_sparse();
  }
}

void Frontier::merge(Frontier& other) {
  GA_ASSERT(n_ == other.n_);
  if (other.empty()) return;
  invalidate_out_edges();
  other.ensure_sparse();
  if (dense_) {
    for (vid_t v : other.items()) {
      if (!bits_.get(v)) {
        bits_.set(v);
        ++count_;
      }
    }
  } else {
    for (vid_t v : other.items()) add(v);
  }
}

void Frontier::clear() {
  bits_.reset();
  items_.clear();
  count_ = 0;
  dense_ = false;
  out_edges_ = kUnknownEdges;
}

void Frontier::reset() {
  if (!dense_ && items_.size() < n_ / 64) {
    // Cheaper to clear the few set bits than to memset the whole array.
    for (vid_t v : items_) bits_.clear(v);
  } else {
    bits_.reset();
  }
  items_.clear();
  count_ = 0;
  dense_ = false;
  out_edges_ = kUnknownEdges;
}

void Frontier::reinit(vid_t n) {
  if (n_ != n) {
    n_ = n;
    bits_ = core::Bitmap(n);
    items_.clear();
    count_ = 0;
    dense_ = false;
    out_edges_ = kUnknownEdges;
    return;
  }
  reset();
}

}  // namespace ga::engine
