#include "engine/frontier.hpp"

namespace ga::engine {

Frontier Frontier::all(vid_t n) {
  Frontier f(n);
  f.make_dense();
  for (vid_t v = 0; v < n; ++v) f.bits_.set(v);
  f.count_ = n;
  return f;
}

void Frontier::ensure_sparse() {
  if (!dense_) return;
  items_.clear();
  items_.reserve(count_);
  for (vid_t v = 0; v < n_; ++v) {
    if (bits_.get(v)) items_.push_back(v);
  }
  dense_ = false;
}

void Frontier::auto_switch() {
  const std::uint64_t threshold = n_ / kDensifyFraction;
  if (!dense_ && count_ > threshold) {
    make_dense();
  } else if (dense_ && count_ <= threshold) {
    ensure_sparse();
  }
}

void Frontier::merge(Frontier& other) {
  GA_ASSERT(n_ == other.n_);
  if (other.empty()) return;
  other.ensure_sparse();
  if (dense_) {
    for (vid_t v : other.items()) {
      if (!bits_.get(v)) {
        bits_.set(v);
        ++count_;
      }
    }
  } else {
    for (vid_t v : other.items()) add(v);
  }
}

void Frontier::clear() {
  bits_.reset();
  items_.clear();
  count_ = 0;
  dense_ = false;
}

}  // namespace ga::engine
