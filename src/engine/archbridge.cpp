#include "engine/archbridge.hpp"

#include <cstdio>

#include "archmodel/configs.hpp"

namespace ga::engine {

archmodel::StepDemand to_step_demand(const StepStats& s,
                                     const std::string& name,
                                     const DemandModel& model) {
  archmodel::StepDemand d;
  d.name = name;
  d.ops_gop = (model.ops_per_edge * static_cast<double>(s.edges_traversed) +
               model.ops_per_vertex * static_cast<double>(s.vertices_touched)) /
              1e9;
  d.mem_gb = static_cast<double>(s.bytes_moved) / 1e9;
  d.mem_irregularity = s.direction == Direction::kPush
                           ? model.push_irregularity
                           : model.pull_irregularity;
  d.disk_gb = 0.0;
  d.net_gb = 0.0;
  return d;
}

std::vector<archmodel::StepDemand> to_step_demands(const Telemetry& t,
                                                   const std::string& prefix,
                                                   const DemandModel& model) {
  std::vector<archmodel::StepDemand> out;
  out.reserve(t.num_steps());
  for (const StepStats& s : t.steps()) {
    out.push_back(
        to_step_demand(s, prefix + "." + std::to_string(s.step), model));
  }
  return out;
}

archmodel::ModelResult evaluate_measured(const archmodel::MachineConfig& m,
                                         const Telemetry& t,
                                         const std::string& prefix,
                                         const DemandModel& model) {
  return archmodel::evaluate(m, to_step_demands(t, prefix, model));
}

archmodel::Resource step_bound_resource(const StepStats& s,
                                        const DemandModel& model) {
  static const archmodel::MachineConfig baseline = archmodel::baseline_2012();
  const archmodel::ModelResult r =
      archmodel::evaluate(baseline, {to_step_demand(s, "step", model)});
  return r.steps.empty() ? archmodel::Resource::kCompute
                         : r.steps.front().bounding;
}

obs::BoundResource to_obs_resource(archmodel::Resource r) {
  switch (r) {
    case archmodel::Resource::kCompute: return obs::BoundResource::kCompute;
    case archmodel::Resource::kMemory: return obs::BoundResource::kMemory;
    case archmodel::Resource::kDisk: return obs::BoundResource::kDisk;
    case archmodel::Resource::kNetwork: return obs::BoundResource::kNetwork;
  }
  return obs::BoundResource::kNone;
}

void obs_record_step(const StepStats& s) {
  if (!obs::enabled()) return;
  auto& reg = obs::MetricsRegistry::global();
  static obs::Counter& c_steps = reg.counter("engine.steps_total");
  static obs::Counter& c_edges = reg.counter("engine.edges_traversed_total");
  static obs::Counter& c_verts = reg.counter("engine.vertices_touched_total");
  static obs::Counter& c_bytes = reg.counter("engine.bytes_moved_total");
  static obs::Counter& c_push = reg.counter("engine.push_steps_total");
  static obs::Counter& c_pull = reg.counter("engine.pull_steps_total");
  static obs::Histogram& h_step = reg.histogram("engine.step_us");
  c_steps.add();
  c_edges.add(s.edges_traversed);
  c_verts.add(s.vertices_touched);
  c_bytes.add(s.bytes_moved);
  (s.direction == Direction::kPush ? c_push : c_pull).add();
  const double step_ms = s.seconds * 1e3;
  h_step.observe(s.seconds * 1e6);

  obs::Tracer& tracer = obs::Tracer::global();
  if (!tracer.active()) return;
  const obs::TraceContext parent = obs::ambient();
  if (!parent.valid()) return;
  char detail[128];
  std::snprintf(detail, sizeof(detail),
                "dir=%s frontier=%llu edges=%llu bytes=%llu",
                direction_name(s.direction),
                static_cast<unsigned long long>(s.frontier_size),
                static_cast<unsigned long long>(s.edges_traversed),
                static_cast<unsigned long long>(s.bytes_moved));
  tracer.emit_interval(parent, "engine.step", tracer.now_ms() - step_ms,
                       step_ms, to_obs_resource(step_bound_resource(s)),
                       core::StatusCode::kOk, detail);
}

}  // namespace ga::engine
