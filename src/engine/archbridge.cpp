#include "engine/archbridge.hpp"

namespace ga::engine {

archmodel::StepDemand to_step_demand(const StepStats& s,
                                     const std::string& name,
                                     const DemandModel& model) {
  archmodel::StepDemand d;
  d.name = name;
  d.ops_gop = (model.ops_per_edge * static_cast<double>(s.edges_traversed) +
               model.ops_per_vertex * static_cast<double>(s.vertices_touched)) /
              1e9;
  d.mem_gb = static_cast<double>(s.bytes_moved) / 1e9;
  d.mem_irregularity = s.direction == Direction::kPush
                           ? model.push_irregularity
                           : model.pull_irregularity;
  d.disk_gb = 0.0;
  d.net_gb = 0.0;
  return d;
}

std::vector<archmodel::StepDemand> to_step_demands(const Telemetry& t,
                                                   const std::string& prefix,
                                                   const DemandModel& model) {
  std::vector<archmodel::StepDemand> out;
  out.reserve(t.num_steps());
  for (const StepStats& s : t.steps()) {
    out.push_back(
        to_step_demand(s, prefix + "." + std::to_string(s.step), model));
  }
  return out;
}

archmodel::ModelResult evaluate_measured(const archmodel::MachineConfig& m,
                                         const Telemetry& t,
                                         const std::string& prefix,
                                         const DemandModel& model) {
  return archmodel::evaluate(m, to_step_demands(t, prefix, model));
}

}  // namespace ga::engine
