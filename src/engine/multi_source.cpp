#include "engine/multi_source.hpp"

#include <bit>

#include "core/timer.hpp"

namespace ga::engine {

MultiSourceBfsResult multi_source_bfs(const graph::CSRGraph& g,
                                      const std::vector<vid_t>& seeds,
                                      Telemetry* telem) {
  const std::size_t k = seeds.size();
  GA_CHECK(k >= 1 && k <= kMaxMultiSourceSeeds,
           "multi_source_bfs: need 1..64 seeds");
  const vid_t n = g.num_vertices();

  MultiSourceBfsResult out;
  out.num_seeds = k;
  out.dist.assign(static_cast<std::size_t>(n) * k, kInfDist);
  out.reached.assign(k, 0);

  // seen[v]: seeds that have reached v; frontier[v]: seeds whose wavefront
  // sits on v this level. The sparse `active` list keeps early levels cheap.
  std::vector<std::uint64_t> seen(n, 0), frontier(n, 0), next(n, 0);
  std::vector<vid_t> active, next_active;

  for (std::size_t s = 0; s < k; ++s) {
    const vid_t root = seeds[s];
    GA_CHECK(root < n, "multi_source_bfs: seed out of range");
    if (out.dist[static_cast<std::size_t>(root) * k + s] == kInfDist) {
      out.dist[static_cast<std::size_t>(root) * k + s] = 0;
      ++out.reached[s];
    }
    if (frontier[root] == 0) active.push_back(root);
    frontier[root] |= 1ULL << s;
    seen[root] |= 1ULL << s;
  }

  std::uint32_t level = 0;
  while (!active.empty()) {
    ++level;
    core::WallTimer timer;
    std::uint64_t edges = 0;
    next_active.clear();
    for (const vid_t u : active) {
      const std::uint64_t mask = frontier[u];
      for (const vid_t v : g.out_neighbors(u)) {
        ++edges;
        // Seeds arriving at v for the first time this level.
        const std::uint64_t fresh = mask & ~seen[v];
        if (fresh == 0) continue;
        if (next[v] == 0) next_active.push_back(v);
        next[v] |= fresh;
        seen[v] |= fresh;
      }
    }
    // Record distances for every (vertex, seed) first reached this level.
    for (const vid_t v : next_active) {
      std::uint64_t bits = next[v];
      const std::size_t base = static_cast<std::size_t>(v) * k;
      while (bits != 0) {
        const int s = std::countr_zero(bits);
        bits &= bits - 1;
        out.dist[base + static_cast<std::size_t>(s)] = level;
        ++out.reached[static_cast<std::size_t>(s)];
      }
    }
    StepStats st;
    st.direction = Direction::kPush;
    st.frontier_size = active.size();
    st.vertices_touched = active.size();
    st.edges_traversed = edges;
    // One mask word read+written per inspected arc endpoint plus the
    // offset pair per frontier vertex — same word-granular accounting as
    // the single-source engine.
    st.bytes_moved = active.size() * 2 * sizeof(eid_t) +
                     edges * (sizeof(vid_t) + 2 * sizeof(std::uint64_t));
    st.seconds = timer.seconds();
    out.steps.push_back(st);
    if (telem) telem->record(st);

    for (const vid_t u : active) frontier[u] = 0;
    active.swap(next_active);
    for (const vid_t v : active) {
      frontier[v] = next[v];
      next[v] = 0;
    }
  }
  return out;
}

}  // namespace ga::engine
