// Per-super-step resource telemetry for the traversal engine. Every
// edge_map/vertex_map super-step appends one StepStats record: how many
// vertices and arcs it touched, a modeled byte count for memory traffic,
// which direction (push/pull) the engine chose, and wall time. These are
// the measured counterparts of the paper's Fig. 3 per-step resource bars;
// engine/archbridge.hpp converts them into archmodel::StepDemand records
// so measured profiles can be run through the analytic bounding-resource
// model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace ga::engine {

enum class Direction : std::uint8_t { kPush, kPull };
const char* direction_name(Direction d);

/// Counters for one traversal super-step (one edge_map or vertex_map call).
struct StepStats {
  std::uint32_t step = 0;             // index within the owning Telemetry
  Direction direction = Direction::kPush;
  std::uint64_t frontier_size = 0;    // vertices in the input frontier
  std::uint64_t vertices_touched = 0; // vertices whose state was examined
  std::uint64_t edges_traversed = 0;  // arcs inspected (TEPS accounting)
  std::uint64_t bytes_moved = 0;      // modeled word-granular memory traffic
  double seconds = 0.0;               // wall time of the step
};

/// Append-only log of super-steps with aggregate accessors. Kernels merge
/// per-thread counters into one StepStats before recording, so a Telemetry
/// is only ever written from the coordinating thread.
class Telemetry {
 public:
  void record(StepStats s) {
    s.step = static_cast<std::uint32_t>(steps_.size());
    steps_.push_back(s);
  }

  const std::vector<StepStats>& steps() const { return steps_; }
  bool empty() const { return steps_.empty(); }
  std::size_t num_steps() const { return steps_.size(); }
  void clear() { steps_.clear(); }

  std::uint64_t total_edges() const;
  std::uint64_t total_vertices() const;
  std::uint64_t total_bytes() const;
  double total_seconds() const;
  std::size_t push_steps() const;
  std::size_t pull_steps() const;

 private:
  std::vector<StepStats> steps_;
};

/// Human-readable per-step table (bench/CLI reporting).
std::string format_telemetry(const Telemetry& t);

/// One named monotonic counter, exported by a subsystem for health
/// reporting (serving cache hits, scheduler admissions, snapshot epochs).
struct Counter {
  std::string name;
  std::uint64_t value = 0;
};

/// A subsystem's counters under one heading. The serving layer's cache,
/// scheduler, and snapshot manager each return one group; benches print
/// them with format_counter_groups alongside stream/stage health.
struct CounterGroup {
  std::string name;
  std::vector<Counter> counters;
};

/// Render groups as an indented "name  value" table (one block per group).
std::string format_counter_groups(const std::vector<CounterGroup>& groups);

/// Publish counter groups into the metrics registry as gauges named
/// `<prefix><group>.<counter>` (names lowercased, spaces → '_'). Values are
/// point-in-time snapshots of the owner's counters, so gauges (idempotent
/// set) rather than registry counters; republishing refreshes them. This is
/// how the serving-health and stream-health surfaces become registry views.
void publish_counter_groups(
    const std::vector<CounterGroup>& groups, const std::string& prefix,
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global());

}  // namespace ga::engine
