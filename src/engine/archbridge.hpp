// Bridge from measured traversal telemetry to the paper's analytic
// resource-bound model (Fig. 3): each StepStats super-step becomes an
// archmodel::StepDemand whose compute/memory demands come from real
// counters instead of hand-calibrated coefficients, so a measured kernel
// profile can be evaluated on any MachineConfig and its bounding resource
// compared against the paper's predictions.
#pragma once

#include <string>
#include <vector>

#include "archmodel/nora_model.hpp"
#include "engine/telemetry.hpp"
#include "obs/trace.hpp"

namespace ga::engine {

/// Conversion coefficients, overridable per call site.
struct DemandModel {
  /// Instructions charged per inspected arc (index arithmetic, compare,
  /// branch, state update).
  double ops_per_edge = 8.0;
  /// Instructions charged per examined vertex (frontier pop / cond test).
  double ops_per_vertex = 4.0;
  /// Memory-access irregularity by direction: push scatters updates to
  /// random targets; pull streams vertices sequentially but probes the
  /// frontier bitmap and reverse arcs randomly.
  double push_irregularity = 0.9;
  double pull_irregularity = 0.6;
};

/// One measured super-step as a Fig. 3 demand record (disk and network
/// demands are zero: the engine is an in-memory, single-node traversal).
archmodel::StepDemand to_step_demand(const StepStats& s,
                                     const std::string& name,
                                     const DemandModel& model = {});

/// All super-steps, named `prefix.<index>`.
std::vector<archmodel::StepDemand> to_step_demands(
    const Telemetry& t, const std::string& prefix,
    const DemandModel& model = {});

/// Feed measured counters into the analytic bounding-resource model:
/// per-step resource seconds and the bounding resource on machine `m`.
archmodel::ModelResult evaluate_measured(const archmodel::MachineConfig& m,
                                         const Telemetry& t,
                                         const std::string& prefix,
                                         const DemandModel& model = {});

/// Fig. 3 bounding resource of one measured super-step, evaluated on the
/// paper's 2012 baseline machine.
archmodel::Resource step_bound_resource(const StepStats& s,
                                        const DemandModel& model = {});

/// archmodel::Resource → the obs layer's mirrored taxonomy.
obs::BoundResource to_obs_resource(archmodel::Resource r);

/// Observability sink for one finished super-step: bumps the engine.*
/// registry instruments and — when a trace is active on this thread —
/// emits an `engine.step` span under the ambient context, attributed with
/// the step's bounding resource. One obs::enabled() load when disabled.
void obs_record_step(const StepStats& s);

}  // namespace ga::engine
