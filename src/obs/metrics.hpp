// Process-wide metrics registry — the one place every subsystem's health
// numbers live. Three instrument kinds, all safe for concurrent update
// without locks after registration:
//
//   Counter    monotonic uint64 (relaxed fetch_add)
//   Gauge      last-written double (relaxed store)
//   Histogram  fixed log2-bucket latency histogram with p50/p95/p99
//              extraction (relaxed per-bucket fetch_add)
//
// Registration (name -> instrument) takes a mutex once; instrument
// pointers are stable for the registry's lifetime, so hot paths cache the
// reference and never touch the map again. `MetricsRegistry::global()` is
// the process registry that the exposition API (obs/exposition.hpp), the
// `ga_cli metrics` command, and the benches read; tests build private
// instances.
//
// Disable story (two levels):
//   * runtime: obs::set_enabled(false) — instrumentation sites check
//     obs::enabled() (one relaxed atomic load) and skip.
//   * compile-out: -DGA_OBS_NOOP makes enabled() constexpr-false so the
//     guarded code folds away entirely; tools/ci.sh uses such a build as
//     the zero-instrumentation baseline for the ≤2% overhead gate.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ga::obs {

#ifdef GA_OBS_NOOP
inline constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}
#else
namespace detail {
inline std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{true};
  return flag;
}
}  // namespace detail
inline bool enabled() {
  return detail::enabled_flag().load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}
#endif

class Counter {
 public:
  void add(std::uint64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double x) { v_.store(x, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Latency histogram over fixed log2 buckets. Bucket b holds observations
/// in [2^(b-1), 2^b) of the recorded unit (by convention microseconds for
/// *_us metrics, milliseconds for *_ms); bucket 0 holds values < 1.
/// Percentiles interpolate linearly inside the winning bucket, so the
/// error is bounded by the bucket width (a factor-of-2 band) — exactly the
/// resolution needed to tell a p99 regression from noise without keeping
/// raw samples.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 48;

  void observe(double v);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const auto c = count();
    return c == 0 ? 0.0 : sum() / static_cast<double>(c);
  }
  /// q in (0,1]; linear interpolation within the selected bucket.
  double percentile(double q) const;
  std::uint64_t bucket_count(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  void reset();

  static double bucket_lower(std::size_t b);  // inclusive lower bound

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// One exposition-ready sample (histograms pre-extract the percentiles).
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;  // counter value / histogram count
  double value = 0.0;       // gauge value / histogram sum
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;  // histograms only
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry. Never destroyed before exit.
  static MetricsRegistry& global();

  /// Find-or-create; returned references stay valid for the registry's
  /// lifetime. A name registered as one kind must not be re-requested as
  /// another (asserts).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Point-in-time view of every instrument, sorted by name (the
  /// deterministic order the text exposition and its golden test rely on).
  std::vector<MetricSample> snapshot() const;

  /// Zero every instrument's value. Instruments stay registered, so cached
  /// references held by instrumentation sites remain valid.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace ga::obs
