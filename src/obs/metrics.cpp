#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "core/common.hpp"

namespace ga::obs {

void Histogram::observe(double v) {
  std::size_t b = 0;
  if (v >= 1.0) {
    // bucket b >= 1 holds [2^(b-1), 2^b); integer log2 of the clamped value.
    const auto iv = static_cast<std::uint64_t>(v);
    b = std::min<std::size_t>(kBuckets - 1,
                              1 + (63 - std::countl_zero(iv | 1ull)));
  }
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // atomic<double>::fetch_add is C++20; keep the CAS loop for toolchains
  // where it lowers to a libatomic call anyway.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

double Histogram::bucket_lower(std::size_t b) {
  return b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
}

double Histogram::percentile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample (1-based, ceil — the classic nearest-rank rule).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t c = buckets_[b].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (seen + c >= rank) {
      const double lo = bucket_lower(b);
      const double hi = b + 1 < kBuckets ? bucket_lower(b + 1) : lo * 2.0;
      // Linear interpolation by rank position within the bucket.
      const double frac =
          (static_cast<double>(rank - seen) - 0.5) / static_cast<double>(c);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen += c;
  }
  return bucket_lower(kBuckets - 1) * 2.0;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* reg = new MetricsRegistry();  // never destroyed
  return *reg;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  GA_ASSERT(gauges_.find(name) == gauges_.end() &&
            histograms_.find(name) == histograms_.end());
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  GA_ASSERT(counters_.find(name) == counters_.end() &&
            histograms_.find(name) == histograms_.end());
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  GA_ASSERT(counters_.find(name) == counters_.end() &&
            gauges_.find(name) == gauges_.end());
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kCounter;
    s.count = c->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kGauge;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kHistogram;
    s.count = h->count();
    s.value = h->sum();
    s.p50 = h->percentile(0.50);
    s.p95 = h->percentile(0.95);
    s.p99 = h->percentile(0.99);
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
}

}  // namespace ga::obs
