#include "obs/exposition.hpp"

#include <cstdio>
#include <cstring>

#include "core/common.hpp"

namespace ga::obs {

void JsonWriter::pre_value() {
  if (have_key_) {
    have_key_ = false;
    return;
  }
  if (!levels_.empty()) {
    if (levels_.back()) out_ += ',';
    levels_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_ += '{';
  levels_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  GA_ASSERT(!levels_.empty() && !have_key_);
  levels_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_ += '[';
  levels_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  GA_ASSERT(!levels_.empty() && !have_key_);
  levels_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  GA_ASSERT(!levels_.empty() && !have_key_);
  if (levels_.back()) out_ += ',';
  levels_.back() = true;
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  have_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  pre_value();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  out_ += number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  pre_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  pre_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  pre_value();
  out_ += "null";
  return *this;
}

std::string JsonWriter::escape(std::string_view s) {
  std::string esc;
  esc.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': esc += "\\\""; break;
      case '\\': esc += "\\\\"; break;
      case '\n': esc += "\\n"; break;
      case '\r': esc += "\\r"; break;
      case '\t': esc += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          esc += buf;
        } else {
          esc.push_back(c);
        }
    }
  }
  return esc;
}

std::string JsonWriter::number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  // JSON has no inf/nan literals; clamp to null.
  if (std::strstr(buf, "inf") || std::strstr(buf, "nan")) return "null";
  return buf;
}

std::string sample_to_text(const MetricSample& s) {
  std::string line;
  switch (s.kind) {
    case MetricKind::kCounter:
      line = "counter " + s.name + ' ' + std::to_string(s.count);
      break;
    case MetricKind::kGauge:
      line = "gauge " + s.name + ' ' + JsonWriter::number(s.value);
      break;
    case MetricKind::kHistogram:
      line = "histogram " + s.name + " count=" + std::to_string(s.count) +
             " sum=" + JsonWriter::number(s.value) +
             " p50=" + JsonWriter::number(s.p50) +
             " p95=" + JsonWriter::number(s.p95) +
             " p99=" + JsonWriter::number(s.p99);
      break;
  }
  return line;
}

std::string expose_text(const MetricsRegistry& reg) {
  std::string out = "# ga_metrics schema_version=" +
                    std::to_string(kSchemaVersion) + '\n';
  for (const MetricSample& s : reg.snapshot()) {
    out += sample_to_text(s);
    out += '\n';
  }
  return out;
}

std::string expose_json(const MetricsRegistry& reg, const Tracer* tracer) {
  JsonWriter w;
  w.begin_object();
  w.key("schema_version").value(kSchemaVersion);
  w.key("metrics").begin_array();
  for (const MetricSample& s : reg.snapshot()) {
    w.begin_object();
    w.key("name").value(s.name);
    switch (s.kind) {
      case MetricKind::kCounter:
        w.key("kind").value("counter");
        w.key("count").value(s.count);
        break;
      case MetricKind::kGauge:
        w.key("kind").value("gauge");
        w.key("value").value(s.value);
        break;
      case MetricKind::kHistogram:
        w.key("kind").value("histogram");
        w.key("count").value(s.count);
        w.key("sum").value(s.value);
        w.key("p50").value(s.p50);
        w.key("p95").value(s.p95);
        w.key("p99").value(s.p99);
        break;
    }
    w.end_object();
  }
  w.end_array();
  if (tracer != nullptr) {
    w.key("tracer").begin_object();
    w.key("active").value(tracer->active());
    w.key("traces_started").value(tracer->traces_started());
    w.key("spans_recorded").value(tracer->spans_recorded());
    w.key("spans_dropped").value(tracer->spans_dropped());
    w.end_object();
  }
  w.end_object();
  return w.str();
}

}  // namespace ga::obs
