// Hierarchical query tracing with per-span resource attribution — the
// end-to-end counterpart of the per-step StepStats telemetry. A trace is a
// tree of spans (query → admission → snapshot lease → kernel exec →
// engine steps); every span carries a wall-clock interval, a
// core::StatusCode, a free-form detail string, and the Fig. 3
// bounding-resource verdict for the work it covers, so one served query
// can be read top-to-bottom with the same taxonomy the analytic
// architecture model uses.
//
// Design constraints, in order:
//   1. Zero cost when tracing is off: `Tracer::active()` is one relaxed
//      load (constexpr-false under GA_OBS_NOOP); ScopedSpan holds no
//      allocations until the trace is live.
//   2. No open-span bookkeeping: spans are recorded only when they END
//      (ScopedSpan destruction or an explicit retroactive emit() for
//      intervals measured elsewhere, e.g. queue wait). The tree is
//      reassembled from parent ids at formatting time.
//   3. Context travels explicitly (TraceContext in QueryDesc) across
//      thread/queue hops, and ambiently (thread_local) into code that
//      cannot grow a parameter, like the traversal engine's edge_map.
//
// Finished spans land in a bounded ring (default 8192); a reader that
// wants a particular trace formats it before ~8k further spans arrive.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.hpp"
#include "obs/metrics.hpp"

namespace ga::obs {

/// Fig. 3 bounding-resource taxonomy (mirrors archmodel::Resource so the
/// obs layer does not depend on the architecture model).
enum class BoundResource : std::uint8_t {
  kNone = 0,  // not attributed
  kCompute,
  kMemory,
  kDisk,
  kNetwork,
};
const char* bound_resource_name(BoundResource r);

/// Addressing for one node of a trace tree. trace_id 0 = "no trace".
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool valid() const { return trace_id != 0; }
};

/// One finished span.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // 0 = root
  std::string name;
  double start_ms = 0.0;     // since tracer epoch
  double duration_ms = 0.0;
  BoundResource resource = BoundResource::kNone;
  core::StatusCode status = core::StatusCode::kOk;
  std::string detail;  // "epoch=7 dir=pull edges=123…"
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 8192);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static Tracer& global();

  /// Master switch. Off by default: traces are demo/debug artifacts, not
  /// always-on accounting (that is the metrics registry's job).
  void set_active(bool on) {
#ifndef GA_OBS_NOOP
    active_.store(on, std::memory_order_relaxed);
#else
    (void)on;
#endif
  }
  bool active() const {
#ifdef GA_OBS_NOOP
    return false;
#else
    return active_.load(std::memory_order_relaxed);
#endif
  }

  /// Fresh ids (never 0). new_trace_id also counts traces_started.
  std::uint64_t new_trace_id();
  std::uint64_t new_span_id();

  /// Milliseconds since this tracer's construction (span timebase).
  double now_ms() const;

  /// Record a finished span. `parent` addresses the enclosing span; the
  /// span becomes a root when parent.span_id == 0.
  void emit(const TraceContext& parent, std::uint64_t span_id,
            std::string_view name, double start_ms, double duration_ms,
            BoundResource resource, core::StatusCode status,
            std::string detail);

  /// Retroactive child span for an interval measured elsewhere (allocates
  /// its own span id; returns it so grandchildren could attach).
  std::uint64_t emit_interval(const TraceContext& parent,
                              std::string_view name, double start_ms,
                              double duration_ms,
                              BoundResource resource = BoundResource::kNone,
                              core::StatusCode status = core::StatusCode::kOk,
                              std::string detail = {});

  /// All retained spans of one trace, in emission order.
  std::vector<SpanRecord> spans_of(std::uint64_t trace_id) const;

  /// Render one trace as an indented tree: children under parents,
  /// siblings by start time, each line showing duration, bounding
  /// resource, status (when not OK), and detail.
  std::string format_tree(std::uint64_t trace_id) const;

  std::uint64_t traces_started() const {
    return next_trace_.load(std::memory_order_relaxed) - 1;
  }
  std::uint64_t spans_recorded() const {
    return spans_recorded_.load(std::memory_order_relaxed);
  }
  std::uint64_t spans_dropped() const {
    return spans_dropped_.load(std::memory_order_relaxed);
  }

  void clear();

 private:
#ifndef GA_OBS_NOOP
  std::atomic<bool> active_{false};
#endif
  std::atomic<std::uint64_t> next_trace_{1};
  std::atomic<std::uint64_t> next_span_{1};
  std::atomic<std::uint64_t> spans_recorded_{0};
  std::atomic<std::uint64_t> spans_dropped_{0};
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;  // capacity_ slots, ring_head_ = next write
  std::size_t capacity_;
  std::size_t ring_head_ = 0;
  std::size_t ring_size_ = 0;
};

/// RAII span: captures start on construction, emits on destruction (only
/// if the tracer was active at construction). With an invalid parent it
/// starts a new trace and becomes its root.
class ScopedSpan {
 public:
  ScopedSpan(std::string_view name, const TraceContext& parent,
             Tracer& tracer = Tracer::global());
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Context for children of this span (invalid when tracing is off).
  TraceContext context() const { return ctx_; }
  bool live() const { return ctx_.valid(); }

  /// Emit now (no-op if not live); destruction then does nothing. For
  /// callers that need the finished span visible before scope exit, e.g.
  /// to format its trace tree.
  void finish();

  void set_resource(BoundResource r) { resource_ = r; }
  void set_status(core::StatusCode s) { status_ = s; }
  void set_detail(std::string d) { detail_ = std::move(d); }
  void append_detail(std::string_view d) {
    if (!detail_.empty()) detail_ += ' ';
    detail_ += d;
  }

 private:
  Tracer& tracer_;
  TraceContext ctx_;       // this span's address (valid only when live)
  std::uint64_t parent_id_ = 0;
  std::string name_;
  double start_ms_ = 0.0;
  BoundResource resource_ = BoundResource::kNone;
  core::StatusCode status_ = core::StatusCode::kOk;
  std::string detail_;
};

/// Ambient context: the innermost live span on this thread. Lets the
/// traversal engine attach per-step spans without a parameter through
/// every kernel signature.
TraceContext ambient();

/// RAII: set the thread's ambient context, restore the previous on exit.
class AmbientScope {
 public:
  explicit AmbientScope(const TraceContext& ctx);
  ~AmbientScope();
  AmbientScope(const AmbientScope&) = delete;
  AmbientScope& operator=(const AmbientScope&) = delete;

 private:
  TraceContext prev_;
};

}  // namespace ga::obs
