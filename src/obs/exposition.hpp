// Exposition: the one serialization surface for telemetry. Two formats:
//
//   * text  — `metric <kind> <name> <fields>` lines, sorted by name, stable
//             enough to golden-test and grep (`ga_cli metrics`).
//   * JSON  — schema_version-stamped document; the bench --json emitters
//             (bench/bench_json.hpp) and `ga_cli metrics --json` are built
//             on the same JsonWriter so every machine-readable artifact in
//             the repo shares one escaping/number-rendering policy.
//
// JsonWriter is a small streaming builder (explicit begin/end, comma
// management by nesting level). Numbers render as %.6g; JSON has no
// inf/nan literals, so those render as null.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ga::obs {

/// Version of every machine-readable telemetry document this repo emits
/// (metrics exposition and bench JSON alike). Bump when a field changes
/// meaning; additions are allowed within a version.
inline constexpr int kSchemaVersion = 2;

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);  // %.6g; inf/nan render as null
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  const std::string& str() const { return out_; }
  bool done() const { return levels_.empty() && !out_.empty(); }

  /// Shared rendering policy, reusable without a writer instance.
  static std::string escape(std::string_view s);
  static std::string number(double v);

 private:
  void pre_value();
  std::string out_;
  std::vector<bool> levels_;  // per nesting level: value already written?
  bool have_key_ = false;
};

/// Text exposition of a registry snapshot (sorted by metric name; the
/// format the golden-file test pins down).
std::string expose_text(const MetricsRegistry& reg = MetricsRegistry::global());

/// JSON exposition: {"schema_version":…, "metrics":[…], "tracer":{…}}.
/// Pass a tracer to include its span accounting; nullptr omits the block.
std::string expose_json(const MetricsRegistry& reg = MetricsRegistry::global(),
                        const Tracer* tracer = &Tracer::global());

/// One metric sample as a text exposition line (no trailing newline).
std::string sample_to_text(const MetricSample& s);

}  // namespace ga::obs
