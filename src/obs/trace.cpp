#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace ga::obs {

const char* bound_resource_name(BoundResource r) {
  switch (r) {
    case BoundResource::kNone: return "-";
    case BoundResource::kCompute: return "compute";
    case BoundResource::kMemory: return "memory";
    case BoundResource::kDisk: return "disk";
    case BoundResource::kNetwork: return "network";
  }
  return "?";
}

Tracer::Tracer(std::size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

Tracer& Tracer::global() {
  static Tracer* t = new Tracer();  // never destroyed
  return *t;
}

std::uint64_t Tracer::new_trace_id() {
  return next_trace_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Tracer::new_span_id() {
  return next_span_.fetch_add(1, std::memory_order_relaxed);
}

double Tracer::now_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::emit(const TraceContext& parent, std::uint64_t span_id,
                  std::string_view name, double start_ms, double duration_ms,
                  BoundResource resource, core::StatusCode status,
                  std::string detail) {
  if (!active() || parent.trace_id == 0) return;
  SpanRecord rec;
  rec.trace_id = parent.trace_id;
  rec.span_id = span_id;
  rec.parent_id = parent.span_id;
  rec.name = std::string(name);
  rec.start_ms = start_ms;
  rec.duration_ms = duration_ms;
  rec.resource = resource;
  rec.status = status;
  rec.detail = std::move(detail);
  std::lock_guard<std::mutex> lk(mu_);
  if (ring_size_ == capacity_) {
    spans_dropped_.fetch_add(1, std::memory_order_relaxed);
  } else {
    ++ring_size_;
  }
  ring_[ring_head_] = std::move(rec);
  ring_head_ = (ring_head_ + 1) % capacity_;
  spans_recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Tracer::emit_interval(const TraceContext& parent,
                                    std::string_view name, double start_ms,
                                    double duration_ms, BoundResource resource,
                                    core::StatusCode status,
                                    std::string detail) {
  if (!active() || !parent.valid()) return 0;
  const std::uint64_t id = new_span_id();
  emit(parent, id, name, start_ms, duration_ms, resource, status,
       std::move(detail));
  return id;
}

std::vector<SpanRecord> Tracer::spans_of(std::uint64_t trace_id) const {
  std::vector<SpanRecord> out;
  std::lock_guard<std::mutex> lk(mu_);
  // Oldest-first walk of the ring.
  const std::size_t start =
      ring_size_ == capacity_ ? ring_head_ : 0;
  for (std::size_t i = 0; i < ring_size_; ++i) {
    const SpanRecord& r = ring_[(start + i) % capacity_];
    if (r.trace_id == trace_id) out.push_back(r);
  }
  return out;
}

std::string Tracer::format_tree(std::uint64_t trace_id) const {
  const std::vector<SpanRecord> spans = spans_of(trace_id);
  if (spans.empty()) {
    return "trace " + std::to_string(trace_id) + ": no spans retained\n";
  }
  // children[parent_id] -> indices, siblings ordered by start time.
  std::vector<std::size_t> order(spans.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return spans[a].start_ms < spans[b].start_ms;
  });
  std::string out;
  char buf[256];
  // Recursive expansion without recursion: stack of (index, depth).
  auto children_of = [&](std::uint64_t parent) {
    std::vector<std::size_t> kids;
    for (std::size_t i : order) {
      if (spans[i].parent_id == parent) kids.push_back(i);
    }
    return kids;
  };
  std::vector<std::pair<std::size_t, int>> stack;
  const auto roots = children_of(0);
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.push_back({*it, 0});
  }
  while (!stack.empty()) {
    const auto [i, depth] = stack.back();
    stack.pop_back();
    const SpanRecord& s = spans[i];
    std::snprintf(buf, sizeof(buf), "%*s%-*s %9.3f ms", depth * 2, "",
                  std::max(1, 30 - depth * 2), s.name.c_str(),
                  s.duration_ms);
    out += buf;
    if (s.resource != BoundResource::kNone) {
      out += "  [";
      out += bound_resource_name(s.resource);
      out += "-bound]";
    }
    if (s.status != core::StatusCode::kOk) {
      out += "  status=";
      out += core::status_code_name(s.status);
    }
    if (!s.detail.empty()) {
      out += "  ";
      out += s.detail;
    }
    out += '\n';
    const auto kids = children_of(s.span_id);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back({*it, depth + 1});
    }
  }
  return out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  ring_head_ = 0;
  ring_size_ = 0;
}

ScopedSpan::ScopedSpan(std::string_view name, const TraceContext& parent,
                       Tracer& tracer)
    : tracer_(tracer) {
  if (!tracer_.active()) return;
  ctx_.trace_id =
      parent.valid() ? parent.trace_id : tracer_.new_trace_id();
  ctx_.span_id = tracer_.new_span_id();
  parent_id_ = parent.valid() ? parent.span_id : 0;
  name_ = std::string(name);
  start_ms_ = tracer_.now_ms();
}

ScopedSpan::~ScopedSpan() { finish(); }

void ScopedSpan::finish() {
  if (!ctx_.valid()) return;
  TraceContext parent;
  parent.trace_id = ctx_.trace_id;
  parent.span_id = parent_id_;
  tracer_.emit(parent, ctx_.span_id, name_, start_ms_,
               tracer_.now_ms() - start_ms_, resource_, status_,
               std::move(detail_));
  ctx_ = {};  // emitted; destruction becomes a no-op
}

namespace {
thread_local TraceContext g_ambient;
}  // namespace

TraceContext ambient() { return g_ambient; }

AmbientScope::AmbientScope(const TraceContext& ctx) : prev_(g_ambient) {
  g_ambient = ctx;
}

AmbientScope::~AmbientScope() { g_ambient = prev_; }

}  // namespace ga::obs
