#include "store/segment.hpp"

#include <cstring>

#include "core/hash.hpp"

namespace ga::store {
namespace {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

// Bounds-checked LEB128 read; false on truncation or >64-bit overflow.
bool get_varint(const std::uint8_t* data, std::size_t size, std::size_t& pos,
                std::uint64_t& v) {
  v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (pos >= size) return false;
    const std::uint8_t byte = data[pos++];
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return true;
  }
  return false;
}

}  // namespace

EncodedSegment encode_segment(const SegmentCSR& seg) {
  GA_ASSERT(seg.offsets.size() == static_cast<std::size_t>(seg.count) + 1);
  EncodedSegment block;
  block.first_vertex = seg.first_vertex;
  block.count = seg.count;
  block.arcs = seg.num_arcs();
  block.weighted = seg.weighted;
  // Exact re-decoded footprint (decode reserves tightly), not the source
  // segment's bytes() — build-time fills carry push_back capacity slack
  // that would inflate every admission estimate.
  block.decoded_bytes = (seg.offsets.size() + seg.targets.size()) * 4 +
                        seg.weights.size() * sizeof(float) +
                        sizeof(SegmentCSR);
  block.payload.reserve(seg.targets.size() + seg.count + 8);
  for (vid_t local = 0; local < seg.count; ++local) {
    const std::uint32_t begin = seg.offsets[local];
    const std::uint32_t end = seg.offsets[local + 1];
    put_varint(block.payload, end - begin);
    vid_t prev = 0;
    for (std::uint32_t i = begin; i < end; ++i) {
      const vid_t t = seg.targets[i];
      if (i == begin) {
        put_varint(block.payload, t);
      } else {
        GA_ASSERT(t >= prev);  // sorted-run invariant; deltas must be >= 0
        put_varint(block.payload, t - prev);
      }
      prev = t;
    }
    if (seg.weighted && end > begin) {
      const std::size_t at = block.payload.size();
      block.payload.resize(at + (end - begin) * sizeof(float));
      std::memcpy(block.payload.data() + at, seg.weights.data() + begin,
                  (end - begin) * sizeof(float));
    }
  }
  block.payload.shrink_to_fit();
  block.crc = core::crc32(block.payload.data(), block.payload.size());
  return block;
}

core::StatusOr<SegmentCSR> decode_segment(const EncodedSegment& block) {
  const std::uint32_t crc =
      core::crc32(block.payload.data(), block.payload.size());
  if (crc != block.crc) {
    return core::Status(core::StatusCode::kDataLoss,
                        "segment [" + std::to_string(block.first_vertex) +
                            ", +" + std::to_string(block.count) +
                            "): cold block CRC mismatch (stored " +
                            std::to_string(block.crc) + ", computed " +
                            std::to_string(crc) + ")");
  }
  auto malformed = [&](const char* what) {
    return core::Status(core::StatusCode::kDataLoss,
                        "segment [" + std::to_string(block.first_vertex) +
                            ", +" + std::to_string(block.count) +
                            "): malformed cold block (" + what + ")");
  };
  SegmentCSR seg;
  seg.first_vertex = block.first_vertex;
  seg.count = block.count;
  seg.weighted = block.weighted;
  seg.offsets.reserve(block.count + 1);
  seg.offsets.push_back(0);
  seg.targets.reserve(block.arcs);
  if (block.weighted) seg.weights.reserve(block.arcs);
  const std::uint8_t* data = block.payload.data();
  const std::size_t size = block.payload.size();
  std::size_t pos = 0;
  for (vid_t local = 0; local < block.count; ++local) {
    std::uint64_t deg = 0;
    if (!get_varint(data, size, pos, deg)) return malformed("degree varint");
    if (seg.targets.size() + deg > block.arcs) return malformed("arc overrun");
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < deg; ++i) {
      std::uint64_t d = 0;
      if (!get_varint(data, size, pos, d)) return malformed("target varint");
      const std::uint64_t t = (i == 0) ? d : prev + d;
      if (t > 0xffffffffull) return malformed("target out of vid_t range");
      seg.targets.push_back(static_cast<vid_t>(t));
      prev = t;
    }
    if (block.weighted && deg > 0) {
      if (pos + deg * sizeof(float) > size) return malformed("weight bytes");
      const std::size_t at = seg.weights.size();
      seg.weights.resize(at + deg);
      std::memcpy(seg.weights.data() + at, data + pos, deg * sizeof(float));
      pos += deg * sizeof(float);
    }
    seg.offsets.push_back(static_cast<std::uint32_t>(seg.targets.size()));
  }
  if (pos != size) return malformed("trailing bytes");
  if (seg.num_arcs() != block.arcs) return malformed("arc count mismatch");
  return seg;
}

}  // namespace ga::store
