#include "store/epoch_log.hpp"

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "obs/metrics.hpp"
#include "resilience/fault_injection.hpp"
#include "store/delta_summary.hpp"
#include "store/versioned_store.hpp"

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace ga::store {

namespace fs = std::filesystem;

namespace {

// 'GAEPCKP2': version 2 moved the header fields (epoch, nbytes) under the
// CRC so header bit rot fails closed instead of mis-aiming recovery.
constexpr char kCheckpointMagic[8] = {'G', 'A', 'E', 'P', 'C', 'K', 'P', '2'};

double us_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

template <typename T>
void put(std::vector<char>* out, const T& v) {
  const auto* p = reinterpret_cast<const char*>(&v);
  out->insert(out->end(), p, p + sizeof(T));
}

template <typename T>
void put_vec(std::vector<char>* out, const std::vector<T>& v) {
  put(out, static_cast<std::uint64_t>(v.size()));
  const auto* p = reinterpret_cast<const char*>(v.data());
  out->insert(out->end(), p, p + v.size() * sizeof(T));
}

template <typename T>
T get(const char* data, std::size_t len, std::size_t* at) {
  GA_CHECK(*at + sizeof(T) <= len, "epoch log: truncated payload");
  T v;
  std::memcpy(&v, data + *at, sizeof(T));
  *at += sizeof(T);
  return v;
}

template <typename T>
std::vector<T> get_vec(const char* data, std::size_t len, std::size_t* at) {
  const auto count = get<std::uint64_t>(data, len, &*at);
  GA_CHECK(count <= (len - *at) / sizeof(T), "epoch log: vector past payload");
  std::vector<T> v(count);
  std::memcpy(v.data(), data + *at, count * sizeof(T));
  *at += count * sizeof(T);
  return v;
}

}  // namespace

// --- epoch record payload codec --------------------------------------------

void encode_epoch_payload(const DeltaBatch& batch, const DeltaSummary& summary,
                          std::vector<char>* out) {
  std::vector<char> batch_bytes;
  batch.encode(&batch_bytes);
  put(out, static_cast<std::uint32_t>(batch_bytes.size()));
  out->insert(out->end(), batch_bytes.begin(), batch_bytes.end());
  put(out, summary.epoch);
  put(out, summary.weight_updates);
  put(out, summary.vertex_growth);
  put_vec(out, summary.changed_vertices);
  put_vec(out, summary.inserted_arcs);
  put_vec(out, summary.deleted_arcs);
  put_vec(out, summary.property_vertices);
}

void decode_epoch_payload(const char* data, std::size_t len, DeltaBatch* batch,
                          DeltaSummary* summary) {
  std::size_t at = 0;
  const auto batch_len = get<std::uint32_t>(data, len, &at);
  GA_CHECK(batch_len <= len - at, "epoch log: batch bytes past payload");
  *batch = DeltaBatch::decode(data + at, batch_len);
  at += batch_len;
  summary->epoch = get<std::uint64_t>(data, len, &at);
  summary->weight_updates = get<eid_t>(data, len, &at);
  summary->vertex_growth = get<vid_t>(data, len, &at);
  summary->changed_vertices = get_vec<vid_t>(data, len, &at);
  summary->inserted_arcs = get_vec<std::pair<vid_t, vid_t>>(data, len, &at);
  summary->deleted_arcs = get_vec<std::pair<vid_t, vid_t>>(data, len, &at);
  summary->property_vertices = get_vec<vid_t>(data, len, &at);
  GA_CHECK(at == len, "epoch log: trailing bytes in epoch payload");
}

// --- checkpoint image -------------------------------------------------------

bool load_checkpoint(const std::string& dir, CheckpointImage* out) {
  const std::string path = EpochLog::checkpoint_path(dir);
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return false;
  char magic[sizeof(kCheckpointMagic)];
  is.read(magic, sizeof(magic));
  GA_CHECK(is.good() && std::memcmp(magic, kCheckpointMagic, sizeof(magic)) == 0,
           "epoch log: bad checkpoint magic in " + dir);
  std::uint64_t epoch = 0, nbytes = 0;
  std::uint32_t crc = 0;
  is.read(reinterpret_cast<char*>(&epoch), sizeof(epoch));
  is.read(reinterpret_cast<char*>(&nbytes), sizeof(nbytes));
  is.read(reinterpret_cast<char*>(&crc), sizeof(crc));
  GA_CHECK(is.good(), "epoch log: truncated checkpoint header in " + dir);
  // Bound the length field against the file BEFORE sizing an allocation
  // with it: a bit-rotted nbytes must fail like any other corruption, not
  // as a multi-GB std::bad_alloc. A rotted-but-plausible length still
  // fails closed below — the CRC covers the header fields too.
  constexpr std::uint64_t kHeaderBytes =
      sizeof(kCheckpointMagic) + sizeof(epoch) + sizeof(nbytes) + sizeof(crc);
  const std::uint64_t fsize = resilience::file_size(path);
  GA_CHECK(fsize >= kHeaderBytes && nbytes <= fsize - kHeaderBytes,
           "epoch log: checkpoint length field exceeds file in " + dir);
  std::vector<char> bytes(nbytes);
  is.read(bytes.data(), static_cast<std::streamsize>(nbytes));
  GA_CHECK(is.good(), "epoch log: truncated checkpoint body in " + dir);
  std::uint32_t actual = core::crc32(&epoch, sizeof(epoch));
  actual = core::crc32(&nbytes, sizeof(nbytes), actual);
  actual = core::crc32(bytes.data(), bytes.size(), actual);
  GA_CHECK(actual == crc, "epoch log: checkpoint CRC mismatch in " + dir);

  const char* d = bytes.data();
  const std::size_t len = bytes.size();
  std::size_t at = 0;
  const bool directed = get<std::uint8_t>(d, len, &at) != 0;
  auto offsets = get_vec<eid_t>(d, len, &at);
  auto targets = get_vec<vid_t>(d, len, &at);
  auto weights = get_vec<float>(d, len, &at);
  auto props = get_vec<std::pair<vid_t, float>>(d, len, &at);
  GA_CHECK(at == len, "epoch log: trailing bytes in checkpoint body");

  out->epoch = epoch;
  out->base = std::make_shared<const graph::CSRGraph>(
      std::move(offsets), std::move(targets), std::move(weights), directed);
  out->props =
      props.empty()
          ? nullptr
          : std::make_shared<const std::vector<std::pair<vid_t, float>>>(
                std::move(props));
  return true;
}

// --- EpochLog ---------------------------------------------------------------

std::string EpochLog::log_path(const std::string& dir) {
  return dir + "/epochs.log";
}
std::string EpochLog::checkpoint_path(const std::string& dir) {
  return dir + "/checkpoint.gsc";
}

EpochLog::EpochLog(EpochLogOptions opts) : opts_(std::move(opts)) {
  GA_CHECK(!opts_.dir.empty(), "epoch log: empty directory");
  fs::create_directories(opts_.dir);

  // Resume state from an existing directory (the reopen-after-recovery
  // path): checkpoint epoch from the image header, last epoch from the log
  // tail. A torn tail is cut off now — those bytes were never
  // acknowledged, and appending after them would bury new records behind
  // an unscannable frame.
  CheckpointImage image;
  if (load_checkpoint(opts_.dir, &image)) {
    has_checkpoint_ = true;
    stats_.checkpoint_epoch = image.epoch;
    stats_.last_epoch = image.epoch;
  }
  const auto scan = resilience::scan_records(log_path(opts_.dir));
  GA_CHECK(scan.corrupt_records == 0,
           "epoch log: corrupt record in " + log_path(opts_.dir) +
               " — run recovery with an explicit policy first");
  if (scan.torn_tail) {
    fs::resize_file(log_path(opts_.dir), scan.bytes_valid);
  }
  if (!scan.records.empty()) {
    stats_.last_epoch = std::max(stats_.last_epoch, scan.records.back().seq);
  }
  open_fd();
}

EpochLog::~EpochLog() {
  try {
    flush();
  } catch (...) {
    // Destructor flush is best-effort; a crash here is the torn-tail case
    // recovery is built to handle.
  }
#ifndef _WIN32
  if (fd_ >= 0) ::close(fd_);
#endif
}

void EpochLog::hook(const char* stage) {
  if (fault_hook_) fault_hook_(stage);
}

void EpochLog::open_fd() {
#ifndef _WIN32
  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(log_path(opts_.dir).c_str(), O_WRONLY | O_APPEND | O_CREAT,
               0644);
  GA_CHECK(fd_ >= 0, "epoch log: cannot open " + log_path(opts_.dir));
#endif
}

void EpochLog::sync_fd() {
#ifndef _WIN32
  GA_CHECK(::fdatasync(fd_) == 0,
           "epoch log: fdatasync failed for " + log_path(opts_.dir));
#endif
}

void EpochLog::append(std::uint64_t epoch, const DeltaBatch& batch,
                      const DeltaSummary& summary) {
  const auto t0 = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  GA_CHECK(!failed_,
           "epoch log: unusable after a failed append rollback in " +
               log_path(opts_.dir));
  hook("log_append_begin");
  GA_CHECK(epoch == stats_.last_epoch + 1,
           "epoch log: non-contiguous epoch " + std::to_string(epoch) +
               " after " + std::to_string(stats_.last_epoch));

  std::vector<char> payload;
  encode_epoch_payload(batch, summary, &payload);
  GA_CHECK(payload.size() <= resilience::recio::kMaxPayload,
           "epoch log: oversized epoch record");
  scratch_.resize(resilience::recio::frame_size(payload.size()));
  const std::size_t frame = resilience::recio::frame_record(
      scratch_.data(), epoch, payload.data(), payload.size());

#ifndef _WIN32
  const auto base = ::lseek(fd_, 0, SEEK_END);
  GA_CHECK(base >= 0, "epoch log: lseek failed for " + log_path(opts_.dir));
#endif
  const bool was_dirty = dirty_;
  try {
    hook("log_append_write");
#ifndef _WIN32
    const auto written = ::write(fd_, scratch_.data(), frame);
    GA_CHECK(written == static_cast<ssize_t>(frame),
             "epoch log: short write to " + log_path(opts_.dir));
#endif
    dirty_ = true;
    if (opts_.sync_each_append) {
      hook("log_append_sync");
      sync_fd();
      dirty_ = false;
      ++stats_.syncs;
    }
  } catch (const resilience::InjectedFault&) {
    // A simulated kill: a dead process runs no cleanup, and recovery must
    // cope with exactly the bytes the crash left behind.
    throw;
  } catch (...) {
    // Real I/O failure (short write, failed fdatasync) with the process
    // still alive: cut the file back to the pre-append frame boundary so
    // the torn frame cannot bury later acked appends behind an
    // unscannable prefix, and so a retry cannot frame a duplicate seq.
    // If the rollback itself fails the log is permanently unusable —
    // refusing future appends beats acking epochs recovery cannot reach.
    dirty_ = was_dirty;
#ifndef _WIN32
    if (::ftruncate(fd_, base) != 0) failed_ = true;
#endif
    throw;
  }
  ++stats_.appends;
  stats_.bytes_appended += frame;
  stats_.last_epoch = epoch;
  stats_.last_append_us = us_since(t0);
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("store.log.appends_total").add();
    reg.counter("store.log.bytes_total").add(static_cast<double>(frame));
    reg.histogram("store.log.append_us").observe(stats_.last_append_us);
  }
}

void EpochLog::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!dirty_ || fd_ < 0) return;
  sync_fd();
  dirty_ = false;
  ++stats_.syncs;
}

bool EpochLog::checkpoint_due() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opts_.checkpoint_every > 0 &&
         stats_.last_epoch - stats_.checkpoint_epoch >= opts_.checkpoint_every;
}

void EpochLog::maybe_checkpoint(const GraphView& view) {
  if (checkpoint_due()) checkpoint(view);
}

void EpochLog::checkpoint(const GraphView& view) {
  const auto t0 = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  // A concurrent writer can race two maybe_checkpoint calls; the one
  // carrying the older view must not regress the durable image.
  if (has_checkpoint_ && view.epoch() <= stats_.checkpoint_epoch) return;
  hook("ckpt_begin");

  // Serialize the flattened base image. flatten() on a compacted view is a
  // cache load; on a deep chain it pays the fold the compactor would have.
  const auto flat = view.flatten();
  std::vector<char> body;
  put(&body, static_cast<std::uint8_t>(flat->directed() ? 1 : 0));
  put_vec(&body, flat->offsets());
  put_vec(&body, flat->targets());
  put_vec(&body, flat->weights());
  const auto props = view.flatten_props();
  if (props) {
    put_vec(&body, *props);
  } else {
    put(&body, static_cast<std::uint64_t>(0));
  }
  const std::uint64_t ck_epoch = view.epoch();
  const std::uint64_t nbytes = body.size();
  // The CRC covers the header fields, not just the body, so bit rot in
  // epoch or nbytes fails closed at load.
  std::uint32_t crc = core::crc32(&ck_epoch, sizeof(ck_epoch));
  crc = core::crc32(&nbytes, sizeof(nbytes), crc);
  crc = core::crc32(body.data(), body.size(), crc);

  // tmp → fsync → rename → dir-fsync: a crash at any point leaves either
  // the old checkpoint or the new one, never a partial image, and the
  // rename can't vanish on power loss once the directory entry is synced.
  const std::string final_path = checkpoint_path(opts_.dir);
  const std::string tmp = final_path + ".tmp";
  hook("ckpt_write");
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    GA_CHECK(os.good(), "epoch log: cannot open " + tmp);
    os.write(kCheckpointMagic, sizeof(kCheckpointMagic));
    os.write(reinterpret_cast<const char*>(&ck_epoch), sizeof(ck_epoch));
    os.write(reinterpret_cast<const char*>(&nbytes), sizeof(nbytes));
    os.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    os.write(body.data(), static_cast<std::streamsize>(body.size()));
    os.flush();
    GA_CHECK(os.good(), "epoch log: checkpoint write failed: " + tmp);
  }
  hook("ckpt_sync");
  resilience::fsync_file(tmp);
  hook("ckpt_rename");
  fs::rename(tmp, final_path);
  hook("ckpt_dirsync");
  resilience::fsync_dir(opts_.dir);

  has_checkpoint_ = true;
  stats_.checkpoint_epoch = view.epoch();
  ++stats_.checkpoints;

  truncate_below(view.epoch());

  stats_.last_checkpoint_ms = us_since(t0) / 1000.0;
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("store.log.checkpoints_total").add();
    reg.histogram("store.log.checkpoint_ms").observe(stats_.last_checkpoint_ms);
  }
}

// Drop log records with seq <= epoch (they are covered by the durable
// checkpoint) while preserving any newer suffix a concurrent writer may
// have appended past the captured view. Same staging discipline as the
// checkpoint itself: suffix → tmp → fsync → rename → dir-fsync. A crash
// anywhere in the window leaves either the old log (recovery skips the
// already-checkpointed prefix by seq) or the new one.
void EpochLog::truncate_below(std::uint64_t epoch) {
  hook("truncate_begin");
  const std::string path = log_path(opts_.dir);
  const auto scan = resilience::scan_records(path);
  std::uint64_t cut = 0;
  for (const auto& rec : scan.records) {
    if (rec.seq > epoch) break;
    cut += resilience::recio::frame_size(rec.payload.size());
  }
  if (cut == 0) {
    hook("truncate_done");
    return;
  }

  std::vector<char> suffix;
  {
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    GA_CHECK(is.good(), "epoch log: cannot reopen " + path);
    const auto end = static_cast<std::uint64_t>(is.tellg());
    suffix.resize(end - cut);
    is.seekg(static_cast<std::streamoff>(cut));
    if (!suffix.empty()) {
      is.read(suffix.data(), static_cast<std::streamsize>(suffix.size()));
      GA_CHECK(is.good(), "epoch log: suffix read failed: " + path);
    }
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    GA_CHECK(os.good(), "epoch log: cannot open " + tmp);
    if (!suffix.empty()) {
      os.write(suffix.data(), static_cast<std::streamsize>(suffix.size()));
    }
    os.flush();
    GA_CHECK(os.good(), "epoch log: truncate write failed: " + tmp);
  }
  resilience::fsync_file(tmp);
  hook("truncate_swap");
  fs::rename(tmp, path);
  resilience::fsync_dir(opts_.dir);
  open_fd();  // fd_ pointed at the renamed-over inode
  hook("truncate_done");

  ++stats_.truncations;
  stats_.truncated_bytes += cut;
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("store.log.truncations_total").add();
    reg.counter("store.log.truncated_bytes_total").add(static_cast<double>(cut));
  }
}

void EpochLog::attach(VersionedGraphStore& store) {
  store.set_durability_hook(
      [this](std::uint64_t epoch, const DeltaBatch& batch,
             const DeltaSummary& summary) { append(epoch, batch, summary); });
  store.set_post_publish_hook(
      [this](const GraphView& view) { maybe_checkpoint(view); });
  // A log without a checkpoint has no base to replay onto: seed one from
  // the store's current view before the first epoch lands.
  if (!has_checkpoint_) checkpoint(store.view());
}

void EpochLog::set_fault_hook(std::function<void(const char*)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  fault_hook_ = std::move(fn);
}

EpochLogStats EpochLog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ga::store
