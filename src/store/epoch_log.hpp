// EpochLog: the durable write-ahead history of a VersionedGraphStore.
//
// Every sealed epoch is appended as one CRC-framed record — the raw
// DeltaBatch op stream plus the DeltaSummary the store derived at seal —
// using the shared record_io framing (same discipline as the ingest WAL),
// fsync'd before apply() acknowledges. Periodically the log checkpoints
// the compacted base: the current GraphView is flattened to one CSR image
// (plus folded properties) written tmp → fsync → rename → dir-fsync, and
// the log is truncated past it.
//
// Durability contract (proved by tests/test_recovery.cpp):
//  * acked  ⇒ durable: apply() returns only after the epoch record is
//    fsync'd (the store's durability hook runs pre-publish), so a crash at
//    ANY instant loses zero acknowledged epochs.
//  * durable ⇒ replayable: recovery (store/recovery.hpp) loads the newest
//    checkpoint, replays log records with seq > checkpoint epoch in order
//    (idempotent by seq — the crash window between checkpoint rename and
//    log truncation leaves already-checkpointed records in the log), and
//    truncates any torn tail.
//
// Directory layout:  <dir>/epochs.log     framed epoch records
//                    <dir>/checkpoint.gsc newest durable base image
//
// Thread safety: all methods serialize on an internal mutex; append() is
// called under the store lock via the durability hook, checkpoints come
// from the post-publish hook outside it — the lock order store→log is
// therefore one-way and cannot deadlock.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "resilience/record_io.hpp"
#include "store/graph_view.hpp"

namespace ga::store {

class VersionedGraphStore;
struct DeltaSummary;

/// Deserialized checkpoint: the flat base image recovery resumes from.
struct CheckpointImage {
  std::uint64_t epoch = 0;
  std::shared_ptr<const graph::CSRGraph> base;
  std::shared_ptr<const std::vector<std::pair<vid_t, float>>> props;  // or null
};

/// Load and CRC-verify <dir>/checkpoint.gsc. Returns false when absent;
/// throws ga::Error on a damaged image (magic/CRC/bounds).
bool load_checkpoint(const std::string& dir, CheckpointImage* out);

/// Payload codec for one epoch record: [u32 batch_len][batch][summary].
/// The summary is logged verbatim so recovery can cross-check the replayed
/// seal against what the writer derived.
void encode_epoch_payload(const DeltaBatch& batch, const DeltaSummary& summary,
                          std::vector<char>* out);
void decode_epoch_payload(const char* data, std::size_t len, DeltaBatch* batch,
                          DeltaSummary* summary);

struct EpochLogOptions {
  std::string dir;
  /// Checkpoint after this many epochs since the last one (0 = manual —
  /// only explicit checkpoint() calls).
  std::uint64_t checkpoint_every = 0;
  /// fdatasync every append before acknowledging (the durability
  /// contract). Off only for benches measuring the sync cost itself.
  bool sync_each_append = true;
};

struct EpochLogStats {
  std::uint64_t appends = 0;
  std::uint64_t bytes_appended = 0;   // framed bytes
  std::uint64_t syncs = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t truncations = 0;
  std::uint64_t truncated_bytes = 0;
  std::uint64_t last_epoch = 0;       // newest appended (or scanned) epoch
  std::uint64_t checkpoint_epoch = 0; // epoch of the newest durable checkpoint
  double last_append_us = 0.0;
  double last_checkpoint_ms = 0.0;
};

class EpochLog {
 public:
  /// Opens (or creates) the log directory. An existing log is scanned so
  /// appends resume at the right epoch — the reopen-after-recovery path.
  explicit EpochLog(EpochLogOptions opts);
  ~EpochLog();
  EpochLog(const EpochLog&) = delete;
  EpochLog& operator=(const EpochLog&) = delete;

  /// Append one sealed epoch; fsync'd before returning (unless
  /// sync_each_append is off). Epochs must arrive contiguously
  /// (last_epoch + 1). Throws on I/O failure or injected kill — the store
  /// then refuses to consume the epoch.
  void append(std::uint64_t epoch, const DeltaBatch& batch,
              const DeltaSummary& summary);

  /// Write a durable checkpoint of `view` (flattened base CSR + folded
  /// properties + epoch) and truncate log records at or below its epoch.
  /// Records newer than the view's epoch — a concurrent writer may have
  /// appended past the captured view — survive the truncation.
  void checkpoint(const GraphView& view);

  /// Epochs appended since the newest checkpoint reached the cadence?
  bool checkpoint_due() const;
  /// checkpoint(view) iff the cadence says so.
  void maybe_checkpoint(const GraphView& view);

  /// fdatasync any unsynced appends (no-op when sync_each_append).
  void flush();

  /// Wire this log into `store`: the durability hook appends every epoch
  /// pre-publish, the post-publish hook drives the checkpoint cadence. If
  /// the directory has no checkpoint yet, the store's current view is
  /// checkpointed immediately so the base itself is durable.
  void attach(VersionedGraphStore& store);

  /// Chaos hook fired at the named kill-points ("log_append_*", "ckpt_*",
  /// "truncate_*" — see resilience::store_kill_points()).
  void set_fault_hook(std::function<void(const char*)> fn);

  EpochLogStats stats() const;
  const EpochLogOptions& options() const { return opts_; }

  static std::string log_path(const std::string& dir);
  static std::string checkpoint_path(const std::string& dir);

 private:
  void hook(const char* stage);
  void open_fd();
  void truncate_below(std::uint64_t epoch);
  void sync_fd();

  EpochLogOptions opts_;
  mutable std::mutex mu_;
  int fd_ = -1;
  bool dirty_ = false;          // unsynced appended bytes
  bool has_checkpoint_ = false; // a durable image exists (loaded or written)
  bool failed_ = false;         // a post-error rollback failed: refuse appends
  EpochLogStats stats_;
  std::function<void(const char*)> fault_hook_;
  std::vector<char> scratch_;  // framed-record staging buffer
};

}  // namespace ga::store
