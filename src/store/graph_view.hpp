// GraphView: the engine's single read path over the versioned store.
//
// A view's base is either an immutable flat CSR or a segmented two-tier
// store (store/tiered.hpp — hot decoded slabs + compressed cold blocks
// faulted in under a byte budget), and on top of either base may ride a
// chain of immutable DeltaLayer overlays, newest last. A *flat* view is
// the CSR-base no-chain case — the zero-cost path every batch kernel
// sees after compaction. Reads merge the chain newest-first per vertex:
// an add in a newer layer wins (upsert), a delete suppresses anything
// older, otherwise the base adjacency shows through. Merged iteration is
// ordered by target id, exactly like the CSR itself, so merge-based
// kernels (triangles, Jaccard) keep their sorted-adjacency contract.
// Tiered and flat bases are digest-identical by construction: the tier
// layer changes where adjacency bytes live, never what they say.
//
// Views are cheap value types (a few shared_ptrs); copying one never
// copies graph data. All referenced storage is immutable, so concurrent
// readers share views freely. flatten()/csr() lazily folds the chain into
// a flat CSR once per version and caches it (shared across copies of the
// same version, mutex-published) — kernels without a delta-native path pay
// that fold once, which is the read-amplification half of the compaction
// policy bargain.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "graph/csr_graph.hpp"
#include "store/delta.hpp"
#include "store/tiered.hpp"

namespace ga::store {

struct DeltaSummary;

class GraphView {
 public:
  GraphView() = default;

  /// Flat view over an owned base (epoch defaults to 0 = unversioned).
  static GraphView of(std::shared_ptr<const graph::CSRGraph> base,
                      std::uint64_t epoch = 0);
  static GraphView of(graph::CSRGraph base, std::uint64_t epoch = 0);
  /// Flat view that aliases a caller-owned CSR without taking ownership.
  /// Lifetime contract: `base` must outlive the view and every copy of it
  /// (benches/CLI with a stack-owned graph; never used for published
  /// snapshots, which require owning views).
  static GraphView borrowed(const graph::CSRGraph& base,
                            std::uint64_t epoch = 0);

  /// View over a two-tier segmented base (epoch defaults to 0).
  static GraphView over_tiers(std::shared_ptr<const TieredGraph> tiers,
                              std::uint64_t epoch = 0);

  /// Delta-backed view; `num_arcs` is the exact merged arc count (the
  /// store tracks it via DeltaLayer::net_arcs). `props` may be null.
  GraphView(std::shared_ptr<const graph::CSRGraph> base,
            std::vector<std::shared_ptr<const DeltaLayer>> chain,
            std::shared_ptr<const std::vector<std::pair<vid_t, float>>> props,
            std::uint64_t epoch, eid_t num_arcs);

  /// Delta chain over a tiered base.
  GraphView(std::shared_ptr<const TieredGraph> tiers,
            std::vector<std::shared_ptr<const DeltaLayer>> chain,
            std::shared_ptr<const std::vector<std::pair<vid_t, float>>> props,
            std::uint64_t epoch, eid_t num_arcs);

  /// Copy of this view with one more chain layer (newest), whatever the
  /// base kind — how the store publishes an epoch without caring whether
  /// its flatten target is a flat CSR or a tiered store. Drops the
  /// predecessor's delta summary (the new epoch attaches its own).
  GraphView with_layer(std::shared_ptr<const DeltaLayer> layer,
                       std::uint64_t epoch, eid_t num_arcs) const;

  bool valid() const { return base_ != nullptr || tiers_ != nullptr; }
  bool flat() const { return chain_.empty() && !tiers_; }
  bool tiered() const { return tiers_ != nullptr; }
  std::uint64_t epoch() const { return epoch_; }
  std::size_t chain_depth() const { return chain_.size(); }

  vid_t num_vertices() const { return n_; }
  /// Exact merged arc count (undirected graphs store both arcs).
  eid_t num_arcs() const { return arcs_; }
  eid_t num_edges() const { return directed() ? arcs_ : arcs_ / 2; }
  bool directed() const {
    return tiers_ ? tiers_->directed() : base_->directed();
  }
  bool weighted() const {
    return tiers_ ? tiers_->weighted() : base_->weighted();
  }

  const graph::CSRGraph& base() const {
    GA_CHECK(base_ != nullptr, "GraphView::base: tiered view has no flat base");
    return *base_;
  }
  std::shared_ptr<const graph::CSRGraph> base_ptr() const { return base_; }
  const std::shared_ptr<const TieredGraph>& tiers() const { return tiers_; }
  const std::vector<std::shared_ptr<const DeltaLayer>>& chain() const {
    return chain_;
  }

  /// Flat read path: the base itself when flat, else the cached fold of
  /// the chain. First call on a delta-backed version pays O(|V|+|E|+Δ)
  /// once; every later call (from any copy of this version) is a load.
  const graph::CSRGraph& csr() const { return *flatten(); }
  std::shared_ptr<const graph::CSRGraph> flatten() const;

  /// Merged out-adjacency of `u`, ascending by target id; fn(vid_t v,
  /// float w) with w == 1.0f on unweighted graphs. Flat views iterate the
  /// CSR spans directly.
  template <typename Fn>
  void for_each_out(vid_t u, Fn&& fn) const;

  eid_t out_degree(vid_t u) const;
  bool has_edge(vid_t u, vid_t v) const;
  /// Merged adjacency as a sorted vector (tests, subgraph extraction).
  std::vector<std::pair<vid_t, float>> out_edges_copy(vid_t u) const;

  /// Vertex property under newest-wins patch semantics; `fallback` when no
  /// layer (or the folded property table) carries the vertex.
  float vertex_property_or(vid_t v, float fallback) const;
  std::shared_ptr<const std::vector<std::pair<vid_t, float>>> folded_props()
      const {
    return props_;
  }
  /// The property counterpart of flatten(): the inherited table plus every
  /// chain layer's patches folded into one sorted last-write-wins vector.
  /// Returns the inherited table unchanged (possibly null) when no layer
  /// carries patches. The epoch-log checkpoint persists this — reading
  /// folded_props() alone would drop patches still riding in the chain.
  std::shared_ptr<const std::vector<std::pair<vid_t, float>>> flatten_props()
      const;

  /// --- storage accounting (memory-amplification / compaction policy) ---
  std::size_t base_bytes() const;
  std::size_t delta_bytes() const;
  /// Modeled merged-read cost over flat-read cost: entries a full
  /// traversal scans (base arcs + gross delta ops) per merged arc.
  /// Exactly 1.0 for a flat view.
  double read_amplification() const;
  /// Identity of the shared base allocation (snapshot managers dedup
  /// bytes held across epochs by these pointers).
  const void* base_id() const {
    return tiers_ ? static_cast<const void*>(tiers_.get())
                  : static_cast<const void*>(base_.get());
  }

  /// Change manifest of this epoch vs. its immediate predecessor (store
  /// epoch - 1); attached by VersionedGraphStore::apply and preserved
  /// across compaction. Null on flat/initial views and views of unknown
  /// provenance — consumers must then fall back to whole-graph treatment.
  std::shared_ptr<const DeltaSummary> delta_summary() const {
    return summary_;
  }
  /// Copy of this view carrying `s` as its change manifest. The graph
  /// content is identical; only the provenance annotation changes.
  GraphView with_summary(std::shared_ptr<const DeltaSummary> s) const;

 private:
  struct FlattenCache {
    std::mutex mu;
    std::shared_ptr<const graph::CSRGraph> flat;
  };
  std::shared_ptr<const graph::CSRGraph> build_flat() const;

  std::shared_ptr<const graph::CSRGraph> base_;
  std::shared_ptr<const TieredGraph> tiers_;  // exactly one of base_/tiers_
  std::vector<std::shared_ptr<const DeltaLayer>> chain_;  // oldest..newest
  std::shared_ptr<const std::vector<std::pair<vid_t, float>>> props_;
  std::shared_ptr<FlattenCache> cache_;  // non-null iff delta- or tier-backed
  std::shared_ptr<const DeltaSummary> summary_;
  std::uint64_t epoch_ = 0;
  vid_t n_ = 0;
  eid_t arcs_ = 0;
};

// ---------------------------------------------------------------------------
// Merged iteration. Chain depth is bounded by the compaction policy (~8);
// cursors live on the stack unless a pathological chain exceeds the inline
// capacity.

template <typename Fn>
void GraphView::for_each_out(vid_t u, Fn&& fn) const {
  GA_ASSERT(valid() && u < n_);
  if (chain_.empty()) {
    if (tiers_) {
      tiers_->for_each_out(u, fn);
      return;
    }
    const graph::CSRGraph& b = *base_;
    GA_ASSERT(u < b.num_vertices());
    const auto nbrs = b.out_neighbors(u);
    if (b.weighted()) {
      const auto ws = b.out_weights(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) fn(nbrs[i], ws[i]);
    } else {
      for (const vid_t v : nbrs) fn(v, 1.0f);
    }
    return;
  }

  // Resolve the base adjacency spans — a flat CSR slice or a pinned
  // tier slab (the pin keeps the slab alive across the merge even if the
  // eviction clock sweeps it mid-iteration).
  const vid_t base_n = tiers_ ? tiers_->num_vertices() : base_->num_vertices();
  const bool in_base = u < base_n;
  TieredGraph::Pin tier_pin;
  std::span<const vid_t> bt;
  std::span<const float> bw;
  if (in_base) {
    const bool w = weighted();
    if (tiers_) {
      tier_pin = tiers_->acquire(tiers_->segment_of(u));
      bt = tier_pin->neighbors(u);
      if (w) bw = tier_pin->weights_of(u);
    } else {
      bt = base_->out_neighbors(u);
      if (w) bw = base_->out_weights(u);
    }
  }

  struct Cursor {
    DeltaLayer::VertexOps ops;
    std::size_t a = 0, d = 0;
  };
  constexpr std::size_t kInline = 32;
  Cursor inline_cur[kInline];
  std::vector<Cursor> heap_cur;
  Cursor* cur = inline_cur;
  const std::size_t depth = chain_.size();
  if (depth > kInline) {
    heap_cur.resize(depth);
    cur = heap_cur.data();
  }
  bool any_ops = false;
  for (std::size_t k = 0; k < depth; ++k) {
    cur[k].ops = chain_[k]->ops(u);
    any_ops |= !cur[k].ops.add_tgt.empty() || !cur[k].ops.del_tgt.empty();
  }

  if (!any_ops) {  // untouched vertex: plain base scan
    if (!bw.empty()) {
      for (std::size_t i = 0; i < bt.size(); ++i) fn(bt[i], bw[i]);
    } else {
      for (const vid_t v : bt) fn(v, 1.0f);
    }
    return;
  }
  std::size_t bi = 0;
  for (;;) {
    // Next candidate target: min over the base cursor and every layer's
    // pending adds (deletes never introduce targets, only suppress).
    vid_t t = kInvalidVid;
    if (bi < bt.size()) t = bt[bi];
    for (std::size_t k = 0; k < depth; ++k) {
      const auto& add = cur[k].ops.add_tgt;
      if (cur[k].a < add.size() && add[cur[k].a] < t) t = add[cur[k].a];
    }
    if (t == kInvalidVid) break;

    // Newest layer touching t decides; older ops and the base are shadowed.
    int decision = 0;  // 0 = base shows through, 1 = add wins, 2 = deleted
    float w = 1.0f;
    for (std::size_t k = depth; k-- > 0;) {
      Cursor& c = cur[k];
      const auto& add = c.ops.add_tgt;
      const auto& del = c.ops.del_tgt;
      while (c.d < del.size() && del[c.d] < t) ++c.d;  // no-op deletes
      const bool has_add = c.a < add.size() && add[c.a] == t;
      const bool has_del = c.d < del.size() && del[c.d] == t;
      if (decision == 0) {
        if (has_add) {
          decision = 1;
          w = c.ops.add_w[c.a];
        } else if (has_del) {
          decision = 2;
        }
      }
      if (has_add) ++c.a;
      if (has_del) ++c.d;
    }
    const bool base_has = bi < bt.size() && bt[bi] == t;
    if (decision == 1) {
      fn(t, w);
    } else if (decision == 0 && base_has) {
      fn(t, bw.empty() ? 1.0f : bw[bi]);
    }
    if (base_has) ++bi;
  }
}

}  // namespace ga::store
