// Per-epoch immutable delta overlays for the versioned graph store.
//
// A writer accumulates mutations in a DeltaBatch (edge upserts, edge
// deletes, vertex growth, vertex property patches) and seals it into a
// DeltaLayer: a sorted, immutable, CSR-like record of exactly what one
// epoch changed. Layers chain on top of an immutable base CSR; GraphView
// (graph_view.hpp) merges the chain newest-first at read time, which is
// what makes epoch publication O(Δ) instead of O(|E|).
//
// Layout: touched vertices are kept as a sorted id list with parallel
// offset arrays into per-vertex sorted add/delete target lists — the same
// prefix-sum discipline as the CSR itself, so per-vertex lookup is
// O(log touched) and per-vertex merge walks stay sequential.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/common.hpp"

namespace ga::store {

/// One sealed, immutable epoch overlay. Produced by DeltaBatch::seal();
/// never mutated afterwards (GraphView shares layers across snapshots via
/// shared_ptr<const DeltaLayer>).
class DeltaLayer {
 public:
  /// Per-vertex slices of the overlay. Both target lists are sorted by id;
  /// adds carry the (possibly updated) weight. Empty spans if untouched.
  struct VertexOps {
    std::span<const vid_t> add_tgt;
    std::span<const float> add_w;
    std::span<const vid_t> del_tgt;
  };

  /// Vertex-id universe after this layer (base n plus any growth).
  vid_t num_vertices() const { return n_; }
  bool directed() const { return directed_; }

  /// Sorted list of vertices with adjacency changes in this layer.
  std::span<const vid_t> touched() const { return verts_; }
  bool touches(vid_t u) const;
  VertexOps ops(vid_t u) const;

  /// Sorted (vertex, value) property patches (last write in the batch wins).
  std::span<const std::pair<vid_t, float>> prop_patches() const {
    return props_;
  }

  /// Gross op counts (arc granularity; an undirected edge contributes two).
  eid_t arcs_added() const { return static_cast<eid_t>(add_tgt_.size()); }
  eid_t arcs_deleted() const { return static_cast<eid_t>(del_tgt_.size()); }
  std::size_t num_ops() const { return add_tgt_.size() + del_tgt_.size(); }

  std::size_t bytes() const;

  /// Epoch id assigned when the owning store links the layer into a chain.
  std::uint64_t epoch = 0;
  /// Net arc-count change vs. the predecessor view (an insert of an existing
  /// edge is a weight update, a delete of a missing edge is a no-op); the
  /// store computes this at apply time so GraphView::num_arcs() stays exact.
  std::int64_t net_arcs = 0;

 private:
  friend class DeltaBatch;

  vid_t n_ = 0;
  bool directed_ = false;
  std::vector<vid_t> verts_;          // sorted touched vertices
  std::vector<std::uint32_t> add_off_;  // size verts_+1
  std::vector<std::uint32_t> del_off_;  // size verts_+1
  std::vector<vid_t> add_tgt_;
  std::vector<float> add_w_;
  std::vector<vid_t> del_tgt_;
  std::vector<std::pair<vid_t, float>> props_;
};

/// Mutable builder for one epoch's delta. Not thread-safe (one writer).
/// Mirrors DynamicGraph semantics: insert_edge is an upsert (inserting an
/// existing edge updates its weight), delete of a missing edge is a no-op,
/// and on undirected graphs both arcs move together.
class DeltaBatch {
 public:
  explicit DeltaBatch(bool directed = false) : directed_(directed) {}

  void insert_edge(vid_t u, vid_t v, float w = 1.0f);
  void delete_edge(vid_t u, vid_t v);
  /// Grows the vertex-id universe by `count` (new vertices start isolated).
  void add_vertices(vid_t count) { new_vertices_ += count; }
  /// Records a vertex property patch (last write wins within the batch).
  void set_vertex_property(vid_t v, float value);

  bool directed() const { return directed_; }
  bool empty() const {
    return edge_ops_.empty() && prop_ops_.empty() && new_vertices_ == 0;
  }
  std::size_t num_ops() const { return edge_ops_.size() + prop_ops_.size(); }
  vid_t vertex_growth() const { return new_vertices_; }

  /// Seals into an immutable layer against a base universe of
  /// `base_vertices` ids: sorts, deduplicates (the latest op on an arc
  /// wins), and validates every endpoint. O(Δ log Δ). The batch itself is
  /// left untouched; call clear() to reuse it.
  DeltaLayer seal(vid_t base_vertices) const;

  void clear() {
    edge_ops_.clear();
    prop_ops_.clear();
    new_vertices_ = 0;
  }

  /// Byte codec for the durable epoch log. encode() appends the raw op
  /// stream exactly as recorded — arrival order, both arcs of an
  /// undirected edge — so decode() + seal() reproduces the original layer
  /// bit-for-bit on replay. decode() throws ga::Error on a malformed or
  /// truncated payload (the log's CRC makes that corruption, not a crash).
  void encode(std::vector<char>* out) const;
  static DeltaBatch decode(const char* data, std::size_t len);

  /// Visit every recorded arc op in arrival order: fn(u, v, w, is_delete).
  /// Both arcs of an undirected edge appear. The dist partitioner fans a
  /// global batch out to shard sub-batches with this; routing each arc by
  /// its source preserves last-write-wins because seal() resolves ties by
  /// arrival order within each shard's subsequence as well.
  template <typename Fn>
  void for_each_edge_op(Fn&& fn) const {
    for (const EdgeOp& op : edge_ops_) fn(op.u, op.v, op.w, op.is_delete);
  }
  /// Recorded property patches in arrival order (last write wins at seal).
  std::span<const std::pair<vid_t, float>> property_ops() const {
    return prop_ops_;
  }

 private:
  struct EdgeOp {
    vid_t u, v;
    float w;
    std::uint32_t seq;  // arrival order; ties broken toward the latest op
    bool is_delete;
  };

  void push_arc(vid_t u, vid_t v, float w, bool is_delete);

  bool directed_;
  vid_t new_vertices_ = 0;
  std::vector<EdgeOp> edge_ops_;
  std::vector<std::pair<vid_t, float>> prop_ops_;
};

}  // namespace ga::store
