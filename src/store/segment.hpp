// Segment codec for the two-tier store (DESIGN.md section 16): the vertex
// space is carved into fixed-size segments, and each segment's adjacency
// exists in exactly one of two representations at a time.
//
//   hot  — SegmentCSR: a decoded, cache-friendly CSR slab with 32-bit
//          *relative* offsets (a segment holds at most a few thousand
//          vertices, so offsets fit u32 even when the global graph needs
//          64-bit eid_t). This is what kernels actually traverse.
//   cold — EncodedSegment: a delta-varint compressed block. Per vertex:
//          varint degree, then the neighbor list as a first absolute
//          varint target followed by non-negative varint deltas (targets
//          are stored sorted; deltas of 0 tolerate duplicate targets that
//          survive a delta-chain merge). Weights, when present, ride raw
//          (little-endian float — floats don't varint). The payload is
//          covered by the repo-wide slice-by-8 CRC-32: a corrupt cold
//          block decodes to Status kDataLoss, never to a wrong list.
//
// The codec is deliberately dumb and total: encode never fails, decode
// fails only on corruption (CRC first, then defensive bounds checks that
// should be unreachable once the CRC has passed).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/common.hpp"
#include "core/status.hpp"

namespace ga::store {

/// Decoded (hot) form of one vertex segment: vertices
/// [first_vertex, first_vertex + count) with relative u32 offsets.
struct SegmentCSR {
  vid_t first_vertex = 0;
  vid_t count = 0;
  bool weighted = false;
  std::vector<std::uint32_t> offsets;  // count + 1 entries, offsets[0] == 0
  std::vector<vid_t> targets;          // sorted per vertex
  std::vector<float> weights;          // parallel to targets iff weighted

  eid_t num_arcs() const { return static_cast<eid_t>(targets.size()); }

  bool contains(vid_t v) const {
    return v >= first_vertex && v - first_vertex < count;
  }

  std::uint32_t degree(vid_t v) const {
    const vid_t local = v - first_vertex;
    GA_ASSERT(local < count);
    return offsets[local + 1] - offsets[local];
  }

  std::span<const vid_t> neighbors(vid_t v) const {
    const vid_t local = v - first_vertex;
    GA_ASSERT(local < count);
    return {targets.data() + offsets[local],
            static_cast<std::size_t>(offsets[local + 1] - offsets[local])};
  }

  std::span<const float> weights_of(vid_t v) const {
    const vid_t local = v - first_vertex;
    GA_ASSERT(local < count && weighted);
    return {weights.data() + offsets[local],
            static_cast<std::size_t>(offsets[local + 1] - offsets[local])};
  }

  /// Resident footprint of the decoded slab — what the tier budget meters.
  std::size_t bytes() const {
    return offsets.capacity() * sizeof(std::uint32_t) +
           targets.capacity() * sizeof(vid_t) +
           weights.capacity() * sizeof(float) + sizeof(SegmentCSR);
  }
};

/// Encoded (cold) form: the compressed payload plus enough metadata to
/// size admission decisions without decoding (`decoded_bytes`).
struct EncodedSegment {
  vid_t first_vertex = 0;
  vid_t count = 0;
  eid_t arcs = 0;
  bool weighted = false;
  std::uint32_t crc = 0;            // crc32 over `payload`
  std::size_t decoded_bytes = 0;    // SegmentCSR::bytes() of the source
  std::vector<std::uint8_t> payload;

  std::size_t bytes() const {
    return payload.capacity() + sizeof(EncodedSegment);
  }
};

/// Compress one decoded segment. Targets must be sorted per vertex
/// (delta-varint requires non-decreasing runs); this is the invariant the
/// CSR builder and the newest-wins merge both already guarantee.
EncodedSegment encode_segment(const SegmentCSR& seg);

/// Decompress. Returns kDataLoss when the CRC does not match or the
/// varint stream is malformed — callers must treat either as a lost
/// block, never as an empty or partial neighbor list.
core::StatusOr<SegmentCSR> decode_segment(const EncodedSegment& block);

}  // namespace ga::store
