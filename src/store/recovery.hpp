// Crash recovery and hot standby for the durable epoch log.
//
// recover() rebuilds a VersionedGraphStore from an EpochLog directory:
// load the newest durable checkpoint (flat base CSR + folded properties +
// epoch), replay every log record with seq > checkpoint epoch in order —
// re-sealing the decoded DeltaBatch reproduces the original layer
// bit-for-bit — and truncate any torn tail. Replay is idempotent by epoch
// seq, so the crash window between a checkpoint rename and the log
// truncation (already-checkpointed records still in the log) is skipped,
// and running recovery twice over the same directory yields identical
// stores. The caller re-publishes the recovered view through its
// SnapshotManager / AnalyticsServer to come back serving at the exact
// last-acked epoch.
//
// StandbyReplica keeps a second store warm by tailing the same log
// in-process: an incremental scan from a byte cursor applies new epochs as
// they become durable; a log swap by the primary's checkpoint truncation —
// detected by inode change, file-shrank-under-cursor, seq gap, or a
// cursor that reads garbage while a from-zero scan disagrees — triggers a
// full reload from the checkpoint; and promote() performs a final
// catch-up and hands the store over for serving.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "resilience/record_io.hpp"
#include "store/epoch_log.hpp"
#include "store/versioned_store.hpp"

namespace ga::store {

struct RecoveryOptions {
  std::string dir;
  resilience::CorruptionPolicy policy = resilience::CorruptionPolicy::kStop;
  CompactionPolicy compaction;
  /// Cross-check each replayed epoch's recomputed DeltaSummary against the
  /// logged one (counts + epoch id); mismatches are counted in the report.
  bool verify_summaries = true;
  /// Cut a torn tail off the log after replay so a subsequent EpochLog
  /// reopen appends at a clean frame boundary. Corrupt suffixes (CRC
  /// mismatch under kStop) are NOT cut — that is data loss, reported via
  /// RecoveryReport::status(), not silently discarded.
  bool truncate_torn_tail = true;
};

struct RecoveryReport {
  std::uint64_t checkpoint_epoch = 0;
  std::uint64_t recovered_epoch = 0;
  std::uint64_t replayed = 0;          // records applied on top of the base
  std::uint64_t skipped = 0;           // records at or below the checkpoint
  std::uint64_t summary_mismatches = 0;
  bool torn_tail = false;
  std::uint64_t torn_bytes = 0;
  std::uint64_t corrupt_records = 0;
  double millis = 0.0;

  /// DataLoss on corruption, Ok otherwise (a torn tail is the expected
  /// crash artifact — the acked prefix is intact).
  core::Status status() const {
    if (corrupt_records > 0) {
      return core::Status::DataLoss(std::to_string(corrupt_records) +
                                    " corrupt epoch record(s)");
    }
    return core::Status::Ok();
  }
};

struct RecoveredStore {
  std::unique_ptr<VersionedGraphStore> store;
  RecoveryReport report;
};

/// Rebuild the store from `opts.dir`. Throws ga::Error when the directory
/// has no checkpoint (nothing to replay onto) or — under kThrow — on the
/// first corrupt record.
RecoveredStore recover(const RecoveryOptions& opts);

/// Content digest of a view: merged adjacency (targets + weight bits, in
/// iteration order), folded properties, vertex count, directedness. Equal
/// digests ⇒ kernels see identical graphs — the recovery sweep's
/// twin-equivalence check.
std::uint64_t view_digest(const GraphView& view);

/// Offline stats for `ga_cli store log-stat`: checkpoint header + log scan
/// without building a store.
struct EpochLogInfo {
  bool has_checkpoint = false;
  std::uint64_t checkpoint_epoch = 0;
  std::uint64_t checkpoint_bytes = 0;
  vid_t checkpoint_vertices = 0;
  eid_t checkpoint_arcs = 0;
  std::uint64_t log_records = 0;
  std::uint64_t log_bytes = 0;
  std::uint64_t first_seq = 0;
  std::uint64_t last_seq = 0;
  bool torn_tail = false;
  std::uint64_t torn_bytes = 0;
  std::uint64_t corrupt_records = 0;
};
EpochLogInfo inspect_epoch_log(const std::string& dir);

struct StandbyStats {
  std::uint64_t tail_passes = 0;
  std::uint64_t epochs_applied = 0;  // beyond the initial recovery
  std::uint64_t reloads = 0;         // full re-recoveries (log truncated)
};

class StandbyReplica {
 public:
  /// Runs a full recovery immediately; the replica is serveable from
  /// construction.
  explicit StandbyReplica(RecoveryOptions opts);
  ~StandbyReplica();
  StandbyReplica(const StandbyReplica&) = delete;
  StandbyReplica& operator=(const StandbyReplica&) = delete;

  /// One incremental catch-up pass over the log; returns epochs applied.
  /// Safe to call concurrently with readers of view().
  std::uint64_t tail_once();

  /// Background tailer at `poll` cadence (idempotent start/stop).
  void start(std::chrono::milliseconds poll = std::chrono::milliseconds(20));
  void stop();
  bool running() const { return tailer_running_.load(); }

  /// Current replica view / epoch; any thread, any time before promote().
  GraphView view() const;
  std::uint64_t epoch() const;

  const RecoveryReport& initial_report() const { return initial_report_; }
  StandbyStats stats() const;

  /// Promote to primary: stop tailing, catch up until the log yields
  /// nothing new and at least `min_epoch` is reached (the writer's
  /// last-acked epoch; 0 = whatever is durable now), then hand the store
  /// over. The replica is empty afterwards.
  std::unique_ptr<VersionedGraphStore> promote(std::uint64_t min_epoch = 0);

 private:
  void reload();  // full recover(): the log was truncated under the cursor
  void tailer_main(std::chrono::milliseconds poll);

  RecoveryOptions opts_;
  RecoveryReport initial_report_;

  mutable std::mutex mu_;  // guards store_ swap + cursor + stats
  std::unique_ptr<VersionedGraphStore> store_;
  std::uint64_t cursor_ = 0;  // byte offset of the next unread log frame
  std::uint64_t log_ino_ = 0; // inode the cursor refers to (0 = unknown)
  StandbyStats stats_;

  std::thread tailer_;
  std::atomic<bool> tailer_running_{false};
  std::atomic<bool> tailer_stop_{false};
};

}  // namespace ga::store
