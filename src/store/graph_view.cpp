#include "store/graph_view.hpp"

#include <algorithm>

#include "store/delta_summary.hpp"

namespace ga::store {

GraphView GraphView::with_summary(
    std::shared_ptr<const DeltaSummary> s) const {
  GraphView v = *this;
  v.summary_ = std::move(s);
  return v;
}

GraphView GraphView::of(std::shared_ptr<const graph::CSRGraph> base,
                        std::uint64_t epoch) {
  GA_CHECK(base != nullptr, "GraphView::of: null base");
  GraphView v;
  v.n_ = base->num_vertices();
  v.arcs_ = base->num_arcs();
  v.epoch_ = epoch;
  v.base_ = std::move(base);
  return v;
}

GraphView GraphView::of(graph::CSRGraph base, std::uint64_t epoch) {
  return of(std::make_shared<const graph::CSRGraph>(std::move(base)), epoch);
}

GraphView GraphView::borrowed(const graph::CSRGraph& base,
                              std::uint64_t epoch) {
  return of(std::shared_ptr<const graph::CSRGraph>(&base,
                                                   [](const graph::CSRGraph*) {}),
            epoch);
}

GraphView GraphView::over_tiers(std::shared_ptr<const TieredGraph> tiers,
                                std::uint64_t epoch) {
  GA_CHECK(tiers != nullptr, "GraphView::over_tiers: null tiers");
  GraphView v;
  v.n_ = tiers->num_vertices();
  v.arcs_ = tiers->num_arcs();
  v.epoch_ = epoch;
  v.tiers_ = std::move(tiers);
  v.cache_ = std::make_shared<FlattenCache>();
  return v;
}

GraphView::GraphView(
    std::shared_ptr<const graph::CSRGraph> base,
    std::vector<std::shared_ptr<const DeltaLayer>> chain,
    std::shared_ptr<const std::vector<std::pair<vid_t, float>>> props,
    std::uint64_t epoch, eid_t num_arcs)
    : base_(std::move(base)),
      chain_(std::move(chain)),
      props_(std::move(props)),
      epoch_(epoch),
      arcs_(num_arcs) {
  GA_CHECK(base_ != nullptr, "GraphView: null base");
  n_ = chain_.empty() ? base_->num_vertices() : chain_.back()->num_vertices();
  GA_ASSERT(n_ >= base_->num_vertices());
  if (!chain_.empty()) cache_ = std::make_shared<FlattenCache>();
}

GraphView::GraphView(
    std::shared_ptr<const TieredGraph> tiers,
    std::vector<std::shared_ptr<const DeltaLayer>> chain,
    std::shared_ptr<const std::vector<std::pair<vid_t, float>>> props,
    std::uint64_t epoch, eid_t num_arcs)
    : tiers_(std::move(tiers)),
      chain_(std::move(chain)),
      props_(std::move(props)),
      epoch_(epoch),
      arcs_(num_arcs) {
  GA_CHECK(tiers_ != nullptr, "GraphView: null tiers");
  n_ = chain_.empty() ? tiers_->num_vertices() : chain_.back()->num_vertices();
  GA_ASSERT(n_ >= tiers_->num_vertices());
  cache_ = std::make_shared<FlattenCache>();
}

GraphView GraphView::with_layer(std::shared_ptr<const DeltaLayer> layer,
                                std::uint64_t epoch, eid_t num_arcs) const {
  GA_CHECK(valid() && layer != nullptr, "GraphView::with_layer: bad inputs");
  GraphView v;
  v.base_ = base_;
  v.tiers_ = tiers_;
  v.props_ = props_;
  v.chain_ = chain_;
  v.chain_.push_back(std::move(layer));
  v.epoch_ = epoch;
  v.arcs_ = num_arcs;
  v.n_ = v.chain_.back()->num_vertices();
  v.cache_ = std::make_shared<FlattenCache>();
  return v;
}

std::shared_ptr<const graph::CSRGraph> GraphView::flatten() const {
  GA_CHECK(valid(), "GraphView: empty view");
  if (chain_.empty() && !tiers_) return base_;
  std::lock_guard<std::mutex> lock(cache_->mu);
  if (!cache_->flat) cache_->flat = build_flat();
  return cache_->flat;
}

std::shared_ptr<const graph::CSRGraph> GraphView::build_flat() const {
  std::vector<eid_t> offsets(n_ + 1, 0);
  std::vector<vid_t> targets;
  std::vector<float> weights;
  targets.reserve(arcs_);
  const bool w = weighted();
  if (w) weights.reserve(arcs_);
  for (vid_t u = 0; u < n_; ++u) {
    for_each_out(u, [&](vid_t v, float wt) {
      targets.push_back(v);
      if (w) weights.push_back(wt);
    });
    offsets[u + 1] = static_cast<eid_t>(targets.size());
  }
  GA_ASSERT(static_cast<eid_t>(targets.size()) == arcs_);
  return std::make_shared<const graph::CSRGraph>(
      std::move(offsets), std::move(targets), std::move(weights), directed());
}

eid_t GraphView::out_degree(vid_t u) const {
  if (chain_.empty()) {
    return tiers_ ? tiers_->out_degree(u) : base_->out_degree(u);
  }
  eid_t d = 0;
  for_each_out(u, [&](vid_t, float) { ++d; });
  return d;
}

bool GraphView::has_edge(vid_t u, vid_t v) const {
  GA_ASSERT(valid());
  // Ids beyond this version's universe (e.g. vertices a later layer will
  // add) have no edges yet by definition.
  if (u >= n_ || v >= n_) return false;
  for (std::size_t k = chain_.size(); k-- > 0;) {
    const auto ops = chain_[k]->ops(u);
    if (std::binary_search(ops.add_tgt.begin(), ops.add_tgt.end(), v)) {
      return true;
    }
    if (std::binary_search(ops.del_tgt.begin(), ops.del_tgt.end(), v)) {
      return false;
    }
  }
  const vid_t base_n = tiers_ ? tiers_->num_vertices() : base_->num_vertices();
  if (u >= base_n || v >= base_n) return false;
  return tiers_ ? tiers_->has_edge(u, v) : base_->has_edge(u, v);
}

std::vector<std::pair<vid_t, float>> GraphView::out_edges_copy(vid_t u) const {
  std::vector<std::pair<vid_t, float>> out;
  for_each_out(u, [&](vid_t v, float w) { out.emplace_back(v, w); });
  return out;
}

float GraphView::vertex_property_or(vid_t v, float fallback) const {
  const auto find = [v](const std::vector<std::pair<vid_t, float>>& patches,
                        float* out) {
    const auto it = std::lower_bound(
        patches.begin(), patches.end(), v,
        [](const std::pair<vid_t, float>& p, vid_t key) { return p.first < key; });
    if (it != patches.end() && it->first == v) {
      *out = it->second;
      return true;
    }
    return false;
  };
  float value = fallback;
  for (std::size_t k = chain_.size(); k-- > 0;) {
    const auto patches = chain_[k]->prop_patches();
    const auto it = std::lower_bound(
        patches.begin(), patches.end(), v,
        [](const std::pair<vid_t, float>& p, vid_t key) { return p.first < key; });
    if (it != patches.end() && it->first == v) return it->second;
  }
  if (props_ && find(*props_, &value)) return value;
  return fallback;
}

std::shared_ptr<const std::vector<std::pair<vid_t, float>>>
GraphView::flatten_props() const {
  std::vector<std::pair<vid_t, float>> all;
  if (props_) all = *props_;
  bool any = false;
  for (const auto& layer : chain_) {
    const auto patches = layer->prop_patches();
    any |= !patches.empty();
    all.insert(all.end(), patches.begin(), patches.end());
  }
  if (!any) return props_;
  // Later layers were appended later; stable sort keeps arrival order
  // within a key, so the last entry of each run is the newest write.
  std::stable_sort(all.begin(), all.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t kept = 0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i + 1 < all.size() && all[i + 1].first == all[i].first) continue;
    all[kept++] = all[i];
  }
  all.resize(kept);
  return std::make_shared<const std::vector<std::pair<vid_t, float>>>(
      std::move(all));
}

std::size_t GraphView::base_bytes() const {
  if (tiers_) {
    // Actual backing footprint: the always-kept cold tier plus whatever
    // is decoded right now under the budget.
    return tiers_->encoded_bytes() + tiers_->resident_bytes();
  }
  const graph::CSRGraph& b = *base_;
  return b.offsets().size() * sizeof(eid_t) +
         b.targets().size() * sizeof(vid_t) +
         b.weights().size() * sizeof(float);
}

std::size_t GraphView::delta_bytes() const {
  std::size_t total = 0;
  for (const auto& layer : chain_) total += layer->bytes();
  if (props_) total += props_->size() * sizeof(std::pair<vid_t, float>);
  return total;
}

double GraphView::read_amplification() const {
  if (chain_.empty()) return 1.0;
  eid_t scanned = tiers_ ? tiers_->num_arcs() : base_->num_arcs();
  for (const auto& layer : chain_) scanned += layer->num_ops();
  return static_cast<double>(scanned) /
         static_cast<double>(std::max<eid_t>(arcs_, 1));
}

}  // namespace ga::store
