#include "store/delta_summary.hpp"

#include <algorithm>

#include "store/delta.hpp"
#include "store/graph_view.hpp"

namespace ga::store {

namespace {

void sort_unique(std::vector<vid_t>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

bool DeltaSummary::touches(vid_t v) const {
  return std::binary_search(changed_vertices.begin(), changed_vertices.end(),
                            v);
}

bool DeltaSummary::intersects(std::span<const vid_t> sorted) const {
  // Linear merge over two sorted sets; both are typically tiny (a delta's
  // endpoints vs a query footprint).
  auto a = changed_vertices.begin();
  auto b = sorted.begin();
  while (a != changed_vertices.end() && b != sorted.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      return true;
    }
  }
  return false;
}

DeltaSummary summarize_layer(const DeltaLayer& layer,
                             const GraphView& predecessor) {
  DeltaSummary s;
  for (const vid_t u : layer.touched()) {
    const auto ops = layer.ops(u);
    for (const vid_t v : ops.add_tgt) {
      if (predecessor.has_edge(u, v)) {
        ++s.weight_updates;
      } else {
        s.inserted_arcs.emplace_back(u, v);
      }
      s.changed_vertices.push_back(u);
      s.changed_vertices.push_back(v);
    }
    for (const vid_t v : ops.del_tgt) {
      if (!predecessor.has_edge(u, v)) continue;  // delete of missing: no-op
      s.deleted_arcs.emplace_back(u, v);
      s.changed_vertices.push_back(u);
      s.changed_vertices.push_back(v);
    }
  }
  sort_unique(s.changed_vertices);
  for (const auto& [v, value] : layer.prop_patches()) {
    (void)value;
    s.property_vertices.push_back(v);
  }
  sort_unique(s.property_vertices);
  if (layer.num_vertices() > predecessor.num_vertices()) {
    s.vertex_growth = layer.num_vertices() - predecessor.num_vertices();
  }
  return s;
}

DeltaSummary merge_summaries(
    std::span<const std::shared_ptr<const DeltaSummary>> chain) {
  DeltaSummary out;
  for (const auto& s : chain) {
    if (!s) continue;
    out.epoch = s->epoch;
    out.changed_vertices.insert(out.changed_vertices.end(),
                                s->changed_vertices.begin(),
                                s->changed_vertices.end());
    out.inserted_arcs.insert(out.inserted_arcs.end(), s->inserted_arcs.begin(),
                             s->inserted_arcs.end());
    out.deleted_arcs.insert(out.deleted_arcs.end(), s->deleted_arcs.begin(),
                            s->deleted_arcs.end());
    out.weight_updates += s->weight_updates;
    out.property_vertices.insert(out.property_vertices.end(),
                                 s->property_vertices.begin(),
                                 s->property_vertices.end());
    out.vertex_growth += s->vertex_growth;
  }
  sort_unique(out.changed_vertices);
  sort_unique(out.property_vertices);
  return out;
}

}  // namespace ga::store
