// DeltaSummary: the per-epoch change manifest that rides alongside every
// published GraphView. Where a DeltaLayer records the *operations* one
// epoch applied (including no-op deletes and upserts of existing arcs),
// the summary records their *effect* against the predecessor view: which
// vertices' adjacency actually changed, which arcs were really inserted or
// removed, and which vertex properties were patched. It is what lets the
// layers above recompute from the delta instead of the whole graph — the
// kernels' incremental update path and the result cache's footprint-aware
// invalidation both consume it.
//
// Contract:
//  * changed_vertices is sorted and holds every endpoint of an effective
//    structural op (insert of a new arc, delete of a present arc, weight
//    update of an existing arc). Vertices added isolated by vertex growth
//    are NOT listed — their adjacency is empty before and after.
//  * inserted_arcs / deleted_arcs are effective ops only, at arc
//    granularity (an undirected edge contributes both directions), in
//    layer order. An insert of an existing arc is counted in
//    weight_updates instead; a delete of a missing arc appears nowhere.
//  * property_vertices is sorted and independent of the structural sets: a
//    property-patch-only epoch has empty changed_vertices and
//    structural() == false.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/common.hpp"

namespace ga::store {

class DeltaLayer;
class GraphView;

struct DeltaSummary {
  /// Store epoch this summary describes (the view it is attached to);
  /// the predecessor is epoch - 1.
  std::uint64_t epoch = 0;

  /// Sorted endpoints of every effective structural op (see header).
  std::vector<vid_t> changed_vertices;
  /// Net-new arcs (u, v): absent in the predecessor, present now.
  std::vector<std::pair<vid_t, vid_t>> inserted_arcs;
  /// Removed arcs (u, v): present in the predecessor, absent now.
  std::vector<std::pair<vid_t, vid_t>> deleted_arcs;
  /// Upserts that hit an existing arc (weight refresh, no topology change).
  eid_t weight_updates = 0;
  /// Sorted vertices whose property value was patched this epoch.
  std::vector<vid_t> property_vertices;
  /// Vertices appended to the id universe (isolated until an arc arrives).
  vid_t vertex_growth = 0;

  /// Any adjacency change at all (inserts, deletes, or weight refreshes).
  /// Property-only and heartbeat epochs are non-structural.
  bool structural() const {
    return !inserted_arcs.empty() || !deleted_arcs.empty() ||
           weight_updates > 0;
  }
  bool empty() const {
    return !structural() && property_vertices.empty() && vertex_growth == 0;
  }

  /// Did this epoch change v's adjacency?
  bool touches(vid_t v) const;
  /// Does the changed-vertex set intersect `sorted` (ascending ids)?
  bool intersects(std::span<const vid_t> sorted) const;
};

/// Builds the effect manifest of `layer` applied on top of `predecessor`.
/// O(Δ log) — the same has_edge probes the store's net-arc accounting
/// already pays, so apply() folds both into one walk.
DeltaSummary summarize_layer(const DeltaLayer& layer,
                             const GraphView& predecessor);

/// Folds consecutive per-epoch summaries (oldest first) into one manifest
/// covering the whole span — what a consumer catching up over several
/// epochs feeds to an incremental kernel. Arc lists concatenate without
/// cancellation (an arc inserted then deleted stays in both lists), which
/// is conservative for every consumer: fallback triggers fire at least as
/// often as with exact cancellation.
DeltaSummary merge_summaries(
    std::span<const std::shared_ptr<const DeltaSummary>> chain);

}  // namespace ga::store
