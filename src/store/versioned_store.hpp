// VersionedGraphStore: the persistent multi-property graph at the center
// of the paper's Fig. 2 canonical flow. Writers apply DeltaBatches; each
// apply seals an immutable DeltaLayer, links it under the next epoch id,
// and publishes a new GraphView in O(Δ). A compactor — background thread
// or inline, per policy — folds long chains back into a flat base CSR
// when chain depth or modeled read amplification exceeds the policy, so
// reads stay near-flat while publishes stay near-free.
//
// Concurrency contract: any number of threads may call view()/stats();
// apply() serializes writers on the store mutex (sealing happens outside
// it, pointer motion inside). Compaction folds a captured version outside
// the lock while writers keep appending, then swaps the folded base in
// and keeps only the layers published since the capture — readers holding
// older views are unaffected (all storage is immutable + shared_ptr'd).
//
// Crash safety: a fault hook (tests wire the PR 2 FaultInjector through
// it) fires at the compaction stages; an exception thrown mid-compaction
// leaves the published view untouched and is counted, never propagated to
// writers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "store/graph_view.hpp"

namespace ga::store {

struct CompactionPolicy {
  /// Fold when the chain exceeds this many layers.
  std::size_t max_chain_depth = 8;
  /// Fold when GraphView::read_amplification() exceeds this.
  double max_read_amplification = 1.5;
  /// Never fold chains shorter than this (folding a 1-layer chain buys
  /// little and costs a full O(|E|) pass).
  std::size_t min_chain_depth = 2;
  /// Apply-triggered folding: false disables automatic compaction
  /// entirely (callers drive compact_now()).
  bool auto_compact = true;
  /// Publish epochs whose flatten target is a segmented two-tier store
  /// (store/tiered.hpp) instead of a flat CSR: the ctor converts a flat
  /// initial base and every compaction folds the chain into a fresh
  /// TieredGraph under `tier`'s byte budget.
  bool tiered = false;
  TierPolicy tier;
};

struct StoreStats {
  std::uint64_t epoch = 0;
  std::size_t chain_depth = 0;
  vid_t num_vertices = 0;
  eid_t num_arcs = 0;
  std::size_t base_bytes = 0;
  std::size_t delta_bytes = 0;
  bool tiered = false;
  std::size_t tier_resident_bytes = 0;  // decoded bytes under the budget
  std::size_t tier_encoded_bytes = 0;   // cold compressed footprint
  double read_amplification = 1.0;
  std::uint64_t delta_publishes = 0;   // O(Δ) epoch publications
  std::uint64_t compactions = 0;       // successful folds (full rebuilds)
  std::uint64_t compaction_failures = 0;
  double last_publish_us = 0.0;
  double last_compact_ms = 0.0;
};

class VersionedGraphStore {
 public:
  explicit VersionedGraphStore(graph::CSRGraph base,
                               CompactionPolicy policy = {});
  explicit VersionedGraphStore(std::shared_ptr<const graph::CSRGraph> base,
                               CompactionPolicy policy = {});
  /// Recovery ctor: resume from a flat view (checkpoint base + folded
  /// properties) at a non-zero starting epoch — replayed epochs then apply
  /// on top with their original ids.
  explicit VersionedGraphStore(GraphView initial, CompactionPolicy policy = {});
  /// Joins the background compactor (if started).
  ~VersionedGraphStore();

  VersionedGraphStore(const VersionedGraphStore&) = delete;
  VersionedGraphStore& operator=(const VersionedGraphStore&) = delete;

  /// Seals `batch` and publishes it as the next epoch; O(Δ log Δ) in the
  /// batch size, never proportional to |E|. Empty batches still advance
  /// the epoch (a heartbeat publish). Returns the new epoch id. If the
  /// policy trips: wakes the background compactor when running, else
  /// folds inline (the "compactor says full rebuild" path).
  std::uint64_t apply(const DeltaBatch& batch);

  /// Current published version; immutable, safe to hold indefinitely.
  GraphView view() const;
  std::uint64_t epoch() const;
  const CompactionPolicy& policy() const { return policy_; }

  /// Background compaction thread (idempotent start/stop).
  void start_compactor();
  void stop_compactor();
  bool compactor_running() const;

  /// Synchronously folds the current chain into a flat base. Returns
  /// false when there is nothing to fold or a fault hook aborted the fold
  /// (state unchanged, failure counted).
  bool compact_now();

  /// Invoked after every successful publish (apply or fold), outside the
  /// store lock, with the new view. Single listener; the serving layer's
  /// snapshot manager hangs off this.
  void set_view_listener(std::function<void(GraphView)> fn);

  /// Write-ahead durability hook, invoked inside apply() — under the store
  /// lock, after the batch is sealed and summarized but BEFORE the epoch is
  /// committed in memory. The EpochLog hangs off this: a throw (disk
  /// failure, injected kill) propagates to the writer and the epoch is NOT
  /// consumed, so an acknowledged apply() implies a durable log record.
  using DurabilityHook = std::function<void(
      std::uint64_t epoch, const DeltaBatch& batch, const DeltaSummary&)>;
  void set_durability_hook(DurabilityHook fn);

  /// Invoked after every successful apply(), outside the store lock, with
  /// the new view — before the view listener. The EpochLog drives its
  /// checkpoint cadence from here (it needs the published view, which the
  /// durability hook — running pre-publish — cannot have).
  void set_post_publish_hook(std::function<void(const GraphView&)> fn);

  /// Test hook fired at apply stages ("apply_seal", "apply_publish") and
  /// compaction stages ("compact_begin", "compact_fold", "compact_swap").
  /// Exceptions at compact stages abort the fold, leaving the store
  /// intact; exceptions at apply stages propagate to the writer with the
  /// epoch unconsumed (the simulated kill the recovery sweep relies on).
  void set_fault_hook(std::function<void(const char*)> fn);

  StoreStats stats() const;

 private:
  bool needs_compaction(const GraphView& v) const;
  bool fold_once();  // one compaction attempt; returns true if it swapped
  void compactor_main();
  void publish_obs(double publish_us) const;

  CompactionPolicy policy_;

  mutable std::mutex mu_;
  GraphView current_;
  std::uint64_t epoch_ = 0;
  std::uint64_t delta_publishes_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t compaction_failures_ = 0;
  double last_publish_us_ = 0.0;
  double last_compact_ms_ = 0.0;
  std::function<void(GraphView)> listener_;
  DurabilityHook durability_hook_;
  std::function<void(const GraphView&)> post_publish_hook_;
  std::function<void(const char*)> fault_hook_;

  std::mutex fold_mu_;  // serializes compact_now() vs the background thread

  mutable std::mutex compactor_mu_;
  std::condition_variable compactor_cv_;
  std::thread compactor_;
  std::atomic<bool> compactor_stop_{false};
  bool compactor_kick_ = false;
  bool compactor_running_ = false;
};

}  // namespace ga::store
