#include "store/versioned_store.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.hpp"
#include "store/delta_summary.hpp"

namespace ga::store {

namespace {

double us_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Folds the inherited property table plus the patches of `chain[0..k)`
/// into one sorted last-write-wins vector.
std::shared_ptr<const std::vector<std::pair<vid_t, float>>> fold_props(
    const std::shared_ptr<const std::vector<std::pair<vid_t, float>>>& base,
    const std::vector<std::shared_ptr<const DeltaLayer>>& chain,
    std::size_t k) {
  std::vector<std::pair<vid_t, float>> all;
  if (base) all = *base;
  bool any = false;
  for (std::size_t i = 0; i < k; ++i) {
    const auto patches = chain[i]->prop_patches();
    any |= !patches.empty();
    all.insert(all.end(), patches.begin(), patches.end());
  }
  if (!any) return base;
  // Later layers were appended later; stable sort keeps arrival order
  // within a key, so the last entry of each run is the newest write.
  std::stable_sort(all.begin(), all.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t kept = 0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i + 1 < all.size() && all[i + 1].first == all[i].first) continue;
    all[kept++] = all[i];
  }
  all.resize(kept);
  return std::make_shared<const std::vector<std::pair<vid_t, float>>>(
      std::move(all));
}

}  // namespace

VersionedGraphStore::VersionedGraphStore(graph::CSRGraph base,
                                         CompactionPolicy policy)
    : VersionedGraphStore(
          std::make_shared<const graph::CSRGraph>(std::move(base)), policy) {}

VersionedGraphStore::VersionedGraphStore(
    std::shared_ptr<const graph::CSRGraph> base, CompactionPolicy policy)
    : policy_(policy),
      current_(policy.tiered
                   ? GraphView::over_tiers(
                         TieredGraph::build(*base, policy.tier), 0)
                   : GraphView::of(std::move(base), 0)) {}

VersionedGraphStore::VersionedGraphStore(GraphView initial,
                                         CompactionPolicy policy)
    : policy_(policy), current_(std::move(initial)), epoch_(current_.epoch()) {
  GA_CHECK(current_.valid(), "VersionedGraphStore: invalid initial view");
  GA_CHECK(current_.chain_depth() == 0,
           "VersionedGraphStore: initial view must be compacted (no chain)");
  // A tiered-policy store recovering from a flat checkpoint converts the
  // base on the way in; the epoch and properties carry over unchanged.
  if (policy_.tiered && !current_.tiered()) {
    auto tiers = TieredGraph::build(current_.base(), policy_.tier);
    GraphView converted = GraphView::over_tiers(std::move(tiers),
                                                current_.epoch());
    if (current_.folded_props()) {
      converted = GraphView(converted.tiers(), {}, current_.folded_props(),
                            current_.epoch(), current_.num_arcs());
    }
    current_ = std::move(converted);
  }
}

VersionedGraphStore::~VersionedGraphStore() { stop_compactor(); }

std::uint64_t VersionedGraphStore::apply(const DeltaBatch& batch) {
  const auto t0 = std::chrono::steady_clock::now();
  GraphView next;
  std::function<void(GraphView)> listener;
  std::function<void(const GraphView&)> post_publish;
  double publish_us = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    GA_CHECK(batch.directed() == current_.directed(),
             "VersionedGraphStore: batch directedness mismatch");
    if (fault_hook_) fault_hook_("apply_seal");
    const auto layer = std::make_shared<DeltaLayer>(
        batch.seal(current_.num_vertices()));
    // Exact arc accounting against the predecessor: an insert of an
    // existing arc is a weight update, a delete of a missing arc a no-op.
    // summarize_layer pays exactly those has_edge probes, so the same walk
    // yields both the net arc count and the epoch's change manifest.
    auto summary =
        std::make_shared<DeltaSummary>(summarize_layer(*layer, current_));
    const std::int64_t net =
        static_cast<std::int64_t>(summary->inserted_arcs.size()) -
        static_cast<std::int64_t>(summary->deleted_arcs.size());
    layer->net_arcs = net;
    // Epoch commit order: log first (durability hook may throw — disk
    // failure or injected kill — and then the epoch is not consumed), then
    // the in-memory publish. A crash after the hook returns leaves the
    // epoch on disk but unacknowledged; replay is idempotent by seq, so
    // recovery serving one-past-the-ack is correct, losing an acked epoch
    // never happens.
    const std::uint64_t next_epoch = epoch_ + 1;
    layer->epoch = next_epoch;
    summary->epoch = next_epoch;
    if (durability_hook_) durability_hook_(next_epoch, batch, *summary);
    if (fault_hook_) fault_hook_("apply_publish");
    epoch_ = next_epoch;
    next = current_
               .with_layer(layer, epoch_,
                           static_cast<eid_t>(
                               static_cast<std::int64_t>(current_.num_arcs()) +
                               net))
               .with_summary(std::move(summary));
    current_ = next;
    ++delta_publishes_;
    publish_us = us_since(t0);
    last_publish_us_ = publish_us;
    listener = listener_;
    post_publish = post_publish_hook_;
  }
  publish_obs(publish_us);
  if (post_publish) post_publish(next);

  if (needs_compaction(next)) {
    if (compactor_running()) {
      std::lock_guard<std::mutex> lock(compactor_mu_);
      compactor_kick_ = true;
      compactor_cv_.notify_one();
    } else if (policy_.auto_compact) {
      fold_once();
    }
  }
  if (listener) listener(std::move(next));
  return epoch();
}

GraphView VersionedGraphStore::view() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

std::uint64_t VersionedGraphStore::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

bool VersionedGraphStore::needs_compaction(const GraphView& v) const {
  if (v.chain_depth() < std::max<std::size_t>(policy_.min_chain_depth, 1)) {
    return false;
  }
  return v.chain_depth() > policy_.max_chain_depth ||
         v.read_amplification() > policy_.max_read_amplification;
}

bool VersionedGraphStore::compact_now() { return fold_once(); }

bool VersionedGraphStore::fold_once() {
  // One fold at a time: with folds serialized, every later chain has the
  // captured chain as a prefix (apply only ever appends), so the swap
  // below can splice by index safely.
  std::lock_guard<std::mutex> fold_lock(fold_mu_);
  const auto t0 = std::chrono::steady_clock::now();
  GraphView captured;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (current_.chain_depth() == 0) return false;
    captured = current_;
  }
  const std::size_t k = captured.chain_depth();
  std::shared_ptr<const graph::CSRGraph> flat;
  std::shared_ptr<const TieredGraph> tiers;
  std::shared_ptr<const std::vector<std::pair<vid_t, float>>> props;
  try {
    if (fault_hook_) fault_hook_("compact_begin");
    if (policy_.tiered) {
      // Stream the merged view straight into a fresh two-tier store —
      // one segment of transient decoded memory at a time, never a full
      // CSR materialization (the whole point of the budget).
      tiers = TieredGraph::build_from_view(captured, policy_.tier);
    } else {
      // The fold also primes the captured version's flatten cache, so any
      // reader still on it gets the flat CSR for free.
      flat = captured.flatten();
    }
    if (fault_hook_) fault_hook_("compact_fold");
    props = fold_props(captured.folded_props(), captured.chain(), k);
    if (fault_hook_) fault_hook_("compact_swap");
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    ++compaction_failures_;
    if (obs::enabled()) {
      obs::MetricsRegistry::global()
          .counter("store.compaction_failures_total")
          .add();
    }
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Keep only layers published since the capture; the folded base
    // absorbs the first k. Content is unchanged, so the epoch is too.
    std::vector<std::shared_ptr<const DeltaLayer>> remaining(
        current_.chain().begin() + static_cast<std::ptrdiff_t>(k),
        current_.chain().end());
    if (policy_.tiered) {
      current_ = GraphView(std::move(tiers), std::move(remaining),
                           std::move(props), current_.epoch(),
                           current_.num_arcs())
                     .with_summary(current_.delta_summary());
    } else {
      current_ = GraphView(std::move(flat), std::move(remaining),
                           std::move(props), current_.epoch(),
                           current_.num_arcs())
                     .with_summary(current_.delta_summary());
    }
    ++compactions_;
    last_compact_ms_ = us_since(t0) / 1000.0;
  }
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("store.compactions_total").add();
    reg.histogram("store.compact_ms").observe(last_compact_ms_);
  }
  return true;
}

void VersionedGraphStore::start_compactor() {
  std::lock_guard<std::mutex> lock(compactor_mu_);
  if (compactor_running_) return;
  compactor_stop_.store(false);
  compactor_kick_ = false;
  compactor_running_ = true;
  compactor_ = std::thread([this] { compactor_main(); });
}

void VersionedGraphStore::stop_compactor() {
  {
    std::lock_guard<std::mutex> lock(compactor_mu_);
    if (!compactor_running_) return;
    compactor_stop_.store(true);
    compactor_cv_.notify_one();
  }
  compactor_.join();
  std::lock_guard<std::mutex> lock(compactor_mu_);
  compactor_running_ = false;
}

bool VersionedGraphStore::compactor_running() const {
  std::lock_guard<std::mutex> lock(compactor_mu_);
  return compactor_running_;
}

void VersionedGraphStore::compactor_main() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(compactor_mu_);
      compactor_cv_.wait(lock, [this] {
        return compactor_kick_ || compactor_stop_.load();
      });
      if (compactor_stop_.load()) return;
      compactor_kick_ = false;
    }
    // Writers may outpace one fold; keep folding until under policy.
    while (!compactor_stop_.load() && needs_compaction(view())) {
      if (!fold_once()) break;
    }
  }
}

void VersionedGraphStore::set_view_listener(std::function<void(GraphView)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  listener_ = std::move(fn);
}

void VersionedGraphStore::set_durability_hook(DurabilityHook fn) {
  std::lock_guard<std::mutex> lock(mu_);
  durability_hook_ = std::move(fn);
}

void VersionedGraphStore::set_post_publish_hook(
    std::function<void(const GraphView&)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  post_publish_hook_ = std::move(fn);
}

void VersionedGraphStore::set_fault_hook(
    std::function<void(const char*)> fn) {
  fault_hook_ = std::move(fn);
}

void VersionedGraphStore::publish_obs(double publish_us) const {
  if (!obs::enabled()) return;
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("store.epochs_total").add();
  reg.histogram("store.publish_us").observe(publish_us);
  StoreStats s = stats();
  reg.gauge("store.chain_depth").set(static_cast<double>(s.chain_depth));
  reg.gauge("store.read_amplification").set(s.read_amplification);
}

StoreStats VersionedGraphStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StoreStats s;
  s.epoch = epoch_;
  s.chain_depth = current_.chain_depth();
  s.num_vertices = current_.num_vertices();
  s.num_arcs = current_.num_arcs();
  s.base_bytes = current_.base_bytes();
  s.delta_bytes = current_.delta_bytes();
  if (current_.tiered()) {
    s.tiered = true;
    s.tier_resident_bytes = current_.tiers()->resident_bytes();
    s.tier_encoded_bytes = current_.tiers()->encoded_bytes();
  }
  s.read_amplification = current_.read_amplification();
  s.delta_publishes = delta_publishes_;
  s.compactions = compactions_;
  s.compaction_failures = compaction_failures_;
  s.last_publish_us = last_publish_us_;
  s.last_compact_ms = last_compact_ms_;
  return s;
}

}  // namespace ga::store
