#include "store/delta.hpp"

#include <algorithm>
#include <cstring>
#include <string>

namespace ga::store {

bool DeltaLayer::touches(vid_t u) const {
  return std::binary_search(verts_.begin(), verts_.end(), u);
}

DeltaLayer::VertexOps DeltaLayer::ops(vid_t u) const {
  const auto it = std::lower_bound(verts_.begin(), verts_.end(), u);
  if (it == verts_.end() || *it != u) return {};
  const std::size_t i = static_cast<std::size_t>(it - verts_.begin());
  return {
      {add_tgt_.data() + add_off_[i], add_off_[i + 1] - add_off_[i]},
      {add_w_.data() + add_off_[i], add_off_[i + 1] - add_off_[i]},
      {del_tgt_.data() + del_off_[i], del_off_[i + 1] - del_off_[i]},
  };
}

std::size_t DeltaLayer::bytes() const {
  return verts_.size() * sizeof(vid_t) +
         (add_off_.size() + del_off_.size()) * sizeof(std::uint32_t) +
         add_tgt_.size() * sizeof(vid_t) + add_w_.size() * sizeof(float) +
         del_tgt_.size() * sizeof(vid_t) +
         props_.size() * sizeof(std::pair<vid_t, float>) + sizeof(DeltaLayer);
}

void DeltaBatch::push_arc(vid_t u, vid_t v, float w, bool is_delete) {
  edge_ops_.push_back({u, v, w, static_cast<std::uint32_t>(edge_ops_.size()),
                       is_delete});
}

void DeltaBatch::insert_edge(vid_t u, vid_t v, float w) {
  GA_CHECK(u != v, "DeltaBatch: self loops are not supported");
  push_arc(u, v, w, /*is_delete=*/false);
  if (!directed_) push_arc(v, u, w, /*is_delete=*/false);
}

void DeltaBatch::delete_edge(vid_t u, vid_t v) {
  push_arc(u, v, 0.0f, /*is_delete=*/true);
  if (!directed_) push_arc(v, u, 0.0f, /*is_delete=*/true);
}

void DeltaBatch::set_vertex_property(vid_t v, float value) {
  prop_ops_.emplace_back(v, value);
}

namespace {

// Little-endian POD append/read; the codec is only read back on the same
// architecture (single-node durability, not a wire format).
template <typename T>
void put(std::vector<char>* out, const T& v) {
  const auto* p = reinterpret_cast<const char*>(&v);
  out->insert(out->end(), p, p + sizeof(T));
}

template <typename T>
T get(const char* data, std::size_t len, std::size_t* at) {
  GA_CHECK(*at + sizeof(T) <= len, "DeltaBatch::decode: truncated payload");
  T v;
  std::memcpy(&v, data + *at, sizeof(T));
  *at += sizeof(T);
  return v;
}

constexpr std::uint8_t kBatchCodecVersion = 1;

}  // namespace

void DeltaBatch::encode(std::vector<char>* out) const {
  put(out, kBatchCodecVersion);
  put(out, static_cast<std::uint8_t>(directed_ ? 1 : 0));
  put(out, new_vertices_);
  put(out, static_cast<std::uint64_t>(edge_ops_.size()));
  for (const EdgeOp& op : edge_ops_) {
    put(out, op.u);
    put(out, op.v);
    put(out, op.w);
    put(out, static_cast<std::uint8_t>(op.is_delete ? 1 : 0));
  }
  put(out, static_cast<std::uint64_t>(prop_ops_.size()));
  for (const auto& [v, value] : prop_ops_) {
    put(out, v);
    put(out, value);
  }
}

DeltaBatch DeltaBatch::decode(const char* data, std::size_t len) {
  std::size_t at = 0;
  const auto version = get<std::uint8_t>(data, len, &at);
  GA_CHECK(version == kBatchCodecVersion,
           "DeltaBatch::decode: unknown codec version " +
               std::to_string(version));
  DeltaBatch batch(get<std::uint8_t>(data, len, &at) != 0);
  batch.new_vertices_ = get<vid_t>(data, len, &at);
  const auto n_ops = get<std::uint64_t>(data, len, &at);
  GA_CHECK(n_ops <= len / 13, "DeltaBatch::decode: op count past payload");
  batch.edge_ops_.reserve(n_ops);
  for (std::uint64_t i = 0; i < n_ops; ++i) {
    EdgeOp op;
    op.u = get<vid_t>(data, len, &at);
    op.v = get<vid_t>(data, len, &at);
    op.w = get<float>(data, len, &at);
    op.seq = static_cast<std::uint32_t>(i);  // arrival order == encode order
    op.is_delete = get<std::uint8_t>(data, len, &at) != 0;
    batch.edge_ops_.push_back(op);
  }
  const auto n_props = get<std::uint64_t>(data, len, &at);
  GA_CHECK(n_props <= (len - at) / 8, "DeltaBatch::decode: prop count past payload");
  batch.prop_ops_.reserve(n_props);
  for (std::uint64_t i = 0; i < n_props; ++i) {
    const auto v = get<vid_t>(data, len, &at);
    const auto value = get<float>(data, len, &at);
    batch.prop_ops_.emplace_back(v, value);
  }
  GA_CHECK(at == len, "DeltaBatch::decode: trailing bytes in payload");
  return batch;
}

DeltaLayer DeltaBatch::seal(vid_t base_vertices) const {
  DeltaLayer layer;
  layer.directed_ = directed_;
  layer.n_ = base_vertices + new_vertices_;

  // Sort ops by (source, target, arrival) and keep only the last op per
  // arc — a delete followed by a re-insert in the same batch is an insert,
  // an insert followed by a delete is a delete, repeated upserts keep the
  // final weight.
  std::vector<EdgeOp> ops = edge_ops_;
  for (const EdgeOp& op : ops) {
    GA_CHECK(op.u < layer.n_ && op.v < layer.n_,
             "DeltaBatch: edge endpoint out of range");
  }
  std::sort(ops.begin(), ops.end(), [](const EdgeOp& a, const EdgeOp& b) {
    if (a.u != b.u) return a.u < b.u;
    if (a.v != b.v) return a.v < b.v;
    return a.seq < b.seq;
  });

  std::size_t kept = 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (i + 1 < ops.size() && ops[i + 1].u == ops[i].u &&
        ops[i + 1].v == ops[i].v) {
      continue;  // a later op on the same arc supersedes this one
    }
    ops[kept++] = ops[i];
  }
  ops.resize(kept);

  layer.add_off_.push_back(0);
  layer.del_off_.push_back(0);
  for (std::size_t i = 0; i < ops.size();) {
    const vid_t u = ops[i].u;
    layer.verts_.push_back(u);
    for (; i < ops.size() && ops[i].u == u; ++i) {
      if (ops[i].is_delete) {
        layer.del_tgt_.push_back(ops[i].v);
      } else {
        layer.add_tgt_.push_back(ops[i].v);
        layer.add_w_.push_back(ops[i].w);
      }
    }
    layer.add_off_.push_back(static_cast<std::uint32_t>(layer.add_tgt_.size()));
    layer.del_off_.push_back(static_cast<std::uint32_t>(layer.del_tgt_.size()));
  }

  layer.props_ = prop_ops_;
  std::stable_sort(layer.props_.begin(), layer.props_.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  // Last write per vertex wins: keep the final entry of each run.
  std::size_t pk = 0;
  for (std::size_t i = 0; i < layer.props_.size(); ++i) {
    if (i + 1 < layer.props_.size() &&
        layer.props_[i + 1].first == layer.props_[i].first) {
      continue;
    }
    layer.props_[pk++] = layer.props_[i];
  }
  layer.props_.resize(pk);
  for (const auto& [v, value] : layer.props_) {
    (void)value;
    GA_CHECK(v < layer.n_, "DeltaBatch: property patch vertex out of range");
  }
  return layer;
}

}  // namespace ga::store
