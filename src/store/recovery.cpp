#include "store/recovery.hpp"

#include <chrono>
#include <cstring>
#include <filesystem>
#include <utility>

#include "core/hash.hpp"
#include "obs/metrics.hpp"
#include "store/delta_summary.hpp"

#ifndef _WIN32
#include <sys/stat.h>
#endif

namespace ga::store {

namespace fs = std::filesystem;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Does the replayed epoch's summary agree with the one the original
/// writer logged? Content comparison at count granularity — a mismatch
/// means the replay diverged from the original seal (or the base image the
/// replay started from differs), which is exactly the invariant the
/// recovery sweep wants violated loudly.
bool summaries_agree(const DeltaSummary& replayed, const DeltaSummary& logged) {
  return replayed.epoch == logged.epoch &&
         replayed.changed_vertices == logged.changed_vertices &&
         replayed.inserted_arcs == logged.inserted_arcs &&
         replayed.deleted_arcs == logged.deleted_arcs &&
         replayed.weight_updates == logged.weight_updates &&
         replayed.property_vertices == logged.property_vertices &&
         replayed.vertex_growth == logged.vertex_growth;
}

/// Inode of the log file a standby's byte cursor refers to (0 when the
/// file is missing or off-POSIX). EpochLog::truncate_below swaps a new
/// file into the log's path, so an inode change is the deterministic
/// "cursor is meaningless now" signal — including when the new file is no
/// shorter than the cursor, where a size probe alone sees nothing wrong.
std::uint64_t log_inode(const std::string& path) {
#ifndef _WIN32
  struct ::stat st;
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<std::uint64_t>(st.st_ino);
#else
  (void)path;
  return 0;
#endif
}

}  // namespace

RecoveredStore recover(const RecoveryOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  RecoveredStore out;
  RecoveryReport& rep = out.report;

  CheckpointImage image;
  GA_CHECK(load_checkpoint(opts.dir, &image),
           "recovery: no checkpoint in " + opts.dir);
  rep.checkpoint_epoch = image.epoch;

  GraphView initial(image.base, {}, image.props, image.epoch,
                    image.base->num_arcs());
  out.store = std::make_unique<VersionedGraphStore>(std::move(initial),
                                                    opts.compaction);

  const std::string log = EpochLog::log_path(opts.dir);
  const auto scan = resilience::scan_records(log, opts.policy);
  for (const auto& rec : scan.records) {
    if (rec.seq <= out.store->epoch()) {
      // Two legal sources of stale records: the crash window between a
      // checkpoint rename and the log truncation (records at or below the
      // checkpoint epoch), and a failed-fsync-then-retry append that
      // framed the same seq twice. Replay is idempotent by seq: skip both.
      ++rep.skipped;
      continue;
    }
    GA_CHECK(rec.seq == out.store->epoch() + 1,
             "recovery: epoch gap — store at " +
                 std::to_string(out.store->epoch()) +
                 " but log record carries seq " + std::to_string(rec.seq));
    DeltaBatch batch;
    DeltaSummary logged;
    decode_epoch_payload(rec.payload.data(), rec.payload.size(), &batch,
                         &logged);
    out.store->apply(batch);
    if (opts.verify_summaries) {
      const auto replayed = out.store->view().delta_summary();
      if (!replayed || !summaries_agree(*replayed, logged)) {
        ++rep.summary_mismatches;
      }
    }
    ++rep.replayed;
  }
  rep.torn_tail = scan.torn_tail;
  rep.torn_bytes = scan.torn_bytes;
  rep.corrupt_records = scan.corrupt_records;
  rep.recovered_epoch = out.store->epoch();

  if (opts.truncate_torn_tail && scan.torn_tail && scan.corrupt_records == 0) {
    fs::resize_file(log, scan.bytes_valid);
  }
  rep.millis = ms_since(t0);

  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("store.recovery.runs_total").add();
    reg.counter("store.recovery.replayed_epochs_total")
        .add(static_cast<double>(rep.replayed));
    reg.counter("store.recovery.skipped_records_total")
        .add(static_cast<double>(rep.skipped));
    reg.counter("store.recovery.torn_bytes_total")
        .add(static_cast<double>(rep.torn_bytes));
    reg.counter("store.recovery.summary_mismatches_total")
        .add(static_cast<double>(rep.summary_mismatches));
    reg.histogram("store.recovery.ms").observe(rep.millis);
  }
  return out;
}

std::uint64_t view_digest(const GraphView& view) {
  std::uint64_t h = core::fnv1a("gaview");
  h = core::hash_combine(h, view.num_vertices());
  h = core::hash_combine(h, view.num_arcs());
  h = core::hash_combine(h, view.directed() ? 1u : 0u);
  for (vid_t u = 0; u < view.num_vertices(); ++u) {
    view.for_each_out(u, [&](vid_t v, float w) {
      std::uint32_t wbits;
      std::memcpy(&wbits, &w, sizeof(wbits));
      h = core::hash_combine(h, (static_cast<std::uint64_t>(v) << 32) | wbits);
    });
    const float p = view.vertex_property_or(u, 0.0f);
    if (p != 0.0f) {
      std::uint32_t pbits;
      std::memcpy(&pbits, &p, sizeof(pbits));
      h = core::hash_combine(h, (static_cast<std::uint64_t>(u) << 32) | pbits);
    }
  }
  return h;
}

EpochLogInfo inspect_epoch_log(const std::string& dir) {
  EpochLogInfo info;
  CheckpointImage image;
  if (load_checkpoint(dir, &image)) {
    info.has_checkpoint = true;
    info.checkpoint_epoch = image.epoch;
    info.checkpoint_bytes =
        resilience::file_size(EpochLog::checkpoint_path(dir));
    info.checkpoint_vertices = image.base->num_vertices();
    info.checkpoint_arcs = image.base->num_arcs();
  }
  const std::string log = EpochLog::log_path(dir);
  if (fs::exists(log)) {
    info.log_bytes = resilience::file_size(log);
    const auto scan = resilience::scan_records(log);
    info.log_records = scan.records.size();
    if (!scan.records.empty()) {
      info.first_seq = scan.records.front().seq;
      info.last_seq = scan.records.back().seq;
    }
    info.torn_tail = scan.torn_tail;
    info.torn_bytes = scan.torn_bytes;
    info.corrupt_records = scan.corrupt_records;
  }
  return info;
}

// --- StandbyReplica ---------------------------------------------------------

StandbyReplica::StandbyReplica(RecoveryOptions opts) : opts_(std::move(opts)) {
  // The standby must never mutate the primary's log: it only reads.
  opts_.truncate_torn_tail = false;
  auto rec = recover(opts_);
  initial_report_ = rec.report;
  store_ = std::move(rec.store);
  // Resume tailing right past the clean prefix the recovery scan consumed.
  // Inode first, scan second: if a swap lands between the two, the stale
  // inode forces a reload on the first tail pass.
  const std::string log = EpochLog::log_path(opts_.dir);
  log_ino_ = log_inode(log);
  const auto scan = resilience::scan_records(log);
  cursor_ = scan.bytes_valid;
}

StandbyReplica::~StandbyReplica() { stop(); }

std::uint64_t StandbyReplica::tail_once() {
  std::lock_guard<std::mutex> lock(mu_);
  GA_CHECK(store_ != nullptr, "standby: already promoted");
  ++stats_.tail_passes;
  const std::string log = EpochLog::log_path(opts_.dir);
  std::uint64_t applied = 0;
  try {
    std::uint64_t size = 0;
    if (fs::exists(log)) size = resilience::file_size(log);
    const std::uint64_t ino = log_inode(log);
    if (size < cursor_ || (log_ino_ != 0 && ino != 0 && ino != log_ino_)) {
      // The primary rewrote the log (checkpoint truncation renames a new
      // file into place). Whether or not the new file is shorter than the
      // cursor, the byte cursor is meaningless in it: full reload from the
      // durable image.
      reload();
      return 0;
    }
    if (log_ino_ == 0) log_ino_ = ino;
    resilience::RecordScanResult scan;
    bool scan_threw = false;
    try {
      scan = resilience::scan_records_from(log, cursor_, opts_.policy);
    } catch (const Error&) {
      scan_threw = true;  // kThrow policy hit a bad CRC at the cursor
    }
    for (auto& rec : scan.records) {
      if (rec.seq <= store_->epoch()) continue;  // covered by the base image
      if (rec.seq != store_->epoch() + 1) {
        // Seq gap: the file was swapped between the size probe and the
        // scan.
        reload();
        return applied;
      }
      DeltaBatch batch;
      DeltaSummary logged;
      decode_epoch_payload(rec.payload.data(), rec.payload.size(), &batch,
                           &logged);
      store_->apply(batch);
      ++applied;
    }
    // A torn frame here usually means the writer is mid-append: leave the
    // cursor at the clean prefix and pick the record up next pass.
    if (!scan_threw) cursor_ = scan.bytes_valid;
    if (scan_threw || scan.corrupt_records > 0 ||
        (scan.torn_tail && scan.records.empty())) {
      // Garbage at the cursor has two explanations: genuine corruption,
      // or a log swap the inode probe raced past — a mid-frame cursor in
      // the new file reads bytes that mimic corruption or a torn frame
      // that never completes, stalling the tail forever. Cross-check
      // against a from-zero scan: a clean prefix that disagrees with the
      // cursor, or durable records beyond the replica's epoch, means the
      // file was swapped. Genuine corruption agrees with the cursor and
      // (correctly) stays stalled rather than reload-spinning.
      const auto full = resilience::scan_records(log);
      if (full.bytes_valid != cursor_ ||
          (!full.records.empty() &&
           full.records.back().seq > store_->epoch())) {
        reload();
        return applied;
      }
    }
  } catch (const Error&) {
    // Checkpoint/log swapped mid-pass (the primary's truncate window) —
    // every read raced a rename. Retry from scratch next pass.
    return applied;
  }
  stats_.epochs_applied += applied;
  if (applied > 0 && obs::enabled()) {
    obs::MetricsRegistry::global()
        .counter("store.standby.tail_epochs_total")
        .add(static_cast<double>(applied));
  }
  return applied;
}

void StandbyReplica::reload() {
  // Caller holds mu_.
  auto rec = recover(opts_);
  store_ = std::move(rec.store);
  const std::string log = EpochLog::log_path(opts_.dir);
  log_ino_ = log_inode(log);
  const auto scan = resilience::scan_records(log);
  cursor_ = scan.bytes_valid;
  ++stats_.reloads;
  if (obs::enabled()) {
    obs::MetricsRegistry::global().counter("store.standby.reloads_total").add();
  }
}

void StandbyReplica::start(std::chrono::milliseconds poll) {
  if (tailer_running_.exchange(true)) return;
  tailer_stop_.store(false);
  tailer_ = std::thread([this, poll] { tailer_main(poll); });
}

void StandbyReplica::stop() {
  if (!tailer_running_.load()) return;
  tailer_stop_.store(true);
  if (tailer_.joinable()) tailer_.join();
  tailer_running_.store(false);
}

void StandbyReplica::tailer_main(std::chrono::milliseconds poll) {
  while (!tailer_stop_.load()) {
    tail_once();
    std::this_thread::sleep_for(poll);
  }
}

GraphView StandbyReplica::view() const {
  std::lock_guard<std::mutex> lock(mu_);
  GA_CHECK(store_ != nullptr, "standby: already promoted");
  return store_->view();
}

std::uint64_t StandbyReplica::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  GA_CHECK(store_ != nullptr, "standby: already promoted");
  return store_->epoch();
}

StandbyStats StandbyReplica::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::unique_ptr<VersionedGraphStore> StandbyReplica::promote(
    std::uint64_t min_epoch) {
  stop();
  // Catch up: the writer's final fsync'd records must all land. Spin until
  // a pass applies nothing AND the floor is reached — the floor guards the
  // promote-races-last-ack window.
  for (;;) {
    const std::uint64_t applied = tail_once();
    std::uint64_t at;
    {
      std::lock_guard<std::mutex> lock(mu_);
      at = store_->epoch();
    }
    if (applied == 0 && at >= min_epoch) break;
    if (applied == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (obs::enabled()) {
    obs::MetricsRegistry::global()
        .counter("store.standby.promotions_total")
        .add();
  }
  return std::move(store_);
}

}  // namespace ga::store
