// Segmented two-tier adjacency store — the paper's Fig. 2 "projection"
// and X-Caliber two-level-memory model made real (DESIGN.md section 16).
//
// The vertex space is split into fixed-size segments (2^segment_bits
// vertices). Every segment permanently owns a *cold* home: a delta-varint
// compressed EncodedSegment (segment.hpp) that models far/large memory
// and is never dropped. A segment is *resident* when a decoded SegmentCSR
// slab additionally exists in near memory; resident bytes are metered
// against TierPolicy::budget_bytes — the hard near-memory budget.
//
// Residency has two grades:
//   pinned — promoted slabs that the eviction clock never touches. The
//            initial hot set (heaviest segments by arc count, a stand-in
//            for expected access skew) is pinned at build up to HALF of
//            budget * pinned_fraction — the other half is headroom for
//            run-time promotion: a cold segment that faults promote_after
//            times earns pinning (access-driven promotion) while the
//            total pinned byte share stays under the cap.
//   pooled — slabs faulted in on access and recycled by a clock /
//            second-chance sweep when the next admission would overflow
//            the budget.
//
// Readers acquire a std::shared_ptr pin on the decoded slab, so eviction
// is safe against concurrent traversal: the clock drops the slot's
// reference and the last reader frees the memory. In the pathological
// case where a single slab cannot fit the remaining budget at all, the
// acquire is served *transient* — decoded for that reader only, never
// installed, and accounted into the peak watermark so the budget numbers
// stay honest.
//
// Lock order: pool_mu_ (admission/eviction/accounting) before slot mu.
// The hit path takes only the slot mutex; per-segment access/fault
// counters and clock ref bits are relaxed atomics, TSan-clean by design.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/common.hpp"
#include "core/status.hpp"
#include "store/segment.hpp"

namespace ga::graph {
class CSRGraph;
}
namespace ga::resilience {
class FaultInjector;
}
namespace ga::obs {
class Counter;
class Gauge;
}

namespace ga::store {

class GraphView;

struct TierPolicy {
  /// Hard budget on resident (decoded) bytes. 0 = unbounded: everything
  /// is pinned at build and the store behaves like a compact flat CSR.
  std::size_t budget_bytes = 0;
  /// Vertices per segment = 2^segment_bits. An upper bound: when a
  /// budget is set, build() shrinks it (degree-aware) until the largest
  /// decoded slab fits in budget/4, so eviction can always make room and
  /// the budget actually holds under skew.
  std::uint32_t segment_bits = 12;
  /// Share of the budget the pinned tier may occupy (initial hot set +
  /// run-time promotions). The remainder is the fault pool's headroom.
  double pinned_fraction = 0.5;
  /// Cold faults on one segment before it earns pinning; 0 disables
  /// run-time promotion.
  std::uint32_t promote_after = 8;
};

/// Aggregate health numbers (also exported via obs as tier.* metrics).
struct TierStats {
  std::uint32_t segments = 0;
  std::uint32_t pinned = 0;
  std::uint32_t resident = 0;
  std::size_t budget_bytes = 0;
  std::size_t pinned_bytes = 0;
  std::size_t resident_bytes = 0;
  std::size_t peak_resident_bytes = 0;  // includes transient serves
  std::size_t encoded_bytes = 0;        // cold tier footprint
  std::size_t flat_equivalent_bytes = 0;
  std::uint64_t accesses = 0;
  std::uint64_t faults = 0;
  std::uint64_t evictions = 0;
  std::uint64_t promotions = 0;
  std::uint64_t transient_serves = 0;
  std::uint64_t decode_failures = 0;
};

/// One row of `ga_cli store tiers`.
struct SegmentInfo {
  std::uint32_t id = 0;
  vid_t first_vertex = 0;
  vid_t count = 0;
  eid_t arcs = 0;
  bool pinned = false;
  bool resident = false;
  std::size_t encoded_bytes = 0;
  std::size_t decoded_bytes = 0;
  std::uint64_t accesses = 0;
  std::uint64_t faults = 0;
  std::uint64_t last_promotion_tick = 0;  // 0 = pinned at build or never
};

class TieredGraph {
 public:
  using Pin = std::shared_ptr<const SegmentCSR>;

  /// Carve a flat CSR into segments, encode the cold tier, pin the
  /// heaviest segments up to budget * pinned_fraction.
  static std::shared_ptr<TieredGraph> build(const graph::CSRGraph& g,
                                            TierPolicy policy);

  /// Same, streaming from any GraphView (flat, tiered, or delta-backed)
  /// one segment at a time — the compactor's fold target. Peak transient
  /// memory is O(one segment), not O(graph).
  static std::shared_ptr<TieredGraph> build_from_view(const GraphView& view,
                                                      TierPolicy policy);

  vid_t num_vertices() const { return n_; }
  eid_t num_arcs() const { return arcs_; }
  bool directed() const { return directed_; }
  bool weighted() const { return weighted_; }
  const TierPolicy& policy() const { return policy_; }
  std::uint32_t num_segments() const {
    return static_cast<std::uint32_t>(slots_.size());
  }
  std::uint32_t segment_of(vid_t v) const { return v >> policy_.segment_bits; }

  /// Cold-tier footprint (immutable after build).
  std::size_t encoded_bytes() const { return encoded_bytes_; }
  /// Currently decoded (installed) bytes metered against the budget.
  std::size_t resident_bytes() const {
    std::lock_guard<std::mutex> pl(pool_mu_);
    return resident_bytes_;
  }

  /// Bytes a flat CSR holding the same adjacency would occupy — the
  /// denominator of every budget fraction in bench/tiered_bench.
  std::size_t flat_equivalent_bytes() const {
    return (static_cast<std::size_t>(n_) + 1) * sizeof(eid_t) +
           static_cast<std::size_t>(arcs_) * sizeof(vid_t) +
           (weighted_ ? static_cast<std::size_t>(arcs_) * sizeof(float) : 0);
  }

  /// Pin the decoded slab for one segment, faulting it in from the cold
  /// tier if needed. Throws (DataLoss) on a corrupt cold block.
  Pin acquire(std::uint32_t seg) const {
    return try_acquire(seg).value_or_throw();
  }
  core::StatusOr<Pin> try_acquire(std::uint32_t seg) const;

  /// Segment-resolution cursor for sequential traversal: callers keep one
  /// Reader per thread and the pin is re-resolved only on segment cross.
  struct Reader {
    Pin pin;
    std::uint32_t seg = UINT32_MAX;
  };

  template <typename Fn>
  void for_each_out(vid_t u, Reader& r, Fn&& fn) const {
    GA_ASSERT(u < n_);
    const std::uint32_t seg = segment_of(u);
    if (seg != r.seg || !r.pin) {
      r.pin = acquire(seg);
      r.seg = seg;
    }
    const SegmentCSR& s = *r.pin;
    const auto nbrs = s.neighbors(u);
    if (weighted_) {
      const auto ws = s.weights_of(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) fn(nbrs[i], ws[i]);
    } else {
      for (const vid_t v : nbrs) fn(v, 1.0f);
    }
  }

  template <typename Fn>
  void for_each_out(vid_t u, Fn&& fn) const {
    Reader r;
    for_each_out(u, r, static_cast<Fn&&>(fn));
  }

  eid_t out_degree(vid_t u) const {
    GA_ASSERT(u < n_);
    return acquire(segment_of(u))->degree(u);
  }

  bool has_edge(vid_t u, vid_t v) const;

  TierStats stats() const;
  std::vector<SegmentInfo> segment_table() const;

  /// Test seam: stage "tier.fault" fires on every cold-tier fault (miss),
  /// before the decode. Not owned; caller keeps it alive.
  void set_fault_injector(resilience::FaultInjector* fi) { injector_ = fi; }

  /// Test seam: XOR one payload byte of a cold block and drop any
  /// resident copy, so the next fault must hit the CRC check.
  void corrupt_cold_block_for_test(std::uint32_t seg, std::size_t byte_index,
                                   std::uint8_t xor_mask);

 private:
  struct Slot {
    EncodedSegment cold;
    mutable std::mutex mu;
    Pin hot;                     // guarded by mu
    std::size_t hot_bytes = 0;   // guarded by mu (== hot->bytes() when set)
    std::atomic<bool> pinned{false};
    std::atomic<bool> ref{false};  // clock second-chance bit
    std::atomic<std::uint64_t> accesses{0};
    std::atomic<std::uint64_t> faults{0};
    std::atomic<std::uint64_t> last_promotion{0};
  };

  TieredGraph() = default;
  static std::shared_ptr<TieredGraph> build_impl(
      vid_t n, eid_t arcs, bool directed, bool weighted, TierPolicy policy,
      const std::function<eid_t(vid_t v)>& degree,
      const std::function<void(vid_t first, SegmentCSR& seg)>& fill);
  void init_metrics();
  void finish_build();
  // Evict pooled slabs (clock sweep) until `need` more bytes fit the
  // budget or nothing evictable remains. Caller holds pool_mu_.
  void make_room_locked(std::size_t need) const;

  TierPolicy policy_;
  vid_t n_ = 0;
  eid_t arcs_ = 0;
  bool directed_ = false;
  bool weighted_ = false;
  std::size_t encoded_bytes_ = 0;
  std::vector<std::unique_ptr<Slot>> slots_;

  mutable std::mutex pool_mu_;  // accounting + clock; before any slot mu
  mutable std::size_t resident_bytes_ = 0;
  mutable std::size_t pinned_bytes_ = 0;
  // Shared with transient pins' deleters so a long-lived reader can
  // release its bytes even after this TieredGraph is gone.
  std::shared_ptr<std::atomic<std::size_t>> transient_bytes_ =
      std::make_shared<std::atomic<std::size_t>>(0);
  mutable std::size_t peak_resident_bytes_ = 0;
  mutable std::uint32_t clock_hand_ = 0;
  mutable std::uint64_t promo_tick_ = 0;
  mutable std::uint64_t evictions_ = 0;
  mutable std::uint64_t promotions_ = 0;
  mutable std::uint64_t transient_serves_ = 0;
  mutable std::atomic<std::uint64_t> faults_{0};
  mutable std::atomic<std::uint64_t> decode_failures_{0};

  resilience::FaultInjector* injector_ = nullptr;

  // Cached obs instruments (registered once; adds guarded by enabled()).
  obs::Counter* m_faults_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
  obs::Counter* m_promotions_ = nullptr;
  obs::Counter* m_decode_failures_ = nullptr;
  obs::Gauge* m_resident_ = nullptr;
  obs::Gauge* m_peak_ = nullptr;
};

}  // namespace ga::store
