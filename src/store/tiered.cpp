#include "store/tiered.hpp"

#include <algorithm>
#include <functional>
#include <numeric>

#include "graph/csr_graph.hpp"
#include "obs/metrics.hpp"
#include "resilience/fault_injection.hpp"
#include "store/graph_view.hpp"

namespace ga::store {
namespace {

TierPolicy clamp_policy(TierPolicy p) {
  if (p.segment_bits < 4) p.segment_bits = 4;
  if (p.segment_bits > 20) p.segment_bits = 20;
  if (p.pinned_fraction < 0.0) p.pinned_fraction = 0.0;
  if (p.pinned_fraction > 1.0) p.pinned_fraction = 1.0;
  return p;
}

std::size_t pinned_cap_of(const TierPolicy& p) {
  if (p.budget_bytes == 0) return static_cast<std::size_t>(-1);
  return static_cast<std::size_t>(
      static_cast<double>(p.budget_bytes) * p.pinned_fraction);
}

/// Largest segment-bit width (≤ the policy's) whose biggest decoded slab
/// stays under budget/4. Below that bound the eviction sweep can always
/// clear room for an incoming slab (the pinned share caps at
/// pinned_fraction ≤ budget), so no fault has to fall back to a
/// transient over-budget serve. Degree skew means this must be measured,
/// not assumed: one hub-heavy segment decides the answer.
std::uint32_t tuned_segment_bits(const TierPolicy& p, vid_t n, bool weighted,
                                 const std::function<eid_t(vid_t)>& degree) {
  if (p.budget_bytes == 0 || n == 0) return p.segment_bits;
  const std::size_t per_arc = weighted ? 8 : 4;
  const std::size_t slab_cap = std::max<std::size_t>(p.budget_bytes / 4, 1);
  std::vector<std::uint64_t> pref(static_cast<std::size_t>(n) + 1, 0);
  for (vid_t v = 0; v < n; ++v) pref[v + 1] = pref[v] + degree(v);
  for (std::uint32_t bits = p.segment_bits; bits > 4; --bits) {
    const vid_t seg = vid_t{1} << bits;
    std::size_t worst = 0;
    for (vid_t first = 0; first < n; first += seg) {
      const vid_t count = std::min<vid_t>(seg, n - first);
      const std::size_t slab =
          (static_cast<std::size_t>(count) + 1) * 4 +
          static_cast<std::size_t>(pref[first + count] - pref[first]) * per_arc;
      worst = std::max(worst, slab);
    }
    if (worst <= slab_cap) return bits;
  }
  return 4;  // a single 16-vertex hub segment past budget/4 can't be split
}

}  // namespace

void TieredGraph::init_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  m_faults_ = &reg.counter("tier.faults");
  m_evictions_ = &reg.counter("tier.evictions");
  m_promotions_ = &reg.counter("tier.promotions");
  m_decode_failures_ = &reg.counter("tier.decode_failures");
  m_resident_ = &reg.gauge("tier.resident_bytes");
  m_peak_ = &reg.gauge("tier.resident_peak_bytes");
}

std::shared_ptr<TieredGraph> TieredGraph::build_impl(
    vid_t n, eid_t arcs, bool directed, bool weighted, TierPolicy policy,
    const std::function<eid_t(vid_t)>& degree,
    const std::function<void(vid_t, SegmentCSR&)>& fill) {
  auto tg = std::shared_ptr<TieredGraph>(new TieredGraph());
  tg->policy_ = clamp_policy(policy);
  tg->policy_.segment_bits =
      tuned_segment_bits(tg->policy_, n, weighted, degree);
  tg->n_ = n;
  tg->arcs_ = arcs;
  tg->directed_ = directed;
  tg->weighted_ = weighted;
  tg->init_metrics();
  const vid_t seg_size = vid_t{1} << tg->policy_.segment_bits;
  const std::uint32_t num_segs =
      n == 0 ? 0 : static_cast<std::uint32_t>((n + seg_size - 1) / seg_size);
  tg->slots_.reserve(num_segs);
  for (std::uint32_t i = 0; i < num_segs; ++i) {
    SegmentCSR seg;
    seg.first_vertex = i * seg_size;
    seg.count = std::min<vid_t>(seg_size, n - seg.first_vertex);
    seg.weighted = weighted;
    seg.offsets.reserve(seg.count + 1);
    seg.offsets.push_back(0);
    fill(seg.first_vertex, seg);
    GA_CHECK(seg.targets.size() <= 0xffffffffull,
             "segment adjacency overflows 32-bit relative offsets; raise "
             "TierPolicy::segment_bits granularity");
    auto slot = std::make_unique<Slot>();
    slot->cold = encode_segment(seg);
    tg->slots_.push_back(std::move(slot));
  }
  tg->finish_build();
  return tg;
}

void TieredGraph::finish_build() {
  encoded_bytes_ = 0;
  for (const auto& s : slots_) encoded_bytes_ += s->cold.bytes();
  // Initial hot set: heaviest segments by arc count first (the best
  // degree-skew proxy available before any accesses), greedily packed
  // into HALF the pinned share of the budget. The other half stays free
  // for access-driven promotion — packing the full cap here would leave
  // promote_after with nothing to admit into, ever.
  std::vector<std::uint32_t> order(slots_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return slots_[a]->cold.arcs > slots_[b]->cold.arcs;
                   });
  const std::size_t cap =
      std::min(pinned_cap_of(policy_),
               policy_.budget_bytes == 0 ? static_cast<std::size_t>(-1)
                                         : policy_.budget_bytes) /
      (policy_.budget_bytes == 0 ? 1 : 2);
  for (const std::uint32_t id : order) {
    Slot& s = *slots_[id];
    if (pinned_bytes_ + s.cold.decoded_bytes > cap) continue;
    auto pin = std::make_shared<SegmentCSR>(
        decode_segment(s.cold).value_or_throw());  // round-trips our encoding
    const std::size_t sz = pin->bytes();
    if (pinned_bytes_ + sz > cap) continue;
    s.hot = std::move(pin);
    s.hot_bytes = sz;
    s.pinned.store(true, std::memory_order_relaxed);
    pinned_bytes_ += sz;
    resident_bytes_ += sz;
  }
  peak_resident_bytes_ = resident_bytes_;
  if (obs::enabled()) {
    m_resident_->set(static_cast<double>(resident_bytes_));
    m_peak_->set(static_cast<double>(peak_resident_bytes_));
  }
}

std::shared_ptr<TieredGraph> TieredGraph::build(const graph::CSRGraph& g,
                                                TierPolicy policy) {
  return build_impl(
      g.num_vertices(), g.num_arcs(), g.directed(), g.weighted(), policy,
      [&](vid_t v) { return g.out_degree(v); },
      [&](vid_t first, SegmentCSR& seg) {
        for (vid_t v = first; v < first + seg.count; ++v) {
          const auto nbrs = g.out_neighbors(v);
          seg.targets.insert(seg.targets.end(), nbrs.begin(), nbrs.end());
          if (seg.weighted) {
            const auto ws = g.out_weights(v);
            seg.weights.insert(seg.weights.end(), ws.begin(), ws.end());
          }
          seg.offsets.push_back(static_cast<std::uint32_t>(seg.targets.size()));
        }
      });
}

std::shared_ptr<TieredGraph> TieredGraph::build_from_view(
    const GraphView& view, TierPolicy policy) {
  return build_impl(
      view.num_vertices(), view.num_arcs(), view.directed(), view.weighted(),
      policy, [&](vid_t v) { return view.out_degree(v); },
      [&](vid_t first, SegmentCSR& seg) {
        for (vid_t v = first; v < first + seg.count; ++v) {
          view.for_each_out(v, [&](vid_t t, float w) {
            seg.targets.push_back(t);
            if (seg.weighted) seg.weights.push_back(w);
          });
          seg.offsets.push_back(static_cast<std::uint32_t>(seg.targets.size()));
        }
      });
}

void TieredGraph::make_room_locked(std::size_t need) const {
  const std::size_t budget = policy_.budget_bytes;
  const std::uint32_t n = num_segments();
  if (n == 0) return;
  // Two full revolutions bound the sweep: the first may only clear
  // second-chance bits, the second then finds a victim (or proves every
  // resident slab is pinned).
  std::uint32_t scanned = 0;
  while (resident_bytes_ + need > budget && scanned < 2 * n + 2) {
    Slot& v = *slots_[clock_hand_];
    clock_hand_ = (clock_hand_ + 1) % n;
    ++scanned;
    if (v.pinned.load(std::memory_order_relaxed)) continue;
    std::lock_guard<std::mutex> sl(v.mu);
    if (!v.hot) continue;
    if (v.ref.exchange(false, std::memory_order_relaxed)) continue;
    resident_bytes_ -= v.hot_bytes;
    v.hot.reset();  // readers holding pins keep the slab alive
    v.hot_bytes = 0;
    ++evictions_;
    if (obs::enabled()) m_evictions_->add();
  }
}

core::StatusOr<TieredGraph::Pin> TieredGraph::try_acquire(
    std::uint32_t seg) const {
  GA_ASSERT(seg < slots_.size());
  Slot& s = *slots_[seg];
  s.accesses.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> sl(s.mu);
  if (s.hot) {
    s.ref.store(true, std::memory_order_relaxed);
    return s.hot;
  }
  // Cold fault: decode under the slot mutex — it synchronizes the
  // payload read with corrupt_cold_block_for_test and keeps concurrent
  // faulters on the same segment from decoding twice — but outside
  // pool_mu_, so admission/eviction on *other* segments proceeds.
  if (injector_) injector_->on_call("tier.fault");
  s.faults.fetch_add(1, std::memory_order_relaxed);
  faults_.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) m_faults_->add();
  auto decoded = decode_segment(s.cold);
  sl.unlock();
  if (!decoded.ok()) {
    decode_failures_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) m_decode_failures_->add();
    return decoded.status();
  }
  Pin pin = std::make_shared<SegmentCSR>(std::move(decoded).value());
  const std::size_t sz = pin->bytes();

  std::lock_guard<std::mutex> pl(pool_mu_);
  {
    std::lock_guard<std::mutex> sl(s.mu);
    if (s.hot) {  // lost an install race; ours is redundant
      s.ref.store(true, std::memory_order_relaxed);
      return s.hot;
    }
  }
  // Access-driven promotion: a segment that keeps faulting earns pinning
  // while the pinned byte share stays under its cap.
  bool pin_now = false;
  if (!s.pinned.load(std::memory_order_relaxed) && policy_.promote_after > 0 &&
      s.faults.load(std::memory_order_relaxed) >= policy_.promote_after &&
      pinned_bytes_ + sz <= pinned_cap_of(policy_)) {
    pin_now = true;
  }
  if (policy_.budget_bytes > 0) make_room_locked(sz);
  const bool fits = policy_.budget_bytes == 0 ||
                    resident_bytes_ + sz <= policy_.budget_bytes;
  if (!fits && !pin_now) {
    // The slab cannot fit even after a full eviction sweep (budget
    // smaller than one segment, or everything resident is pinned).
    // Serve this reader a transient copy — never installed, but honest:
    // its bytes ride the peak watermark until the pin drops.
    ++transient_serves_;
    auto counter = transient_bytes_;
    counter->fetch_add(sz, std::memory_order_relaxed);
    peak_resident_bytes_ =
        std::max(peak_resident_bytes_,
                 resident_bytes_ + counter->load(std::memory_order_relaxed));
    if (obs::enabled()) {
      m_peak_->set(static_cast<double>(peak_resident_bytes_));
    }
    return Pin(pin.get(), [counter, sz, keep = pin](const SegmentCSR*) mutable {
      counter->fetch_sub(sz, std::memory_order_relaxed);
      keep.reset();
    });
  }
  if (pin_now) {
    s.pinned.store(true, std::memory_order_relaxed);
    pinned_bytes_ += sz;
    ++promotions_;
    s.last_promotion.store(++promo_tick_, std::memory_order_relaxed);
    if (obs::enabled()) m_promotions_->add();
  }
  {
    std::lock_guard<std::mutex> sl(s.mu);
    s.hot = pin;
    s.hot_bytes = sz;
  }
  s.ref.store(true, std::memory_order_relaxed);
  resident_bytes_ += sz;
  peak_resident_bytes_ = std::max(
      peak_resident_bytes_,
      resident_bytes_ + transient_bytes_->load(std::memory_order_relaxed));
  if (obs::enabled()) {
    m_resident_->set(static_cast<double>(resident_bytes_));
    m_peak_->set(static_cast<double>(peak_resident_bytes_));
  }
  return pin;
}

bool TieredGraph::has_edge(vid_t u, vid_t v) const {
  GA_ASSERT(u < n_);
  const Pin p = acquire(segment_of(u));
  const auto nbrs = p->neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

TierStats TieredGraph::stats() const {
  TierStats st;
  std::lock_guard<std::mutex> pl(pool_mu_);
  st.segments = num_segments();
  st.budget_bytes = policy_.budget_bytes;
  st.pinned_bytes = pinned_bytes_;
  st.resident_bytes = resident_bytes_;
  st.peak_resident_bytes = peak_resident_bytes_;
  st.encoded_bytes = encoded_bytes_;
  st.flat_equivalent_bytes = flat_equivalent_bytes();
  st.evictions = evictions_;
  st.promotions = promotions_;
  st.transient_serves = transient_serves_;
  st.faults = faults_.load(std::memory_order_relaxed);
  st.decode_failures = decode_failures_.load(std::memory_order_relaxed);
  for (const auto& sp : slots_) {
    Slot& s = *sp;
    st.accesses += s.accesses.load(std::memory_order_relaxed);
    if (s.pinned.load(std::memory_order_relaxed)) ++st.pinned;
    std::lock_guard<std::mutex> sl(s.mu);
    if (s.hot) ++st.resident;
  }
  return st;
}

std::vector<SegmentInfo> TieredGraph::segment_table() const {
  std::vector<SegmentInfo> rows;
  std::lock_guard<std::mutex> pl(pool_mu_);
  rows.reserve(slots_.size());
  for (std::uint32_t id = 0; id < slots_.size(); ++id) {
    Slot& s = *slots_[id];
    SegmentInfo r;
    r.id = id;
    r.first_vertex = s.cold.first_vertex;
    r.count = s.cold.count;
    r.arcs = s.cold.arcs;
    r.pinned = s.pinned.load(std::memory_order_relaxed);
    r.encoded_bytes = s.cold.bytes();
    r.accesses = s.accesses.load(std::memory_order_relaxed);
    r.faults = s.faults.load(std::memory_order_relaxed);
    r.last_promotion_tick = s.last_promotion.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> sl(s.mu);
      r.resident = s.hot != nullptr;
      r.decoded_bytes = s.hot ? s.hot_bytes : s.cold.decoded_bytes;
    }
    rows.push_back(r);
  }
  return rows;
}

void TieredGraph::corrupt_cold_block_for_test(std::uint32_t seg,
                                              std::size_t byte_index,
                                              std::uint8_t xor_mask) {
  GA_ASSERT(seg < slots_.size());
  Slot& s = *slots_[seg];
  std::lock_guard<std::mutex> pl(pool_mu_);
  std::lock_guard<std::mutex> sl(s.mu);
  GA_CHECK(byte_index < s.cold.payload.size(),
           "corrupt_cold_block_for_test: byte index out of range");
  s.cold.payload[byte_index] ^= xor_mask;
  if (s.hot) {  // force the next access through the (now poisoned) decode
    resident_bytes_ -= s.hot_bytes;
    if (s.pinned.exchange(false, std::memory_order_relaxed)) {
      pinned_bytes_ -= s.hot_bytes;
    }
    s.hot.reset();
    s.hot_bytes = 0;
  }
}

}  // namespace ga::store
