#include "archmodel/nora_model.hpp"

#include <algorithm>
#include <sstream>

#include "core/common.hpp"

namespace ga::archmodel {

std::vector<StepDemand> nora_steps(const NoraProblem& p) {
  GA_CHECK(p.raw_tb > 0 && p.deduped_tb > 0, "nora_steps: empty problem");
  const double raw = p.raw_tb * 1000.0;   // GB
  const double db = p.deduped_tb * 1000.0;
  const double k = p.ops_per_byte;

  // Nine steps of the weekly batch pipeline ([23]): demands are
  // (Gop, GB_mem, irregularity, GB_disk, GB_net). Coefficients calibrated
  // so the 2012 baseline reproduces Fig. 3's profile: disk/network tall
  // poles, no uniformly bounding resource, and the §IV upgrade ratios.
  return {
      // 1. Bulk ingest: stream raw data off disk, light parsing.
      {"ingest", 0.5 * k * raw, 1.0 * raw, 0.05, 1.0 * raw, 0.08 * raw},
      // 2. Parse/clean/normalize: string-heavy compute over all raw bytes.
      {"parse_clean", 10.0 * k * raw, 2.0 * raw, 0.10, 0.0, 0.0},
      // 3. Blocking shuffle: all-to-all exchange keyed by blocking code.
      {"block_shuffle", 1.0 * k * raw, 2.0 * raw, 0.30, 0.0, 0.55 * raw},
      // 4. Dedup join: multi-pass hash probes within blocks (irregular
      //    memory; traffic counts useful words, the line-waste penalty is
      //    the machine's).
      {"dedup_join", 5.0 * k * raw, 40.0 * raw, 0.80, 0.0, 0.04 * raw},
      // 5. Build persistent graph: link records into vertices/edges.
      {"build_graph", 2.0 * k * db, 4.0 * db, 0.70, 1.0 * db, 0.20 * db},
      // 6. NORA relationship pass: pointer-chasing joins over the graph —
      //    the bulk of the weekly computation, nearly fully irregular.
      {"nora_pass", 12.0 * k * db, 150.0 * db, 0.95, 0.0, 0.20 * db},
      // 7. Aggregate relationship scores across the cluster.
      {"aggregate", 2.0 * k * db, 3.0 * db, 0.50, 0.0, 0.95 * db},
      // 8. Rank/sort precomputed answers.
      {"rank_sort", 7.0 * k * db, 4.0 * db, 0.40, 0.0, 0.12 * db},
      // 9. Publish the indexed answer database to disk.
      {"publish", 0.3 * k * db, 1.0 * db, 0.05, 1.5 * db, 0.10 * db},
  };
}

ModelResult evaluate(const MachineConfig& m,
                     const std::vector<StepDemand>& steps) {
  ModelResult out;
  out.machine = m.name;
  out.racks = m.racks;
  out.total_watts = m.total_watts();
  for (const StepDemand& s : steps) {
    StepResult r;
    r.name = s.name;
    r.resource_seconds[static_cast<int>(Resource::kCompute)] =
        s.ops_gop / m.effective_compute_capacity(s.mem_irregularity);
    r.resource_seconds[static_cast<int>(Resource::kMemory)] =
        s.mem_gb / m.effective_mem_capacity(s.mem_irregularity);
    r.resource_seconds[static_cast<int>(Resource::kDisk)] =
        s.disk_gb > 0 ? s.disk_gb / m.capacity(Resource::kDisk) : 0.0;
    r.resource_seconds[static_cast<int>(Resource::kNetwork)] =
        s.net_gb > 0
            ? s.net_gb * m.net_demand_factor / m.capacity(Resource::kNetwork)
            : 0.0;
    r.seconds = 0.0;
    for (Resource res : kAllResources) {
      const double t = r.resource_seconds[static_cast<int>(res)];
      if (t > r.seconds) {
        r.seconds = t;
        r.bounding = res;
      }
    }
    ++out.bound_counts[static_cast<int>(r.bounding)];
    out.total_seconds += r.seconds;
    out.steps.push_back(r);
  }
  return out;
}

double speedup(const ModelResult& m, const ModelResult& baseline) {
  GA_CHECK(m.total_seconds > 0, "speedup: empty result");
  return baseline.total_seconds / m.total_seconds;
}

std::string format_result(const ModelResult& r) {
  std::ostringstream os;
  os << "== " << r.machine << " (" << r.racks << " racks, "
     << r.total_watts / 1000.0 << " kW) ==\n";
  os << "  step              compute    memory      disk   network  bound\n";
  char buf[160];
  for (const StepResult& s : r.steps) {
    std::snprintf(buf, sizeof(buf),
                  "  %-16s %9.1f %9.1f %9.1f %9.1f  %s%s\n", s.name.c_str(),
                  s.resource_seconds[0], s.resource_seconds[1],
                  s.resource_seconds[2], s.resource_seconds[3],
                  resource_name(s.bounding),
                  "");
    os << buf;
  }
  std::snprintf(buf, sizeof(buf), "  TOTAL %.1f s  (bounding steps: %dC %dM %dD %dN)\n",
                r.total_seconds, r.bound_counts[0], r.bound_counts[1],
                r.bound_counts[2], r.bound_counts[3]);
  os << buf;
  return os.str();
}

}  // namespace ga::archmodel
