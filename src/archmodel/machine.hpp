// Parameterized machine model for the NORA performance study (§IV,
// Figs. 3 & 6). A configuration is racks × nodes × per-node capability in
// the four resources the paper models: instruction processing rate, memory
// bandwidth, disk bandwidth, and network injection bandwidth.
//
// Irregular-access handling is the model's key architectural
// differentiator: conventional cache-line machines waste most of a line on
// random single-word accesses, so their EFFECTIVE memory bandwidth on an
// irregular step is peak/irregular_penalty. Near-memory architectures
// (3D stacks, migrating threads) access at word granularity and keep their
// peak (penalty ~1). Migrating-thread machines additionally halve network
// demand (one-way thread ship vs request+reply; §V.B).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "core/common.hpp"

namespace ga::archmodel {

enum class Resource : std::uint8_t { kCompute = 0, kMemory, kDisk, kNetwork };
inline constexpr std::array<Resource, 4> kAllResources = {
    Resource::kCompute, Resource::kMemory, Resource::kDisk, Resource::kNetwork};
const char* resource_name(Resource r);

struct MachineConfig {
  std::string name;
  double racks = 1.0;
  double nodes_per_rack = 40.0;

  // Per-node capabilities.
  double giga_ops = 10.0;      // sustained Gop/s (cores * GHz * IPC)
  double mem_bw_gbs = 40.0;    // peak GB/s
  double disk_bw_gbs = 0.16;   // GB/s
  double net_bw_gbs = 0.1;     // injection GB/s
  double watts_per_node = 400.0;

  /// Cache-line waste factor on fully irregular access (≈ line bytes /
  /// useful bytes). 8 for 64B-line machines touching 8B words; ~1 for
  /// word-granular near-memory designs.
  double irregular_penalty = 8.0;
  /// Network demand multiplier: 1.0 conventional (request+reply), 0.5 for
  /// migrating threads (one-way state ship).
  double net_demand_factor = 1.0;
  /// Fraction of peak instruction rate retained on fully irregular
  /// (dependent random access) code. Conventional cores stall to a few
  /// percent of peak on pointer chasing; heavily multithreaded near-memory
  /// designs (Emu Gossamer cores, stack-base cores) stay near 1.0.
  double latency_tolerance = 0.10;

  /// Effective compute capacity for a step with given irregularity.
  double effective_compute_capacity(double irregularity) const;

  double num_nodes() const { return racks * nodes_per_rack; }
  double total_watts() const { return num_nodes() * watts_per_node; }

  /// Aggregate capacity for a resource in Gunits/s.
  double capacity(Resource r) const;
  /// Effective memory capacity for a step with given irregularity in [0,1].
  double effective_mem_capacity(double irregularity) const;
};

}  // namespace ga::archmodel
