#include "archmodel/machine.hpp"

#include "core/common.hpp"

namespace ga::archmodel {

const char* resource_name(Resource r) {
  switch (r) {
    case Resource::kCompute: return "compute";
    case Resource::kMemory: return "memory";
    case Resource::kDisk: return "disk";
    case Resource::kNetwork: return "network";
  }
  return "?";
}

double MachineConfig::capacity(Resource r) const {
  const double n = num_nodes();
  switch (r) {
    case Resource::kCompute: return n * giga_ops;
    case Resource::kMemory: return n * mem_bw_gbs;
    case Resource::kDisk: return n * disk_bw_gbs;
    case Resource::kNetwork: return n * net_bw_gbs;
  }
  GA_ASSERT(false);
  return 0.0;
}

double MachineConfig::effective_compute_capacity(double irregularity) const {
  GA_CHECK(irregularity >= 0.0 && irregularity <= 1.0,
           "irregularity must be in [0,1]");
  return num_nodes() * giga_ops *
         ((1.0 - irregularity) + irregularity * latency_tolerance);
}

double MachineConfig::effective_mem_capacity(double irregularity) const {
  GA_CHECK(irregularity >= 0.0 && irregularity <= 1.0,
           "irregularity must be in [0,1]");
  // Blend: regular fraction at peak, irregular fraction at peak/penalty.
  const double eff_per_node =
      mem_bw_gbs * ((1.0 - irregularity) + irregularity / irregular_penalty);
  return num_nodes() * eff_per_node;
}

}  // namespace ga::archmodel
