#include "archmodel/configs.hpp"

namespace ga::archmodel {

// Baseline per [23]: 10 racks x 40 dual-socket 6-core 2.4 GHz blades,
// ~0.16 GB/s local disk, ~0.1 GB/s network injection. Sustained IPC on
// record-handling/graph code is well under 1; 0.25/core gives 7.2 Gop/s
// per node.
MachineConfig baseline_2012() {
  MachineConfig m;
  m.name = "Baseline-2012";
  m.racks = 10;
  m.nodes_per_rack = 40;
  m.giga_ops = 12 * 2.4 * 0.5;  // 14.4 sustained on regular code
  m.latency_tolerance = 0.08;
  m.mem_bw_gbs = 40.0;
  m.disk_bw_gbs = 0.16;
  m.net_bw_gbs = 0.1;
  m.watts_per_node = 400.0;
  m.irregular_penalty = 16.0;  // 64B lines vs 4B graph words
  return m;
}

// "More cores (24) at a higher clock rate (3 GHz)": a platform upgrade —
// the new socket also brings a DDR generation (~2x peak memory BW), but
// not the dedicated 3X-memory option below.
MachineConfig upgrade_cpu_only() {
  MachineConfig m = baseline_2012();
  m.name = "Upgrade-CPU";
  m.giga_ops = 24 * 3.0 * 0.5;  // 36 — 2.5x the baseline
  m.latency_tolerance = 0.10;   // deeper miss queues
  m.mem_bw_gbs = 80.0;
  m.watts_per_node = 450.0;
  return m;
}

MachineConfig upgrade_memory_only() {
  MachineConfig m = baseline_2012();
  m.name = "Upgrade-Memory";
  m.mem_bw_gbs = 120.0;  // 3X
  return m;
}

MachineConfig upgrade_disk_only() {
  MachineConfig m = baseline_2012();
  m.name = "Upgrade-Disk";
  m.disk_bw_gbs = 6.4;  // SSD/RAMdisk: 40x
  return m;
}

MachineConfig upgrade_network_only() {
  MachineConfig m = baseline_2012();
  m.name = "Upgrade-Network";
  m.net_bw_gbs = 24.0;  // InfiniBand
  return m;
}

MachineConfig upgrade_all_but_cpu() {
  MachineConfig m = baseline_2012();
  m.name = "Upgrade-AllButCPU";
  m.mem_bw_gbs = 120.0;
  m.disk_bw_gbs = 6.4;
  m.net_bw_gbs = 24.0;
  m.watts_per_node = 500.0;
  return m;
}

MachineConfig upgrade_all() {
  MachineConfig m = upgrade_all_but_cpu();
  m.name = "Upgrade-All";
  m.giga_ops = 24 * 3.0 * 0.5;
  m.latency_tolerance = 0.10;
  // The 3X-memory option stacks on the new platform's 2x DDR generation.
  m.mem_bw_gbs = 240.0;
  m.watts_per_node = 550.0;
  return m;
}

// HPE Moonshot-style: 2 racks of dense low-power cartridges. Per node:
// 8 small cores at 1.5 GHz with lower IPC, modest memory, local flash,
// and a decent fabric NIC. Lower compute makes compute the bound on
// several steps (the paper: 4 of the 9).
MachineConfig lightweight(double racks) {
  MachineConfig m;
  m.name = "Lightweight-ARM";
  m.racks = racks;
  m.nodes_per_rack = 360;
  m.giga_ops = 8 * 1.5 * 0.40;  // 4.8
  m.latency_tolerance = 0.10;
  m.mem_bw_gbs = 12.0;
  m.disk_bw_gbs = 1.0;
  m.net_bw_gbs = 2.5;
  m.watts_per_node = 35.0;
  m.irregular_penalty = 16.0;
  return m;
}

// X-Caliber / Knights-Landing-like: two-level memory with close-in 3D
// stacks: large regular AND irregular bandwidth (finer-grain access cuts
// the line-waste penalty), NVMe storage, fat links.
MachineConfig two_level_memory(double racks) {
  MachineConfig m;
  m.name = "TwoLevel-XCaliber";
  m.racks = racks;
  m.nodes_per_rack = 16;         // fat two-level-memory nodes
  m.giga_ops = 32 * 2.0 * 0.5;  // 32
  m.latency_tolerance = 0.25;  // 4-way SMT rides out part of the stalls
  m.mem_bw_gbs = 400.0;          // stacked close memory
  m.disk_bw_gbs = 12.0;          // NVM tier
  m.net_bw_gbs = 24.0;
  m.watts_per_node = 500.0;
  m.irregular_penalty = 6.0;     // sub-line sector access to the stack
  return m;
}

// "Sea of stacks": processing moved to the base of every 3D memory stack;
// DRAM + NVM in-stack (no separate disk), NIC-less stack-to-stack fabric.
// One rack holds hundreds of stacks; accesses are word-granular.
MachineConfig stack3d(double racks) {
  MachineConfig m;
  m.name = "3DStack-Sea";
  m.racks = racks;
  m.nodes_per_rack = 512;        // stacks per rack
  m.giga_ops = 64 * 1.0 * 0.50;  // 32 — many simple near-memory cores
  m.latency_tolerance = 1.0;   // barrel-style threading at the stack base
  m.mem_bw_gbs = 320.0;          // per-stack internal bandwidth
  m.disk_bw_gbs = 24.0;          // in-stack NVM at near-memory speed
  m.net_bw_gbs = 32.0;           // stack fabric
  m.watts_per_node = 40.0;
  m.irregular_penalty = 1.0;     // word-granular near-memory access
  return m;
}

// Emu1: the current migrating-thread design extended to rack size (FPGA
// nodelets: low clock). Gossamer cores never stall on remote data (threads
// migrate), so effective memory bandwidth is word-granular, and network
// demand is halved (one-way thread ships vs request+reply).
MachineConfig emu1(double racks) {
  MachineConfig m;
  m.name = "Emu1-rack";
  m.racks = racks;
  m.nodes_per_rack = 64;         // 8-nodelet nodes
  m.giga_ops = 8 * 4 * 0.175;    // nodelets x GCs x FPGA-clock ops: 5.6
  m.latency_tolerance = 1.0;     // 64 threads per GC: never latency-bound
  m.mem_bw_gbs = 80.0;           // per-node aggregate nodelet channels
  m.disk_bw_gbs = 2.0;
  m.net_bw_gbs = 6.0;
  m.watts_per_node = 60.0;
  m.irregular_penalty = 1.0;     // all references are local after migration
  m.net_demand_factor = 0.5;     // one-way migration traffic
  return m;
}

// Emu2: ASIC in place of the FPGA (~8x clock).
MachineConfig emu2(double racks) {
  MachineConfig m = emu1(racks);
  m.name = "Emu2-ASIC";
  m.giga_ops = 8 * 4 * 1.4;      // 44.8
  m.mem_bw_gbs = 160.0;
  m.net_bw_gbs = 12.0;
  m.watts_per_node = 80.0;
  return m;
}

// Emu3: the Emu architecture as the base logic die of a 3D memory stack —
// stack3d densities with migrating-thread semantics.
MachineConfig emu3(double racks) {
  MachineConfig m;
  m.name = "Emu3-3DStack";
  m.racks = racks;
  m.nodes_per_rack = 512;
  m.giga_ops = 160 * 1.0 * 0.50; // 80 — dozens of nodelets per stack
  m.latency_tolerance = 1.0;
  m.mem_bw_gbs = 640.0;          // stacked vault bandwidth, 2 gens out
  m.disk_bw_gbs = 24.0;
  m.net_bw_gbs = 32.0;
  m.watts_per_node = 40.0;
  m.irregular_penalty = 1.0;
  m.net_demand_factor = 0.5;
  return m;
}

std::vector<MachineConfig> fig3_configs() {
  return {baseline_2012(),      upgrade_cpu_only(),  upgrade_memory_only(),
          upgrade_disk_only(),  upgrade_network_only(), upgrade_all_but_cpu(),
          upgrade_all(),        lightweight(),       two_level_memory(),
          stack3d()};
}

std::vector<MachineConfig> fig6_configs() {
  auto v = fig3_configs();
  v.push_back(emu1());
  v.push_back(emu2());
  v.push_back(emu3());
  return v;
}

}  // namespace ga::archmodel
