// The 9-step NORA application demand model (§IV, [23]): each step demands
// work from the four resources as a function of problem size; on a given
// machine the step's execution time is set by its BOUNDING resource
// (tallest bar in Fig. 3) and total time is the sum over steps.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "archmodel/machine.hpp"

namespace ga::archmodel {

struct NoraProblem {
  double raw_tb = 40.0;        // undeduped public-records input (paper: 40+ TB)
  double deduped_tb = 6.0;     // persistent database (paper: 4-7+ TB)
  double ops_per_byte = 2.0;   // base compute intensity of record handling
};

/// One pipeline step's total demand (absolute units: Gops / GB).
struct StepDemand {
  std::string name;
  double ops_gop = 0.0;       // instructions (Gop)
  double mem_gb = 0.0;        // memory traffic (GB, at word granularity)
  double mem_irregularity = 0.0;  // fraction of memory traffic that is random
  double disk_gb = 0.0;       // disk traffic (GB)
  double net_gb = 0.0;        // network traffic (GB)
};

/// The canonical 9 steps: ingest, parse/clean, block/shuffle, dedup-join,
/// build-graph, NORA relationship pass, aggregate, rank/sort, publish.
std::vector<StepDemand> nora_steps(const NoraProblem& p = {});

struct StepResult {
  std::string name;
  /// Time each resource alone would need (seconds) — the four bars of
  /// Fig. 3 for this step.
  std::array<double, 4> resource_seconds{};
  Resource bounding = Resource::kCompute;
  double seconds = 0.0;  // max of the four
};

struct ModelResult {
  std::string machine;
  std::vector<StepResult> steps;
  double total_seconds = 0.0;
  double total_watts = 0.0;
  double racks = 0.0;
  /// Count of steps bound by each resource.
  std::array<int, 4> bound_counts{};
};

ModelResult evaluate(const MachineConfig& m,
                     const std::vector<StepDemand>& steps);

/// Speedup of `m` over `baseline` on the same steps.
double speedup(const ModelResult& m, const ModelResult& baseline);

/// Render a Fig. 3-style per-step table (resource seconds + bounding).
std::string format_result(const ModelResult& r);

}  // namespace ga::archmodel
