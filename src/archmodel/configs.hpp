// The machine configurations of §IV and §V.B (Figs. 3 & 6): the 2012
// baseline, its single-component and combined upgrades, the lightweight
// (Moonshot/ARM) system, the X-Caliber two-level-memory system, the
// 3D-stack "sea of memory stacks", and the three Emu migrating-thread
// generations (Emu1 FPGA rack, Emu2 ASIC, Emu3 3D stack).
#pragma once

#include <vector>

#include "archmodel/machine.hpp"

namespace ga::archmodel {

MachineConfig baseline_2012();          // 10 racks of 2012 Xeon blades
MachineConfig upgrade_cpu_only();       // new microprocessor platform only
MachineConfig upgrade_memory_only();    // 3X memory bandwidth
MachineConfig upgrade_disk_only();      // SSD/RAMdisk storage
MachineConfig upgrade_network_only();   // InfiniBand up to 24 GB/s
MachineConfig upgrade_all_but_cpu();
MachineConfig upgrade_all();
MachineConfig lightweight(double racks = 2.0);   // ARM/Moonshot style
MachineConfig two_level_memory(double racks = 3.0);  // X-Caliber style
MachineConfig stack3d(double racks = 1.0);       // sea of 3D memory stacks
MachineConfig emu1(double racks = 1.0);          // current design at rack scale
MachineConfig emu2(double racks = 1.0);          // ASIC implementation
MachineConfig emu3(double racks = 1.0);          // 3D-stack implementation

/// The Fig. 3 set (conventional + near-term) in presentation order.
std::vector<MachineConfig> fig3_configs();
/// The Fig. 6 set (adds the Emu generations).
std::vector<MachineConfig> fig6_configs();

}  // namespace ga::archmodel
