#include "server/scheduler.hpp"

#include <algorithm>
#include <cstdio>

#include "core/timer.hpp"
#include "engine/multi_source.hpp"
#include "kernels/bfs.hpp"
#include "kernels/connected_components.hpp"
#include "kernels/incremental.hpp"
#include "kernels/jaccard.hpp"
#include "kernels/pagerank.hpp"
#include "store/delta_summary.hpp"

namespace ga::server {

namespace {

/// Largest dependency set recorded on a result before it degrades to a
/// global footprint. Bounds both the per-entry memory and the per-publish
/// intersection work in the cache.
constexpr std::size_t kFootprintCap = 4096;

/// BFS answers depend only on the adjacency of the reached set: an arc
/// change can alter a distance only if some changed endpoint is reachable,
/// and the DeltaSummary lists both endpoints of every effective arc op —
/// so a delta disjoint from the reached set cannot change the answer.
void set_bfs_footprint(QueryResult& r) {
  if (r.reached > kFootprintCap) return;  // stay global
  std::vector<vid_t> verts;
  verts.reserve(static_cast<std::size_t>(r.reached));
  for (vid_t u = 0; u < r.dist.size(); ++u) {
    if (r.dist[u] != kInfDist) verts.push_back(u);
  }
  r.footprint.global = false;
  r.footprint.verts = std::move(verts);
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Serving-grade PageRank settings: bounded iteration count so one batch
/// query cannot occupy a worker for an unbounded convergence tail.
kernels::PageRankOptions serving_pagerank_opts() {
  kernels::PageRankOptions o;
  o.tolerance = 1e-6;
  o.max_iters = 50;
  return o;
}

/// Serving-grade refinement settings. The warm-iteration cap matches the
/// batch cap: a warm start only ever needs fewer sweeps than a cold one,
/// and a tighter cap would make kNotConverged fallbacks the common case —
/// turning the incremental tier into dead code on structural epochs.
kernels::IncrementalOptions serving_inc_opts() {
  kernels::IncrementalOptions o;
  o.max_warm_iters = serving_pagerank_opts().max_iters;
  return o;
}

/// Registry sink for one resolved query: total + per-status-code counters
/// (the unified core::Status taxonomy), latency histograms for queries
/// that actually ran a kernel, hit counter for cache serves.
void obs_count_query(const QueryResult& r) {
  if (!obs::enabled()) return;
  auto& reg = obs::MetricsRegistry::global();
  static obs::Counter& c_total = reg.counter("serve.queries_total");
  static obs::Histogram& h_exec = reg.histogram("serve.exec_us");
  static obs::Histogram& h_wait = reg.histogram("serve.wait_us");
  c_total.add();
  reg.counter(std::string("serve.status.") +
              core::status_code_name(status_code(r.status)))
      .add();
  if (r.cache_hit) {
    static obs::Counter& c_hits = reg.counter("serve.cache_hits_total");
    c_hits.add();
  } else if (r.ok()) {
    h_exec.observe(r.exec_ms * 1e3);
    h_wait.observe(r.wait_ms * 1e3);
  }
}

}  // namespace

QueryScheduler::QueryScheduler(SnapshotManager& snaps, SchedulerOptions opts)
    : snaps_(snaps),
      opts_(opts),
      cache_(opts.cache_capacity, opts.cache_shards),
      // ThreadPool counts the calling thread, so +1 yields `workers`
      // dedicated task threads even though this object never calls
      // parallel_for on its own pool.
      pool_(std::max(1u, opts.workers) + 1) {
  opts_.workers = std::max(1u, opts_.workers);
  opts_.max_bfs_batch = std::clamp<std::size_t>(opts_.max_bfs_batch, 1,
                                                engine::kMaxMultiSourceSeeds);
  paused_ = opts_.start_paused;
  // Epoch advance: delta-aware invalidation (footprint-disjoint entries
  // carry forward) + warm incremental state maintenance.
  snaps_.set_epoch_listener(
      [this](std::uint64_t epoch, const store::GraphView& view) {
        on_epoch_published(epoch, view);
      });
}

QueryScheduler::~QueryScheduler() {
  resume();
  drain();
  snaps_.set_epoch_listener({});
}

std::future<QueryResult> QueryScheduler::submit(const QueryDesc& desc) {
  std::promise<QueryResult> prom;
  std::future<QueryResult> fut = prom.get_future();
  {
    std::lock_guard<std::mutex> lk(qmu_);
    ++stats_.submitted;
  }

  const std::uint64_t epoch = snaps_.current_epoch();
  if (epoch == 0) {
    QueryResult r;
    r.status = QueryStatus::kNoSnapshot;
    r.kind = desc.kind;
    {
      std::lock_guard<std::mutex> lk(qmu_);
      ++stats_.no_snapshot;
    }
    obs_count_query(r);
    prom.set_value(std::move(r));
    return fut;
  }

  if (desc.use_cache) {
    if (auto hit = cache_.lookup(QueryKey::of(desc, epoch))) {
      QueryResult r = *hit;  // immutable shared entry; copy for the caller
      r.cache_hit = true;
      r.wait_ms = 0.0;
      r.exec_ms = 0.0;  // no kernel ran for this caller
      {
        std::lock_guard<std::mutex> lk(qmu_);
        ++stats_.cache_hits;
      }
      obs_count_query(r);
      prom.set_value(std::move(r));
      return fut;
    }
  }

  CostEstimate est;
  if (auto rejected = admission_check(desc, est)) {
    obs_count_query(*rejected);
    prom.set_value(std::move(*rejected));
    return fut;
  }

  auto p = std::make_unique<Pending>();
  p->desc = desc;
  p->promise = std::move(prom);
  p->est = est;
  p->submitted_at = std::chrono::steady_clock::now();
  enqueue(std::move(p));
  return fut;
}

std::optional<QueryResult> QueryScheduler::admission_check(
    const QueryDesc& desc, CostEstimate& est) {
  {
    SnapshotRef snap = snaps_.acquire();
    if (!snap) {
      QueryResult r;
      r.status = QueryStatus::kNoSnapshot;
      r.kind = desc.kind;
      std::lock_guard<std::mutex> lk(qmu_);
      ++stats_.no_snapshot;
      return r;
    }
    est = model_.predict(desc, snap.view().num_vertices(),
                         snap.view().num_arcs());
  }

  const std::size_t ci = static_cast<std::size_t>(desc.klass);
  std::lock_guard<std::mutex> lk(qmu_);
  QueryResult r;
  r.kind = desc.kind;
  r.predicted_ms = est.ms;
  r.epoch = snaps_.current_epoch();
  if (queues_[ci].size() >= opts_.max_queue_per_class) {
    r.status = QueryStatus::kRejectedBacklog;
    ++stats_.rejected_backlog;
    return r;
  }
  if (desc.deadline_ms > 0.0) {
    if (est.ms > desc.deadline_ms) {
      r.status = QueryStatus::kRejectedCost;
      ++stats_.rejected_cost;
      return r;
    }
    // Work queued at this class or better drains before this query can
    // start; spread across the worker threads it bounds the expected wait.
    double ahead_ms = 0.0;
    for (std::size_t c = 0; c <= ci; ++c) ahead_ms += queued_cost_ms_[c];
    if (ahead_ms / opts_.workers + est.ms > desc.deadline_ms) {
      r.status = QueryStatus::kRejectedOverload;
      ++stats_.rejected_overload;
      return r;
    }
  }
  return std::nullopt;
}

void QueryScheduler::enqueue(std::unique_ptr<Pending> p) {
  const QueryClass klass = p->desc.klass;
  const std::size_t ci = static_cast<std::size_t>(klass);
  bool paused;
  {
    std::lock_guard<std::mutex> lk(qmu_);
    ++stats_.admitted;
    queued_cost_ms_[ci] += p->est.ms;
    queues_[ci].push_back(std::move(p));
    paused = paused_;
  }
  if (!paused) {
    pool_.submit([this] { drain_one(); }, pool_priority(klass));
  }
}

void QueryScheduler::resume() {
  std::size_t pending = 0;
  {
    std::lock_guard<std::mutex> lk(qmu_);
    if (!paused_) return;
    paused_ = false;
    for (const auto& q : queues_) pending += q.size();
  }
  // One drain task per pending query; tasks superseded by a fused batch
  // find the queues empty and return.
  for (std::size_t i = 0; i < pending; ++i) {
    pool_.submit([this] { drain_one(); }, core::TaskPriority::kNormal);
  }
}

void QueryScheduler::drain() {
  std::unique_lock<std::mutex> lk(qmu_);
  drain_cv_.wait(lk, [&] {
    if (in_flight_ != 0) return false;
    if (paused_) return true;  // queued-but-paused work is not in flight
    for (const auto& q : queues_) {
      if (!q.empty()) return false;
    }
    return true;
  });
}

void QueryScheduler::on_epoch_published(std::uint64_t epoch,
                                        const store::GraphView& view) {
  std::shared_ptr<const store::DeltaSummary> delta;
  {
    std::lock_guard<std::mutex> lk(warm_mu_);
    const auto s = view.delta_summary();
    // The summary describes the transition FROM the view's predecessor:
    // it justifies carrying cached answers only if the previously
    // published view was exactly that predecessor. Anything else (first
    // publish, fresh seed, skipped store epochs, a different store) must
    // degrade to the whole-epoch wipe.
    const bool contiguous = s != nullptr && s->epoch == view.epoch() &&
                            saw_publish_ &&
                            last_store_epoch_ + 1 == view.epoch();
    if (contiguous) {
      delta = s;
      deltas_.push_back(s);
      while (deltas_.size() > opts_.max_delta_history) deltas_.pop_front();
    } else if (s != nullptr && s->epoch == view.epoch() && saw_publish_ &&
               view.epoch() == last_store_epoch_) {
      // Re-publication of the same store version (e.g. after a background
      // compaction folded the chain — fold preserves epoch and summary):
      // content is identical, so everything carries (an empty summary is
      // non-structural) and the warm state + history stay valid. The
      // summary requirement keeps unrelated flat views — which all report
      // store epoch 0 — on the wipe path below.
      auto same = std::make_shared<store::DeltaSummary>();
      same->epoch = view.epoch();
      delta = std::move(same);
    } else {
      deltas_.clear();
      warm_pr_.reset();
      warm_wcc_.reset();
    }
    last_store_epoch_ = view.epoch();
    saw_publish_ = true;
  }
  cache_.on_epoch_publish(epoch, std::move(delta));
}

bool QueryScheduler::merged_delta(std::uint64_t from, std::uint64_t to,
                                  store::DeltaSummary& out) const {
  if (from == to) {
    out = store::DeltaSummary{};
    out.epoch = to;
    return true;
  }
  if (from > to || deltas_.empty() || last_store_epoch_ != to) return false;
  std::vector<std::shared_ptr<const store::DeltaSummary>> chain;
  chain.reserve(deltas_.size());
  for (const auto& s : deltas_) {
    if (s->epoch > from) chain.push_back(s);
  }
  // deltas_ is contiguous and ends at `to`; the chain covers (from, to]
  // exactly when its first element is from+1 (otherwise history was
  // trimmed past the warm result's epoch).
  if (chain.empty() || chain.front()->epoch != from + 1) return false;
  out = store::merge_summaries(chain);
  return true;
}

void QueryScheduler::count_incremental(bool served) {
  std::lock_guard<std::mutex> lk(qmu_);
  if (served) {
    ++stats_.incremental_served;
  } else {
    ++stats_.incremental_fallbacks;
  }
}

void QueryScheduler::drain_one() {
  std::unique_ptr<Pending> first;
  std::vector<std::unique_ptr<Pending>> batch;
  {
    std::lock_guard<std::mutex> lk(qmu_);
    for (std::size_t c = 0; c < 3 && !first; ++c) {
      if (!queues_[c].empty()) {
        first = std::move(queues_[c].front());
        queues_[c].pop_front();
        queued_cost_ms_[c] =
            std::max(0.0, queued_cost_ms_[c] - first->est.ms);
      }
    }
    if (!first) return;  // this task's query was absorbed by a fused batch
    ++in_flight_;
    if (first->desc.kind == QueryKind::kBfs && opts_.enable_batching) {
      for (std::size_t c = 0; c < 3; ++c) {
        auto& q = queues_[c];
        for (auto it = q.begin();
             it != q.end() && batch.size() + 1 < opts_.max_bfs_batch;) {
          if ((*it)->desc.kind == QueryKind::kBfs) {
            queued_cost_ms_[c] =
                std::max(0.0, queued_cost_ms_[c] - (*it)->est.ms);
            batch.push_back(std::move(*it));
            it = q.erase(it);
            ++in_flight_;
          } else {
            ++it;
          }
        }
      }
    }
  }
  if (batch.empty()) {
    execute_single(*first);
  } else {
    batch.insert(batch.begin(), std::move(first));
    execute_bfs_batch(batch);
  }
}

void QueryScheduler::execute_single(Pending& p) {
  const double wait_ms = ms_since(p.submitted_at);
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.active() && p.desc.trace.valid()) {
    // Queue wait was measured outside any scope; attach it retroactively.
    tracer.emit_interval(p.desc.trace, "serve.queue_wait",
                         tracer.now_ms() - wait_ms, wait_ms);
  }
  QueryResult r;
  r.kind = p.desc.kind;
  r.predicted_ms = p.est.ms;
  r.wait_ms = wait_ms;
  if (p.desc.deadline_ms > 0.0 && wait_ms > p.desc.deadline_ms) {
    r.status = QueryStatus::kDeadlineMiss;
    finish(p, std::move(r));
    return;
  }
  SnapshotRef snap = snaps_.acquire();
  if (!snap) {
    r.status = QueryStatus::kNoSnapshot;
    finish(p, std::move(r));
    return;
  }
  core::WallTimer timer;
  {
    obs::ScopedSpan span("serve.kernel", p.desc.trace);
    obs::AmbientScope ambient(span.context());
    try {
      r = run_kernel(p.desc, snap);
    } catch (const std::exception& e) {
      r.status = QueryStatus::kFailed;
      r.error = e.what();
    }
    span.set_detail(query_kind_name(p.desc.kind));
    span.set_status(status_code(r.status));
  }
  r.kind = p.desc.kind;
  r.exec_ms = timer.millis();
  r.predicted_ms = p.est.ms;
  r.wait_ms = wait_ms;
  r.epoch = snap.epoch();
  if (r.ok()) {
    // An incremental serve already fed observe_incremental inside
    // run_kernel; feeding its (much smaller) time into the batch EWMA
    // would poison the batch calibration.
    if (!r.incremental) model_.observe(p.desc.kind, p.est.raw_ms, r.exec_ms);
    if (p.desc.use_cache) {
      obs::ScopedSpan span("serve.cache_write", p.desc.trace);
      cache_.insert(QueryKey::of(p.desc, snap.epoch()),
                    std::make_shared<const QueryResult>(r));
    }
  }
  finish(p, std::move(r));
}

void QueryScheduler::execute_bfs_batch(
    std::vector<std::unique_ptr<Pending>>& batch) {
  SnapshotRef snap = snaps_.acquire();
  // Settle deadline expiries and invalid seeds individually; survivors
  // ride the fused pass.
  std::vector<Pending*> live;
  std::vector<vid_t> seeds;
  for (auto& p : batch) {
    QueryResult r;
    r.kind = QueryKind::kBfs;
    r.predicted_ms = p->est.ms;
    r.wait_ms = ms_since(p->submitted_at);
    if (!snap) {
      r.status = QueryStatus::kNoSnapshot;
      finish(*p, std::move(r));
      continue;
    }
    if (p->desc.deadline_ms > 0.0 && r.wait_ms > p->desc.deadline_ms) {
      r.status = QueryStatus::kDeadlineMiss;
      finish(*p, std::move(r));
      continue;
    }
    if (p->desc.seed >= snap.view().num_vertices()) {
      r.status = QueryStatus::kFailed;
      r.error = "bfs seed out of range";
      finish(*p, std::move(r));
      continue;
    }
    live.push_back(p.get());
    seeds.push_back(p->desc.seed);
  }
  if (live.empty()) return;

  core::WallTimer timer;
  QueryResult fail;
  bool failed = false;
  const bool flat = snap.view().flat();
  engine::MultiSourceBfsResult ms;
  std::vector<kernels::BfsResult> solo;
  try {
    if (flat) {
      // Bit-parallel fused pass over the flat CSR.
      ms = engine::multi_source_bfs(snap.graph(), seeds);
    } else {
      // Delta-backed view: answer each seed on the merged chain rather
      // than forcing an O(|E|) fold for a batch of O(Δ)-fresh queries.
      solo.reserve(seeds.size());
      for (const vid_t s : seeds) solo.push_back(kernels::bfs(snap.view(), s));
    }
  } catch (const std::exception& e) {
    failed = true;
    fail.status = QueryStatus::kFailed;
    fail.error = e.what();
  }
  const double exec_ms = timer.millis();
  const bool fused = live.size() > 1;
  {
    std::lock_guard<std::mutex> lk(qmu_);
    if (fused) {
      ++stats_.batches;
      stats_.batched_queries += live.size();
    }
  }
  const vid_t n = snap.view().num_vertices();
  for (std::size_t i = 0; i < live.size(); ++i) {
    Pending& p = *live[i];
    QueryResult r;
    if (failed) {
      r = fail;
    } else if (flat) {
      r.status = QueryStatus::kOk;
      r.dist.resize(n);
      for (vid_t v = 0; v < n; ++v) r.dist[v] = ms.dist_of(v, i);
      r.reached = ms.reached[i];
    } else {
      r.status = QueryStatus::kOk;
      r.dist = std::move(solo[i].dist);
      r.reached = solo[i].reached;
    }
    if (r.status == QueryStatus::kOk) set_bfs_footprint(r);
    r.kind = QueryKind::kBfs;
    r.batched = fused;
    r.exec_ms = exec_ms;
    r.predicted_ms = p.est.ms;
    r.wait_ms = ms_since(p.submitted_at);
    r.epoch = snap.epoch();
    if (r.ok()) {
      // A fused pass measures k queries at once; per-query calibration
      // only learns from solo executions, so skip observe() here.
      if (p.desc.use_cache) {
        cache_.insert(QueryKey::of(p.desc, snap.epoch()),
                      std::make_shared<const QueryResult>(r));
      }
    }
    finish(p, std::move(r));
  }
}

QueryResult QueryScheduler::run_kernel(const QueryDesc& desc,
                                       const SnapshotRef& snap) {
  // The one read path: delta-native kernels (BFS, WCC, k-hop) traverse
  // the view's merged chain directly; PageRank and Jaccard need the flat
  // CSR and pay the cached per-version fold through view.csr().
  const store::GraphView& v = snap.view();
  const vid_t n = v.num_vertices();
  QueryResult r;
  r.kind = desc.kind;
  const bool needs_seed = desc.kind == QueryKind::kBfs ||
                          desc.kind == QueryKind::kJaccardNeighbors ||
                          desc.kind == QueryKind::kSubgraphExtract;
  if (needs_seed && desc.seed >= n) {
    r.status = QueryStatus::kFailed;
    r.error = "seed out of range";
    return r;
  }
  switch (desc.kind) {
    case QueryKind::kBfs: {
      auto res = kernels::bfs(v, desc.seed);
      r.dist = std::move(res.dist);
      r.reached = res.reached;
      set_bfs_footprint(r);
      break;
    }
    case QueryKind::kPageRankTopK: {
      // Tier choice: refine the previous epoch's ranks over the merged
      // delta chain when warm state is fresh enough and the cost model
      // predicts refinement beats a batch recompute. update_pagerank
      // self-falls-back (shape mismatch, churn, non-convergence), so the
      // answer is always within batch tolerance.
      std::shared_ptr<const kernels::PageRankResult> prev;
      store::DeltaSummary merged;
      if (opts_.enable_incremental && desc.allow_incremental) {
        std::lock_guard<std::mutex> lk(warm_mu_);
        if (warm_pr_ != nullptr && warm_pr_epoch_ <= v.epoch() &&
            merged_delta(warm_pr_epoch_, v.epoch(), merged)) {
          prev = warm_pr_;
        }
      }
      std::shared_ptr<const kernels::PageRankResult> res;
      if (prev != nullptr) {
        const CostEstimate inc_est = model_.predict_incremental(
            desc, n, v.num_arcs(),
            static_cast<vid_t>(merged.changed_vertices.size()));
        const CostEstimate batch_est = model_.predict(desc, n, v.num_arcs());
        if (inc_est.ms <= batch_est.ms) {
          kernels::IncrementalOutcome out;
          core::WallTimer inc_timer;
          res = std::make_shared<const kernels::PageRankResult>(
              kernels::update_pagerank(*prev, merged, v,
                                       serving_pagerank_opts(),
                                       serving_inc_opts(), &out));
          r.incremental = out.incremental;
          // Observed unconditionally: when the refinement fell back, the
          // timer covers warm attempt + internal batch recompute, so the
          // EWMA learns the tier's true expected cost (including fallback
          // risk) and stops picking a tier that keeps paying double.
          model_.observe_incremental(desc.kind, inc_est.raw_ms,
                                     inc_timer.millis());
          count_incremental(out.incremental);
        }
      }
      if (res == nullptr) {
        res = std::make_shared<const kernels::PageRankResult>(
            kernels::pagerank(v.csr(), serving_pagerank_opts()));
      }
      {
        std::lock_guard<std::mutex> lk(warm_mu_);
        if (v.epoch() >= warm_pr_epoch_ || warm_pr_ == nullptr) {
          warm_pr_ = res;
          warm_pr_epoch_ = v.epoch();
        }
      }
      r.topk = kernels::pagerank_topk(*res, desc.k);
      break;
    }
    case QueryKind::kJaccardNeighbors: {
      // Delta-native query (no O(|E|) fold); the recorded footprint —
      // seed + neighbors + 2-hop candidates — lets the cache carry this
      // answer across every epoch whose delta is disjoint from it, which
      // is the incremental tier for a purely local query.
      r.neighbors = kernels::jaccard_query(v, desc.seed, desc.threshold);
      if (r.neighbors.size() > desc.k) r.neighbors.resize(desc.k);
      auto fp = kernels::jaccard_footprint(v, desc.seed, kFootprintCap);
      if (!fp.empty()) {
        r.footprint.global = false;
        r.footprint.verts = std::move(fp);
      }
      break;
    }
    case QueryKind::kWcc: {
      std::shared_ptr<const kernels::ComponentsResult> prev;
      store::DeltaSummary merged;
      if (opts_.enable_incremental && desc.allow_incremental) {
        std::lock_guard<std::mutex> lk(warm_mu_);
        if (warm_wcc_ != nullptr && warm_wcc_epoch_ <= v.epoch() &&
            merged_delta(warm_wcc_epoch_, v.epoch(), merged)) {
          prev = warm_wcc_;
        }
      }
      std::shared_ptr<const kernels::ComponentsResult> res;
      if (prev != nullptr) {
        const CostEstimate inc_est = model_.predict_incremental(
            desc, n, v.num_arcs(),
            static_cast<vid_t>(merged.changed_vertices.size()));
        const CostEstimate batch_est = model_.predict(desc, n, v.num_arcs());
        if (inc_est.ms <= batch_est.ms) {
          kernels::IncrementalOutcome out;
          core::WallTimer inc_timer;
          res = std::make_shared<const kernels::ComponentsResult>(
              kernels::update_wcc(*prev, merged, v, serving_inc_opts(), &out));
          r.incremental = out.incremental;
          // Unconditional for the same reason as PageRank: fallbacks teach
          // the EWMA the tier's true cost.
          model_.observe_incremental(desc.kind, inc_est.raw_ms,
                                     inc_timer.millis());
          count_incremental(out.incremental);
        }
      }
      if (res == nullptr) {
        res = std::make_shared<const kernels::ComponentsResult>(
            kernels::wcc_label_propagation(v));
      }
      {
        std::lock_guard<std::mutex> lk(warm_mu_);
        if (v.epoch() >= warm_wcc_epoch_ || warm_wcc_ == nullptr) {
          warm_wcc_ = res;
          warm_wcc_epoch_ = v.epoch();
        }
      }
      r.num_components = res->num_components;
      r.largest_component = res->largest_size;
      break;
    }
    case QueryKind::kSubgraphExtract: {
      r.members = kernels::khop_neighborhood(v, {desc.seed}, desc.depth);
      // Arc count inside the neighborhood: members is sorted, so each
      // adjacency probe is a binary search over the merged iteration.
      eid_t arcs = 0;
      for (const vid_t u : r.members) {
        v.for_each_out(u, [&](vid_t w, float) {
          arcs += std::binary_search(r.members.begin(), r.members.end(), w);
        });
      }
      r.subgraph_arcs = arcs;
      // Membership is decided by the adjacency of vertices within the
      // radius and the arc count by adjacency of members, so the member
      // set is a sound dependency footprint.
      if (r.members.size() <= kFootprintCap) {
        r.footprint.global = false;
        r.footprint.verts = r.members;  // khop returns them sorted
      }
      break;
    }
  }
  r.status = QueryStatus::kOk;
  return r;
}

QueryResult QueryScheduler::execute_now(const QueryDesc& desc) {
  {
    std::lock_guard<std::mutex> lk(qmu_);
    ++stats_.submitted;
  }
  const std::uint64_t epoch = snaps_.current_epoch();
  if (epoch == 0) {
    QueryResult r;
    r.status = QueryStatus::kNoSnapshot;
    r.kind = desc.kind;
    {
      std::lock_guard<std::mutex> lk(qmu_);
      ++stats_.no_snapshot;
    }
    obs_count_query(r);
    return r;
  }
  if (desc.use_cache) {
    obs::ScopedSpan span("serve.cache_lookup", desc.trace);
    if (auto hit = cache_.lookup(QueryKey::of(desc, epoch))) {
      QueryResult r = *hit;
      r.cache_hit = true;
      r.wait_ms = 0.0;
      r.exec_ms = 0.0;  // no kernel ran for this caller
      span.set_detail("hit");
      {
        std::lock_guard<std::mutex> lk(qmu_);
        ++stats_.cache_hits;
      }
      obs_count_query(r);
      return r;
    }
    span.set_detail("miss");
  }
  // Admission: lease the snapshot, predict the Fig. 3 cost, gate on the
  // deadline budget. The lease span nests under admission so the trace
  // reads query → admission → snapshot epoch → kernel → engine steps.
  SnapshotRef snap;
  CostEstimate est;
  QueryResult r;
  {
    obs::ScopedSpan adm("serve.admission", desc.trace);
    {
      obs::ScopedSpan lease("serve.snapshot_lease", adm.context());
      snap = snaps_.acquire();
      if (snap) {
        lease.set_detail("epoch=" + std::to_string(snap.epoch()));
      } else {
        lease.set_status(core::StatusCode::kUnavailable);
      }
    }
    if (!snap) {
      adm.set_status(core::StatusCode::kUnavailable);
      r.status = QueryStatus::kNoSnapshot;
      r.kind = desc.kind;
      obs_count_query(r);
      return r;
    }
    est = model_.predict(desc, snap.view().num_vertices(),
                         snap.view().num_arcs());
    if (adm.live()) {
      char detail[64];
      std::snprintf(detail, sizeof(detail), "predicted_ms=%.3f", est.ms);
      adm.set_detail(detail);
    }
    if (desc.deadline_ms > 0.0 && est.ms > desc.deadline_ms) {
      adm.set_status(core::StatusCode::kDeadlineExceeded);
      r.status = QueryStatus::kRejectedCost;
      r.kind = desc.kind;
      r.predicted_ms = est.ms;
      r.epoch = snap.epoch();
      {
        std::lock_guard<std::mutex> lk(qmu_);
        ++stats_.rejected_cost;
      }
      obs_count_query(r);
      return r;
    }
  }
  core::WallTimer timer;
  {
    obs::ScopedSpan span("serve.kernel", desc.trace);
    obs::AmbientScope ambient(span.context());
    try {
      r = run_kernel(desc, snap);
    } catch (const std::exception& e) {
      r.status = QueryStatus::kFailed;
      r.error = e.what();
    }
    span.set_detail(query_kind_name(desc.kind));
    span.set_status(status_code(r.status));
  }
  r.kind = desc.kind;
  r.exec_ms = timer.millis();
  r.predicted_ms = est.ms;
  r.epoch = snap.epoch();
  {
    std::lock_guard<std::mutex> lk(qmu_);
    ++stats_.admitted;
    if (r.ok()) {
      ++stats_.completed;
    } else {
      ++stats_.failed;
    }
  }
  if (r.ok()) {
    if (!r.incremental) model_.observe(desc.kind, est.raw_ms, r.exec_ms);
    if (desc.use_cache) {
      obs::ScopedSpan span("serve.cache_write", desc.trace);
      cache_.insert(QueryKey::of(desc, snap.epoch()),
                    std::make_shared<const QueryResult>(r));
    }
  }
  obs_count_query(r);
  return r;
}

void QueryScheduler::finish(Pending& p, QueryResult&& r) {
  const QueryStatus status = r.status;
  // Account BEFORE resolving the future: a caller unblocked by get() must
  // already see this query reflected in stats(). in_flight_ drops after
  // set_value so drain() cannot return with an unresolved future.
  {
    std::lock_guard<std::mutex> lk(qmu_);
    switch (status) {
      case QueryStatus::kOk:
        ++stats_.completed;
        break;
      case QueryStatus::kDeadlineMiss:
        ++stats_.deadline_misses;
        break;
      case QueryStatus::kNoSnapshot:
        ++stats_.no_snapshot;
        break;
      default:
        ++stats_.failed;
        break;
    }
  }
  obs_count_query(r);
  p.promise.set_value(std::move(r));
  std::lock_guard<std::mutex> lk(qmu_);
  GA_ASSERT(in_flight_ >= 1);
  --in_flight_;
  drain_cv_.notify_all();
}

SchedulerStats QueryScheduler::stats() const {
  std::lock_guard<std::mutex> lk(qmu_);
  return stats_;
}

engine::CounterGroup QueryScheduler::counters() const {
  const SchedulerStats st = stats();
  return {"scheduler",
          {{"submitted", st.submitted},
           {"admitted", st.admitted},
           {"cache_hits", st.cache_hits},
           {"rejected_cost", st.rejected_cost},
           {"rejected_overload", st.rejected_overload},
           {"rejected_backlog", st.rejected_backlog},
           {"no_snapshot", st.no_snapshot},
           {"completed", st.completed},
           {"failed", st.failed},
           {"deadline_misses", st.deadline_misses},
           {"fused_batches", st.batches},
           {"batched_queries", st.batched_queries},
           {"incremental_served", st.incremental_served},
           {"incremental_fallbacks", st.incremental_fallbacks}}};
}

}  // namespace ga::server
