// Epoch-versioned immutable snapshot publication — the serving layer's
// answer to the paper's central tension (Fig. 2): batch analytics want a
// frozen CSR while the update stream keeps mutating the persistent graph.
// A writer publishes a new immutable CSRGraph under the next epoch; readers
// lease the current snapshot through RAII SnapshotRef handles and keep
// reading it unperturbed while newer epochs appear. Reclamation is
// epoch-based: a superseded snapshot is moved to the retired list and its
// memory is freed only when the last outstanding lease drains — readers
// never block writers, writers never invalidate a running query.
//
// Concurrency contract: publish/acquire take a mutex for pointer motion
// only (no graph copies happen under the lock); graph reads are lock-free
// because snapshots are immutable after publication.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/telemetry.hpp"
#include "graph/csr_graph.hpp"
#include "store/graph_view.hpp"

namespace ga::server {

class SnapshotManager;

/// One immutable published graph version. Since the delta-chain refactor
/// the payload is a store::GraphView — usually an O(Δ) delta overlay over
/// a base CSR shared with earlier epochs, occasionally a flat CSR when the
/// store's compactor decided a full rebuild.
class Snapshot {
 public:
  Snapshot(std::uint64_t epoch, store::GraphView v)
      : epoch_(epoch), view_(std::move(v)) {}

  std::uint64_t epoch() const { return epoch_; }
  const store::GraphView& view() const { return view_; }
  /// Flat read path: free on flat views; on a delta-backed view the first
  /// caller pays one cached fold (the read-amplification half of the
  /// store's compaction-policy bargain).
  const graph::CSRGraph& graph() const { return view_.csr(); }

 private:
  friend class SnapshotManager;

  std::uint64_t epoch_ = 0;
  store::GraphView view_;
  std::atomic<std::uint64_t> readers_{0};  // outstanding SnapshotRef leases
};

/// RAII reader lease on one snapshot. Movable, not copyable. The referenced
/// snapshot (and its epoch's CSR arrays) outlives every live ref even if
/// arbitrarily many newer epochs are published meanwhile.
class SnapshotRef {
 public:
  SnapshotRef() = default;
  SnapshotRef(SnapshotRef&& other) noexcept
      : mgr_(other.mgr_), snap_(other.snap_) {
    other.mgr_ = nullptr;
    other.snap_ = nullptr;
  }
  SnapshotRef& operator=(SnapshotRef&& other) noexcept {
    if (this != &other) {
      release();
      mgr_ = other.mgr_;
      snap_ = other.snap_;
      other.mgr_ = nullptr;
      other.snap_ = nullptr;
    }
    return *this;
  }
  SnapshotRef(const SnapshotRef&) = delete;
  SnapshotRef& operator=(const SnapshotRef&) = delete;
  ~SnapshotRef() { release(); }

  explicit operator bool() const { return snap_ != nullptr; }
  const Snapshot* operator->() const { return snap_; }
  const Snapshot& operator*() const { return *snap_; }
  const store::GraphView& view() const { return snap_->view(); }
  const graph::CSRGraph& graph() const { return snap_->graph(); }
  std::uint64_t epoch() const { return snap_->epoch(); }

  void release();

 private:
  friend class SnapshotManager;
  SnapshotRef(SnapshotManager* mgr, const Snapshot* snap)
      : mgr_(mgr), snap_(snap) {}

  SnapshotManager* mgr_ = nullptr;
  const Snapshot* snap_ = nullptr;
};

struct SnapshotManagerStats {
  std::uint64_t published = 0;    // epochs published so far
  std::uint64_t reclaimed = 0;    // retired snapshots whose memory was freed
  std::uint64_t acquires = 0;     // leases handed out
  std::size_t retired_live = 0;   // superseded snapshots pinned by readers
  std::uint64_t current_epoch = 0;
  /// Unique bytes held across every live epoch (current + reader-pinned
  /// retired), deduplicated by shared base/layer allocation — delta epochs
  /// share their base CSR, so this grows by O(Δ) per pinned epoch.
  std::size_t live_bytes = 0;
  /// Modeled size of one flat CSR of the current content.
  std::size_t flat_bytes = 0;
  /// live_bytes / flat_bytes: 1.0 when a single flat epoch is live.
  double memory_amplification = 0.0;
};

class SnapshotManager {
 public:
  SnapshotManager() = default;
  /// All leases must be released before destruction (callers drain their
  /// schedulers first); outstanding refs at destruction abort.
  ~SnapshotManager();

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  /// Publishes `v` as the next epoch and returns that epoch (1-based; epoch
  /// 0 means "nothing published yet"). O(Δ): a view is a couple of
  /// shared_ptrs, no graph data moves. The previous snapshot is retired and
  /// reclaimed once its last lease drains. The epoch listener (if any) runs
  /// after the swap, outside the lock — the result cache hooks it to drop
  /// stale entries.
  std::uint64_t publish(store::GraphView v);

  /// Full-rebuild publication (the legacy path, now the exception: the
  /// store's compactor decides when a flat CSR is worth it). Takes the
  /// graph by rvalue — the hot publish path never copies CSR arrays.
  std::uint64_t publish(graph::CSRGraph&& g) {
    return publish(store::GraphView::of(std::move(g)));
  }

  /// Leases the current snapshot; empty ref when nothing is published yet.
  SnapshotRef acquire();

  std::uint64_t current_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Called after each publish, outside the lock, with the new epoch and
  /// the published view (single listener). The view carries the store's
  /// DeltaSummary when the epoch was produced by a delta apply — the
  /// scheduler's delta-aware cache invalidation and warm incremental
  /// state both hang off this hook.
  using EpochListener =
      std::function<void(std::uint64_t, const store::GraphView&)>;
  void set_epoch_listener(EpochListener fn);

  SnapshotManagerStats stats() const;
  engine::CounterGroup counters() const;

 private:
  friend class SnapshotRef;
  void release(const Snapshot* snap);
  /// Frees retired snapshots with no outstanding leases (mu_ held).
  void reclaim_locked();

  mutable std::mutex mu_;
  std::unique_ptr<Snapshot> current_;
  std::vector<std::unique_ptr<Snapshot>> retired_;
  std::atomic<std::uint64_t> epoch_{0};
  std::uint64_t reclaimed_ = 0;
  std::uint64_t acquires_ = 0;
  EpochListener listener_;
};

}  // namespace ga::server
