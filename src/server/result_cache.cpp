#include "server/result_cache.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "store/delta_summary.hpp"

namespace ga::server {

ResultCache::ResultCache(std::size_t capacity, std::size_t shards) {
  GA_CHECK(shards >= 1, "ResultCache: need at least one shard");
  per_shard_capacity_ = std::max<std::size_t>(1, capacity / shards);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const QueryResult> ResultCache::lookup(const QueryKey& key) {
  Shard& sh = shard_of(key);
  std::lock_guard<std::mutex> lk(sh.mu);
  const auto it = sh.map.find(key.hash());
  // The map is keyed by the 64-bit mixed hash; the full key is compared on
  // hit so a (vanishingly rare) collision reads as a miss, never as a
  // wrong answer.
  if (it == sh.map.end() || !(it->second->key == key)) {
    ++sh.misses;
    return nullptr;
  }
  sh.lru.splice(sh.lru.begin(), sh.lru, it->second);  // touch
  ++sh.hits;
  return it->second->value;
}

void ResultCache::insert(const QueryKey& key,
                         std::shared_ptr<const QueryResult> value) {
  Shard& sh = shard_of(key);
  std::lock_guard<std::mutex> lk(sh.mu);
  const std::uint64_t h = key.hash();
  const auto it = sh.map.find(h);
  if (it != sh.map.end()) {
    it->second->key = key;
    it->second->value = std::move(value);
    sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
    return;
  }
  sh.lru.push_front(Entry{key, std::move(value)});
  sh.map.emplace(h, sh.lru.begin());
  ++sh.insertions;
  if (sh.lru.size() > per_shard_capacity_) {
    const Entry& victim = sh.lru.back();
    sh.map.erase(victim.key.hash());
    sh.lru.pop_back();
    ++sh.evictions;
  }
}

void ResultCache::invalidate_before(std::uint64_t epoch) {
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    std::lock_guard<std::mutex> lk(sh.mu);
    for (auto it = sh.lru.begin(); it != sh.lru.end();) {
      if (it->key.epoch < epoch) {
        sh.map.erase(it->key.hash());
        it = sh.lru.erase(it);
        ++sh.invalidations;
      } else {
        ++it;
      }
    }
  }
}

void ResultCache::on_epoch_publish(
    std::uint64_t epoch, std::shared_ptr<const store::DeltaSummary> delta) {
  if (delta == nullptr) {
    invalidate_before(epoch);
    return;
  }
  const bool structural = delta->structural();
  std::uint64_t dropped = 0;
  // Phase 1: extract survivors shard by shard. A survivor's hash changes
  // with its epoch, so it may land in a different shard after re-keying —
  // it cannot be re-linked in place.
  std::vector<Entry> survivors;
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    std::lock_guard<std::mutex> lk(sh.mu);
    for (auto it = sh.lru.begin(); it != sh.lru.end();) {
      if (it->key.epoch >= epoch) {
        ++it;
        continue;
      }
      bool keep = it->key.epoch + 1 == epoch;
      if (keep && structural) {
        const QueryFootprint& fp = it->value->footprint;
        keep = !fp.global && !delta->intersects(fp.verts);
      }
      sh.map.erase(it->key.hash());
      if (keep) {
        ++sh.carried;
        survivors.push_back(std::move(*it));
      } else {
        ++sh.invalidations;
        ++dropped;
      }
      it = sh.lru.erase(it);
    }
  }
  // Phase 2: reinsert the survivors under the new epoch.
  for (Entry& e : survivors) {
    e.key.epoch = epoch;
    const std::uint64_t h = e.key.hash();
    Shard& sh = *shards_[h % shards_.size()];
    std::lock_guard<std::mutex> lk(sh.mu);
    if (sh.map.count(h) != 0) continue;  // a fresher entry raced in; keep it
    sh.lru.push_front(std::move(e));
    sh.map.emplace(h, sh.lru.begin());
    if (sh.lru.size() > per_shard_capacity_) {
      const Entry& victim = sh.lru.back();
      sh.map.erase(victim.key.hash());
      sh.lru.pop_back();
      ++sh.evictions;
    }
  }
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    static obs::Counter& c_carried =
        reg.counter("serve.cache.delta_carried_total");
    static obs::Counter& c_dropped =
        reg.counter("serve.cache.delta_invalidations_total");
    c_carried.add(survivors.size());
    c_dropped.add(dropped);
  }
}

void ResultCache::clear() {
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    std::lock_guard<std::mutex> lk(sh.mu);
    sh.invalidations += sh.lru.size();
    sh.lru.clear();
    sh.map.clear();
  }
}

CacheStats ResultCache::stats() const {
  CacheStats st;
  for (const auto& shp : shards_) {
    const Shard& sh = *shp;
    std::lock_guard<std::mutex> lk(sh.mu);
    st.hits += sh.hits;
    st.misses += sh.misses;
    st.insertions += sh.insertions;
    st.evictions += sh.evictions;
    st.invalidations += sh.invalidations;
    st.carried += sh.carried;
    st.entries += sh.lru.size();
  }
  return st;
}

engine::CounterGroup ResultCache::counters() const {
  const CacheStats st = stats();
  return {"result_cache",
          {{"hits", st.hits},
           {"misses", st.misses},
           {"insertions", st.insertions},
           {"evictions", st.evictions},
           {"epoch_invalidations", st.invalidations},
           {"delta_carried", st.carried},
           {"entries", st.entries},
           {"hit_rate_pct", static_cast<std::uint64_t>(st.hit_rate() * 100)}}};
}

}  // namespace ga::server
